(* Standalone artifact well-formedness checker (no dependencies) used by
   scripts/smoke.sh to validate telemetry artifacts:

     ocaml scripts/check_json.ml FILE...           whole-file JSON values
     ocaml scripts/check_json.ml --jsonl FILE...   one JSON object per line
     ocaml scripts/check_json.ml --prom FILE...    Prometheus exposition 0.0.4

   Exits 0 when every FILE validates, 1 (with a message naming the file
   and the byte offset or line) otherwise. Deliberately a strict parser,
   not a lenient scanner: a truncated traceEvents array, a span-log line
   cut mid-object, or an exposition sample with a bad metric name must
   all fail here. *)

exception Bad of int

let check (s : string) : (unit, int) result =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let fail () = raise (Bad !pos) in
  let expect c = if peek () = Some c then advance () else fail () in
  let parse_string () =
    expect '"';
    let rec loop () =
      match peek () with
      | None -> fail ()
      | Some '"' -> advance ()
      | Some '\\' ->
        advance ();
        ( match peek () with
        | Some ('"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't') -> advance ()
        | Some 'u' ->
          advance ();
          for _ = 1 to 4 do
            match peek () with
            | Some ('0' .. '9' | 'a' .. 'f' | 'A' .. 'F') -> advance ()
            | _ -> fail ()
          done
        | _ -> fail () );
        loop ()
      | Some c when Char.code c < 0x20 -> fail ()
      | Some _ ->
        advance ();
        loop ()
    in
    loop ()
  in
  let parse_number () =
    if peek () = Some '-' then advance ();
    let digits () =
      let saw = ref false in
      let rec d () =
        match peek () with
        | Some '0' .. '9' ->
          saw := true;
          advance ();
          d ()
        | _ -> ()
      in
      d ();
      if not !saw then fail ()
    in
    digits ();
    if peek () = Some '.' then begin
      advance ();
      digits ()
    end;
    match peek () with
    | Some ('e' | 'E') ->
      advance ();
      (match peek () with Some ('+' | '-') -> advance () | _ -> ());
      digits ()
    | _ -> ()
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then advance ()
      else begin
        let rec members () =
          skip_ws ();
          parse_string ();
          skip_ws ();
          expect ':';
          parse_value ();
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            members ()
          | Some '}' -> advance ()
          | _ -> fail ()
        in
        members ()
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then advance ()
      else begin
        let rec elements () =
          parse_value ();
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            elements ()
          | Some ']' -> advance ()
          | _ -> fail ()
        in
        elements ()
      end
    | Some '"' -> parse_string ()
    | Some 't' -> String.iter expect "true"
    | Some 'f' -> String.iter expect "false"
    | Some 'n' -> String.iter expect "null"
    | Some ('-' | '0' .. '9') -> parse_number ()
    | _ -> fail ()
  in
  try
    parse_value ();
    skip_ws ();
    if !pos = n then Ok () else Error !pos
  with Bad at -> Error at

(* ---- JSONL: every non-empty line is one complete JSON value ---- *)

let split_lines s =
  (* keep line numbering exact: split on '\n', tolerate a trailing one *)
  let lines = String.split_on_char '\n' s in
  match List.rev lines with "" :: rest -> List.rev rest | _ -> lines

let check_jsonl (s : string) : (int, int * int) result =
  (* Ok count | Error (line, byte-in-line). Empty interior lines are an
     offence too: a JSONL stream is exactly one object per line. *)
  let rec go n = function
    | [] -> Ok n
    | line :: rest -> (
      match check line with
      | Ok () when String.length line > 0 && line.[0] = '{' -> go (n + 1) rest
      | Ok () -> Error (n + 1, 0)
      | Error at -> Error (n + 1, at) )
  in
  go 0 (split_lines s)

(* ---- Prometheus text exposition 0.0.4 ---- *)

let is_name_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' || c = ':'

let is_name_char c = is_name_start c || (c >= '0' && c <= '9')

let is_label_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let check_prom_line (line : string) : bool =
  let n = String.length line in
  let pos = ref 0 in
  let peek () = if !pos < n then Some line.[!pos] else None in
  let scan_name start_ok char_ok =
    match peek () with
    | Some c when start_ok c ->
      incr pos;
      while (match peek () with Some c -> char_ok c | None -> false) do
        incr pos
      done;
      true
    | _ -> false
  in
  let scan_value () =
    (* float per strtod, or the exposition specials *)
    let start = !pos in
    while !pos < n && line.[!pos] <> ' ' do
      incr pos
    done;
    let tok = String.sub line start (!pos - start) in
    tok <> ""
    && ( List.mem tok [ "+Inf"; "-Inf"; "Inf"; "NaN" ]
       || match float_of_string_opt tok with Some _ -> true | None -> false )
  in
  if n = 0 then true
  else if line.[0] = '#' then begin
    (* "# HELP name text", "# TYPE name kind", or a plain comment *)
    if n = 1 || line.[1] <> ' ' then n = 1
    else begin
      pos := 2;
      let start = !pos in
      while !pos < n && line.[!pos] <> ' ' do
        incr pos
      done;
      match String.sub line start (!pos - start) with
      | "HELP" ->
        incr pos;
        scan_name is_name_start is_name_char
        && (!pos = n || line.[!pos] = ' ')
      | "TYPE" ->
        incr pos;
        scan_name is_name_start is_name_char
        &&
        (match peek () with Some ' ' -> incr pos; true | _ -> false)
        &&
        List.mem
          (String.sub line !pos (n - !pos))
          [ "counter"; "gauge"; "histogram"; "summary"; "untyped" ]
      | _ -> true (* arbitrary comment *)
    end
  end
  else begin
    (* name{label="value",...} value [timestamp] *)
    scan_name is_name_start is_name_char
    && begin
         ( match peek () with
         | Some '{' ->
           incr pos;
           let ok = ref true in
           let again = ref (peek () <> Some '}') in
           while !ok && !again do
             if not (scan_name is_label_start is_name_char) then ok := false
             else if peek () <> Some '=' then ok := false
             else begin
               incr pos;
               if peek () <> Some '"' then ok := false
               else begin
                 incr pos;
                 let closed = ref false in
                 while (not !closed) && !ok && !pos < n do
                   match line.[!pos] with
                   | '"' -> closed := true; incr pos
                   | '\\' ->
                     if
                       !pos + 1 < n
                       && (match line.[!pos + 1] with
                          | '\\' | '"' | 'n' -> true
                          | _ -> false)
                     then pos := !pos + 2
                     else ok := false
                   | _ -> incr pos
                 done;
                 if not !closed then ok := false
                 else
                   match peek () with
                   | Some ',' -> incr pos
                   | Some '}' -> again := false
                   | _ -> ok := false
               end
             end
           done;
           if !ok && peek () = Some '}' then incr pos else ok := false;
           !ok
         | _ -> true )
         &&
         (match peek () with Some ' ' -> incr pos; true | _ -> false)
         && scan_value ()
         &&
         (* optional timestamp *)
         ( !pos = n
         ||
         (incr pos;
          !pos < n
          && (let all = ref (line.[!pos] <> ' ') in
              let i = ref !pos in
              if !pos < n && (line.[!pos] = '-' || line.[!pos] = '+') then
                incr i;
              while !all && !i < n do
                (match line.[!i] with
                | '0' .. '9' -> ()
                | _ -> all := false);
                incr i
              done;
              !all)) )
       end
  end

let check_prom (s : string) : (int, int) result =
  (* Ok samples | Error line (1-based) *)
  let rec go n samples = function
    | [] -> Ok samples
    | line :: rest ->
      if check_prom_line line then
        go (n + 1)
          (samples + if line <> "" && line.[0] <> '#' then 1 else 0)
          rest
      else Error n
  in
  go 1 0 (split_lines s)

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let mode, files =
    match args with
    | "--jsonl" :: rest -> (`Jsonl, rest)
    | "--prom" :: rest -> (`Prom, rest)
    | rest -> (`Json, rest)
  in
  if files = [] then begin
    prerr_endline "usage: ocaml scripts/check_json.ml [--jsonl|--prom] FILE...";
    exit 2
  end;
  let failed = ref false in
  List.iter
    (fun file ->
      let contents =
        let ic = open_in_bin file in
        let len = in_channel_length ic in
        let s = really_input_string ic len in
        close_in ic;
        s
      in
      match mode with
      | `Json -> (
        match check contents with
        | Ok () ->
          Printf.printf "%s: valid JSON (%d bytes)\n" file
            (String.length contents)
        | Error at ->
          Printf.eprintf "%s: INVALID JSON at byte %d\n" file at;
          failed := true )
      | `Jsonl -> (
        match check_jsonl contents with
        | Ok 0 ->
          Printf.eprintf "%s: EMPTY JSONL stream\n" file;
          failed := true
        | Ok lines -> Printf.printf "%s: valid JSONL (%d records)\n" file lines
        | Error (line, at) ->
          Printf.eprintf "%s: INVALID JSONL at line %d byte %d\n" file line at;
          failed := true )
      | `Prom -> (
        match check_prom contents with
        | Ok 0 ->
          Printf.eprintf "%s: EMPTY exposition (no samples)\n" file;
          failed := true
        | Ok samples ->
          Printf.printf "%s: valid exposition (%d samples)\n" file samples
        | Error line ->
          Printf.eprintf "%s: INVALID exposition at line %d\n" file line;
          failed := true ))
    files;
  if !failed then exit 1
