(* Standalone JSON well-formedness checker (no dependencies) used by
   scripts/smoke.sh to validate telemetry artifacts:

     ocaml scripts/check_json.ml FILE...

   Exits 0 when every FILE parses as a single RFC 8259 JSON value with
   nothing after it, 1 (with a message naming the file and byte offset)
   otherwise. Deliberately a strict parser, not a lenient scanner: a
   truncated traceEvents array or an unbalanced brace must fail here. *)

exception Bad of int

let check (s : string) : (unit, int) result =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let fail () = raise (Bad !pos) in
  let expect c = if peek () = Some c then advance () else fail () in
  let parse_string () =
    expect '"';
    let rec loop () =
      match peek () with
      | None -> fail ()
      | Some '"' -> advance ()
      | Some '\\' ->
        advance ();
        ( match peek () with
        | Some ('"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't') -> advance ()
        | Some 'u' ->
          advance ();
          for _ = 1 to 4 do
            match peek () with
            | Some ('0' .. '9' | 'a' .. 'f' | 'A' .. 'F') -> advance ()
            | _ -> fail ()
          done
        | _ -> fail () );
        loop ()
      | Some c when Char.code c < 0x20 -> fail ()
      | Some _ ->
        advance ();
        loop ()
    in
    loop ()
  in
  let parse_number () =
    if peek () = Some '-' then advance ();
    let digits () =
      let saw = ref false in
      let rec d () =
        match peek () with
        | Some '0' .. '9' ->
          saw := true;
          advance ();
          d ()
        | _ -> ()
      in
      d ();
      if not !saw then fail ()
    in
    digits ();
    if peek () = Some '.' then begin
      advance ();
      digits ()
    end;
    match peek () with
    | Some ('e' | 'E') ->
      advance ();
      (match peek () with Some ('+' | '-') -> advance () | _ -> ());
      digits ()
    | _ -> ()
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then advance ()
      else begin
        let rec members () =
          skip_ws ();
          parse_string ();
          skip_ws ();
          expect ':';
          parse_value ();
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            members ()
          | Some '}' -> advance ()
          | _ -> fail ()
        in
        members ()
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then advance ()
      else begin
        let rec elements () =
          parse_value ();
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            elements ()
          | Some ']' -> advance ()
          | _ -> fail ()
        in
        elements ()
      end
    | Some '"' -> parse_string ()
    | Some 't' -> String.iter expect "true"
    | Some 'f' -> String.iter expect "false"
    | Some 'n' -> String.iter expect "null"
    | Some ('-' | '0' .. '9') -> parse_number ()
    | _ -> fail ()
  in
  try
    parse_value ();
    skip_ws ();
    if !pos = n then Ok () else Error !pos
  with Bad at -> Error at

let () =
  let files = List.tl (Array.to_list Sys.argv) in
  if files = [] then begin
    prerr_endline "usage: ocaml scripts/check_json.ml FILE...";
    exit 2
  end;
  let failed = ref false in
  List.iter
    (fun file ->
      let contents =
        let ic = open_in_bin file in
        let len = in_channel_length ic in
        let s = really_input_string ic len in
        close_in ic;
        s
      in
      match check contents with
      | Ok () -> Printf.printf "%s: valid JSON (%d bytes)\n" file (String.length contents)
      | Error at ->
        Printf.eprintf "%s: INVALID JSON at byte %d\n" file at;
        failed := true)
    files;
  if !failed then exit 1
