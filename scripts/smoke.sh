#!/bin/sh
# CI smoke: build, run the full test suite, then a quick micro-benchmark
# pass that writes machine-readable results to BENCH_smoke.json (which is
# .gitignore'd; commit a BENCH_<n>.json snapshot deliberately instead).
#
#   ./scripts/smoke.sh            # default pool size (HC_JOBS honoured)
#   HC_JOBS=4 ./scripts/smoke.sh
set -eu
cd "$(dirname "$0")/.."

echo "== dune build =="
dune build @all

echo "== dune runtest =="
dune runtest

echo "== bench --micro --json BENCH_smoke.json =="
dune exec bench/main.exe -- --micro --json BENCH_smoke.json

echo "smoke OK"
