#!/bin/sh
# CI smoke: build, run the full test suite, then a quick micro-benchmark
# pass that writes machine-readable results to BENCH_smoke.json (which is
# .gitignore'd; commit a BENCH_<n>.json snapshot deliberately instead).
#
#   ./scripts/smoke.sh            # default pool size (HC_JOBS honoured)
#   HC_JOBS=4 ./scripts/smoke.sh
set -eu
cd "$(dirname "$0")/.."

echo "== dune build =="
dune build @all

echo "== dune runtest =="
dune runtest

echo "== bench --micro --json BENCH_smoke.json =="
dune exec bench/main.exe -- --micro --json BENCH_smoke.json

echo "== allocation gate =="
# The untraced SoA simulator must stay allocation-free per uop: the gate
# runs the fig6 (8_8_8) kernel warm over two trace lengths and fails if
# the marginal Gc.minor_words per uop exceeds zero. Deterministic (it
# counts words, not time), so zero tolerance is safe.
dune exec bench/main.exe -- --alloc-gate
echo "allocation gate OK"

echo "== telemetry: trace + interval series =="
# A small traced run: Chrome trace JSON + interval CSV, then validate
# every JSON artifact with the dependency-free checker. The CLI itself
# asserts aggregate(intervals) == final metrics (prints "==" vs "BUG").
SMOKE_DIR=$(mktemp -d)
trap 'rm -rf "$SMOKE_DIR"' EXIT
dune exec bin/hc_sim.exe -- --benchmark gcc --scheme +IR --length 5000 \
  --trace-out "$SMOKE_DIR/smoke_trace.json" --metrics-interval 500 \
  | tee "$SMOKE_DIR/smoke_out.txt"
grep -q 'aggregate == final metrics' "$SMOKE_DIR/smoke_out.txt"
ocaml scripts/check_json.ml "$SMOKE_DIR/smoke_trace.json" BENCH_smoke.json
test -s "$SMOKE_DIR/smoke_trace.intervals.csv"
echo "telemetry OK"

echo "== hc_report regression gate =="
# Re-run the baseline workload and hold the fresh metrics to the
# committed baseline: the simulator is deterministic, so the default
# 0-tolerance diff is a bit-exact gate (refresh deliberately with
# scripts/refresh_baseline.sh when the model changes).
dune exec bin/hc_sim.exe -- --benchmark gcc --scheme +IR --length 5000 \
  --compare false --metrics-out "$SMOKE_DIR/gcc_smoke.json" > /dev/null
dune exec bin/hc_report.exe -- diff baselines/gcc_smoke.json \
  "$SMOKE_DIR/gcc_smoke.json"
# ...and prove the gate can fail: perturb one metric and expect exit 1
sed -E 's/"ipc":[0-9.]+/"ipc":0.0001/' "$SMOKE_DIR/gcc_smoke.json" \
  > "$SMOKE_DIR/gcc_perturbed.json"
if dune exec bin/hc_report.exe -- diff baselines/gcc_smoke.json \
    "$SMOKE_DIR/gcc_perturbed.json" > /dev/null; then
  echo "FAIL: hc_report diff accepted a perturbed metrics file"
  exit 1
fi
dune exec bin/hc_report.exe -- report "$SMOKE_DIR/gcc_smoke.json" \
  --intervals "$SMOKE_DIR/smoke_trace.intervals.csv" \
  --trace "$SMOKE_DIR/smoke_trace.json"
echo "regression gate OK"

echo "== hc_lint gate =="
# Every seed workload must lint clean (structure, semantics, realized-mix
# drift, and both width-analysis soundness invariants: E110 for the
# forward pass, E111 for the backward live-bits pass, W203 for bound
# monotonicity), as must every built-in configuration and a
# saved-and-reloaded trace file.
dune exec bin/hc_lint.exe -- seeds --length 10000
dune exec bin/hc_lint.exe -- config
dune exec bin/hc_trace.exe -- generate --benchmark gcc --length 6000 \
  --out "$SMOKE_DIR/lint_gcc.trace" > /dev/null
dune exec bin/hc_lint.exe -- trace "$SMOKE_DIR/lint_gcc.trace" --benchmark gcc
# ...and prove this gate can fail too: flip UL1-miss bits (violating miss
# monotonicity, E105) and expect a non-zero exit
sed 's/dl0=0 ul1=0/dl0=0 ul1=1/' "$SMOKE_DIR/lint_gcc.trace" \
  > "$SMOKE_DIR/lint_bad.trace"
if dune exec bin/hc_lint.exe -- trace "$SMOKE_DIR/lint_bad.trace" > /dev/null; then
  echo "FAIL: hc_lint accepted a corrupted trace"
  exit 1
fi
echo "lint gate OK"

echo "== bidirectional analysis gate =="
# The seeds lint above already held E110/E111 to zero violations across
# all 12 seed workloads; this gate covers the rest of the bidirectional
# surface. The diagnostic catalogue must explain every code the linter
# can emit (and exit 3 on an unknown code); the headroom experiment's
# three-way table must show zero width-violation recoveries for BOTH
# static oracles and perfect bidir>=forward monotonicity; and the
# regression diff must trip when a provable bound is perturbed. The
# regression gate above already proved the complement: a run that never
# touches the new scheme diffs bit-identically against the committed
# baseline.
for code in E101 E102 E103 E104 E105 E106 E107 E108 E110 E111 \
    W201 E201 W202 W203; do
  dune exec bin/hc_lint.exe -- explain "$code" > /dev/null
done
if dune exec bin/hc_lint.exe -- explain E999 > /dev/null 2>&1; then
  echo "FAIL: hc_lint explain accepted an unknown code"
  exit 1
fi
dune exec bin/hc_lint.exe -- explain --readme-table | grep -q '| E111 |'
BIDIR_DIR="$SMOKE_DIR/bidir_telemetry"
dune exec bin/hc_experiments.exe -- headroom --length 3000 \
  --telemetry-dir "$BIDIR_DIR" | tee "$SMOKE_DIR/headroom_out.txt"
grep -Eq 'static_888 width-violation recoveries.*measured +0\.00' \
  "$SMOKE_DIR/headroom_out.txt"
grep -Eq 'static_bidir width-violation recoveries.*measured +0\.00' \
  "$SMOKE_DIR/headroom_out.txt"
grep -Eq 'bidir steers below forward \(monotonicity\).*measured +0\.00' \
  "$SMOKE_DIR/headroom_out.txt"
# runs that go through the run cache carry both provable bounds in their
# metrics JSON, and hc_report attrib renders the three-way comparison
BIDIR_JSON="$BIDIR_DIR/static_bidir__gcc.metrics.json"
grep -q '"static_narrow_bound"' "$BIDIR_JSON"
grep -q '"static_bidir_bound"' "$BIDIR_JSON"
dune exec bin/hc_report.exe -- attrib "$BIDIR_JSON" \
  | tee "$SMOKE_DIR/attrib_out.txt"
grep -q 'provable (bidir)' "$SMOKE_DIR/attrib_out.txt"
# ...and perturbing the bidirectional bound must trip the 0-tolerance diff
sed -E 's/"static_bidir_bound":[0-9]+/"static_bidir_bound":1/' \
  "$BIDIR_JSON" > "$SMOKE_DIR/bidir_bound_perturbed.json"
if dune exec bin/hc_report.exe -- diff "$BIDIR_JSON" \
    "$SMOKE_DIR/bidir_bound_perturbed.json" > /dev/null; then
  echo "FAIL: hc_report diff accepted a perturbed static_bidir_bound"
  exit 1
fi
echo "bidirectional analysis gate OK"

echo "== artifact cache gate =="
# Cold populate, then prove the warm path returns bit-identical metrics:
# the 0-tolerance hc_report diff between the cold and warm runs of the
# same cell must pass, every cache entry must verify, and a truncated
# entry must (a) trip hc_cache verify and (b) self-heal on the next run
# without changing a single metric.
CACHE_DIR="$SMOKE_DIR/cache"
dune exec bin/hc_sim.exe -- --benchmark mcf --scheme 8_8_8 --length 8000 \
  --compare false --cache-dir "$CACHE_DIR" \
  --metrics-out "$SMOKE_DIR/cache_cold.json" > /dev/null
dune exec bin/hc_sim.exe -- --benchmark mcf --scheme 8_8_8 --length 8000 \
  --compare false --cache-dir "$CACHE_DIR" \
  --metrics-out "$SMOKE_DIR/cache_warm.json" > /dev/null
dune exec bin/hc_report.exe -- diff "$SMOKE_DIR/cache_cold.json" \
  "$SMOKE_DIR/cache_warm.json"
dune exec bin/hc_cache.exe -- verify --cache-dir "$CACHE_DIR"
# truncate the published trace entry in place: verify must now fail...
for entry in "$CACHE_DIR"/traces/*.hct; do
  head -c 100 "$entry" > "$entry.cut" && mv "$entry.cut" "$entry"
done
if dune exec bin/hc_cache.exe -- verify --cache-dir "$CACHE_DIR" > /dev/null; then
  echo "FAIL: hc_cache verify accepted a truncated trace entry"
  exit 1
fi
# ...and the next run must self-heal around it, bit-identically
dune exec bin/hc_sim.exe -- --benchmark mcf --scheme 8_8_8 --length 8000 \
  --compare false --cache-dir "$CACHE_DIR" \
  --metrics-out "$SMOKE_DIR/cache_healed.json" > /dev/null
dune exec bin/hc_report.exe -- diff "$SMOKE_DIR/cache_cold.json" \
  "$SMOKE_DIR/cache_healed.json"
dune exec bin/hc_cache.exe -- verify --cache-dir "$CACHE_DIR"
dune exec bin/hc_cache.exe -- stats --cache-dir "$CACHE_DIR"
# machine-readable stats must be one well-formed JSON object
dune exec bin/hc_cache.exe -- stats --cache-dir "$CACHE_DIR" --json \
  > "$SMOKE_DIR/cache_stats.json"
ocaml scripts/check_json.ml "$SMOKE_DIR/cache_stats.json"
echo "cache gate OK"

echo "== binary trace gate =="
# A binary trace must load and lint exactly like its text twin, and a
# truncated binary file must surface as lint error E108, not a crash.
dune exec bin/hc_trace.exe -- generate --benchmark gcc --length 6000 \
  --format binary --out "$SMOKE_DIR/lint_gcc.hct" > /dev/null
dune exec bin/hc_lint.exe -- trace "$SMOKE_DIR/lint_gcc.hct" --benchmark gcc
head -c 1000 "$SMOKE_DIR/lint_gcc.hct" > "$SMOKE_DIR/lint_cut.hct"
if dune exec bin/hc_lint.exe -- trace "$SMOKE_DIR/lint_cut.hct" \
    > "$SMOKE_DIR/lint_cut.out"; then
  echo "FAIL: hc_lint accepted a truncated binary trace"
  exit 1
fi
grep -q E108 "$SMOKE_DIR/lint_cut.out"
echo "binary trace gate OK"

echo "== observability gate =="
# A traced run with the full observability surface on: --obs stage-span
# stderr table, --span-log structured JSONL, --prom-out registry dump.
# Both sidecars must pass the dependency-free strict checkers AND the
# real readers (hc_report spans re-parses every line; hc_metrics show
# re-parses the exposition) — then both checkers must provably trip on
# a corrupted file.
dune exec bin/hc_sim.exe -- --benchmark gzip --scheme 8_8_8 --length 4000 \
  --compare false --obs --span-log "$SMOKE_DIR/obs_spans.jsonl" \
  --prom-out "$SMOKE_DIR/obs_sim.prom" > /dev/null
ocaml scripts/check_json.ml --jsonl "$SMOKE_DIR/obs_spans.jsonl"
ocaml scripts/check_json.ml --prom "$SMOKE_DIR/obs_sim.prom"
dune exec bin/hc_report.exe -- spans "$SMOKE_DIR/obs_spans.jsonl"
dune exec bin/hc_metrics.exe -- show "$SMOKE_DIR/obs_sim.prom" > /dev/null
# a traced sweep with the live progress line, then a per-series diff of
# the two registry dumps (also re-validates both expositions)
dune exec bin/hc_experiments.exe -- fig6 --length 3000 --progress \
  --span-log "$SMOKE_DIR/obs_fig6.jsonl" \
  --prom-out "$SMOKE_DIR/obs_fig6.prom" > /dev/null
ocaml scripts/check_json.ml --jsonl "$SMOKE_DIR/obs_fig6.jsonl"
ocaml scripts/check_json.ml --prom "$SMOKE_DIR/obs_fig6.prom"
dune exec bin/hc_metrics.exe -- diff "$SMOKE_DIR/obs_sim.prom" \
  "$SMOKE_DIR/obs_fig6.prom"
# ...and prove both gates can fail: a span line truncated mid-object and
# an exposition sample with an illegal metric name must be rejected
head -c 40 "$SMOKE_DIR/obs_spans.jsonl" > "$SMOKE_DIR/obs_bad.jsonl"
if ocaml scripts/check_json.ml --jsonl "$SMOKE_DIR/obs_bad.jsonl" \
    > /dev/null 2>&1; then
  echo "FAIL: --jsonl accepted a truncated span-log line"
  exit 1
fi
{ cat "$SMOKE_DIR/obs_sim.prom"; echo '!bad name 1'; } \
  > "$SMOKE_DIR/obs_bad.prom"
if ocaml scripts/check_json.ml --prom "$SMOKE_DIR/obs_bad.prom" \
    > /dev/null 2>&1; then
  echo "FAIL: --prom accepted a malformed exposition line"
  exit 1
fi
echo "observability gate OK"

echo "== cycle-accounting gate =="
# A run with the cycle-accounting engine on: the metrics JSON must gain a
# well-formed stall object, hc_report topdown must verify the exact slot
# partition (sum(categories) == width x rounds, no tolerance) and render
# the tables, and the stall-interval CSV must be non-empty. Then prove
# the gate trips: perturb one stall category and expect exit 1.
dune exec bin/hc_sim.exe -- --benchmark gcc --scheme +IR --length 5000 \
  --compare false --topdown --metrics-interval 500 \
  --stall-out "$SMOKE_DIR/acct_stalls.csv" \
  --metrics-out "$SMOKE_DIR/acct_metrics.json" \
  | tee "$SMOKE_DIR/acct_out.txt"
grep -q 'partition invariant: exact' "$SMOKE_DIR/acct_out.txt"
ocaml scripts/check_json.ml "$SMOKE_DIR/acct_metrics.json"
grep -q '"stall":{' "$SMOKE_DIR/acct_metrics.json"
test -s "$SMOKE_DIR/acct_stalls.csv"
dune exec bin/hc_report.exe -- topdown "$SMOKE_DIR/acct_metrics.json" \
  --intervals "$SMOKE_DIR/acct_stalls.csv"
# accounting must ride along without touching the metrics: strip the
# stall object and the file must diff clean (0 tolerance) against a
# plain run of the same cell
dune exec bin/hc_sim.exe -- --benchmark gcc --scheme +IR --length 5000 \
  --compare false --metrics-out "$SMOKE_DIR/acct_plain.json" > /dev/null
sed -E 's/"stall":\{.*"commit":\{[^}]*\}\},//' "$SMOKE_DIR/acct_metrics.json" \
  > "$SMOKE_DIR/acct_stripped.json"
dune exec bin/hc_report.exe -- diff "$SMOKE_DIR/acct_plain.json" \
  "$SMOKE_DIR/acct_stripped.json"
# ...and prove the partition gate can fail: break one category count
sed -E 's/"dispatch":[0-9]+/"dispatch":1/' "$SMOKE_DIR/acct_metrics.json" \
  > "$SMOKE_DIR/acct_perturbed.json"
if dune exec bin/hc_report.exe -- topdown "$SMOKE_DIR/acct_perturbed.json" \
    > /dev/null; then
  echo "FAIL: hc_report topdown accepted a broken slot partition"
  exit 1
fi
echo "cycle-accounting gate OK"

echo "smoke OK"
