#!/bin/sh
# CI smoke: build, run the full test suite, then a quick micro-benchmark
# pass that writes machine-readable results to BENCH_smoke.json (which is
# .gitignore'd; commit a BENCH_<n>.json snapshot deliberately instead).
#
#   ./scripts/smoke.sh            # default pool size (HC_JOBS honoured)
#   HC_JOBS=4 ./scripts/smoke.sh
set -eu
cd "$(dirname "$0")/.."

echo "== dune build =="
dune build @all

echo "== dune runtest =="
dune runtest

echo "== bench --micro --json BENCH_smoke.json =="
dune exec bench/main.exe -- --micro --json BENCH_smoke.json

echo "== telemetry: trace + interval series =="
# A small traced run: Chrome trace JSON + interval CSV, then validate
# every JSON artifact with the dependency-free checker. The CLI itself
# asserts aggregate(intervals) == final metrics (prints "==" vs "BUG").
SMOKE_DIR=$(mktemp -d)
trap 'rm -rf "$SMOKE_DIR"' EXIT
dune exec bin/hc_sim.exe -- --benchmark gcc --scheme +IR --length 5000 \
  --trace-out "$SMOKE_DIR/smoke_trace.json" --metrics-interval 500 \
  | tee "$SMOKE_DIR/smoke_out.txt"
grep -q 'aggregate == final metrics' "$SMOKE_DIR/smoke_out.txt"
ocaml scripts/check_json.ml "$SMOKE_DIR/smoke_trace.json" BENCH_smoke.json
test -s "$SMOKE_DIR/smoke_trace.intervals.csv"
echo "telemetry OK"

echo "smoke OK"
