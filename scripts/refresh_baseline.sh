#!/bin/sh
# Deliberately re-record the committed regression baseline that
# scripts/smoke.sh gates against. The simulator is deterministic (fixed
# profile seeds), so the baseline only changes when the model itself
# does — run this after an intentional behaviour change, eyeball the
# `hc_report diff` it prints, and commit the new file with the change
# that caused it.
#
#   ./scripts/refresh_baseline.sh
set -eu
cd "$(dirname "$0")/.."

BASELINE=baselines/gcc_smoke.json

dune build bin/hc_sim.exe bin/hc_report.exe
mkdir -p baselines

if [ -f "$BASELINE" ]; then
  OLD=$(mktemp)
  trap 'rm -f "$OLD"' EXIT
  cp "$BASELINE" "$OLD"
else
  OLD=""
fi

dune exec bin/hc_sim.exe -- --benchmark gcc --scheme +IR --length 5000 \
  --compare false --metrics-out "$BASELINE"

if [ -n "$OLD" ]; then
  echo
  echo "== what changed vs the previous baseline =="
  # informational: nonzero just means the baseline moved, which is the point
  dune exec bin/hc_report.exe -- diff "$OLD" "$BASELINE" || true
fi

echo
echo "refreshed $BASELINE — review and commit it together with the change"
