(* The benchmark harness.

   Three parts, all keyed to the paper's evaluation artifacts:

   1. Regeneration - every table and figure of the paper is recomputed at
      full size and printed with paper-vs-measured headline comparisons
      (the same tables EXPERIMENTS.md quotes). With --json the wall-clock
      is measured twice - sequentially and on the domain pool - so the
      parallel engine's speedup is recorded alongside.

   2. Micro-benchmarks - one Bechamel [Test.make] per table/figure timing
      the computational kernel behind that artifact (trace analysis for the
      characterization figures, a scaled-down simulation for the
      performance figures), so regressions in simulator speed show up per
      experiment. Every fig*:sim-* kernel runs over the SAME memoized
      2k-uop gcc trace, so the kernels measure simulation, not generation.

   3. --json <path> - machine-readable results (kernel name -> ns/run plus
      the regenerate() wall-clocks and the marginal per-uop allocation
      measurement) for tracking the perf trajectory across PRs
      (BENCH_<n>.json at the repo root).

   Flags: --micro (kernels only), --tables (regeneration only),
   --json <path>, --jobs <n> (domain-pool size; HC_JOBS works too),
   --alloc-gate (measure per-uop minor allocation of the untraced sim
   and exit nonzero if it is not zero — the CI perf gate). *)

module Experiments = Hc_core.Experiments
module Runs = Hc_core.Runs
module Domain_pool = Hc_core.Domain_pool
module Meta = Hc_core.Meta
module Artifact_cache = Hc_core.Artifact_cache
module Profile = Hc_trace.Profile
module Generator = Hc_trace.Generator
module Analysis = Hc_trace.Analysis
module Workloads = Hc_trace.Workloads
module Trace_io = Hc_trace.Trace_io
module Codec = Hc_trace.Codec
module Config = Hc_sim.Config
module Pipeline = Hc_sim.Pipeline
module Accounting = Hc_sim.Accounting
module Static = Hc_analysis.Static
module Width_predictor = Hc_predictors.Width_predictor
module Registry = Hc_obs.Registry
module Span = Hc_obs.Span

(* ----- part 1: regenerate every table and figure ----- *)

let regenerate () =
  print_endline "==================================================================";
  print_endline " Reproduction of every table and figure (paper vs measured)";
  print_endline "==================================================================";
  let runs = Runs.create ~length:30_000 () in
  List.iter
    (fun (e : Experiments.t) ->
      Printf.printf "\n=== %s: %s ===\npaper: %s\n\n" e.Experiments.id
        e.Experiments.title e.Experiments.paper_claim;
      let text, headlines = e.Experiments.run runs in
      print_endline text;
      List.iter
        (fun (h : Experiments.headline) ->
          Printf.printf "  %-55s paper %8.2f | measured %8.2f\n"
            h.Experiments.label h.Experiments.paper h.Experiments.measured)
        headlines)
    Experiments.all

(* ----- part 2: bechamel micro-benchmarks ----- *)

let bench_trace =
  lazy (Generator.generate_sliced ~length:5_000 (Profile.find_spec_int "gcc"))

(* codec kernel inputs, prepared once: the binary blob in memory, the
   same trace as a text file on disk, and a one-entry artifact cache the
   warm-reload kernel hits every iteration. The decode-vs-text-load pair
   is the codec's headline comparison. *)
let bench_encoded = lazy (Codec.encode (Lazy.force bench_trace))

let bench_text_file =
  lazy
    (let path = Filename.temp_file "hc_bench_trace" ".trace" in
     at_exit (fun () -> try Sys.remove path with Sys_error _ -> ());
     Trace_io.save (Lazy.force bench_trace) path;
     path)

let rec rm_rf path =
  match Sys.is_directory path with
  | true ->
    Array.iter (fun n -> rm_rf (Filename.concat path n)) (Sys.readdir path);
    Sys.rmdir path
  | false -> Sys.remove path
  | exception Sys_error _ -> ()

let bench_cache =
  lazy
    (let root = Filename.temp_file "hc_bench_cache" "" in
     Sys.remove root;
     at_exit (fun () -> rm_rf root);
     let c = Artifact_cache.create ~root () in
     let profile = Profile.find_spec_int "gcc" in
     Artifact_cache.store_trace c ~profile ~length:5_000
       (Lazy.force bench_trace);
     c)

(* one memoized trace shared by every fig*:sim-* kernel: the kernels time
   the simulator, not the generator *)
let sim_trace =
  lazy (Generator.generate_sliced ~length:2_000 (Profile.find_spec_int "gcc"))

let sim_kernel scheme () =
  let cfg = Config.with_scheme Config.default (Config.find_scheme scheme) in
  ignore
    (Pipeline.run ~cfg ~decide:Hc_steering.Policy.decide ~scheme_name:scheme
       (Lazy.force sim_trace))

let predictor_kernel () =
  let t = Lazy.force bench_trace in
  let pred = Width_predictor.create () in
  Hc_trace.Trace.iter
    (fun u ->
      ignore (Width_predictor.predict pred u.Hc_isa.Uop.pc);
      Width_predictor.update pred u.Hc_isa.Uop.pc
        ~narrow:(Hc_isa.Width.is_narrow u.Hc_isa.Uop.result))
    t

(* Observability overhead kernels. Ambient observability is OFF for the
   whole bench process (no --obs here), so the *-off kernels measure
   exactly what every instrumentation point costs on the untraced hot
   path: one atomic load and a match on None. The *-on kernels use a
   local registry (never the ambient one — enabling that mid-bench would
   contaminate the sim kernels) to price the enabled lock-free path. *)
let obs_local_counter =
  lazy
    (let r = Registry.create () in
     Registry.counter r ~help:"bench overhead kernel" "bench_ops_total")

let obs_local_hist =
  lazy
    (let r = Registry.create () in
     Registry.histogram r ~help:"bench overhead kernel" "bench_obs_ns")

let obs_scrape_registry =
  lazy
    (let r = Registry.create () in
     Registry.add (Registry.counter r "bench_a_total") 7;
     Registry.gauge_set (Registry.gauge r "bench_b") 3;
     for i = 1 to 100 do
       Registry.observe (Registry.histogram r "bench_c") i
     done;
     r)

let bench_uop_records = lazy (Hc_trace.Trace.uops (Lazy.force bench_trace))

(* Sub-microsecond kernels (tab1 and the obs:* overhead guards) get
   their own measurement path, for two reasons. First, shared-host
   scheduling jitter: a single batch has flagged them as regressions
   that vanish on re-run (EXPERIMENTS.md, PR 5) — so take the median of
   independent batches. Second, bechamel's per-sample bookkeeping
   allocates on the major heap, and OCaml prices every major allocation
   with a marking slice proportional to the live heap; once the tables
   pass has built its memoized traces (~3M live words), that overhead
   swamps the OLS estimate of a sub-microsecond kernel (tab1 read ~1 µs
   where a plain loop under the same heap times it at ~51 ns) — so time
   these with a calibrated direct loop that has no per-sample machinery
   at all. *)
let fast_kernels : (string * (unit -> unit)) list =
  [
    ( "tab1:machine-instantiation",
      fun () ->
        match Config.validate Config.default with
        | Ok () -> ()
        | Error msg -> failwith msg );
    ( "obs:counter-guard-off-x1000",
      fun () ->
        for _ = 1 to 1000 do
          Registry.with_ambient (fun r ->
              Registry.inc (Registry.counter r "bench_never_total"))
        done );
    ( "obs:span-guard-off-x1000",
      fun () ->
        for _ = 1 to 1000 do
          Span.with_span "bench-noop" ignore
        done );
    ( "obs:counter-add-x1000",
      fun () ->
        let c = Lazy.force obs_local_counter in
        for _ = 1 to 1000 do
          Registry.inc c
        done );
    ( "obs:histogram-observe-x1000",
      fun () ->
        let h = Lazy.force obs_local_hist in
        for i = 1 to 1000 do
          Registry.observe h i
        done );
    ( "obs:scrape",
      fun () -> ignore (Registry.scrape (Lazy.force obs_scrape_registry)) );
  ]

let tests =
  let open Bechamel in
  let stage name f = Test.make ~name (Staged.stage f) in
  [
    stage "fig1:narrow-dependence-scan" (fun () ->
        ignore (Analysis.narrow_dependence_pct (Lazy.force bench_trace)));
    stage "opmix:operand-width-scan" (fun () ->
        ignore (Analysis.operand_mix (Lazy.force bench_trace)));
    stage "fig5:width-predictor-throughput" predictor_kernel;
    stage "fig6:sim-8_8_8" (sim_kernel "8_8_8");
    stage "fig7:sim-baseline" (sim_kernel "baseline");
    stage "fig8:sim-BR" (sim_kernel "+BR");
    stage "fig9:sim-LR" (sim_kernel "+LR");
    stage "fig11:carry-locality-scan" (fun () ->
        ignore (Analysis.carry_not_propagated_pct (Lazy.force bench_trace) ~arith:true);
        ignore (Analysis.carry_not_propagated_pct (Lazy.force bench_trace) ~arith:false));
    stage "fig12:sim-CR" (sim_kernel "+CR");
    stage "fig13:distance-scan" (fun () ->
        ignore (Analysis.mean_distance (Lazy.force bench_trace)));
    stage "cp:sim-CP" (sim_kernel "+CP");
    stage "ir:sim-IR" (sim_kernel "+IR");
    stage "analysis:bidir" (fun () ->
        ignore (Static.analyze_bidir (Lazy.force sim_trace)));
    stage "tab2:suite-derivation" (fun () -> ignore (Workloads.suite ()));
    stage "codec:encode" (fun () ->
        ignore (Codec.encode (Lazy.force bench_trace)));
    stage "codec:decode" (fun () ->
        ignore
          (Codec.decode
             ~profile:(Profile.find_spec_int "gcc")
             (Lazy.force bench_encoded)));
    stage "codec:text-load" (fun () ->
        ignore (Trace_io.load (Lazy.force bench_text_file)));
    (* SoA hot-path pair: the record->column packing cost, and the
       codec's zero-copy path that materializes columns straight from
       the varint stream (no uop records are ever built — compare with
       codec:text-load for what the record path costs) *)
    stage "soa:of-uops" (fun () ->
        ignore (Hc_isa.Uop_soa.of_uops (Lazy.force bench_uop_records)));
    stage "soa:decode-zero-copy" (fun () ->
        ignore
          (Hc_trace.Trace.soa
             (Codec.decode
                ~profile:(Profile.find_spec_int "gcc")
                (Lazy.force bench_encoded))));
    (* accounting overhead guard pair: same trace, same scheme, with and
       without the cycle-accounting accumulator. Off must price only the
       field-test guard (compare against acct:sim-on and ir:sim-IR). *)
    stage "acct:sim-off" (sim_kernel "+IR");
    stage "acct:sim-on" (fun () ->
        let cfg = Config.with_scheme Config.default (Config.find_scheme "+IR") in
        let a =
          Accounting.create ~issue_width:cfg.Config.issue_width
            ~commit_width:cfg.Config.commit_width ()
        in
        ignore
          (Pipeline.run ~accounting:a ~cfg ~decide:Hc_steering.Policy.decide
             ~scheme_name:"+IR" (Lazy.force sim_trace)));
    stage "cache:warm-reload" (fun () ->
        match
          Artifact_cache.find_trace (Lazy.force bench_cache)
            ~profile:(Profile.find_spec_int "gcc") ~length:5_000
        with
        | Some _ -> ()
        | None -> failwith "cache:warm-reload: entry vanished (expected hit)");
    stage "fig14:one-app-end-to-end" (fun () ->
        let p = List.hd (Workloads.category_apps Profile.Multimedia) in
        let tr = Generator.generate_sliced ~length:1_000 p in
        let base =
          Pipeline.run ~cfg:Config.baseline ~decide:Hc_steering.Policy.decide
            ~scheme_name:"baseline" tr
        in
        let ir =
          Pipeline.run
            ~cfg:(Config.with_scheme Config.default (Config.find_scheme "+IR"))
            ~decide:Hc_steering.Policy.decide ~scheme_name:"+IR" tr
        in
        ignore (Hc_sim.Metrics.speedup_pct ~baseline:base ir));
  ]

(* One bechamel pass over [tests]; returns (full kernel name, ns/run). *)
let measure_tests tests =
  let open Bechamel in
  let open Toolkit in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.25) ~kde:(Some 500) ()
  in
  let test = Test.make_grouped ~name:"helper_cluster" ~fmt:"%s %s" tests in
  let raw = Benchmark.all cfg instances test in
  let results =
    List.map (fun instance -> Analyze.all ols instance raw) instances
  in
  let results = Analyze.merge ols instances results in
  let clock = Hashtbl.find results (Measure.label Instance.monotonic_clock) in
  Hashtbl.fold
    (fun name ols acc ->
      match Analyze.OLS.estimates ols with
      | Some [ ns ] -> (name, ns) :: acc
      | Some _ | None -> acc)
    clock []

let median xs =
  let a = Array.of_list xs in
  Array.sort compare a;
  a.(Array.length a / 2)

let fast_batches = 5

let fast_warmup_iters = 200

(* One direct-loop measurement: grow the iteration count until a run
   fills a ~20 ms window (clock granularity and loop overhead both
   vanish at that scale), then time one more window at that count. *)
let time_fast fn =
  let window_s = 0.02 in
  let rec calibrate n =
    let t0 = Unix.gettimeofday () in
    for _ = 1 to n do
      fn ()
    done;
    let dt = Unix.gettimeofday () -. t0 in
    if dt < window_s && n < 100_000_000 then calibrate (n * 4) else n
  in
  let n = calibrate 100 in
  let t0 = Unix.gettimeofday () in
  for _ = 1 to n do
    fn ()
  done;
  (Unix.gettimeofday () -. t0) /. float_of_int n *. 1e9

let run_bechamel () =
  print_endline "\n==================================================================";
  print_endline " Micro-benchmarks (Bechamel, one per table/figure)";
  print_endline "==================================================================";
  (* fast kernels: warm up, then the median of independent direct-loop
     batches (see the fast_kernels comment for why not bechamel) *)
  List.iter
    (fun (_, fn) ->
      for _ = 1 to fast_warmup_iters do
        fn ()
      done)
    fast_kernels;
  let batches =
    List.init fast_batches (fun _ ->
        List.map (fun (name, fn) -> (name, time_fast fn)) fast_kernels)
  in
  let fast =
    List.map
      (fun (name, _) ->
        let samples = List.map (fun b -> List.assoc name b) batches in
        ("helper_cluster " ^ name, median samples))
      fast_kernels
  in
  let slow = measure_tests tests in
  let rows =
    List.sort (fun (a, _) (b, _) -> String.compare a b) (slow @ fast)
  in
  List.iter
    (fun (name, ns) -> Printf.printf "%-45s %12.1f ns/run\n" name ns)
    rows;
  rows

(* ----- part 2b: per-uop allocation measurement ----- *)

(* Marginal minor-heap allocation of the untraced simulator, in words
   per uop. Two warm runs over traces of different lengths cancel every
   per-run fixed cost (the Metrics record, counter tables, first-run
   scratch-arena growth), leaving only what scales with the uop count —
   which on the SoA hot path must be zero. [Gc.minor_words] counts
   allocated words deterministically, so the gate is exact, not a
   timing statistic. *)
let alloc_trace_long =
  lazy (Generator.generate_sliced ~length:4_000 (Profile.find_spec_int "gcc"))

type alloc_measure = {
  a_uops_short : int;
  a_words_short : float;
  a_uops_long : int;
  a_words_long : float;
  a_words_per_uop : float;
}

let measure_alloc () =
  let cfg = Config.with_scheme Config.default (Config.find_scheme "8_8_8") in
  let run tr =
    ignore
      (Pipeline.run ~cfg ~decide:Hc_steering.Policy.decide ~scheme_name:"8_8_8"
         tr)
  in
  let short = Lazy.force sim_trace in
  let long = Lazy.force alloc_trace_long in
  (* warm runs size the per-domain scratch arenas once *)
  run short;
  run long;
  let words tr =
    let w0 = Gc.minor_words () in
    run tr;
    Gc.minor_words () -. w0
  in
  let words_short = words short in
  let words_long = words long in
  let uops_short = Hc_trace.Trace.length short in
  let uops_long = Hc_trace.Trace.length long in
  {
    a_uops_short = uops_short;
    a_words_short = words_short;
    a_uops_long = uops_long;
    a_words_long = words_long;
    a_words_per_uop =
      (words_long -. words_short) /. float_of_int (uops_long - uops_short);
  }

let alloc_gate () =
  let m = measure_alloc () in
  Printf.printf "alloc-gate: %d uops -> %.0f minor words, %d uops -> %.0f minor words\n"
    m.a_uops_short m.a_words_short m.a_uops_long m.a_words_long;
  Printf.printf "alloc-gate: marginal %.4f minor words/uop\n" m.a_words_per_uop;
  if m.a_words_per_uop > 0. then begin
    prerr_endline
      "alloc-gate: FAIL - untraced sim allocates on the per-uop path";
    exit 1
  end;
  print_endline "alloc-gate: OK (allocation-free per uop)"

(* ----- part 3: machine-readable results ----- *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let timed_regenerate ~jobs =
  Domain_pool.set_jobs jobs;
  let t0 = Unix.gettimeofday () in
  regenerate ();
  Unix.gettimeofday () -. t0

(* Cold-vs-warm artifact cache, measured end to end on the full SPEC
   sweep (the 8_8_8 scheme x 12 profiles x 30k uops) against a fresh
   temp root: the cold pass generates, simulates and publishes, a
   second Runs instance over the same root then satisfies every cell
   from its finished-metrics entry without touching a trace. The warm
   counters must show 12 run hits / 0 trace activity — anything else
   is a caching bug worth failing the bench run over. *)
let timed_cache ~jobs =
  Domain_pool.set_jobs jobs;
  let root = Filename.temp_file "hc_bench_cachecw" "" in
  Sys.remove root;
  Fun.protect
    ~finally:(fun () -> rm_rf root)
    (fun () ->
      let sweep = List.map (fun p -> ("8_8_8", p)) Runs.spec_profiles in
      let cold_cache = Artifact_cache.create ~root () in
      let cold = Runs.create ~length:30_000 ~cache:cold_cache () in
      let t0 = Unix.gettimeofday () in
      Runs.ensure cold sweep;
      let cold_s = Unix.gettimeofday () -. t0 in
      let warm_cache = Artifact_cache.create ~root () in
      let warm = Runs.create ~length:30_000 ~cache:warm_cache () in
      let t0 = Unix.gettimeofday () in
      Runs.ensure warm sweep;
      let warm_s = Unix.gettimeofday () -. t0 in
      let counts = Artifact_cache.counts warm_cache in
      if counts.Artifact_cache.run_hits <> List.length sweep then
        failwith "bench: warm cache pass missed (expected all run hits)";
      if counts.Artifact_cache.trace_hits + counts.Artifact_cache.trace_misses
         <> 0
      then failwith "bench: warm cache pass touched traces (expected none)";
      (cold_s, warm_s, Artifact_cache.counts cold_cache, counts))

(* A short observed sweep with the ambient registry and span collector
   on — run after the kernels, so enabling observability can never
   contaminate their timings: 8_8_8 over the 12 seed profiles at 2k
   uops, scraped into the snapshot. This regression-tracks the counter
   surface itself (names, labels, totals) across PRs. *)
let registry_sweep_length = 2_000

let registry_sweep () =
  let r = Registry.enable () in
  Registry.reset r;
  ignore (Span.enable ());
  let runs = Runs.create ~length:registry_sweep_length () in
  Runs.ensure runs (List.map (fun p -> ("8_8_8", p)) Runs.spec_profiles);
  let samples = Registry.scrape r in
  let span_count =
    match Span.ambient () with Some c -> Span.count c | None -> 0
  in
  Registry.disable ();
  Span.disable ();
  (samples, span_count)

let registry_rows samples =
  List.concat_map
    (fun (s : Registry.sample) ->
      let key =
        s.Registry.s_name
        ^
        match s.Registry.s_labels with
        | [] -> ""
        | ls ->
          "{"
          ^ String.concat "," (List.map (fun (k, v) -> k ^ "=" ^ v) ls)
          ^ "}"
      in
      match s.Registry.s_value with
      | Registry.Counter_v v | Registry.Gauge_v v -> [ (key, v) ]
      | Registry.Histogram_v hv ->
        [ (key ^ "_count", hv.Registry.h_count);
          (key ^ "_sum", hv.Registry.h_sum) ])
    samples

let write_json ~path ~kernels ~alloc ~regen ~cache ~registry =
  let pool = Domain_pool.get () in
  let oc = open_out path in
  let p fmt = Printf.fprintf oc fmt in
  p "{\n";
  p "  \"schema\": 5,\n";
  (* run metadata: git SHA, host cores, jobs, seed fingerprint, wall
     clock — so a BENCH_*.json snapshot is self-describing *)
  p "  %s,\n"
    (Meta.to_json_fields (Meta.capture ~jobs:(Domain_pool.jobs pool) ()));
  (* domain-pool profiling: per-worker task counts and busy/wait wall
     time for the pool the parallel regeneration pass ran on *)
  p "  \"pool\": {\n";
  p "    \"jobs\": %d,\n" (Domain_pool.jobs pool);
  p "    \"max_queue_depth\": %d,\n" (Domain_pool.max_queue_depth pool);
  p "    \"workers\": [\n";
  let stats = Domain_pool.stats pool in
  Array.iteri
    (fun i (s : Domain_pool.worker_stats) ->
      p "      {\"tasks\": %d, \"busy_s\": %.4f, \"wait_s\": %.4f}%s\n"
        s.Domain_pool.w_tasks s.Domain_pool.w_busy_s s.Domain_pool.w_wait_s
        (if i = Array.length stats - 1 then "" else ","))
    stats;
  p "    ]\n";
  p "  },\n";
  p "  \"kernels_ns_per_run\": {\n";
  let n = List.length kernels in
  List.iteri
    (fun i (name, ns) ->
      p "    \"%s\": %.1f%s\n" (json_escape name) ns
        (if i = n - 1 then "" else ","))
    kernels;
  p "  }";
  ( match alloc with
  | None -> ()
  | Some m ->
    p ",\n  \"alloc\": {\n";
    p "    \"uops_short\": %d,\n" m.a_uops_short;
    p "    \"minor_words_short\": %.0f,\n" m.a_words_short;
    p "    \"uops_long\": %d,\n" m.a_uops_long;
    p "    \"minor_words_long\": %.0f,\n" m.a_words_long;
    p "    \"minor_words_per_uop\": %.4f\n" m.a_words_per_uop;
    p "  }" );
  ( match regen with
  | None -> ()
  | Some (seq_s, par_jobs, par_s) ->
    p ",\n  \"regenerate\": {\n";
    p "    \"length\": 30000,\n";
    p "    \"sequential_wall_s\": %.3f,\n" seq_s;
    p "    \"parallel_jobs\": %d,\n" par_jobs;
    p "    \"parallel_wall_s\": %.3f,\n" par_s;
    p "    \"speedup\": %.3f\n" (if par_s > 0. then seq_s /. par_s else 0.);
    p "  }" );
  ( match cache with
  | None -> ()
  | Some (cold_s, warm_s, cold_c, warm_c) ->
    p ",\n  \"cache\": {\n";
    p "    \"length\": 30000,\n";
    p "    \"scheme\": \"8_8_8\",\n";
    p "    \"profiles\": %d,\n" (List.length Runs.spec_profiles);
    p "    \"cold_wall_s\": %.3f,\n" cold_s;
    p "    \"warm_wall_s\": %.3f,\n" warm_s;
    p "    \"speedup\": %.1f,\n" (if warm_s > 0. then cold_s /. warm_s else 0.);
    p "    \"cold_run_hits\": %d,\n" cold_c.Artifact_cache.run_hits;
    p "    \"cold_run_misses\": %d,\n" cold_c.Artifact_cache.run_misses;
    p "    \"cold_trace_misses\": %d,\n" cold_c.Artifact_cache.trace_misses;
    p "    \"warm_run_hits\": %d,\n" warm_c.Artifact_cache.run_hits;
    p "    \"warm_run_misses\": %d,\n" warm_c.Artifact_cache.run_misses;
    p "    \"warm_trace_hits\": %d\n" warm_c.Artifact_cache.trace_hits;
    p "  }" );
  ( match registry with
  | None -> ()
  | Some (samples, span_count) ->
    p ",\n  \"registry\": {\n";
    p "    \"length\": %d,\n" registry_sweep_length;
    p "    \"scheme\": \"8_8_8\",\n";
    p "    \"profiles\": %d,\n" (List.length Runs.spec_profiles);
    p "    \"spans_recorded\": %d,\n" span_count;
    p "    \"counters\": {\n";
    let rows = registry_rows samples in
    let n = List.length rows in
    List.iteri
      (fun i (k, v) ->
        p "      \"%s\": %d%s\n" (json_escape k) v
          (if i = n - 1 then "" else ","))
      rows;
    p "    }\n";
    p "  }" );
  p "\n}\n";
  close_out oc;
  Printf.printf "\nwrote %s\n" path

let () =
  let argv = Array.to_list Sys.argv in
  let only_micro = List.mem "--micro" argv in
  let only_tables = List.mem "--tables" argv in
  let rec find_opt_value flag = function
    | [] -> None
    | f :: v :: _ when f = flag -> Some v
    | _ :: rest -> find_opt_value flag rest
  in
  ( match find_opt_value "--jobs" argv with
  | Some v -> (
    match int_of_string_opt v with
    | Some n when n > 0 -> Domain_pool.set_jobs n
    | Some _ | None ->
      prerr_endline "--jobs expects a positive integer";
      exit 1 )
  | None -> () );
  if List.mem "--alloc-gate" argv then begin
    alloc_gate ();
    exit 0
  end;
  match find_opt_value "--json" argv with
  | Some path ->
    let regen =
      if only_micro then None
      else begin
        (* sequential first, then the domain-pool fan-out: same work, same
           results (bit-identical, see test_parallel), different wall.
           The parallel pass uses the host's default pool size (HC_JOBS or
           the recommended domain count) - never oversubscribe: domains
           beyond the core count make the allocation-heavy simulator
           slower, not faster *)
        let seq_s = timed_regenerate ~jobs:1 in
        let par_jobs = Domain_pool.default_jobs () in
        let par_s = timed_regenerate ~jobs:par_jobs in
        Some (seq_s, par_jobs, par_s)
      end
    in
    let cache =
      if only_micro then None
      else Some (timed_cache ~jobs:(Domain_pool.default_jobs ()))
    in
    let kernels = if only_tables then [] else run_bechamel () in
    let alloc = if only_tables then None else Some (measure_alloc ()) in
    (* observed sweep last: the ambient registry only turns on after
       every timed pass has finished *)
    let registry = Some (registry_sweep ()) in
    write_json ~path ~kernels ~alloc ~regen ~cache ~registry
  | None ->
    if not only_micro then regenerate ();
    if not only_tables then ignore (run_bechamel ())
