(* Tests for the steering policy, driven through a synthetic rename-stage
   context with controlled predictor state. *)

module Config = Hc_sim.Config
module Steer = Hc_sim.Steer
module Policy = Hc_steering.Policy
module Bundle = Hc_predictors.Bundle
module Width_predictor = Hc_predictors.Width_predictor
module Carry_predictor = Hc_predictors.Carry_predictor
module Uop = Hc_isa.Uop
module Opcode = Hc_isa.Opcode
module Reg = Hc_isa.Reg

(* a context where register operands' believed widths come from their
   concrete values in the uop (as if all producers had written back) *)
let ctx ?(scheme = Config.find_scheme "+IR") ?(flags_narrow = false)
    ?(occ_w = 0.3) ?(occ_n = 0.1) ?(backlog_w = 0) ?(backlog_n = 0)
    ?(ewma_w = 0.) ?(rob_occ = 0.3) ?(preds = Bundle.create ()) (u : Uop.t) =
  let cfg = Config.with_scheme Config.default scheme in
  let info operand =
    let v =
      List.assq operand (List.combine u.Uop.srcs u.Uop.src_vals)
    in
    Steer.src_info ~narrow:(Hc_isa.Width.is_narrow v) ~known:true
      ~cluster:(Some Config.Wide)
  in
  let occupancy c = match c with Config.Wide -> occ_w | Config.Narrow -> occ_n in
  let ewma c = match c with Config.Wide -> ewma_w | Config.Narrow -> 0. in
  {
    Steer.cfg;
    preds;
    source_info = info;
    flags_in_narrow = (fun () -> flags_narrow);
    occupancy_lt = (fun c limit -> occupancy c < limit);
    ready_backlog =
      (fun c -> match c with Config.Wide -> backlog_w | Config.Narrow -> backlog_n);
    backlog_ewma_gt = (fun c limit -> ewma c > limit);
    rob_occupancy_lt = (fun limit -> rob_occ < limit);
  }

let mk ?(op = Opcode.Add) ?(dst = Some Reg.Eax) ?(pc = 0x400000) srcs vals =
  Uop.make ~id:0 ~pc ~op ~srcs ~dst ~src_vals:vals ()

let trained_narrow_preds pc =
  let preds = Bundle.create () in
  for _ = 1 to 4 do
    Width_predictor.update preds.Bundle.width pc ~narrow:true
  done;
  preds

let trained_carry_preds pc =
  let preds = Bundle.create () in
  for _ = 1 to 4 do
    Carry_predictor.update preds.Bundle.carry pc ~carry_local:true;
    Width_predictor.update preds.Bundle.width pc ~narrow:true
  done;
  preds

let check_decision name expected got =
  Alcotest.(check string) name expected (Format.asprintf "%a" Steer.pp_decision got)

let test_no_helper_means_wide () =
  let u = mk [ Uop.Reg Reg.Eax; Uop.Imm 1 ] [ 1; 1 ] in
  check_decision "monolithic steers wide" "steer:wide"
    (Policy.decide (ctx ~scheme:Config.monolithic u) u)

let test_fp_mul_div_always_wide () =
  List.iter
    (fun op ->
      let u = mk ~op [ Uop.Reg Reg.Eax; Uop.Reg Reg.Ecx ] [ 1; 2 ] in
      let preds = trained_narrow_preds u.Uop.pc in
      check_decision (Opcode.to_string op) "steer:wide"
        (Policy.decide (ctx ~preds u) u))
    [ Opcode.Fp_add; Opcode.Fp_mul; Opcode.Fp_div; Opcode.Mul; Opcode.Div ]

let test_888_needs_confident_prediction () =
  let u = mk [ Uop.Reg Reg.Eax; Uop.Imm 1 ] [ 1; 1 ] in
  check_decision "cold predictor keeps it wide" "steer:wide"
    (Policy.decide (ctx u) u);
  let preds = trained_narrow_preds u.Uop.pc in
  check_decision "confident narrow prediction steers" "steer:narrow(888)"
    (Policy.decide (ctx ~preds u) u)

let test_888_rejects_wide_source () =
  let u = mk [ Uop.Reg Reg.Eax; Uop.Imm 1 ] [ 0x1_0000; 1 ] in
  let preds = trained_narrow_preds u.Uop.pc in
  check_decision "wide source blocks 8-8-8" "steer:wide"
    (Policy.decide (ctx ~preds u) u)

let test_br_follows_flags () =
  let u = mk ~op:Opcode.Branch_cond ~dst:None [ Uop.Reg Reg.Eflags ] [ 0 ] in
  check_decision "flags in wide keeps branch wide" "steer:wide"
    (Policy.decide (ctx ~flags_narrow:false u) u);
  check_decision "flags in narrow pulls branch in" "steer:narrow(br)"
    (Policy.decide (ctx ~flags_narrow:true u) u);
  let no_br = Config.find_scheme "8_8_8" in
  check_decision "without BR branches stay wide" "steer:wide"
    (Policy.decide (ctx ~scheme:no_br ~flags_narrow:true u) u)

let test_cr_steers_8_32_32 () =
  let u = mk [ Uop.Reg Reg.Esi; Uop.Imm 4 ] [ 0x0800_0000; 4 ] in
  check_decision "cold carry predictor keeps wide" "steer:wide"
    (Policy.decide (ctx u) u);
  let preds = trained_carry_preds u.Uop.pc in
  check_decision "confident carry-local steers" "steer:narrow(cr)"
    (Policy.decide (ctx ~preds u) u);
  let lr = Config.find_scheme "+LR" in
  check_decision "CR disabled in earlier schemes" "steer:wide"
    (Policy.decide (ctx ~scheme:lr ~preds u) u)

let test_cr_load_needs_narrow_value () =
  let u =
    mk ~op:Opcode.Load [ Uop.Reg Reg.Esi; Uop.Imm 4 ] [ 0x0800_0000; 4 ]
  in
  let preds = Bundle.create () in
  for _ = 1 to 4 do
    Carry_predictor.update preds.Bundle.carry u.Uop.pc ~carry_local:true;
    (* loaded value predicted wide: the 8-bit register file cannot hold it *)
    Width_predictor.update preds.Bundle.width u.Uop.pc ~narrow:false
  done;
  check_decision "wide-loading CR load stays wide" "steer:wide"
    (Policy.decide (ctx ~preds u) u);
  let preds = trained_carry_preds u.Uop.pc in
  check_decision "narrow-loading CR load steers" "steer:narrow(cr)"
    (Policy.decide (ctx ~preds u) u)

let test_ir_split_trigger () =
  let u = mk ~op:Opcode.Store ~dst:None
      [ Uop.Reg Reg.Esi; Uop.Imm 4; Uop.Reg Reg.Eax ]
      [ 0x0800_0000; 4; 0x1_0000 ]
  in
  check_decision "no congestion, no split" "steer:wide" (Policy.decide (ctx u) u);
  check_decision "sustained wide backlog splits the store" "split"
    (Policy.decide (ctx ~ewma_w:2.0 u) u);
  check_decision "commit-blocked machine does not split" "steer:wide"
    (Policy.decide (ctx ~ewma_w:2.0 ~rob_occ:0.95 u) u);
  let cp = Config.find_scheme "+CP" in
  check_decision "IR disabled in earlier schemes" "steer:wide"
    (Policy.decide (ctx ~scheme:cp ~ewma_w:2.0 u) u)

let test_split_requires_idle_helper () =
  let u =
    mk ~op:Opcode.Xor [ Uop.Reg Reg.Eax; Uop.Reg Reg.Ecx ] [ 0x1_0000; 0x2_0000 ]
  in
  (* wide sources so neither 888 nor CR applies; IR eligibility on *)
  check_decision "busy helper blocks split" "steer:wide"
    (Policy.decide (ctx ~ewma_w:2.0 ~backlog_n:2 u) u);
  check_decision "idle helper accepts split" "split"
    (Policy.decide (ctx ~ewma_w:2.0 u) u);
  let nodest = Config.find_scheme "+IR(nodest)" in
  check_decision "nodest variant skips dest-producing uops" "steer:wide"
    (Policy.decide (ctx ~scheme:nodest ~ewma_w:2.0 u) u)

let test_stack_has_baseline () =
  Alcotest.(check string) "baseline first" "baseline" (fst (List.hd Policy.stack));
  Alcotest.(check int) "eight entries" 8 (List.length Policy.stack)

let suite =
  ( "policy",
    [
      Alcotest.test_case "monolithic" `Quick test_no_helper_means_wide;
      Alcotest.test_case "fp/mul/div wide" `Quick test_fp_mul_div_always_wide;
      Alcotest.test_case "8-8-8 confidence gate" `Quick
        test_888_needs_confident_prediction;
      Alcotest.test_case "8-8-8 wide source" `Quick test_888_rejects_wide_source;
      Alcotest.test_case "BR follows flags" `Quick test_br_follows_flags;
      Alcotest.test_case "CR 8-32-32" `Quick test_cr_steers_8_32_32;
      Alcotest.test_case "CR loads need narrow data" `Quick
        test_cr_load_needs_narrow_value;
      Alcotest.test_case "IR trigger off when calm" `Quick test_ir_split_trigger;
      Alcotest.test_case "IR needs idle helper" `Quick test_split_requires_idle_helper;
      Alcotest.test_case "policy stack" `Quick test_stack_has_baseline;
    ] )
