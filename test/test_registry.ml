(* The observability layer: metrics-registry semantics (registration,
   kinds, log2 histogram bucketing with pinned percentile vectors),
   deterministic shard-merged scrapes under Domain_pool (including a
   QCheck sweep over arbitrary op interleavings), the ambient on/off
   discipline and its zero-perturbation guarantee, registry aggregates
   matching the Metrics / Artifact_cache / Domain_pool ground truth on
   all 12 seed workloads, span collection + JSONL export read back
   through lib/report's strict parser, Prometheus exposition round-trip,
   the live progress reporter, and the sink's dropped-event warning. *)

module Registry = Hc_obs.Registry
module Span = Hc_obs.Span
module Log = Hc_obs.Log
module Prom = Hc_obs.Prom
module Sink = Hc_obs.Sink
module Event = Hc_obs.Event
module Json = Hc_report.Json
module Domain_pool = Hc_core.Domain_pool
module Artifact_cache = Hc_core.Artifact_cache
module Telemetry = Hc_core.Telemetry
module Runs = Hc_core.Runs
module Profile = Hc_trace.Profile
module Metrics = Hc_sim.Metrics

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

(* scratch paths *)
let tmp_path suffix =
  let path = Filename.temp_file "hc_test_registry" suffix in
  at_exit (fun () -> try Sys.remove path with Sys_error _ -> ());
  path

let rec rm_rf path =
  match Sys.is_directory path with
  | true ->
    Array.iter (fun n -> rm_rf (Filename.concat path n)) (Sys.readdir path);
    Sys.rmdir path
  | false -> Sys.remove path
  | exception Sys_error _ -> ()

let tmp_dir () =
  let path = Filename.temp_file "hc_test_registry" ".d" in
  Sys.remove path;
  at_exit (fun () -> rm_rf path);
  path

let read_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* ----- counters, gauges, registration ----- *)

let test_counter_basics () =
  let r = Registry.create () in
  let c = Registry.counter r ~help:"h" "a_total" in
  Registry.inc c;
  Registry.add c 41;
  (* same name and labels return the same cell *)
  Registry.inc (Registry.counter r "a_total");
  let samples = Registry.scrape r in
  check_int "merged" 43 (Registry.counter_value samples "a_total");
  (* distinct labels are distinct series *)
  let cl = Registry.counter r ~labels:[ ("k", "x") ] "a_total" in
  Registry.add cl 5;
  let samples = Registry.scrape r in
  check_int "labeled" 5
    (Registry.counter_value samples ~labels:[ ("k", "x") ] "a_total");
  check_int "unlabeled unchanged" 43 (Registry.counter_value samples "a_total");
  (* kind clash and bad names are programmer errors *)
  check "kind clash" true
    (match Registry.gauge r "a_total" with
    | exception Invalid_argument _ -> true
    | _ -> false);
  check "bad name" true
    (match Registry.counter r "9bad" with
    | exception Invalid_argument _ -> true
    | _ -> false);
  (* reset zeroes values but keeps registrations *)
  Registry.reset r;
  check_int "after reset" 0 (Registry.counter_value (Registry.scrape r) "a_total")

let test_gauge_ops () =
  let r = Registry.create () in
  let g = Registry.gauge r "depth" in
  Registry.gauge_set g 7;
  check_int "set" 7 (Registry.gauge_get g);
  Registry.gauge_add g 3;
  check_int "add" 10 (Registry.gauge_get g);
  Registry.gauge_max g 4;
  check_int "max no-op" 10 (Registry.gauge_get g);
  Registry.gauge_max g 25;
  check_int "max raises" 25 (Registry.gauge_get g);
  match Registry.find_value (Registry.scrape r) "depth" [] with
  | Some (Registry.Gauge_v 25) -> ()
  | _ -> Alcotest.fail "gauge not scraped as Gauge_v 25"

(* ----- histogram bucketing ----- *)

let test_bucket_boundaries () =
  (* bucket 0 holds v <= 0; bucket b >= 1 holds 2^(b-1) <= v < 2^b *)
  List.iter
    (fun (v, b) ->
      check_int (Printf.sprintf "bucket_of %d" v) b (Registry.bucket_of v))
    [ (min_int, 0); (-1, 0); (0, 0); (1, 1); (2, 2); (3, 2); (4, 3); (7, 3);
      (8, 4); (1023, 10); (1024, 11); (1 lsl 40, 41); (max_int, Registry.num_buckets - 1) ];
  (* inclusive upper edges *)
  check_int "le 0" 0 (Registry.bucket_le 0);
  check_int "le 3" 7 (Registry.bucket_le 3);
  check_int "le 10" 1023 (Registry.bucket_le 10);
  (* edge consistency: every positive v is covered by its bucket's edges *)
  List.iter
    (fun v ->
      let b = Registry.bucket_of v in
      check (Printf.sprintf "le covers %d" v) true (Registry.bucket_le b >= v);
      if b > 0 then
        check
          (Printf.sprintf "prev le excludes %d" v)
          true
          (Registry.bucket_le (b - 1) < v))
    [ 1; 2; 3; 5; 16; 17; 255; 256; 100_000; 1 lsl 30 ]

let test_pinned_percentiles () =
  let r = Registry.create () in
  let h = Registry.histogram r "lat" in
  (* pinned vector: 1,2,3,4,5,6,7,8 -> buckets b1:{1} b2:{2,3} b3:{4..7} b4:{8} *)
  for v = 1 to 8 do
    Registry.observe h v
  done;
  match Registry.find_value (Registry.scrape r) "lat" [] with
  | Some (Registry.Histogram_v hv) ->
    check_int "count" 8 hv.Registry.h_count;
    check_int "sum" 36 hv.Registry.h_sum;
    check_int "b1" 1 hv.Registry.buckets.(1);
    check_int "b2" 2 hv.Registry.buckets.(2);
    check_int "b3" 4 hv.Registry.buckets.(3);
    check_int "b4" 1 hv.Registry.buckets.(4);
    (* percentiles: smallest bucket edge covering the fraction *)
    check_int "p125" 1 (Registry.hist_percentile hv 0.125);
    check_int "p25" 3 (Registry.hist_percentile hv 0.25);
    check_int "p50" 7 (Registry.hist_percentile hv 0.5);
    check_int "p875" 7 (Registry.hist_percentile hv 0.875);
    check_int "p100" 15 (Registry.hist_percentile hv 1.0);
    check_int "empty" 0
      (Registry.hist_percentile
         { Registry.buckets = Array.make Registry.num_buckets 0;
           h_count = 0; h_sum = 0 }
         0.5);
    check "bad p" true
      (match Registry.hist_percentile hv 1.5 with
      | exception Invalid_argument _ -> true
      | _ -> false)
  | _ -> Alcotest.fail "histogram not scraped"

(* ----- deterministic scrape under Domain_pool ----- *)

let test_shard_merge_parallel () =
  let r = Registry.create () in
  let c = Registry.counter r "ops_total" in
  let h = Registry.histogram r "vals" in
  let pool = Domain_pool.get () in
  (* 64 tasks x 100 increments, spread across every worker domain *)
  ignore
    (Domain_pool.map_list pool
       (fun k ->
         for i = 1 to 100 do
           Registry.add c k;
           Registry.observe h i
         done;
         k)
       (List.init 64 (fun k -> k)));
  let expected_c = 100 * (64 * 63 / 2) in
  let samples = Registry.scrape r in
  check_int "counter merged" expected_c
    (Registry.counter_value samples "ops_total");
  ( match Registry.find_value samples "vals" [] with
  | Some (Registry.Histogram_v hv) ->
    check_int "hist count" (64 * 100) hv.Registry.h_count;
    check_int "hist sum" (64 * (100 * 101 / 2)) hv.Registry.h_sum
  | _ -> Alcotest.fail "histogram missing" );
  (* scrape is stable: a quiesced registry scrapes identically twice *)
  check "stable" true (Registry.scrape r = samples)

let chunk n xs =
  let rec go acc cur k = function
    | [] -> List.rev (if cur = [] then acc else List.rev cur :: acc)
    | x :: rest ->
      if k = n then go (List.rev cur :: acc) [ x ] 1 rest
      else go acc (x :: cur) (k + 1) rest
  in
  go [] [] 0 xs

let prop_shard_merge_any_interleaving =
  let names = [| "qa_total"; "qb_total"; "qc_total"; "qd_total" |] in
  QCheck.Test.make ~name:"scrape == serial sums under any interleaving"
    ~count:30
    (QCheck.make
       QCheck.Gen.(list_size (int_range 1 200) (pair (int_range 0 3) (int_range 0 50))))
    (fun ops ->
      let r = Registry.create () in
      (* serial expectation *)
      let expected = Array.make 4 0 in
      List.iter (fun (i, n) -> expected.(i) <- expected.(i) + n) ops;
      (* parallel execution in arbitrary chunks across the pool *)
      let pool = Domain_pool.get () in
      ignore
        (Domain_pool.map_list pool
           (fun ops ->
             List.iter
               (fun (i, n) -> Registry.add (Registry.counter r names.(i)) n)
               ops;
             0)
           (chunk 7 ops));
      let samples = Registry.scrape r in
      Array.to_list expected
      = List.map
          (fun name -> Registry.counter_value samples name)
          (Array.to_list names))

(* ----- ambient discipline ----- *)

let test_ambient_discipline () =
  Registry.disable ();
  check "off" false (Registry.is_enabled ());
  let called = ref false in
  Registry.with_ambient (fun _ -> called := true);
  check "guard skips" false !called;
  let r = Registry.enable () in
  check "idempotent" true (Registry.enable () == r);
  Registry.with_ambient (fun _ -> called := true);
  check "guard runs" true !called;
  Registry.disable ();
  check "off again" true (Registry.ambient () = None)

(* ----- registry aggregates == ground truth on the 12 seed workloads ----- *)

let sum_pool_tasks () =
  Array.fold_left
    (fun acc (s : Domain_pool.worker_stats) -> acc + s.Domain_pool.w_tasks)
    0
    (Domain_pool.stats (Domain_pool.get ()))

let test_aggregates_match_ground_truth () =
  let scheme = "8_8_8" in
  let length = 2_000 in
  let root = tmp_dir () in
  Registry.disable ();
  Span.disable ();
  let r = Registry.enable () in
  Registry.reset r;
  ignore (Span.enable ());
  Fun.protect
    ~finally:(fun () ->
      Registry.disable ();
      Span.disable ())
    (fun () ->
      let tasks0 = sum_pool_tasks () in
      let cache = Artifact_cache.create ~root () in
      let t = Runs.create ~length ~cache () in
      let sweep = List.map (fun p -> (scheme, p)) Runs.spec_profiles in
      Runs.ensure t sweep;
      let samples = Registry.scrape r in
      (* Metrics ground truth: uops retired == sum of committed *)
      let committed =
        List.fold_left
          (fun acc p -> acc + (Runs.metrics t ~scheme p).Metrics.committed)
          0 Runs.spec_profiles
      in
      check_int "uops retired == sum committed" committed
        (Registry.counter_value samples "hc_uops_retired_total");
      check_int "sim runs == cells" (List.length sweep)
        (Registry.counter_value samples "hc_sim_runs_total");
      (* Domain_pool ground truth: tasks counter == worker_stats delta *)
      check_int "pool tasks == worker stats"
        (sum_pool_tasks () - tasks0)
        (Registry.counter_value samples "hc_pool_tasks_total");
      (* Artifact_cache ground truth: per-kind counters == counts record *)
      let c = Artifact_cache.counts cache in
      check_int "trace misses" c.Artifact_cache.trace_misses
        (Registry.counter_value samples
           ~labels:[ ("kind", "trace") ]
           "hc_cache_misses_total");
      check_int "run misses" c.Artifact_cache.run_misses
        (Registry.counter_value samples
           ~labels:[ ("kind", "run") ]
           "hc_cache_misses_total");
      check_int "no heals" 0
        (c.Artifact_cache.trace_heals + c.Artifact_cache.run_heals);
      (* warm pass: a second Runs over the same root hits every cell *)
      let cache2 = Artifact_cache.create ~root () in
      let t2 = Runs.create ~length ~cache:cache2 () in
      Runs.ensure t2 sweep;
      let samples2 = Registry.scrape r in
      let c2 = Artifact_cache.counts cache2 in
      check_int "warm run hits" (List.length sweep) c2.Artifact_cache.run_hits;
      check_int "registry run hits == counts"
        c2.Artifact_cache.run_hits
        (Registry.counter_value samples2
           ~labels:[ ("kind", "run") ]
           "hc_cache_hits_total");
      (* warm pass simulated nothing: sim counter unchanged *)
      check_int "warm adds no sims"
        (Registry.counter_value samples "hc_sim_runs_total")
        (Registry.counter_value samples2 "hc_sim_runs_total");
      (* spans: exactly one simulate span per cold cell, none warm *)
      match Span.ambient () with
      | None -> Alcotest.fail "span collector vanished"
      | Some coll ->
        let stages = Span.by_stage (Span.spans coll) in
        let sim =
          List.find_opt (fun s -> s.Span.st_name = "simulate") stages
        in
        check_int "simulate spans == cold cells" (List.length sweep)
          (match sim with Some s -> s.Span.st_count | None -> 0))

(* ----- observation leaves results bit-identical ----- *)

let test_observation_is_free () =
  Registry.disable ();
  Span.disable ();
  let p = Profile.find_spec_int "gcc" in
  let plain =
    let t = Runs.create ~length:2_000 () in
    Metrics.to_json (Runs.metrics t ~scheme:"+IR" p)
  in
  ignore (Registry.enable ());
  ignore (Span.enable ());
  let observed =
    Fun.protect
      ~finally:(fun () ->
        Registry.disable ();
        Span.disable ())
      (fun () ->
        let t = Runs.create ~length:2_000 () in
        Metrics.to_json (Runs.metrics t ~scheme:"+IR" p))
  in
  check_str "metrics bit-identical under observation" plain observed

(* ----- spans: collection + JSONL read back through the strict parser ----- *)

let test_span_log_roundtrip () =
  Span.disable ();
  ignore (Span.enable ());
  let spans =
    Fun.protect
      ~finally:(fun () -> Span.disable ())
      (fun () ->
        check_int "trivial result" 7
          (Span.with_span ~meta:[ ("k", "v\"x") ] "stage-a" (fun () -> 7));
        ignore (Span.with_span "stage-b" (fun () -> Sys.opaque_identity 1));
        ignore (Span.with_span "stage-a" (fun () -> Sys.opaque_identity 2));
        match Span.ambient () with
        | Some c -> Span.spans c
        | None -> Alcotest.fail "collector vanished")
  in
  check_int "three spans" 3 (List.length spans);
  let path = tmp_path ".jsonl" in
  ignore (Log.write_spans ~path spans);
  let lines =
    String.split_on_char '\n' (String.trim (read_file path))
  in
  check_int "three lines" 3 (List.length lines);
  List.iter2
    (fun line (sp : Span.span) ->
      match Json.parse line with
      | Error at ->
        Alcotest.failf "span JSONL line rejected by strict parser at %d" at
      | Ok j ->
        let str k = Option.bind (Json.member k j) Json.string_value in
        let num k = Option.bind (Json.member k j) Json.number in
        check "schema" true (num "schema" = Some (float_of_int Log.schema));
        check "kind" true (str "kind" = Some "span");
        check "name" true (str "name" = Some sp.Span.sp_name);
        check "track" true (str "track" = Some sp.Span.sp_track);
        check "dur" true
          (num "dur_ns" = Some (float_of_int sp.Span.sp_dur_ns));
        (* meta objects survive, including escaped values *)
        List.iter
          (fun (k, v) ->
            check "meta" true
              (Option.bind (Json.find_path [ "meta"; k ] j) Json.string_value
              = Some v))
          sp.Span.sp_meta)
    lines spans;
  (* aggregation *)
  let stages = Span.by_stage spans in
  check_int "two stages" 2 (List.length stages);
  let a = List.hd stages in
  check_str "sorted by name" "stage-a" a.Span.st_name;
  check_int "stage-a count" 2 a.Span.st_count;
  (* streaming writer *)
  let path2 = tmp_path ".jsonl" in
  let w = Log.create ~path:path2 in
  Log.log_span w (List.hd spans);
  Log.log_event w ~name:"note" ~fields:[ ("n", "3") ];
  check_int "writer lines" 2 (Log.lines w);
  Log.close w;
  let ls = String.split_on_char '\n' (String.trim (read_file path2)) in
  List.iter
    (fun l -> check "writer line parses" true (Result.is_ok (Json.parse l)))
    ls

(* ----- Prometheus exposition round-trip ----- *)

let test_prom_roundtrip () =
  let r = Registry.create () in
  Registry.add (Registry.counter r ~help:"ops with \"quotes\"\n" "p_ops_total") 42;
  Registry.add
    (Registry.counter r ~labels:[ ("kind", "tr\\ace") ] "p_ops_total")
    7;
  Registry.gauge_set (Registry.gauge r "p_depth") 5;
  let h = Registry.histogram r "p_lat" in
  List.iter (Registry.observe h) [ 1; 2; 3; 900 ];
  let text = Prom.to_string (Registry.scrape r) in
  match Prom.parse text with
  | Error e -> Alcotest.failf "self-emitted exposition rejected: %s" e
  | Ok entries ->
    let find name labels =
      List.find_opt
        (fun (e : Prom.entry) ->
          e.Prom.e_name = name && List.sort compare e.Prom.e_labels = List.sort compare labels)
        entries
    in
    check "counter" true
      (Option.map (fun e -> e.Prom.e_value) (find "p_ops_total" [])
      = Some 42.);
    (* label escapes survive the round trip *)
    check "escaped label" true
      (Option.map (fun e -> e.Prom.e_value)
         (find "p_ops_total" [ ("kind", "tr\\ace") ])
      = Some 7.);
    check "gauge" true
      (Option.map (fun e -> e.Prom.e_value) (find "p_depth" []) = Some 5.);
    check "hist count" true
      (Option.map (fun e -> e.Prom.e_value) (find "p_lat_count" []) = Some 4.);
    check "hist sum" true
      (Option.map (fun e -> e.Prom.e_value) (find "p_lat_sum" []) = Some 906.);
    (* +Inf bucket must equal the count, and buckets must be cumulative *)
    check "inf bucket" true
      (Option.map (fun e -> e.Prom.e_value)
         (find "p_lat_bucket" [ ("le", "+Inf") ])
      = Some 4.);
    let buckets =
      List.filter (fun (e : Prom.entry) -> e.Prom.e_name = "p_lat_bucket") entries
    in
    let values = List.map (fun (e : Prom.entry) -> e.Prom.e_value) buckets in
    check "cumulative" true (List.sort compare values = values);
    (* malformed dumps are rejected with the offending line *)
    ( match Prom.parse "ok_total 1\n!bad name 2\n" with
    | Error msg ->
      check "names line 2" true
        (String.length msg >= 7 && String.sub msg 0 7 = "line 2:")
    | Ok _ -> Alcotest.fail "malformed exposition accepted" );
    ( match Prom.parse "ok_total 1 2 3\n" with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail "trailing garbage accepted" )

(* ----- progress reporter ----- *)

let test_progress_reporter () =
  let path = tmp_path ".progress" in
  let out = open_out path in
  let p = Telemetry.progress_create ~out ~label:"sweep" ~enabled:true () in
  Telemetry.progress_add_total p 3;
  Telemetry.progress_tick ~cached:true p;
  Telemetry.progress_tick p;
  Telemetry.progress_tick p;
  check "snapshot" true (Telemetry.progress_snapshot p = (3, 3, 1));
  Telemetry.progress_finish p;
  close_out out;
  let s = read_file path in
  let contains needle =
    let n = String.length needle and m = String.length s in
    let rec go i = i + n <= m && (String.sub s i n = needle || go (i + 1)) in
    go 0
  in
  check "prints done/total" true (contains "3/3");
  check "prints warm count" true (contains "1 warm");
  check "prints label" true (contains "sweep:");
  (* disabled reporter writes nothing *)
  let path2 = tmp_path ".progress" in
  let out2 = open_out path2 in
  let q = Telemetry.progress_create ~out:out2 ~enabled:false () in
  Telemetry.progress_add_total q 2;
  Telemetry.progress_tick q;
  Telemetry.progress_finish q;
  close_out out2;
  check_str "silent when disabled" "" (read_file path2)

(* ----- sink summary / dropped warning ----- *)

let test_sink_dropped_warning () =
  let sink = Sink.create ~ring_capacity:4 ~tracing:true () in
  check "complete: no warning" true (Sink.dropped_warning sink = None);
  for _ = 1 to 10 do
    Sink.emit sink Event.dummy
  done;
  ( match Sink.dropped_warning sink with
  | None -> Alcotest.fail "wrapped ring must warn"
  | Some w ->
    check "mentions the flag" true
      (let n = String.length w in
       let rec go i =
         i + 14 <= n && (String.sub w i 14 = "--trace-buffer" || go (i + 1))
       in
       go 0) );
  let s = Sink.summary sink in
  check "summary counts" true
    (s = "events: 10 pushed, 6 dropped (ring wrap); samples: 0")

let suite =
  ( "registry",
    [
      Alcotest.test_case "counter basics" `Quick test_counter_basics;
      Alcotest.test_case "gauge ops" `Quick test_gauge_ops;
      Alcotest.test_case "histogram bucket boundaries" `Quick
        test_bucket_boundaries;
      Alcotest.test_case "pinned percentile vectors" `Quick
        test_pinned_percentiles;
      Alcotest.test_case "parallel shard merge" `Quick test_shard_merge_parallel;
      QCheck_alcotest.to_alcotest prop_shard_merge_any_interleaving;
      Alcotest.test_case "ambient discipline" `Quick test_ambient_discipline;
      Alcotest.test_case "aggregates == ground truth (12 workloads)" `Slow
        test_aggregates_match_ground_truth;
      Alcotest.test_case "observation is free" `Slow test_observation_is_free;
      Alcotest.test_case "span log JSONL round-trip" `Quick
        test_span_log_roundtrip;
      Alcotest.test_case "prom exposition round-trip" `Quick
        test_prom_roundtrip;
      Alcotest.test_case "progress reporter" `Quick test_progress_reporter;
      Alcotest.test_case "sink dropped warning" `Quick
        test_sink_dropped_warning;
    ] )
