(* Tests for trace-level analyses, on hand-built micro-traces with known
   answers plus invariants over generated traces. *)

module Analysis = Hc_trace.Analysis
module Trace = Hc_trace.Trace
module Generator = Hc_trace.Generator
module Profile = Hc_trace.Profile
module Uop = Hc_isa.Uop
module Opcode = Hc_isa.Opcode
module Reg = Hc_isa.Reg

let mk_trace uops =
  Trace.make ~name:"micro" ~profile:(List.hd Profile.spec_int)
    (Array.of_list uops)

let mk ~id ?(op = Opcode.Add) ?(dst = Some Reg.Eax) ?result srcs vals =
  Uop.make ~id ~pc:(0x400000 + (4 * id)) ~op ~srcs ~dst ~src_vals:vals ?result ()

let test_narrow_dependence_micro () =
  (* two ALU uops: one reads (narrow, narrow), one reads (wide, wide) via
     register operands => 50% narrow-dependent operands *)
  let t =
    mk_trace
      [
        mk ~id:0 [ Uop.Reg Reg.Eax; Uop.Reg Reg.Ecx ] [ 1; 2 ];
        mk ~id:1 [ Uop.Reg Reg.Edx; Uop.Reg Reg.Ebx ] [ 0x1_0000; 0x2_0000 ];
      ]
  in
  Alcotest.(check (float 1e-6)) "half narrow" 50. (Analysis.narrow_dependence_pct t)

let test_narrow_dependence_excludes () =
  (* loads, branches and immediates are outside the Fig 1 scope *)
  let t =
    mk_trace
      [
        mk ~id:0 ~op:Opcode.Load [ Uop.Reg Reg.Esi; Uop.Imm 4 ] [ 0x1_0000; 4 ];
        mk ~id:1 ~op:Opcode.Branch_cond ~dst:None [ Uop.Reg Reg.Eflags ] [ 0 ];
        mk ~id:2 [ Uop.Reg Reg.Eax; Uop.Imm 1 ] [ 1; 1 ];
      ]
  in
  (* only uop 2's single register operand counts, and it is narrow *)
  Alcotest.(check (float 1e-6)) "only ALU reg operands" 100.
    (Analysis.narrow_dependence_pct t)

let test_operand_mix_micro () =
  let t =
    mk_trace
      [
        (* one narrow source *)
        mk ~id:0 [ Uop.Reg Reg.Eax; Uop.Reg Reg.Ecx ] [ 1; 0x1_0000 ];
        (* two narrow, narrow result *)
        mk ~id:1 [ Uop.Reg Reg.Eax; Uop.Reg Reg.Ecx ] [ 1; 2 ];
        (* two narrow, wide result *)
        mk ~id:2 [ Uop.Reg Reg.Eax; Uop.Reg Reg.Ecx ] [ 200; 200 ];
        (* zero narrow *)
        mk ~id:3 [ Uop.Reg Reg.Eax; Uop.Reg Reg.Ecx ] [ 0x1_0000; 0x1_0000 ];
      ]
  in
  let mix = Analysis.operand_mix t in
  Alcotest.(check (float 1e-6)) "one narrow" 25. mix.Analysis.one_narrow;
  Alcotest.(check (float 1e-6)) "two narrow wide" 25.
    mix.Analysis.two_narrow_wide_result;
  Alcotest.(check (float 1e-6)) "two narrow narrow" 25.
    mix.Analysis.two_narrow_narrow_result

let test_carry_micro () =
  let t =
    mk_trace
      [
        (* local: Fig 10's example *)
        mk ~id:0 [ Uop.Reg Reg.Esi; Uop.Imm 0x1C ] [ 0xFFFC_4A02; 0x1C ];
        (* crossing *)
        mk ~id:1 [ Uop.Reg Reg.Esi; Uop.Imm 0x40 ] [ 0xFFFC_40F0; 0x40 ];
      ]
  in
  Alcotest.(check (float 1e-6)) "half local" 50.
    (Analysis.carry_not_propagated_pct t ~arith:true);
  Alcotest.(check (float 1e-6)) "no loads" 0.
    (Analysis.carry_not_propagated_pct t ~arith:false)

let test_distance_micro () =
  let t =
    mk_trace
      [
        mk ~id:0 ~dst:(Some Reg.Eax) [ Uop.Imm 1 ] [ 1 ] ~op:Opcode.Mov;
        mk ~id:1 ~dst:(Some Reg.Ecx) [ Uop.Imm 2 ] [ 2 ] ~op:Opcode.Mov;
        (* first consumer of eax at distance 2, of ecx at distance 1 *)
        mk ~id:2 ~dst:(Some Reg.Edx) [ Uop.Reg Reg.Eax; Uop.Reg Reg.Ecx ] [ 1; 2 ];
        (* re-reading eax later is NOT a first consumption *)
        mk ~id:3 ~dst:(Some Reg.Ebx) [ Uop.Reg Reg.Eax; Uop.Imm 0 ] [ 1; 0 ];
      ]
  in
  let h = Analysis.distance_histogram t in
  Alcotest.(check int) "two first-consumptions" 2 (Hc_stats.Histogram.total h);
  Alcotest.(check (float 1e-6)) "mean distance" 1.5 (Analysis.mean_distance t)

let test_mix_digest_sums () =
  let t = Generator.generate ~length:8_000 (Profile.find_spec_int "twolf") in
  let digest = Analysis.mix_digest t in
  let sum = List.fold_left (fun acc (_, v) -> acc +. v) 0. digest in
  Alcotest.(check bool)
    (Printf.sprintf "digest covers the stream (%.3f)" sum)
    true
    (sum > 0.95 && sum <= 1.01)

let test_ranges_on_generated () =
  List.iter
    (fun name ->
      let t = Generator.generate ~length:6_000 (Profile.find_spec_int name) in
      let pct = Analysis.narrow_dependence_pct t in
      Alcotest.(check bool) (name ^ " narrow-dep in range") true
        (pct >= 0. && pct <= 100.);
      let mix = Analysis.operand_mix t in
      let total =
        mix.Analysis.one_narrow +. mix.Analysis.two_narrow_wide_result
        +. mix.Analysis.two_narrow_narrow_result
      in
      Alcotest.(check bool) (name ^ " mix classes sum <= 100") true (total <= 100.01);
      Alcotest.(check bool) (name ^ " distances positive") true
        (Analysis.mean_distance t > 0.))
    [ "bzip2"; "gcc"; "mcf" ]

let suite =
  ( "analysis",
    [
      Alcotest.test_case "narrow dependence (micro)" `Quick
        test_narrow_dependence_micro;
      Alcotest.test_case "narrow dependence scope" `Quick
        test_narrow_dependence_excludes;
      Alcotest.test_case "operand mix (micro)" `Quick test_operand_mix_micro;
      Alcotest.test_case "carry locality (micro)" `Quick test_carry_micro;
      Alcotest.test_case "first-consumer distance (micro)" `Quick
        test_distance_micro;
      Alcotest.test_case "mix digest sums" `Quick test_mix_digest_sums;
      Alcotest.test_case "ranges on generated traces" `Quick
        test_ranges_on_generated;
    ] )
