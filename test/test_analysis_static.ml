(* The static width-inference engine: abstract-domain transfers, the
   forward pass's soundness gate, the linter's diagnostics, and the
   static_888 oracle's zero-recovery guarantee. *)

module Opcode = Hc_isa.Opcode
module Reg = Hc_isa.Reg
module Uop = Hc_isa.Uop
module Semantics = Hc_isa.Semantics
module Profile = Hc_trace.Profile
module Generator = Hc_trace.Generator
module Trace = Hc_trace.Trace
module Config = Hc_sim.Config
module Metrics = Hc_sim.Metrics
module Counter = Hc_stats.Counter
module Absval = Hc_analysis.Absval
module Static = Hc_analysis.Static
module Lint = Hc_analysis.Lint

let rng = Random.State.make [| 0x57a71c; 2006 |]

let rand32 () = Int64.to_int (Random.State.int64 rng 0x1_0000_0000L)

(* partially known abstraction containing both values *)
let pair_abs v w = Absval.join (Absval.const v) (Absval.const w)

(* ----- abstract domain ----- *)

let test_transfer_exact_on_consts () =
  List.iter
    (fun op ->
      for _ = 1 to 25 do
        let vals = [ rand32 (); rand32 (); rand32 () ] in
        let abs = Absval.transfer op (List.map Absval.const vals) in
        match (Semantics.eval op vals, abs) with
        | Some r, Some a ->
          Alcotest.(check (option int))
            (Printf.sprintf "%s exact on constants" (Opcode.to_string op))
            (Some r) (Absval.to_const a)
        | None, None -> ()
        | Some _, None | None, Some _ ->
          Alcotest.failf "%s: transfer/eval disagree on producing a result"
            (Opcode.to_string op)
      done)
    Opcode.all

let test_add_partial_known () =
  (* low nibble unknown, upper 28 bits proven zero on both operands *)
  let a = pair_abs 3 12 and b = pair_abs 5 10 in
  let sum = Absval.add a b in
  List.iter
    (fun x ->
      List.iter
        (fun y ->
          Alcotest.(check bool) "sum contained" true
            (Absval.contains sum (x + y)))
        [ 5; 10 ])
    [ 3; 12 ];
  Alcotest.(check bool) "bounded sum provably narrow" true
    (Absval.is_narrow ~bits:8 sum);
  Alcotest.(check bool) "top + top proves nothing" true
    (Absval.equal Absval.top (Absval.add Absval.top Absval.top))

let test_shift_partial_known () =
  let a = pair_abs 3 12 in
  let shifted = Absval.shl a (Absval.const 2) in
  List.iter
    (fun x ->
      Alcotest.(check bool) "shifted value contained" true
        (Absval.contains shifted (x lsl 2)))
    [ 3; 12 ];
  Alcotest.(check int) "low bits provably zero" 2
    (Absval.trailing_known_zeros shifted);
  Alcotest.(check bool) "unknown amount gives top" true
    (Absval.equal Absval.top (Absval.shl (Absval.const 1) Absval.top))

let test_mul_width_bound () =
  let a = pair_abs 5 9 and b = pair_abs 3 7 in
  let p = Absval.mul a b in
  List.iter
    (fun x ->
      List.iter
        (fun y ->
          Alcotest.(check bool) "product contained" true
            (Absval.contains p (x * y)))
        [ 3; 7 ])
    [ 5; 9 ];
  (* 4-bit times 3-bit magnitudes: bits >= 7 provably zero *)
  Alcotest.(check bool) "product provably narrow" true
    (Absval.is_narrow ~bits:8 p)

let test_narrow_mirrors_detector () =
  for _ = 1 to 500 do
    let v = rand32 () in
    let a = Absval.const v in
    Alcotest.(check bool)
      (Printf.sprintf "is_narrow(const %x) = Detector.narrow" v)
      (Hc_isa.Detector.narrow ~bits:8 v)
      (Absval.is_narrow ~bits:8 a)
  done

(* ----- the forward pass ----- *)

let test_soundness_all_seeds () =
  (* the tentpole invariant: across every seed workload, no uop the pass
     calls provably narrow has wide ground truth *)
  List.iter
    (fun (p : Profile.t) ->
      let tr = Generator.generate_sliced ~length:20_000 p in
      let st = Static.analyze tr in
      Alcotest.(check int)
        (p.Profile.name ^ ": zero soundness violations")
        0
        (List.length (Static.soundness_violations st tr));
      Alcotest.(check bool)
        (p.Profile.name ^ ": steerable is a subset of provable")
        true
        (st.Static.steerable_count <= st.Static.provable_count);
      Alcotest.(check bool)
        (p.Profile.name ^ ": the pass proves something")
        true
        (st.Static.steerable_count > 0))
    Profile.spec_int

let test_verdict_lookup () =
  let p = Profile.find_spec_int "gcc" in
  let tr = Generator.generate_sliced ~length:4_000 p in
  let st = Static.analyze tr in
  let in_window = Trace.get tr 0 in
  Alcotest.(check bool) "first uop has a verdict" true
    (Static.provably_narrow st in_window
    || not (Static.provably_narrow st in_window));
  let foreign = { in_window with Uop.id = in_window.Uop.id + 1_000_000 } in
  Alcotest.(check bool) "out-of-window uop is never provable" false
    (Static.provably_narrow st foreign);
  Alcotest.(check bool) "out-of-window uop is never steerable" false
    (Static.steerable_uop st foreign)

(* ----- linter ----- *)

let gcc_trace = lazy (Generator.generate_sliced ~length:6_000 (Profile.find_spec_int "gcc"))

let with_uop tr i u =
  let uops = Array.copy tr.Trace.uops in
  uops.(i) <- u;
  { tr with Trace.uops }

let find_uop tr pred =
  let found = ref None in
  Array.iteri
    (fun i u -> if !found = None && pred u then found := Some (i, u))
    tr.Trace.uops;
  match !found with
  | Some iu -> iu
  | None -> Alcotest.fail "fixture uop not found in trace"

let has_error code diags =
  List.exists
    (fun (d : Lint.diagnostic) ->
      d.Lint.code = code && d.Lint.severity = Lint.Error)
    diags

let test_lint_clean () =
  let tr = Lazy.force gcc_trace in
  let diags =
    Lint.check_trace ~file:"gcc" ~expected_profile:(Profile.find_spec_int "gcc")
      tr
  in
  Alcotest.(check bool) "no errors" false (Lint.has_errors diags);
  Alcotest.(check int) "no warnings" 0 (Lint.count Lint.Warning diags)

let test_lint_ul1_monotonicity () =
  let tr = Lazy.force gcc_trace in
  let i, u =
    find_uop tr (fun u -> u.Uop.op = Opcode.Load && not u.Uop.dl0_miss)
  in
  let bad = with_uop tr i { u with Uop.ul1_miss = true } in
  Alcotest.(check bool) "E105 reported" true
    (has_error "E105" (Lint.check_trace bad))

let test_lint_id_density () =
  let tr = Lazy.force gcc_trace in
  let u = Trace.get tr 100 in
  let bad = with_uop tr 100 { u with Uop.id = u.Uop.id + 7 } in
  Alcotest.(check bool) "E101 reported" true
    (has_error "E101" (Lint.check_trace bad))

let test_lint_result_consistency () =
  let tr = Lazy.force gcc_trace in
  let i, u = find_uop tr (fun u -> u.Uop.op = Opcode.Add) in
  let bad = with_uop tr i { u with Uop.result = u.Uop.result lxor 1 } in
  Alcotest.(check bool) "E106 reported" true
    (has_error "E106" (Lint.check_trace bad))

let test_lint_mem_addr () =
  let tr = Lazy.force gcc_trace in
  let i, u = find_uop tr (fun u -> u.Uop.op = Opcode.Load) in
  let bad = with_uop tr i { u with Uop.mem_addr = u.Uop.mem_addr lxor 0x10 } in
  Alcotest.(check bool) "E107 reported" true
    (has_error "E107" (Lint.check_trace bad))

let test_lint_flag_pairing () =
  let tr = Lazy.force gcc_trace in
  let i, u = find_uop tr (fun u -> u.Uop.op = Opcode.Branch_cond) in
  let bad = with_uop tr i { u with Uop.srcs = []; src_vals = [] } in
  Alcotest.(check bool) "E104 reported" true
    (has_error "E104" (Lint.check_trace bad))

let test_lint_report_cap () =
  (* a systematic corruption must not flood the report: per-code cap plus
     an Info overflow summary *)
  let tr = Lazy.force gcc_trace in
  let uops =
    Array.map
      (fun u ->
        if u.Uop.op = Opcode.Load && not u.Uop.dl0_miss then
          { u with Uop.ul1_miss = true }
        else u)
      tr.Trace.uops
  in
  let diags = Lint.check_trace { tr with Trace.uops } in
  Alcotest.(check bool) "errors capped" true (Lint.count Lint.Error diags <= 5);
  Alcotest.(check bool) "overflow summarized" true
    (Lint.count Lint.Info diags >= 1)

let test_lint_config () =
  Alcotest.(check int) "default config clean" 0
    (List.length (Lint.check_config Config.default));
  let bad = { Config.default with Config.narrow_bits = 0 } in
  Alcotest.(check bool) "E201 reported" true
    (has_error "E201" (Lint.check_config bad));
  let inert =
    { Config.default with
      Config.scheme =
        { Config.helper = false; s888 = true; br = false; lr = false;
          cr = false; cp = false; ir = Config.Ir_off } }
  in
  let diags = Lint.check_config inert in
  Alcotest.(check int) "W202 is a warning, not an error" 1
    (Lint.count Lint.Warning diags);
  Alcotest.(check bool) "inert scheme alone passes the gate" false
    (Lint.has_errors diags)

(* ----- the static_888 oracle ----- *)

let test_oracle_zero_recoveries () =
  let runs = Hc_core.Runs.create ~length:8_000 () in
  let p = Profile.find_spec_int "gcc" in
  Hc_core.Runs.ensure runs [ ("8_8_8", p); ("static_888", p) ];
  let oracle = Hc_core.Runs.metrics runs ~scheme:"static_888" p in
  Alcotest.(check int) "zero width flushes" 0
    (Counter.get oracle.Metrics.counters "width_flush");
  Alcotest.(check int) "zero demotions" 0 oracle.Metrics.wide_demoted;
  Alcotest.(check bool) "attribution consistent" true
    (Metrics.attrib_consistent oracle);
  let st = Hc_core.Runs.static_info runs (Hc_core.Runs.trace runs p) in
  Alcotest.(check int) "oracle steers exactly the provable bound"
    st.Static.steerable_count oracle.Metrics.steered_narrow;
  Alcotest.(check (option int)) "bound attached to oracle metrics"
    (Some st.Static.steerable_count) oracle.Metrics.static_narrow_bound;
  let pred = Hc_core.Runs.metrics runs ~scheme:"8_8_8" p in
  Alcotest.(check (option int)) "bound attached to predictor metrics"
    (Some st.Static.steerable_count) pred.Metrics.static_narrow_bound

let suite =
  ( "analysis_static",
    [
      Alcotest.test_case "transfers exact on constants" `Quick
        test_transfer_exact_on_consts;
      Alcotest.test_case "add with partial knowledge" `Quick
        test_add_partial_known;
      Alcotest.test_case "shift with partial knowledge" `Quick
        test_shift_partial_known;
      Alcotest.test_case "mul magnitude bound" `Quick test_mul_width_bound;
      Alcotest.test_case "is_narrow mirrors Detector.narrow" `Quick
        test_narrow_mirrors_detector;
      Alcotest.test_case "soundness on every seed workload" `Slow
        test_soundness_all_seeds;
      Alcotest.test_case "verdict lookup bounds" `Quick test_verdict_lookup;
      Alcotest.test_case "lint: clean trace" `Quick test_lint_clean;
      Alcotest.test_case "lint: ul1 without dl0" `Quick
        test_lint_ul1_monotonicity;
      Alcotest.test_case "lint: id density" `Quick test_lint_id_density;
      Alcotest.test_case "lint: eval result mismatch" `Quick
        test_lint_result_consistency;
      Alcotest.test_case "lint: memory address" `Quick test_lint_mem_addr;
      Alcotest.test_case "lint: flag pairing" `Quick test_lint_flag_pairing;
      Alcotest.test_case "lint: per-code report cap" `Quick
        test_lint_report_cap;
      Alcotest.test_case "lint: configurations" `Quick test_lint_config;
      Alcotest.test_case "static_888 oracle: zero recoveries" `Slow
        test_oracle_zero_recoveries;
    ] )
