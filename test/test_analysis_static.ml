(* The static width-inference engine: abstract-domain transfers, the
   forward pass's soundness gate, the linter's diagnostics, and the
   static_888 oracle's zero-recovery guarantee. *)

module Opcode = Hc_isa.Opcode
module Reg = Hc_isa.Reg
module Uop = Hc_isa.Uop
module Semantics = Hc_isa.Semantics
module Profile = Hc_trace.Profile
module Generator = Hc_trace.Generator
module Trace = Hc_trace.Trace
module Config = Hc_sim.Config
module Metrics = Hc_sim.Metrics
module Counter = Hc_stats.Counter
module Absval = Hc_analysis.Absval
module Static = Hc_analysis.Static
module Lint = Hc_analysis.Lint

let rng = Random.State.make [| 0x57a71c; 2006 |]

let rand32 () = Int64.to_int (Random.State.int64 rng 0x1_0000_0000L)

(* partially known abstraction containing both values *)
let pair_abs v w = Absval.join (Absval.const v) (Absval.const w)

(* ----- abstract domain ----- *)

let test_transfer_exact_on_consts () =
  List.iter
    (fun op ->
      for _ = 1 to 25 do
        let vals = [ rand32 (); rand32 (); rand32 () ] in
        let abs = Absval.transfer op (List.map Absval.const vals) in
        match (Semantics.eval op vals, abs) with
        | Some r, Some a ->
          Alcotest.(check (option int))
            (Printf.sprintf "%s exact on constants" (Opcode.to_string op))
            (Some r) (Absval.to_const a)
        | None, None -> ()
        | Some _, None | None, Some _ ->
          Alcotest.failf "%s: transfer/eval disagree on producing a result"
            (Opcode.to_string op)
      done)
    Opcode.all

let test_add_partial_known () =
  (* low nibble unknown, upper 28 bits proven zero on both operands *)
  let a = pair_abs 3 12 and b = pair_abs 5 10 in
  let sum = Absval.add a b in
  List.iter
    (fun x ->
      List.iter
        (fun y ->
          Alcotest.(check bool) "sum contained" true
            (Absval.contains sum (x + y)))
        [ 5; 10 ])
    [ 3; 12 ];
  Alcotest.(check bool) "bounded sum provably narrow" true
    (Absval.is_narrow ~bits:8 sum);
  Alcotest.(check bool) "top + top proves nothing" true
    (Absval.equal Absval.top (Absval.add Absval.top Absval.top))

let test_shift_partial_known () =
  let a = pair_abs 3 12 in
  let shifted = Absval.shl a (Absval.const 2) in
  List.iter
    (fun x ->
      Alcotest.(check bool) "shifted value contained" true
        (Absval.contains shifted (x lsl 2)))
    [ 3; 12 ];
  Alcotest.(check int) "low bits provably zero" 2
    (Absval.trailing_known_zeros shifted);
  Alcotest.(check bool) "unknown amount gives top" true
    (Absval.equal Absval.top (Absval.shl (Absval.const 1) Absval.top))

let test_mul_width_bound () =
  let a = pair_abs 5 9 and b = pair_abs 3 7 in
  let p = Absval.mul a b in
  List.iter
    (fun x ->
      List.iter
        (fun y ->
          Alcotest.(check bool) "product contained" true
            (Absval.contains p (x * y)))
        [ 3; 7 ])
    [ 5; 9 ];
  (* 4-bit times 3-bit magnitudes: bits >= 7 provably zero *)
  Alcotest.(check bool) "product provably narrow" true
    (Absval.is_narrow ~bits:8 p)

let test_narrow_mirrors_detector () =
  for _ = 1 to 500 do
    let v = rand32 () in
    let a = Absval.const v in
    Alcotest.(check bool)
      (Printf.sprintf "is_narrow(const %x) = Detector.narrow" v)
      (Hc_isa.Detector.narrow ~bits:8 v)
      (Absval.is_narrow ~bits:8 a)
  done

(* ----- the forward pass ----- *)

let test_soundness_all_seeds () =
  (* the tentpole invariant: across every seed workload, no uop the pass
     calls provably narrow has wide ground truth *)
  List.iter
    (fun (p : Profile.t) ->
      let tr = Generator.generate_sliced ~length:20_000 p in
      let st = Static.analyze tr in
      Alcotest.(check int)
        (p.Profile.name ^ ": zero soundness violations")
        0
        (List.length (Static.soundness_violations st tr));
      Alcotest.(check bool)
        (p.Profile.name ^ ": steerable is a subset of provable")
        true
        (st.Static.steerable_count <= st.Static.provable_count);
      Alcotest.(check bool)
        (p.Profile.name ^ ": the pass proves something")
        true
        (st.Static.steerable_count > 0))
    Profile.spec_int

let test_verdict_lookup () =
  let p = Profile.find_spec_int "gcc" in
  let tr = Generator.generate_sliced ~length:4_000 p in
  let st = Static.analyze tr in
  let in_window = Trace.get tr 0 in
  Alcotest.(check bool) "first uop has a verdict" true
    (Static.provably_narrow st in_window
    || not (Static.provably_narrow st in_window));
  let foreign = { in_window with Uop.id = in_window.Uop.id + 1_000_000 } in
  Alcotest.(check bool) "out-of-window uop is never provable" false
    (Static.provably_narrow st foreign);
  Alcotest.(check bool) "out-of-window uop is never steerable" false
    (Static.steerable_uop st foreign);
  Alcotest.(check (option bool)) "out-of-window verdict is None" None
    (Static.verdict st foreign);
  Alcotest.(check bool) "out-of-window uop is not in range" false
    (Static.in_range st foreign)

let test_sliced_window_lookup () =
  (* a Trace.sub slice preserves uop ids, so the analyzed window starts
     at a first_id well above zero: ids below it (including every uop of
     the un-sliced prefix) must read as no-verdict, never as a silent
     "not provable" — and certainly never index the arrays off by one *)
  let p = Profile.find_spec_int "gcc" in
  let base = Generator.generate_sliced ~length:4_000 p in
  let pos = 1_000 and len = 2_000 in
  let sliced = Trace.sub base ~pos ~len in
  let st = Static.analyze sliced in
  let bd = Static.analyze_bidir sliced in
  Alcotest.(check int) "first_id is the slice's first uop id"
    (Trace.get sliced 0).Uop.id st.Static.first_id;
  let before = Trace.get base (pos - 1) in
  Alcotest.(check bool) "uop before the window is not in range" false
    (Static.in_range st before);
  Alcotest.(check (option bool)) "uop before the window has no verdict" None
    (Static.verdict st before);
  Alcotest.(check (option bool)) "nor a bidir verdict" None
    (Static.bidir_verdict bd before);
  let first = Trace.get sliced 0 and last = Trace.get sliced (len - 1) in
  Alcotest.(check bool) "first uop of the window is in range" true
    (Static.in_range st first);
  Alcotest.(check bool) "last uop of the window is in range" true
    (Static.in_range st last);
  let after = Trace.get base (pos + len) in
  Alcotest.(check bool) "uop just past the window is not in range" false
    (Static.in_range st after);
  Alcotest.(check (option bool)) "uop just past the window has no verdict"
    None (Static.verdict st after);
  (* the in-window verdicts agree between the lookups and the arrays *)
  for i = 0 to len - 1 do
    let u = Trace.get sliced i in
    if Static.verdict st u <> Some st.Static.provable.(i) then
      Alcotest.failf "verdict lookup disagrees with the array at %d" i;
    if Static.bidir_verdict bd u <> Some bd.Static.bidir_provable.(i) then
      Alcotest.failf "bidir verdict lookup disagrees with the array at %d" i
  done

let test_empty_trace () =
  let p = Profile.find_spec_int "gcc" in
  let empty = Trace.make ~name:"empty" ~profile:p [||] in
  let st = Static.analyze empty in
  Alcotest.(check int) "no provable uops" 0 st.Static.provable_count;
  Alcotest.(check int) "no steerable uops" 0 st.Static.steerable_count;
  let bd = Static.analyze_bidir empty in
  Alcotest.(check int) "no bidir-provable uops" 0
    bd.Static.bidir_provable_count;
  Alcotest.(check int) "no livebits violations" 0
    (List.length
       (Hc_analysis.Livebits.soundness_violations bd.Static.livebits empty));
  let stray = Trace.get (Generator.generate_sliced ~length:50 p) 0 in
  Alcotest.(check (option bool)) "any uop is out of the empty window" None
    (Static.verdict st stray);
  Alcotest.(check bool) "empty trace lints clean" false
    (Lint.has_errors (Lint.check_trace ~file:"empty" empty))

(* ----- the bidirectional fixpoint ----- *)

let test_bidir_all_seeds () =
  (* the tentpole bound: on every seed workload the bidirectional join
     proves at least as much as the forward pass (monotonicity), strictly
     more on most, with zero soundness violations in either direction *)
  let strict = ref 0 in
  List.iter
    (fun (p : Profile.t) ->
      let tr = Generator.generate_sliced ~length:10_000 p in
      let bd = Static.analyze_bidir tr in
      let fwd = bd.Static.base in
      Alcotest.(check bool)
        (p.Profile.name ^ ": bidir provable contains forward provable")
        true
        (bd.Static.bidir_provable_count >= fwd.Static.provable_count);
      Alcotest.(check bool)
        (p.Profile.name ^ ": bidir steerable contains forward steerable")
        true
        (bd.Static.bidir_steerable_count >= fwd.Static.steerable_count);
      if bd.Static.bidir_provable_count > fwd.Static.provable_count then
        incr strict;
      (* per-uop containment, not just the counts *)
      Array.iteri
        (fun i fp ->
          if fp && not bd.Static.bidir_provable.(i) then
            Alcotest.failf "%s: forward-provable uop %d not bidir-provable"
              p.Profile.name i)
        fwd.Static.provable;
      Alcotest.(check int)
        (p.Profile.name ^ ": zero forward soundness violations (E110)")
        0
        (List.length (Static.soundness_violations fwd tr));
      Alcotest.(check int)
        (p.Profile.name ^ ": zero live-bits soundness violations (E111)")
        0
        (List.length
           (Hc_analysis.Livebits.soundness_violations bd.Static.livebits tr)))
    Profile.spec_int;
  Alcotest.(check bool) "bidir strictly tighter on at least 6 seeds" true
    (!strict >= 6)

(* ----- linter ----- *)

let gcc_trace = lazy (Generator.generate_sliced ~length:6_000 (Profile.find_spec_int "gcc"))

let with_uop tr i u =
  let uops = Array.copy (Trace.uops tr) in
  uops.(i) <- u;
  Trace.make ~name:tr.Trace.name ~profile:tr.Trace.profile uops

let find_uop tr pred =
  let found = ref None in
  Array.iteri
    (fun i u -> if !found = None && pred u then found := Some (i, u))
    (Trace.uops tr);
  match !found with
  | Some iu -> iu
  | None -> Alcotest.fail "fixture uop not found in trace"

let has_error code diags =
  List.exists
    (fun (d : Lint.diagnostic) ->
      d.Lint.code = code && d.Lint.severity = Lint.Error)
    diags

let test_lint_clean () =
  let tr = Lazy.force gcc_trace in
  let diags =
    Lint.check_trace ~file:"gcc" ~expected_profile:(Profile.find_spec_int "gcc")
      tr
  in
  Alcotest.(check bool) "no errors" false (Lint.has_errors diags);
  Alcotest.(check int) "no warnings" 0 (Lint.count Lint.Warning diags)

let test_lint_ul1_monotonicity () =
  let tr = Lazy.force gcc_trace in
  let i, u =
    find_uop tr (fun u -> u.Uop.op = Opcode.Load && not u.Uop.dl0_miss)
  in
  let bad = with_uop tr i { u with Uop.ul1_miss = true } in
  Alcotest.(check bool) "E105 reported" true
    (has_error "E105" (Lint.check_trace bad))

let test_lint_id_density () =
  let tr = Lazy.force gcc_trace in
  let u = Trace.get tr 100 in
  let bad = with_uop tr 100 { u with Uop.id = u.Uop.id + 7 } in
  Alcotest.(check bool) "E101 reported" true
    (has_error "E101" (Lint.check_trace bad))

let test_lint_result_consistency () =
  let tr = Lazy.force gcc_trace in
  let i, u = find_uop tr (fun u -> u.Uop.op = Opcode.Add) in
  let bad = with_uop tr i { u with Uop.result = u.Uop.result lxor 1 } in
  Alcotest.(check bool) "E106 reported" true
    (has_error "E106" (Lint.check_trace bad))

let test_lint_mem_addr () =
  let tr = Lazy.force gcc_trace in
  let i, u = find_uop tr (fun u -> u.Uop.op = Opcode.Load) in
  let bad = with_uop tr i { u with Uop.mem_addr = u.Uop.mem_addr lxor 0x10 } in
  Alcotest.(check bool) "E107 reported" true
    (has_error "E107" (Lint.check_trace bad))

let test_lint_flag_pairing () =
  let tr = Lazy.force gcc_trace in
  let i, u = find_uop tr (fun u -> u.Uop.op = Opcode.Branch_cond) in
  let bad = with_uop tr i { u with Uop.srcs = []; src_vals = [] } in
  Alcotest.(check bool) "E104 reported" true
    (has_error "E104" (Lint.check_trace bad))

let test_lint_report_cap () =
  (* a systematic corruption must not flood the report: per-code cap plus
     an Info overflow summary *)
  let tr = Lazy.force gcc_trace in
  let uops =
    Array.map
      (fun u ->
        if u.Uop.op = Opcode.Load && not u.Uop.dl0_miss then
          { u with Uop.ul1_miss = true }
        else u)
      (Trace.uops tr)
  in
  let diags =
    Lint.check_trace
      (Trace.make ~name:tr.Trace.name ~profile:tr.Trace.profile uops)
  in
  Alcotest.(check bool) "errors capped" true (Lint.count Lint.Error diags <= 5);
  Alcotest.(check bool) "overflow summarized" true
    (Lint.count Lint.Info diags >= 1)

let has_warning code diags =
  List.exists
    (fun (d : Lint.diagnostic) ->
      d.Lint.code = code && d.Lint.severity = Lint.Warning)
    diags

let test_lint_e111_regression () =
  (* pinned regression for the live-bits soundness gate: corrupt the
     analysis verdict — claim dead some high bits that are genuinely
     live — and the E111 mutation check must catch it. A clean record
     must stay clean. *)
  let tr = Lazy.force gcc_trace in
  let bd = Static.analyze_bidir tr in
  let lb = bd.Static.livebits in
  Alcotest.(check bool) "clean record passes the E111 gate" false
    (Lint.has_errors (Lint.check_analysis ~file:"gcc" bd tr));
  let hi = Hc_analysis.Livebits.hi_mask ~bits:8 in
  let live = Array.copy lb.Hc_analysis.Livebits.live in
  (* clear the high bits of the first 20 masks that have live high bits:
     the corrupt record now claims those bits dead *)
  let corrupted = ref 0 in
  Array.iteri
    (fun i m ->
      if !corrupted < 20 && m land hi <> 0 then begin
        live.(i) <- m land lnot hi;
        incr corrupted
      end)
    live;
  Alcotest.(check bool) "fixture found live-high uops to corrupt" true
    (!corrupted > 0);
  let corrupt_bd =
    { bd with Static.livebits = { lb with Hc_analysis.Livebits.live } }
  in
  let diags = Lint.check_analysis ~file:"gcc" corrupt_bd tr in
  Alcotest.(check bool) "E111 reported on the corrupt record" true
    (has_error "E111" diags)

let test_lint_w203_regression () =
  (* pinned regression for the monotonicity warning: a hand-built record
     whose bidirectional bound undercuts the forward bound must trip
     W203 (analyze_bidir can never produce one — the join asserts) *)
  let tr = Lazy.force gcc_trace in
  let bd = Static.analyze_bidir tr in
  Alcotest.(check bool) "clean record carries no W203" false
    (has_warning "W203" (Lint.check_analysis ~file:"gcc" bd tr));
  let broken =
    { bd with
      Static.bidir_provable_count = bd.Static.base.Static.provable_count - 1
    }
  in
  let diags = Lint.check_analysis ~file:"gcc" broken tr in
  Alcotest.(check bool) "W203 reported on the non-monotone record" true
    (has_warning "W203" diags);
  Alcotest.(check bool) "W203 alone does not fail the gate" false
    (Lint.has_errors diags)

let test_lint_config () =
  Alcotest.(check int) "default config clean" 0
    (List.length (Lint.check_config Config.default));
  let bad = { Config.default with Config.narrow_bits = 0 } in
  Alcotest.(check bool) "E201 reported" true
    (has_error "E201" (Lint.check_config bad));
  let inert =
    { Config.default with
      Config.scheme =
        { Config.helper = false; s888 = true; br = false; lr = false;
          cr = false; cp = false; ir = Config.Ir_off } }
  in
  let diags = Lint.check_config inert in
  Alcotest.(check int) "W202 is a warning, not an error" 1
    (Lint.count Lint.Warning diags);
  Alcotest.(check bool) "inert scheme alone passes the gate" false
    (Lint.has_errors diags)

(* ----- the static_888 oracle ----- *)

let test_oracle_zero_recoveries () =
  let runs = Hc_core.Runs.create ~length:8_000 () in
  let p = Profile.find_spec_int "gcc" in
  Hc_core.Runs.ensure runs [ ("8_8_8", p); ("static_888", p) ];
  let oracle = Hc_core.Runs.metrics runs ~scheme:"static_888" p in
  Alcotest.(check int) "zero width flushes" 0
    (Counter.get oracle.Metrics.counters "width_flush");
  Alcotest.(check int) "zero demotions" 0 oracle.Metrics.wide_demoted;
  Alcotest.(check bool) "attribution consistent" true
    (Metrics.attrib_consistent oracle);
  let bd = Hc_core.Runs.static_info runs (Hc_core.Runs.trace runs p) in
  let st = bd.Static.base in
  Alcotest.(check int) "oracle steers exactly the provable bound"
    st.Static.steerable_count oracle.Metrics.steered_narrow;
  Alcotest.(check (option int)) "bound attached to oracle metrics"
    (Some st.Static.steerable_count) oracle.Metrics.static_narrow_bound;
  let pred = Hc_core.Runs.metrics runs ~scheme:"8_8_8" p in
  Alcotest.(check (option int)) "bound attached to predictor metrics"
    (Some st.Static.steerable_count) pred.Metrics.static_narrow_bound;
  Alcotest.(check (option int)) "bidir bound attached to predictor metrics"
    (Some bd.Static.bidir_steerable_count) pred.Metrics.static_bidir_bound

let test_bidir_oracle_zero_recoveries () =
  (* the tightened oracle: steers strictly more than the forward oracle
     (dead-width proofs included, tagged Rlive) yet still commits zero
     width-violation recoveries by construction *)
  let runs = Hc_core.Runs.create ~length:8_000 () in
  let p = Profile.find_spec_int "gcc" in
  Hc_core.Runs.ensure runs [ ("static_888", p); ("static_bidir", p) ];
  let fwd = Hc_core.Runs.metrics runs ~scheme:"static_888" p in
  let oracle = Hc_core.Runs.metrics runs ~scheme:"static_bidir" p in
  Alcotest.(check int) "zero width flushes" 0
    (Counter.get oracle.Metrics.counters "width_flush");
  Alcotest.(check int) "zero demotions" 0 oracle.Metrics.wide_demoted;
  Alcotest.(check bool) "attribution consistent" true
    (Metrics.attrib_consistent oracle);
  let bd = Hc_core.Runs.static_info runs (Hc_core.Runs.trace runs p) in
  Alcotest.(check int) "oracle steers exactly the bidir bound"
    bd.Static.bidir_steerable_count oracle.Metrics.steered_narrow;
  Alcotest.(check bool) "bidir oracle steers at least the forward oracle"
    true
    (oracle.Metrics.steered_narrow >= fwd.Metrics.steered_narrow);
  Alcotest.(check (option int)) "bidir bound attached"
    (Some bd.Static.bidir_steerable_count) oracle.Metrics.static_bidir_bound

let suite =
  ( "analysis_static",
    [
      Alcotest.test_case "transfers exact on constants" `Quick
        test_transfer_exact_on_consts;
      Alcotest.test_case "add with partial knowledge" `Quick
        test_add_partial_known;
      Alcotest.test_case "shift with partial knowledge" `Quick
        test_shift_partial_known;
      Alcotest.test_case "mul magnitude bound" `Quick test_mul_width_bound;
      Alcotest.test_case "is_narrow mirrors Detector.narrow" `Quick
        test_narrow_mirrors_detector;
      Alcotest.test_case "soundness on every seed workload" `Slow
        test_soundness_all_seeds;
      Alcotest.test_case "verdict lookup bounds" `Quick test_verdict_lookup;
      Alcotest.test_case "sliced window lookup" `Quick
        test_sliced_window_lookup;
      Alcotest.test_case "empty trace" `Quick test_empty_trace;
      Alcotest.test_case "bidir bound on every seed workload" `Slow
        test_bidir_all_seeds;
      Alcotest.test_case "lint: clean trace" `Quick test_lint_clean;
      Alcotest.test_case "lint: ul1 without dl0" `Quick
        test_lint_ul1_monotonicity;
      Alcotest.test_case "lint: id density" `Quick test_lint_id_density;
      Alcotest.test_case "lint: eval result mismatch" `Quick
        test_lint_result_consistency;
      Alcotest.test_case "lint: memory address" `Quick test_lint_mem_addr;
      Alcotest.test_case "lint: flag pairing" `Quick test_lint_flag_pairing;
      Alcotest.test_case "lint: per-code report cap" `Quick
        test_lint_report_cap;
      Alcotest.test_case "lint: E111 pinned regression" `Quick
        test_lint_e111_regression;
      Alcotest.test_case "lint: W203 pinned regression" `Quick
        test_lint_w203_regression;
      Alcotest.test_case "lint: configurations" `Quick test_lint_config;
      Alcotest.test_case "static_888 oracle: zero recoveries" `Slow
        test_oracle_zero_recoveries;
      Alcotest.test_case "static_bidir oracle: zero recoveries" `Slow
        test_bidir_oracle_zero_recoveries;
    ] )
