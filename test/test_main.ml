(* Aggregates every suite; run with `dune runtest`. *)

let () =
  Alcotest.run "helper_cluster"
    [
      Test_value.suite;
      Test_detector.suite;
      Test_width.suite;
      Test_reg.suite;
      Test_opcode.suite;
      Test_uop.suite;
      Test_semantics.suite;
      Test_rng.suite;
      Test_profile.suite;
      Test_generator.suite;
      Test_analysis.suite;
      Test_workloads.suite;
      Test_stats.suite;
      Test_predictors.suite;
      Test_config.suite;
      Test_policy.suite;
      Test_pipeline.suite;
      Test_accounting.suite;
      Test_metrics.suite;
      Test_power.suite;
      Test_experiments.suite;
      Test_ablations.suite;
      Test_substrates.suite;
      Test_related.suite;
      Test_export.suite;
      Test_trace_io.suite;
      Test_codec.suite;
      Test_cache.suite;
      Test_analysis_static.suite;
      Test_uop_soa.suite;
      Test_fuzz.suite;
      Test_parallel.suite;
      Test_obs.suite;
    Test_registry.suite;
      Test_report.suite;
    ]
