(* Tests for the cycle-accounting engine: the slot-partition invariant
   (exact — per run, per interval, per lane) across every scheme, and
   accounting's zero observable effect on the metrics it rides with. *)

module Config = Hc_sim.Config
module Pipeline = Hc_sim.Pipeline
module Metrics = Hc_sim.Metrics
module Accounting = Hc_sim.Accounting
module Profile = Hc_trace.Profile
module Generator = Hc_trace.Generator
module Sink = Hc_obs.Sink

let all_schemes = List.map fst Hc_steering.Policy.stack

let spec_profiles = List.map Profile.find_spec_int Profile.spec_int_names

let resolve scheme tr =
  if scheme = "static_888" then
    ( Config.with_scheme Config.default (Config.find_scheme "8_8_8"),
      Hc_steering.Policy.static_oracle ~reason:Hc_sim.Steer.R888
        ~provably_narrow:
          (Hc_analysis.Static.provably_narrow (Hc_analysis.Static.analyze tr))
    )
  else
    ( Config.with_scheme Config.default (Config.find_scheme scheme),
      Hc_steering.Policy.decide )

let run_acct ?sink scheme tr =
  let cfg, decide = resolve scheme tr in
  let a =
    Accounting.create ~issue_width:cfg.Config.issue_width
      ~commit_width:cfg.Config.commit_width ()
  in
  let m = Pipeline.run ?sink ~accounting:a ~cfg ~decide ~scheme_name:scheme tr in
  (m, a)

(* every SPEC profile x every scheme in the stack (plus the static
   oracle): sum(categories) = width x rounds, exactly, on all three lanes *)
let test_partition_all_profiles () =
  List.iter
    (fun p ->
      let tr = Generator.generate_sliced ~length:2_000 p in
      List.iter
        (fun scheme ->
          let m, a = run_acct scheme tr in
          let s = Accounting.totals a in
          Alcotest.(check bool)
            (Printf.sprintf "%s/%s partition exact" p.Profile.name scheme)
            true
            (Accounting.consistent s);
          Alcotest.(check bool)
            (Printf.sprintf "%s/%s stall_consistent" p.Profile.name scheme)
            true (Metrics.stall_consistent m))
        ("static_888" :: all_schemes))
    spec_profiles

(* interval snapshots: every delta satisfies the partition on its own,
   and the deltas re-add to exactly the end-of-run totals *)
let test_intervals_partition_and_sum () =
  let tr = Generator.generate_sliced ~length:6_000 (Profile.find_spec_int "gcc") in
  let sink = Sink.create ~interval:500 ~tracing:false () in
  let _, a = run_acct ~sink "+IR" tr in
  let ivals = Accounting.intervals a in
  Alcotest.(check bool) "several intervals" true (List.length ivals > 3);
  List.iter
    (fun (iv : Accounting.interval) ->
      Alcotest.(check bool)
        (Printf.sprintf "interval %d-%d consistent" iv.Accounting.iv_start
           iv.Accounting.iv_end)
        true
        (Accounting.consistent iv.Accounting.iv_d))
    ivals;
  let cfg = Config.with_scheme Config.default (Config.find_scheme "+IR") in
  let sum =
    List.fold_left
      (fun acc iv -> Accounting.add_totals acc iv.Accounting.iv_d)
      (Accounting.zero_totals ~issue_width:cfg.Config.issue_width
         ~commit_width:cfg.Config.commit_width)
      ivals
  in
  Alcotest.(check bool) "interval deltas sum to run totals" true
    (sum = Accounting.totals a);
  (* intervals tile the run: contiguous, strictly increasing *)
  ignore
    (List.fold_left
       (fun prev_end (iv : Accounting.interval) ->
         Alcotest.(check int) "contiguous" prev_end iv.Accounting.iv_start;
         Alcotest.(check bool) "non-empty" true
           (iv.Accounting.iv_end > iv.Accounting.iv_start);
         iv.Accounting.iv_end)
       0 ivals)

(* accounting must not perturb the simulation: same trace, same scheme,
   with and without the accumulator, all metrics identical (the stall
   object is the only JSON difference, by construction) *)
let test_accounting_bit_identity () =
  let tr = Generator.generate_sliced ~length:4_000 (Profile.find_spec_int "mcf") in
  List.iter
    (fun scheme ->
      let cfg, decide = resolve scheme tr in
      let plain = Pipeline.run ~cfg ~decide ~scheme_name:scheme tr in
      let with_acct, _ = run_acct scheme tr in
      Alcotest.(check string)
        (scheme ^ " metrics JSON identical with stall stripped")
        (Metrics.to_json plain)
        (Metrics.to_json { with_acct with Metrics.stall = None }))
    [ "baseline"; "8_8_8"; "+IR" ]

(* the commit lane accounts every even tick; the wide lane every even
   tick; the narrow lane twice per cycle under the fast helper clock *)
let test_round_counts () =
  let tr = Generator.generate_sliced ~length:2_000 (Profile.find_spec_int "gzip") in
  let _, a = run_acct "8_8_8" tr in
  let s = Accounting.totals a in
  Alcotest.(check int) "wide rounds = cycles"
    s.Accounting.rounds.(Accounting.lane_wide)
    s.Accounting.rounds.(Accounting.lane_commit);
  Alcotest.(check bool) "narrow rounds ~ 2x wide (fast clock)" true
    (s.Accounting.rounds.(Accounting.lane_narrow)
     >= 2 * s.Accounting.rounds.(Accounting.lane_wide) - 1);
  (* committed uops all pass through the commit lane's issued slots *)
  let m, a2 = run_acct "8_8_8" tr in
  Alcotest.(check int) "commit issued slots = committed uops"
    m.Metrics.committed
    (Accounting.get (Accounting.totals a2) ~lane:Accounting.lane_commit
       Accounting.Issued)

let test_csv_shape () =
  let tr = Generator.generate_sliced ~length:3_000 (Profile.find_spec_int "eon") in
  let sink = Sink.create ~interval:400 ~tracing:false () in
  let _, a = run_acct ~sink "+CR" tr in
  let header_cols = String.split_on_char ',' Accounting.csv_header in
  Alcotest.(check int) "header: 2 + 3 lanes x (9 cats + rounds)"
    (2 + (Accounting.nlanes * (Accounting.ncat + 1)))
    (List.length header_cols);
  List.iter
    (fun iv ->
      Alcotest.(check int) "row width matches header"
        (List.length header_cols)
        (List.length
           (String.split_on_char ',' (Accounting.interval_csv_row iv))))
    (Accounting.intervals a)

(* randomized: any (profile, scheme, length) keeps the partition exact *)
let prop_partition =
  let gen =
    QCheck.Gen.(
      triple
        (oneofl [ "gcc"; "mcf"; "bzip2"; "gzip"; "vortex"; "twolf" ])
        (oneofl ("static_888" :: all_schemes))
        (int_range 200 3_000))
  in
  let print (bench, scheme, len) =
    Printf.sprintf "%s/%s at %d uops" bench scheme len
  in
  QCheck.Test.make ~name:"slot partition exact for random profile x scheme"
    ~count:40
    (QCheck.make ~print gen)
    (fun (bench, scheme, len) ->
      let tr = Generator.generate_sliced ~length:len (Profile.find_spec_int bench) in
      let sink = Sink.create ~interval:256 ~tracing:false () in
      let m, a = run_acct ~sink scheme tr in
      Accounting.consistent (Accounting.totals a)
      && Metrics.stall_consistent m
      && List.for_all
           (fun (iv : Accounting.interval) ->
             Accounting.consistent iv.Accounting.iv_d)
           (Accounting.intervals a))

let suite =
  ( "accounting",
    [
      Alcotest.test_case "partition: all profiles x schemes" `Quick
        test_partition_all_profiles;
      Alcotest.test_case "interval partition and sum" `Quick
        test_intervals_partition_and_sum;
      Alcotest.test_case "accounting-on bit identity" `Quick
        test_accounting_bit_identity;
      Alcotest.test_case "round counts" `Quick test_round_counts;
      Alcotest.test_case "stall CSV shape" `Quick test_csv_shape;
      QCheck_alcotest.to_alcotest prop_partition;
    ] )
