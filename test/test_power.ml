(* Tests for the activity-based power model. *)

module Model = Hc_power.Model
module Metrics = Hc_sim.Metrics
module Counter = Hc_stats.Counter
module Config = Hc_sim.Config
module Pipeline = Hc_sim.Pipeline

let run scheme trace =
  let cfg = Config.with_scheme Config.default (Config.find_scheme scheme) in
  Pipeline.run ~cfg ~decide:Hc_steering.Policy.decide ~scheme_name:scheme trace

let trace =
  lazy
    (Hc_trace.Generator.generate_sliced ~length:5_000
       (Hc_trace.Profile.find_spec_int "gcc"))

let test_event_energies () =
  Alcotest.(check bool) "known counter priced" true
    (Model.event_energy "alu_wide" > 0.);
  Alcotest.(check (float 1e-9)) "unknown counter free" 0.
    (Model.event_energy "nonexistent");
  Alcotest.(check bool) "narrow regfile cheaper than wide" true
    (Model.event_energy "regread_narrow" < Model.event_energy "regread_wide");
  Alcotest.(check bool) "narrow ALU cheaper than wide" true
    (Model.event_energy "alu_narrow" < Model.event_energy "alu_wide");
  Alcotest.(check bool) "main memory most expensive access" true
    (Model.event_energy "mem_main" > Model.event_energy "mem_ul1")

let test_breakdown_sums () =
  let m = run "+CR" (Lazy.force trace) in
  let report = Model.estimate m in
  let sum = List.fold_left (fun acc (_, e) -> acc +. e) 0. report.Model.breakdown in
  Alcotest.(check bool) "positive energy" true (report.Model.total > 0.);
  Alcotest.(check (float 1e-6)) "breakdown sums to total" report.Model.total sum;
  (* descending order *)
  let rec desc = function
    | (_, a) :: ((_, b) :: _ as rest) ->
      Alcotest.(check bool) "sorted descending" true (a >= b);
      desc rest
    | [ _ ] | [] -> ()
  in
  desc report.Model.breakdown

let test_helper_costs_energy_saves_time () =
  let t = Lazy.force trace in
  let base = run "baseline" t in
  let helper = run "+CR" t in
  Alcotest.(check bool) "helper consumes more energy" true
    ((Model.estimate helper).Model.total > (Model.estimate base).Model.total *. 0.9);
  (* the ED2 verdict can still favour the helper because delay is squared *)
  let ed2 = Model.ed2_improvement_pct ~baseline:base helper in
  Alcotest.(check bool)
    (Printf.sprintf "ed2 improvement defined (%.1f%%)" ed2)
    true (Float.is_finite ed2)

let test_ed2_definition () =
  let t = Lazy.force trace in
  let m = run "baseline" t in
  let expected =
    (Model.estimate m).Model.total *. Metrics.cycles m *. Metrics.cycles m
  in
  Alcotest.(check (float 1e-3)) "E*D^2" expected (Model.energy_delay2 m);
  Alcotest.(check (float 1e-9)) "self comparison" 0.
    (Model.ed2_improvement_pct ~baseline:m m)

let test_estimate_ignores_zero_counters () =
  let m =
    { Metrics.name = "empty"; scheme_name = "none"; committed = 0; ticks = 0;
      copies = 0; steered_narrow = 0; split_uops = 0; steered_888 = 0;
      steered_br = 0; steered_cr = 0; steered_ir = 0; steered_other = 0;
      wide_default = 0; wide_demoted = 0; wpred_correct = 0;
      wpred_fatal = 0; wpred_nonfatal = 0; prefetch_copies = 0;
      prefetch_useful = 0; nready_w2n = 0; nready_n2w = 0; issued_total = 0;
      static_narrow_bound = None; static_bidir_bound = None; stall = None;
      counters = Counter.create () }
  in
  let report = Model.estimate m in
  Alcotest.(check (float 1e-9)) "empty run has zero energy" 0. report.Model.total;
  Alcotest.(check int) "no breakdown lines" 0 (List.length report.Model.breakdown)

let suite =
  ( "power",
    [
      Alcotest.test_case "event energies" `Quick test_event_energies;
      Alcotest.test_case "breakdown sums" `Quick test_breakdown_sums;
      Alcotest.test_case "helper energy vs time" `Quick
        test_helper_costs_energy_saves_time;
      Alcotest.test_case "ED2 definition" `Quick test_ed2_definition;
      Alcotest.test_case "zero counters" `Quick test_estimate_ignores_zero_counters;
    ] )
