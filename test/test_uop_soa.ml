(* The packed SoA trace store: QCheck round-trip of the converters over
   synthetic uops and generator output, bit-identity of record-backed vs
   zero-copy SoA-backed simulation on the whole seed suite (fresh decode
   and artifact-cache warm reload), and the sliced/offset-window
   regressions mirroring the Static.in_range fix of the bidirectional
   PR — a slice must rebase its operand columns and preserve uop ids. *)

module Uop = Hc_isa.Uop
module Uop_soa = Hc_isa.Uop_soa
module Reg = Hc_isa.Reg
module Opcode = Hc_isa.Opcode
module Trace = Hc_trace.Trace
module Profile = Hc_trace.Profile
module Generator = Hc_trace.Generator
module Codec = Hc_trace.Codec
module Config = Hc_sim.Config
module Pipeline = Hc_sim.Pipeline
module Metrics = Hc_sim.Metrics
module Static = Hc_analysis.Static
module Runs = Hc_core.Runs
module Artifact_cache = Hc_core.Artifact_cache

(* ----- random uops -----

   The one structural invariant the columns rely on: an [Imm] operand's
   payload IS its concrete source value (the SoA stores a single value
   column and reconstructs [Imm v] from it), so the generator draws the
   value first and reuses it for the payload. *)

let value_gen =
  QCheck.Gen.(
    map
      (fun v -> v land 0xFFFFFFFF)
      (frequency [ (3, int_bound 255); (2, int_bound 0xFFFF); (2, int_bound max_int) ]))

let reg_gen = QCheck.Gen.(map Reg.of_index (int_bound (Reg.count - 1)))

let operand_gen =
  let open QCheck.Gen in
  let* v = value_gen in
  oneof [ return (Uop.Imm v, v); map (fun r -> (Uop.Reg r, v)) reg_gen ]

let uop_gen =
  let open QCheck.Gen in
  let* op = oneofl Opcode.all in
  let* operands = list_size (int_range 0 3) operand_gen in
  let* dst = option reg_gen in
  let* pc = value_gen in
  let* result = value_gen in
  let* mem_addr = value_gen in
  let* taken = bool in
  let* mispred = bool in
  let* dl0 = bool in
  let* ul1 = bool in
  return (fun id ->
      Uop.make ~id ~pc ~op ~srcs:(List.map fst operands) ~dst
        ~src_vals:(List.map snd operands) ~result ~mem_addr ~taken
        ~branch_mispredicted:mispred ~dl0_miss:dl0
        ~ul1_miss:(dl0 && ul1) ())

let uops_gen =
  QCheck.Gen.(
    map
      (fun mks -> Array.of_list (List.mapi (fun i mk -> mk i) mks))
      (list_size (int_range 0 60) uop_gen))

let uops_arb =
  QCheck.make
    ~print:(fun a -> Printf.sprintf "<%d random uops>" (Array.length a))
    uops_gen

let prop_roundtrip_synthetic =
  QCheck.Test.make ~name:"to_uops (of_uops a) = a on random uops" ~count:300
    uops_arb
    (fun a -> Uop_soa.to_uops (Uop_soa.of_uops a) = a)

(* generator output from random seed profiles: both converter directions
   agree with the trace's own record view *)
let profile_arb =
  QCheck.make
    ~print:(fun (name, len) -> Printf.sprintf "%s length %d" name len)
    QCheck.Gen.(
      pair
        (oneofl (List.map (fun p -> p.Profile.name) Runs.spec_profiles))
        (int_range 1 600))

let prop_roundtrip_generated =
  QCheck.Test.make ~name:"SoA and record views agree on generated traces"
    ~count:40 profile_arb
    (fun (name, length) ->
      let t = Generator.generate_sliced ~length (Profile.find_spec_int name) in
      let soa = Trace.soa t in
      Uop_soa.to_uops soa = Trace.uops t
      && Uop_soa.of_uops (Uop_soa.to_uops soa) = soa)

(* ----- simulation bit-identity on the seed suite ----- *)

let cfg_888 = Config.with_scheme Config.default (Config.find_scheme "8_8_8")

let sim_json trace =
  Metrics.to_json
    (Pipeline.run ~cfg:cfg_888 ~decide:Hc_steering.Policy.decide
       ~scheme_name:"8_8_8" trace)

let rec rm_rf path =
  match Sys.is_directory path with
  | true ->
    Array.iter (fun n -> rm_rf (Filename.concat path n)) (Sys.readdir path);
    Sys.rmdir path
  | false -> Sys.remove path
  | exception Sys_error _ -> ()

(* Every seed workload, three trace representations of the same uops:
   the generator's record-backed trace, a cold zero-copy decode of its
   HCTB encoding (columns filled straight from the varint stream, no
   records ever built), and a warm artifact-cache reload from disk. All
   three must simulate to byte-identical metrics JSON. *)
let test_sim_bit_identity () =
  let root = Filename.temp_file "hc_soa_test" "" in
  Sys.remove root;
  Fun.protect
    ~finally:(fun () -> rm_rf root)
    (fun () ->
      let cache = Artifact_cache.create ~root () in
      List.iter
        (fun p ->
          let length = 1_200 in
          let t_rec = Generator.generate_sliced ~length p in
          let expect = sim_json t_rec in
          let t_cold = Codec.decode ~profile:p (Codec.encode t_rec) in
          Alcotest.(check string)
            (p.Profile.name ^ ": cold zero-copy decode simulates identically")
            expect (sim_json t_cold);
          Artifact_cache.store_trace cache ~profile:p ~length t_rec;
          match Artifact_cache.find_trace cache ~profile:p ~length with
          | None -> Alcotest.failf "%s: stored trace missing" p.Profile.name
          | Some t_warm ->
            Alcotest.(check string)
              (p.Profile.name ^ ": warm cache reload simulates identically")
              expect (sim_json t_warm))
        Runs.spec_profiles)

(* ----- sliced / offset windows ----- *)

let base_trace = lazy (Generator.generate_sliced ~length:3_000 (Profile.find_spec_int "gcc"))

let test_sub_rebases_operands () =
  let t = Lazy.force base_trace in
  let soa = Trace.soa t in
  let pos = 1_234 and len = 321 in
  let sliced = Uop_soa.sub soa ~pos ~len in
  let expect = Array.sub (Uop_soa.to_uops soa) pos len in
  Alcotest.(check bool)
    "sliced record view equals record-view slice" true
    (Uop_soa.to_uops sliced = expect)

let test_sub_preserves_ids () =
  (* ids are the window-independent key every id-based lookup (the
     Static.in_range contract) depends on: slicing must keep them *)
  let soa = Trace.soa (Lazy.force base_trace) in
  let pos = 777 and len = 55 in
  let sliced = Uop_soa.sub soa ~pos ~len in
  for i = 0 to len - 1 do
    if Uop_soa.id sliced i <> Uop_soa.id soa (pos + i) then
      Alcotest.failf "slice renumbered id at offset %d" i
  done

let test_sub_out_of_range () =
  let soa = Trace.soa (Lazy.force base_trace) in
  let n = Uop_soa.length soa in
  List.iter
    (fun (pos, len) ->
      Alcotest.check_raises
        (Printf.sprintf "sub ~pos:%d ~len:%d rejected" pos len)
        (Invalid_argument "Uop_soa.sub")
        (fun () -> ignore (Uop_soa.sub soa ~pos ~len)))
    [ (-1, 10); (0, n + 1); (n, 1); (1, -2) ]

(* an offset window simulated from the sliced SoA columns and from a
   freshly re-packed record view must be bit-identical — the sliced
   analogue of the codec identity above *)
let test_sliced_sim_bit_identity () =
  let t = Lazy.force base_trace in
  let sliced = Trace.sub t ~pos:1_000 ~len:800 in
  let repacked =
    Trace.make ~name:sliced.Trace.name ~profile:sliced.Trace.profile
      (Trace.uops sliced)
  in
  Alcotest.(check string) "sliced SoA view simulates identically"
    (sim_json repacked) (sim_json sliced)

let test_sliced_static_agrees () =
  (* the static pass over an offset window must not depend on which view
     backs the trace (the hazard behind the original in_range bug: a
     window position mistaken for a trace index) *)
  let t = Lazy.force base_trace in
  let sliced = Trace.sub t ~pos:500 ~len:900 in
  let repacked =
    Trace.make ~name:sliced.Trace.name ~profile:sliced.Trace.profile
      (Trace.uops sliced)
  in
  let count tr =
    let st = Static.analyze tr in
    Array.fold_left
      (fun acc u -> if Static.steerable_uop st u then acc + 1 else acc)
      0 (Trace.uops tr)
  in
  Alcotest.(check int) "steerable count agrees across views" (count repacked)
    (count sliced);
  let foreign = (Trace.uops t).(0) in
  Alcotest.(check bool) "uop before the window is out of range" false
    (Static.in_range (Static.analyze sliced) foreign)

let suite =
  ( "uop_soa",
    [
      QCheck_alcotest.to_alcotest prop_roundtrip_synthetic;
      QCheck_alcotest.to_alcotest prop_roundtrip_generated;
      Alcotest.test_case "SoA vs record sim bit-identity (12 seed workloads, cold+warm)"
        `Slow test_sim_bit_identity;
      Alcotest.test_case "sub rebases operand columns" `Quick
        test_sub_rebases_operands;
      Alcotest.test_case "sub preserves uop ids" `Quick test_sub_preserves_ids;
      Alcotest.test_case "sub rejects out-of-range windows" `Quick
        test_sub_out_of_range;
      Alcotest.test_case "sliced sim bit-identity" `Quick
        test_sliced_sim_bit_identity;
      Alcotest.test_case "sliced static analysis agrees across views" `Quick
        test_sliced_static_agrees;
    ] )
