(* Tests for metrics arithmetic on hand-built records. *)

module Metrics = Hc_sim.Metrics

let mk ?(committed = 1000) ?(ticks = 2000) ?(copies = 100) ?(steered = 200)
    ?(correct = 900) ?(fatal = 10) ?(nonfatal = 90) ?(pf = 50) ?(useful = 40)
    ?(w2n = 30) ?(n2w = 5) ?(issued = 1500) () =
  {
    Metrics.name = "synthetic";
    scheme_name = "test";
    committed;
    ticks;
    copies;
    steered_narrow = steered;
    split_uops = 0;
    steered_888 = steered;
    steered_br = 0;
    steered_cr = 0;
    steered_ir = 0;
    steered_other = 0;
    wide_default = committed - steered;
    wide_demoted = 0;
    wpred_correct = correct;
    wpred_fatal = fatal;
    wpred_nonfatal = nonfatal;
    prefetch_copies = pf;
    prefetch_useful = useful;
    nready_w2n = w2n;
    nready_n2w = n2w;
    issued_total = issued;
    static_narrow_bound = None;
    static_bidir_bound = None;
    stall = None;
    counters = Hc_stats.Counter.create ();
  }

let close = Alcotest.(check (float 1e-9))

let test_ipc () =
  let m = mk () in
  close "cycles" 1000. (Metrics.cycles m);
  close "ipc" 1. (Metrics.ipc m);
  close "zero ticks" 0. (Metrics.ipc (mk ~ticks:0 ()))

let test_percentages () =
  let m = mk () in
  close "copy pct" 10. (Metrics.copy_pct m);
  close "steered pct" 20. (Metrics.steered_pct m);
  close "accuracy" 90. (Metrics.wpred_accuracy_pct m);
  close "fatal" 1. (Metrics.wpred_fatal_pct m);
  close "nonfatal" 9. (Metrics.wpred_nonfatal_pct m);
  close "cp accuracy" 80. (Metrics.cp_accuracy_pct m);
  close "w2n" 2. (Metrics.imbalance_w2n_pct m);
  close "n2w" (1. /. 3.) (Metrics.imbalance_n2w_pct m)

let test_degenerate () =
  let m = mk ~committed:0 ~copies:0 ~steered:0 ~correct:0 ~fatal:0 ~nonfatal:0
      ~pf:0 ~useful:0 ~w2n:0 ~n2w:0 ~issued:0 ()
  in
  close "copy pct empty" 0. (Metrics.copy_pct m);
  close "accuracy empty" 0. (Metrics.wpred_accuracy_pct m);
  close "cp empty" 0. (Metrics.cp_accuracy_pct m);
  close "imbalance empty" 0. (Metrics.imbalance_w2n_pct m)

let test_speedup () =
  let base = mk ~ticks:2000 () in
  let fast = mk ~ticks:1000 () in
  close "halved time doubles ipc" 100. (Metrics.speedup_pct ~baseline:base fast);
  close "self speedup zero" 0. (Metrics.speedup_pct ~baseline:base base)

let test_pp () =
  let rendered = Format.asprintf "%a" Metrics.pp (mk ()) in
  Alcotest.(check bool) "renders" true (String.length rendered > 40)

let suite =
  ( "metrics",
    [
      Alcotest.test_case "ipc" `Quick test_ipc;
      Alcotest.test_case "percentages" `Quick test_percentages;
      Alcotest.test_case "degenerate inputs" `Quick test_degenerate;
      Alcotest.test_case "speedup" `Quick test_speedup;
      Alcotest.test_case "pretty printing" `Quick test_pp;
    ] )
