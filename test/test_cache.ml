(* Tests for the on-disk artifact cache: cold-populate / warm-reload
   equivalence (bit-identical metrics, generation and simulation both
   skipped), the warm-path speedup, self-healing of corrupt entries, and
   the maintenance surface (verify / gc / counters). *)

module Runs = Hc_core.Runs
module Artifact_cache = Hc_core.Artifact_cache
module Metrics = Hc_sim.Metrics
module Profile = Hc_trace.Profile
module Trace_io = Hc_trace.Trace_io

let fresh_root () =
  let p = Filename.temp_file "hc_cache_test" "" in
  Sys.remove p;
  p

let rec rm_rf path =
  match Sys.is_directory path with
  | true ->
    Array.iter (fun n -> rm_rf (Filename.concat path n)) (Sys.readdir path);
    Sys.rmdir path
  | false -> Sys.remove path
  | exception Sys_error _ -> ()

let with_root f =
  let root = fresh_root () in
  Fun.protect ~finally:(fun () -> rm_rf root) (fun () -> f root)

let mcf = Profile.find_spec_int "mcf"

let gzip = Profile.find_spec_int "gzip"

let pairs = [ ("baseline", mcf); ("8_8_8", mcf); ("+IR", gzip) ]

let ensure_json cache_root =
  let cache = Artifact_cache.create ~root:cache_root () in
  let runs = Runs.create ~length:2_000 ~cache () in
  Runs.ensure runs pairs;
  let json =
    List.map
      (fun (scheme, p) -> Metrics.to_json (Runs.metrics runs ~scheme p))
      pairs
  in
  (json, Artifact_cache.counts cache)

let test_warm_bit_identical () =
  with_root (fun root ->
      let cold_json, cold = ensure_json root in
      Alcotest.(check int) "cold pass missed every run" (List.length pairs)
        cold.Artifact_cache.run_misses;
      Alcotest.(check int) "cold pass hit nothing" 0
        cold.Artifact_cache.run_hits;
      let warm_json, warm = ensure_json root in
      (* the JSON byte streams, not just the numbers, must match *)
      List.iteri
        (fun i (c, w) ->
          Alcotest.(check string)
            (Printf.sprintf "metrics %d bit-identical" i)
            c w)
        (List.combine cold_json warm_json);
      Alcotest.(check int) "warm pass hit every run" (List.length pairs)
        warm.Artifact_cache.run_hits;
      (* warm metrics hits shortcut the traces entirely: no generation,
         no decode, no static analysis *)
      Alcotest.(check int) "warm pass never touched a trace" 0
        (warm.Artifact_cache.trace_hits + warm.Artifact_cache.trace_misses))

let test_warm_speedup () =
  with_root (fun root ->
      (* the sweep shape every figure uses: schemes x profiles. Cold pays
         generation AND simulation for every cell; warm reloads finished
         metrics and touches neither. 10x leaves a wide margin over timer
         and scheduler noise while catching any regression that sneaks
         simulation or generation back into the warm path. *)
      let schemes = [ "baseline"; "8_8_8"; "+IR" ] in
      let sweep =
        List.concat_map (fun s -> [ (s, mcf); (s, gzip) ]) schemes
      in
      let time f =
        let t0 = Unix.gettimeofday () in
        f ();
        Unix.gettimeofday () -. t0
      in
      let cold_runs =
        Runs.create ~length:12_000 ~cache:(Artifact_cache.create ~root ()) ()
      in
      let cold_s = time (fun () -> Runs.ensure cold_runs sweep) in
      let warm_cache = Artifact_cache.create ~root () in
      let warm_runs = Runs.create ~length:12_000 ~cache:warm_cache () in
      let warm_s = time (fun () -> Runs.ensure warm_runs sweep) in
      let counts = Artifact_cache.counts warm_cache in
      Alcotest.(check int) "warm sweep hit every run" (List.length sweep)
        counts.Artifact_cache.run_hits;
      Alcotest.(check int) "warm sweep never touched a trace" 0
        (counts.Artifact_cache.trace_hits + counts.Artifact_cache.trace_misses);
      Alcotest.(check bool)
        (Printf.sprintf "warm (%.3fs) at least 10x faster than cold (%.3fs)"
           warm_s cold_s)
        true
        (warm_s *. 10. < cold_s);
      List.iter
        (fun (scheme, p) ->
          Alcotest.(check string)
            (Printf.sprintf "%s/%s bit-identical" scheme p.Profile.name)
            (Metrics.to_json (Runs.metrics cold_runs ~scheme p))
            (Metrics.to_json (Runs.metrics warm_runs ~scheme p)))
        sweep)

let test_trace_self_heal () =
  with_root (fun root ->
      let cache = Artifact_cache.create ~root () in
      let original =
        Artifact_cache.trace_or_generate (Some cache) ~profile:mcf
          ~length:1_500
      in
      let traces_dir = Filename.concat root "traces" in
      let entry =
        match Sys.readdir traces_dir with
        | [| name |] -> Filename.concat traces_dir name
        | a -> Alcotest.failf "expected 1 trace entry, found %d" (Array.length a)
      in
      (* truncate the published entry in place *)
      let ic = open_in_bin entry in
      let data = really_input_string ic (in_channel_length ic / 2) in
      close_in ic;
      let oc = open_out_bin entry in
      output_string oc data;
      close_out oc;
      Alcotest.(check bool) "corrupt entry reads as a miss" true
        (Artifact_cache.find_trace cache ~profile:mcf ~length:1_500 = None);
      Alcotest.(check bool) "corrupt entry deleted (self-heal)" false
        (Sys.file_exists entry);
      let regenerated =
        Artifact_cache.trace_or_generate (Some cache) ~profile:mcf
          ~length:1_500
      in
      Alcotest.(check bool) "regenerated identical to original" true
        (Trace_io.roundtrip_equal original regenerated);
      Alcotest.(check bool) "entry republished" true (Sys.file_exists entry))

let test_metrics_corrupt_is_miss () =
  with_root (fun root ->
      let cache = Artifact_cache.create ~root () in
      let runs = Runs.create ~length:1_500 ~cache () in
      let m = Runs.metrics runs ~scheme:"baseline" mcf in
      ignore m;
      let runs_dir = Filename.concat root "runs" in
      let entry =
        match Sys.readdir runs_dir with
        | [| name |] -> Filename.concat runs_dir name
        | a -> Alcotest.failf "expected 1 run entry, found %d" (Array.length a)
      in
      let oc = open_out_bin entry in
      output_string oc "{ not json";
      close_out oc;
      Alcotest.(check bool) "corrupt metrics read as a miss" true
        (Artifact_cache.find_metrics cache ~scheme:"baseline" ~profile:mcf
           ~length:1_500
        = None);
      Alcotest.(check bool) "corrupt metrics deleted" false
        (Sys.file_exists entry))

let test_unknown_scheme_raises_warm () =
  with_root (fun root ->
      let make () =
        Runs.create ~length:1_000 ~cache:(Artifact_cache.create ~root ()) ()
      in
      Runs.ensure (make ()) [ ("baseline", mcf) ];
      (* warm instance: the cache could satisfy everything, but a bogus
         scheme must still fail exactly as it does cold *)
      match Runs.ensure (make ()) [ ("nonsense", mcf) ] with
      | () -> Alcotest.fail "expected Not_found for unknown scheme"
      | exception Not_found -> ())

let test_verify_gc_and_hygiene () =
  with_root (fun root ->
      let cache = Artifact_cache.create ~root () in
      let runs = Runs.create ~length:1_500 ~cache () in
      Runs.ensure runs [ ("baseline", mcf); ("baseline", gzip) ];
      Alcotest.(check int) "clean cache verifies clean" 0
        (List.length (Artifact_cache.verify cache));
      (* no leftover temp files from the atomic publishes *)
      List.iter
        (fun sub ->
          let dir = Filename.concat root sub in
          Array.iter
            (fun name ->
              if
                Filename.check_suffix name ".hct"
                || Filename.check_suffix name ".json"
              then ()
              else Alcotest.failf "unexpected file %s/%s" sub name)
            (Sys.readdir dir))
        [ "traces"; "runs" ];
      let d = Artifact_cache.disk cache in
      Alcotest.(check int) "two traces on disk" 2
        d.Artifact_cache.trace_entries;
      Alcotest.(check int) "two runs on disk" 2 d.Artifact_cache.run_entries;
      (* corrupt one entry: verify flags it, verify ~fix deletes it *)
      let victim =
        Filename.concat (Filename.concat root "traces")
          (Sys.readdir (Filename.concat root "traces")).(0)
      in
      let oc = open_out_bin victim in
      output_string oc "HCTB\001garbage";
      close_out oc;
      Alcotest.(check int) "verify finds the corrupt entry" 1
        (List.length (Artifact_cache.verify cache));
      Alcotest.(check int) "verify --fix still reports it" 1
        (List.length (Artifact_cache.verify ~fix:true cache));
      Alcotest.(check bool) "fixed entry deleted" false
        (Sys.file_exists victim);
      Alcotest.(check int) "cache verifies clean again" 0
        (List.length (Artifact_cache.verify cache));
      (* gc to zero evicts everything *)
      let evicted = Artifact_cache.gc cache ~max_bytes:0 in
      Alcotest.(check bool) "gc evicted the rest" true
        (List.length evicted > 0);
      let d = Artifact_cache.disk cache in
      Alcotest.(check int) "empty after gc" 0
        (d.Artifact_cache.trace_entries + d.Artifact_cache.run_entries))

let suite =
  ( "artifact_cache",
    [
      Alcotest.test_case "warm reload bit-identical, skips simulation" `Quick
        test_warm_bit_identical;
      Alcotest.test_case "warm ensure 10x faster than cold" `Slow
        test_warm_speedup;
      Alcotest.test_case "corrupt trace entry self-heals" `Quick
        test_trace_self_heal;
      Alcotest.test_case "corrupt metrics entry is a miss" `Quick
        test_metrics_corrupt_is_miss;
      Alcotest.test_case "unknown scheme raises warm" `Quick
        test_unknown_scheme_raises_warm;
      Alcotest.test_case "verify, gc, publish hygiene" `Quick
        test_verify_gc_and_hygiene;
    ] )
