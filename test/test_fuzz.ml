(* Property-based fuzzing of the whole simulator: random (but valid)
   machine configurations and workload profiles must always complete the
   trace while preserving the structural invariants. This is the
   pipeline's crash-and-deadlock net. *)

module Config = Hc_sim.Config
module Pipeline = Hc_sim.Pipeline
module Metrics = Hc_sim.Metrics
module Counter = Hc_stats.Counter
module Profile = Hc_trace.Profile
module Generator = Hc_trace.Generator

let config_gen =
  let open QCheck.Gen in
  let* iq_size = int_range 6 48 in
  let* issue_width = int_range 1 4 in
  let* decode_width = int_range 2 8 in
  let* rob_size = int_range 24 160 in
  let* mob_size = int_range 6 64 in
  let* copy_latency = int_range 1 4 in
  let* branch_penalty = int_range 0 20 in
  let* width_flush_penalty = int_range 0 12 in
  let* narrow_bits = int_range 4 24 in
  let* confidence_gate = bool in
  let* helper_fast_clock = bool in
  let* replicated = bool in
  let* replay = bool in
  let* regs = int_range 16 160 in
  let* scheme_idx = int_range 0 (List.length Config.scheme_stack - 1) in
  let scheme = snd (List.nth Config.scheme_stack scheme_idx) in
  return
    { Config.default with
      Config.iq_size; issue_width; decode_width; rob_size; mob_size;
      copy_latency; branch_penalty; width_flush_penalty; narrow_bits;
      confidence_gate; helper_fast_clock;
      replicated_regfile = replicated; replay_recovery = replay;
      wide_regs = regs; narrow_regs = regs; scheme }

let bench_gen =
  QCheck.Gen.oneofl [ "bzip2"; "gcc"; "mcf"; "gzip"; "eon"; "twolf" ]

let print_case (cfg, bench) =
  Format.asprintf "%s under iq=%d issue=%d rob=%d mob=%d bits=%d repl=%b replay=%b"
    bench cfg.Config.iq_size cfg.Config.issue_width cfg.Config.rob_size
    cfg.Config.mob_size cfg.Config.narrow_bits cfg.Config.replicated_regfile
    cfg.Config.replay_recovery

let arb =
  QCheck.make ~print:print_case QCheck.Gen.(pair config_gen bench_gen)

let trace_cache = Hashtbl.create 8

let trace_of bench =
  match Hashtbl.find_opt trace_cache bench with
  | Some t -> t
  | None ->
    let t = Generator.generate_sliced ~length:1_500 (Profile.find_spec_int bench) in
    Hashtbl.add trace_cache bench t;
    t

let prop_simulator_total =
  QCheck.Test.make ~name:"any valid machine completes any trace" ~count:60 arb
    (fun (cfg, bench) ->
      ( match Config.validate cfg with
      | Ok () -> ()
      | Error msg -> QCheck.Test.fail_reportf "generated invalid config: %s" msg );
      let trace = trace_of bench in
      let m =
        Pipeline.run ~cfg ~decide:Hc_steering.Policy.decide ~scheme_name:"fuzz"
          trace
      in
      let fatal_recoveries =
        Counter.get m.Metrics.counters "width_flush"
        + Counter.get m.Metrics.counters "replay"
      in
      m.Metrics.committed = Hc_trace.Trace.length trace
      && m.Metrics.steered_narrow <= m.Metrics.committed
      && m.Metrics.prefetch_useful <= m.Metrics.prefetch_copies
      && m.Metrics.wpred_fatal = fatal_recoveries
      && (not cfg.Config.replicated_regfile || m.Metrics.copies = 0)
      && m.Metrics.ticks > 0)

let prop_monolithic_ignores_helper_knobs =
  (* with the helper disabled, narrow-side knobs must not change results *)
  QCheck.Test.make ~name:"baseline invariant to helper knobs" ~count:20
    (QCheck.make QCheck.Gen.(pair (int_range 4 24) bool))
    (fun (bits, fast) ->
      let trace = trace_of "gcc" in
      let run cfg =
        (Pipeline.run ~cfg ~decide:Hc_steering.Policy.decide
           ~scheme_name:"baseline" trace)
          .Metrics.ticks
      in
      run Config.baseline
      = run
          { Config.baseline with
            Config.narrow_bits = bits; helper_fast_clock = fast })

(* ----- differential fuzz: the known-bits domain vs the evaluator ----- *)

module Absval = Hc_analysis.Absval
module Semantics = Hc_isa.Semantics
module Detector = Hc_isa.Detector
module Opcode = Hc_isa.Opcode

let val32_gen = QCheck.Gen.(map (fun x -> x land 0xFFFF_FFFF) (int_range 0 max_int))

(* one operand: a concrete value plus a mask of bits the abstraction
   forgets; joining the two flips makes exactly those bits unknown while
   keeping the concrete value contained *)
let operand_gen = QCheck.Gen.pair val32_gen val32_gen

let abstract_of (v, m) = Absval.join (Absval.const v) (Absval.const (v lxor m))

let domain_case_gen =
  QCheck.Gen.(
    triple (oneofl Opcode.all) (int_range 2 3) (list_size (return 3) operand_gen))

let print_domain_case (op, arity, ops) =
  Format.asprintf "%s/%d over %a" (Opcode.to_string op) arity
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       (fun ppf (v, m) -> Format.fprintf ppf "%x (unknown %x)" v m))
    ops

let prop_transfer_sound =
  (* the soundness induction step: when the abstract inputs contain the
     concrete operands, the abstract output contains the concrete result,
     and provable narrowness implies detector narrowness of the result *)
  QCheck.Test.make ~name:"abstract transfer contains Semantics.eval" ~count:2000
    (QCheck.make ~print:print_domain_case domain_case_gen)
    (fun (op, arity, ops) ->
      let ops = List.filteri (fun i _ -> i < arity) ops in
      let vals = List.map fst ops in
      let abs = List.map abstract_of ops in
      List.iter2
        (fun a v ->
          if not (Absval.contains a v) then
            QCheck.Test.fail_reportf "input abstraction broken")
        abs vals;
      match (Semantics.eval op vals, Absval.transfer op abs) with
      | None, None -> true
      | Some r, Some a ->
        if not (Absval.contains a r) then
          QCheck.Test.fail_reportf "result %x escapes the abstract output" r;
        (not (Absval.is_narrow ~bits:8 a)) || Detector.narrow ~bits:8 r
      | Some _, None | None, Some _ ->
        QCheck.Test.fail_reportf
          "transfer and eval disagree about producing a result")

let prop_const_transfer_exact =
  (* on fully known inputs the domain must collapse to the evaluator *)
  QCheck.Test.make ~name:"abstract transfer exact on constants" ~count:1000
    (QCheck.make
       ~print:(fun (op, vals) ->
         Format.asprintf "%s %a" (Opcode.to_string op)
           (Format.pp_print_list Format.pp_print_int)
           vals)
       QCheck.Gen.(pair (oneofl Opcode.all) (list_size (return 2) val32_gen)))
    (fun (op, vals) ->
      match (Semantics.eval op vals, Absval.transfer op (List.map Absval.const vals)) with
      | Some r, Some a -> Absval.to_const a = Some r
      | None, None -> true
      | _ -> false)

(* ----- differential fuzz: backward live-bits vs the evaluator ----- *)

module Livebits = Hc_analysis.Livebits
module Static = Hc_analysis.Static

let backward_case_gen =
  QCheck.Gen.(
    let* op = oneofl Opcode.all in
    let* vals = list_size (return 2) val32_gen in
    let* live = val32_gen in
    let* flips = list_size (return 2) val32_gen in
    let* known_amount = bool in
    return (op, vals, live, flips, known_amount))

let print_backward_case (op, vals, live, flips, known_amount) =
  Format.asprintf "%s %a live=%x flips=%a known_amount=%b"
    (Opcode.to_string op)
    (Format.pp_print_list Format.pp_print_int)
    vals live
    (Format.pp_print_list Format.pp_print_int)
    flips known_amount

let prop_backward_transfer_sound =
  (* the dual of [prop_transfer_sound]: flipping source bits OUTSIDE the
     per-source demand masks must leave every result bit INSIDE the live
     mask unchanged under the concrete evaluator — the contract the E111
     mutation check and the bidirectional join both stand on *)
  QCheck.Test.make ~name:"backward transfer demands contain the live bits"
    ~count:2000
    (QCheck.make ~print:print_backward_case backward_case_gen)
    (fun (op, vals, live, flips, known_amount) ->
      (* an amount fact is only sound when it matches the concrete
         amount operand, exactly as the forward pass proves it *)
      let amount =
        match (op, vals, known_amount) with
        | (Opcode.Shl | Opcode.Shr), _ :: amt :: _, true ->
          Some (amt land 31)
        | _ -> None
      in
      let demands =
        Livebits.backward_transfer op ~nsrcs:(List.length vals) ~amount ~live
      in
      let flipped =
        List.map2
          (fun v (f, d) -> (v lxor (f land lnot d)) land 0xFFFF_FFFF)
          vals
          (List.combine flips demands)
      in
      match (Semantics.eval op vals, Semantics.eval op flipped) with
      | Some r, Some r' ->
        if (r lxor r') land live <> 0 then
          QCheck.Test.fail_reportf
            "dead-source flip reached live result bits: %x vs %x" r r';
        true
      | None, None -> true
      | Some _, None | None, Some _ ->
        QCheck.Test.fail_reportf
          "eval disagrees about producing a result across a dead flip")

let prop_dead_bits_unobservable =
  (* end-to-end: on whole generated traces, every bit the backward pass
     claims dead really is — flipping it and replaying changes nothing
     any full-width consumer or the trace exit observes (lint E111) *)
  QCheck.Test.make ~name:"claimed-dead bits are unobservable downstream"
    ~count:20
    (QCheck.make
       ~print:(fun (bench, len) -> Printf.sprintf "%s len=%d" bench len)
       QCheck.Gen.(pair bench_gen (int_range 200 800)))
    (fun (bench, len) ->
      let tr = Generator.generate_sliced ~length:len (Profile.find_spec_int bench) in
      let bd = Static.analyze_bidir tr in
      match Livebits.soundness_violations bd.Static.livebits tr with
      | [] -> true
      | v :: _ ->
        QCheck.Test.fail_reportf
          "dead bits %x of uop %d observable at %d" v.Livebits.flipped
          v.Livebits.index v.Livebits.consumer_index)

let suite =
  ( "fuzz",
    [
      QCheck_alcotest.to_alcotest prop_simulator_total;
      QCheck_alcotest.to_alcotest prop_monolithic_ignores_helper_knobs;
      QCheck_alcotest.to_alcotest prop_transfer_sound;
      QCheck_alcotest.to_alcotest prop_const_transfer_exact;
      QCheck_alcotest.to_alcotest prop_backward_transfer_sound;
      QCheck_alcotest.to_alcotest prop_dead_bits_unobservable;
    ] )
