(* The telemetry subsystem: ring buffer wrap-around, interval sampling
   algebra, the zero-perturbation guarantee (metrics bit-identical with
   tracing on or off), aggregate==final-metrics, Chrome trace JSON
   well-formedness, Metrics.to_json, Telemetry.mkdir_p, and the domain
   pool's worker profiling counters. *)

module Ring = Hc_obs.Ring
module Event = Hc_obs.Event
module Sample = Hc_obs.Sample
module Sink = Hc_obs.Sink
module Chrome_trace = Hc_obs.Chrome_trace
module Telemetry = Hc_core.Telemetry
module Domain_pool = Hc_core.Domain_pool
module Profile = Hc_trace.Profile
module Generator = Hc_trace.Generator
module Config = Hc_sim.Config
module Pipeline = Hc_sim.Pipeline
module Metrics = Hc_sim.Metrics
module Counter = Hc_stats.Counter

(* ----- a minimal JSON validator (no dependencies): accepts exactly the
   RFC 8259 grammar we emit, rejects trailing garbage ----- *)

let json_valid (s : string) : bool =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let fail () = raise Exit in
  let expect c = if peek () = Some c then advance () else fail () in
  let literal lit =
    String.iter (fun c -> expect c) lit
  in
  let parse_string () =
    expect '"';
    let rec loop () =
      match peek () with
      | None -> fail ()
      | Some '"' -> advance ()
      | Some '\\' ->
        advance ();
        ( match peek () with
        | Some ('"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't') -> advance ()
        | Some 'u' ->
          advance ();
          for _ = 1 to 4 do
            match peek () with
            | Some ('0' .. '9' | 'a' .. 'f' | 'A' .. 'F') -> advance ()
            | _ -> fail ()
          done
        | _ -> fail () );
        loop ()
      | Some c when Char.code c < 0x20 -> fail ()
      | Some _ ->
        advance ();
        loop ()
    in
    loop ()
  in
  let parse_number () =
    if peek () = Some '-' then advance ();
    let digits () =
      let saw = ref false in
      let rec d () =
        match peek () with
        | Some '0' .. '9' ->
          saw := true;
          advance ();
          d ()
        | _ -> ()
      in
      d ();
      if not !saw then fail ()
    in
    digits ();
    if peek () = Some '.' then begin
      advance ();
      digits ()
    end;
    ( match peek () with
    | Some ('e' | 'E') ->
      advance ();
      (match peek () with Some ('+' | '-') -> advance () | _ -> ());
      digits ()
    | _ -> () )
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then advance ()
      else begin
        let rec members () =
          skip_ws ();
          parse_string ();
          skip_ws ();
          expect ':';
          parse_value ();
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            members ()
          | Some '}' -> advance ()
          | _ -> fail ()
        in
        members ()
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then advance ()
      else begin
        let rec elements () =
          parse_value ();
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            elements ()
          | Some ']' -> advance ()
          | _ -> fail ()
        in
        elements ()
      end
    | Some '"' -> parse_string ()
    | Some 't' -> literal "true"
    | Some 'f' -> literal "false"
    | Some 'n' -> literal "null"
    | Some ('-' | '0' .. '9') -> parse_number ()
    | _ -> fail ()
  in
  try
    parse_value ();
    skip_ws ();
    !pos = n
  with Exit -> false

let test_json_validator () =
  (* the validator itself has to be trustworthy before the real tests
     lean on it *)
  List.iter
    (fun s -> Alcotest.(check bool) ("accepts " ^ s) true (json_valid s))
    [
      "{}"; "[]"; "[1,2,3]"; "{\"a\":1,\"b\":[true,false,null]}";
      "-1.5e-3"; "\"esc\\n\\u00e9\""; " { \"x\" : { } } ";
    ];
  List.iter
    (fun s -> Alcotest.(check bool) ("rejects " ^ s) false (json_valid s))
    [ ""; "{"; "[1,]"; "{\"a\":}"; "{} x"; "01x"; "\"unterminated" ]

(* ----- ring buffer ----- *)

let test_ring_wrap () =
  let r = Ring.create ~capacity:4 ~dummy:(-1) in
  for i = 0 to 9 do
    Ring.push r i
  done;
  Alcotest.(check int) "length" 4 (Ring.length r);
  Alcotest.(check int) "pushed" 10 (Ring.pushed r);
  Alcotest.(check int) "dropped" 6 (Ring.dropped r);
  Alcotest.(check (list int)) "last 4 retained, oldest first" [ 6; 7; 8; 9 ]
    (Ring.to_list r);
  Alcotest.(check int) "fold" (6 + 7 + 8 + 9) (Ring.fold ( + ) 0 r)

let test_ring_partial () =
  let r = Ring.create ~capacity:8 ~dummy:0 in
  List.iter (Ring.push r) [ 3; 1; 4 ];
  Alcotest.(check (list int)) "no wrap: insertion order" [ 3; 1; 4 ]
    (Ring.to_list r);
  Alcotest.(check int) "dropped" 0 (Ring.dropped r);
  Alcotest.check_raises "capacity 0 rejected"
    (Invalid_argument "Ring.create: capacity must be positive") (fun () ->
      ignore (Ring.create ~capacity:0 ~dummy:0))

(* ----- sample algebra ----- *)

let test_sample_algebra () =
  let t1 =
    { Sample.zero_totals with Sample.committed = 10; copies = 3; issued_total = 12 }
  in
  let t2 =
    { Sample.zero_totals with Sample.committed = 25; copies = 7; issued_total = 30 }
  in
  let d = Sample.sub_totals t2 t1 in
  Alcotest.(check int) "delta committed" 15 d.Sample.committed;
  Alcotest.(check int) "delta copies" 4 d.Sample.copies;
  let back = Sample.add_totals t1 d in
  Alcotest.(check bool) "add inverts sub" true (back = t2);
  let s1 = Sample.make ~t_start:0 ~t_end:100 ~iq_wide:2 ~iq_narrow:1 ~rob:5 t1 in
  let s2 = Sample.make ~t_start:100 ~t_end:200 ~iq_wide:0 ~iq_narrow:0 ~rob:0 d in
  Alcotest.(check bool) "aggregate sums the deltas" true
    (Sample.aggregate [ s1; s2 ] = t2);
  (* IPC: committed per wide cycle = per (ticks/2) *)
  Alcotest.(check (float 1e-9)) "ipc" 0.2 (Sample.ipc s1);
  (* the CSV row always matches the header's column count *)
  let cols s = List.length (String.split_on_char ',' s) in
  Alcotest.(check int) "csv columns" (cols Sample.csv_header)
    (cols (Sample.to_csv_row s1));
  Alcotest.(check bool) "sample json valid" true (json_valid (Sample.to_json s1))

(* ----- pipeline instrumentation ----- *)

let obs_trace =
  lazy (Generator.generate_sliced ~length:2_000 (Profile.find_spec_int "gcc"))

let run_scheme ?sink scheme =
  let cfg =
    if scheme = "baseline" then Config.baseline
    else Config.with_scheme Config.default (Config.find_scheme scheme)
  in
  Pipeline.run ?sink ~cfg ~decide:Hc_steering.Policy.decide ~scheme_name:scheme
    (Lazy.force obs_trace)

let metrics_equal ~cell (a : Metrics.t) (b : Metrics.t) =
  let check what x y = Alcotest.(check int) (cell ^ ": " ^ what) x y in
  check "committed" a.Metrics.committed b.Metrics.committed;
  check "ticks" a.Metrics.ticks b.Metrics.ticks;
  check "copies" a.Metrics.copies b.Metrics.copies;
  check "steered_narrow" a.Metrics.steered_narrow b.Metrics.steered_narrow;
  check "split_uops" a.Metrics.split_uops b.Metrics.split_uops;
  check "steered_888" a.Metrics.steered_888 b.Metrics.steered_888;
  check "steered_br" a.Metrics.steered_br b.Metrics.steered_br;
  check "steered_cr" a.Metrics.steered_cr b.Metrics.steered_cr;
  check "steered_ir" a.Metrics.steered_ir b.Metrics.steered_ir;
  check "steered_other" a.Metrics.steered_other b.Metrics.steered_other;
  check "wide_default" a.Metrics.wide_default b.Metrics.wide_default;
  check "wide_demoted" a.Metrics.wide_demoted b.Metrics.wide_demoted;
  check "wpred_correct" a.Metrics.wpred_correct b.Metrics.wpred_correct;
  check "wpred_fatal" a.Metrics.wpred_fatal b.Metrics.wpred_fatal;
  check "wpred_nonfatal" a.Metrics.wpred_nonfatal b.Metrics.wpred_nonfatal;
  check "prefetch_copies" a.Metrics.prefetch_copies b.Metrics.prefetch_copies;
  check "prefetch_useful" a.Metrics.prefetch_useful b.Metrics.prefetch_useful;
  check "nready_w2n" a.Metrics.nready_w2n b.Metrics.nready_w2n;
  check "nready_n2w" a.Metrics.nready_n2w b.Metrics.nready_n2w;
  check "issued_total" a.Metrics.issued_total b.Metrics.issued_total;
  List.iter
    (fun name ->
      check ("counter " ^ name)
        (Counter.get a.Metrics.counters name)
        (Counter.get b.Metrics.counters name))
    (Counter.names a.Metrics.counters)

let test_observation_is_free () =
  (* the whole point of the sink design: attaching full tracing AND the
     interval sampler must not change a single metric *)
  List.iter
    (fun scheme ->
      let plain = run_scheme scheme in
      let sink = Sink.create ~ring_capacity:1024 ~interval:250 ~tracing:true () in
      let observed = run_scheme ~sink scheme in
      metrics_equal ~cell:(scheme ^ " traced") plain observed;
      Alcotest.(check bool)
        (scheme ^ ": events were recorded")
        true
        (Sink.events_pushed sink > 0))
    [ "baseline"; "8_8_8"; "+IR" ]

let test_interval_aggregate_equals_metrics () =
  List.iter
    (fun interval ->
      let sink = Sink.create ~interval ~tracing:false () in
      let m = run_scheme ~sink "+IR" in
      let agg = Sample.aggregate (Sink.samples sink) in
      let cell = Printf.sprintf "interval=%d" interval in
      Alcotest.(check bool) (cell ^ ": sampled") true (Sink.sample_count sink > 0);
      Alcotest.(check int) (cell ^ ": committed") m.Metrics.committed
        agg.Sample.committed;
      Alcotest.(check int) (cell ^ ": steered") m.Metrics.steered_narrow
        agg.Sample.steered_narrow;
      Alcotest.(check int) (cell ^ ": copies") m.Metrics.copies agg.Sample.copies;
      Alcotest.(check int) (cell ^ ": splits") m.Metrics.split_uops
        agg.Sample.split_uops;
      Alcotest.(check int) (cell ^ ": wpred_correct") m.Metrics.wpred_correct
        agg.Sample.wpred_correct;
      Alcotest.(check int) (cell ^ ": wpred_fatal") m.Metrics.wpred_fatal
        agg.Sample.wpred_fatal;
      Alcotest.(check int) (cell ^ ": wpred_nonfatal") m.Metrics.wpred_nonfatal
        agg.Sample.wpred_nonfatal;
      Alcotest.(check int) (cell ^ ": nready_w2n") m.Metrics.nready_w2n
        agg.Sample.nready_w2n;
      Alcotest.(check int) (cell ^ ": nready_n2w") m.Metrics.nready_n2w
        agg.Sample.nready_n2w;
      Alcotest.(check int) (cell ^ ": issued") m.Metrics.issued_total
        agg.Sample.issued_total;
      (* monotone, contiguous, non-empty intervals *)
      let rec contiguous = function
        | a :: (b :: _ as rest) ->
          Alcotest.(check int) (cell ^ ": contiguous") a.Sample.t_end
            b.Sample.t_start;
          contiguous rest
        | _ -> ()
      in
      contiguous (Sink.samples sink))
    [ 100; 1_000; 1_000_000 (* one giant interval: only the tail flush *) ]

let test_chrome_trace_json () =
  let sink = Sink.create ~interval:500 ~tracing:true () in
  ignore (run_scheme ~sink "+IR");
  let events = Sink.events sink in
  Alcotest.(check bool) "have events" true (events <> []);
  let js =
    Chrome_trace.to_string
      ~ring:(Sink.events_pushed sink, Sink.events_dropped sink)
      ~events ~samples:(Sink.samples sink) ()
  in
  Alcotest.(check bool) "chrome trace JSON parses" true (json_valid js);
  (* spans and counters actually made it in *)
  let contains needle =
    let nl = String.length needle and hl = String.length js in
    let rec go i =
      i + nl <= hl && (String.sub js i nl = needle || go (i + 1))
    in
    go 0
  in
  Alcotest.(check bool) "has traceEvents" true (contains "\"traceEvents\"");
  Alcotest.(check bool) "has complete spans" true (contains "\"ph\":\"X\"");
  Alcotest.(check bool) "has counter samples" true (contains "\"ph\":\"C\"");
  Alcotest.(check bool) "has thread metadata" true
    (contains "\"thread_name\"");
  Alcotest.(check bool) "has ring metadata" true
    (contains "\"events_pushed\"");
  (* empty trace is still valid JSON *)
  Alcotest.(check bool) "empty trace parses" true
    (json_valid (Chrome_trace.to_string ~events:[] ~samples:[] ()))

let test_metrics_to_json () =
  let m = run_scheme "+CR" in
  let js = Metrics.to_json m in
  Alcotest.(check bool) "metrics JSON parses" true (json_valid js)

(* ----- telemetry file plumbing ----- *)

let test_mkdir_p_nested () =
  let base =
    Filename.concat (Filename.get_temp_dir_name ()) "hc_obs_test_mkdir"
  in
  let deep = Filename.concat (Filename.concat base "a") "b" in
  (* repeatable: already-existing prefixes must not raise *)
  Telemetry.mkdir_p deep;
  Telemetry.mkdir_p deep;
  Alcotest.(check bool) "nested dir exists" true
    (Sys.file_exists deep && Sys.is_directory deep);
  let sink = Sink.create ~interval:500 ~tracing:false () in
  ignore (run_scheme ~sink "+IR");
  let nested = Filename.concat deep "series.csv" in
  let written = Telemetry.write_intervals_csv ~path:nested (Sink.samples sink) in
  Alcotest.(check bool) "csv written through parents" true
    (Sys.file_exists written);
  let jpath = Filename.concat deep "series.json" in
  ignore (Telemetry.write_intervals_json ~path:jpath (Sink.samples sink));
  let ic = open_in jpath in
  let len = in_channel_length ic in
  let js = really_input_string ic len in
  close_in ic;
  Alcotest.(check bool) "intervals JSON parses" true (json_valid js)

let test_run_basename () =
  Alcotest.(check string) "sanitized"
    "+IR__gcc.intervals.csv"
    (Telemetry.run_basename ~scheme:"+IR" ~name:"gcc" ^ ".intervals.csv");
  let b = Telemetry.run_basename ~scheme:"a/b c" ~name:"x:y" in
  Alcotest.(check bool) "no separators survive" false
    (String.exists (fun c -> c = '/' || c = ' ' || c = ':') b)

(* ----- domain pool profiling ----- *)

let test_pool_profiling () =
  let pool = Domain_pool.create ~jobs:3 in
  Fun.protect
    ~finally:(fun () -> Domain_pool.shutdown pool)
    (fun () ->
      let n = 64 in
      ignore (Domain_pool.map pool (fun x -> x * x) (Array.init n Fun.id));
      let stats = Domain_pool.stats pool in
      Alcotest.(check int) "one slot per worker" 3 (Array.length stats);
      let total =
        Array.fold_left (fun acc s -> acc + s.Domain_pool.w_tasks) 0 stats
      in
      Alcotest.(check int) "every task accounted once" n total;
      Alcotest.(check bool) "busy time non-negative" true
        (Array.for_all (fun s -> s.Domain_pool.w_busy_s >= 0.) stats);
      Alcotest.(check bool) "queue depth observed" true
        (Domain_pool.max_queue_depth pool > 0);
      (* a second batch accumulates *)
      ignore (Domain_pool.map pool succ (Array.init 10 Fun.id));
      let total' =
        Array.fold_left
          (fun acc s -> acc + s.Domain_pool.w_tasks)
          0 (Domain_pool.stats pool)
      in
      Alcotest.(check int) "counters accumulate" (n + 10) total')

let test_pool_profiling_sequential () =
  let pool = Domain_pool.create ~jobs:1 in
  ignore (Domain_pool.map pool succ (Array.init 5 Fun.id));
  let stats = Domain_pool.stats pool in
  Alcotest.(check int) "single inline slot" 1 (Array.length stats);
  Alcotest.(check int) "inline tasks counted" 5 stats.(0).Domain_pool.w_tasks;
  Domain_pool.shutdown pool

let suite =
  ( "obs",
    [
      Alcotest.test_case "json validator sanity" `Quick test_json_validator;
      Alcotest.test_case "ring wrap-around" `Quick test_ring_wrap;
      Alcotest.test_case "ring partial fill" `Quick test_ring_partial;
      Alcotest.test_case "sample delta algebra" `Quick test_sample_algebra;
      Alcotest.test_case "tracing leaves metrics bit-identical" `Slow
        test_observation_is_free;
      Alcotest.test_case "interval aggregate == final metrics" `Slow
        test_interval_aggregate_equals_metrics;
      Alcotest.test_case "chrome trace JSON well-formed" `Slow
        test_chrome_trace_json;
      Alcotest.test_case "metrics to_json well-formed" `Slow
        test_metrics_to_json;
      Alcotest.test_case "mkdir_p + interval files" `Quick test_mkdir_p_nested;
      Alcotest.test_case "telemetry run basenames" `Quick test_run_basename;
      Alcotest.test_case "pool worker profiling" `Quick test_pool_profiling;
      Alcotest.test_case "pool profiling inline" `Quick
        test_pool_profiling_sequential;
    ] )
