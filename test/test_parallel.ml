(* The parallel experiment engine: the domain pool itself, and the
   bit-identical-to-sequential guarantee of the batch simulation fan-out
   (ISSUE 1's determinism requirement). *)

module Domain_pool = Hc_core.Domain_pool
module Runs = Hc_core.Runs
module Profile = Hc_trace.Profile
module Trace = Hc_trace.Trace
module Metrics = Hc_sim.Metrics
module Counter = Hc_stats.Counter

(* ----- the pool ----- *)

let test_pool_map_order () =
  let pool = Domain_pool.create ~jobs:3 in
  Fun.protect
    ~finally:(fun () -> Domain_pool.shutdown pool)
    (fun () ->
      let xs = Array.init 100 Fun.id in
      let ys = Domain_pool.map pool (fun x -> (x * x) + 1) xs in
      Alcotest.(check (array int))
        "results in input order"
        (Array.map (fun x -> (x * x) + 1) xs)
        ys;
      Alcotest.(check (list int))
        "map_list too" [ 2; 5; 10 ]
        (Domain_pool.map_list pool (fun x -> (x * x) + 1) [ 1; 2; 3 ]))

let test_pool_exception () =
  let pool = Domain_pool.create ~jobs:4 in
  Fun.protect
    ~finally:(fun () -> Domain_pool.shutdown pool)
    (fun () ->
      Alcotest.check_raises "first error re-raised" Exit (fun () ->
          ignore
            (Domain_pool.map pool
               (fun x -> if x = 7 then raise Exit else x)
               (Array.init 32 Fun.id)));
      (* the pool survives a failed batch *)
      Alcotest.(check (array int))
        "pool still works" [| 0; 2; 4 |]
        (Domain_pool.map pool (fun x -> 2 * x) [| 0; 1; 2 |]))

let test_pool_sequential_degenerate () =
  let pool = Domain_pool.create ~jobs:1 in
  Alcotest.(check int) "jobs clamped" 1 (Domain_pool.jobs pool);
  Alcotest.(check (array int))
    "inline map" [| 1; 2; 3 |]
    (Domain_pool.map pool succ [| 0; 1; 2 |]);
  (* no domains were spawned; shutdown is a no-op *)
  Domain_pool.shutdown pool;
  Domain_pool.shutdown pool

(* ----- determinism of the batch engine ----- *)

let metrics_equal ~cell (a : Metrics.t) (b : Metrics.t) =
  let check what x y = Alcotest.(check int) (cell ^ ": " ^ what) x y in
  Alcotest.(check string) (cell ^ ": name") a.Metrics.name b.Metrics.name;
  Alcotest.(check string)
    (cell ^ ": scheme") a.Metrics.scheme_name b.Metrics.scheme_name;
  check "committed" a.Metrics.committed b.Metrics.committed;
  check "ticks" a.Metrics.ticks b.Metrics.ticks;
  check "copies" a.Metrics.copies b.Metrics.copies;
  check "steered_narrow" a.Metrics.steered_narrow b.Metrics.steered_narrow;
  check "split_uops" a.Metrics.split_uops b.Metrics.split_uops;
  check "wpred_correct" a.Metrics.wpred_correct b.Metrics.wpred_correct;
  check "wpred_fatal" a.Metrics.wpred_fatal b.Metrics.wpred_fatal;
  check "wpred_nonfatal" a.Metrics.wpred_nonfatal b.Metrics.wpred_nonfatal;
  check "prefetch_copies" a.Metrics.prefetch_copies b.Metrics.prefetch_copies;
  check "prefetch_useful" a.Metrics.prefetch_useful b.Metrics.prefetch_useful;
  check "nready_w2n" a.Metrics.nready_w2n b.Metrics.nready_w2n;
  check "nready_n2w" a.Metrics.nready_n2w b.Metrics.nready_n2w;
  check "issued_total" a.Metrics.issued_total b.Metrics.issued_total;
  Alcotest.(check (list string))
    (cell ^ ": counter names")
    (Counter.names a.Metrics.counters)
    (Counter.names b.Metrics.counters);
  List.iter
    (fun name ->
      check ("counter " ^ name)
        (Counter.get a.Metrics.counters name)
        (Counter.get b.Metrics.counters name))
    (Counter.names a.Metrics.counters)

let schemes = [ "baseline"; "8_8_8"; "+CR"; "+IR" ]
let length = 3_000

let fill_sequential () =
  (* the pre-engine path: memoized on-demand, one simulation at a time *)
  Domain_pool.set_jobs 1;
  let runs = Runs.create ~length () in
  List.iter
    (fun scheme ->
      List.iter
        (fun p -> ignore (Runs.metrics runs ~scheme p))
        Runs.spec_profiles)
    schemes;
  runs

let fill_parallel ~jobs =
  Domain_pool.set_jobs jobs;
  let runs = Runs.create ~length () in
  Runs.ensure_spec runs schemes;
  runs

let test_parallel_matches_sequential () =
  let seq = fill_sequential () in
  let par = fill_parallel ~jobs:4 in
  List.iter
    (fun scheme ->
      List.iter
        (fun (p : Profile.t) ->
          metrics_equal
            ~cell:(scheme ^ " x " ^ p.Profile.name)
            (Runs.metrics seq ~scheme p)
            (Runs.metrics par ~scheme p))
        Runs.spec_profiles)
    schemes;
  Domain_pool.set_jobs (Domain_pool.default_jobs ())

let test_parallel_traces_match () =
  Domain_pool.set_jobs 4;
  let par = Runs.create ~length () in
  Runs.ensure_traces par Runs.spec_profiles;
  let seq = Runs.create ~length () in
  List.iter
    (fun (p : Profile.t) ->
      let a = Runs.trace seq p and b = Runs.trace par p in
      Alcotest.(check int)
        (p.Profile.name ^ ": length") (Trace.length a) (Trace.length b);
      let identical = ref true in
      for i = 0 to Trace.length a - 1 do
        if Trace.get a i <> Trace.get b i then identical := false
      done;
      Alcotest.(check bool) (p.Profile.name ^ ": uops identical") true !identical)
    Runs.spec_profiles;
  Domain_pool.set_jobs (Domain_pool.default_jobs ())

let test_ensure_idempotent () =
  let runs = Runs.create ~length () in
  Runs.ensure runs [ ("8_8_8", Profile.find_spec_int "gcc") ];
  let a = Runs.metrics runs ~scheme:"8_8_8" (Profile.find_spec_int "gcc") in
  Runs.ensure runs [ ("8_8_8", Profile.find_spec_int "gcc") ];
  let b = Runs.metrics runs ~scheme:"8_8_8" (Profile.find_spec_int "gcc") in
  Alcotest.(check bool) "memo survives re-ensure (same physical)" true (a == b);
  Alcotest.check_raises "unknown scheme rejected before fan-out" Not_found
    (fun () -> Runs.ensure runs [ ("nonesuch", Profile.find_spec_int "gcc") ])

let suite =
  ( "parallel",
    [
      Alcotest.test_case "pool map preserves order" `Quick test_pool_map_order;
      Alcotest.test_case "pool exception propagation" `Quick test_pool_exception;
      Alcotest.test_case "jobs=1 degenerates to inline" `Quick
        test_pool_sequential_degenerate;
      Alcotest.test_case "4-worker batch == sequential metrics" `Slow
        test_parallel_matches_sequential;
      Alcotest.test_case "parallel trace generation identical" `Slow
        test_parallel_traces_match;
      Alcotest.test_case "ensure is idempotent and pre-validates" `Quick
        test_ensure_idempotent;
    ] )
