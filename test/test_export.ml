(* Tests for the CSV export. *)

module Export = Hc_core.Export
module Runs = Hc_core.Runs

let test_csv_line () =
  Alcotest.(check string) "plain" "a,b,c" (Export.csv_line [ "a"; "b"; "c" ]);
  Alcotest.(check string) "comma quoted" "\"a,b\",c"
    (Export.csv_line [ "a,b"; "c" ]);
  Alcotest.(check string) "quote doubled" "\"say \"\"hi\"\"\""
    (Export.csv_line [ "say \"hi\"" ]);
  Alcotest.(check string) "empty field" "a,,c" (Export.csv_line [ "a"; ""; "c" ])

let test_write_all () =
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "hc_export_test" in
  let runs = Runs.create ~length:1_500 () in
  let written = Export.write_all runs ~dir in
  Alcotest.(check int) "eleven files" 11 (List.length written);
  List.iter
    (fun path ->
      Alcotest.(check bool) (path ^ " exists") true (Sys.file_exists path);
      if Filename.check_suffix path ".json" then begin
        (* meta.json: a single JSON object line *)
        let ic = open_in path in
        let line = input_line ic in
        close_in ic;
        Alcotest.(check bool) (path ^ " is an object") true
          (String.length line > 2 && line.[0] = '{');
        Alcotest.(check bool) (path ^ " has git_sha field") true
          (let re = "\"git_sha\"" in
           let rec find i =
             i + String.length re <= String.length line
             && (String.sub line i (String.length re) = re || find (i + 1))
           in
           find 0)
      end
      else begin
        let ic = open_in path in
        let header = input_line ic in
        let first = input_line ic in
        close_in ic;
        Alcotest.(check bool) (path ^ " has header") true
          (String.length header > 0);
        Alcotest.(check bool) (path ^ " has data") true (String.length first > 0);
        (* consistent column counts *)
        let cols s = List.length (String.split_on_char ',' s) in
        Alcotest.(check int) (path ^ " column count") (cols header) (cols first)
      end)
    written

let suite =
  ( "export",
    [
      Alcotest.test_case "csv quoting" `Quick test_csv_line;
      Alcotest.test_case "write all figures" `Slow test_write_all;
    ] )
