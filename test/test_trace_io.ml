(* Tests for trace serialization. *)

module Generator = Hc_trace.Generator
module Profile = Hc_trace.Profile
module Trace = Hc_trace.Trace
module Trace_io = Hc_trace.Trace_io

let temp name = Filename.concat (Filename.get_temp_dir_name ()) name

let test_roundtrip () =
  let t = Generator.generate_sliced ~length:2_000 (Profile.find_spec_int "mcf") in
  let path = temp "hc_roundtrip.trace" in
  Trace_io.save t path;
  let t' = Trace_io.load path in
  Alcotest.(check string) "name preserved" "mcf" t'.Trace.name;
  Alcotest.(check bool) "uops identical" true (Trace_io.roundtrip_equal t t')

let test_roundtrip_simulates_identically () =
  let t = Generator.generate_sliced ~length:2_000 (Profile.find_spec_int "vpr") in
  let path = temp "hc_sim.trace" in
  Trace_io.save t path;
  let t' = Trace_io.load path in
  let run trace =
    let cfg =
      Hc_sim.Config.with_scheme Hc_sim.Config.default
        (Hc_sim.Config.find_scheme "+CR")
    in
    Hc_sim.Pipeline.run ~cfg ~decide:Hc_steering.Policy.decide
      ~scheme_name:"+CR" trace
  in
  let a = run t and b = run t' in
  Alcotest.(check int) "identical ticks" a.Hc_sim.Metrics.ticks
    b.Hc_sim.Metrics.ticks;
  Alcotest.(check int) "identical copies" a.Hc_sim.Metrics.copies
    b.Hc_sim.Metrics.copies

let test_malformed () =
  let write path lines =
    let oc = open_out path in
    List.iter (fun l -> output_string oc (l ^ "\n")) lines;
    close_out oc;
    path
  in
  let expect_failure name path =
    match Trace_io.load path with
    | _ -> Alcotest.failf "%s: expected failure" name
    | exception Failure _ -> ()
  in
  expect_failure "bad header"
    (write (temp "bad1.trace") [ "not-a-trace" ]);
  expect_failure "truncated"
    (write (temp "bad2.trace") [ "helper-cluster-trace v1 x 2" ]);
  expect_failure "bad uop line"
    (write (temp "bad3.trace")
       [ "helper-cluster-trace v1 x 1"; "0 0 add garbage" ]);
  expect_failure "unknown opcode"
    (write (temp "bad4.trace")
       [ "helper-cluster-trace v1 x 1";
         "0 400000 frobnicate dst=- srcs= res=0 addr=0 taken=0 misp=0 dl0=0 ul1=0" ])

let test_empty_trace () =
  let t = Trace.make ~name:"empty" ~profile:(List.hd Profile.spec_int) [||] in
  let path = temp "hc_empty.trace" in
  Trace_io.save t path;
  let t' = Trace_io.load path in
  Alcotest.(check int) "zero uops" 0 (Trace.length t')

let suite =
  ( "trace_io",
    [
      Alcotest.test_case "roundtrip" `Quick test_roundtrip;
      Alcotest.test_case "roundtrip simulates identically" `Quick
        test_roundtrip_simulates_identically;
      Alcotest.test_case "malformed inputs" `Quick test_malformed;
      Alcotest.test_case "empty trace" `Quick test_empty_trace;
    ] )
