(* Tests for the artifact readback library (lib/report) and the
   steering-attribution invariants it reports on. *)

module Json = Hc_report.Json
module Loader = Hc_report.Loader
module Diff = Hc_report.Diff
module Render = Hc_report.Render
module Sparkline = Hc_report.Sparkline
module Config = Hc_sim.Config
module Pipeline = Hc_sim.Pipeline
module Metrics = Hc_sim.Metrics
module Meta = Hc_core.Meta
module Export = Hc_core.Export
module Sink = Hc_obs.Sink
module Sample = Hc_obs.Sample
module Chrome_trace = Hc_obs.Chrome_trace

let trace =
  lazy
    (Hc_trace.Generator.generate_sliced ~length:4_000
       (Hc_trace.Profile.find_spec_int "gcc"))

let run ?sink scheme_name scheme =
  let cfg = Config.with_scheme Config.default scheme in
  Pipeline.run ?sink ~cfg ~decide:Hc_steering.Policy.decide ~scheme_name
    (Lazy.force trace)

(* ----- parser ----- *)

let test_parser_accepts () =
  let ok s =
    match Json.parse s with
    | Ok _ -> ()
    | Error at -> Alcotest.failf "%S rejected at %d" s at
  in
  ok "null";
  ok "true";
  ok "  [1, 2.5, -3e2, \"x\", {\"k\": [[]]}]  ";
  ok "{\"a\":{\"b\":0}}";
  ok "\"esc \\\" \\\\ \\u00e9\""

let test_parser_rejects () =
  let bad s =
    match Json.parse s with
    | Ok _ -> Alcotest.failf "%S accepted" s
    | Error _ -> ()
  in
  bad "";
  bad "{";
  bad "[1,]";
  bad "{\"a\":}";
  bad "01";
  bad "1 2";
  bad "nul";
  bad "\"unterminated";
  bad "{\"a\":1,}"

let test_raw_lexemes () =
  (* the reason this parser exists: no numeric normalisation on the way
     through, so "1.150" does not become "1.15" *)
  let j = Json.parse_exn "{\"v\":1.150,\"z\":-0.0,\"e\":5e3}" in
  Alcotest.(check string)
    "raw preserved" "{\"v\":1.150,\"z\":-0.0,\"e\":5e3}" (Json.to_string j);
  Alcotest.(check (option (float 1e-9))) "numeric view" (Some 1.15)
    (Option.bind (Json.member "v" j) Json.number)

let test_roundtrip_metrics_json () =
  let m = run "+IR" (Config.find_scheme "+IR") in
  let js = Metrics.to_json m in
  Alcotest.(check string) "metrics bit-for-bit" js
    (Json.to_string (Json.parse_exn js));
  let j = Json.parse_exn js in
  Alcotest.(check (option int)) "schema 5" (Some 5) (Loader.schema j);
  Alcotest.(check (option string)) "scheme field" (Some "+IR")
    (Option.bind (Json.member "scheme" j) Json.string_value)

let test_roundtrip_meta_json () =
  (* same single-line minified shape Export.write_all puts in meta.json *)
  let line =
    Printf.sprintf "{%s,\"trace_length\":%d}"
      (Meta.to_json_fields (Meta.capture ()))
      4_000
  in
  Alcotest.(check string) "meta bit-for-bit" line
    (Json.to_string (Json.parse_exn line))

(* ----- attribution invariants across the whole policy stack ----- *)

let test_attrib_sums_all_schemes () =
  List.iter
    (fun (name, scheme) ->
      let sink = Sink.create ~interval:300 ~tracing:false () in
      let m = run ~sink name scheme in
      let cell what = Printf.sprintf "%s: %s" name what in
      Alcotest.(check int)
        (cell "narrow attribution sums to steered_narrow")
        m.Metrics.steered_narrow
        (Metrics.attrib_narrow_sum m);
      Alcotest.(check int)
        (cell "steered_ir = split_uops")
        m.Metrics.split_uops m.Metrics.steered_ir;
      Alcotest.(check int)
        (cell "wide columns sum to wide commits")
        (m.Metrics.committed - m.Metrics.steered_narrow)
        (m.Metrics.wide_default + m.Metrics.wide_demoted);
      Alcotest.(check bool) (cell "attrib_consistent") true
        (Metrics.attrib_consistent m);
      (* the identity holds per interval, not just at end of run *)
      List.iter
        (fun (s : Sample.t) ->
          Alcotest.(check bool)
            (cell "interval attribution consistent")
            true
            (Sample.attrib_consistent s.Sample.d))
        (Sink.samples sink);
      let agg = Sample.aggregate (Sink.samples sink) in
      Alcotest.(check int) (cell "aggregate steered_888")
        m.Metrics.steered_888 agg.Sample.steered_888;
      Alcotest.(check int) (cell "aggregate wide_demoted")
        m.Metrics.wide_demoted agg.Sample.wide_demoted)
    Hc_steering.Policy.stack

(* ----- diff engine ----- *)

let diff ?tols ?default_tol base cand =
  Diff.run ?tols ?default_tol ~base:(Json.parse_exn base)
    ~cand:(Json.parse_exn cand) ()

let check_exit what expected r =
  Alcotest.(check int) what expected (Diff.exit_code r)

let test_diff_exit_codes () =
  let base = "{\"a\":1,\"b\":2.5}" in
  check_exit "identical passes" 0 (diff base base);
  check_exit "two-sided drift regresses" 1 (diff base "{\"a\":1,\"b\":2.6}");
  check_exit "missing metric" 2 (diff base "{\"a\":1}");
  check_exit "regression outranks missing" 1 (diff base "{\"a\":2}");
  check_exit "new keys are not failures" 0
    (diff base "{\"a\":1,\"b\":2.5,\"c\":9}")

let test_diff_directions () =
  (* ipc only regresses downward *)
  check_exit "ipc rise passes" 0 (diff "{\"ipc\":1.0}" "{\"ipc\":1.2}");
  check_exit "ipc drop regresses" 1 (diff "{\"ipc\":1.2}" "{\"ipc\":1.0}");
  (* bench kernels only regress when slower *)
  let k v = Printf.sprintf "{\"kernels_ns_per_run\":{\"x\":%s}}" v in
  check_exit "faster kernel passes" 0 (diff (k "100") (k "50"));
  check_exit "slower kernel regresses" 1 (diff (k "100") (k "200"));
  check_exit "slower within tolerance passes" 0
    (diff ~tols:[ ("kernels_ns_per_run.", 0.5) ] (k "100") (k "140"));
  (* host identity and wall clock never compared *)
  check_exit "ignored keys pass" 0
    (diff "{\"unix_time_s\":1.0,\"host_cores\":4,\"schema\":1}"
       "{\"unix_time_s\":9.9,\"host_cores\":64,\"schema\":2}");
  check_exit "ignored keys may vanish" 0
    (diff "{\"pool\":{\"jobs\":4},\"a\":1}" "{\"a\":1}")

let test_diff_tolerances () =
  let base = "{\"a\":100}" and cand = "{\"a\":103}" in
  check_exit "outside default tol" 1 (diff base cand);
  check_exit "inside default tol" 0 (diff ~default_tol:0.05 base cand);
  check_exit "exact key tol" 0 (diff ~tols:[ ("a", 0.05) ] base cand);
  (* longest pattern wins: tight catch-all, loose specific *)
  check_exit "longest match wins" 0
    (diff ~tols:[ ("default", 0.0); ("a", 0.05) ] base cand);
  check_exit "specific can also tighten" 1
    (diff ~tols:[ ("default", 0.1); ("a", 0.0) ] base cand)

let test_diff_real_metrics () =
  let m = run "+CR" (Config.find_scheme "+CR") in
  let j () = Json.parse_exn (Metrics.to_json m) in
  let r = Diff.run ~base:(j ()) ~cand:(j ()) () in
  check_exit "self-diff passes" 0 r;
  Alcotest.(check bool) "compared many metrics" true (r.Diff.compared > 20);
  Alcotest.(check bool) "renderable" true
    (String.length (Render.diff_table ~all:true r) > 0)

(* ----- loaders / render ----- *)

let tmp name = Filename.concat (Filename.get_temp_dir_name ()) name

let test_csv_roundtrip () =
  let sink = Sink.create ~interval:250 ~tracing:false () in
  let m = run ~sink "+IR" (Config.find_scheme "+IR") in
  let path = tmp "hc_test_intervals.csv" in
  let _ = Export.write_intervals_csv ~path (Sink.samples sink) in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      match Loader.load_csv path with
      | Error e -> Alcotest.fail e
      | Ok csv ->
        Alcotest.(check int) "row count"
          (List.length (Sink.samples sink))
          (Loader.rows csv);
        let sum name =
          match Loader.column csv name with
          | None -> Alcotest.failf "missing column %s" name
          | Some xs -> int_of_float (Array.fold_left ( +. ) 0. xs)
        in
        Alcotest.(check int) "committed column sums to metrics"
          m.Metrics.committed (sum "committed");
        Alcotest.(check int) "attribution column survives CSV"
          m.Metrics.steered_888 (sum "steered_888");
        Alcotest.(check bool) "timeline renders" true
          (String.length (Render.timeline csv) > 0))

let test_ring_info () =
  let with_ring =
    Json.parse_exn
      (Chrome_trace.to_string ~ring:(10, 3) ~events:[] ~samples:[] ())
  in
  Alcotest.(check (option (pair int int))) "ring stats read back"
    (Some (10, 3))
    (Loader.ring_info with_ring);
  let without =
    Json.parse_exn (Chrome_trace.to_string ~events:[] ~samples:[] ())
  in
  Alcotest.(check (option (pair int int))) "absent when not recorded" None
    (Loader.ring_info without)

let test_render_consistency () =
  let m = run "+IR" (Config.find_scheme "+IR") in
  let j = Json.parse_exn (Metrics.to_json m) in
  Alcotest.(check bool) "attrib_consistent on loaded file" true
    (Render.attrib_consistent j);
  Alcotest.(check string) "run label" "gcc [+IR]" (Render.run_label j);
  Alcotest.(check bool) "summary table renders" true
    (String.length (Render.summary_table [ ("m", j) ]) > 0);
  (* a corrupted attribution column must be caught *)
  let broken =
    Json.parse_exn
      "{\"committed\":10,\"steered_narrow\":4,\"split_uops\":0,\
       \"steered_888\":1,\"steered_br\":0,\"steered_cr\":0,\
       \"steered_ir\":0,\"steered_other\":0,\"wide_default\":6,\
       \"wide_demoted\":0}"
  in
  Alcotest.(check bool) "broken sums detected" false
    (Render.attrib_consistent broken)

let test_sparkline () =
  Alcotest.(check string) "empty" "" (Sparkline.render [||]);
  Alcotest.(check string) "flat is all dashes" "---"
    (Sparkline.render [| 5.; 5.; 5. |]);
  let s = Sparkline.render [| 0.; 1.; 2.; 3. |] in
  Alcotest.(check int) "one char per point" 4 (String.length s);
  Alcotest.(check char) "min maps low" '_' s.[0];
  Alcotest.(check char) "max maps high" '@' s.[3];
  Alcotest.(check int) "downsampled width" 10
    (String.length
       (Sparkline.render ~width:10 (Array.init 1000 float_of_int)))

let suite =
  ( "report",
    [
      Alcotest.test_case "parser accepts" `Quick test_parser_accepts;
      Alcotest.test_case "parser rejects" `Quick test_parser_rejects;
      Alcotest.test_case "raw lexemes" `Quick test_raw_lexemes;
      Alcotest.test_case "metrics JSON round-trip" `Quick
        test_roundtrip_metrics_json;
      Alcotest.test_case "meta JSON round-trip" `Quick
        test_roundtrip_meta_json;
      Alcotest.test_case "attrib sums on every scheme" `Quick
        test_attrib_sums_all_schemes;
      Alcotest.test_case "diff exit codes" `Quick test_diff_exit_codes;
      Alcotest.test_case "diff directions" `Quick test_diff_directions;
      Alcotest.test_case "diff tolerances" `Quick test_diff_tolerances;
      Alcotest.test_case "diff real metrics" `Quick test_diff_real_metrics;
      Alcotest.test_case "interval CSV round-trip" `Quick test_csv_roundtrip;
      Alcotest.test_case "trace ring metadata" `Quick test_ring_info;
      Alcotest.test_case "render consistency" `Quick test_render_consistency;
      Alcotest.test_case "sparkline" `Quick test_sparkline;
    ] )
