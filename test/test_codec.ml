(* Tests for the binary trace codec: roundtrips (example-based and
   property-based against the text format), format dispatch, and clean
   rejection of every corruption mode the cache self-heals from. *)

module Uop = Hc_isa.Uop
module Reg = Hc_isa.Reg
module Opcode = Hc_isa.Opcode
module Trace = Hc_trace.Trace
module Trace_io = Hc_trace.Trace_io
module Codec = Hc_trace.Codec
module Generator = Hc_trace.Generator
module Profile = Hc_trace.Profile

let temp name = Filename.concat (Filename.get_temp_dir_name ()) name

let gcc = Profile.find_spec_int "gcc"

let gen_trace length name =
  Generator.generate_sliced ~length (Profile.find_spec_int name)

(* ----- roundtrips ----- *)

let test_roundtrip_generated () =
  let t = gen_trace 3_000 "gcc" in
  let t' = Codec.decode ~profile:t.Trace.profile (Codec.encode t) in
  Alcotest.(check string) "name preserved" t.Trace.name t'.Trace.name;
  Alcotest.(check bool) "uops identical" true (Trace_io.roundtrip_equal t t')

let test_empty_roundtrip () =
  let t = Trace.make ~name:"empty" ~profile:gcc [||] in
  let t' = Codec.decode ~profile:gcc (Codec.encode t) in
  Alcotest.(check int) "zero uops" 0 (Trace.length t');
  Alcotest.(check string) "name preserved" "empty" t'.Trace.name

let test_size_and_speed_claims () =
  let t = gen_trace 3_000 "mcf" in
  let enc = Codec.encode t in
  Alcotest.(check bool) "starts with magic" true (Codec.is_binary enc);
  let text_path = temp "hc_codec_size.trace" in
  Trace_io.save t text_path;
  let text_bytes = (Unix.stat text_path).Unix.st_size in
  Sys.remove text_path;
  Alcotest.(check bool)
    (Printf.sprintf "binary at least 4x smaller (%d vs %d bytes)"
       (String.length enc) text_bytes)
    true
    (String.length enc * 4 < text_bytes)

let test_save_load_dispatch () =
  let t = gen_trace 1_000 "vpr" in
  let bin_path = temp "hc_codec_dispatch.hct" in
  let text_path = temp "hc_codec_dispatch.trace" in
  Trace_io.save_binary t bin_path;
  Trace_io.save t text_path;
  (* the same loader reads both encodings, keyed off the magic bytes *)
  let from_bin = Trace_io.load ~profile:t.Trace.profile bin_path in
  let from_text = Trace_io.load ~profile:t.Trace.profile text_path in
  Sys.remove bin_path;
  Sys.remove text_path;
  Alcotest.(check bool) "binary load identical" true
    (Trace_io.roundtrip_equal t from_bin);
  Alcotest.(check bool) "text load identical" true
    (Trace_io.roundtrip_equal t from_text)

(* ----- property: binary and text roundtrips agree on random uops ----- *)

(* Random uops within the representable envelope of both formats:
   non-negative 32-bit values, immediates equal to their recorded source
   value (the trace generator's invariant, and all the text format can
   express), registers and opcodes from the real enums. Ids are made
   dense and pcs non-negative after generation. *)
let uop_gen =
  let open QCheck.Gen in
  let value =
    oneof
      [
        int_bound 0xFF;
        (let* hi = int_bound 0xFFFF in
         let* lo = int_bound 0xFFFF in
         return ((hi lsl 16) lor lo));
      ]
  in
  let reg = map Reg.of_index (int_bound (Reg.count - 1)) in
  let operand =
    let* v = value in
    oneof [ return (Uop.Imm v, v); map (fun r -> (Uop.Reg r, v)) reg ]
  in
  let* pc = int_bound 0xFFFFF in
  let* op = oneofl Opcode.all in
  let* operands = list_size (int_bound 3) operand in
  let* dst = option reg in
  let* result = value in
  let* mem_addr = oneof [ return 0; value ] in
  let* taken = bool in
  let* misp = bool in
  let* dl0 = bool in
  let* ul1 = bool in
  return
    (Uop.make ~id:0 ~pc ~op ~srcs:(List.map fst operands) ~dst
       ~src_vals:(List.map snd operands) ~result ~mem_addr ~taken
       ~branch_mispredicted:misp ~dl0_miss:dl0 ~ul1_miss:ul1 ())

let trace_gen =
  let open QCheck.Gen in
  let* uops = list_size (int_bound 60) uop_gen in
  let uops = Array.of_list uops in
  Array.iteri (fun i u -> uops.(i) <- { u with Uop.id = i }) uops;
  return (Trace.make ~name:"prop" ~profile:gcc uops)

let prop_binary_matches_text =
  QCheck.Test.make ~name:"binary and text roundtrips both reproduce the trace"
    ~count:30
    (QCheck.make
       ~print:(fun t -> Printf.sprintf "<%d random uops>" (Trace.length t))
       trace_gen)
    (fun t ->
      let bin = Codec.decode ~profile:gcc (Codec.encode t) in
      let path = temp "hc_codec_prop.trace" in
      Trace_io.save t path;
      let txt = Trace_io.load ~profile:gcc path in
      Sys.remove path;
      Trace_io.roundtrip_equal t bin
      && Trace_io.roundtrip_equal t txt
      && Trace_io.roundtrip_equal bin txt)

(* ----- corruption: every defect raises Corrupt, never a wrong trace ----- *)

let expect_corrupt name data =
  match Codec.decode ~profile:gcc data with
  | _ -> Alcotest.failf "%s: expected Codec.Corrupt" name
  | exception Codec.Corrupt _ -> ()

let flip s i =
  let b = Bytes.of_string s in
  Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x40));
  Bytes.to_string b

let test_corrupt_rejected () =
  let enc = Codec.encode (gen_trace 500 "gzip") in
  let n = String.length enc in
  expect_corrupt "truncated body" (String.sub enc 0 (n - 10));
  expect_corrupt "truncated to header" (String.sub enc 0 6);
  expect_corrupt "flipped payload byte" (flip enc (n / 2));
  expect_corrupt "flipped crc byte" (flip enc (n - 1));
  expect_corrupt "trailing garbage" (enc ^ "junk");
  expect_corrupt "future schema"
    (let b = Bytes.of_string enc in
     Bytes.set b 4 (Char.chr 99);
     Bytes.to_string b);
  expect_corrupt "foreign magic" ("XXTB" ^ String.sub enc 4 (n - 4))

let test_corrupt_through_loader () =
  (* a damaged binary file surfaces as Codec.Corrupt from the dispatching
     loader; a non-binary file still takes the text path and its errors *)
  let enc = Codec.encode (gen_trace 300 "mcf") in
  let path = temp "hc_codec_damaged.hct" in
  let oc = open_out_bin path in
  output_string oc (String.sub enc 0 (String.length enc - 5));
  close_out oc;
  ( match Trace_io.load ~profile:gcc path with
  | _ -> Alcotest.fail "expected Codec.Corrupt from dispatching loader"
  | exception Codec.Corrupt _ -> () );
  Sys.remove path;
  let oc = open_out (temp "hc_codec_nottext.trace") in
  output_string oc "not-a-trace\n";
  close_out oc;
  match Trace_io.load ~profile:gcc (temp "hc_codec_nottext.trace") with
  | _ -> Alcotest.fail "expected Failure from text path"
  | exception Failure _ -> Sys.remove (temp "hc_codec_nottext.trace")

let test_crc_stability () =
  (* pinned value so an accidental polynomial / table change cannot pass
     as a "both sides updated" refactor *)
  Alcotest.(check int) "crc32 of known vector" 0xCBF43926
    (Codec.crc32 "123456789" ~pos:0 ~len:9)

let suite =
  ( "codec",
    [
      Alcotest.test_case "roundtrip of generated trace" `Quick
        test_roundtrip_generated;
      Alcotest.test_case "empty trace" `Quick test_empty_roundtrip;
      Alcotest.test_case "binary is much smaller" `Quick
        test_size_and_speed_claims;
      Alcotest.test_case "save/load dispatch on magic" `Quick
        test_save_load_dispatch;
      QCheck_alcotest.to_alcotest prop_binary_matches_text;
      Alcotest.test_case "corruption modes rejected" `Quick
        test_corrupt_rejected;
      Alcotest.test_case "corruption through Trace_io.load" `Quick
        test_corrupt_through_loader;
      Alcotest.test_case "crc32 known vector" `Quick test_crc_stability;
    ] )
