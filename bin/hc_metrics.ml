(* Registry-dump tooling: read back the Prometheus text exposition that
   --prom-out (or bench --json's registry section) wrote.

     hc_metrics show dump.prom               validated, normalized listing
     hc_metrics diff before.prom after.prom  per-series delta

   Both subcommands run the strict exposition parser, so they double as
   format validators: a malformed dump exits 3 with the offending line.
   `diff` prints one row per series present in either dump (sorted), with
   the numeric delta — the way to see what a workload added to each
   counter between two scrapes of the same process. *)

module Prom = Hc_obs.Prom

open Cmdliner

let die fmt = Printf.ksprintf (fun s -> prerr_endline s; exit 3) fmt

let load path =
  match Prom.of_file path with
  | Ok entries -> entries
  | Error e -> die "hc_metrics: %s: %s" path e

(* stable series key: name plus labels sorted by label name *)
let key (e : Prom.entry) =
  let labels =
    List.sort compare e.Prom.e_labels
    |> List.map (fun (k, v) -> Printf.sprintf "%s=%S" k v)
    |> String.concat ","
  in
  if labels = "" then e.Prom.e_name
  else Printf.sprintf "%s{%s}" e.Prom.e_name labels

let value_str v =
  if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%g" v

let show_cmd =
  let run path =
    let entries = load path in
    let rows = List.sort compare (List.map (fun e -> (key e, e.Prom.e_value)) entries) in
    List.iter
      (fun (k, v) -> Printf.printf "%-60s %s\n" k (value_str v))
      rows;
    Printf.printf "%d series in %s\n" (List.length rows) path
  in
  let path =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"DUMP.prom")
  in
  Cmd.v
    (Cmd.info "show"
       ~doc:"validate a registry dump and print its series, sorted")
    Term.(const run $ path)

let diff_cmd =
  let run base_path new_path all =
    let index entries =
      let tbl = Hashtbl.create 64 in
      List.iter (fun e -> Hashtbl.replace tbl (key e) e.Prom.e_value) entries;
      tbl
    in
    let base = index (load base_path) in
    let cand = index (load new_path) in
    let keys =
      List.sort_uniq compare
        (Hashtbl.fold (fun k _ acc -> k :: acc) base []
        @ Hashtbl.fold (fun k _ acc -> k :: acc) cand [])
    in
    Printf.printf "base: %s\nnew:  %s\n" base_path new_path;
    Printf.printf "%-60s %14s %14s %14s\n" "series" "base" "new" "delta";
    let changed = ref 0 in
    List.iter
      (fun k ->
        match (Hashtbl.find_opt base k, Hashtbl.find_opt cand k) with
        | Some b, Some n ->
          if b <> n || all then begin
            if b <> n then incr changed;
            Printf.printf "%-60s %14s %14s %+14g\n" k (value_str b)
              (value_str n) (n -. b)
          end
        | None, Some n ->
          incr changed;
          Printf.printf "%-60s %14s %14s %14s\n" k "-" (value_str n) "new"
        | Some b, None ->
          incr changed;
          Printf.printf "%-60s %14s %14s %14s\n" k (value_str b) "-" "gone"
        | None, None -> ())
      keys;
    Printf.printf "%d of %d series changed\n" !changed (List.length keys)
  in
  let base =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"BASE.prom")
  in
  let cand =
    Arg.(required & pos 1 (some string) None & info [] ~docv:"NEW.prom")
  in
  let all =
    Arg.(
      value & flag
      & info [ "all" ] ~doc:"List unchanged series too, not just deltas.")
  in
  Cmd.v
    (Cmd.info "diff" ~doc:"per-series delta between two registry dumps")
    Term.(const run $ base $ cand $ all)

let () =
  let doc = "read, validate and diff metrics-registry dumps" in
  exit (Cmd.eval (Cmd.group (Cmd.info "hc_metrics" ~doc) [ show_cmd; diff_cmd ]))
