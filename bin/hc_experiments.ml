(* Reproduce the paper's tables and figures and print paper-vs-measured
   headline comparisons.

     hc_experiments                 run everything
     hc_experiments fig6 fig12      run selected experiments
     hc_experiments --length 50000  longer traces (slower, smoother)
     hc_experiments --jobs 4        size the simulation domain pool
     hc_experiments --list          list experiment ids
     hc_experiments --telemetry-dir DIR   per-run interval series + metrics
     hc_experiments --cache-dir DIR       warm reruns skip generation + sim *)

module Experiments = Hc_core.Experiments
module Ablations = Hc_core.Ablations
module Runs = Hc_core.Runs
module Domain_pool = Hc_core.Domain_pool
module Artifact_cache = Hc_core.Artifact_cache
module Telemetry = Hc_core.Telemetry
module Obs_setup = Hc_core.Obs_setup

open Cmdliner

let run_ids ids length telemetry cache progress =
  let runs = Runs.create ~length ?telemetry ?cache ?progress () in
  let selected =
    match ids with
    | [] -> Experiments.all
    | ids ->
      List.map
        (fun id ->
          try Experiments.find id
          with Not_found ->
            Printf.eprintf "unknown experiment %S (try --list)\n" id;
            exit 1)
        ids
  in
  List.iter
    (fun (e : Experiments.t) ->
      Printf.printf "=== %s: %s ===\n" e.Experiments.id e.Experiments.title;
      Printf.printf "paper: %s\n\n" e.Experiments.paper_claim;
      let text, headlines = e.Experiments.run runs in
      print_endline text;
      List.iter
        (fun (h : Experiments.headline) ->
          Printf.printf "  %-55s paper %8.2f | measured %8.2f\n"
            h.Experiments.label h.Experiments.paper h.Experiments.measured)
        headlines;
      print_newline ())
    selected

let run_ablations ids length =
  let selected =
    match ids with
    | [] -> Ablations.all
    | ids ->
      List.map
        (fun id ->
          try Ablations.find id
          with Not_found ->
            Printf.eprintf "unknown ablation %S\n" id;
            exit 1)
        ids
  in
  List.iter
    (fun (a : Ablations.t) ->
      Printf.printf "=== ablation %s: %s ===\nisolates: %s\n\n" a.Ablations.id
        a.Ablations.title a.Ablations.what;
      print_endline (Ablations.render (a.Ablations.run ~length));
      print_newline ())
    selected

let list_experiments () =
  List.iter
    (fun (e : Experiments.t) ->
      Printf.printf "%-8s %s\n" e.Experiments.id e.Experiments.title)
    Experiments.all;
  print_endline "ablations (with --ablations):";
  List.iter
    (fun (a : Ablations.t) ->
      Printf.printf "%-12s %s\n" a.Ablations.id a.Ablations.title)
    Ablations.all

let export dir length telemetry cache progress =
  let runs = Runs.create ~length ?telemetry ?cache ?progress () in
  let written = Hc_core.Export.write_all runs ~dir in
  List.iter print_endline written

let main list_flag ablations csv_dir length jobs telemetry_dir
    metrics_interval cache_dir obs span_log prom_out progress_flag ids =
  let obs_t = Obs_setup.setup ~obs ?span_log ?prom_out () in
  ( match jobs with
  | Some n when n > 0 -> Domain_pool.set_jobs n
  | Some _ | None -> () );
  let telemetry =
    Option.map
      (fun dir -> { Hc_core.Telemetry.dir; interval = metrics_interval })
      telemetry_dir
  in
  let cache = Artifact_cache.of_cli cache_dir in
  let progress =
    if progress_flag then
      Some (Telemetry.progress_create ~label:"campaign" ~enabled:true ())
    else None
  in
  ( if list_flag then list_experiments ()
    else if ablations then run_ablations ids length
    else
      match csv_dir with
      | Some dir -> export dir length telemetry cache progress
      | None -> run_ids ids length telemetry cache progress );
  ( match progress with
  | Some p -> Telemetry.progress_finish p
  | None -> () );
  Obs_setup.finish obs_t

let cmd =
  let list_flag =
    Arg.(value & flag & info [ "list" ] ~doc:"List experiment ids and exit.")
  in
  let length =
    Arg.(
      value
      & opt int 30_000
      & info [ "length" ] ~docv:"UOPS" ~doc:"Trace length per benchmark.")
  in
  let ablations =
    Arg.(value & flag & info [ "ablations" ] ~doc:"Run design ablations instead.")
  in
  let csv_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "csv" ] ~docv:"DIR" ~doc:"Write plot-ready CSVs into $(docv).")
  in
  let jobs =
    Arg.(
      value
      & opt (some int) None
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:
            "Simulations to run concurrently (default: $(b,HC_JOBS) or the \
             recommended domain count). Results are bit-identical at any \
             setting.")
  in
  let telemetry_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "telemetry-dir" ] ~docv:"DIR"
          ~doc:
            "Write per-run telemetry ($(b,<scheme>__<benchmark>)\
             $(b,.intervals.csv) and $(b,.metrics.json)) for every \
             simulation into $(docv) (created with parents).")
  in
  let metrics_interval =
    Arg.(
      value & opt int 1_000
      & info [ "metrics-interval" ] ~docv:"TICKS"
          ~doc:
            "Interval sampler period, in fast ticks, for \
             $(b,--telemetry-dir) runs.")
  in
  let cache_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "cache-dir" ] ~docv:"DIR"
          ~doc:
            "Artifact-cache root: traces and finished run metrics reload \
             from (and publish to) $(docv), so a warm rerun of a sweep \
             skips generation and simulation with bit-identical numbers \
             (default: $(b,HC_CACHE_DIR) or $(b,_hc_cache); $(b,none) \
             disables).")
  in
  let obs =
    Arg.(
      value & flag
      & info [ "obs" ]
          ~doc:
            "Enable the process-wide observability layer (metrics registry \
             + stage-span collector).")
  in
  let span_log =
    Arg.(
      value
      & opt (some string) None
      & info [ "span-log" ] ~docv:"FILE"
          ~doc:
            "Write recorded stage spans as JSONL to $(docv); implies \
             observability on.")
  in
  let prom_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "prom-out" ] ~docv:"FILE"
          ~doc:
            "Write the final metrics-registry scrape as Prometheus text \
             exposition to $(docv); implies observability on.")
  in
  let progress =
    Arg.(
      value & flag
      & info [ "progress" ]
          ~doc:
            "Live campaign reporter on stderr: cells done/total, warm-hit \
             rate and ETA, updated as the sweep resolves.")
  in
  let ids =
    Arg.(value & pos_all string [] & info [] ~docv:"EXPERIMENT")
  in
  let doc = "reproduce the helper-cluster paper's tables and figures" in
  Cmd.v (Cmd.info "hc_experiments" ~doc)
    Term.(
      const main $ list_flag $ ablations $ csv_dir $ length $ jobs
      $ telemetry_dir $ metrics_interval $ cache_dir $ obs $ span_log
      $ prom_out $ progress $ ids)

let () = exit (Cmd.eval cmd)
