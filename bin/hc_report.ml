(* Artifact readback and cross-run comparison:

     hc_report report runs/*/metrics.json --intervals intervals.csv
     hc_report attrib m_888.json m_cr.json m_ir.json
     hc_report diff BENCH_1.json BENCH_3.json --tol kernels_ns_per_run.=0.30
     hc_report baseline smoke.json        # vs baselines/gcc_smoke.json

   Everything is read from disk through lib/report's dependency-free
   JSON/CSV loaders — this binary never runs a simulation. diff/baseline
   exit 1 on any regression and 2 on baseline metrics missing from the
   candidate, so CI can gate on the result. *)

module Json = Hc_report.Json
module Loader = Hc_report.Loader
module Diff = Hc_report.Diff
module Render = Hc_report.Render
module Sparkline = Hc_report.Sparkline

open Cmdliner

let die fmt = Printf.ksprintf (fun s -> prerr_endline s; exit 3) fmt

let load_or_die path =
  match Loader.load_json path with
  | Ok j -> j
  | Error e -> die "hc_report: %s" e

let load_runs paths =
  List.map (fun p -> (p, load_or_die p)) paths

let warn_ring path j =
  match Loader.ring_info j with
  | Some (pushed, dropped) when dropped > 0 ->
    Printf.printf
      "WARNING: %s: event ring overflowed — %d of %d events dropped, the \
       trace is a truncated window (raise --trace-buffer to keep more)\n"
      path dropped pushed
  | Some (pushed, _) ->
    Printf.printf "%s: complete trace (%d events, no ring drops)\n" path pushed
  | None -> ()

(* ---- report ---- *)

let report_cmd =
  let run files intervals trace width =
    if files = [] && intervals = None && trace = None then
      die "hc_report report: nothing to read (give metrics files, \
           --intervals or --trace)";
    let runs = load_runs files in
    List.iter
      (fun (path, j) ->
        match Loader.schema j with
        | Some s when s >= 2 -> ()
        | Some s ->
          Printf.printf "note: %s is schema %d (no attribution columns)\n"
            path s
        | None -> Printf.printf "note: %s has no schema field\n" path)
      runs;
    if runs <> [] then begin
      print_string (Render.summary_table runs);
      print_newline ();
      print_string (Render.attrib_table runs);
      print_newline ();
      List.iter
        (fun (path, j) ->
          if not (Render.attrib_consistent j) then
            Printf.printf
              "WARNING: %s: attribution columns do not sum to the steering \
               totals\n"
              path)
        runs
    end;
    ( match intervals with
    | None -> ()
    | Some path -> (
      match Loader.load_csv path with
      | Ok csv ->
        print_string (Render.timeline ~width csv);
        print_newline ()
      | Error e -> die "hc_report: %s" e ) );
    match trace with
    | None -> ()
    | Some path -> warn_ring path (load_or_die path)
  in
  let files =
    Arg.(value & pos_all string [] & info [] ~docv:"METRICS.json")
  in
  let intervals =
    Arg.(
      value
      & opt (some string) None
      & info [ "intervals" ] ~docv:"CSV"
          ~doc:"Interval CSV to render as sparkline phase timelines.")
  in
  let trace =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"JSON"
          ~doc:
            "Chrome trace to inspect for ring-buffer drops (warns when the \
             trace is a truncated window).")
  in
  let width =
    Arg.(
      value & opt int 60
      & info [ "width" ] ~docv:"CHARS" ~doc:"Sparkline width.")
  in
  let doc = "summarise run artifacts: metrics tables, phase timelines" in
  Cmd.v (Cmd.info "report" ~doc)
    Term.(const run $ files $ intervals $ trace $ width)

(* ---- attrib ---- *)

let attrib_cmd =
  let run files =
    if files = [] then die "hc_report attrib: give at least one metrics file";
    let runs = load_runs files in
    print_string (Render.attrib_table runs);
    print_newline ();
    (* advisory: predictor steering past the provable bound is where the
       width-violation recoveries live — not an invariant failure *)
    List.iter
      (fun (path, j) ->
        if Render.over_static_bound j then
          Printf.printf
            "WARNING: %s: predicted 8-8-8 steering exceeds the tightest \
             static provable bound — the excess is speculative and exposed \
             to width-violation recoveries\n"
            path)
      runs;
    let bad =
      List.filter (fun (_, j) -> not (Render.attrib_consistent j)) runs
    in
    List.iter
      (fun (path, _) ->
        Printf.printf
          "FAIL: %s: attribution columns do not sum to the steering totals\n"
          path)
      bad;
    if bad <> [] then exit 1;
    print_endline "attribution sums consistent"
  in
  let files =
    Arg.(value & pos_all string [] & info [] ~docv:"METRICS.json")
  in
  let doc = "steering-attribution breakdown (and its sum invariant)" in
  Cmd.v (Cmd.info "attrib" ~doc) Term.(const run $ files)

(* ---- topdown ---- *)

let topdown_cmd =
  let run files intervals width =
    if files = [] then
      die "hc_report topdown: give at least one schema-4 metrics file \
           (hc_sim --topdown --metrics-out)";
    let runs = load_runs files in
    List.iter
      (fun (path, j) ->
        match Json.member "stall" j with
        | Some _ -> ()
        | None ->
          die "hc_report topdown: %s has no stall object (run hc_sim with \
               --topdown, or the file predates schema 4)"
            path)
      runs;
    List.iter
      (fun (path, j) ->
        Printf.printf "%s (%s)\n" path (Render.run_label j);
        print_string (Render.topdown_table j);
        print_newline ())
      runs;
    ( match runs with
    | [ base; cand ] ->
      print_endline "share deltas (base -> new, percentage points):";
      print_string
        (Render.topdown_delta_table
           ~base:(Render.run_label (snd base), snd base)
           ~cand:(Render.run_label (snd cand), snd cand));
      print_newline ()
    | _ -> () );
    ( match intervals with
    | None -> ()
    | Some path -> (
      match Loader.load_csv path with
      | Ok csv ->
        print_string
          (Render.timeline ~width ~columns:Render.stall_timeline_columns csv);
        print_newline ()
      | Error e -> die "hc_report: %s" e ) );
    (* the partition invariant is the CI gate: slots must sum to exactly
       width x rounds per lane — any tolerance would let a leak hide *)
    let bad =
      List.filter (fun (_, j) -> not (Render.topdown_consistent j)) runs
    in
    List.iter
      (fun (path, _) ->
        Printf.printf
          "FAIL: %s: stall categories do not sum to lane slots (partition \
           invariant violated)\n"
          path)
      bad;
    if bad <> [] then exit 1;
    print_endline "topdown partition exact (sum(categories) == width x rounds)"
  in
  let files =
    Arg.(value & pos_all string [] & info [] ~docv:"METRICS.json")
  in
  let intervals =
    Arg.(
      value
      & opt (some string) None
      & info [ "intervals" ] ~docv:"CSV"
          ~doc:
            "Stall-interval CSV (hc_sim --stall-out) to render as sparkline \
             timelines.")
  in
  let width =
    Arg.(
      value & opt int 60
      & info [ "width" ] ~docv:"CHARS" ~doc:"Sparkline width.")
  in
  let doc =
    "top-down stall attribution tables (exit 1 if the slot partition is \
     not exact); two files add a policy-vs-policy delta view"
  in
  Cmd.v (Cmd.info "topdown" ~doc)
    Term.(const run $ files $ intervals $ width)

(* ---- trend ---- *)

let trend_cmd =
  let run files tolerance width =
    if List.length files < 2 then
      die "hc_report trend: give at least two BENCH snapshots (oldest first)";
    let snaps = load_runs files in
    (* per-kernel nanosecond series across the snapshots, arg order *)
    let leaves =
      List.map
        (fun (_, j) ->
          List.filter_map
            (fun (key, v) ->
              let prefix = "kernels_ns_per_run." in
              if String.starts_with ~prefix key then
                Some
                  ( String.sub key (String.length prefix)
                      (String.length key - String.length prefix),
                    v )
              else None)
            (Loader.numeric_leaves j))
        snaps
    in
    if List.exists (( = ) []) leaves then
      die "hc_report trend: a snapshot has no kernels_ns_per_run leaves \
           (not a bench --json file?)";
    (* kernels present in every snapshot, in first-snapshot order *)
    let kernels =
      List.filter
        (fun k -> List.for_all (List.mem_assoc k) leaves)
        (List.map fst (List.hd leaves))
    in
    let dropped =
      List.length (List.hd leaves) - List.length kernels
    in
    if dropped > 0 then
      Printf.printf
        "note: %d kernel%s not present in every snapshot, skipped\n" dropped
        (if dropped = 1 then "" else "s");
    Printf.printf "%d kernels across %d snapshots (oldest -> newest):\n"
      (List.length kernels) (List.length snaps);
    let regressions = ref 0 in
    List.iter
      (fun k ->
        let series =
          Array.of_list (List.map (fun l -> List.assoc k l) leaves)
        in
        print_endline (Sparkline.render_labelled ~width ~label:k series);
        let first = series.(0) and last = series.(Array.length series - 1) in
        let delta =
          if first > 0. then 100. *. (last -. first) /. first else 0.
        in
        Printf.printf "  %12.0f -> %12.0f ns/run  %+.1f%%\n" first last delta;
        if first > 0. && last > first *. (1. +. tolerance) then begin
          incr regressions;
          Printf.printf
            "  WARNING: %s regressed %+.1f%% first -> last (tolerance \
             %.0f%%)\n"
            k delta (100. *. tolerance)
        end)
      kernels;
    if !regressions > 0 then
      Printf.printf
        "%d kernel%s beyond tolerance — check the machines/the change \
         history before trusting cross-snapshot comparisons\n"
        !regressions
        (if !regressions = 1 then "" else "s")
    else print_endline "no kernel regressed beyond tolerance"
  in
  let files =
    Arg.(value & pos_all string [] & info [] ~docv:"BENCH.json")
  in
  let tolerance =
    Arg.(
      value & opt float 0.25
      & info [ "tolerance" ] ~docv:"REL"
          ~doc:
            "Relative first->last growth beyond which a kernel is flagged \
             (default 0.25; wall-clock benches are noisy, so this warns \
             rather than failing).")
  in
  let width =
    Arg.(
      value & opt int 40
      & info [ "width" ] ~docv:"CHARS" ~doc:"Sparkline width.")
  in
  let doc =
    "perf trajectory across BENCH snapshots: per-kernel sparkline and \
     first->last delta, warning on kernels growing beyond tolerance"
  in
  Cmd.v (Cmd.info "trend" ~doc) Term.(const run $ files $ tolerance $ width)

(* ---- spans ---- *)

(* Read a --span-log JSONL file back through the strict parser: every
   line must be one well-formed object with the span-record shape, so
   this doubles as a validator for the structured event log. *)
let spans_cmd =
  let run path =
    let ic =
      try open_in path with Sys_error e -> die "hc_report spans: %s" e
    in
    let lines = ref [] in
    ( try
        while true do
          lines := input_line ic :: !lines
        done
      with End_of_file -> close_in ic );
    let rows =
      List.mapi
        (fun i line ->
          let lineno = i + 1 in
          match Json.parse line with
          | Error at ->
            die "hc_report spans: %s:%d: malformed JSON at byte %d" path
              lineno at
          | Ok j ->
            let str key =
              match Option.bind (Json.member key j) Json.string_value with
              | Some s -> s
              | None ->
                die "hc_report spans: %s:%d: missing string field %S" path
                  lineno key
            in
            let num key =
              match Option.bind (Json.member key j) Json.number with
              | Some n -> n
              | None ->
                die "hc_report spans: %s:%d: missing numeric field %S" path
                  lineno key
            in
            if num "schema" <> 1. then
              die "hc_report spans: %s:%d: unsupported schema" path lineno;
            if str "kind" <> "span" then
              die "hc_report spans: %s:%d: not a span record" path lineno;
            (str "name", str "track", num "dur_ns", num "gc_minor_words"))
        (List.rev !lines)
    in
    if rows = [] then die "hc_report spans: %s is empty" path;
    (* aggregate by stage name *)
    let tbl = Hashtbl.create 16 in
    List.iter
      (fun (name, _, dur, minor) ->
        let c, total, mx, mw =
          Option.value (Hashtbl.find_opt tbl name) ~default:(0, 0., 0., 0.)
        in
        Hashtbl.replace tbl name (c + 1, total +. dur, Float.max mx dur, mw +. minor))
      rows;
    let stages =
      List.sort compare
        (Hashtbl.fold (fun name v acc -> (name, v) :: acc) tbl [])
    in
    Printf.printf "%s: %d spans, %d stages\n" path (List.length rows)
      (List.length stages);
    Printf.printf "%-18s %7s %12s %12s %14s\n" "stage" "count" "total ms"
      "max ms" "minor kwords";
    List.iter
      (fun (name, (c, total, mx, mw)) ->
        Printf.printf "%-18s %7d %12.2f %12.2f %14.0f\n" name c (total /. 1e6)
          (mx /. 1e6) (mw /. 1e3))
      stages
  in
  let path =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"SPANS.jsonl")
  in
  let doc =
    "read a --span-log JSONL file (strict parse of every line) and print \
     the per-stage aggregate"
  in
  Cmd.v (Cmd.info "spans" ~doc) Term.(const run $ path)

(* ---- diff / baseline ---- *)

let tol_conv =
  let parse s =
    match String.index_opt s '=' with
    | Some i ->
      let key = String.sub s 0 i in
      let v = String.sub s (i + 1) (String.length s - i - 1) in
      ( match float_of_string_opt v with
      | Some tol when tol >= 0. -> Ok (key, tol)
      | _ -> Error (`Msg (Printf.sprintf "bad tolerance %S" v)) )
    | None -> Error (`Msg (Printf.sprintf "expected KEY=TOL, got %S" s))
  in
  let print ppf (k, v) = Format.fprintf ppf "%s=%g" k v in
  Arg.conv (parse, print)

let tols_arg =
  Arg.(
    value
    & opt_all tol_conv []
    & info [ "tol" ] ~docv:"KEY=REL"
        ~doc:
          "Relative tolerance for a metric or metric prefix (repeatable; \
           longest prefix wins; $(b,default=X) sets the catch-all). \
           E.g. $(b,--tol kernels_ns_per_run.=0.30).")

let default_tol_arg =
  Arg.(
    value & opt float 0.
    & info [ "default-tol" ] ~docv:"REL"
        ~doc:
          "Catch-all relative tolerance (default 0: the simulator is \
           deterministic, so exact match is the expectation).")

let all_arg =
  Arg.(
    value & flag
    & info [ "all" ] ~doc:"List every compared metric, not just failures.")

let run_diff ~base_path ~cand_path tols default_tol all =
  let base = load_or_die base_path in
  let cand = load_or_die cand_path in
  let r = Diff.run ~tols ~default_tol ~base ~cand () in
  Printf.printf "base: %s\nnew:  %s\n" base_path cand_path;
  print_string (Render.diff_table ~all r);
  print_newline ();
  exit (Diff.exit_code r)

let diff_cmd =
  let run base cand tols default_tol all =
    run_diff ~base_path:base ~cand_path:cand tols default_tol all
  in
  let base =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"BASE.json")
  in
  let cand =
    Arg.(required & pos 1 (some string) None & info [] ~docv:"NEW.json")
  in
  let doc =
    "compare two runs; exit 1 on regression, 2 on missing metrics"
  in
  Cmd.v (Cmd.info "diff" ~doc)
    Term.(const run $ base $ cand $ tols_arg $ default_tol_arg $ all_arg)

let baseline_cmd =
  let run cand baseline tols default_tol all =
    run_diff ~base_path:baseline ~cand_path:cand tols default_tol all
  in
  let cand =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"NEW.json")
  in
  let baseline =
    Arg.(
      value
      & opt string "baselines/gcc_smoke.json"
      & info [ "baseline" ] ~docv:"FILE"
          ~doc:
            "Committed baseline to gate against (refresh deliberately with \
             scripts/refresh_baseline.sh).")
  in
  let doc = "diff a run against the committed baseline (CI gate)" in
  Cmd.v (Cmd.info "baseline" ~doc)
    Term.(const run $ cand $ baseline $ tols_arg $ default_tol_arg $ all_arg)

let () =
  let doc = "read, summarise and diff helper-cluster run artifacts" in
  let info = Cmd.info "hc_report" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [ report_cmd; attrib_cmd; topdown_cmd; trend_cmd; spans_cmd;
            diff_cmd; baseline_cmd ]))
