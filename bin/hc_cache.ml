(* Artifact-cache maintenance:

     hc_cache stats                    entry counts and bytes on disk
     hc_cache verify [--fix]           decode every entry end to end
     hc_cache gc --max-mb 64           evict oldest-first to a size budget

   All subcommands take --cache-dir DIR (default: $HC_CACHE_DIR or
   _hc_cache). `verify` exits 1 when any entry fails its CRC / parse /
   byte-exact re-serialization check, so CI can gate on cache integrity
   the way it gates on the lint. *)

module Artifact_cache = Hc_core.Artifact_cache
module Registry = Hc_obs.Registry

open Cmdliner

let cache_dir_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "cache-dir" ] ~docv:"DIR"
        ~doc:
          "Cache root to operate on (default: $(b,HC_CACHE_DIR) or \
           $(b,_hc_cache)).")

let cache_of cache_dir =
  match Artifact_cache.of_cli cache_dir with
  | Some c -> c
  | None ->
    prerr_endline "hc_cache: cache disabled (--cache-dir none)";
    exit 3

let mb bytes = float_of_int bytes /. (1024. *. 1024.)

(* The machine-readable stats object: disk truth plus this process's
   registry-sourced operation counters (hits / misses / self-heals /
   bytes moved — zero in a bare `stats` call, populated when the same
   process has exercised the cache, as the tests do). *)
let stats_json c =
  let d = Artifact_cache.disk c in
  let samples = Registry.scrape (Registry.enable ()) in
  let kind k name = Registry.counter_value samples ~labels:[ ("kind", k) ] name in
  let both name = kind "trace" name + kind "run" name in
  Printf.sprintf
    "{\"schema\":2,\"root\":%S,\"disk\":{\"trace_entries\":%d,\
     \"trace_bytes\":%d,\"run_entries\":%d,\"run_bytes\":%d},\
     \"counters\":{\"hits\":%d,\"misses\":%d,\"self_heals\":%d,\
     \"stores\":%d,\"read_bytes\":%d,\"written_bytes\":%d,\
     \"gc_freed_entries\":%d,\"gc_freed_bytes\":%d}}"
    (Artifact_cache.root c) d.Artifact_cache.trace_entries
    d.Artifact_cache.trace_bytes d.Artifact_cache.run_entries
    d.Artifact_cache.run_bytes
    (both "hc_cache_hits_total")
    (both "hc_cache_misses_total")
    (both "hc_cache_self_heals_total")
    (both "hc_cache_stores_total")
    (Registry.counter_value samples "hc_cache_read_bytes_total")
    (Registry.counter_value samples "hc_cache_written_bytes_total")
    (both "hc_cache_gc_freed_entries_total")
    (both "hc_cache_gc_freed_bytes_total")

let stats_cmd =
  let run cache_dir json =
    let c = cache_of cache_dir in
    if json then print_endline (stats_json c)
    else begin
      let d = Artifact_cache.disk c in
      Printf.printf "cache root: %s\n" (Artifact_cache.root c);
      Printf.printf "traces: %5d entries, %8.2f MiB\n"
        d.Artifact_cache.trace_entries (mb d.Artifact_cache.trace_bytes);
      Printf.printf "runs:   %5d entries, %8.2f MiB\n"
        d.Artifact_cache.run_entries (mb d.Artifact_cache.run_bytes);
      Printf.printf "total:  %5d entries, %8.2f MiB\n"
        (d.Artifact_cache.trace_entries + d.Artifact_cache.run_entries)
        (mb (d.Artifact_cache.trace_bytes + d.Artifact_cache.run_bytes))
    end
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:
            "Emit one strict-JSON object (disk entry counts and bytes plus \
             the process's registry-sourced hit/miss/self-heal/byte \
             counters) instead of the human table.")
  in
  Cmd.v
    (Cmd.info "stats" ~doc:"print entry counts and on-disk size")
    Term.(const run $ cache_dir_arg $ json)

let verify_cmd =
  let run cache_dir fix =
    let c = cache_of cache_dir in
    let d = Artifact_cache.disk c in
    let total = d.Artifact_cache.trace_entries + d.Artifact_cache.run_entries in
    let bad = Artifact_cache.verify ~fix c in
    List.iter
      (fun (b : Artifact_cache.bad) ->
        Printf.printf "corrupt%s: %s (%s)\n"
          (if fix then " [deleted]" else "")
          b.Artifact_cache.path b.Artifact_cache.reason)
      bad;
    Printf.printf "verified %d entries under %s: %d corrupt\n" total
      (Artifact_cache.root c) (List.length bad);
    if bad <> [] then exit 1
  in
  let fix =
    Arg.(
      value & flag
      & info [ "fix" ]
          ~doc:
            "Delete every corrupt entry (the next cold run regenerates \
             it).")
  in
  Cmd.v
    (Cmd.info "verify"
       ~doc:
         "decode every cache entry end to end (CRC + structural decode \
          for traces, parse + byte-exact re-serialization for run \
          metrics); exit 1 if any entry is corrupt")
    Term.(const run $ cache_dir_arg $ fix)

let gc_cmd =
  let run cache_dir max_mb =
    let c = cache_of cache_dir in
    (* enable the registry first so the eviction counters record, then
       read the freed totals back from the same scrape stats --json uses *)
    let reg = Registry.enable () in
    let evicted =
      Artifact_cache.gc c ~max_bytes:(max_mb * 1024 * 1024)
    in
    List.iter (fun path -> Printf.printf "evicted: %s\n" path) evicted;
    let samples = Registry.scrape reg in
    let both name =
      Registry.counter_value samples ~labels:[ ("kind", "trace") ] name
      + Registry.counter_value samples ~labels:[ ("kind", "run") ] name
    in
    let d = Artifact_cache.disk c in
    Printf.printf "evicted %d entries (%.2f MiB freed); %s now holds %.2f MiB\n"
      (both "hc_cache_gc_freed_entries_total")
      (mb (both "hc_cache_gc_freed_bytes_total"))
      (Artifact_cache.root c)
      (mb (d.Artifact_cache.trace_bytes + d.Artifact_cache.run_bytes))
  in
  let max_mb =
    Arg.(
      value & opt int 256
      & info [ "max-mb" ] ~docv:"MIB"
          ~doc:"Size budget; oldest entries (mtime) are evicted first.")
  in
  Cmd.v
    (Cmd.info "gc" ~doc:"evict oldest entries until the cache fits a budget")
    Term.(const run $ cache_dir_arg $ max_mb)

let () =
  let doc = "inspect, verify and garbage-collect the artifact cache" in
  exit (Cmd.eval (Cmd.group (Cmd.info "hc_cache" ~doc) [ stats_cmd; verify_cmd; gc_cmd ]))
