(* Trace tooling: generate, save, load, inspect.

     hc_trace generate --benchmark gcc --length 10000 --out gcc.trace
     hc_trace generate --benchmark gcc --format binary --out gcc.hct
     hc_trace dump --file gcc.trace --head 20
     hc_trace stats --file gcc.trace
     hc_trace run --file gcc.trace --scheme +CR

   The text format (see Hc_trace.Trace_io) is the interchange point for
   running the evaluation on externally captured traces; --format binary
   writes the compact Hc_trace.Codec stream instead. Loading dispatches
   on the magic bytes, so every subcommand reads both. *)

module Profile = Hc_trace.Profile
module Trace = Hc_trace.Trace
module Trace_io = Hc_trace.Trace_io
module Analysis = Hc_trace.Analysis
module Config = Hc_sim.Config
module Pipeline = Hc_sim.Pipeline
module Metrics = Hc_sim.Metrics
module Sink = Hc_obs.Sink
module Chrome_trace = Hc_obs.Chrome_trace
module Export = Hc_core.Export
module Artifact_cache = Hc_core.Artifact_cache
module Obs_setup = Hc_core.Obs_setup

open Cmdliner

let benchmark_arg =
  Arg.(
    value & opt string "gcc"
    & info [ "b"; "benchmark" ] ~docv:"NAME" ~doc:"SPEC benchmark personality.")

let length_arg =
  Arg.(
    value & opt int 10_000
    & info [ "length" ] ~docv:"UOPS" ~doc:"Trace length in uops.")

let file_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "f"; "file" ] ~docv:"PATH" ~doc:"Trace file.")

let profile_of name =
  try Profile.find_spec_int name
  with Not_found ->
    Printf.eprintf "unknown benchmark %S\n" name;
    exit 1

let generate benchmark length out format cache_dir =
  let profile = profile_of benchmark in
  let trace =
    Artifact_cache.trace_or_generate (Artifact_cache.of_cli cache_dir) ~profile
      ~length
  in
  ( match format with
  | `Text -> Trace_io.save trace out
  | `Binary -> Trace_io.save_binary trace out );
  Printf.printf "wrote %s (%d uops)\n" out (Trace.length trace)

let dump file head =
  let trace = Trace_io.load file in
  let n = min head (Trace.length trace) in
  for i = 0 to n - 1 do
    Format.printf "%a@." Hc_isa.Uop.pp (Trace.get trace i)
  done

let stats file =
  let trace = Trace_io.load file in
  Format.printf "%a@." Trace.pp_summary trace;
  let mix = Analysis.operand_mix trace in
  Printf.printf "narrow-dependent ALU operands: %.1f%%\n"
    (Analysis.narrow_dependence_pct trace);
  Printf.printf "operand mix: 1-narrow %.1f%%, 2n-wide %.1f%%, 2n-narrow %.1f%%\n"
    mix.Analysis.one_narrow mix.Analysis.two_narrow_wide_result
    mix.Analysis.two_narrow_narrow_result;
  Printf.printf "carry-local: arith %.1f%%, loads %.1f%%\n"
    (Analysis.carry_not_propagated_pct trace ~arith:true)
    (Analysis.carry_not_propagated_pct trace ~arith:false);
  Printf.printf "mean producer-consumer distance: %.2f uops\n"
    (Analysis.mean_distance trace)

let run file scheme trace_out metrics_interval interval_out trace_buffer
    metrics_out obs span_log prom_out =
  let obs_t = Obs_setup.setup ~obs ?span_log ?prom_out () in
  let trace = Trace_io.load file in
  let cfg =
    if scheme = "ics05" then Config.ics05
    else
      match Config.find_scheme scheme with
      | s -> Config.with_scheme Config.default s
      | exception Not_found ->
        Printf.eprintf "unknown scheme %S\n" scheme;
        exit 1
  in
  (* same telemetry surface as hc_sim: externally captured traces get
     the full artifact set (Chrome trace, interval CSV, metrics JSON) *)
  let sink =
    if trace_out <> None || metrics_interval > 0 then
      Some
        (Sink.create ~ring_capacity:trace_buffer ~interval:metrics_interval
           ~tracing:(trace_out <> None) ())
    else None
  in
  let base =
    Pipeline.run ~cfg:Config.baseline ~decide:Hc_steering.Policy.decide
      ~scheme_name:"baseline" trace
  in
  let m =
    Pipeline.run ?sink ~cfg ~decide:Hc_steering.Policy.decide
      ~scheme_name:scheme trace
  in
  Format.printf "%a@." Metrics.pp m;
  Format.printf "speedup over baseline: %+.2f%%@."
    (Metrics.speedup_pct ~baseline:base m);
  ( match metrics_out with
  | Some path ->
    Format.printf "metrics: wrote %s@." (Export.write_metrics_json ~path m)
  | None -> () );
  ( match sink with
  | None -> ()
  | Some sink ->
    ( match trace_out with
    | Some path ->
      let written =
        Chrome_trace.write
          ~ring:(Sink.events_pushed sink, Sink.events_dropped sink)
          ~stage_spans:(Obs_setup.spans ()) ~path ~events:(Sink.events sink)
          ~samples:(Sink.samples sink) ()
      in
      Format.printf "trace: wrote %s (%s)@." written (Sink.summary sink)
    | None -> () );
    ( match Sink.dropped_warning sink with
    | Some w -> Printf.eprintf "%s\n%!" w
    | None -> () );
    if Sink.interval sink > 0 then begin
      let path =
        match interval_out, trace_out with
        | Some p, _ -> p
        | None, Some t -> Filename.remove_extension t ^ ".intervals.csv"
        | None, None -> "intervals.csv"
      in
      let samples = Sink.samples sink in
      let written = Export.write_intervals_csv ~path samples in
      Format.printf "intervals: wrote %s (%d samples of %d ticks)@." written
        (List.length samples) (Sink.interval sink)
    end );
  Obs_setup.finish obs_t

let generate_cmd =
  let out =
    Arg.(
      value & opt string "trace.txt"
      & info [ "o"; "out" ] ~docv:"PATH" ~doc:"Output path.")
  in
  let format =
    Arg.(
      value
      & opt (enum [ ("text", `Text); ("binary", `Binary) ]) `Text
      & info [ "format" ] ~docv:"FMT"
          ~doc:
            "Output encoding: $(b,text) (the line-oriented interchange \
             format) or $(b,binary) (the compact CRC-checked codec \
             stream; ~5-10x smaller, ~20x faster to load).")
  in
  let cache_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "cache-dir" ] ~docv:"DIR"
          ~doc:
            "Artifact-cache root consulted before generating (default: \
             $(b,HC_CACHE_DIR) or $(b,_hc_cache); $(b,none) disables).")
  in
  Cmd.v
    (Cmd.info "generate" ~doc:"generate a synthetic trace and save it")
    Term.(const generate $ benchmark_arg $ length_arg $ out $ format $ cache_dir)

let dump_cmd =
  let head =
    Arg.(
      value & opt int 20
      & info [ "head" ] ~docv:"N" ~doc:"How many uops to print.")
  in
  Cmd.v
    (Cmd.info "dump" ~doc:"print the first uops of a saved trace")
    Term.(const dump $ file_arg $ head)

let stats_cmd =
  Cmd.v
    (Cmd.info "stats" ~doc:"workload-characterization statistics of a trace")
    Term.(const stats $ file_arg)

let run_cmd =
  let scheme =
    Arg.(
      value & opt string "+IR"
      & info [ "s"; "scheme" ] ~docv:"SCHEME" ~doc:"Steering scheme.")
  in
  let trace_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-out" ] ~docv:"FILE"
          ~doc:
            "Record per-uop pipeline events and write a Chrome trace-event \
             JSON to $(docv).")
  in
  let metrics_interval =
    Arg.(
      value & opt int 0
      & info [ "metrics-interval" ] ~docv:"TICKS"
          ~doc:
            "Sample the interval metrics time series every $(docv) fast \
             ticks (0 disables).")
  in
  let interval_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "interval-out" ] ~docv:"FILE"
          ~doc:
            "Where to write the interval CSV (default: derived from \
             $(b,--trace-out), else $(b,intervals.csv)).")
  in
  let trace_buffer =
    Arg.(
      value & opt int 65_536
      & info [ "trace-buffer" ] ~docv:"EVENTS"
          ~doc:
            "Event ring capacity; older events are overwritten once full.")
  in
  let metrics_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics-out" ] ~docv:"FILE"
          ~doc:
            "Write the scheme run's full metrics as JSON (the format \
             $(b,hc_report) reads and diffs) to $(docv).")
  in
  let obs =
    Arg.(
      value & flag
      & info [ "obs" ]
          ~doc:"Enable the observability layer (registry + span collector).")
  in
  let span_log =
    Arg.(
      value
      & opt (some string) None
      & info [ "span-log" ] ~docv:"FILE"
          ~doc:"Write recorded stage spans as JSONL to $(docv).")
  in
  let prom_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "prom-out" ] ~docv:"FILE"
          ~doc:
            "Write the final registry scrape as Prometheus text exposition \
             to $(docv).")
  in
  Cmd.v
    (Cmd.info "run" ~doc:"simulate a saved trace under a scheme")
    Term.(
      const run $ file_arg $ scheme $ trace_out $ metrics_interval
      $ interval_out $ trace_buffer $ metrics_out $ obs $ span_log $ prom_out)

let cmd =
  Cmd.group
    (Cmd.info "hc_trace" ~doc:"trace generation, inspection and interchange")
    [ generate_cmd; dump_cmd; stats_cmd; run_cmd ]

let () = exit (Cmd.eval cmd)
