(* Trace and configuration verifier:

     hc_lint trace saved.trace [--benchmark gcc] [--bits 8]
     hc_lint seeds [--length 10000]
     hc_lint config
     hc_lint explain E111 [--readme-table]

   Every finding carries a stable code (E1xx trace structure incl. E108
   corrupt binary artifacts, E110/E111 analysis soundness, W201 mix
   drift, x2xx configuration incl. W203 bound monotonicity), a severity
   and a file:uop-id location; `hc_lint explain <CODE>` prints the full
   catalogue entry for any code. Exit status is 1 exactly when any
   Error-severity finding exists, so CI can gate on the lint the way it
   gates on the baseline diff; usage errors (unknown code, unreadable
   file) exit 3. *)

module Profile = Hc_trace.Profile
module Trace_io = Hc_trace.Trace_io
module Codec = Hc_trace.Codec
module Config = Hc_sim.Config
module Lint = Hc_analysis.Lint
module Artifact_cache = Hc_core.Artifact_cache

open Cmdliner

let die fmt = Printf.ksprintf (fun s -> prerr_endline s; exit 3) fmt

let print_diags diags = List.iter (fun d -> print_endline (Lint.to_string d)) diags

let summarize label diags =
  Printf.printf "%s: %d error%s, %d warning%s\n" label
    (Lint.count Lint.Error diags)
    (if Lint.count Lint.Error diags = 1 then "" else "s")
    (Lint.count Lint.Warning diags)
    (if Lint.count Lint.Warning diags = 1 then "" else "s")

let finish all =
  if List.exists Lint.has_errors all then exit 1
  else print_endline "lint clean"

let bits_arg =
  Arg.(
    value & opt int 8
    & info [ "bits" ] ~docv:"N"
        ~doc:
          "Narrowness threshold for the static-analysis soundness gate \
           (default 8, the paper's helper datapath width).")

(* ---- trace: lint saved trace files ---- *)

let trace_cmd =
  let run files benchmark bits =
    if files = [] then die "hc_lint trace: give at least one trace file";
    let expected_profile =
      Option.map
        (fun name ->
          try Profile.find_spec_int name
          with Not_found -> die "hc_lint trace: unknown benchmark %S" name)
        benchmark
    in
    let all =
      List.map
        (fun path ->
          let file = Filename.basename path in
          match Trace_io.load path with
          | tr ->
            let diags = Lint.check_trace ~file ?expected_profile ~bits tr in
            print_diags diags;
            summarize path diags;
            diags
          (* a corrupt binary artifact is a finding (E108), not a usage
             error: report it through the normal diagnostic stream so the
             gate exits 1 and keeps linting the remaining files *)
          | exception Codec.Corrupt reason ->
            let diags = [ Lint.corrupt_artifact ~file reason ] in
            print_diags diags;
            summarize path diags;
            diags
          | exception Failure msg -> die "hc_lint trace: %s" msg
          | exception Sys_error msg -> die "hc_lint trace: %s" msg)
        files
    in
    finish all
  in
  let files = Arg.(value & pos_all string [] & info [] ~docv:"TRACE") in
  let benchmark =
    Arg.(
      value
      & opt (some string) None
      & info [ "benchmark" ] ~docv:"NAME"
          ~doc:
            "SPEC profile the traces were generated from; adds the \
             realized-mix drift check (W201).")
  in
  let doc = "verify saved trace files (structure, semantics, soundness)" in
  Cmd.v (Cmd.info "trace" ~doc)
    Term.(const run $ files $ benchmark $ bits_arg)

(* ---- seeds: lint every generated seed workload ---- *)

let seeds_cmd =
  let run length bits cache_dir obs span_log prom_out =
    let obs_t = Hc_core.Obs_setup.setup ~obs ?span_log ?prom_out () in
    let cache = Artifact_cache.of_cli cache_dir in
    let all =
      List.map
        (fun (p : Profile.t) ->
          let tr = Artifact_cache.trace_or_generate cache ~profile:p ~length in
          let diags =
            Lint.check_trace ~file:p.Profile.name ~expected_profile:p ~bits tr
          in
          print_diags diags;
          summarize p.Profile.name diags;
          diags)
        Profile.spec_int
    in
    Hc_core.Obs_setup.finish obs_t;
    finish all
  in
  let length =
    Arg.(
      value & opt int 30_000
      & info [ "length" ] ~docv:"UOPS" ~doc:"Trace length per benchmark.")
  in
  let cache_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "cache-dir" ] ~docv:"DIR"
          ~doc:
            "Artifact-cache root for the seed traces (default: \
             $(b,HC_CACHE_DIR) or $(b,_hc_cache); $(b,none) disables).")
  in
  let obs =
    Arg.(
      value & flag
      & info [ "obs" ]
          ~doc:"Enable the observability layer (registry + span collector).")
  in
  let span_log =
    Arg.(
      value
      & opt (some string) None
      & info [ "span-log" ] ~docv:"FILE"
          ~doc:"Write recorded stage spans as JSONL to $(docv).")
  in
  let prom_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "prom-out" ] ~docv:"FILE"
          ~doc:
            "Write the final registry scrape as Prometheus text exposition \
             to $(docv).")
  in
  let doc =
    "generate and verify all 12 SPEC seed workloads (incl. mix drift and \
     the static-analysis soundness gate)"
  in
  Cmd.v (Cmd.info "seeds" ~doc)
    Term.(
      const run $ length $ bits_arg $ cache_dir $ obs $ span_log $ prom_out)

(* ---- config: lint the built-in machine configurations ---- *)

let config_cmd =
  let run () =
    let named =
      [ ("default", Config.default); ("baseline", Config.baseline);
        ("ics05", Config.ics05) ]
      @ List.map
          (fun (name, scheme) ->
            ("scheme:" ^ name, Config.with_scheme Config.default scheme))
          (("monolithic", Config.monolithic) :: Config.scheme_stack)
    in
    let all =
      List.map
        (fun (name, cfg) ->
          let diags = Lint.check_config ~file:name cfg in
          print_diags diags;
          summarize name diags;
          diags)
        named
    in
    finish all
  in
  let doc = "validate the built-in configurations and scheme stack" in
  Cmd.v (Cmd.info "config" ~doc) Term.(const run $ const ())

(* ---- explain: the diagnostic catalogue ---- *)

let print_info (i : Lint.info) =
  Printf.printf "%s (%s)\n  %s\n\n%s\n\nexample:\n  %s\n" i.Lint.i_code
    (Lint.severity_to_string i.Lint.i_severity)
    i.Lint.i_summary i.Lint.i_detail i.Lint.i_example

let explain_cmd =
  let run codes readme_table =
    if readme_table then begin
      if codes <> [] then
        die "hc_lint explain: --readme-table takes no code arguments";
      print_string (Lint.readme_table ())
    end
    else begin
      if codes = [] then
        die "hc_lint explain: give at least one diagnostic code (e.g. E111)";
      List.iteri
        (fun n code ->
          match Lint.explain code with
          | Some i ->
            if n > 0 then print_newline ();
            print_info i
          | None -> die "hc_lint explain: unknown diagnostic code %S" code)
        codes
    end
  in
  let codes = Arg.(value & pos_all string [] & info [] ~docv:"CODE") in
  let readme_table =
    Arg.(
      value & flag
      & info [ "readme-table" ]
          ~doc:
            "Print the catalogue as the README's markdown lint table \
             instead of explaining individual codes.")
  in
  let doc =
    "describe a diagnostic code (severity, meaning, example finding)"
  in
  Cmd.v (Cmd.info "explain" ~doc) Term.(const run $ codes $ readme_table)

let () =
  let doc = "verify helper-cluster traces and configurations" in
  let info = Cmd.info "hc_lint" ~doc in
  exit
    (Cmd.eval (Cmd.group info [ trace_cmd; seeds_cmd; config_cmd; explain_cmd ]))
