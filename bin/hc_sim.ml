(* Command-line front door to the simulator: run one workload under one
   steering scheme and print the metrics (optionally with the energy
   breakdown).

     hc_sim --benchmark gcc --scheme +CR
     hc_sim --benchmark mcf --scheme baseline --length 100000 --power *)

module Profile = Hc_trace.Profile
module Generator = Hc_trace.Generator
module Config = Hc_sim.Config
module Pipeline = Hc_sim.Pipeline
module Metrics = Hc_sim.Metrics
module Model = Hc_power.Model
module Domain_pool = Hc_core.Domain_pool

open Cmdliner

let scheme_names = List.map fst Hc_steering.Policy.stack @ [ "ics05" ]

let run benchmark scheme length power compare_baseline jobs =
  ( match jobs with
  | Some n when n > 0 -> Domain_pool.set_jobs n
  | Some _ | None -> () );
  let profile =
    try Profile.find_spec_int benchmark
    with Not_found ->
      Printf.eprintf "unknown benchmark %S; known: %s\n" benchmark
        (String.concat ", " Profile.spec_int_names);
      exit 1
  in
  let cfg =
    if scheme = "ics05" then Config.ics05
    else
      match Config.find_scheme scheme with
      | scheme_cfg -> Config.with_scheme Config.default scheme_cfg
      | exception Not_found ->
        Printf.eprintf "unknown scheme %S; known: %s\n" scheme
          (String.concat ", " scheme_names);
        exit 1
  in
  let trace = Generator.generate_sliced ~length profile in
  let with_base = compare_baseline && scheme <> "baseline" in
  (* the scheme run and its baseline comparator are independent pipeline
     states over the same read-only trace: run them on the pool *)
  let runs =
    let cfgs =
      (cfg, scheme)
      ::
      (if with_base then
         [ (Config.with_scheme cfg Config.monolithic, "baseline") ]
       else [])
    in
    Domain_pool.map_list (Domain_pool.get ())
      (fun (cfg, scheme_name) ->
        Pipeline.run ~cfg ~decide:Hc_steering.Policy.decide ~scheme_name trace)
      cfgs
  in
  let m = List.hd runs in
  Format.printf "%a@." Metrics.pp m;
  ( match runs with
  | [ _; base ] ->
    Format.printf "speedup over baseline: %.2f%%@."
      (Metrics.speedup_pct ~baseline:base m);
    Format.printf "energy-delay^2 improvement: %.2f%%@."
      (Model.ed2_improvement_pct ~narrow_bits:cfg.Config.narrow_bits
         ~baseline:base m)
  | _ -> () );
  if power then begin
    let report = Model.estimate ~narrow_bits:cfg.Config.narrow_bits m in
    Format.printf "@.energy: %.0f units@." report.Model.total;
    List.iter
      (fun (name, e) -> Format.printf "  %-20s %12.0f@." name e)
      report.Model.breakdown
  end

let cmd =
  let benchmark =
    Arg.(
      value & opt string "gcc"
      & info [ "b"; "benchmark" ] ~docv:"NAME" ~doc:"SPEC Int 2000 benchmark name.")
  in
  let scheme =
    Arg.(
      value & opt string "+IR"
      & info [ "s"; "scheme" ] ~docv:"SCHEME"
          ~doc:
            "Steering scheme (baseline, 8_8_8, +BR, +LR, +CR, +CP, +IR, \
             +IR(nodest), or ics05 for the section-4 comparator).")
  in
  let length =
    Arg.(
      value & opt int 30_000
      & info [ "length" ] ~docv:"UOPS" ~doc:"Trace length in uops.")
  in
  let power =
    Arg.(value & flag & info [ "power" ] ~doc:"Print the energy breakdown.")
  in
  let compare_baseline =
    Arg.(
      value & opt bool true
      & info [ "compare" ] ~docv:"BOOL" ~doc:"Also run the monolithic baseline.")
  in
  let jobs =
    Arg.(
      value
      & opt (some int) None
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:"Simulations to run concurrently (default: $(b,HC_JOBS)).")
  in
  let doc = "cycle-level helper-cluster simulator" in
  Cmd.v (Cmd.info "hc_sim" ~doc)
    Term.(const run $ benchmark $ scheme $ length $ power $ compare_baseline $ jobs)

let () = exit (Cmd.eval cmd)
