(* Command-line front door to the simulator: run one workload under one
   steering scheme and print the metrics (optionally with the energy
   breakdown and/or telemetry artifacts).

     hc_sim --benchmark gcc --scheme +CR
     hc_sim --benchmark mcf --scheme baseline --length 100000 --power
     hc_sim --benchmark gcc --scheme +IR --trace-out t.json \
            --metrics-interval 1000            # Perfetto trace + time series *)

module Profile = Hc_trace.Profile
module Config = Hc_sim.Config
module Pipeline = Hc_sim.Pipeline
module Metrics = Hc_sim.Metrics
module Accounting = Hc_sim.Accounting
module Registry = Hc_obs.Registry
module Model = Hc_power.Model
module Domain_pool = Hc_core.Domain_pool
module Export = Hc_core.Export
module Artifact_cache = Hc_core.Artifact_cache
module Sink = Hc_obs.Sink
module Sample = Hc_obs.Sample
module Chrome_trace = Hc_obs.Chrome_trace
module Obs_setup = Hc_core.Obs_setup

open Cmdliner

let scheme_names = List.map fst Hc_steering.Policy.stack @ [ "ics05" ]

(* the interval series must re-add to exactly the end-of-run metrics;
   checked here so the CLI surfaces a telemetry bug immediately *)
let totals_match (a : Sample.totals) (m : Metrics.t) =
  a.Sample.committed = m.Metrics.committed
  && a.Sample.steered_narrow = m.Metrics.steered_narrow
  && a.Sample.copies = m.Metrics.copies
  && a.Sample.split_uops = m.Metrics.split_uops
  && a.Sample.steered_888 = m.Metrics.steered_888
  && a.Sample.steered_br = m.Metrics.steered_br
  && a.Sample.steered_cr = m.Metrics.steered_cr
  && a.Sample.steered_ir = m.Metrics.steered_ir
  && a.Sample.steered_other = m.Metrics.steered_other
  && a.Sample.wide_default = m.Metrics.wide_default
  && a.Sample.wide_demoted = m.Metrics.wide_demoted
  && a.Sample.wpred_correct = m.Metrics.wpred_correct
  && a.Sample.wpred_fatal = m.Metrics.wpred_fatal
  && a.Sample.wpred_nonfatal = m.Metrics.wpred_nonfatal
  && a.Sample.prefetch_copies = m.Metrics.prefetch_copies
  && a.Sample.prefetch_useful = m.Metrics.prefetch_useful
  && a.Sample.nready_w2n = m.Metrics.nready_w2n
  && a.Sample.nready_n2w = m.Metrics.nready_n2w
  && a.Sample.issued_total = m.Metrics.issued_total

(* per-lane top-down table: slot counts and % shares for every category,
   plus the partition check (sum == width x rounds, exact) *)
let print_topdown (s : Accounting.totals) =
  Format.printf "@.-- top-down slot attribution --@.";
  Format.printf "%-16s" "category";
  for lane = 0 to Accounting.nlanes - 1 do
    Format.printf "  %18s" (Accounting.lane_name lane)
  done;
  Format.printf "@.";
  List.iter
    (fun cat ->
      Format.printf "%-16s" (Accounting.cat_name cat);
      for lane = 0 to Accounting.nlanes - 1 do
        Format.printf "  %10d %6.2f%%"
          (Accounting.get s ~lane cat)
          (Accounting.share_pct s ~lane cat)
      done;
      Format.printf "@.")
    Accounting.categories;
  Format.printf "%-16s" "total slots";
  for lane = 0 to Accounting.nlanes - 1 do
    Format.printf "  %10d (%dx%d)" (Accounting.lane_sum s lane)
      (Accounting.lane_width s lane) s.Accounting.rounds.(lane)
  done;
  Format.printf "@.partition invariant: %s@."
    (if Accounting.consistent s then "exact" else "VIOLATED")

(* NREADY per-interval histograms for the ambient registry (same series
   Runs records during campaigns), so --prom-out scrapes include them *)
let obs_nready samples =
  Registry.with_ambient (fun r ->
      let w2n =
        Registry.histogram r
          ~help:"Per-interval NREADY wide-to-narrow imbalance samples"
          "hc_nready_w2n_per_interval"
      and n2w =
        Registry.histogram r
          ~help:"Per-interval NREADY narrow-to-wide imbalance samples"
          "hc_nready_n2w_per_interval"
      in
      List.iter
        (fun (s : Sample.t) ->
          Registry.observe w2n s.Sample.d.Sample.nready_w2n;
          Registry.observe n2w s.Sample.d.Sample.nready_n2w)
        samples)

let run benchmark scheme length power compare_baseline jobs trace_out
    metrics_interval interval_out trace_buffer metrics_out cache_dir obs
    span_log prom_out topdown stall_out =
  let obs_t = Obs_setup.setup ~obs ?span_log ?prom_out () in
  ( match jobs with
  | Some n when n > 0 -> Domain_pool.set_jobs n
  | Some _ | None -> () );
  let profile =
    try Profile.find_spec_int benchmark
    with Not_found ->
      Printf.eprintf "unknown benchmark %S; known: %s\n" benchmark
        (String.concat ", " Profile.spec_int_names);
      exit 1
  in
  let cfg =
    if scheme = "ics05" then Config.ics05
    else
      match Config.find_scheme scheme with
      | scheme_cfg -> Config.with_scheme Config.default scheme_cfg
      | exception Not_found ->
        Printf.eprintf "unknown scheme %S; known: %s\n" scheme
          (String.concat ", " scheme_names);
        exit 1
  in
  let trace =
    Artifact_cache.trace_or_generate (Artifact_cache.of_cli cache_dir) ~profile
      ~length
  in
  let sink =
    if trace_out <> None || metrics_interval > 0 then
      Some
        (Sink.create ~ring_capacity:trace_buffer ~interval:metrics_interval
           ~tracing:(trace_out <> None) ())
    else None
  in
  let accounting =
    if topdown || stall_out <> None then
      Some
        (Accounting.create ~issue_width:cfg.Config.issue_width
           ~commit_width:cfg.Config.commit_width ())
    else None
  in
  let with_base = compare_baseline && scheme <> "baseline" in
  (* the scheme run and its baseline comparator are independent pipeline
     states over the same read-only trace: run them on the pool. Only the
     scheme run is observed — the baseline exists for the speedup line. *)
  let runs =
    let cfgs =
      (cfg, scheme, sink, accounting)
      ::
      (if with_base then
         [ (Config.with_scheme cfg Config.monolithic, "baseline", None, None) ]
       else [])
    in
    Domain_pool.map_list (Domain_pool.get ())
      (fun (cfg, scheme_name, sink, accounting) ->
        Pipeline.run ?sink ?accounting ~cfg ~decide:Hc_steering.Policy.decide
          ~scheme_name trace)
      cfgs
  in
  let m = List.hd runs in
  Format.printf "%a@." Metrics.pp m;
  assert (Metrics.attrib_consistent m);
  assert (Metrics.stall_consistent m);
  ( match metrics_out with
  | Some path ->
    Format.printf "metrics: wrote %s@."
      (Export.write_metrics_json ~path m)
  | None -> () );
  ( match runs with
  | [ _; base ] ->
    Format.printf "speedup over baseline: %.2f%%@."
      (Metrics.speedup_pct ~baseline:base m);
    Format.printf "energy-delay^2 improvement: %.2f%%@."
      (Model.ed2_improvement_pct ~narrow_bits:cfg.Config.narrow_bits
         ~baseline:base m)
  | _ -> () );
  ( match sink with
  | None -> ()
  | Some sink ->
    ( match trace_out with
    | Some path ->
      let written =
        Chrome_trace.write
          ~ring:(Sink.events_pushed sink, Sink.events_dropped sink)
          ~stage_spans:(Obs_setup.spans ()) ~path ~events:(Sink.events sink)
          ~samples:(Sink.samples sink) ()
      in
      Format.printf "trace: wrote %s (%s)@." written (Sink.summary sink)
    | None -> () );
    ( match Sink.dropped_warning sink with
    | Some w -> Printf.eprintf "%s\n%!" w
    | None -> () );
    if Sink.interval sink > 0 then begin
      let path =
        match interval_out, trace_out with
        | Some p, _ -> p
        | None, Some t -> Filename.remove_extension t ^ ".intervals.csv"
        | None, None -> "intervals.csv"
      in
      let samples = Sink.samples sink in
      let written = Export.write_intervals_csv ~path samples in
      Format.printf
        "intervals: wrote %s (%d samples of %d ticks; aggregate %s final \
         metrics)@."
        written (List.length samples) (Sink.interval sink)
        (if totals_match (Sample.aggregate samples) m then "==" else "<> (BUG)")
    end );
  ( match accounting with
  | None -> ()
  | Some a ->
    let ivals = Accounting.intervals a in
    (* every interval delta must itself satisfy the partition, not just
       the run total — a compensating error would hide in the sum *)
    List.iter
      (fun (iv : Accounting.interval) ->
        assert (Accounting.consistent iv.Accounting.iv_d))
      ivals;
    if topdown then print_topdown (Accounting.totals a);
    ( match stall_out with
    | Some path ->
      let written =
        Hc_core.Telemetry.write_file path
          (Accounting.csv_header
          :: List.map Accounting.interval_csv_row ivals)
      in
      Format.printf "stall intervals: wrote %s (%d intervals)@." written
        (List.length ivals)
    | None -> () ) );
  ( match sink with
  | Some sink ->
    (* same per-interval NREADY distributions Runs records in campaigns;
       with_ambient is a no-op unless --obs/--prom-out enabled it *)
    obs_nready (Sink.samples sink)
  | None -> () );
  if power then begin
    let report = Model.estimate ~narrow_bits:cfg.Config.narrow_bits m in
    Format.printf "@.energy: %.0f units@." report.Model.total;
    List.iter
      (fun (name, e) -> Format.printf "  %-20s %12.0f@." name e)
      report.Model.breakdown
  end;
  if obs then begin
    Printf.eprintf "-- stage spans --\n";
    List.iter (fun l -> Printf.eprintf "%s\n" l) (Obs_setup.stage_lines ());
    Printf.eprintf "%!"
  end;
  Obs_setup.finish obs_t

let cmd =
  let benchmark =
    Arg.(
      value & opt string "gcc"
      & info [ "b"; "benchmark" ] ~docv:"NAME" ~doc:"SPEC Int 2000 benchmark name.")
  in
  let scheme =
    Arg.(
      value & opt string "+IR"
      & info [ "s"; "scheme" ] ~docv:"SCHEME"
          ~doc:
            "Steering scheme (baseline, 8_8_8, +BR, +LR, +CR, +CP, +IR, \
             +IR(nodest), or ics05 for the section-4 comparator).")
  in
  let length =
    Arg.(
      value & opt int 30_000
      & info [ "length" ] ~docv:"UOPS" ~doc:"Trace length in uops.")
  in
  let power =
    Arg.(value & flag & info [ "power" ] ~doc:"Print the energy breakdown.")
  in
  let compare_baseline =
    Arg.(
      value & opt bool true
      & info [ "compare" ] ~docv:"BOOL" ~doc:"Also run the monolithic baseline.")
  in
  let jobs =
    Arg.(
      value
      & opt (some int) None
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:"Simulations to run concurrently (default: $(b,HC_JOBS)).")
  in
  let trace_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-out" ] ~docv:"FILE"
          ~doc:
            "Record per-uop pipeline events and write a Chrome trace-event \
             JSON (load in Perfetto or chrome://tracing) to $(docv).")
  in
  let metrics_interval =
    Arg.(
      value & opt int 0
      & info [ "metrics-interval" ] ~docv:"TICKS"
          ~doc:
            "Sample the interval metrics time series every $(docv) fast \
             ticks (0 disables). Column sums equal the final metrics.")
  in
  let interval_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "interval-out" ] ~docv:"FILE"
          ~doc:
            "Where to write the interval CSV (default: derived from \
             $(b,--trace-out), else $(b,intervals.csv)).")
  in
  let trace_buffer =
    Arg.(
      value & opt int 65_536
      & info [ "trace-buffer" ] ~docv:"EVENTS"
          ~doc:
            "Event ring capacity; older events are overwritten once full.")
  in
  let metrics_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics-out" ] ~docv:"FILE"
          ~doc:
            "Write the scheme run's full metrics as JSON (schema 2, the \
             format $(b,hc_report) reads and diffs) to $(docv).")
  in
  let cache_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "cache-dir" ] ~docv:"DIR"
          ~doc:
            "Artifact-cache root: the workload trace is reloaded from its \
             binary cache entry when present and published there after a \
             cold generation (default: $(b,HC_CACHE_DIR) or \
             $(b,_hc_cache); the value $(b,none) disables caching).")
  in
  let obs =
    Arg.(
      value & flag
      & info [ "obs" ]
          ~doc:
            "Enable the process-wide observability layer (metrics registry \
             + stage-span collector) and print the per-stage aggregate to \
             stderr on exit. Off, the untraced hot path is bit-identical.")
  in
  let span_log =
    Arg.(
      value
      & opt (some string) None
      & info [ "span-log" ] ~docv:"FILE"
          ~doc:
            "Write every recorded stage span as JSONL (one strict-JSON \
             object per line) to $(docv); implies observability on.")
  in
  let prom_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "prom-out" ] ~docv:"FILE"
          ~doc:
            "Write the final metrics-registry scrape as Prometheus text \
             exposition to $(docv); implies observability on.")
  in
  let topdown =
    Arg.(
      value & flag
      & info [ "topdown" ]
          ~doc:
            "Enable the cycle-accounting engine and print the top-down slot \
             attribution table (every issue and commit slot of every tick \
             classified into a disjoint stall taxonomy; per-lane sums are \
             exactly width x rounds). Adds a $(b,stall) object to \
             $(b,--metrics-out) JSON.")
  in
  let stall_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "stall-out" ] ~docv:"FILE"
          ~doc:
            "Write the per-interval stall-attribution time series as CSV to \
             $(docv) (implies $(b,--topdown) accounting; intervals follow \
             $(b,--metrics-interval), else one whole-run interval).")
  in
  let doc = "cycle-level helper-cluster simulator" in
  Cmd.v (Cmd.info "hc_sim" ~doc)
    Term.(
      const run $ benchmark $ scheme $ length $ power $ compare_baseline $ jobs
      $ trace_out $ metrics_interval $ interval_out $ trace_buffer
      $ metrics_out $ cache_dir $ obs $ span_log $ prom_out $ topdown
      $ stall_out)

let () = exit (Cmd.eval cmd)
