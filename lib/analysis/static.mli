(** Static width inference over a trace's def-use chains.

    A forward abstract-interpretation pass in the {!Absval} known-bits
    domain. It mirrors the trace generator's architected state exactly
    (writeback order: destination register, then flags) but never reads
    ground-truth values — the verdicts are what a compile-time pass could
    prove from opcodes, operands and immediates alone.

    The provable-narrow set is a sound lower bound on the dynamic 8_8_8
    predictor's opportunity (§3.2): steering only this set can never
    trigger a width-violation recovery. The [static_888] oracle scheme in
    [Hc_core.Runs] is built on exactly this guarantee. *)

type t = {
  bits : int;  (** narrowness threshold the pass proved against *)
  first_id : int;  (** id of the first uop (sliced traces start offset) *)
  provable : bool array;
      (** by trace position: provably satisfies the 8-8-8 shape of
          [Uop.is_888_bits] (all sources narrow; narrow result when one
          is observable) *)
  steerable : bool array;
      (** [provable] restricted to {!oracle_eligible} uops *)
  provable_count : int;
  steerable_count : int;
      (** the oracle steering bound: helper-cluster commits a provably
          sound policy can reach on this trace *)
}

val oracle_eligible : Hc_isa.Uop.t -> bool
(** The uops the 8_8_8 steering rule can reach at all: helper-capable
    opcodes (no mul/div/fp) minus branches (BR path) and stores (the MOB
    keeps them wide). *)

val analyze : ?bits:int -> Hc_trace.Trace.t -> t
(** Run the pass ([bits] defaults to 8, the paper's helper width). Cost
    is one linear scan with constant per-uop work. *)

val in_range : t -> Hc_isa.Uop.t -> bool
(** Does this uop's id fall inside the analyzed window? Sliced traces
    start at a nonzero [first_id], so ids below it (or past the end) have
    no verdict at all — they are neither proven narrow nor proven wide. *)

val verdict : t -> Hc_isa.Uop.t -> bool option
(** Three-valued verdict lookup: [Some true] provably narrow, [Some
    false] analyzed but not provable, [None] outside the analyzed
    window. *)

val steerable_verdict : t -> Hc_isa.Uop.t -> bool option

val provably_narrow : t -> Hc_isa.Uop.t -> bool
(** [verdict] collapsed for steering predicates: [false] both for
    analyzed-but-unprovable uops and for out-of-window ids (a sound
    default — never steer what was never proven). Use {!verdict} when
    the distinction matters. *)

val steerable_uop : t -> Hc_isa.Uop.t -> bool

type violation = {
  index : int;  (** trace position *)
  uop : Hc_isa.Uop.t;
}

val soundness_violations : t -> Hc_trace.Trace.t -> violation list
(** Every uop classified provably narrow whose ground-truth values fail
    [Uop.is_888_bits] — the one place ground truth is consulted. Any
    entry is a hard analysis bug; the linter (E110), the test suite and
    the smoke gate all require this list to be empty. *)

(** {1 The bidirectional fixpoint}

    The forward pass only proves a uop 8-8-8 safe when the high bits of
    its values are {e known}. Joining it with the backward live-bits
    pass ({!Livebits}) adds the dual fact: a source or result whose
    high bits are unknown — even genuinely wide in ground truth — is
    still safe to execute narrow when those high bits are {e dead},
    i.e. no downstream consumer ever reads them. Per uop:

    - every source is forward-narrow {e or} this uop's backward demand
      on it stays below the narrow cut, and
    - the result is forward-narrow {e or} its live mask stays below the
      narrow cut (or there is no observable result).

    Forward-provable uops satisfy both clauses through their
    forward-narrow arms, so [bidir_provable ⊇ forward provable] holds by
    construction — asserted on every trace, and surfaced as lint W203
    should a hand-built record ever break it. *)

type bidir = {
  base : t;  (** the forward pass, unchanged *)
  livebits : Livebits.t;
  bidir_provable : bool array;
  bidir_steerable : bool array;  (** restricted to {!oracle_eligible} *)
  bidir_provable_count : int;
  bidir_steerable_count : int;
      (** the tightened oracle steering bound; always [>=]
          [base.steerable_count] *)
}

val analyze_bidir : ?bits:int -> Hc_trace.Trace.t -> bidir
(** Forward pass (recording per-uop source/result narrowness and proven
    shift amounts), backward pass seeded with the forward shift
    constants, then the per-uop join above. Two linear scans. *)

val bidir_verdict : bidir -> Hc_isa.Uop.t -> bool option
(** Three-valued, like {!verdict}. *)

val bidir_provable_uop : bidir -> Hc_isa.Uop.t -> bool

val bidir_steerable_uop : bidir -> Hc_isa.Uop.t -> bool
(** The [static_bidir] oracle's steering predicate. *)
