(** Static width inference over a trace's def-use chains.

    A forward abstract-interpretation pass in the {!Absval} known-bits
    domain. It mirrors the trace generator's architected state exactly
    (writeback order: destination register, then flags) but never reads
    ground-truth values — the verdicts are what a compile-time pass could
    prove from opcodes, operands and immediates alone.

    The provable-narrow set is a sound lower bound on the dynamic 8_8_8
    predictor's opportunity (§3.2): steering only this set can never
    trigger a width-violation recovery. The [static_888] oracle scheme in
    [Hc_core.Runs] is built on exactly this guarantee. *)

type t = {
  bits : int;  (** narrowness threshold the pass proved against *)
  first_id : int;  (** id of the first uop (sliced traces start offset) *)
  provable : bool array;
      (** by trace position: provably satisfies the 8-8-8 shape of
          [Uop.is_888_bits] (all sources narrow; narrow result when one
          is observable) *)
  steerable : bool array;
      (** [provable] restricted to {!oracle_eligible} uops *)
  provable_count : int;
  steerable_count : int;
      (** the oracle steering bound: helper-cluster commits a provably
          sound policy can reach on this trace *)
}

val oracle_eligible : Hc_isa.Uop.t -> bool
(** The uops the 8_8_8 steering rule can reach at all: helper-capable
    opcodes (no mul/div/fp) minus branches (BR path) and stores (the MOB
    keeps them wide). *)

val analyze : ?bits:int -> Hc_trace.Trace.t -> t
(** Run the pass ([bits] defaults to 8, the paper's helper width). Cost
    is one linear scan with constant per-uop work. *)

val provably_narrow : t -> Hc_isa.Uop.t -> bool
(** Verdict lookup by uop id; [false] for uops outside the analyzed
    trace. *)

val steerable_uop : t -> Hc_isa.Uop.t -> bool

type violation = {
  index : int;  (** trace position *)
  uop : Hc_isa.Uop.t;
}

val soundness_violations : t -> Hc_trace.Trace.t -> violation list
(** Every uop classified provably narrow whose ground-truth values fail
    [Uop.is_888_bits] — the one place ground truth is consulted. Any
    entry is a hard analysis bug; the linter (E110), the test suite and
    the smoke gate all require this list to be empty. *)
