(** Trace and configuration verifier behind [bin/hc_lint].

    Each finding carries a stable code, a severity and a [file:uop-id]
    location. Codes:

    - [E101] uop ids not dense
    - [E102] immediate operand disagrees with its recorded source value
    - [E103] def-use mismatch (register read differs from its last
      in-window writer's result)
    - [E104] flag producer/consumer pairing broken (structure or value)
    - [E105] [ul1_miss] without [dl0_miss]
    - [E106] pure-ALU result inconsistent with [Semantics.eval]
    - [E107] memory address is not base + offset
    - [E108] binary trace artifact corrupt (truncated, CRC mismatch, or
      structurally invalid — see {!Hc_trace.Codec})
    - [E110] static-analysis soundness violation (provably-narrow uop
      with wide ground truth)
    - [W201] realized instruction mix drifts from the generating profile
    - [E201] configuration fails [Config.validate]
    - [W202] steering scheme is inert (rules on, helper cluster off)

    Reads of registers with no in-window writer are accepted: sliced
    traces begin mid-program. Findings of one code are capped at a few
    reports plus an [Info] overflow summary. *)

type severity = Error | Warning | Info

type diagnostic = {
  code : string;
  severity : severity;
  loc : string;
  message : string;
}

val severity_to_string : severity -> string

val to_string : diagnostic -> string
(** ["error[E105] gcc.trace:uop-42: ..."] *)

val pp : Format.formatter -> diagnostic -> unit

val has_errors : diagnostic list -> bool
(** [true] when any finding has [Error] severity — the lint gate's exit
    criterion. *)

val count : severity -> diagnostic list -> int

val check_trace :
  ?file:string ->
  ?expected_profile:Hc_trace.Profile.t ->
  ?bits:int ->
  Hc_trace.Trace.t ->
  diagnostic list
(** All trace checks, in trace order. [expected_profile] additionally
    compares the realized instruction mix against the profile that
    allegedly generated the trace (W201); leave it out for traces of
    unknown provenance. [bits] is the narrowness threshold for the E110
    soundness gate (default 8). *)

val check_config : ?file:string -> Hc_sim.Config.t -> diagnostic list

val corrupt_artifact : file:string -> string -> diagnostic
(** The E108 finding for a binary trace file that failed to decode
    ({!Hc_trace.Codec.Corrupt}): truncated stream, CRC mismatch, or a
    structurally invalid payload. Built by the caller because decode
    failures surface as exceptions before any [Trace.t] exists to
    check. *)
