(** Trace and configuration verifier behind [bin/hc_lint].

    Each finding carries a stable code, a severity and a [file:uop-id]
    location. Codes:

    - [E101] uop ids not dense
    - [E102] immediate operand disagrees with its recorded source value
    - [E103] def-use mismatch (register read differs from its last
      in-window writer's result)
    - [E104] flag producer/consumer pairing broken (structure or value)
    - [E105] [ul1_miss] without [dl0_miss]
    - [E106] pure-ALU result inconsistent with [Semantics.eval]
    - [E107] memory address is not base + offset
    - [E108] binary trace artifact corrupt (truncated, CRC mismatch, or
      structurally invalid — see {!Hc_trace.Codec})
    - [E110] static-analysis soundness violation (provably-narrow uop
      with wide ground truth)
    - [E111] live-bits soundness violation (a provably-dead bit whose
      mutation is observable downstream)
    - [W201] realized instruction mix drifts from the generating profile
    - [E201] configuration fails [Config.validate]
    - [W202] steering scheme is inert (rules on, helper cluster off)
    - [W203] bidirectional provable bound below the forward bound
      (monotonicity breach)

    The user-facing strings for every code — severity, one-line summary,
    detail paragraph, example — live in the {!catalogue}; [hc_lint
    explain] and the README's lint table are both generated from it.

    Reads of registers with no in-window writer are accepted: sliced
    traces begin mid-program. Findings of one code are capped at a few
    reports plus an [Info] overflow summary. *)

type severity = Error | Warning | Info

type diagnostic = {
  code : string;
  severity : severity;
  loc : string;
  message : string;
}

val severity_to_string : severity -> string

val to_string : diagnostic -> string
(** ["error[E105] gcc.trace:uop-42: ..."] *)

val pp : Format.formatter -> diagnostic -> unit

val has_errors : diagnostic list -> bool
(** [true] when any finding has [Error] severity — the lint gate's exit
    criterion. *)

val count : severity -> diagnostic list -> int

type info = {
  i_code : string;
  i_severity : severity;
  i_summary : string;  (** one line; the README table cell *)
  i_detail : string;  (** one paragraph for [hc_lint explain] *)
  i_example : string;  (** a representative diagnostic line *)
}

val catalogue : info list
(** Every diagnostic code the linter can emit, in code order — the
    single source for [hc_lint explain] and the README lint table. *)

val explain : string -> info option
(** Catalogue lookup; case-insensitive, whitespace-trimmed. *)

val readme_table : unit -> string
(** The README's markdown lint table, generated from {!catalogue}. *)

val check_analysis :
  ?file:string -> Static.bidir -> Hc_trace.Trace.t -> diagnostic list
(** The analysis soundness gates alone — E110 (forward), E111
    (live-bits) and W203 (monotonicity) — over a caller-supplied
    bidirectional record. [check_trace] runs these on a freshly computed
    record; this entry point exists so regression tests can seed
    deliberately corrupt verdicts and pin that the gates trip. *)

val check_trace :
  ?file:string ->
  ?expected_profile:Hc_trace.Profile.t ->
  ?bits:int ->
  Hc_trace.Trace.t ->
  diagnostic list
(** All trace checks, in trace order. [expected_profile] additionally
    compares the realized instruction mix against the profile that
    allegedly generated the trace (W201); leave it out for traces of
    unknown provenance. [bits] is the narrowness threshold for the
    E110/E111/W203 soundness gates (default 8), which run over a fresh
    {!Static.analyze_bidir} record. *)

val check_config : ?file:string -> Hc_sim.Config.t -> diagnostic list

val corrupt_artifact : file:string -> string -> diagnostic
(** The E108 finding for a binary trace file that failed to decode
    ({!Hc_trace.Codec.Corrupt}): truncated stream, CRC mismatch, or a
    structurally invalid payload. Built by the caller because decode
    failures surface as exceptions before any [Trace.t] exists to
    check. *)
