(* Known-bits abstract domain over 32-bit values.

   An abstract value is a pair of masks: [zeros] are the bit positions
   proven 0, [ones] the positions proven 1; unlisted positions are
   unknown. The concretization is every 32-bit value agreeing with both
   masks, so [top] (both masks empty) is "any value" and a value with all
   32 positions known is a singleton.

   Every transfer function below is sound with respect to the concrete
   evaluator [Hc_isa.Semantics.eval]: if the inputs contain the concrete
   operands, the output contains the concrete result. That containment is
   the induction step behind the static pass's provable-width claims, and
   it is differentially fuzzed against [Semantics.eval] in test_fuzz.ml. *)

type t = {
  zeros : int;  (* mask of bits proven 0 *)
  ones : int;  (* mask of bits proven 1; disjoint from [zeros] *)
}

let mask32 = 0xFFFF_FFFF

let top = { zeros = 0; ones = 0 }

let const v =
  let v = v land mask32 in
  { zeros = lnot v land mask32; ones = v }

let known a = a.zeros lor a.ones

let to_const a = if known a = mask32 then Some a.ones else None

let contains a v =
  let v = v land mask32 in
  v land a.zeros = 0 && v land a.ones = a.ones

let join a b = { zeros = a.zeros land b.zeros; ones = a.ones land b.ones }

let equal (a : t) b = a = b

(* Mirrors Detector.narrow: a value is narrow under [bits] when every bit
   at position >= bits is 0 (small non-negative) or every one is 1
   (small negative, two's complement). Provable narrowness needs one of
   the two sign patterns to be fully known. *)
let is_narrow ~bits a =
  if bits >= 32 then true
  else
    let hi = mask32 land lnot ((1 lsl bits) - 1) in
    a.zeros land hi = hi || a.ones land hi = hi

(* ----- bitwise transfers ----- *)

let logand a b = { ones = a.ones land b.ones; zeros = a.zeros lor b.zeros }

let logor a b = { ones = a.ones lor b.ones; zeros = a.zeros land b.zeros }

let logxor a b =
  { ones = (a.ones land b.zeros) lor (a.zeros land b.ones);
    zeros = (a.zeros land b.zeros) lor (a.ones land b.ones) }

let lognot a = { zeros = a.ones; ones = a.zeros }

(* ----- arithmetic transfers ----- *)

type trit = K0 | K1 | Unk

let bit_at m i =
  if (m.ones lsr i) land 1 = 1 then K1
  else if (m.zeros lsr i) land 1 = 1 then K0
  else Unk

let trit_options = function K0 -> [ 0 ] | K1 -> [ 1 ] | Unk -> [ 0; 1 ]

(* Ripple-carry addition with an abstract carry: at each bit, enumerate
   the concrete possibilities of the two operand bits and the incoming
   carry (at most eight) and keep a sum bit or outgoing carry only when
   all possibilities agree. Exact for fully known inputs. *)
let adc a b carry_in =
  let zeros = ref 0 and ones = ref 0 in
  let carry = ref carry_in in
  for i = 0 to 31 do
    let sum0 = ref false and sum1 = ref false in
    let car0 = ref false and car1 = ref false in
    List.iter
      (fun x ->
        List.iter
          (fun y ->
            List.iter
              (fun c ->
                let s = x + y + c in
                if s land 1 = 0 then sum0 := true else sum1 := true;
                if s >= 2 then car1 := true else car0 := true)
              (trit_options !carry))
          (trit_options (bit_at b i)))
      (trit_options (bit_at a i));
    if not !sum0 then ones := !ones lor (1 lsl i)
    else if not !sum1 then zeros := !zeros lor (1 lsl i);
    carry :=
      (match (!car0, !car1) with
      | true, false -> K0
      | false, true -> K1
      | _ -> Unk)
  done;
  { zeros = !zeros; ones = !ones }

let add a b = adc a b K0

(* a - b = a + ~b + 1 in two's complement *)
let sub a b = adc a (lognot b) K1

(* The concrete semantics shift by [amount land 31], so the amount only
   needs its low five bits known. *)
let shift_amount b = if known b land 31 = 31 then Some (b.ones land 31) else None

let shl a b =
  match shift_amount b with
  | None -> top
  | Some k ->
    { ones = (a.ones lsl k) land mask32;
      zeros = ((a.zeros lsl k) land mask32) lor ((1 lsl k) - 1) }

let shr a b =
  match shift_amount b with
  | None -> top
  | Some k ->
    let hi = if k = 0 then 0 else mask32 land lnot (mask32 lsr k) in
    { ones = a.ones lsr k; zeros = (a.zeros lsr k) lor hi }

(* Contiguous known-zero run from bit 31 down: bounds the magnitude. *)
let leading_known_zeros a =
  let rec go i n =
    if i < 0 || (a.zeros lsr i) land 1 = 0 then n else go (i - 1) (n + 1)
  in
  go 31 0

let trailing_known_zeros a =
  let rec go i n =
    if i > 31 || (a.zeros lsr i) land 1 = 0 then n else go (i + 1) (n + 1)
  in
  go 0 0

(* Magnitude bound: a < 2^wa and b < 2^wb give a*b < 2^(wa+wb), so the
   bits above wa+wb are known 0 when that fits in 32; the product also
   keeps the factors' combined trailing zeros (wraparound only discards
   high bits). The concrete multiply wraps identically through mask32. *)
let mul a b =
  match (to_const a, to_const b) with
  | Some x, Some y -> const (x * y)
  | _ ->
    let width m = 32 - leading_known_zeros m in
    let tz = min 32 (trailing_known_zeros a + trailing_known_zeros b) in
    let low = if tz >= 32 then mask32 else (1 lsl tz) - 1 in
    let wsum = width a + width b in
    let high = if wsum >= 32 then 0 else mask32 land lnot ((1 lsl wsum) - 1) in
    { ones = 0; zeros = (low lor high) land mask32 }

(* Unsigned quotient never exceeds the dividend (and division by zero is
   defined as 0), so the dividend's known leading zeros survive. *)
let div a b =
  match (to_const a, to_const b) with
  | Some x, Some y -> const (if y = 0 then 0 else x / y)
  | _ ->
    let lz = leading_known_zeros a in
    { ones = 0; zeros = (if lz = 0 then 0 else mask32 land lnot (mask32 lsr lz)) }

(* ----- per-opcode dispatch, mirroring Semantics.eval ----- *)

(* Same operand discipline as the concrete evaluator: binary transfers
   read only the first two abstract operands (a third operand is implicit
   IA-32 machine state the arithmetic ignores), unary only the first, and
   opcodes whose result the evaluator cannot compute (memory data, control
   flow, floating point) produce no abstract result either. *)
let transfer2 op ~nsrcs ~(a0 : t) ~(a1 : t) : t option =
  let binary f = if nsrcs >= 2 then Some (f a0 a1) else None in
  let unary f = if nsrcs >= 1 then Some (f a0) else None in
  match (op : Hc_isa.Opcode.t) with
  | Add | Lea -> binary add
  | Sub | Cmp -> binary sub
  | And -> binary logand
  | Or -> binary logor
  | Xor -> binary logxor
  | Shl -> binary shl
  | Shr -> binary shr
  | Mov | Copy -> unary (fun a -> a)
  | Mul -> binary mul
  | Div -> binary div
  | Load | Store | Branch_cond | Branch_uncond | Fp_add | Fp_mul | Fp_div | Nop ->
    None

let transfer op (vals : t list) : t option =
  let at i = match List.nth_opt vals i with Some a -> a | None -> top in
  transfer2 op ~nsrcs:(List.length vals) ~a0:(at 0) ~a1:(at 1)

let pp ppf a =
  (* render as a 32-character bit pattern: 0 / 1 / ? per position *)
  let buf = Buffer.create 32 in
  for i = 31 downto 0 do
    Buffer.add_char buf
      (match bit_at a i with K0 -> '0' | K1 -> '1' | Unk -> '?')
  done;
  Format.pp_print_string ppf (Buffer.contents buf)
