module Opcode = Hc_isa.Opcode
module Reg = Hc_isa.Reg
module Uop = Hc_isa.Uop
module Uop_soa = Hc_isa.Uop_soa
module Trace = Hc_trace.Trace

(* Forward abstract interpretation over a trace's def-use chains.

   The register file starts at [Absval.top] (sliced traces begin
   mid-program, so nothing is known about live-in values) and each uop is
   interpreted in order: source operands read the abstract register state
   (immediates are singletons), the result comes from the per-opcode
   transfer function, and writeback mirrors the generator exactly —
   destination register first, then the flags for flag-writing opcodes,
   both receiving the architected result. Ground-truth fields
   ([Uop.result], [Uop.src_vals]) are never consulted, so the verdicts
   are what a compile-time pass could prove from the instruction stream
   alone.

   Soundness invariant: the abstract register state always contains the
   concrete register state, hence a uop classified provably narrow has
   narrow ground truth. [soundness_violations] checks exactly that (and
   only there is ground truth read); any hit is a hard analysis bug. *)

type t = {
  bits : int;
  first_id : int;
  provable : bool array;  (* by trace position: provably 8-8-8 *)
  steerable : bool array;  (* provable and reachable by the oracle scheme *)
  provable_count : int;
  steerable_count : int;
}

(* The set the static_888 oracle may steer: exactly the uops the dynamic
   8_8_8 rule can reach in Policy.decide — helper-capable opcodes minus
   branches (they go through the BR path) and stores (the MOB keeps them
   wide). *)
let oracle_eligible_op (op : Opcode.t) =
  (match Opcode.exec_class op with
  | Opcode.Int_alu | Opcode.Mem | Opcode.Ctrl -> true
  | Opcode.Int_mul | Opcode.Fp -> false)
  && (not (Opcode.is_branch op))
  && op <> Opcode.Store

let oracle_eligible (u : Uop.t) = oracle_eligible_op u.Uop.op

(* Analysis-pass instrumentation behind the ambient obs opt-in: the same
   one-atomic-load guard every other instrumentation point uses, so the
   passes cost nothing extra when observability is off. *)
let obs_pass ~pass ~uops ~provable ~elapsed_ns =
  Hc_obs.Registry.with_ambient (fun r ->
      Hc_obs.Registry.add
        (Hc_obs.Registry.counter r
           ~help:"Uops examined by the static width-analysis passes"
           ~labels:[ ("pass", pass) ]
           "hc_static_uops_analyzed_total")
        uops;
      Hc_obs.Registry.add
        (Hc_obs.Registry.counter r
           ~help:"Uops proven 8-8-8 safe, by analysis pass"
           ~labels:[ ("pass", pass) ]
           "hc_static_provable_total")
        provable;
      Hc_obs.Registry.observe
        (Hc_obs.Registry.histogram r
           ~help:"Wall time of one static-analysis pass (ns)"
           ~labels:[ ("pass", pass) ]
           "hc_static_analysis_ns")
        elapsed_ns)

let timed f =
  let t0 = Unix.gettimeofday () in
  let x = f () in
  (x, int_of_float ((Unix.gettimeofday () -. t0) *. 1e9))

(* One forward walk over the packed columns. Besides the
   provable/steerable verdicts, optionally record per-uop facts the
   bidirectional pass consumes: narrowness of every abstract source
   (flattened, aligned with the SoA operand columns), narrowness of the
   abstract result, and forward-proven constant shift amounts. *)
type forward_facts = {
  src_narrow : bool array;  (* by flattened operand index (Uop_soa.src_base) *)
  result_narrow : bool array;
  shift_amount : int option array;
}

let analyze_fwd ?(bits = 8) ~facts (tr : Trace.t) =
  let soa = Trace.soa tr in
  let n = Uop_soa.length soa in
  let regs = Array.make Reg.count Absval.top in
  let eflags = Reg.to_index Reg.Eflags in
  let provable = Array.make n false in
  let steerable = Array.make n false in
  let provable_count = ref 0 and steerable_count = ref 0 in
  let ff =
    if facts then
      Some
        { src_narrow = Array.make (Uop_soa.src_base soa n) false;
          result_narrow = Array.make n false;
          shift_amount = Array.make n None }
    else None
  in
  (* abstract value of the flattened operand at absolute index [j]:
     immediates are singletons, registers read the abstract state *)
  let abs_at j =
    let r = Uop_soa.src_reg soa j in
    if r < 0 then Absval.const (Uop_soa.src_val soa j) else regs.(r)
  in
  for i = 0 to n - 1 do
    let op = Uop_soa.op soa i in
    let lo = Uop_soa.src_base soa i and ns = Uop_soa.nsrcs soa i in
    let a0 = if ns >= 1 then abs_at lo else Absval.top in
    let a1 = if ns >= 2 then abs_at (lo + 1) else Absval.top in
    let result =
      match Absval.transfer2 op ~nsrcs:ns ~a0 ~a1 with
      | Some a -> a
      | None -> Absval.top
    in
    (* the 8-8-8 shape of Uop.is_888_bits, proven instead of observed:
       every source narrow, and a narrow result whenever the uop produces
       anything observable *)
    let srcs_narrow = ref true in
    for j = lo to lo + ns - 1 do
      let narrow = Absval.is_narrow ~bits (abs_at j) in
      if not narrow then srcs_narrow := false;
      match ff with Some f -> f.src_narrow.(j) <- narrow | None -> ()
    done;
    let d = Uop_soa.dst_index soa i in
    let wf = Opcode.writes_flags op in
    let p =
      !srcs_narrow
      && ((d < 0 && not wf) || Absval.is_narrow ~bits result)
    in
    provable.(i) <- p;
    if p then incr provable_count;
    if p && oracle_eligible_op op then begin
      steerable.(i) <- true;
      incr steerable_count
    end;
    ( match ff with
    | Some f ->
      f.result_narrow.(i) <- Absval.is_narrow ~bits result;
      ( match op with
      | (Opcode.Shl | Opcode.Shr) when ns >= 2 ->
        f.shift_amount.(i) <- Absval.shift_amount a1
      | _ -> () )
    | None -> () );
    if d >= 0 then regs.(d) <- result;
    if wf then regs.(eflags) <- result
  done;
  ( { bits;
      first_id = (if n = 0 then 0 else Uop_soa.id soa 0);
      provable; steerable;
      provable_count = !provable_count;
      steerable_count = !steerable_count },
    ff )

let analyze ?(bits = 8) (tr : Trace.t) =
  let (t, _), ns = timed (fun () -> analyze_fwd ~bits ~facts:false tr) in
  obs_pass ~pass:"forward" ~uops:(Trace.length tr) ~provable:t.provable_count
    ~elapsed_ns:ns;
  t

let index_of t (u : Uop.t) =
  let i = u.Uop.id - t.first_id in
  if i >= 0 && i < Array.length t.provable then Some i else None

let in_range t u = Option.is_some (index_of t u)

(* Verdict lookups distinguish "analyzed and wide" from "outside the
   analyzed window" (sliced traces start at a nonzero first_id, and a
   foreign uop id must not read as a wide verdict). *)
let verdict t u = Option.map (fun i -> t.provable.(i)) (index_of t u)

let steerable_verdict t u = Option.map (fun i -> t.steerable.(i)) (index_of t u)

let provably_narrow t u =
  match verdict t u with Some p -> p | None -> false

let steerable_uop t u =
  match steerable_verdict t u with Some s -> s | None -> false

type violation = {
  index : int;
  uop : Uop.t;
}

(* The in-tree soundness gate: the only place ground truth is read. The
   check walks the columns; a record is materialized only for the
   violations themselves (the bug path). *)
let soundness_violations t (tr : Trace.t) =
  let soa = Trace.soa tr in
  let acc = ref [] in
  for i = Uop_soa.length soa - 1 downto 0 do
    if t.provable.(i) && not (Uop_soa.is_888_bits ~bits:t.bits soa i) then
      acc := { index = i; uop = Trace.get tr i } :: !acc
  done;
  !acc

(* ----- the bidirectional fixpoint ----- *)

type bidir = {
  base : t;  (* the forward pass, unchanged *)
  livebits : Livebits.t;
  bidir_provable : bool array;
  bidir_steerable : bool array;
  bidir_provable_count : int;
  bidir_steerable_count : int;
}

(* Why joining the passes is sound: steering a uop to the narrow cluster
   makes it read the sign-extended low [bits] of each source and write
   back the sign-extended low [bits] of its result. Per source, that read
   is exact when the forward pass proved the source narrow (both sign
   patterns reproduce under sign extension); otherwise only bits >= bits
   can be misread, which is harmless exactly when this uop's backward
   demand on that source has no high bits — by [Livebits.backward_transfer]'s
   contract, source changes outside the demand mask cannot reach a live
   result bit. Per result, the writeback is exact when the forward result
   is narrow; otherwise only high result bits can be corrupted, harmless
   exactly when the live mask has no high bits (dead bits are
   unobservable downstream — the E111 obligation). So:

     bidir_safe  =  (forall src: fwd_narrow(src) \/ demand(src) ∧ hi = 0)
                 /\ (no observable result \/ fwd_narrow(result) \/ live ∧ hi = 0)

   Forward-provable uops satisfy every disjunct via their fwd_narrow arm,
   so bidir_provable ⊇ forward_provable holds by construction; the assert
   below keeps that monotonicity invariant executable on every trace. *)
let analyze_bidir ?(bits = 8) (tr : Trace.t) =
  let (base, ff), fwd_ns = timed (fun () -> analyze_fwd ~bits ~facts:true tr) in
  obs_pass ~pass:"forward" ~uops:(Trace.length tr)
    ~provable:base.provable_count ~elapsed_ns:fwd_ns;
  let ff = Option.get ff in
  let bd, bwd_ns =
    timed (fun () ->
        let lb =
          Livebits.analyze ~bits
            ~known_amount:(fun i -> ff.shift_amount.(i))
            tr
        in
        let soa = Trace.soa tr in
        let n = Uop_soa.length soa in
        let hi = Livebits.hi_mask ~bits in
        let bidir_provable = Array.make n false in
        let bidir_steerable = Array.make n false in
        let pc = ref 0 and sc = ref 0 in
        let scratch = ref (Array.make 16 0) in
        for i = 0 to n - 1 do
          let op = Uop_soa.op soa i in
          let lo = Uop_soa.src_base soa i and ns = Uop_soa.nsrcs soa i in
          let live = Livebits.live_mask lb ~index:i in
          if ns > Array.length !scratch then scratch := Array.make ns 0;
          Livebits.backward_transfer_into op ~nsrcs:ns
            ~amount:ff.shift_amount.(i) ~live !scratch;
          let demands = !scratch in
          let srcs_safe = ref true in
          for j = 0 to ns - 1 do
            if not (ff.src_narrow.(lo + j) || demands.(j) land hi = 0) then
              srcs_safe := false
          done;
          let result_safe =
            (Uop_soa.dst_index soa i < 0 && not (Opcode.writes_flags op))
            || ff.result_narrow.(i)
            || live land hi = 0
          in
          let safe = !srcs_safe && result_safe in
          (* monotonicity invariant: the join can only widen the provable
             set. [safe] subsumes the forward verdict structurally; assert
             it anyway so a broken transfer surfaces on every trace. *)
          assert ((not base.provable.(i)) || safe);
          bidir_provable.(i) <- safe;
          if safe then incr pc;
          if safe && oracle_eligible_op op then begin
            bidir_steerable.(i) <- true;
            incr sc
          end
        done;
        { base; livebits = lb; bidir_provable; bidir_steerable;
          bidir_provable_count = !pc; bidir_steerable_count = !sc })
  in
  obs_pass ~pass:"bidir" ~uops:(Trace.length tr)
    ~provable:bd.bidir_provable_count ~elapsed_ns:bwd_ns;
  bd

let bidir_verdict b u =
  Option.map (fun i -> b.bidir_provable.(i)) (index_of b.base u)

let bidir_provable_uop b u =
  match bidir_verdict b u with Some p -> p | None -> false

let bidir_steerable_uop b u =
  match index_of b.base u with
  | Some i -> b.bidir_steerable.(i)
  | None -> false
