module Opcode = Hc_isa.Opcode
module Reg = Hc_isa.Reg
module Uop = Hc_isa.Uop
module Trace = Hc_trace.Trace

(* Forward abstract interpretation over a trace's def-use chains.

   The register file starts at [Absval.top] (sliced traces begin
   mid-program, so nothing is known about live-in values) and each uop is
   interpreted in order: source operands read the abstract register state
   (immediates are singletons), the result comes from the per-opcode
   transfer function, and writeback mirrors the generator exactly —
   destination register first, then the flags for flag-writing opcodes,
   both receiving the architected result. Ground-truth fields
   ([Uop.result], [Uop.src_vals]) are never consulted, so the verdicts
   are what a compile-time pass could prove from the instruction stream
   alone.

   Soundness invariant: the abstract register state always contains the
   concrete register state, hence a uop classified provably narrow has
   narrow ground truth. [soundness_violations] checks exactly that (and
   only there is ground truth read); any hit is a hard analysis bug. *)

type t = {
  bits : int;
  first_id : int;
  provable : bool array;  (* by trace position: provably 8-8-8 *)
  steerable : bool array;  (* provable and reachable by the oracle scheme *)
  provable_count : int;
  steerable_count : int;
}

(* The set the static_888 oracle may steer: exactly the uops the dynamic
   8_8_8 rule can reach in Policy.decide — helper-capable opcodes minus
   branches (they go through the BR path) and stores (the MOB keeps them
   wide). *)
let oracle_eligible (u : Uop.t) =
  (match Opcode.exec_class u.Uop.op with
  | Opcode.Int_alu | Opcode.Mem | Opcode.Ctrl -> true
  | Opcode.Int_mul | Opcode.Fp -> false)
  && (not (Opcode.is_branch u.Uop.op))
  && u.Uop.op <> Opcode.Store

let analyze ?(bits = 8) (tr : Trace.t) =
  let n = Trace.length tr in
  let regs = Array.make Reg.count Absval.top in
  let provable = Array.make n false in
  let steerable = Array.make n false in
  let provable_count = ref 0 and steerable_count = ref 0 in
  for i = 0 to n - 1 do
    let u = Trace.get tr i in
    let abs_srcs =
      List.map
        (function
          | Uop.Imm v -> Absval.const v
          | Uop.Reg r -> regs.(Reg.to_index r))
        u.Uop.srcs
    in
    let result =
      match Absval.transfer u.Uop.op abs_srcs with
      | Some a -> a
      | None -> Absval.top
    in
    (* the 8-8-8 shape of Uop.is_888_bits, proven instead of observed:
       every source narrow, and a narrow result whenever the uop produces
       anything observable *)
    let p =
      List.for_all (Absval.is_narrow ~bits) abs_srcs
      && ((not (Uop.has_dest u) && not (Uop.writes_flags u))
         || Absval.is_narrow ~bits result)
    in
    provable.(i) <- p;
    if p then incr provable_count;
    if p && oracle_eligible u then begin
      steerable.(i) <- true;
      incr steerable_count
    end;
    ( match u.Uop.dst with
    | Some d -> regs.(Reg.to_index d) <- result
    | None -> () );
    if Uop.writes_flags u then regs.(Reg.to_index Reg.Eflags) <- result
  done;
  { bits;
    first_id = (if n = 0 then 0 else (Trace.get tr 0).Uop.id);
    provable; steerable;
    provable_count = !provable_count;
    steerable_count = !steerable_count }

let index_of t (u : Uop.t) =
  let i = u.Uop.id - t.first_id in
  if i >= 0 && i < Array.length t.provable then Some i else None

let provably_narrow t u =
  match index_of t u with Some i -> t.provable.(i) | None -> false

let steerable_uop t u =
  match index_of t u with Some i -> t.steerable.(i) | None -> false

type violation = {
  index : int;
  uop : Uop.t;
}

(* The in-tree soundness gate: the only place ground truth is read. *)
let soundness_violations t (tr : Trace.t) =
  let acc = ref [] in
  for i = Trace.length tr - 1 downto 0 do
    let u = Trace.get tr i in
    if t.provable.(i) && not (Uop.is_888_bits ~bits:t.bits u) then
      acc := { index = i; uop = u } :: !acc
  done;
  !acc
