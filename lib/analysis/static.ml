module Opcode = Hc_isa.Opcode
module Reg = Hc_isa.Reg
module Uop = Hc_isa.Uop
module Trace = Hc_trace.Trace

(* Forward abstract interpretation over a trace's def-use chains.

   The register file starts at [Absval.top] (sliced traces begin
   mid-program, so nothing is known about live-in values) and each uop is
   interpreted in order: source operands read the abstract register state
   (immediates are singletons), the result comes from the per-opcode
   transfer function, and writeback mirrors the generator exactly —
   destination register first, then the flags for flag-writing opcodes,
   both receiving the architected result. Ground-truth fields
   ([Uop.result], [Uop.src_vals]) are never consulted, so the verdicts
   are what a compile-time pass could prove from the instruction stream
   alone.

   Soundness invariant: the abstract register state always contains the
   concrete register state, hence a uop classified provably narrow has
   narrow ground truth. [soundness_violations] checks exactly that (and
   only there is ground truth read); any hit is a hard analysis bug. *)

type t = {
  bits : int;
  first_id : int;
  provable : bool array;  (* by trace position: provably 8-8-8 *)
  steerable : bool array;  (* provable and reachable by the oracle scheme *)
  provable_count : int;
  steerable_count : int;
}

(* The set the static_888 oracle may steer: exactly the uops the dynamic
   8_8_8 rule can reach in Policy.decide — helper-capable opcodes minus
   branches (they go through the BR path) and stores (the MOB keeps them
   wide). *)
let oracle_eligible (u : Uop.t) =
  (match Opcode.exec_class u.Uop.op with
  | Opcode.Int_alu | Opcode.Mem | Opcode.Ctrl -> true
  | Opcode.Int_mul | Opcode.Fp -> false)
  && (not (Opcode.is_branch u.Uop.op))
  && u.Uop.op <> Opcode.Store

(* Analysis-pass instrumentation behind the ambient obs opt-in: the same
   one-atomic-load guard every other instrumentation point uses, so the
   passes cost nothing extra when observability is off. *)
let obs_pass ~pass ~uops ~provable ~elapsed_ns =
  Hc_obs.Registry.with_ambient (fun r ->
      Hc_obs.Registry.add
        (Hc_obs.Registry.counter r
           ~help:"Uops examined by the static width-analysis passes"
           ~labels:[ ("pass", pass) ]
           "hc_static_uops_analyzed_total")
        uops;
      Hc_obs.Registry.add
        (Hc_obs.Registry.counter r
           ~help:"Uops proven 8-8-8 safe, by analysis pass"
           ~labels:[ ("pass", pass) ]
           "hc_static_provable_total")
        provable;
      Hc_obs.Registry.observe
        (Hc_obs.Registry.histogram r
           ~help:"Wall time of one static-analysis pass (ns)"
           ~labels:[ ("pass", pass) ]
           "hc_static_analysis_ns")
        elapsed_ns)

let timed f =
  let t0 = Unix.gettimeofday () in
  let x = f () in
  (x, int_of_float ((Unix.gettimeofday () -. t0) *. 1e9))

(* One forward walk. Besides the provable/steerable verdicts, optionally
   record per-uop facts the bidirectional pass consumes: narrowness of
   every abstract source, narrowness of the abstract result, and
   forward-proven constant shift amounts. *)
type forward_facts = {
  src_narrow : bool list array;
  result_narrow : bool array;
  shift_amount : int option array;
}

let analyze_fwd ?(bits = 8) ~facts (tr : Trace.t) =
  let n = Trace.length tr in
  let regs = Array.make Reg.count Absval.top in
  let provable = Array.make n false in
  let steerable = Array.make n false in
  let provable_count = ref 0 and steerable_count = ref 0 in
  let ff =
    if facts then
      Some
        { src_narrow = Array.make n [];
          result_narrow = Array.make n false;
          shift_amount = Array.make n None }
    else None
  in
  for i = 0 to n - 1 do
    let u = Trace.get tr i in
    let abs_srcs =
      List.map
        (function
          | Uop.Imm v -> Absval.const v
          | Uop.Reg r -> regs.(Reg.to_index r))
        u.Uop.srcs
    in
    let result =
      match Absval.transfer u.Uop.op abs_srcs with
      | Some a -> a
      | None -> Absval.top
    in
    (* the 8-8-8 shape of Uop.is_888_bits, proven instead of observed:
       every source narrow, and a narrow result whenever the uop produces
       anything observable *)
    let p =
      List.for_all (Absval.is_narrow ~bits) abs_srcs
      && ((not (Uop.has_dest u) && not (Uop.writes_flags u))
         || Absval.is_narrow ~bits result)
    in
    provable.(i) <- p;
    if p then incr provable_count;
    if p && oracle_eligible u then begin
      steerable.(i) <- true;
      incr steerable_count
    end;
    ( match ff with
    | Some f ->
      f.src_narrow.(i) <- List.map (Absval.is_narrow ~bits) abs_srcs;
      f.result_narrow.(i) <- Absval.is_narrow ~bits result;
      ( match (u.Uop.op, abs_srcs) with
      | (Opcode.Shl | Opcode.Shr), _ :: amt :: _ ->
        f.shift_amount.(i) <- Absval.shift_amount amt
      | _ -> () )
    | None -> () );
    ( match u.Uop.dst with
    | Some d -> regs.(Reg.to_index d) <- result
    | None -> () );
    if Uop.writes_flags u then regs.(Reg.to_index Reg.Eflags) <- result
  done;
  ( { bits;
      first_id = (if n = 0 then 0 else (Trace.get tr 0).Uop.id);
      provable; steerable;
      provable_count = !provable_count;
      steerable_count = !steerable_count },
    ff )

let analyze ?(bits = 8) (tr : Trace.t) =
  let (t, _), ns = timed (fun () -> analyze_fwd ~bits ~facts:false tr) in
  obs_pass ~pass:"forward" ~uops:(Trace.length tr) ~provable:t.provable_count
    ~elapsed_ns:ns;
  t

let index_of t (u : Uop.t) =
  let i = u.Uop.id - t.first_id in
  if i >= 0 && i < Array.length t.provable then Some i else None

let in_range t u = Option.is_some (index_of t u)

(* Verdict lookups distinguish "analyzed and wide" from "outside the
   analyzed window" (sliced traces start at a nonzero first_id, and a
   foreign uop id must not read as a wide verdict). *)
let verdict t u = Option.map (fun i -> t.provable.(i)) (index_of t u)

let steerable_verdict t u = Option.map (fun i -> t.steerable.(i)) (index_of t u)

let provably_narrow t u =
  match verdict t u with Some p -> p | None -> false

let steerable_uop t u =
  match steerable_verdict t u with Some s -> s | None -> false

type violation = {
  index : int;
  uop : Uop.t;
}

(* The in-tree soundness gate: the only place ground truth is read. *)
let soundness_violations t (tr : Trace.t) =
  let acc = ref [] in
  for i = Trace.length tr - 1 downto 0 do
    let u = Trace.get tr i in
    if t.provable.(i) && not (Uop.is_888_bits ~bits:t.bits u) then
      acc := { index = i; uop = u } :: !acc
  done;
  !acc

(* ----- the bidirectional fixpoint ----- *)

type bidir = {
  base : t;  (* the forward pass, unchanged *)
  livebits : Livebits.t;
  bidir_provable : bool array;
  bidir_steerable : bool array;
  bidir_provable_count : int;
  bidir_steerable_count : int;
}

(* Why joining the passes is sound: steering a uop to the narrow cluster
   makes it read the sign-extended low [bits] of each source and write
   back the sign-extended low [bits] of its result. Per source, that read
   is exact when the forward pass proved the source narrow (both sign
   patterns reproduce under sign extension); otherwise only bits >= bits
   can be misread, which is harmless exactly when this uop's backward
   demand on that source has no high bits — by [Livebits.backward_transfer]'s
   contract, source changes outside the demand mask cannot reach a live
   result bit. Per result, the writeback is exact when the forward result
   is narrow; otherwise only high result bits can be corrupted, harmless
   exactly when the live mask has no high bits (dead bits are
   unobservable downstream — the E111 obligation). So:

     bidir_safe  =  (forall src: fwd_narrow(src) \/ demand(src) ∧ hi = 0)
                 /\ (no observable result \/ fwd_narrow(result) \/ live ∧ hi = 0)

   Forward-provable uops satisfy every disjunct via their fwd_narrow arm,
   so bidir_provable ⊇ forward_provable holds by construction; the assert
   below keeps that monotonicity invariant executable on every trace. *)
let analyze_bidir ?(bits = 8) (tr : Trace.t) =
  let (base, ff), fwd_ns = timed (fun () -> analyze_fwd ~bits ~facts:true tr) in
  obs_pass ~pass:"forward" ~uops:(Trace.length tr)
    ~provable:base.provable_count ~elapsed_ns:fwd_ns;
  let ff = Option.get ff in
  let bd, bwd_ns =
    timed (fun () ->
        let lb =
          Livebits.analyze ~bits
            ~known_amount:(fun i -> ff.shift_amount.(i))
            tr
        in
        let n = Trace.length tr in
        let hi = Livebits.hi_mask ~bits in
        let bidir_provable = Array.make n false in
        let bidir_steerable = Array.make n false in
        let pc = ref 0 and sc = ref 0 in
        for i = 0 to n - 1 do
          let u = Trace.get tr i in
          let live = Livebits.live_mask lb ~index:i in
          let demands =
            Livebits.backward_transfer u.Uop.op
              ~nsrcs:(List.length u.Uop.srcs)
              ~amount:ff.shift_amount.(i) ~live
          in
          let srcs_safe =
            List.for_all2
              (fun fwd_narrow d -> fwd_narrow || d land hi = 0)
              ff.src_narrow.(i) demands
          in
          let result_safe =
            ((not (Uop.has_dest u)) && not (Uop.writes_flags u))
            || ff.result_narrow.(i)
            || live land hi = 0
          in
          let safe = srcs_safe && result_safe in
          (* monotonicity invariant: the join can only widen the provable
             set. [safe] subsumes the forward verdict structurally; assert
             it anyway so a broken transfer surfaces on every trace. *)
          assert ((not base.provable.(i)) || safe);
          bidir_provable.(i) <- safe;
          if safe then incr pc;
          if safe && oracle_eligible u then begin
            bidir_steerable.(i) <- true;
            incr sc
          end
        done;
        { base; livebits = lb; bidir_provable; bidir_steerable;
          bidir_provable_count = !pc; bidir_steerable_count = !sc })
  in
  obs_pass ~pass:"bidir" ~uops:(Trace.length tr)
    ~provable:bd.bidir_provable_count ~elapsed_ns:bwd_ns;
  bd

let bidir_verdict b u =
  Option.map (fun i -> b.bidir_provable.(i)) (index_of b.base u)

let bidir_provable_uop b u =
  match bidir_verdict b u with Some p -> p | None -> false

let bidir_steerable_uop b u =
  match index_of b.base u with
  | Some i -> b.bidir_steerable.(i)
  | None -> false
