module Opcode = Hc_isa.Opcode
module Reg = Hc_isa.Reg
module Uop = Hc_isa.Uop
module Value = Hc_isa.Value
module Semantics = Hc_isa.Semantics
module Trace = Hc_trace.Trace
module Profile = Hc_trace.Profile
module Analysis = Hc_trace.Analysis
module Config = Hc_sim.Config

(* Diagnostics-driven verification of trace and configuration artifacts.

   Every check has a stable code so scripts and CI can match on it:

     E101  uop ids not dense (id must increase by exactly 1)
     E102  immediate operand disagrees with its recorded source value
     E103  def-use mismatch: a register read observes a value different
           from the one its last in-window writer produced
     E104  flag pairing: a conditional branch's sources are not exactly
           the flags register, or the flags value read disagrees with the
           last flags writer's result
     E105  cache monotonicity: ul1_miss set without dl0_miss (a uop
           cannot miss the UL1 on a DL0 hit)
     E106  pure-ALU result inconsistent with Semantics.eval over the
           recorded source values
     E107  memory uop whose address is not base + offset of its first
           two source values (or with fewer than two sources)
     E108  binary trace artifact is unreadable: truncated stream, CRC
           mismatch, or structurally invalid codec payload
     E110  static-analysis soundness violation: a provably-narrow uop
           with wide ground truth (hard analysis bug)
     W201  realized instruction mix drifts from the generating profile
     E201  configuration fails Config.validate
     W202  scheme enables steering rules with the helper cluster off

   Reads of registers never written inside the window are accepted
   silently: sliced traces legitimately begin mid-program, so live-in
   values are unknowable, exactly as in the static pass. *)

type severity = Error | Warning | Info

type diagnostic = {
  code : string;
  severity : severity;
  loc : string;  (** file:uop-<id> (or file:- for whole-artifact checks) *)
  message : string;
}

let severity_to_string = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

let to_string d =
  Printf.sprintf "%s[%s] %s: %s" (severity_to_string d.severity) d.code d.loc
    d.message

let pp ppf d = Format.pp_print_string ppf (to_string d)

let has_errors ds = List.exists (fun d -> d.severity = Error) ds

let count severity ds = List.length (List.filter (fun d -> d.severity = severity) ds)

(* Per-code emission cap: a single systematic corruption (every load's
   ul1 bit flipped, say) should not bury the report in thousands of
   copies of one finding. The overflow is summarized per code. *)
let report_cap = 5

type emitter = {
  file : string;
  mutable diags : diagnostic list;  (* newest first *)
  counts : (string, int) Hashtbl.t;
}

let emitter file = { file; diags = []; counts = Hashtbl.create 8 }

let emit e ~code ~severity ~loc fmt =
  Printf.ksprintf
    (fun message ->
      let n = (try Hashtbl.find e.counts code with Not_found -> 0) + 1 in
      Hashtbl.replace e.counts code n;
      if n <= report_cap then
        e.diags <- { code; severity; loc; message } :: e.diags)
    fmt

let uop_loc e (u : Uop.t) = Printf.sprintf "%s:uop-%d" e.file u.Uop.id

let finish e =
  let overflow =
    Hashtbl.fold
      (fun code n acc ->
        if n > report_cap then
          { code;
            severity = Info;
            loc = e.file ^ ":-";
            message =
              Printf.sprintf "%d further %s findings suppressed (showing %d)"
                (n - report_cap) code report_cap }
          :: acc
        else acc)
      e.counts []
  in
  List.rev e.diags @ List.sort compare overflow

(* ----- trace checks ----- *)

let check_sources e (u : Uop.t) (vals : Value.t option array) =
  List.iter2
    (fun src v ->
      match src with
      | Uop.Imm imm ->
        if imm <> v then
          emit e ~code:"E102" ~severity:Error ~loc:(uop_loc e u)
            "immediate operand %s but recorded source value %s"
            (Value.to_hex imm) (Value.to_hex v)
      | Uop.Reg r -> (
        match vals.(Reg.to_index r) with
        | Some w when w <> v ->
          let code, what =
            if r = Reg.Eflags then ("E104", "flags")
            else ("E103", Reg.to_string r)
          in
          emit e ~code ~severity:Error ~loc:(uop_loc e u)
            "%s read %s but its last writer produced %s" what (Value.to_hex v)
            (Value.to_hex w)
        | Some _ | None -> () ))
    u.Uop.srcs u.Uop.src_vals

let check_uop e (u : Uop.t) (vals : Value.t option array) =
  (* structural flag pairing: a conditional branch consumes exactly the
     flags register, nothing else *)
  if u.Uop.op = Opcode.Branch_cond && u.Uop.srcs <> [ Uop.Reg Reg.Eflags ] then
    emit e ~code:"E104" ~severity:Error ~loc:(uop_loc e u)
      "conditional branch must read exactly the flags register";
  check_sources e u vals;
  if u.Uop.ul1_miss && not u.Uop.dl0_miss then
    emit e ~code:"E105" ~severity:Error ~loc:(uop_loc e u)
      "ul1_miss set without dl0_miss (miss monotonicity violated)";
  ( match Semantics.eval u.Uop.op u.Uop.src_vals with
  | Some r when r <> u.Uop.result ->
    emit e ~code:"E106" ~severity:Error ~loc:(uop_loc e u)
      "%s result %s but evaluating the sources gives %s"
      (Opcode.to_string u.Uop.op) (Value.to_hex u.Uop.result) (Value.to_hex r)
  | Some _ | None -> () );
  if Opcode.is_memory u.Uop.op then begin
    match u.Uop.src_vals with
    | base :: offset :: _ ->
      let agu = Value.add base offset in
      if u.Uop.mem_addr <> agu then
        emit e ~code:"E107" ~severity:Error ~loc:(uop_loc e u)
          "memory address %s but base + offset is %s"
          (Value.to_hex u.Uop.mem_addr) (Value.to_hex agu)
    | [] | [ _ ] ->
      emit e ~code:"E107" ~severity:Error ~loc:(uop_loc e u)
        "memory uop with fewer than two sources (base + offset expected)"
  end;
  (* same writeback the generator and the static pass use *)
  ( match u.Uop.dst with
  | Some d -> vals.(Reg.to_index d) <- Some u.Uop.result
  | None -> () );
  if Uop.writes_flags u then vals.(Reg.to_index Reg.Eflags) <- Some u.Uop.result

(* Expected realized mix, accounting for the cmp a conditional branch
   site emits alongside the branch itself: every class fraction is scaled
   by 1/(1 + f_cond) and the extra cmps land in the alu class. *)
let drift_tolerance = 0.08

let check_mix e (p : Profile.t) tr =
  let scale = 1. +. p.Profile.f_cond_branch in
  let alu_rest =
    1.
    -. (p.Profile.f_load +. p.Profile.f_store +. p.Profile.f_cond_branch
       +. p.Profile.f_uncond_branch +. p.Profile.f_mul +. p.Profile.f_div
       +. p.Profile.f_fp)
  in
  let expected =
    [ ("load", p.Profile.f_load /. scale);
      ("store", p.Profile.f_store /. scale);
      ("branch", (p.Profile.f_cond_branch +. p.Profile.f_uncond_branch) /. scale);
      ("mul_div", (p.Profile.f_mul +. p.Profile.f_div) /. scale);
      ("fp", p.Profile.f_fp /. scale);
      ("alu", (alu_rest +. p.Profile.f_cond_branch) /. scale) ]
  in
  let realized = Analysis.mix_digest tr in
  List.iter
    (fun (cls, want) ->
      match List.assoc_opt cls realized with
      | Some got when Float.abs (got -. want) > drift_tolerance ->
        emit e ~code:"W201" ~severity:Warning ~loc:(e.file ^ ":-")
          "%s mix %.3f drifts from profile %S expectation %.3f (tolerance %.2f)"
          cls got p.Profile.name want drift_tolerance
      | Some _ | None -> ())
    expected

let check_trace ?(file = "<trace>") ?expected_profile ?(bits = 8) tr =
  let e = emitter file in
  let vals = Array.make Reg.count None in
  let prev_id = ref None in
  Trace.iter
    (fun u ->
      ( match !prev_id with
      | Some p when u.Uop.id <> p + 1 ->
        emit e ~code:"E101" ~severity:Error ~loc:(uop_loc e u)
          "uop id %d follows %d (ids must be dense)" u.Uop.id p
      | Some _ | None -> () );
      prev_id := Some u.Uop.id;
      check_uop e u vals)
    tr;
  let st = Static.analyze ~bits tr in
  List.iter
    (fun (v : Static.violation) ->
      emit e ~code:"E110" ~severity:Error ~loc:(uop_loc e v.Static.uop)
        "provably-narrow uop has wide ground truth (analysis soundness bug)")
    (Static.soundness_violations st tr);
  ( match expected_profile with
  | Some p -> check_mix e p tr
  | None -> () );
  finish e

(* A binary trace that fails to decode never reaches [check_trace] — the
   codec raises before a [Trace.t] exists — so the E108 finding is
   constructed directly from the decoder's complaint. *)
let corrupt_artifact ~file reason =
  {
    code = "E108";
    severity = Error;
    loc = file ^ ":-";
    message = Printf.sprintf "corrupt binary trace artifact: %s" reason;
  }

(* ----- configuration checks ----- *)

let scheme_inert (s : Config.scheme) =
  (not s.Config.helper)
  && (s.Config.s888 || s.Config.br || s.Config.lr || s.Config.cr
     || s.Config.cp || s.Config.ir <> Config.Ir_off)

let check_config ?(file = "<config>") (cfg : Config.t) =
  let e = emitter file in
  ( match Config.validate cfg with
  | Ok () -> ()
  | Error msg ->
    emit e ~code:"E201" ~severity:Error ~loc:(file ^ ":-") "%s" msg );
  if scheme_inert cfg.Config.scheme then
    emit e ~code:"W202" ~severity:Warning ~loc:(file ^ ":-")
      "scheme enables steering rules but the helper cluster is off (every \
       uop will steer wide)";
  finish e
