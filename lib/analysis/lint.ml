module Opcode = Hc_isa.Opcode
module Reg = Hc_isa.Reg
module Uop = Hc_isa.Uop
module Value = Hc_isa.Value
module Semantics = Hc_isa.Semantics
module Trace = Hc_trace.Trace
module Profile = Hc_trace.Profile
module Analysis = Hc_trace.Analysis
module Config = Hc_sim.Config

(* Diagnostics-driven verification of trace and configuration artifacts.

   Every check has a stable code so scripts and CI can match on it:

     E101  uop ids not dense (id must increase by exactly 1)
     E102  immediate operand disagrees with its recorded source value
     E103  def-use mismatch: a register read observes a value different
           from the one its last in-window writer produced
     E104  flag pairing: a conditional branch's sources are not exactly
           the flags register, or the flags value read disagrees with the
           last flags writer's result
     E105  cache monotonicity: ul1_miss set without dl0_miss (a uop
           cannot miss the UL1 on a DL0 hit)
     E106  pure-ALU result inconsistent with Semantics.eval over the
           recorded source values
     E107  memory uop whose address is not base + offset of its first
           two source values (or with fewer than two sources)
     E108  binary trace artifact is unreadable: truncated stream, CRC
           mismatch, or structurally invalid codec payload
     E110  static-analysis soundness violation: a provably-narrow uop
           with wide ground truth (hard analysis bug)
     E111  live-bits soundness violation: a provably-dead bit whose
           mutation is observable downstream (hard analysis bug)
     W201  realized instruction mix drifts from the generating profile
     E201  configuration fails Config.validate
     W202  scheme enables steering rules with the helper cluster off
     W203  bidirectional provable bound below the forward bound
           (monotonicity breach)

   The user-facing catalogue — severity, summary, detail, example — for
   every code lives in [catalogue] below; `hc_lint explain` and the
   README's lint table are both generated from it, so there is exactly
   one place these strings exist.

   Reads of registers never written inside the window are accepted
   silently: sliced traces legitimately begin mid-program, so live-in
   values are unknowable, exactly as in the static pass. *)

type severity = Error | Warning | Info

type diagnostic = {
  code : string;
  severity : severity;
  loc : string;  (** file:uop-<id> (or file:- for whole-artifact checks) *)
  message : string;
}

let severity_to_string = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

let to_string d =
  Printf.sprintf "%s[%s] %s: %s" (severity_to_string d.severity) d.code d.loc
    d.message

let pp ppf d = Format.pp_print_string ppf (to_string d)

let has_errors ds = List.exists (fun d -> d.severity = Error) ds

let count severity ds = List.length (List.filter (fun d -> d.severity = severity) ds)

(* ----- diagnostic catalogue ----- *)

type info = {
  i_code : string;
  i_severity : severity;
  i_summary : string;  (* one line; the README table cell *)
  i_detail : string;  (* one paragraph for `hc_lint explain` *)
  i_example : string;  (* a representative diagnostic line *)
}

let catalogue =
  [
    { i_code = "E101"; i_severity = Error;
      i_summary = "uop ids not dense (must increase by exactly 1)";
      i_detail =
        "Dynamic uop ids number the trace positions: every uop's id must \
         be its predecessor's plus one. A gap or repeat means the trace \
         was spliced or truncated mid-stream, and every id-indexed \
         consumer (the static verdict tables, the codec's delta coding) \
         would silently misattribute verdicts to the wrong uops.";
      i_example =
        "error[E101] gcc.trace:uop-4107: uop id 4107 follows 4099 (ids \
         must be dense)" };
    { i_code = "E102"; i_severity = Error;
      i_summary = "immediate operand disagrees with its recorded source value";
      i_detail =
        "An immediate operand is its own ground truth: the recorded \
         source value in src_vals must equal the immediate bit for bit. \
         A mismatch means the value flow of the trace was corrupted \
         after generation.";
      i_example =
        "error[E102] gcc.trace:uop-212: immediate operand 0x40 but \
         recorded source value 0x41" };
    { i_code = "E103"; i_severity = Error;
      i_summary = "register read disagrees with its last in-window writer";
      i_detail =
        "Def-use consistency: a register source must observe exactly the \
         result its most recent in-window writer produced. Reads of \
         registers never written inside the window are accepted (sliced \
         traces begin mid-program), so a hit here is real corruption, \
         not slicing.";
      i_example =
        "error[E103] gcc.trace:uop-998: r3 read 0x7f but its last writer \
         produced 0x80" };
    { i_code = "E104"; i_severity = Error;
      i_summary = "flag producer/consumer pairing broken (structure or value)";
      i_detail =
        "A conditional branch must read exactly the flags register, and \
         the flags value it reads must equal the last flags writer's \
         result. Either failure breaks the BR steering rule's premise \
         that the branch depends on its flag producer.";
      i_example =
        "error[E104] gcc.trace:uop-1500: conditional branch must read \
         exactly the flags register" };
    { i_code = "E105"; i_severity = Error;
      i_summary = "ul1_miss set without dl0_miss (miss monotonicity)";
      i_detail =
        "The memory hierarchy is inclusive in the model: a uop can only \
         miss the UL1 after missing the DL0. A ul1_miss bit without its \
         dl0_miss bit describes a physically impossible access and would \
         bill the simulator's memory model the wrong latency.";
      i_example =
        "error[E105] gcc.trace:uop-77: ul1_miss set without dl0_miss \
         (miss monotonicity violated)" };
    { i_code = "E106"; i_severity = Error;
      i_summary = "pure-ALU result inconsistent with Semantics.eval";
      i_detail =
        "For every opcode the concrete evaluator can compute, the \
         recorded result must equal Semantics.eval over the recorded \
         source values. The generator maintains this by construction, so \
         a mismatch means the artifact was edited or corrupted.";
      i_example =
        "error[E106] gcc.trace:uop-310: add result 0x100 but evaluating \
         the sources gives 0x101" };
    { i_code = "E107"; i_severity = Error;
      i_summary = "memory address is not base + offset of the first two sources";
      i_detail =
        "Memory uops carry their AGU output in mem_addr; it must equal \
         the 32-bit sum of the first two source values (base + offset), \
         and a memory uop must have at least two sources. The 8-32-32 \
         shape and the carry (CR) rule both read this field.";
      i_example =
        "error[E107] gcc.trace:uop-42: memory address 0x8010 but base + \
         offset is 0x8000" };
    { i_code = "E108"; i_severity = Error;
      i_summary = "binary trace artifact corrupt (truncated / CRC / structure)";
      i_detail =
        "The HCTB binary codec failed before a trace existed to check: \
         truncated stream, CRC mismatch, or a structurally invalid \
         payload. The finding is attached to the file, not a uop, and \
         the remaining files keep linting.";
      i_example =
        "error[E108] lint_cut.hct:-: corrupt binary trace artifact: \
         truncated stream" };
    { i_code = "E110"; i_severity = Error;
      i_summary = "forward width-analysis soundness violation";
      i_detail =
        "A uop the forward known-bits pass classified provably narrow \
         has wide ground-truth values (Uop.is_888_bits fails). The \
         abstract domain's contract — abstract values contain the \
         concrete ones — is broken; this is a hard analysis bug, never a \
         property of the trace.";
      i_example =
        "error[E110] gcc:uop-900: provably-narrow uop has wide ground \
         truth (analysis soundness bug)" };
    { i_code = "E111"; i_severity = Error;
      i_summary = "live-bits soundness violation (dead bit observable)";
      i_detail =
        "A result bit the backward live-bits pass claimed dead is \
         observable: flipping it and replaying the trace through \
         Semantics.eval changed a value some full-width consumer (load \
         address, store, branch, fp, or the trace exit) reads. The \
         backward transfer functions' demand contract is broken; like \
         E110 this is a hard analysis bug.";
      i_example =
        "error[E111] gcc:uop-433: provably-dead bits 0xff000000 are \
         observable at uop 441 (live-bits soundness bug)" };
    { i_code = "W201"; i_severity = Warning;
      i_summary = "realized instruction mix drifts from the generating profile";
      i_detail =
        "The realized class mix of the trace (loads, stores, branches, \
         mul/div, fp, alu) is compared against the profile it claims to \
         come from, scaled for the cmp each conditional-branch site \
         emits. Drift beyond the tolerance usually means the wrong \
         --benchmark was passed, not a broken trace.";
      i_example =
        "warning[W201] gcc:-: load mix 0.310 drifts from profile \"gcc\" \
         expectation 0.220 (tolerance 0.08)" };
    { i_code = "E201"; i_severity = Error;
      i_summary = "configuration fails Config.validate";
      i_detail =
        "The machine configuration violates a structural constraint \
         (zero widths, empty queues, narrow_bits out of range, ...). \
         Simulating it would be meaningless; the validator's message is \
         forwarded verbatim.";
      i_example = "error[E201] default:-: narrow_bits must be in 1..32" };
    { i_code = "W202"; i_severity = Warning;
      i_summary = "steering scheme is inert (rules on, helper cluster off)";
      i_detail =
        "The scheme enables steering rules (888/BR/LR/CR/CP/IR) while \
         the helper cluster itself is disabled: every uop will steer \
         wide and the rules can never fire. Valid to simulate — it is \
         the baseline — but almost certainly a misconfiguration when \
         rules are explicitly on.";
      i_example =
        "warning[W202] scheme:8_8_8:-: scheme enables steering rules but \
         the helper cluster is off (every uop will steer wide)" };
    { i_code = "W203"; i_severity = Warning;
      i_summary = "bidirectional bound below the forward bound (monotonicity)";
      i_detail =
        "The bidirectional fixpoint joins the forward known-bits pass \
         with the backward live-bits pass, so its provable set must \
         contain the forward one: bidir_provable_count >= \
         provable_count on every trace. analyze_bidir asserts this by \
         construction; seeing W203 means an analysis record was built or \
         mutated outside the normal pipeline.";
      i_example =
        "warning[W203] gcc:-: bidirectional provable bound 120 below the \
         forward bound 150 (monotonicity breach)" };
  ]

let explain code =
  let canon = String.uppercase_ascii (String.trim code) in
  List.find_opt (fun i -> String.equal i.i_code canon) catalogue

(* The README's lint table, generated from the same strings `hc_lint
   explain` prints so the two can never drift. *)
let readme_table () =
  let b = Buffer.create 1024 in
  Buffer.add_string b "| code | severity | meaning |\n";
  Buffer.add_string b "|------|----------|---------|\n";
  List.iter
    (fun i ->
      Buffer.add_string b
        (Printf.sprintf "| %s | %s | %s |\n" i.i_code
           (severity_to_string i.i_severity)
           i.i_summary))
    catalogue;
  Buffer.contents b

(* Per-code emission cap: a single systematic corruption (every load's
   ul1 bit flipped, say) should not bury the report in thousands of
   copies of one finding. The overflow is summarized per code. *)
let report_cap = 5

type emitter = {
  file : string;
  mutable diags : diagnostic list;  (* newest first *)
  counts : (string, int) Hashtbl.t;
}

let emitter file = { file; diags = []; counts = Hashtbl.create 8 }

let emit e ~code ~severity ~loc fmt =
  Printf.ksprintf
    (fun message ->
      let n = (try Hashtbl.find e.counts code with Not_found -> 0) + 1 in
      Hashtbl.replace e.counts code n;
      if n <= report_cap then
        e.diags <- { code; severity; loc; message } :: e.diags)
    fmt

let uop_loc e (u : Uop.t) = Printf.sprintf "%s:uop-%d" e.file u.Uop.id

let finish e =
  let overflow =
    Hashtbl.fold
      (fun code n acc ->
        if n > report_cap then
          { code;
            severity = Info;
            loc = e.file ^ ":-";
            message =
              Printf.sprintf "%d further %s findings suppressed (showing %d)"
                (n - report_cap) code report_cap }
          :: acc
        else acc)
      e.counts []
  in
  List.rev e.diags @ List.sort compare overflow

(* ----- trace checks ----- *)

let check_sources e (u : Uop.t) (vals : Value.t option array) =
  List.iter2
    (fun src v ->
      match src with
      | Uop.Imm imm ->
        if imm <> v then
          emit e ~code:"E102" ~severity:Error ~loc:(uop_loc e u)
            "immediate operand %s but recorded source value %s"
            (Value.to_hex imm) (Value.to_hex v)
      | Uop.Reg r -> (
        match vals.(Reg.to_index r) with
        | Some w when w <> v ->
          let code, what =
            if r = Reg.Eflags then ("E104", "flags")
            else ("E103", Reg.to_string r)
          in
          emit e ~code ~severity:Error ~loc:(uop_loc e u)
            "%s read %s but its last writer produced %s" what (Value.to_hex v)
            (Value.to_hex w)
        | Some _ | None -> () ))
    u.Uop.srcs u.Uop.src_vals

let check_uop e (u : Uop.t) (vals : Value.t option array) =
  (* structural flag pairing: a conditional branch consumes exactly the
     flags register, nothing else *)
  if u.Uop.op = Opcode.Branch_cond && u.Uop.srcs <> [ Uop.Reg Reg.Eflags ] then
    emit e ~code:"E104" ~severity:Error ~loc:(uop_loc e u)
      "conditional branch must read exactly the flags register";
  check_sources e u vals;
  if u.Uop.ul1_miss && not u.Uop.dl0_miss then
    emit e ~code:"E105" ~severity:Error ~loc:(uop_loc e u)
      "ul1_miss set without dl0_miss (miss monotonicity violated)";
  ( match Semantics.eval u.Uop.op u.Uop.src_vals with
  | Some r when r <> u.Uop.result ->
    emit e ~code:"E106" ~severity:Error ~loc:(uop_loc e u)
      "%s result %s but evaluating the sources gives %s"
      (Opcode.to_string u.Uop.op) (Value.to_hex u.Uop.result) (Value.to_hex r)
  | Some _ | None -> () );
  if Opcode.is_memory u.Uop.op then begin
    match u.Uop.src_vals with
    | base :: offset :: _ ->
      let agu = Value.add base offset in
      if u.Uop.mem_addr <> agu then
        emit e ~code:"E107" ~severity:Error ~loc:(uop_loc e u)
          "memory address %s but base + offset is %s"
          (Value.to_hex u.Uop.mem_addr) (Value.to_hex agu)
    | [] | [ _ ] ->
      emit e ~code:"E107" ~severity:Error ~loc:(uop_loc e u)
        "memory uop with fewer than two sources (base + offset expected)"
  end;
  (* same writeback the generator and the static pass use *)
  ( match u.Uop.dst with
  | Some d -> vals.(Reg.to_index d) <- Some u.Uop.result
  | None -> () );
  if Uop.writes_flags u then vals.(Reg.to_index Reg.Eflags) <- Some u.Uop.result

(* Expected realized mix, accounting for the cmp a conditional branch
   site emits alongside the branch itself: every class fraction is scaled
   by 1/(1 + f_cond) and the extra cmps land in the alu class. *)
let drift_tolerance = 0.08

let check_mix e (p : Profile.t) tr =
  let scale = 1. +. p.Profile.f_cond_branch in
  let alu_rest =
    1.
    -. (p.Profile.f_load +. p.Profile.f_store +. p.Profile.f_cond_branch
       +. p.Profile.f_uncond_branch +. p.Profile.f_mul +. p.Profile.f_div
       +. p.Profile.f_fp)
  in
  let expected =
    [ ("load", p.Profile.f_load /. scale);
      ("store", p.Profile.f_store /. scale);
      ("branch", (p.Profile.f_cond_branch +. p.Profile.f_uncond_branch) /. scale);
      ("mul_div", (p.Profile.f_mul +. p.Profile.f_div) /. scale);
      ("fp", p.Profile.f_fp /. scale);
      ("alu", (alu_rest +. p.Profile.f_cond_branch) /. scale) ]
  in
  let realized = Analysis.mix_digest tr in
  List.iter
    (fun (cls, want) ->
      match List.assoc_opt cls realized with
      | Some got when Float.abs (got -. want) > drift_tolerance ->
        emit e ~code:"W201" ~severity:Warning ~loc:(e.file ^ ":-")
          "%s mix %.3f drifts from profile %S expectation %.3f (tolerance %.2f)"
          cls got p.Profile.name want drift_tolerance
      | Some _ | None -> ())
    expected

(* Analysis soundness checks over a (possibly precomputed) bidirectional
   record. Taking the record as an argument lets the regression tests
   seed deliberately corrupt verdicts (a cleared live mask for E111, a
   hand-built non-monotone bound for W203) and pin that the gates trip —
   [check_trace] always passes a freshly computed one. *)
let analysis_checks e (bd : Static.bidir) tr =
  List.iter
    (fun (v : Static.violation) ->
      emit e ~code:"E110" ~severity:Error ~loc:(uop_loc e v.Static.uop)
        "provably-narrow uop has wide ground truth (analysis soundness bug)")
    (Static.soundness_violations bd.Static.base tr);
  List.iter
    (fun (v : Livebits.violation) ->
      emit e ~code:"E111" ~severity:Error ~loc:(uop_loc e v.Livebits.uop)
        "provably-dead bits 0x%x are observable at uop %d (live-bits \
         soundness bug)"
        v.Livebits.flipped v.Livebits.consumer_index)
    (Livebits.soundness_violations bd.Static.livebits tr);
  if bd.Static.bidir_provable_count < bd.Static.base.Static.provable_count then
    emit e ~code:"W203" ~severity:Warning ~loc:(e.file ^ ":-")
      "bidirectional provable bound %d below the forward bound %d \
       (monotonicity breach)"
      bd.Static.bidir_provable_count bd.Static.base.Static.provable_count

let check_analysis ?(file = "<trace>") bd tr =
  let e = emitter file in
  analysis_checks e bd tr;
  finish e

let check_trace ?(file = "<trace>") ?expected_profile ?(bits = 8) tr =
  let e = emitter file in
  let vals = Array.make Reg.count None in
  let prev_id = ref None in
  Trace.iter
    (fun u ->
      ( match !prev_id with
      | Some p when u.Uop.id <> p + 1 ->
        emit e ~code:"E101" ~severity:Error ~loc:(uop_loc e u)
          "uop id %d follows %d (ids must be dense)" u.Uop.id p
      | Some _ | None -> () );
      prev_id := Some u.Uop.id;
      check_uop e u vals)
    tr;
  analysis_checks e (Static.analyze_bidir ~bits tr) tr;
  ( match expected_profile with
  | Some p -> check_mix e p tr
  | None -> () );
  finish e

(* A binary trace that fails to decode never reaches [check_trace] — the
   codec raises before a [Trace.t] exists — so the E108 finding is
   constructed directly from the decoder's complaint. *)
let corrupt_artifact ~file reason =
  {
    code = "E108";
    severity = Error;
    loc = file ^ ":-";
    message = Printf.sprintf "corrupt binary trace artifact: %s" reason;
  }

(* ----- configuration checks ----- *)

let scheme_inert (s : Config.scheme) =
  (not s.Config.helper)
  && (s.Config.s888 || s.Config.br || s.Config.lr || s.Config.cr
     || s.Config.cp || s.Config.ir <> Config.Ir_off)

let check_config ?(file = "<config>") (cfg : Config.t) =
  let e = emitter file in
  ( match Config.validate cfg with
  | Ok () -> ()
  | Error msg ->
    emit e ~code:"E201" ~severity:Error ~loc:(file ^ ":-") "%s" msg );
  if scheme_inert cfg.Config.scheme then
    emit e ~code:"W202" ~severity:Warning ~loc:(file ^ ":-")
      "scheme enables steering rules but the helper cluster is off (every \
       uop will steer wide)";
  finish e
