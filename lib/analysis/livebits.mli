(** Backward demand (live-bits) analysis over a trace's def-use chains.

    The dual of {!Static}'s forward known-bits pass: walking the trace
    backward, it computes for every uop the mask of result bits some
    later consumer — or the trace exit — actually reads. Per-opcode
    backward transfer functions mirror {!Absval.transfer}'s forward
    ones: bitwise ops pass the live mask straight through, add/sub/cmp
    (and mul) down-close it because carries ripple strictly upward,
    shifts with a provably constant amount translate it, and everything
    the concrete evaluator cannot compute — load addresses, stores,
    branches, floating point — plus the trace exit demands full width.

    A result bit outside the live mask is {e dead}: flipping it in
    ground truth changes no value any downstream consumer observes.
    That is the fact the bidirectional fixpoint
    ({!Static.analyze_bidir}) adds on top of forward narrowness, and
    {!soundness_violations} is its executable proof obligation (lint
    code E111; differentially fuzzed in [test/test_fuzz.ml]). *)

type t = {
  bits : int;  (** narrowness threshold the analysis was run for *)
  first_id : int;  (** id of the first uop (sliced traces start offset) *)
  live : int array;
      (** by trace position: mask of the uop's result bits consumed
          downstream (including the flags readers when it writes flags) *)
}

val analyze : ?bits:int -> ?known_amount:(int -> int option) -> Hc_trace.Trace.t -> t
(** One backward linear scan. [known_amount i] may supply a provably
    constant shift amount for the uop at position [i] (the bidirectional
    pass feeds forward-proven constants in); immediate shift amounts are
    always used. Trace-exit register demand is full width, so the result
    is sound for sliced traces. *)

val backward_transfer :
  Hc_isa.Opcode.t -> nsrcs:int -> amount:int option -> live:int -> int list
(** Per-source demand masks for one uop with live result mask [live].
    Contract: changing source bits outside the returned masks leaves
    every result bit inside [live] unchanged under
    [Hc_isa.Semantics.eval]. Opcodes without a computable result return
    full-width demand for every source. *)

val backward_transfer_into :
  Hc_isa.Opcode.t ->
  nsrcs:int ->
  amount:int option ->
  live:int ->
  int array ->
  unit
(** Allocation-free {!backward_transfer}: writes the [nsrcs] demand
    masks into the first [nsrcs] slots of the scratch array (which must
    be at least that long). The column-driven walks (this module's
    [analyze], the bidirectional join) use this to keep the per-uop
    inner loop list-free. *)

val live_mask : t -> index:int -> int

val dead_high : t -> index:int -> int
(** Bits at or above the narrow cut that the analysis claims dead:
    [hi_mask land lnot live]. The mutation check flips exactly these. *)

val hi_mask : bits:int -> int
(** Mask of positions at or above [bits] ([0] when [bits >= 32]). *)

type violation = {
  index : int;  (** trace position of the mutated producer *)
  uop : Hc_isa.Uop.t;
  consumer_index : int;
      (** position where the mutation became observable (trace length
          when it survived to the exit) *)
  flipped : int;  (** the claimed-dead bit mask that was flipped *)
}

val check_mutation : Hc_trace.Trace.t -> index:int -> flipped:int -> int option
(** Flip [flipped] in uop [index]'s result and replay downstream with
    [Semantics.eval], tracking only registers that now differ from
    ground truth (taint dies on overwrite, so the replay is short).
    [Some c] when a full-width consumer at position [c] observed the
    difference or ([c] = trace length) it survived to the exit; [None]
    when the mutation was unobservable. *)

val soundness_violations : t -> Hc_trace.Trace.t -> violation list
(** Every uop whose claimed-dead high bits are observable downstream —
    the live-bits dual of {!Static.soundness_violations}. Any entry is a
    hard analysis bug: the linter (E111), the test suite and the smoke
    gate all require this list to be empty. *)
