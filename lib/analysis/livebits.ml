module Opcode = Hc_isa.Opcode
module Reg = Hc_isa.Reg
module Uop = Hc_isa.Uop
module Uop_soa = Hc_isa.Uop_soa
module Semantics = Hc_isa.Semantics
module Trace = Hc_trace.Trace

(* Backward demand (live-bits) analysis over a trace's def-use chains.

   Walking the trace backward, [demand.(r)] is the mask of bits of
   register [r] some later uop (or the trace exit) still consumes. Each
   uop first collects the live mask of its own result (the demand on its
   destination, plus the flags demand when it writes them), then kills
   the registers it writes, then pushes demand onto its sources through a
   per-opcode backward transfer — the dual of [Absval.transfer]'s forward
   functions.

   Everything is conservative toward full width: the trace exit demands
   all 32 bits of every register (a slice ends mid-program, so anything
   could be live-out), and opcodes whose result [Semantics.eval] cannot
   compute — loads (the address decides which value arrives), stores,
   branches, floating point — consume their sources at full width.

   The payoff is the dual narrowness fact the forward pass cannot see: a
   result may be wide in ground truth yet *dead* above bit [bits]-1, in
   which case executing the producer narrow changes nothing any consumer
   observes. [soundness_violations] checks exactly that claim against the
   concrete evaluator. *)

let mask32 = 0xFFFF_FFFF

type t = {
  bits : int;
  first_id : int;
  live : int array;  (* per trace position: result bits consumed downstream *)
}

let low_bits_upto m =
  (* smallest down-closed mask covering [m]: carries in add/sub/mul ripple
     strictly upward, so result bits <= msb(m) depend on source bits
     <= msb(m) and nothing higher *)
  if m = 0 then 0
  else
    let rec msb i = if m lsr i <> 0 then i else msb (i - 1) in
    let b = msb 31 in
    if b >= 31 then mask32 else (1 lsl (b + 1)) - 1

(* The demand a uop with live result mask [live] places on each of its
   [nsrcs] sources. [amount] is the shift amount when it is provably
   constant (immediate operand, or proven by the forward pass); unknown
   amounts force full demand on the shifted value. Soundness contract
   (fuzzed in test_fuzz.ml): changing source bits outside the returned
   masks leaves the result bits inside [live] unchanged under
   [Semantics.eval]. *)
(* Does [Semantics.eval op] compute a result for an [nsrcs]-operand uop?
   Mirrors the evaluator's binary/unary operand guards exactly, without
   allocating the probe list. *)
let eval_computable (op : Opcode.t) ~nsrcs =
  match op with
  | Mov | Copy -> nsrcs >= 1
  | Add | Sub | And | Or | Xor | Shl | Shr | Cmp | Lea | Mul | Div -> nsrcs >= 2
  | Load | Store | Branch_cond | Branch_uncond | Fp_add | Fp_mul | Fp_div
  | Nop -> false

let backward_transfer_into op ~nsrcs ~amount ~live (out : int array) =
  let fill v = for i = 0 to nsrcs - 1 do out.(i) <- v done in
  let first_two d =
    for i = 0 to nsrcs - 1 do out.(i) <- (if i < 2 then d else 0) done
  in
  if nsrcs = 0 then ()
  else if live = 0 then
    (* a fully dead computed result consumes nothing; full-width
       consumers (eval = None) never have live = 0 treated this way *)
    fill (if eval_computable op ~nsrcs then 0 else mask32)
  else
    match (op : Opcode.t) with
    | And | Or | Xor | Mov | Copy ->
      (* bitwise: result bit i reads exactly source bits i *)
      first_two live
    | Add | Sub | Cmp | Lea | Mul ->
      (* carries ripple upward only (sub via a + ~b + 1; mul partial
         products): the down-closure of the live mask covers every
         source bit that can reach a live result bit *)
      first_two (low_bits_upto live)
    | Shl ->
      fill 0;
      out.(0) <- (match amount with Some k -> live lsr k | None -> mask32);
      if nsrcs > 1 then out.(1) <- 0x1F
    | Shr ->
      fill 0;
      out.(0) <-
        (match amount with
        | Some k -> (live lsl k) land mask32
        | None -> mask32);
      if nsrcs > 1 then out.(1) <- 0x1F
    | Div ->
      (* quotient bits mix source bits across positions; no useful dual *)
      first_two mask32
    | Load | Store | Branch_cond | Branch_uncond | Fp_add | Fp_mul | Fp_div
    | Nop ->
      (* no computable result: the machine (memory system, control flow,
         fp datapath) reads these sources at full width *)
      fill mask32

let backward_transfer op ~nsrcs ~amount ~live =
  let out = Array.make nsrcs 0 in
  backward_transfer_into op ~nsrcs ~amount ~live out;
  Array.to_list out

(* Shift amounts the backward pass can treat as constant without any
   forward information: immediate operands (masked to the 5 bits the
   concrete semantics read); the second operand is an immediate exactly
   when its register column holds -1. *)
let imm_shift_amount_soa soa i =
  if Uop_soa.nsrcs soa i >= 2 then begin
    let j = Uop_soa.src_base soa i + 1 in
    if Uop_soa.src_reg soa j = -1 then Some (Uop_soa.src_val soa j land 31)
    else None
  end
  else None

let analyze ?(bits = 8) ?known_amount (tr : Trace.t) =
  let soa = Trace.soa tr in
  let n = Uop_soa.length soa in
  let live = Array.make n 0 in
  (* trace-exit demand: full width on every register *)
  let demand = Array.make Reg.count mask32 in
  let eflags = Reg.to_index Reg.Eflags in
  let scratch = ref (Array.make 16 0) in
  for i = n - 1 downto 0 do
    let op = Uop_soa.op soa i in
    let d = Uop_soa.dst_index soa i in
    let wf = Opcode.writes_flags op in
    let l =
      (if d >= 0 then demand.(d) else 0) lor if wf then demand.(eflags) else 0
    in
    live.(i) <- l;
    (* kill before gen: a uop reading its own destination register sees
       the demand of *its* consumers on the source occurrence *)
    if d >= 0 then demand.(d) <- 0;
    if wf then demand.(eflags) <- 0;
    let amount =
      match known_amount with
      | Some f -> (
        match f i with Some _ as a -> a | None -> imm_shift_amount_soa soa i)
      | None -> imm_shift_amount_soa soa i
    in
    let lo = Uop_soa.src_base soa i and ns = Uop_soa.nsrcs soa i in
    if ns > Array.length !scratch then scratch := Array.make ns 0;
    backward_transfer_into op ~nsrcs:ns ~amount ~live:l !scratch;
    for j = 0 to ns - 1 do
      let r = Uop_soa.src_reg soa (lo + j) in
      if r >= 0 then demand.(r) <- demand.(r) lor (!scratch).(j)
    done
  done;
  { bits; first_id = (if n = 0 then 0 else Uop_soa.id soa 0); live }

let live_mask t ~index = t.live.(index)

let hi_mask ~bits =
  if bits >= 32 then 0 else mask32 land lnot ((1 lsl bits) - 1)

(* Bits of uop [i]'s result the analysis claims dead above the narrow
   cut: flipping any of them must be unobservable downstream. *)
let dead_high t ~index = hi_mask ~bits:t.bits land lnot t.live.(index) land mask32

(* ----- differential soundness check ----- *)

type violation = {
  index : int;  (* position of the mutated producer *)
  uop : Uop.t;
  consumer_index : int;  (* position where the mutation became observable *)
  flipped : int;  (* the dead-bit mask that was flipped *)
}

(* Taint-bounded forward replay: flip every claimed-dead high bit of uop
   [i]'s result at once, then re-evaluate downstream per Semantics.eval,
   tracking only the registers whose value now differs from ground truth
   (the trace's own [src_vals]/[result] fields are the ground truth, so
   the fork carries just a sparse overlay). The mutation is a violation
   iff a full-width consumer (an opcode the evaluator cannot compute:
   load address, store, branch, fp) reads a differing register, or any
   difference survives to the trace exit. The replay stops as soon as
   the overlay drains — overwrites kill taint — which keeps the sweep
   near-linear on real traces. *)
let check_mutation (tr : Trace.t) ~index ~flipped =
  let n = Trace.length tr in
  let u0 = Trace.get tr index in
  let taint : (int, int) Hashtbl.t = Hashtbl.create 8 in
  let set_taint r v truth =
    if v land mask32 = truth land mask32 then Hashtbl.remove taint r
    else Hashtbl.replace taint r (v land mask32)
  in
  ( match u0.Uop.dst with
  | Some d -> set_taint (Reg.to_index d) (u0.Uop.result lxor flipped) u0.Uop.result
  | None -> () );
  if Uop.writes_flags u0 then
    set_taint (Reg.to_index Reg.Eflags) (u0.Uop.result lxor flipped)
      u0.Uop.result;
  let result = ref None in
  let j = ref (index + 1) in
  while !result = None && Hashtbl.length taint > 0 && !j < n do
    let u = Trace.get tr !j in
    let reads_tainted =
      List.exists
        (function
          | Uop.Reg r -> Hashtbl.mem taint (Reg.to_index r)
          | Uop.Imm _ -> false)
        u.Uop.srcs
    in
    if reads_tainted then begin
      match Semantics.eval u.Uop.op u.Uop.src_vals with
      | None ->
        (* full-width consumer observed a differing value *)
        result := Some !j
      | Some _ ->
        let forked_srcs =
          List.map2
            (fun src truth ->
              match src with
              | Uop.Reg r -> (
                match Hashtbl.find_opt taint (Reg.to_index r) with
                | Some v -> v
                | None -> truth)
              | Uop.Imm _ -> truth)
            u.Uop.srcs u.Uop.src_vals
        in
        let forked =
          match Semantics.eval u.Uop.op forked_srcs with
          | Some r -> r
          | None -> assert false
        in
        ( match u.Uop.dst with
        | Some d -> set_taint (Reg.to_index d) forked u.Uop.result
        | None -> () );
        if Uop.writes_flags u then
          set_taint (Reg.to_index Reg.Eflags) forked u.Uop.result
    end
    else begin
      (* writes without tainted reads recompute ground truth: overwrite
         kills the taint *)
      ( match u.Uop.dst with
      | Some d -> Hashtbl.remove taint (Reg.to_index d)
      | None -> () );
      if Uop.writes_flags u then Hashtbl.remove taint (Reg.to_index Reg.Eflags)
    end;
    incr j
  done;
  match !result with
  | Some c -> Some c
  | None ->
    (* trace exit demands full width: surviving taint is observable *)
    if Hashtbl.length taint > 0 then Some n else None

let soundness_violations t (tr : Trace.t) =
  let acc = ref [] in
  for i = Trace.length tr - 1 downto 0 do
    let u = Trace.get tr i in
    if Uop.has_dest u || Uop.writes_flags u then begin
      let flipped = dead_high t ~index:i in
      if flipped <> 0 then
        match check_mutation tr ~index:i ~flipped with
        | Some c -> acc := { index = i; uop = u; consumer_index = c; flipped } :: !acc
        | None -> ()
    end
  done;
  !acc
