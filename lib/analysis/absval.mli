(** Known-bits abstract domain over 32-bit values.

    An abstract value records, per bit position, whether the bit is
    proven 0, proven 1, or unknown; its concretization is every 32-bit
    value agreeing with the proven positions. All transfer functions are
    sound over-approximations of {!Hc_isa.Semantics.eval}: when the
    abstract inputs {!contains} the concrete operands, the abstract
    output contains the concrete result (differentially fuzzed in
    [test/test_fuzz.ml]). *)

type t = private {
  zeros : int;  (** mask of bit positions proven 0 *)
  ones : int;  (** mask of bit positions proven 1; disjoint from [zeros] *)
}

val top : t
(** No bit known: every 32-bit value. *)

val const : int -> t
(** Singleton abstraction of one concrete value (masked to 32 bits). *)

val known : t -> int
(** Mask of the positions whose bit value is proven. *)

val to_const : t -> int option
(** The concrete value when all 32 positions are proven. *)

val contains : t -> int -> bool
(** Is the concrete value in this abstract value's concretization? *)

val join : t -> t -> t
(** Least upper bound: keeps only the facts proven on both sides. *)

val equal : t -> t -> bool

val is_narrow : bits:int -> t -> bool
(** Provable narrowness mirroring [Detector.narrow]: every bit position
    at or above [bits] is proven 0, or every one proven 1. Implies
    [Detector.narrow ~bits v] for every contained [v]. *)

val logand : t -> t -> t
val logor : t -> t -> t
val logxor : t -> t -> t
val lognot : t -> t

val add : t -> t -> t
(** Abstract ripple-carry addition; exact on fully known inputs. *)

val sub : t -> t -> t

val shl : t -> t -> t
(** Shift transfers give [top] unless the low five amount bits (the only
    ones the concrete semantics read) are all proven. *)

val shr : t -> t -> t

val shift_amount : t -> int option
(** The provably constant shift amount: the low five bits (the only ones
    the concrete semantics read) when all are proven, masked to [0..31]. *)

val mul : t -> t -> t
(** Leading/trailing known-zero magnitude bound; exact on constants. *)

val div : t -> t -> t
(** Quotient bounded by the dividend; division by zero is 0, as in the
    concrete semantics. *)

val leading_known_zeros : t -> int
val trailing_known_zeros : t -> int

val transfer : Hc_isa.Opcode.t -> t list -> t option
(** Per-opcode dispatch mirroring [Semantics.eval] exactly in shape:
    binary opcodes use only the first two operands, [None] for opcodes
    whose result the evaluator cannot compute (memory data, control flow,
    floating point). *)

val transfer2 : Hc_isa.Opcode.t -> nsrcs:int -> a0:t -> a1:t -> t option
(** List-free {!transfer} for column-driven walks: [a0]/[a1] are the
    first two abstract operands of an [nsrcs]-operand uop (pass {!top}
    for positions [>= nsrcs]; they are ignored). Equivalent to [transfer]
    on the corresponding list. *)

val pp : Format.formatter -> t -> unit
(** 32-character bit pattern, [0]/[1]/[?] per position, bit 31 first. *)
