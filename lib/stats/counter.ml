type t = (string, int ref) Hashtbl.t

let create () : t = Hashtbl.create 64

let cell t name =
  match Hashtbl.find_opt t name with
  | Some r -> r
  | None ->
    let r = ref 0 in
    Hashtbl.add t name r;
    r

let incr t name = Stdlib.incr (cell t name)

(* A lazily-bound cached cell: the key appears in the table only once the
   first increment lands (exactly [incr]'s behavior), but every later
   increment is one physical-equality test and an int bump — no string
   hashing, no [find_opt] option allocation. The hot simulator loops use
   these so instrumentation stays allocation-free after warmup. *)
let unbound : int ref = ref 0

type lcell = {
  lc_t : t;
  lc_name : string;
  mutable lc_cell : int ref;
}

let lcell t name = { lc_t = t; lc_name = name; lc_cell = unbound }

let lincr l =
  if l.lc_cell == unbound then l.lc_cell <- cell l.lc_t l.lc_name;
  Stdlib.incr l.lc_cell

let add t name n =
  let r = cell t name in
  r := !r + n

let get t name = match Hashtbl.find_opt t name with Some r -> !r | None -> 0

let ratio t num den =
  let d = get t den in
  if d = 0 then 0. else float_of_int (get t num) /. float_of_int d

let names t = Hashtbl.fold (fun k _ acc -> k :: acc) t [] |> List.sort String.compare

let reset t = Hashtbl.reset t

let merge_into ~dst src = Hashtbl.iter (fun k r -> add dst k !r) src

let pp ppf t =
  Format.pp_open_vbox ppf 0;
  List.iter (fun n -> Format.fprintf ppf "%-40s %d@," n (get t n)) (names t);
  Format.pp_close_box ppf ()
