(** Named event counters.

    A counter set is the simulator's instrumentation backbone: every
    structural event (uop steered, copy generated, flush, issue slot used…)
    bumps a named counter, and the experiment layer reads ratios out of the
    final set. *)

type t
(** A mutable set of named counters. *)

val create : unit -> t

val incr : t -> string -> unit
(** [incr t name] adds 1 to [name], creating it at 0 first if needed. *)

val cell : t -> string -> int ref
(** [cell t name] is the live cell behind [name] (created at 0 if needed).
    Hot paths that bump the same counter millions of times can look the
    cell up once and [incr] the ref directly, skipping the string hash. *)

type lcell
(** A lazily-bound cached cell: binds to the underlying cell on the first
    increment, so the counter name appears in the set exactly when [incr]
    would have created it — but repeat increments cost one comparison and
    an int bump, with no string hashing and no allocation. *)

val lcell : t -> string -> lcell
(** [lcell t name] prepares a lazy cell for [name] without touching the
    set ([names]/[get] do not see [name] until the first {!lincr}). *)

val lincr : lcell -> unit
(** Add 1 through the lazy cell, binding it on first use. *)

val add : t -> string -> int -> unit
(** [add t name n] adds [n] (which may be negative) to [name]. *)

val get : t -> string -> int
(** [get t name] is the current count, 0 if never touched. *)

val ratio : t -> string -> string -> float
(** [ratio t num den] is [get t num / get t den] as a float; [0.] when the
    denominator is zero. *)

val names : t -> string list
(** All touched counter names, sorted. *)

val reset : t -> unit

val merge_into : dst:t -> t -> unit
(** [merge_into ~dst src] adds every counter of [src] into [dst]. *)

val pp : Format.formatter -> t -> unit
