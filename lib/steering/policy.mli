(** The paper's data-width aware steering policies (§3).

    [decide] implements the full technique stack; which techniques are
    active comes from the scheme flags inside the machine configuration
    carried by the context. The rules, in priority order:

    + floating-point, multiply and divide uops always go wide — the helper
      cluster has 8-bit integer units only (§2.1);
    + BR (§3.3): a conditional branch whose flags producer was steered to
      the helper cluster follows it there, avoiding a flags copy;
    + 8-8-8 (§3.2): if every source is believed narrow (actual width for
      immediates and written-back producers, prediction otherwise) and the
      result is predicted narrow with high confidence, steer narrow;
    + CR (§3.5): carry-eligible two-source uops shaped 8-32-32 whose carry
      predictor says (with confidence) that the carry will not leave the
      low byte steer narrow; loads additionally need a narrow-predicted
      loaded value, since the helper register file cannot hold a wide one;
    + IR (§3.7): when the wide backend's issue-queue occupancy exceeds the
      helper's by the configured threshold, otherwise-wide splittable uops
      are split into four 8-bit slices ([Ir_no_dest] restricts this to
      uops without a destination register);
    + everything else goes wide.

    Stores always steer wide (the MOB lives there); loads may steer narrow
    through 8-8-8 or CR. *)

val decide : Hc_sim.Steer.ctx -> Hc_isa.Uop.t -> Hc_sim.Steer.decision
(** The policy used by every experiment; reads the scheme from
    [ctx.cfg.scheme]. *)

val static_oracle :
  ?reason:Hc_sim.Steer.reason ->
  provably_narrow:(Hc_isa.Uop.t -> bool) ->
  Hc_sim.Steer.decide
(** The static oracle family: steer to the helper cluster exactly the
    uops [provably_narrow] accepts (a static width-inference proof from
    [Hc_analysis.Static]), everything else wide. Branches and stores stay
    wide, like the dynamic 8-8-8 rule's reachable set without BR/IR. When
    the predicate is sound the run has zero width-violation recoveries by
    construction, so its steered share is the headroom bound a perfect
    zero-recovery predictor could reach. [reason] (default [R888], for
    the forward [static_888] oracle) tags the steering decision; the
    [static_bidir] oracle passes [Rlive] so the pipeline treats the
    dead-width proof as proof-carried instead of ground-truth checking
    it. The predicate is passed in rather than imported so [Hc_steering]
    does not depend on the analysis library; [Hc_core.Runs] wires the two
    together. *)

val stack : (string * Hc_sim.Config.scheme) list
(** [Config.scheme_stack] re-exported with the baseline prepended: the
    run order of the paper's evaluation. *)
