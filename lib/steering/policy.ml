module Opcode = Hc_isa.Opcode
module Uop = Hc_isa.Uop
module Config = Hc_sim.Config
module Steer = Hc_sim.Steer
module Width_predictor = Hc_predictors.Width_predictor
module Carry_predictor = Hc_predictors.Carry_predictor
module Bundle = Hc_predictors.Bundle

let helper_capable (u : Uop.t) =
  match Opcode.exec_class u.Uop.op with
  | Opcode.Int_alu | Opcode.Mem | Opcode.Ctrl -> true
  | Opcode.Int_mul | Opcode.Fp -> false

(* The believed width of each source, as the rename stage sees it (actual
   when known, predicted otherwise), queried operand by operand — the
   whole decision path allocates nothing, so it runs on the simulator's
   per-uop hot path as-is. *)
let rec all_sources_narrow (ctx : Steer.ctx) = function
  | [] -> true
  | s :: tl ->
    Steer.si_narrow (ctx.Steer.source_info s) && all_sources_narrow ctx tl

(* §3.2: every source believed narrow, result predicted narrow with high
   confidence. Uops with no observable result only need narrow sources. *)
let decide_888 (ctx : Steer.ctx) (u : Uop.t) =
  let cfg = ctx.Steer.cfg in
  if not (all_sources_narrow ctx u.Uop.srcs) then false
  else if not (Uop.has_dest u || Uop.writes_flags u) then true
  else
    let width = ctx.Steer.preds.Bundle.width in
    Width_predictor.predict_narrow width u.Uop.pc
    && ((not cfg.Config.confidence_gate)
       || Width_predictor.predict_confident width u.Uop.pc)

(* §3.5: 8-32-32 shape as believed at rename — exactly one wide source —
   plus a confident carry-local prediction. Loads also need the loaded
   value predicted narrow: the helper register file is 8 bits wide and
   there is no upper-24 reconstruction tag for memory data. *)
let decide_cr (ctx : Steer.ctx) (u : Uop.t) =
  let cfg = ctx.Steer.cfg in
  if not (Opcode.carry_eligible u.Uop.op) then false
  else
    match u.Uop.srcs with
    | [ sa; sb ] ->
      let a = ctx.Steer.source_info sa and b = ctx.Steer.source_info sb in
      let wide_count =
        (if Steer.si_narrow a then 0 else 1)
        + if Steer.si_narrow b then 0 else 1
      in
      if wide_count <> 1 then false
      else begin
        let carry = ctx.Steer.preds.Bundle.carry in
        let carry_ok =
          Carry_predictor.predict_carry_local carry u.Uop.pc
          && ((not cfg.Config.confidence_gate)
             || Carry_predictor.predict_confident carry u.Uop.pc)
        in
        if not carry_ok then false
        else if u.Uop.op = Opcode.Load then begin
          let width = ctx.Steer.preds.Bundle.width in
          Width_predictor.predict_narrow width u.Uop.pc
          && ((not cfg.Config.confidence_gate)
             || Width_predictor.predict_confident width u.Uop.pc)
        end
        else true
      end
    | [] | [ _ ] | _ :: _ :: _ -> false

(* §3.7: the wide backend is congested relative to the helper, and this uop
   can be cracked into byte lanes. *)
let decide_ir (ctx : Steer.ctx) (u : Uop.t) =
  let cfg = ctx.Steer.cfg in
  let eligible =
    match cfg.Config.scheme.Config.ir with
    | Config.Ir_off -> false
    | Config.Ir_all ->
      (* carry-rippling splits serialize their four lanes and delay any
         consumer (a flags-dependent branch for cmp); the profitable
         splits are the independent byte-lane ones *)
      (match u.Uop.op with
       | Opcode.And | Opcode.Or | Opcode.Xor | Opcode.Mov | Opcode.Store
       | Opcode.Add | Opcode.Sub -> true
       | _ -> false)
    | Config.Ir_no_dest -> u.Uop.op = Opcode.Store
  in
  (* splitting trades eight helper issue slots for one wide slot plus four
     copies: worth it exactly when the wide scheduler has a ready backlog
     (the NREADY signal of section 3.7) while the helper has headroom *)
  eligible
  && ctx.Steer.backlog_ewma_gt Config.Wide 1.0
  && ctx.Steer.ready_backlog Config.Narrow = 0
  && ctx.Steer.occupancy_lt Config.Narrow 0.35
  && ctx.Steer.rob_occupancy_lt 0.8

let decide (ctx : Steer.ctx) (u : Uop.t) =
  let scheme = ctx.Steer.cfg.Config.scheme in
  if not scheme.Config.helper then Steer.steer_wide
  else if not (helper_capable u) then Steer.steer_wide
  else if Opcode.is_branch u.Uop.op then begin
    (* §3.3: follow the flags producer into the helper cluster (the branch
       target was resolved in the frontend, so the flags value is the only
       input the backend needs) *)
    if scheme.Config.br && Uop.reads_flags u && ctx.Steer.flags_in_narrow ()
    then Steer.steer_br
    else Steer.steer_wide
  end
  else if u.Uop.op = Opcode.Store then
    if decide_ir ctx u then Steer.Split else Steer.steer_wide
  else begin
    if scheme.Config.s888 && decide_888 ctx u then Steer.steer_888
    else if scheme.Config.cr && decide_cr ctx u then Steer.steer_cr
    else if decide_ir ctx u then Steer.Split
    else Steer.steer_wide
  end

(* Oracle counterpart of [decide]'s 8-8-8 rule: instead of predictor
   beliefs, steer on a static proof that the uop is all-narrow. The proof
   comes from outside (the [Hc_analysis] known-bits pass) as a plain
   predicate so this library keeps zero dependency on the analysis. A
   provably-narrow uop can never trigger a width-violation recovery, so
   the resulting run is the predictor-free steering bound. [reason] tags
   the proof's flavor: R888 for the forward known-bits proof (ground
   truth is narrow, so the pipeline's dynamic check stays honest),
   Rlive for the bidirectional dead-width proof (values may be wide,
   only the observable bits are narrow — proof-carried, not dynamically
   checked). *)
let static_oracle ?(reason = Steer.R888) ~provably_narrow (ctx : Steer.ctx)
    (u : Uop.t) =
  let scheme = ctx.Steer.cfg.Config.scheme in
  if not scheme.Config.helper then Steer.steer_wide
  else if not (helper_capable u) then Steer.steer_wide
  else if Opcode.is_branch u.Uop.op || u.Uop.op = Opcode.Store then
    Steer.steer_wide
  else if provably_narrow u then Steer.steer_narrow_of reason
  else Steer.steer_wide

let stack = ("baseline", Config.monolithic) :: Config.scheme_stack
