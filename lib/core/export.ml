module Metrics = Hc_sim.Metrics
module Summary = Hc_stats.Summary

let csv_line fields =
  let quote f =
    if String.exists (fun c -> c = ',' || c = '"' || c = '\n') f then
      "\"" ^ String.concat "\"\"" (String.split_on_char '"' f) ^ "\""
    else f
  in
  String.concat "," (List.map quote fields)

let write_file = Telemetry.write_file

let write_intervals_csv = Telemetry.write_intervals_csv
let write_intervals_json = Telemetry.write_intervals_json
let write_metrics_json = Telemetry.write_metrics_json

let f2 = Printf.sprintf "%.2f"

let schemes = [ "8_8_8"; "+BR"; "+LR"; "+CR"; "+CP"; "+IR"; "+IR(nodest)" ]

let write_all runs ~dir =
  Telemetry.mkdir_p dir;
  let path name = Filename.concat dir name in
  let meta =
    let m = Meta.capture () in
    write_file (path "meta.json")
      [ Printf.sprintf "{%s,\"trace_length\":%d}" (Meta.to_json_fields m)
          (Runs.length runs) ]
  in
  let fig1 =
    write_file (path "fig1.csv")
      (csv_line [ "benchmark"; "narrow_dependent_pct" ]
      :: List.map
           (fun (b, v) -> csv_line [ b; f2 v ])
           (Experiments.fig1_rows runs))
  in
  let fig5 =
    write_file (path "fig5.csv")
      (csv_line [ "benchmark"; "correct_pct"; "fatal_pct"; "nonfatal_pct" ]
      :: List.map
           (fun (b, c, f, nf) -> csv_line [ b; f2 c; f2 f; f2 nf ])
           (Experiments.fig5_rows runs))
  in
  let fig6 =
    write_file (path "fig6.csv")
      (csv_line [ "benchmark"; "speedup_pct" ]
      :: List.map
           (fun (b, v) -> csv_line [ b; f2 v ])
           (Experiments.fig6_rows runs))
  in
  let fig7 =
    write_file (path "fig7.csv")
      (csv_line [ "benchmark"; "steered_pct"; "copies_pct" ]
      :: List.map
           (fun (b, s, c) -> csv_line [ b; f2 s; f2 c ])
           (Experiments.fig7_rows runs))
  in
  let fig8_9 =
    let series =
      List.map
        (fun scheme -> (scheme, Experiments.copies_by_scheme runs scheme))
        [ "8_8_8"; "+BR"; "+LR" ]
    in
    let benchmarks = List.map fst (snd (List.hd series)) in
    write_file (path "fig8_9.csv")
      (csv_line ("benchmark" :: List.map fst series)
      :: List.map
           (fun b ->
             csv_line
               (b
               :: List.map
                    (fun (_, rows) -> f2 (List.assoc b rows))
                    series))
           benchmarks)
  in
  let fig11 =
    write_file (path "fig11.csv")
      (csv_line [ "benchmark"; "arith_pct"; "load_pct" ]
      :: List.map
           (fun (b, a, l) -> csv_line [ b; f2 a; f2 l ])
           (Experiments.fig11_rows runs))
  in
  let fig12 =
    write_file (path "fig12.csv")
      (csv_line [ "benchmark"; "s888_speedup_pct"; "cr_speedup_pct" ]
      :: List.map
           (fun (b, a, c) -> csv_line [ b; f2 a; f2 c ])
           (Experiments.fig12_rows runs))
  in
  let fig13 =
    write_file (path "fig13.csv")
      (csv_line [ "benchmark"; "mean_distance_uops" ]
      :: List.map
           (fun (b, v) -> csv_line [ b; f2 v ])
           (Experiments.fig13_rows runs))
  in
  let stack =
    let rows =
      List.map
        (fun scheme ->
          let mean f =
            Summary.arithmetic_mean
              (List.map
                 (fun p -> f (Runs.metrics runs ~scheme p))
                 Runs.spec_profiles)
          in
          let speed =
            Summary.arithmetic_mean
              (List.map
                 (fun p -> Runs.speedup_pct runs ~scheme p)
                 Runs.spec_profiles)
          in
          csv_line
            [ scheme; f2 speed; f2 (mean Metrics.steered_pct);
              f2 (mean Metrics.copy_pct); f2 (mean Metrics.wpred_fatal_pct) ])
        schemes
    in
    write_file (path "stack.csv")
      (csv_line [ "scheme"; "speedup_pct"; "steered_pct"; "copies_pct"; "fatal_pct" ]
      :: rows)
  in
  let fig14 =
    write_file (path "fig14.csv")
      (csv_line [ "category"; "speedup_pct" ]
      :: List.map
           (fun (c, v) -> csv_line [ c; f2 v ])
           (Experiments.fig14_category_rows ~apps_per_category:12
              ~length:6_000 ()))
  in
  [ meta; fig1; fig5; fig6; fig7; fig8_9; fig11; fig12; fig13; stack; fig14 ]
