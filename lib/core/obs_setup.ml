module Registry = Hc_obs.Registry
module Span = Hc_obs.Span
module Log = Hc_obs.Log
module Prom = Hc_obs.Prom

type t = {
  enabled : bool;
  span_log : string option;
  prom_out : string option;
}

let off = { enabled = false; span_log = None; prom_out = None }

let setup ?(obs = false) ?span_log ?prom_out () =
  let enabled = obs || span_log <> None || prom_out <> None in
  if enabled then begin
    ignore (Registry.enable ());
    ignore (Span.enable ())
  end;
  { enabled; span_log; prom_out }

let spans () = match Span.ambient () with Some c -> Span.spans c | None -> []

let scrape () =
  match Registry.ambient () with Some r -> Registry.scrape r | None -> []

let finish t =
  if t.enabled then begin
    ( match t.span_log with
    | Some path ->
      Telemetry.mkdir_p (Filename.dirname path);
      ignore (Log.write_spans ~path (spans ()))
    | None -> () );
    match t.prom_out with
    | Some path ->
      Telemetry.mkdir_p (Filename.dirname path);
      ignore (Prom.write ~path (scrape ()))
    | None -> ()
  end

let stage_lines () =
  List.map
    (fun (st : Span.stage_stats) ->
      Printf.sprintf "%-16s %5dx  %8.1f ms total  %6.1f ms max  %.0f kw minor"
        st.Span.st_name st.Span.st_count
        (float_of_int st.Span.st_total_ns /. 1e6)
        (float_of_int st.Span.st_max_ns /. 1e6)
        (st.Span.st_minor_words /. 1e3))
    (Span.by_stage (spans ()))
