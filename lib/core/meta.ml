module Profile = Hc_trace.Profile

type t = {
  git_sha : string option;
  host_cores : int;
  jobs : int;
  seed : string;
  timestamp_utc : string;
  unix_time_s : float;
  obs_enabled : bool;
}

let read_process_line cmd =
  try
    let ic = Unix.open_process_in cmd in
    let line = try Some (String.trim (input_line ic)) with End_of_file -> None in
    match Unix.close_process_in ic, line with
    | Unix.WEXITED 0, Some l when l <> "" -> Some l
    | _, _ -> None
  with Unix.Unix_error _ | Sys_error _ -> None

let git_sha () = read_process_line "git rev-parse HEAD 2>/dev/null"

(* XOR of the baked SPEC profile root seeds: a fingerprint of the exact
   trace universe this build simulates, so two snapshots with different
   numbers can be told apart from the metadata alone. *)
let spec_seed_fingerprint () =
  let x =
    List.fold_left
      (fun acc (p : Profile.t) -> Int64.logxor acc p.Profile.seed)
      0L Profile.spec_int
  in
  Printf.sprintf "0x%Lx" x

let timestamp_of now =
  let tm = Unix.gmtime now in
  Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%02dZ" (tm.Unix.tm_year + 1900)
    (tm.Unix.tm_mon + 1) tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min
    tm.Unix.tm_sec

let capture ?seed ?jobs () =
  let now = Unix.gettimeofday () in
  {
    git_sha = git_sha ();
    host_cores = Domain.recommended_domain_count ();
    jobs = (match jobs with Some j -> j | None -> Domain_pool.default_jobs ());
    seed = (match seed with Some s -> s | None -> spec_seed_fingerprint ());
    timestamp_utc = timestamp_of now;
    unix_time_s = now;
    obs_enabled = Hc_obs.Registry.is_enabled ();
  }

(* the object's fields without surrounding braces, so callers can splice
   the metadata into a larger JSON object (bench --json) or wrap it as a
   standalone meta.json (Export.write_all) *)
let to_json_fields t =
  Printf.sprintf
    "\"git_sha\":%s,\"host_cores\":%d,\"jobs\":%d,\"seed\":\"%s\",\
     \"timestamp_utc\":\"%s\",\"unix_time_s\":%.3f,\"obs_enabled\":%b"
    (match t.git_sha with Some s -> "\"" ^ s ^ "\"" | None -> "null")
    t.host_cores t.jobs t.seed t.timestamp_utc t.unix_time_s t.obs_enabled

let to_json t = "{" ^ to_json_fields t ^ "}"
