module Profile = Hc_trace.Profile
module Generator = Hc_trace.Generator
module Config = Hc_sim.Config
module Pipeline = Hc_sim.Pipeline
module Metrics = Hc_sim.Metrics
module Steer = Hc_sim.Steer
module Uop = Hc_isa.Uop
module Opcode = Hc_isa.Opcode
module Width = Hc_isa.Width
module Table = Hc_stats.Table
module Summary = Hc_stats.Summary

type row = {
  variant : string;
  speedup_pct : float;
  steered_pct : float;
  copy_pct : float;
  fatal_pct : float;
}

type t = {
  id : string;
  title : string;
  what : string;
  run : length:int -> row list;
}

let measure ~length ~variant ?(decide = Hc_steering.Policy.decide) cfg =
  (* one task per benchmark: trace generation and both simulations are
     self-contained, so the twelve benchmarks fan out across the pool *)
  let per_bench =
    Domain_pool.map_list (Domain_pool.get ())
      (fun p ->
        let tr = Generator.generate_sliced ~length p in
        let base =
          Pipeline.run ~cfg:Config.baseline ~decide:Hc_steering.Policy.decide
            ~scheme_name:"baseline" tr
        in
        let m = Pipeline.run ~cfg ~decide ~scheme_name:variant tr in
        ( Metrics.speedup_pct ~baseline:base m,
          Metrics.steered_pct m,
          Metrics.copy_pct m,
          Metrics.wpred_fatal_pct m ))
      Profile.spec_int
  in
  let mean f = Summary.arithmetic_mean (List.map f per_bench) in
  {
    variant;
    speedup_pct = mean (fun (s, _, _, _) -> s);
    steered_pct = mean (fun (_, s, _, _) -> s);
    copy_pct = mean (fun (_, _, c, _) -> c);
    fatal_pct = mean (fun (_, _, _, f) -> f);
  }

let full_stack = Config.with_scheme Config.default (Config.find_scheme "+IR")

let width_sweep ~length =
  List.map
    (fun bits ->
      measure ~length ~variant:(Printf.sprintf "width=%d" bits)
        { full_stack with Config.narrow_bits = bits })
    [ 4; 8; 12; 16; 24 ]

let clock_ratio ~length =
  [
    measure ~length ~variant:"helper@2x" full_stack;
    measure ~length ~variant:"helper@1x"
      { full_stack with Config.helper_fast_clock = false };
  ]

let confidence ~length =
  [
    measure ~length ~variant:"gated" full_stack;
    measure ~length ~variant:"ungated"
      { full_stack with Config.confidence_gate = false };
  ]

(* Oracle steering: replace the predictor-driven 8-8-8 and CR tests with
   ground truth (the policy still respects structural restrictions). This
   bounds what a perfect width predictor could buy. *)
let oracle_decide (ctx : Steer.ctx) (u : Uop.t) =
  let cfg = ctx.Steer.cfg in
  let scheme = cfg.Config.scheme in
  let bits = cfg.Config.narrow_bits in
  let helper_capable =
    match Opcode.exec_class u.Uop.op with
    | Opcode.Int_alu | Opcode.Mem | Opcode.Ctrl -> true
    | Opcode.Int_mul | Opcode.Fp -> false
  in
  if not (scheme.Config.helper && helper_capable) then Steer.Steer Config.Wide
  else if Opcode.is_branch u.Uop.op then begin
    if scheme.Config.br && Uop.reads_flags u && ctx.Steer.flags_in_narrow ()
    then Steer.Steer_narrow Steer.Rbr
    else Steer.Steer Config.Wide
  end
  else if u.Uop.op = Opcode.Store then Steer.Steer Config.Wide
  else if scheme.Config.s888 && Uop.is_888_bits ~bits u then
    Steer.Steer_narrow Steer.R888
  else if
    scheme.Config.cr && Uop.carry_not_propagated_bits ~bits u
    && (u.Uop.op <> Opcode.Load || Width.is_narrow_bits ~bits u.Uop.result)
  then Steer.Steer_narrow Steer.Rcr
  else
    (* fall back to the real policy for the imbalance machinery *)
    Hc_steering.Policy.decide ctx u

let oracle ~length =
  [
    measure ~length ~variant:"predicted" full_stack;
    measure ~length ~variant:"oracle" ~decide:oracle_decide full_stack;
  ]

let copy_latency ~length =
  List.map
    (fun lat ->
      measure ~length ~variant:(Printf.sprintf "copy=%dcyc" lat)
        { full_stack with Config.copy_latency = lat })
    [ 1; 2; 4 ]

(* Structural substrates vs trace-carried ground truth: the same run with
   the modeled memory hierarchy, gshare and trace cache switched in. *)
let substrates ~length =
  [
    measure ~length ~variant:"trace-flags" full_stack;
    measure ~length ~variant:"cache-sim"
      { full_stack with Config.memory_model = Config.Mem_cache_sim };
    measure ~length ~variant:"gshare"
      { full_stack with Config.branch_model = Config.Br_gshare };
    measure ~length ~variant:"trace-cache"
      { full_stack with Config.frontend_model = Config.Fe_trace_cache };
    measure ~length ~variant:"all-modeled"
      { full_stack with
        Config.memory_model = Config.Mem_cache_sim;
        branch_model = Config.Br_gshare;
        frontend_model = Config.Fe_trace_cache };
  ]

let regfile_pressure ~length =
  List.map
    (fun regs ->
      measure ~length ~variant:(Printf.sprintf "regs=%d" regs)
        { full_stack with Config.wide_regs = regs; narrow_regs = regs })
    [ 128; 48; 24 ]

let flush_penalty ~length =
  List.map
    (fun pen ->
      measure ~length ~variant:(Printf.sprintf "flush=%dcyc" pen)
        { full_stack with Config.width_flush_penalty = pen })
    [ 0; 4; 12 ]

let all =
  [
    { id = "width"; title = "Helper datapath width";
      what =
        "the 8-bit design point vs the paper's proposed wider helper \
         (clock held at 2x throughout)";
      run = width_sweep };
    { id = "clock"; title = "Helper clock ratio";
      what = "the 2x fireball clock of section 2.2 vs an equal-rate helper";
      run = clock_ratio };
    { id = "confidence"; title = "Confidence gating";
      what = "the 2-bit confidence estimator that cut recovery 2.11% to 0.83%";
      run = confidence };
    { id = "oracle"; title = "Oracle width knowledge";
      what = "perfect width/carry information at rename: the predictor headroom";
      run = oracle };
    { id = "copylat"; title = "Inter-cluster copy latency";
      what = "sensitivity to the copy hop the steering schemes minimize";
      run = copy_latency };
    { id = "flushpen"; title = "Width-flush penalty";
      what = "sensitivity to the squash-and-resteer recovery cost";
      run = flush_penalty };
    { id = "substrates"; title = "Structural substrates";
      what =
        "trace-carried hit/miss and misprediction ground truth vs the \
         modeled cache hierarchy, gshare and trace cache";
      run = substrates };
    { id = "regfile"; title = "Physical register file pressure";
      what = "rename stalls as the per-cluster register files shrink";
      run = regfile_pressure };
  ]

let find id =
  match List.find_opt (fun a -> a.id = id) all with
  | Some a -> a
  | None -> raise Not_found

let render rows =
  let table =
    Table.create
      [ "variant"; "speedup (%)"; "steered (%)"; "copies (%)"; "fatal (%)" ]
  in
  List.iter
    (fun r ->
      Table.add_row table
        [ r.variant;
          Printf.sprintf "%+.2f" r.speedup_pct;
          Printf.sprintf "%.1f" r.steered_pct;
          Printf.sprintf "%.1f" r.copy_pct;
          Printf.sprintf "%.2f" r.fatal_pct ])
    rows;
  Table.render table
