module Registry = Hc_obs.Registry
module Span = Hc_obs.Span

type task = unit -> unit

type worker_stats = {
  mutable w_tasks : int;
  mutable w_busy_s : float;
  mutable w_wait_s : float;
}

type t = {
  pool_jobs : int;
  m : Mutex.t;
  work_available : Condition.t;
  queue : task Queue.t;
  mutable stop : bool;
  mutable workers : unit Domain.t list;
  stats : worker_stats array;  (* slot 0 = the submitting domain *)
  mutable max_depth : int;  (* deepest queue observed at submit time *)
}

let default_jobs () =
  match Sys.getenv_opt "HC_JOBS" with
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some n when n > 0 -> n
    | Some _ | None -> Domain.recommended_domain_count ())
  | None -> Domain.recommended_domain_count ()

let obs_task_done () =
  Registry.with_ambient (fun r ->
      Registry.inc
        (Registry.counter r ~help:"Domain_pool tasks executed"
           "hc_pool_tasks_total"))

(* Each worker owns its stats slot exclusively, so the profiling stores
   are race-free; readers only see settled values after a batch. *)
let run_task stats task =
  let t0 = Unix.gettimeofday () in
  Span.with_span "task" task;
  stats.w_busy_s <- stats.w_busy_s +. (Unix.gettimeofday () -. t0);
  stats.w_tasks <- stats.w_tasks + 1;
  obs_task_done ()

let rec worker_loop t idx =
  let stats = t.stats.(idx) in
  let t0 = Unix.gettimeofday () in
  Mutex.lock t.m;
  while Queue.is_empty t.queue && not t.stop do
    Condition.wait t.work_available t.m
  done;
  match Queue.take_opt t.queue with
  | None ->
    (* stopped and drained *)
    Mutex.unlock t.m;
    stats.w_wait_s <- stats.w_wait_s +. (Unix.gettimeofday () -. t0)
  | Some task ->
    Mutex.unlock t.m;
    stats.w_wait_s <- stats.w_wait_s +. (Unix.gettimeofday () -. t0);
    run_task stats task;
    worker_loop t idx

let create ~jobs =
  let jobs = max 1 jobs in
  let t =
    {
      pool_jobs = jobs;
      m = Mutex.create ();
      work_available = Condition.create ();
      queue = Queue.create ();
      stop = false;
      workers = [];
      stats =
        Array.init jobs (fun _ -> { w_tasks = 0; w_busy_s = 0.; w_wait_s = 0. });
      max_depth = 0;
    }
  in
  if jobs > 1 then
    t.workers <-
      List.init (jobs - 1) (fun i ->
          Domain.spawn (fun () ->
              Span.set_track ("worker" ^ string_of_int (i + 1));
              worker_loop t (i + 1)));
  t

let jobs t = t.pool_jobs

let stats t =
  Array.map
    (fun s -> { w_tasks = s.w_tasks; w_busy_s = s.w_busy_s; w_wait_s = s.w_wait_s })
    t.stats

let max_queue_depth t = t.max_depth

let shutdown t =
  Mutex.lock t.m;
  t.stop <- true;
  Condition.broadcast t.work_available;
  Mutex.unlock t.m;
  let workers = t.workers in
  t.workers <- [];
  List.iter Domain.join workers

(* The caller drains whatever is queued (its own batch's tasks, possibly
   interleaved with another batch's — both make progress). *)
let help_drain t =
  let stats = t.stats.(0) in
  let continue = ref true in
  while !continue do
    Mutex.lock t.m;
    match Queue.take_opt t.queue with
    | None ->
      Mutex.unlock t.m;
      continue := false
    | Some task ->
      Mutex.unlock t.m;
      run_task stats task
  done

let map t f xs =
  let n = Array.length xs in
  if n = 0 then [||]
  else if t.pool_jobs <= 1 || n = 1 then begin
    let stats = t.stats.(0) in
    Array.map
      (fun x ->
        let t0 = Unix.gettimeofday () in
        let y = Span.with_span "task" (fun () -> f x) in
        stats.w_busy_s <- stats.w_busy_s +. (Unix.gettimeofday () -. t0);
        stats.w_tasks <- stats.w_tasks + 1;
        obs_task_done ();
        y)
      xs
  end
  else begin
    let results = Array.make n None in
    let first_error = ref None in
    let remaining = ref n in
    let bm = Mutex.create () in
    let batch_done = Condition.create () in
    Mutex.lock t.m;
    for i = 0 to n - 1 do
      Queue.add
        (fun () ->
          ( match f xs.(i) with
          | v -> results.(i) <- Some v
          | exception e ->
            Mutex.lock bm;
            if !first_error = None then first_error := Some e;
            Mutex.unlock bm );
          Mutex.lock bm;
          decr remaining;
          if !remaining = 0 then Condition.broadcast batch_done;
          Mutex.unlock bm)
        t.queue
    done;
    t.max_depth <- max t.max_depth (Queue.length t.queue);
    Registry.with_ambient (fun r ->
        Registry.gauge_max
          (Registry.gauge r ~help:"Deepest task queue observed at submit"
             "hc_pool_queue_depth_max")
          t.max_depth);
    Condition.broadcast t.work_available;
    Mutex.unlock t.m;
    help_drain t;
    let wait0 = Unix.gettimeofday () in
    Mutex.lock bm;
    while !remaining > 0 do
      Condition.wait batch_done bm
    done;
    Mutex.unlock bm;
    t.stats.(0).w_wait_s <-
      t.stats.(0).w_wait_s +. (Unix.gettimeofday () -. wait0);
    ( match !first_error with
    | Some e -> raise e
    | None -> () );
    Array.map
      (function Some v -> v | None -> assert false (* batch settled *))
      results
  end

let map_list t f xs = Array.to_list (map t f (Array.of_list xs))

(* ----- the process-wide shared pool ----- *)

let shared : t option ref = ref None
let shared_jobs = ref None
let shared_m = Mutex.create ()
let exit_hook_installed = ref false

let get () =
  Mutex.lock shared_m;
  let t =
    match !shared with
    | Some t -> t
    | None ->
      let jobs =
        match !shared_jobs with Some j -> j | None -> default_jobs ()
      in
      let t = create ~jobs in
      shared := Some t;
      if not !exit_hook_installed then begin
        exit_hook_installed := true;
        at_exit (fun () ->
            match !shared with
            | Some t ->
              shared := None;
              shutdown t
            | None -> ())
      end;
      t
  in
  Mutex.unlock shared_m;
  t

let set_jobs n =
  let n = max 1 n in
  Mutex.lock shared_m;
  shared_jobs := Some n;
  let old =
    match !shared with
    | Some t when jobs t <> n ->
      shared := None;
      Some t
    | Some _ | None -> None
  in
  Mutex.unlock shared_m;
  match old with Some t -> shutdown t | None -> ()
