type task = unit -> unit

type t = {
  pool_jobs : int;
  m : Mutex.t;
  work_available : Condition.t;
  queue : task Queue.t;
  mutable stop : bool;
  mutable workers : unit Domain.t list;
}

let default_jobs () =
  match Sys.getenv_opt "HC_JOBS" with
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some n when n > 0 -> n
    | Some _ | None -> Domain.recommended_domain_count ())
  | None -> Domain.recommended_domain_count ()

let rec worker_loop t =
  Mutex.lock t.m;
  while Queue.is_empty t.queue && not t.stop do
    Condition.wait t.work_available t.m
  done;
  match Queue.take_opt t.queue with
  | None ->
    (* stopped and drained *)
    Mutex.unlock t.m
  | Some task ->
    Mutex.unlock t.m;
    task ();
    worker_loop t

let create ~jobs =
  let jobs = max 1 jobs in
  let t =
    {
      pool_jobs = jobs;
      m = Mutex.create ();
      work_available = Condition.create ();
      queue = Queue.create ();
      stop = false;
      workers = [];
    }
  in
  if jobs > 1 then
    t.workers <-
      List.init (jobs - 1) (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let jobs t = t.pool_jobs

let shutdown t =
  Mutex.lock t.m;
  t.stop <- true;
  Condition.broadcast t.work_available;
  Mutex.unlock t.m;
  let workers = t.workers in
  t.workers <- [];
  List.iter Domain.join workers

(* The caller drains whatever is queued (its own batch's tasks, possibly
   interleaved with another batch's — both make progress). *)
let help_drain t =
  let continue = ref true in
  while !continue do
    Mutex.lock t.m;
    match Queue.take_opt t.queue with
    | None ->
      Mutex.unlock t.m;
      continue := false
    | Some task ->
      Mutex.unlock t.m;
      task ()
  done

let map t f xs =
  let n = Array.length xs in
  if n = 0 then [||]
  else if t.pool_jobs <= 1 || n = 1 then Array.map f xs
  else begin
    let results = Array.make n None in
    let first_error = ref None in
    let remaining = ref n in
    let bm = Mutex.create () in
    let batch_done = Condition.create () in
    Mutex.lock t.m;
    for i = 0 to n - 1 do
      Queue.add
        (fun () ->
          ( match f xs.(i) with
          | v -> results.(i) <- Some v
          | exception e ->
            Mutex.lock bm;
            if !first_error = None then first_error := Some e;
            Mutex.unlock bm );
          Mutex.lock bm;
          decr remaining;
          if !remaining = 0 then Condition.broadcast batch_done;
          Mutex.unlock bm)
        t.queue
    done;
    Condition.broadcast t.work_available;
    Mutex.unlock t.m;
    help_drain t;
    Mutex.lock bm;
    while !remaining > 0 do
      Condition.wait batch_done bm
    done;
    Mutex.unlock bm;
    ( match !first_error with
    | Some e -> raise e
    | None -> () );
    Array.map
      (function Some v -> v | None -> assert false (* batch settled *))
      results
  end

let map_list t f xs = Array.to_list (map t f (Array.of_list xs))

(* ----- the process-wide shared pool ----- *)

let shared : t option ref = ref None
let shared_jobs = ref None
let shared_m = Mutex.create ()
let exit_hook_installed = ref false

let get () =
  Mutex.lock shared_m;
  let t =
    match !shared with
    | Some t -> t
    | None ->
      let jobs =
        match !shared_jobs with Some j -> j | None -> default_jobs ()
      in
      let t = create ~jobs in
      shared := Some t;
      if not !exit_hook_installed then begin
        exit_hook_installed := true;
        at_exit (fun () ->
            match !shared with
            | Some t ->
              shared := None;
              shutdown t
            | None -> ())
      end;
      t
  in
  Mutex.unlock shared_m;
  t

let set_jobs n =
  let n = max 1 n in
  Mutex.lock shared_m;
  shared_jobs := Some n;
  let old =
    match !shared with
    | Some t when jobs t <> n ->
      shared := None;
      Some t
    | Some _ | None -> None
  in
  Mutex.unlock shared_m;
  match old with Some t -> shutdown t | None -> ()
