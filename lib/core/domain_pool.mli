(** A small fixed-size pool of OCaml 5 [Domain]s behind a mutex-guarded
    work queue.

    Built on the stdlib only ([Domain], [Mutex], [Condition]) — no
    domainslib. The pool exists so independent simulations (one
    [Pipeline.run] per (scheme, benchmark) cell) can fan out across
    cores; each task must be self-contained and touch no shared mutable
    state. The calling domain participates in draining the queue, so a
    pool of [jobs = n] uses [n - 1] spawned domains plus the caller.

    A process-wide shared pool is kept behind {!get}; command-line
    front-ends size it once via {!set_jobs} (the [--jobs] flag), and the
    [HC_JOBS] environment variable overrides the default
    [Domain.recommended_domain_count ()]. With [jobs <= 1] every entry
    point degrades to plain sequential execution — no domains are
    spawned at all. *)

type t

type worker_stats = {
  mutable w_tasks : int;  (** tasks this worker executed *)
  mutable w_busy_s : float;  (** wall seconds spent inside tasks *)
  mutable w_wait_s : float;  (** wall seconds blocked waiting for work *)
}
(** Per-worker profiling accumulators; see {!stats}. *)

val default_jobs : unit -> int
(** [HC_JOBS] when set to a positive integer, otherwise
    [Domain.recommended_domain_count ()]. *)

val create : jobs:int -> t
(** A pool that runs up to [jobs] tasks concurrently ([jobs - 1] worker
    domains; the submitting domain is the last worker). [jobs <= 1]
    creates a degenerate pool that runs everything inline. *)

val jobs : t -> int

val stats : t -> worker_stats array
(** A copy of the per-worker profiling counters, one slot per pool worker
    with slot 0 the submitting domain (which drains the queue alongside
    the spawned workers). Busy time is wall time inside tasks; wait time
    covers blocking on the work queue and, for slot 0, blocking on batch
    completion. Read between batches — values for a batch still in
    flight may be mid-update. *)

val max_queue_depth : t -> int
(** Deepest work queue observed at submission time over the pool's
    lifetime — how far ahead of the workers the submitters ran. *)

val map : t -> ('a -> 'b) -> 'a array -> 'b array
(** [map pool f xs] applies [f] to every element, in parallel, and
    returns the results in input order. The calling domain helps drain
    the queue, then blocks until the batch completes. If any [f x]
    raises, the first exception (in completion order) is re-raised after
    the whole batch has settled. Tasks must not themselves call [map] on
    the same pool. *)

val map_list : t -> ('a -> 'b) -> 'a list -> 'b list
(** {!map} over lists, preserving order. *)

val shutdown : t -> unit
(** Drain the queue, stop and join the workers. Idempotent. *)

val get : unit -> t
(** The process-wide shared pool, created on first use with
    {!default_jobs} (or the last {!set_jobs} value) and torn down by an
    [at_exit] hook. *)

val set_jobs : int -> unit
(** Resize the shared pool (shutting down the old one if it exists).
    Used by the [--jobs] command-line flags. *)
