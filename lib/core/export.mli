(** Plot-ready CSV export of the reproduced figures.

    Writes one CSV per figure into a directory, re-deriving the series
    from the same memoized runs the experiment tables use, so the numbers
    in a plot always match the printed tables. *)

val write_all : Runs.t -> dir:string -> string list
(** [write_all runs ~dir] creates [dir] (including missing parents) and
    writes [meta.json] (run metadata: git SHA, host cores, jobs, trace
    seed fingerprint, wall-clock, trace length), then [fig1.csv],
    [fig5.csv], [fig6.csv], [fig7.csv], [fig8_9.csv], [fig11.csv],
    [fig12.csv], [fig13.csv], [stack.csv] (the scheme-stack summary) and
    [fig14.csv] (category averages). Returns the paths written, in that
    order. *)

val csv_line : string list -> string
(** One CSV record: fields joined with commas, quoted when they contain a
    comma or quote. Exposed for tests. *)

val write_intervals_csv : path:string -> Hc_obs.Sample.t list -> string
(** Interval metrics time series as CSV ({!Telemetry.write_intervals_csv}). *)

val write_intervals_json : path:string -> Hc_obs.Sample.t list -> string

val write_metrics_json : path:string -> Hc_sim.Metrics.t -> string
(** One run's full metrics as JSON ({!Hc_sim.Metrics.to_json}). *)
