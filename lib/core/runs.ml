module Profile = Hc_trace.Profile
module Generator = Hc_trace.Generator
module Trace = Hc_trace.Trace
module Config = Hc_sim.Config
module Pipeline = Hc_sim.Pipeline
module Metrics = Hc_sim.Metrics
module Registry = Hc_obs.Registry
module Span = Hc_obs.Span

type t = {
  len : int;
  telemetry : Telemetry.config option;
  cache : Artifact_cache.t option;
  progress : Telemetry.progress option;
  traces : (string, Trace.t) Hashtbl.t;
  statics : (string, Hc_analysis.Static.bidir) Hashtbl.t;
  runs : (string * string, Metrics.t) Hashtbl.t;
}

let create ?(length = 30_000) ?telemetry ?cache ?progress () =
  ( match telemetry with
  | Some { Telemetry.dir; _ } -> Telemetry.mkdir_p dir
  | None -> () );
  {
    len = length;
    telemetry;
    cache;
    progress;
    traces = Hashtbl.create 32;
    statics = Hashtbl.create 32;
    runs = Hashtbl.create 64;
  }

let length t = t.len

(* Trace acquisition goes through the artifact cache when one is
   attached: a warm cache turns the ~1.5 s generate into a millisecond
   binary reload, and cold generations publish for the next process.
   Safe from pool workers: distinct profiles land on distinct keys, and
   publishes are atomic renames. *)
let generate t (p : Profile.t) =
  Artifact_cache.trace_or_generate t.cache ~profile:p ~length:t.len

let trace t (p : Profile.t) =
  match Hashtbl.find_opt t.traces p.Profile.name with
  | Some tr -> tr
  | None ->
    let tr = generate t p in
    Hashtbl.add t.traces p.Profile.name tr;
    tr

(* Memoized static width analysis, keyed like the trace memo. Always
   computed on the calling domain: the result is shared read-only with
   parallel workers, never mutated after construction. The bidirectional
   record embeds the forward pass as [.base], so one memoized analysis
   serves both oracle schemes and both exported bounds. *)
let static_info t (tr : Trace.t) =
  match Hashtbl.find_opt t.statics tr.Trace.name with
  | Some s -> s
  | None ->
    let s =
      Span.with_span "static-analysis"
        ~meta:[ ("benchmark", tr.Trace.name) ]
        (fun () -> Hc_analysis.Static.analyze_bidir tr)
    in
    Hashtbl.add t.statics tr.Trace.name s;
    s

(* The oracle pseudo-schemes: the 8_8_8 machine steered by a static
   width-inference proof instead of the predictors. Not in
   [Config.scheme_stack] because they are not hardware policies — they
   are the zero-recovery steering bounds the tables compare the
   predictors to. [static_888] steers on the forward known-bits proof;
   [static_bidir] adds the backward live-bits join (dead-width proofs,
   tagged Rlive so the pipeline treats them as proof-carried). *)
let oracle_scheme = "static_888"
let bidir_oracle_scheme = "static_bidir"

let resolve_policy ~(static : Hc_analysis.Static.bidir) ~scheme =
  if String.equal scheme oracle_scheme then
    ( Config.with_scheme Config.default (Config.find_scheme "8_8_8"),
      Hc_steering.Policy.static_oracle ~reason:Hc_sim.Steer.R888
        ~provably_narrow:
          (Hc_analysis.Static.provably_narrow static.Hc_analysis.Static.base) )
  else if String.equal scheme bidir_oracle_scheme then
    ( Config.with_scheme Config.default (Config.find_scheme "8_8_8"),
      Hc_steering.Policy.static_oracle ~reason:Hc_sim.Steer.Rlive
        ~provably_narrow:(Hc_analysis.Static.bidir_provable_uop static) )
  else
    ( Config.with_scheme Config.default (Config.find_scheme scheme),
      Hc_steering.Policy.decide )

(* One simulation of one (scheme, trace) cell. Every run — oracle or not —
   carries the trace's static steering bound in its metrics, so exported
   JSON and the attribution tables can show predictor results next to the
   provable headroom. With telemetry configured, the run gets an
   interval-sampling sink and leaves its time series and metrics JSON
   behind in the telemetry directory; observation never changes the
   returned metrics (bit-identical, see test_obs.ml), so the memo tables
   stay oblivious to whether a run was observed. Workers write distinct
   per-cell files, so the parallel fan-out needs no locking. *)
let obs_run (m : Metrics.t) =
  Registry.with_ambient (fun r ->
      Registry.inc
        (Registry.counter r ~help:"Completed pipeline simulations"
           "hc_sim_runs_total");
      Registry.add
        (Registry.counter r ~help:"Uops retired across all simulations"
           "hc_uops_retired_total")
        m.Metrics.committed;
      Registry.observe
        (Registry.histogram r ~help:"Ticks to completion per simulation"
           "hc_sim_run_ticks")
        m.Metrics.ticks)

(* Per-interval NREADY imbalance histograms: one observation per sampled
   interval, so a scrape (hc_metrics show / --prom-out) carries the
   distribution of the paper's §3.7 imbalance signal, not just its total. *)
let obs_nready samples =
  Registry.with_ambient (fun r ->
      let w2n =
        Registry.histogram r
          ~help:"Per-interval NREADY wide-to-narrow imbalance samples"
          "hc_nready_w2n_per_interval"
      and n2w =
        Registry.histogram r
          ~help:"Per-interval NREADY narrow-to-wide imbalance samples"
          "hc_nready_n2w_per_interval"
      in
      List.iter
        (fun (s : Hc_obs.Sample.t) ->
          Registry.observe w2n s.Hc_obs.Sample.d.Hc_obs.Sample.nready_w2n;
          Registry.observe n2w s.Hc_obs.Sample.d.Hc_obs.Sample.nready_n2w)
        samples)

let simulate ?telemetry ~(static : Hc_analysis.Static.bidir) ~scheme tr =
  Span.with_span "simulate"
    ~meta:[ ("benchmark", tr.Trace.name); ("scheme", scheme) ]
  @@ fun () ->
  let cfg, decide = resolve_policy ~static ~scheme in
  let attach m =
    {
      m with
      Metrics.static_narrow_bound =
        Some
          static.Hc_analysis.Static.base.Hc_analysis.Static.steerable_count;
      Metrics.static_bidir_bound =
        Some static.Hc_analysis.Static.bidir_steerable_count;
    }
  in
  let m =
    match telemetry with
    | None -> attach (Pipeline.run ~cfg ~decide ~scheme_name:scheme tr)
    | Some { Telemetry.dir; interval } ->
      let sink = Hc_obs.Sink.create ~interval ~tracing:false () in
      let m = attach (Pipeline.run ~sink ~cfg ~decide ~scheme_name:scheme tr) in
      let base =
        Filename.concat dir
          (Telemetry.run_basename ~scheme ~name:tr.Trace.name)
      in
      ignore
        (Telemetry.write_intervals_csv ~path:(base ^ ".intervals.csv")
           (Hc_obs.Sink.samples sink));
      ignore (Telemetry.write_metrics_json ~path:(base ^ ".metrics.json") m);
      obs_nready (Hc_obs.Sink.samples sink);
      m
  in
  obs_run m;
  m

(* Run-metrics caching. Telemetry runs bypass the metrics cache (their
   side artifacts — interval CSVs, metrics JSON in the telemetry dir —
   must be produced every time); the trace cache still applies. The
   scheme name is validated before any cache lookup so an unknown scheme
   raises Not_found warm exactly as it does cold. *)
let validate_scheme scheme =
  if
    (not (String.equal scheme oracle_scheme))
    && not (String.equal scheme bidir_oracle_scheme)
  then ignore (Config.find_scheme scheme)

let find_cached_metrics t ~scheme (p : Profile.t) =
  match (t.cache, t.telemetry) with
  | Some c, None -> Artifact_cache.find_metrics c ~scheme ~profile:p ~length:t.len
  | _ -> None

let store_cached_metrics t ~scheme (p : Profile.t) m =
  match (t.cache, t.telemetry) with
  | Some c, None -> Artifact_cache.store_metrics c ~scheme ~profile:p ~length:t.len m
  | _ -> ()

let metrics t ~scheme (p : Profile.t) =
  let key = (scheme, p.Profile.name) in
  match Hashtbl.find_opt t.runs key with
  | Some m -> m
  | None -> (
    validate_scheme scheme;
    match find_cached_metrics t ~scheme p with
    | Some m ->
      Hashtbl.add t.runs key m;
      m
    | None ->
      let tr = trace t p in
      let static = static_info t tr in
      let m = simulate ?telemetry:t.telemetry ~static ~scheme tr in
      store_cached_metrics t ~scheme p m;
      Hashtbl.add t.runs key m;
      m)

(* ----- parallel batch fill ----- *)

(* Deduplicate while keeping first-occurrence order, so the fan-out is
   deterministic in shape regardless of how callers assemble the batch. *)
let dedup key xs =
  let seen = Hashtbl.create 64 in
  List.filter
    (fun x ->
      let k = key x in
      if Hashtbl.mem seen k then false
      else begin
        Hashtbl.add seen k ();
        true
      end)
    xs

let ensure_traces t profiles =
  let missing =
    dedup
      (fun (p : Profile.t) -> p.Profile.name)
      (List.filter
         (fun (p : Profile.t) -> not (Hashtbl.mem t.traces p.Profile.name))
         profiles)
  in
  match missing with
  | [] -> ()
  | [ p ] -> ignore (trace t p)
  | missing ->
    let pool = Domain_pool.get () in
    let generated =
      Domain_pool.map pool
        (fun (p : Profile.t) -> (p.Profile.name, generate t p))
        (Array.of_list missing)
    in
    (* keyed merge back into the memo table, on the calling domain *)
    Array.iter
      (fun (name, tr) ->
        if not (Hashtbl.mem t.traces name) then Hashtbl.add t.traces name tr)
      generated

let ensure t pairs =
  let missing =
    dedup
      (fun (scheme, (p : Profile.t)) -> (scheme, p.Profile.name))
      (List.filter
         (fun (scheme, (p : Profile.t)) ->
           not (Hashtbl.mem t.runs (scheme, p.Profile.name)))
         pairs)
  in
  (* resolve scheme names before any cache lookup or fan-out: an unknown
     scheme raises Not_found on the calling domain, warm or cold *)
  List.iter (fun (scheme, _) -> validate_scheme scheme) missing;
  ( match t.progress with
  | Some p -> Telemetry.progress_add_total p (List.length missing)
  | None -> () );
  let tick ?cached () =
    match t.progress with
    | Some p -> Telemetry.progress_tick ?cached p
    | None -> ()
  in
  (* metrics-cache pass: cells with a cached run merge directly and need
     neither their trace nor its static analysis — the warm path of a
     full sweep touches no generator state at all *)
  let cold =
    List.filter
      (fun (scheme, (p : Profile.t)) ->
        match find_cached_metrics t ~scheme p with
        | Some m ->
          Hashtbl.replace t.runs (scheme, p.Profile.name) m;
          tick ~cached:true ();
          false
        | None -> true)
      missing
  in
  ensure_traces t (List.map snd cold);
  let jobs_list =
    List.map
      (fun (scheme, (p : Profile.t)) ->
        let tr = trace t p in
        (scheme, p, tr, static_info t tr))
      cold
  in
  let commit (scheme, (p : Profile.t), _, _) m =
    store_cached_metrics t ~scheme p m;
    Hashtbl.replace t.runs (scheme, p.Profile.name) m
  in
  match jobs_list with
  | [] -> ()
  | [ ((scheme, _, tr, static) as job) ] ->
    commit job (simulate ?telemetry:t.telemetry ~static ~scheme tr);
    tick ()
  | jobs_list ->
    let pool = Domain_pool.get () in
    let results =
      Domain_pool.map pool
        (fun (scheme, _, tr, static) ->
          let m = simulate ?telemetry:t.telemetry ~static ~scheme tr in
          (* live progress from the worker: the reporter is mutex-guarded *)
          tick ();
          m)
        (Array.of_list jobs_list)
    in
    (* keyed, order-independent merge: each worker simulated its own
       (scheme, profile) cell with fresh pipeline state over the shared
       read-only trace, so results are bit-identical to sequential runs.
       Cache publishes happen here on the calling domain, one atomic
       rename per cell. *)
    List.iteri (fun i job -> commit job results.(i)) jobs_list

let speedup_pct t ~scheme p =
  let baseline = metrics t ~scheme:"baseline" p in
  Metrics.speedup_pct ~baseline (metrics t ~scheme p)

let spec_profiles = Profile.spec_int

let ensure_spec t schemes =
  ensure t
    (List.concat_map
       (fun scheme -> List.map (fun p -> (scheme, p)) spec_profiles)
       schemes)
