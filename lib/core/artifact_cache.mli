(** Content-addressed on-disk cache for trace and run artifacts.

    Generating a 30k-uop workload trace costs ~1.5 s; simulating it costs
    milliseconds. Large sweeps therefore spend nearly all their wall time
    regenerating inputs they have generated before. This cache persists
    the expensive artifacts across processes:

    - {e traces} as {!Hc_trace.Codec} binary blobs under
      [<root>/traces/<digest>.hct];
    - {e run metrics} as the schema-3 JSON [Hc_sim.Metrics.to_json]
      emits, under [<root>/runs/<digest>.json].

    Keys are digests of (profile fingerprint — which includes the
    generator seed —, trace length, codec schema version, and for runs
    the scheme name), so a change to any input lands on a different key
    and stale entries are simply never addressed.

    Guarantees:

    - {b atomic publish}: entries are written to a unique temp file and
      [rename]d into place, so concurrent {!Domain_pool} workers (or
      concurrent processes on the same filesystem) never observe a
      partial entry;
    - {b self-healing}: an entry that fails its CRC / parse / byte-exact
      re-serialization check is deleted and treated as a miss — the
      caller regenerates and republishes;
    - {b bit-identical warm reads}: a metrics entry is only returned if
      re-serializing the decoded record reproduces the stored bytes
      exactly, so warm metrics cannot drift from cold ones. *)

type t

val create : ?root:string -> unit -> t
(** [root] defaults to [$HC_CACHE_DIR] if set and non-empty, else
    ["_hc_cache"]. The directory is created lazily on first store. *)

val of_cli : string option -> t option
(** Resolve the [--cache-dir] CLI convention: [Some "none"] disables the
    cache, [Some dir] uses [dir], [None] falls back to [$HC_CACHE_DIR]
    (where the value ["none"] also disables) or the default root. *)

val root : t -> string

(* ----- traces ----- *)

val find_trace :
  t -> profile:Hc_trace.Profile.t -> length:int -> Hc_trace.Trace.t option
(** Decode the cached trace for (profile, length), or [None] on miss.
    Corrupt entries are deleted (self-heal) and reported as a miss. *)

val store_trace :
  t -> profile:Hc_trace.Profile.t -> length:int -> Hc_trace.Trace.t -> unit

val trace_or_generate :
  t option -> profile:Hc_trace.Profile.t -> length:int -> Hc_trace.Trace.t
(** The lookup-else-generate-and-publish composition every CLI uses:
    sliced generation ({!Hc_trace.Generator.generate_sliced}) on a miss
    or with no cache ([None]). *)

(* ----- run metrics ----- *)

val find_metrics :
  t ->
  scheme:string ->
  profile:Hc_trace.Profile.t ->
  length:int ->
  Hc_sim.Metrics.t option

val store_metrics :
  t ->
  scheme:string ->
  profile:Hc_trace.Profile.t ->
  length:int ->
  Hc_sim.Metrics.t ->
  unit

(* ----- inspection, verification, eviction ----- *)

type counts = {
  trace_hits : int;
  trace_misses : int;
  run_hits : int;
  run_misses : int;
  trace_heals : int;
  run_heals : int;
}
(** In-process hit/miss/self-heal counters (atomic — workers share the
    instance). *)

val counts : t -> counts

type disk = {
  trace_entries : int;
  trace_bytes : int;
  run_entries : int;
  run_bytes : int;
}

val disk : t -> disk
(** Scan the cache root (missing directories count as empty). *)

type bad = { path : string; reason : string }

val verify : ?fix:bool -> t -> bad list
(** Decode every entry end to end: CRC + full structural decode for
    traces, parse + byte-exact re-serialization for metrics. Returns the
    entries that fail; [~fix:true] also deletes them. *)

val gc : t -> max_bytes:int -> string list
(** Evict oldest-first (mtime) until the cache fits in [max_bytes];
    returns the deleted paths. *)
