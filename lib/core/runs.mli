(** Simulation-run cache shared by the experiment suite.

    Experiments reuse each other's runs (Fig 6 and Fig 7 both need the
    8_8_8 runs; Fig 8 adds +BR; …), so traces and finished metrics are
    generated once per (benchmark, scheme) and memoized for the process
    lifetime. Everything is deterministic: same [length] in, same numbers
    out. *)

type t

val create :
  ?length:int ->
  ?telemetry:Telemetry.config ->
  ?cache:Artifact_cache.t ->
  ?progress:Telemetry.progress ->
  unit ->
  t
(** [length] is the per-benchmark trace length (default [30_000] uops,
    generated with the paper's slice-skipping methodology).

    [telemetry] attaches an interval sampler to every simulation this
    cache executes: each (scheme, benchmark) cell leaves
    [<scheme>__<benchmark>.intervals.csv] and
    [<scheme>__<benchmark>.metrics.json] in [telemetry.dir] (created,
    with parents, up front). Metrics are bit-identical with or without
    telemetry, and the parallel fan-out writes distinct files per cell,
    so the option composes with {!ensure}.

    [cache] attaches the on-disk {!Artifact_cache}: traces load from
    (and publish to) their content-addressed binary entries instead of
    being regenerated, and finished run metrics reload from their cached
    JSON — warm sweeps skip generation {e and} simulation entirely while
    returning bit-identical metrics (see [test/test_cache.ml]). With
    [telemetry] also set, the metrics cache is bypassed (every run must
    produce its telemetry artifacts) but the trace cache still applies.

    [progress] attaches a live {!Telemetry.progress} reporter: every
    {!ensure} batch announces its missing cells up front and ticks the
    reporter as each resolves — warm metrics-cache merges tick as
    cached, cold simulations tick on completion (from pool workers). *)

val length : t -> int

val trace : t -> Hc_trace.Profile.t -> Hc_trace.Trace.t
(** Memoized sliced trace for a profile (keyed by profile name). *)

val static_info : t -> Hc_trace.Trace.t -> Hc_analysis.Static.bidir
(** Memoized static width analysis of a trace (keyed by trace name,
    default 8-bit narrow cut): the bidirectional record, whose [.base]
    field is the forward pass — one memoized analysis serves both oracle
    schemes and both exported bounds. Computed once on the calling
    domain; the result is shared read-only with parallel simulation
    workers. *)

val ensure_traces : t -> Hc_trace.Profile.t list -> unit
(** Generate every not-yet-memoized trace in the list, fanning the
    generation out across the shared {!Domain_pool}. Each profile's trace
    is generated exactly once from its own seeded RNG, so the result is
    bit-identical to on-demand sequential generation. *)

val ensure : t -> (string * Hc_trace.Profile.t) list -> unit
(** Batch-fill the run cache: generate any missing traces, then simulate
    every not-yet-memoized (scheme, profile) cell in parallel across the
    shared {!Domain_pool} ([HC_JOBS] / [--jobs] workers) and merge the
    results back into the memo tables keyed by (scheme, profile name).
    Every worker gets its own pipeline state over the shared read-only
    trace, so the merged metrics are bit-identical to the sequential
    path (see [test/test_parallel.ml]).
    @raise Not_found for an unknown scheme name, before any fan-out. *)

val ensure_spec : t -> string list -> unit
(** [ensure] over the full SPEC Int profile set for each named scheme —
    the shape every figure-level experiment needs. *)

val metrics : t -> scheme:string -> Hc_trace.Profile.t -> Hc_sim.Metrics.t
(** Memoized simulation of a profile under a named scheme (names from
    {!Hc_steering.Policy.stack}: ["baseline"], ["8_8_8"], ["+BR"], …).
    The pseudo-schemes ["static_888"] and ["static_bidir"] are also
    accepted (here and in {!ensure}): the 8_8_8 machine steered by
    {!Hc_steering.Policy.static_oracle} over the trace's forward
    (respectively bidirectional) static width-inference proof — both
    zero-recovery steering bounds by construction. Every returned
    metrics record carries
    [static_narrow_bound = Some (static_info _ tr).base.steerable_count]
    and [static_bidir_bound = Some (static_info _ tr).bidir_steerable_count].
    @raise Not_found for an unknown scheme name. *)

val speedup_pct : t -> scheme:string -> Hc_trace.Profile.t -> float
(** Performance increase of [scheme] over ["baseline"] for one profile. *)

val resolve_policy :
  static:Hc_analysis.Static.bidir ->
  scheme:string ->
  Hc_sim.Config.t * Hc_sim.Pipeline.decide
(** The (config, steering policy) a scheme name denotes: the matching
    entry of [Config.scheme_stack], or — for the ["static_888"] /
    ["static_bidir"] pseudo-schemes — the 8_8_8 machine steered by
    {!Hc_steering.Policy.static_oracle} over the forward (respectively
    bidirectional) proof in [static]. For callers that drive
    {!Hc_sim.Pipeline.run} directly (e.g. accounting-enabled experiment
    fan-outs that must not pollute the metrics memo/cache).
    @raise Not_found for an unknown scheme name. *)

val spec_profiles : Hc_trace.Profile.t list
(** The 12 SPEC Int 2000 profiles, in paper order. *)
