(** CLI wiring for the observability layer.

    Every binary exposes the same three flags ([--obs], [--span-log
    FILE], [--prom-out FILE]); this module is the shared glue behind
    them: {!setup} turns the ambient {!Hc_obs.Registry} and
    {!Hc_obs.Span} collector on when any of the three asks for
    observability, and {!finish} exports whatever was recorded. With
    all three unset nothing is enabled and the process runs the exact
    untraced hot path. *)

type t

val off : t
(** Observability stays down; {!finish} is a no-op. *)

val setup :
  ?obs:bool -> ?span_log:string -> ?prom_out:string -> unit -> t
(** Enable the ambient registry and span collector when [obs] is set or
    either output path is given. *)

val finish : t -> unit
(** Export: span JSONL to [span_log], Prometheus text exposition of the
    final scrape to [prom_out] (parent directories created). *)

val spans : unit -> Hc_obs.Span.span list
(** Whatever the ambient collector holds ([[]] when off). *)

val scrape : unit -> Hc_obs.Registry.sample list
(** Final ambient-registry scrape ([[]] when off). *)

val stage_lines : unit -> string list
(** Human-readable per-stage aggregate (count, total/max wall, minor
    allocation), one line per stage — what [--obs] prints to stderr. *)
