(** Run metadata, so exported artifacts are self-describing.

    Every machine-readable output (BENCH_*.json snapshots, the CSV export
    directory, telemetry directories) embeds the same capture: the git
    revision that produced the numbers, the host parallelism, the pool
    size used, the trace-seed fingerprint, and when the run happened. *)

type t = {
  git_sha : string option;  (** [None] outside a git checkout *)
  host_cores : int;  (** [Domain.recommended_domain_count ()] *)
  jobs : int;  (** domain-pool size the run used *)
  seed : string;  (** trace-seed fingerprint (or a caller-supplied seed) *)
  timestamp_utc : string;  (** ISO-8601, UTC *)
  unix_time_s : float;
  obs_enabled : bool;
      (** whether the ambient metrics registry was on for this run *)
}

val capture : ?seed:string -> ?jobs:int -> unit -> t
(** [seed] defaults to {!spec_seed_fingerprint}; [jobs] defaults to
    {!Domain_pool.default_jobs}. Shells out to [git rev-parse HEAD] and
    tolerates its absence. *)

val spec_seed_fingerprint : unit -> string
(** XOR of the baked SPEC-profile root seeds, in hex. *)

val to_json_fields : t -> string
(** The metadata as JSON object fields (no braces), for splicing into a
    larger object. *)

val to_json : t -> string
