module Sample = Hc_obs.Sample
module Metrics = Hc_sim.Metrics

type config = { dir : string; interval : int }

let rec mkdir_p dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Sys.mkdir dir 0o755
    with Sys_error _ when Sys.file_exists dir ->
      (* lost a creation race with a sibling worker: fine *)
      ()
  end

let write_file path lines =
  mkdir_p (Filename.dirname path);
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      List.iter
        (fun line ->
          output_string oc line;
          output_char oc '\n')
        lines);
  path

let write_intervals_csv ~path samples =
  write_file path (Sample.csv_header :: List.map Sample.to_csv_row samples)

let write_intervals_json ~path samples =
  let rows = List.map Sample.to_json samples in
  write_file path
    (("[" ^ String.concat ",\n " rows ^ "]") :: [])

let write_metrics_json ~path m = write_file path [ Metrics.to_json m ]

(* ----- live campaign progress ----- *)

(* A mutex-guarded line reporter: Runs ticks it from pool workers, so
   updates must be serialized; rendering is throttled so a 100k-cell
   campaign doesn't spend its time repainting stderr. *)
(* ETA window: the rate is measured over the last [eta_window]
   completions, not the whole campaign. A warm-cache campaign front-loads
   near-instant cached merges; the global mean then predicts the cold
   tail ~2000x too fast (and symmetrically, a cold prefix makes a warm
   tail look slow). The windowed rate converges to the current regime
   within one window. *)
let eta_window = 32

type progress = {
  p_out : out_channel;
  p_enabled : bool;
  p_label : string;
  p_m : Mutex.t;
  mutable p_total : int;
  mutable p_done : int;
  mutable p_cached : int;
  p_t0 : float;
  mutable p_last_print : float;
  mutable p_printed : bool;
  p_recent : float array;  (* completion stamps, ring of [eta_window] *)
  mutable p_recent_len : int;  (* stamps recorded, caps at the ring size *)
}

let progress_create ?(out = stderr) ?(label = "campaign") ~enabled () =
  {
    p_out = out;
    p_enabled = enabled;
    p_label = label;
    p_m = Mutex.create ();
    p_total = 0;
    p_done = 0;
    p_cached = 0;
    p_t0 = Unix.gettimeofday ();
    p_last_print = 0.;
    p_printed = false;
    p_recent = Array.make eta_window 0.;
    p_recent_len = 0;
  }

let progress_render p ~now =
  let warm_pct =
    if p.p_done = 0 then 0.
    else 100. *. float_of_int p.p_cached /. float_of_int p.p_done
  in
  let eta =
    if p.p_done = 0 || p.p_done >= p.p_total then ""
    else begin
      (* windowed rate: completions-per-second over the span from the
         oldest retained stamp (or campaign start while the ring is
         filling) to now *)
      let window = min p.p_recent_len eta_window in
      let oldest =
        if window = 0 then p.p_t0
        else if p.p_recent_len <= eta_window then p.p_recent.(0)
        else p.p_recent.(p.p_recent_len mod eta_window)
      in
      let span = now -. oldest in
      let completions = if window = 0 then 1 else window in
      if span <= 0. then ""
      else
        Printf.sprintf " ETA %.1fs"
          (span /. float_of_int completions
          *. float_of_int (p.p_total - p.p_done))
    end
  in
  Printf.sprintf "%s: %d/%d tasks, %d warm (%.1f%% hit)%s" p.p_label p.p_done
    p.p_total p.p_cached warm_pct eta

(* caller holds p_m *)
let progress_print p ~force =
  if p.p_enabled then begin
    let now = Unix.gettimeofday () in
    if force || now -. p.p_last_print >= 0.1 then begin
      p.p_last_print <- now;
      p.p_printed <- true;
      (* \r + erase-to-eol keeps one live line on a terminal; in a log
         file each repaint is just a long line *)
      Printf.fprintf p.p_out "\r\027[K%s%!" (progress_render p ~now)
    end
  end

let progress_add_total p n =
  Mutex.lock p.p_m;
  p.p_total <- p.p_total + n;
  progress_print p ~force:false;
  Mutex.unlock p.p_m

let progress_tick ?(cached = false) p =
  Mutex.lock p.p_m;
  p.p_done <- p.p_done + 1;
  if cached then p.p_cached <- p.p_cached + 1;
  p.p_recent.(p.p_recent_len mod eta_window) <- Unix.gettimeofday ();
  p.p_recent_len <- p.p_recent_len + 1;
  progress_print p ~force:(p.p_done >= p.p_total);
  Mutex.unlock p.p_m

let progress_snapshot p =
  Mutex.lock p.p_m;
  let s = (p.p_done, p.p_total, p.p_cached) in
  Mutex.unlock p.p_m;
  s

let progress_finish p =
  Mutex.lock p.p_m;
  if p.p_enabled then begin
    progress_print p ~force:true;
    if p.p_printed then begin
      output_char p.p_out '\n';
      flush p.p_out
    end
  end;
  Mutex.unlock p.p_m

let run_basename ~scheme ~name =
  let sanitize s =
    String.map
      (fun c ->
        match c with
        | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' | '.' | '+' -> c
        | _ -> '_')
      s
  in
  sanitize scheme ^ "__" ^ sanitize name
