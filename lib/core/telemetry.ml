module Sample = Hc_obs.Sample
module Metrics = Hc_sim.Metrics

type config = { dir : string; interval : int }

let rec mkdir_p dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Sys.mkdir dir 0o755
    with Sys_error _ when Sys.file_exists dir ->
      (* lost a creation race with a sibling worker: fine *)
      ()
  end

let write_file path lines =
  mkdir_p (Filename.dirname path);
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      List.iter
        (fun line ->
          output_string oc line;
          output_char oc '\n')
        lines);
  path

let write_intervals_csv ~path samples =
  write_file path (Sample.csv_header :: List.map Sample.to_csv_row samples)

let write_intervals_json ~path samples =
  let rows = List.map Sample.to_json samples in
  write_file path
    (("[" ^ String.concat ",\n " rows ^ "]") :: [])

let write_metrics_json ~path m = write_file path [ Metrics.to_json m ]

let run_basename ~scheme ~name =
  let sanitize s =
    String.map
      (fun c ->
        match c with
        | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' | '.' | '+' -> c
        | _ -> '_')
      s
  in
  sanitize scheme ^ "__" ^ sanitize name
