(** File-level telemetry writers shared by {!Export}, {!Runs} and the
    CLIs.

    These live below {!Export} in the module graph so the run engine can
    write interval series and per-run metrics without depending on the
    figure-export layer. *)

type config = {
  dir : string;  (** output directory, created (recursively) on demand *)
  interval : int;  (** sampling interval in fast ticks *)
}
(** What [--telemetry-dir DIR] turns on: every simulation the run cache
    executes gets an interval sampler and writes its series + metrics
    JSON under [dir]. *)

val mkdir_p : string -> unit
(** [mkdir] with missing parents, tolerant of concurrent creation. *)

val write_file : string -> string list -> string
(** Write lines to a path (parents created), returning the path. *)

val write_intervals_csv : path:string -> Hc_obs.Sample.t list -> string
(** One row per interval, {!Hc_obs.Sample.csv_header} first. *)

val write_intervals_json : path:string -> Hc_obs.Sample.t list -> string
(** The series as a JSON array of objects. *)

val write_metrics_json : path:string -> Hc_sim.Metrics.t -> string
(** {!Hc_sim.Metrics.to_json} to a file. *)

val run_basename : scheme:string -> name:string -> string
(** Filesystem-safe ["<scheme>__<benchmark>"] stem for per-run files. *)
