(** File-level telemetry writers shared by {!Export}, {!Runs} and the
    CLIs.

    These live below {!Export} in the module graph so the run engine can
    write interval series and per-run metrics without depending on the
    figure-export layer. *)

type config = {
  dir : string;  (** output directory, created (recursively) on demand *)
  interval : int;  (** sampling interval in fast ticks *)
}
(** What [--telemetry-dir DIR] turns on: every simulation the run cache
    executes gets an interval sampler and writes its series + metrics
    JSON under [dir]. *)

val mkdir_p : string -> unit
(** [mkdir] with missing parents, tolerant of concurrent creation. *)

val write_file : string -> string list -> string
(** Write lines to a path (parents created), returning the path. *)

val write_intervals_csv : path:string -> Hc_obs.Sample.t list -> string
(** One row per interval, {!Hc_obs.Sample.csv_header} first. *)

val write_intervals_json : path:string -> Hc_obs.Sample.t list -> string
(** The series as a JSON array of objects. *)

val write_metrics_json : path:string -> Hc_sim.Metrics.t -> string
(** {!Hc_sim.Metrics.to_json} to a file. *)

val run_basename : scheme:string -> name:string -> string
(** Filesystem-safe ["<scheme>__<benchmark>"] stem for per-run files. *)

(** {2 Live campaign progress}

    What [--progress] turns on: a single self-overwriting stderr line
    ([tasks done/total, warm hits, ETA]) that {!Runs.ensure} ticks as
    cells resolve — warm cache merges tick as cached, simulations tick
    on completion (from pool workers; the reporter is mutex-guarded).
    With [enabled = false] every call is a lock/unlock and no output, so
    the reporter can be threaded unconditionally. *)

type progress

val progress_create :
  ?out:out_channel -> ?label:string -> enabled:bool -> unit -> progress
(** [out] defaults to [stderr], [label] to ["campaign"]. *)

val progress_add_total : progress -> int -> unit
(** Announce [n] more cells to resolve (called at batch entry). *)

val progress_tick : ?cached:bool -> progress -> unit
(** One cell resolved; [cached] marks a warm artifact-cache merge. *)

val progress_snapshot : progress -> int * int * int
(** [(done, total, cached)] under the lock. *)

val progress_finish : progress -> unit
(** Repaint once unconditionally and terminate the line. *)
