module Profile = Hc_trace.Profile
module Generator = Hc_trace.Generator
module Analysis = Hc_trace.Analysis
module Workloads = Hc_trace.Workloads
module Metrics = Hc_sim.Metrics
module Config = Hc_sim.Config
module Pipeline = Hc_sim.Pipeline
module Model = Hc_power.Model
module Table = Hc_stats.Table
module Summary = Hc_stats.Summary

type headline = {
  label : string;
  paper : float;
  measured : float;
}

type t = {
  id : string;
  title : string;
  paper_claim : string;
  run : Runs.t -> string * headline list;
}

let spec = Runs.spec_profiles

(* Batch prefetch: declare up front which (scheme × SPEC profile) cells an
   experiment reads so [Runs.ensure] can fan the missing simulations out
   across the domain pool before the (memoized, sequential) accessors
   run. [prep ~traces] covers the characterization figures that only scan
   traces. Results are identical either way — the cache is just filled in
   parallel instead of on demand. *)
let prep ?(schemes = []) ?(traces = false) f runs =
  if traces then Runs.ensure_traces runs spec;
  if schemes <> [] then Runs.ensure_spec runs schemes;
  f runs

let avg rows = Summary.arithmetic_mean (List.map snd rows)

let render_benchmark_table ~headers ~rows ~avg_row =
  let table = Table.create headers in
  List.iter (fun (name, cells) -> Table.add_row table (name :: cells)) rows;
  Table.add_separator table;
  Table.add_row table ("AVG" :: avg_row);
  Table.render table

let f1 = Printf.sprintf "%.1f"
let f2 = Printf.sprintf "%.2f"

(* ----- Fig 1: narrow data-width dependence ----- *)

let fig1_rows runs =
  List.map
    (fun p -> (p.Profile.name, Analysis.narrow_dependence_pct (Runs.trace runs p)))
    spec

let fig1 runs =
  let rows = fig1_rows runs in
  let text =
    render_benchmark_table
      ~headers:[ "benchmark"; "narrow-dependent operands (%)" ]
      ~rows:(List.map (fun (n, v) -> (n, [ f1 v ])) rows)
      ~avg_row:[ f1 (avg rows) ]
  in
  (text, [ { label = "avg narrow-dependent ALU operands (%)"; paper = 65.0;
             measured = avg rows } ])

(* ----- §1 operand-width mix ----- *)

let opmix runs =
  let mixes = List.map (fun p -> Analysis.operand_mix (Runs.trace runs p)) spec in
  let mean f = Summary.arithmetic_mean (List.map f mixes) in
  let one = mean (fun m -> m.Analysis.one_narrow) in
  let two_wide = mean (fun m -> m.Analysis.two_narrow_wide_result) in
  let two_narrow = mean (fun m -> m.Analysis.two_narrow_narrow_result) in
  let table = Table.create [ "operand-width class"; "paper (%)"; "measured (%)" ] in
  Table.add_row table [ "one narrow source"; "39.4"; f1 one ];
  Table.add_row table [ "two narrow, wide result"; "3.3"; f1 two_wide ];
  Table.add_row table [ "two narrow, narrow result"; "43.5"; f1 two_narrow ];
  ( Table.render table,
    [
      { label = "ALU uops with one narrow source (%)"; paper = 39.4; measured = one };
      { label = "two narrow sources, wide result (%)"; paper = 3.3; measured = two_wide };
      { label = "two narrow sources, narrow result (%)"; paper = 43.5;
        measured = two_narrow };
    ] )

(* ----- Fig 5: width-prediction accuracy ----- *)

let fig5_rows runs =
  List.map
    (fun p ->
      let m = Runs.metrics runs ~scheme:"8_8_8" p in
      ( p.Profile.name,
        Metrics.wpred_accuracy_pct m,
        Metrics.wpred_fatal_pct m,
        Metrics.wpred_nonfatal_pct m ))
    spec

let fig5 runs =
  let rows = fig5_rows runs in
  let text =
    render_benchmark_table
      ~headers:[ "benchmark"; "correct (%)"; "fatal (%)"; "non-fatal (%)" ]
      ~rows:(List.map (fun (n, c, f, nf) -> (n, [ f1 c; f2 f; f2 nf ])) rows)
      ~avg_row:
        [
          f1 (Summary.arithmetic_mean (List.map (fun (_, c, _, _) -> c) rows));
          f2 (Summary.arithmetic_mean (List.map (fun (_, _, f, _) -> f) rows));
          f2 (Summary.arithmetic_mean (List.map (fun (_, _, _, nf) -> nf) rows));
        ]
  in
  let acc = Summary.arithmetic_mean (List.map (fun (_, c, _, _) -> c) rows) in
  let fatal = Summary.arithmetic_mean (List.map (fun (_, _, f, _) -> f) rows) in
  ( text,
    [
      { label = "avg width-prediction accuracy (%)"; paper = 93.5; measured = acc };
      { label = "fatal mispredictions with confidence gate (%)"; paper = 0.83;
        measured = fatal };
    ] )

(* ----- Fig 6: 8_8_8 performance ----- *)

let fig6_rows runs =
  List.map (fun p -> (p.Profile.name, Runs.speedup_pct runs ~scheme:"8_8_8" p)) spec

let fig6 runs =
  let rows = fig6_rows runs in
  let text =
    render_benchmark_table
      ~headers:[ "benchmark"; "8_8_8 speedup (%)" ]
      ~rows:(List.map (fun (n, v) -> (n, [ f1 v ])) rows)
      ~avg_row:[ f1 (avg rows) ]
  in
  (text, [ { label = "avg 8_8_8 speedup (%)"; paper = 6.2; measured = avg rows } ])

(* ----- Fig 7: steered and copy percentages under 8_8_8 ----- *)

let fig7_rows runs =
  List.map
    (fun p ->
      let m = Runs.metrics runs ~scheme:"8_8_8" p in
      (p.Profile.name, Metrics.steered_pct m, Metrics.copy_pct m))
    spec

let fig7 runs =
  let rows = fig7_rows runs in
  let steered = Summary.arithmetic_mean (List.map (fun (_, s, _) -> s) rows) in
  let copies = Summary.arithmetic_mean (List.map (fun (_, _, c) -> c) rows) in
  let text =
    render_benchmark_table
      ~headers:[ "benchmark"; "helper instructions (%)"; "copies (%)" ]
      ~rows:(List.map (fun (n, s, c) -> (n, [ f1 s; f1 c ])) rows)
      ~avg_row:[ f1 steered; f1 copies ]
  in
  ( text,
    [
      { label = "instructions steered to helper (%)"; paper = 15.0; measured = steered };
      { label = "copy instructions (%) [read from Fig 7]"; paper = 13.0;
        measured = copies };
    ] )

(* ----- Figs 8 and 9: copy percentage across the scheme stack ----- *)

let copies_by_scheme runs scheme =
  List.map
    (fun p -> (p.Profile.name, Metrics.copy_pct (Runs.metrics runs ~scheme p)))
    spec

let fig8 runs =
  let base = copies_by_scheme runs "8_8_8" in
  let br = copies_by_scheme runs "+BR" in
  let text =
    render_benchmark_table
      ~headers:[ "benchmark"; "8_8_8 copies (%)"; "+BR copies (%)" ]
      ~rows:(List.map2 (fun (n, a) (_, b) -> (n, [ f1 a; f1 b ])) base br)
      ~avg_row:[ f1 (avg base); f1 (avg br) ]
  in
  let br_m = List.map (fun p -> Runs.metrics runs ~scheme:"+BR" p) spec in
  let steered =
    Summary.arithmetic_mean (List.map Metrics.steered_pct br_m)
  in
  let perf =
    Summary.arithmetic_mean
      (List.map (fun p -> Runs.speedup_pct runs ~scheme:"+BR" p) spec)
  in
  ( text,
    [
      { label = "+BR copy percentage (%)"; paper = 10.8; measured = avg br };
      { label = "+BR steered (%)"; paper = 19.5; measured = steered };
      { label = "+BR speedup (%)"; paper = 9.0; measured = perf };
    ] )

let fig9 runs =
  let base = copies_by_scheme runs "8_8_8" in
  let br = copies_by_scheme runs "+BR" in
  let lr = copies_by_scheme runs "+LR" in
  let rows =
    List.map
      (fun ((n, a), ((_, b), (_, c))) -> (n, [ f1 a; f1 b; f1 c ]))
      (List.combine base (List.combine br lr))
  in
  let text =
    render_benchmark_table
      ~headers:
        [ "benchmark"; "8_8_8 copies (%)"; "+BR copies (%)"; "+BR+LR copies (%)" ]
      ~rows
      ~avg_row:[ f1 (avg base); f1 (avg br); f1 (avg lr) ]
  in
  (text, [ { label = "+LR copy percentage (%)"; paper = 6.4; measured = avg lr } ])

(* ----- Fig 11: carry-not-propagated potential ----- *)

let fig11_rows runs =
  List.map
    (fun p ->
      let tr = Runs.trace runs p in
      ( p.Profile.name,
        Analysis.carry_not_propagated_pct tr ~arith:true,
        Analysis.carry_not_propagated_pct tr ~arith:false ))
    spec

let fig11 runs =
  let rows = fig11_rows runs in
  let arith = Summary.arithmetic_mean (List.map (fun (_, a, _) -> a) rows) in
  let load = Summary.arithmetic_mean (List.map (fun (_, _, l) -> l) rows) in
  let text =
    render_benchmark_table
      ~headers:[ "benchmark"; "arith (%)"; "load (%)" ]
      ~rows:(List.map (fun (n, a, l) -> (n, [ f1 a; f1 l ])) rows)
      ~avg_row:[ f1 arith; f1 load ]
  in
  ( text,
    [
      { label = "carry-local arith (%) [read from Fig 11]"; paper = 50.0;
        measured = arith };
      { label = "carry-local loads (%) [read from Fig 11]"; paper = 70.0;
        measured = load };
    ] )

(* ----- Fig 12: CR performance ----- *)

let fig12_rows runs =
  List.map
    (fun p ->
      ( p.Profile.name,
        Runs.speedup_pct runs ~scheme:"8_8_8" p,
        Runs.speedup_pct runs ~scheme:"+CR" p ))
    spec

let fig12 runs =
  let rows = fig12_rows runs in
  let s888 = Summary.arithmetic_mean (List.map (fun (_, a, _) -> a) rows) in
  let cr = Summary.arithmetic_mean (List.map (fun (_, _, b) -> b) rows) in
  let cr_m = List.map (fun p -> Runs.metrics runs ~scheme:"+CR" p) spec in
  let steered = Summary.arithmetic_mean (List.map Metrics.steered_pct cr_m) in
  let copies = Summary.arithmetic_mean (List.map Metrics.copy_pct cr_m) in
  let text =
    render_benchmark_table
      ~headers:[ "benchmark"; "8_8_8 (%)"; "8_8_8+BR+LR+CR (%)" ]
      ~rows:(List.map (fun (n, a, b) -> (n, [ f1 a; f1 b ])) rows)
      ~avg_row:[ f1 s888; f1 cr ]
  in
  ( text,
    [
      { label = "+CR speedup (%)"; paper = 14.5; measured = cr };
      { label = "+CR steered (%)"; paper = 47.5; measured = steered };
      { label = "+CR copies (%)"; paper = 15.7; measured = copies };
    ] )

(* ----- Fig 13: producer-consumer distance ----- *)

let fig13_rows runs =
  List.map (fun p -> (p.Profile.name, Analysis.mean_distance (Runs.trace runs p))) spec

let fig13 runs =
  let rows = fig13_rows runs in
  let text =
    render_benchmark_table
      ~headers:[ "benchmark"; "mean producer-consumer distance (uops)" ]
      ~rows:(List.map (fun (n, v) -> (n, [ f2 v ])) rows)
      ~avg_row:[ f2 (avg rows) ]
  in
  ( text,
    [ { label = "avg producer-consumer distance [read from Fig 13]"; paper = 4.0;
        measured = avg rows } ] )

(* ----- §3.6: copy prefetching ----- *)

let cp runs =
  let cp_m = List.map (fun p -> Runs.metrics runs ~scheme:"+CP" p) spec in
  let acc = Summary.arithmetic_mean (List.map Metrics.cp_accuracy_pct cp_m) in
  let copies = Summary.arithmetic_mean (List.map Metrics.copy_pct cp_m) in
  let perf =
    Summary.arithmetic_mean
      (List.map (fun p -> Runs.speedup_pct runs ~scheme:"+CP" p) spec)
  in
  let table =
    Table.create [ "benchmark"; "CP accuracy (%)"; "copies (%)"; "speedup (%)" ]
  in
  List.iter2
    (fun p m ->
      Table.add_row table
        [ p.Profile.name; f1 (Metrics.cp_accuracy_pct m); f1 (Metrics.copy_pct m);
          f1 (Runs.speedup_pct runs ~scheme:"+CP" p) ])
    spec cp_m;
  Table.add_separator table;
  Table.add_row table [ "AVG"; f1 acc; f1 copies; f1 perf ];
  ( Table.render table,
    [
      { label = "CP predictor accuracy (%)"; paper = 90.0; measured = acc };
      { label = "+CP copy percentage (%)"; paper = 21.4; measured = copies };
      { label = "+CP speedup (%)"; paper = 16.7; measured = perf };
    ] )

(* ----- §3.7: instruction splitting for imbalance reduction ----- *)

let ir runs =
  let mean f schemes = Summary.arithmetic_mean (List.map f schemes) in
  let ms scheme = List.map (fun p -> Runs.metrics runs ~scheme p) spec in
  let cp_m = ms "+CP" and ir_m = ms "+IR" and nd_m = ms "+IR(nodest)" in
  let speed scheme =
    Summary.arithmetic_mean
      (List.map (fun p -> Runs.speedup_pct runs ~scheme p) spec)
  in
  let ed2 scheme =
    Summary.arithmetic_mean
      (List.map
         (fun p ->
           Model.ed2_improvement_pct
             ~baseline:(Runs.metrics runs ~scheme:"baseline" p)
             (Runs.metrics runs ~scheme p))
         spec)
  in
  let table =
    Table.create
      [ "metric"; "before IR (+CP)"; "+IR"; "+IR(nodest)"; "paper +IR";
        "paper +IR(nodest)" ]
  in
  Table.add_row table
    [ "speedup (%)"; f1 (speed "+CP"); f1 (speed "+IR"); f1 (speed "+IR(nodest)");
      "22.1"; "21.3" ];
  Table.add_row table
    [ "steered (%)"; f1 (mean Metrics.steered_pct cp_m);
      f1 (mean Metrics.steered_pct ir_m); f1 (mean Metrics.steered_pct nd_m);
      "72.4"; "63.6" ];
  Table.add_row table
    [ "copies (%)"; f1 (mean Metrics.copy_pct cp_m); f1 (mean Metrics.copy_pct ir_m);
      f1 (mean Metrics.copy_pct nd_m); "36.9"; "24.4" ];
  Table.add_row table
    [ "w2n imbalance (%)"; f1 (mean Metrics.imbalance_w2n_pct cp_m);
      f1 (mean Metrics.imbalance_w2n_pct ir_m);
      f1 (mean Metrics.imbalance_w2n_pct nd_m); "2.3"; "5.1" ];
  Table.add_row table
    [ "energy-delay2 vs baseline (%)"; f1 (ed2 "+CP"); f1 (ed2 "+IR");
      f1 (ed2 "+IR(nodest)"); "5.1"; "-" ];
  ( Table.render table,
    [
      { label = "+IR speedup (%)"; paper = 22.1; measured = speed "+IR" };
      { label = "+IR steered (%)"; paper = 72.4;
        measured = mean Metrics.steered_pct ir_m };
      { label = "w2n imbalance before IR (%)"; paper = 22.0;
        measured = mean Metrics.imbalance_w2n_pct cp_m };
      { label = "w2n imbalance after IR (%)"; paper = 2.3;
        measured = mean Metrics.imbalance_w2n_pct ir_m };
      { label = "+IR(nodest) speedup (%)"; paper = 21.3;
        measured = speed "+IR(nodest)" };
      { label = "ED2 improvement of +IR (%)"; paper = 5.1; measured = ed2 "+IR" };
    ] )

(* ----- section 4: head-to-head with the ICS'05 asymmetric cluster ----- *)

let related runs =
  let mean xs = Summary.arithmetic_mean xs in
  (* the ICS'05 comparator lives outside the Runs scheme stack, so fan its
     twelve simulations out directly on the shared pool; traces must be
     memoized first because the tasks share the run cache read-only *)
  Runs.ensure_traces runs spec;
  let theirs_by_bench =
    Domain_pool.map_list (Domain_pool.get ())
      (fun p ->
        Pipeline.run ~cfg:Config.ics05 ~decide:Hc_steering.Policy.decide
          ~scheme_name:"ics05" (Runs.trace runs p))
      spec
  in
  let rows =
    List.map2
      (fun p theirs ->
        let base = Runs.metrics runs ~scheme:"baseline" p in
        let ours = Runs.metrics runs ~scheme:"+IR" p in
        (base, ours, theirs))
      spec theirs_by_bench
  in
  let speed pick =
    mean (List.map (fun (b, o, t) -> Metrics.speedup_pct ~baseline:b (pick (o, t))) rows)
  in
  let stat pick f = mean (List.map (fun (_, o, t) -> f (pick (o, t))) rows) in
  let ed2 narrow_bits pick =
    mean
      (List.map
         (fun (b, o, t) ->
           Model.ed2_improvement_pct ~narrow_bits ~baseline:b (pick (o, t)))
         rows)
  in
  let ours = fst and theirs = snd in
  let table =
    Table.create
      [ "metric"; "helper cluster (this paper)"; "ICS'05 asymmetric cluster" ]
  in
  Table.add_row table
    [ "speedup (%)"; f2 (speed ours); f2 (speed theirs) ];
  Table.add_row table
    [ "steered to narrow (%)"; f1 (stat ours Metrics.steered_pct);
      f1 (stat theirs Metrics.steered_pct) ];
  Table.add_row table
    [ "copy uops (%)"; f1 (stat ours Metrics.copy_pct);
      f1 (stat theirs Metrics.copy_pct) ];
  Table.add_row table
    [ "recoveries per 1k uops";
      f2 (stat ours (fun m ->
              1000.
              *. float_of_int
                   (Hc_stats.Counter.get m.Metrics.counters "width_flush")
              /. float_of_int (max 1 m.Metrics.committed)));
      f2 (stat theirs (fun m ->
              1000.
              *. float_of_int (Hc_stats.Counter.get m.Metrics.counters "replay")
              /. float_of_int (max 1 m.Metrics.committed))) ];
  Table.add_row table
    [ "energy-delay2 vs baseline (%)"; f2 (ed2 8 ours); f2 (ed2 20 theirs) ];
  ( Table.render table,
    [
      { label = "ICS'05 steered (paper: >80% on Alpha)"; paper = 80.0;
        measured = stat theirs Metrics.steered_pct };
      { label = "ICS'05 copies (replicated regfile)"; paper = 0.0;
        measured = stat theirs Metrics.copy_pct };
    ] )

(* ----- bottleneck: where do the cycles go, policy by policy ----- *)

module Accounting = Hc_sim.Accounting

let bottleneck_schemes =
  [ "baseline"; "8_8_8"; "+BR"; "+CR"; "+IR"; "static_888"; "static_bidir" ]

let bottleneck runs =
  (* accounting-enabled simulations bypass the memoized metrics cache
     (same pattern as the ICS'05 comparator): the cached campaign numbers
     stay untouched by the instrumented runs. Policies are resolved
     sequentially first — [static_info] is memoized per trace and the
     oracle needs it — then the 72 cells fan out on the pool. *)
  Runs.ensure_traces runs spec;
  let cells =
    List.concat_map
      (fun scheme ->
        List.map
          (fun p ->
            let tr = Runs.trace runs p in
            let cfg, decide =
              Runs.resolve_policy ~static:(Runs.static_info runs tr) ~scheme
            in
            (scheme, cfg, decide, tr))
          spec)
      bottleneck_schemes
  in
  let results =
    Domain_pool.map_list (Domain_pool.get ())
      (fun (scheme, cfg, decide, tr) ->
        let a =
          Accounting.create ~issue_width:cfg.Config.issue_width
            ~commit_width:cfg.Config.commit_width ()
        in
        ignore (Pipeline.run ~accounting:a ~cfg ~decide ~scheme_name:scheme tr);
        (scheme, Accounting.totals a))
      cells
  in
  (* the partition must be exact on every single run before any share is
     worth reading *)
  let violations =
    List.length (List.filter (fun (_, s) -> not (Accounting.consistent s)) results)
  in
  (* per-scheme aggregate over the 12 benchmarks *)
  let agg =
    List.map
      (fun scheme ->
        let mine =
          List.filter_map
            (fun (s, t) -> if s = scheme then Some t else None)
            results
        in
        ( scheme,
          List.fold_left Accounting.add_totals (List.hd mine) (List.tl mine) ))
      bottleneck_schemes
  in
  let share lane (_, s) cat = Accounting.share_pct s ~lane cat in
  let lane_table lane =
    let t =
      Table.create
        (Printf.sprintf "%s slots (%%)" (Accounting.lane_name lane)
        :: bottleneck_schemes)
    in
    List.iter
      (fun cat ->
        Table.add_row t
          (Accounting.cat_name cat
          :: List.map (fun a -> f1 (share lane a cat)) agg))
      Accounting.categories;
    Table.render t
  in
  let text =
    String.concat "\n"
      [ lane_table Accounting.lane_wide; lane_table Accounting.lane_narrow;
        lane_table Accounting.lane_commit;
        Printf.sprintf
          "partition invariant: %s (sum(categories) == width x rounds, \
           exact, %d runs)"
          (if violations = 0 then "exact" else "VIOLATED")
          (List.length results) ]
  in
  let pick scheme = List.assoc scheme agg in
  let issue_share scheme lane =
    Accounting.share_pct (pick scheme) ~lane Accounting.Issued
  in
  ( text,
    [
      { label = "runs violating the slot partition (count)"; paper = 0.;
        measured = float_of_int violations };
      { label = "wide issued-slot share, baseline (%)"; paper = 30.;
        measured = issue_share "baseline" Accounting.lane_wide };
      { label = "narrow issued-slot share, +IR (%)"; paper = 10.;
        measured = issue_share "+IR" Accounting.lane_narrow };
      { label = "narrow wait-copy share, 8_8_8 (%)"; paper = 12.;
        measured =
          Accounting.share_pct (pick "8_8_8") ~lane:Accounting.lane_narrow
            Accounting.Wait_copy };
    ] )

(* ----- Table 2 / Fig 14: the application suite ----- *)

let tab2 _runs =
  let table = Table.create [ "category"; "#traces"; "description" ] in
  List.iter
    (fun (e : Workloads.entry) ->
      Table.add_row table
        [ Profile.category_to_string e.Workloads.category;
          string_of_int e.Workloads.count; e.Workloads.description ])
    Workloads.table2;
  Table.add_separator table;
  Table.add_row table [ "total"; string_of_int Workloads.suite_size; "" ];
  ( Table.render table,
    [ { label = "suite size (Table 2 sums to 409; text says 412)"; paper = 409.;
        measured = float_of_int Workloads.suite_size } ] )

let suite_profiles ?apps_per_category () =
  let take n l =
    List.filteri (fun i _ -> match n with None -> true | Some k -> i < k) l
  in
  List.concat_map
    (fun (e : Workloads.entry) ->
      take apps_per_category (Workloads.category_apps e.Workloads.category))
    Workloads.table2

let fig14_speedups ?apps_per_category ?(length = 8_000) () =
  let cfg_base = Hc_sim.Config.baseline in
  let cfg_ir =
    Config.with_scheme Config.default (Config.find_scheme "+IR")
  in
  (* each app is fully independent (own generated trace, own pipeline
     states), so the whole suite fans out across the domain pool *)
  Domain_pool.map_list (Domain_pool.get ())
    (fun p ->
      let tr = Generator.generate_sliced ~length p in
      let base =
        Pipeline.run ~cfg:cfg_base ~decide:Hc_steering.Policy.decide
          ~scheme_name:"baseline" tr
      in
      let ir =
        Pipeline.run ~cfg:cfg_ir ~decide:Hc_steering.Policy.decide
          ~scheme_name:"+IR" tr
      in
      (p, Metrics.speedup_pct ~baseline:base ir))
    (suite_profiles ?apps_per_category ())

let fig14_category_rows ?apps_per_category ?length () =
  let speedups = fig14_speedups ?apps_per_category ?length () in
  List.map
    (fun (e : Workloads.entry) ->
      let cat = e.Workloads.category in
      let own =
        List.filter_map
          (fun ((p : Profile.t), s) ->
            if p.Profile.category = cat then Some s else None)
          speedups
      in
      (Profile.category_to_string cat, Summary.arithmetic_mean own))
    Workloads.table2

let fig14_curve ?apps_per_category ?length () =
  fig14_speedups ?apps_per_category ?length ()
  |> List.map (fun (_, s) -> 1. +. (s /. 100.))
  |> List.sort Float.compare

let fig14 _runs =
  (* the suite is independent of the SPEC run cache; subsample for the
     default rendering and let the bench harness run it in full *)
  let apps_per_category = 12 in
  let rows = fig14_category_rows ~apps_per_category () in
  let table = Table.create [ "category"; "+IR speedup (%)" ] in
  List.iter (fun (c, s) -> Table.add_row table [ c; f1 s ]) rows;
  Table.add_separator table;
  let overall = avg rows in
  Table.add_row table [ "AVG"; f1 overall ];
  let curve = fig14_curve ~apps_per_category () in
  let n = List.length curve in
  let pick q = List.nth curve (min (n - 1) (int_of_float (q *. float_of_int n))) in
  let curve_line =
    Printf.sprintf
      "S-curve (baseline=1.0): p10=%.2f p25=%.2f median=%.2f p75=%.2f p90=%.2f max=%.2f"
      (pick 0.10) (pick 0.25) (pick 0.50) (pick 0.75) (pick 0.90)
      (List.nth curve (n - 1))
  in
  ( Table.render table ^ "\n" ^ curve_line,
    [ { label = "avg speedup across the suite (%)"; paper = 11.0;
        measured = overall } ] )

(* ----- steering attribution: why each helper-cluster commit is there ----- *)

let attrib_schemes =
  [ "8_8_8"; "+BR"; "+LR"; "+CR"; "+CP"; "+IR"; "+IR(nodest)"; "static_888";
    "static_bidir" ]

let attrib runs =
  let mean f scheme =
    Summary.arithmetic_mean
      (List.map (fun p -> f (Runs.metrics runs ~scheme p)) spec)
  in
  let table =
    Table.create
      [ "scheme"; "steered (%)"; "888 (%)"; "BR (%)"; "CR (%)"; "IR (%)";
        "wide demoted (%)" ]
  in
  List.iter
    (fun scheme ->
      Table.add_row table
        [ scheme; f1 (mean Metrics.steered_pct scheme);
          f1 (mean Metrics.steered_888_pct scheme);
          f1 (mean Metrics.steered_br_pct scheme);
          f1 (mean Metrics.steered_cr_pct scheme);
          f1 (mean Metrics.steered_ir_pct scheme);
          f1 (mean Metrics.wide_demoted_pct scheme) ])
    attrib_schemes;
  (* the commit-time attribution must account for every steered uop in
     every (scheme x benchmark) cell this pass simulated *)
  let coverage =
    if
      List.for_all
        (fun scheme ->
          List.for_all
            (fun p -> Metrics.attrib_consistent (Runs.metrics runs ~scheme p))
            spec)
        attrib_schemes
    then 100.0
    else 0.0
  in
  ( Table.render table,
    [ { label = "attribution coverage of steered uops (%)"; paper = 100.0;
        measured = coverage } ] )

(* ----- static oracle headroom: the predictors vs the provable bounds ----- *)

(* Three-way comparison per benchmark: the forward known-bits oracle
   (static_888), the bidirectional forward+live-bits oracle
   (static_bidir), and the dynamic 8_8_8 predictors. Monotone by
   construction — forward ⊆ bidir (asserted in [Static.analyze_bidir],
   surfaced as lint W203) — so the table reads as a ladder: how much of
   the predictors' steered share each tier of static proof can certify
   with zero recoveries. *)
let headroom runs =
  let flushes m = Hc_stats.Counter.get m.Metrics.counters "width_flush" in
  let rows =
    List.map
      (fun p ->
        let pred = Runs.metrics runs ~scheme:"8_8_8" p in
        let fwd = Runs.metrics runs ~scheme:"static_888" p in
        let bidir = Runs.metrics runs ~scheme:"static_bidir" p in
        (p.Profile.name, pred, fwd, bidir))
      spec
  in
  let table =
    Table.create
      [ "benchmark"; "888 steered (%)"; "fwd provable (%)";
        "bidir provable (%)"; "888 recov"; "fwd recov"; "bidir recov";
        "888 ipc"; "fwd ipc"; "bidir ipc" ]
  in
  List.iter
    (fun (name, pred, fwd, bidir) ->
      Table.add_row table
        [ name; f1 (Metrics.steered_888_pct pred);
          f1 (Metrics.steered_pct fwd); f1 (Metrics.steered_pct bidir);
          string_of_int (flushes pred); string_of_int (flushes fwd);
          string_of_int (flushes bidir); f2 (Metrics.ipc pred);
          f2 (Metrics.ipc fwd); f2 (Metrics.ipc bidir) ])
    rows;
  Table.add_separator table;
  let mean f = Summary.arithmetic_mean (List.map f rows) in
  let pred_steered =
    mean (fun (_, pred, _, _) -> Metrics.steered_888_pct pred)
  in
  let fwd_provable = mean (fun (_, _, fwd, _) -> Metrics.steered_pct fwd) in
  let bidir_provable =
    mean (fun (_, _, _, bidir) -> Metrics.steered_pct bidir)
  in
  let sum f = List.fold_left (fun acc r -> acc + f r) 0 rows in
  let fwd_recov = sum (fun (_, _, fwd, _) -> flushes fwd) in
  let bidir_recov = sum (fun (_, _, _, bidir) -> flushes bidir) in
  Table.add_row table
    [ "AVG"; f1 pred_steered; f1 fwd_provable; f1 bidir_provable;
      string_of_int (sum (fun (_, pred, _, _) -> flushes pred));
      string_of_int fwd_recov; string_of_int bidir_recov;
      f2 (mean (fun (_, pred, _, _) -> Metrics.ipc pred));
      f2 (mean (fun (_, _, fwd, _) -> Metrics.ipc fwd));
      f2 (mean (fun (_, _, _, bidir) -> Metrics.ipc bidir)) ];
  (* monotonicity headline: count benchmarks where the bidir oracle
     steered below the forward one — must be zero *)
  let non_monotone =
    List.length
      (List.filter
         (fun (_, _, fwd, bidir) ->
           bidir.Metrics.steered_narrow < fwd.Metrics.steered_narrow)
         rows)
  in
  ( Table.render table,
    [
      { label = "static_888 width-violation recoveries (zero by construction)";
        paper = 0.0; measured = float_of_int fwd_recov };
      { label =
          "static_bidir width-violation recoveries (zero by construction)";
        paper = 0.0; measured = float_of_int bidir_recov };
      { label = "benchmarks where bidir steers below forward (monotonicity)";
        paper = 0.0; measured = float_of_int non_monotone };
      { label = "forward provably-narrow steering bound (%)"; paper = 0.0;
        measured = fwd_provable };
      { label = "bidirectional provably-safe steering bound (%)"; paper = 0.0;
        measured = bidir_provable };
      { label = "predicted 8_8_8 steered share (%)"; paper = 15.0;
        measured = pred_steered };
    ] )

let all =
  [
    { id = "fig1"; title = "Narrow data-width dependent register operands";
      paper_claim = "on average 65% of consumers are narrow-width dependent";
      run = prep ~traces:true fig1 };
    { id = "opmix"; title = "ALU operand-width mix";
      paper_claim = "39.4% one narrow / 3.3% two-narrow-wide / 43.5% two-narrow-narrow";
      run = prep ~traces:true opmix };
    { id = "fig5"; title = "Width prediction accuracy";
      paper_claim = "93.5% accuracy; fatal mispredictions 0.83% with confidence";
      run = prep ~schemes:[ "8_8_8" ] fig5 };
    { id = "fig6"; title = "Performance of the 8_8_8 scheme";
      paper_claim = "6.2% average speedup; gcc best, bzip2 worst";
      run = prep ~schemes:[ "baseline"; "8_8_8" ] fig6 };
    { id = "fig7"; title = "Helper-cluster and copy percentages (8_8_8)";
      paper_claim = "15% of instructions steered to the helper cluster";
      run = prep ~schemes:[ "8_8_8" ] fig7 };
    { id = "fig8"; title = "Copy decrease from BR";
      paper_claim = "19.5% steered, 10.8% copies, 9% speedup";
      run = prep ~schemes:[ "baseline"; "8_8_8"; "+BR" ] fig8 };
    { id = "fig9"; title = "Copy minimization from LR";
      paper_claim = "copies drop to 6.4% from 10.8%";
      run = prep ~schemes:[ "8_8_8"; "+BR"; "+LR" ] fig9 };
    { id = "fig11"; title = "Carry-not-propagated potential";
      paper_claim = "substantial carry locality for loads and arith";
      run = prep ~traces:true fig11 };
    { id = "fig12"; title = "Performance of the CR scheme";
      paper_claim = "47.5% steered, 15.7% copies, 14.5% speedup";
      run = prep ~schemes:[ "baseline"; "8_8_8"; "+CR" ] fig12 };
    { id = "fig13"; title = "Producer-consumer distance";
      paper_claim = "IA-32 distances suit copy prefetching (about 2-6 uops)";
      run = prep ~traces:true fig13 };
    { id = "cp"; title = "Copy prefetching";
      paper_claim = "90% CP accuracy; copies 21.4%; speedup 16.7%";
      run = prep ~schemes:[ "baseline"; "+CP" ] cp };
    { id = "ir"; title = "Instruction splitting for imbalance reduction";
      paper_claim =
        "22.1% speedup at 72.4% steered; imbalance 22%->2.3%; ED2 +5.1%";
      run = prep ~schemes:[ "baseline"; "+CP"; "+IR"; "+IR(nodest)" ] ir };
    { id = "attrib"; title = "Steering attribution by rule (commit time)";
      paper_claim =
        "every helper-cluster commit traces to 888/BR/CR/IR or a demotion";
      run = prep ~schemes:attrib_schemes attrib };
    { id = "headroom";
      title = "Static width-inference oracles vs the 8_8_8 predictors";
      paper_claim =
        "provably-safe steering incurs zero width-violation recoveries; \
         the bidirectional bound dominates the forward one";
      run = prep ~schemes:[ "8_8_8"; "static_888"; "static_bidir" ] headroom };
    { id = "related";
      title = "Head-to-head: helper cluster vs ICS'05 asymmetric cluster";
      paper_claim =
        "section 4: copies + flush + confidence (this paper) vs replicated          register file + replay (Gonzalez et al.)";
      run = prep ~schemes:[ "baseline"; "+IR" ] related };
    { id = "bottleneck";
      title = "Where do the cycles go: top-down stall profile per policy";
      paper_claim =
        "the policy stack converts dispatch/copy stalls into issued slots \
         (diagnostic; no single paper number)";
      run = bottleneck };
    { id = "tab2"; title = "Workload suite (Table 2)";
      paper_claim = "7 categories; table counts sum to 409 (text says 412)";
      run = tab2 };
    { id = "fig14"; title = "Helper cluster on the full application suite";
      paper_claim = "consistent gains; 11% average across the suite";
      run = fig14 };
  ]

let find id =
  match List.find_opt (fun e -> e.id = id) all with
  | Some e -> e
  | None -> raise Not_found
