module Profile = Hc_trace.Profile
module Trace = Hc_trace.Trace
module Codec = Hc_trace.Codec
module Generator = Hc_trace.Generator
module Metrics = Hc_sim.Metrics
module Counter = Hc_stats.Counter
module Json = Hc_report.Json

module Registry = Hc_obs.Registry
module Span = Hc_obs.Span

type t = {
  root : string;
  h_traces : int Atomic.t;
  m_traces : int Atomic.t;
  h_runs : int Atomic.t;
  m_runs : int Atomic.t;
  heal_traces : int Atomic.t;
  heal_runs : int Atomic.t;
}

(* Registry mirrors: every ad-hoc Atomic above has a registry twin,
   incremented at the same site, so a scrape reproduces the ground-truth
   counts exactly (asserted in test_registry.ml). One atomic load when
   observability is off. *)
let obs_count name ~kind ?(n = 1) () =
  Registry.with_ambient (fun r ->
      Registry.add
        (Registry.counter r ~labels:[ ("kind", kind) ]
           ~help:"Artifact-cache events by entry kind" name)
        n)

let obs_bytes name n =
  Registry.with_ambient (fun r ->
      Registry.add
        (Registry.counter r ~help:"Artifact-cache bytes moved" name)
        n)

(* bump to invalidate every existing entry at once (key-space version) *)
let cache_version = 1

let metrics_schema = 5 (* the Metrics.to_json "schema" this build writes *)

let default_root () =
  match Sys.getenv_opt "HC_CACHE_DIR" with
  | Some d when d <> "" -> d
  | Some _ | None -> "_hc_cache"

let create ?root () =
  {
    root = (match root with Some r -> r | None -> default_root ());
    h_traces = Atomic.make 0;
    m_traces = Atomic.make 0;
    h_runs = Atomic.make 0;
    m_runs = Atomic.make 0;
    heal_traces = Atomic.make 0;
    heal_runs = Atomic.make 0;
  }

let of_cli = function
  | Some "none" -> None
  | Some dir -> Some (create ~root:dir ())
  | None -> (
    match Sys.getenv_opt "HC_CACHE_DIR" with
    | Some "none" -> None
    | Some _ | None -> Some (create ()))

let root t = t.root

let traces_dir t = Filename.concat t.root "traces"

let runs_dir t = Filename.concat t.root "runs"

(* ----- keys and paths ----- *)

let digest s = Digest.to_hex (Digest.string s)

let trace_key ~(profile : Profile.t) ~length =
  digest
    (Printf.sprintf "trace|codec-v%d|cache-v%d|%s|len=%d|sliced"
       Codec.schema_version cache_version (Profile.fingerprint profile) length)

let run_key ~scheme ~(profile : Profile.t) ~length =
  digest
    (Printf.sprintf "run|metrics-v%d|codec-v%d|cache-v%d|scheme=%s|%s|len=%d"
       metrics_schema Codec.schema_version cache_version scheme
       (Profile.fingerprint profile) length)

let trace_path t ~profile ~length =
  Filename.concat (traces_dir t) (trace_key ~profile ~length ^ ".hct")

let run_path t ~scheme ~profile ~length =
  Filename.concat (runs_dir t) (run_key ~scheme ~profile ~length ^ ".json")

(* ----- raw file I/O ----- *)

let read_file path =
  match open_in_bin path with
  | ic ->
    Some
      (Fun.protect
         ~finally:(fun () -> close_in ic)
         (fun () -> really_input_string ic (in_channel_length ic)))
  | exception Sys_error _ -> None

let remove_quietly path = try Sys.remove path with Sys_error _ -> ()

let publish_seq = Atomic.make 0

(* Atomic publish: write a unique temp name in the destination directory
   (rename is only atomic within a filesystem) and rename over the final
   path. Concurrent writers of the same key both succeed; last rename
   wins with identical content. *)
let write_atomic ~path data =
  Telemetry.mkdir_p (Filename.dirname path);
  let tmp =
    Printf.sprintf "%s.tmp-%d-%d" path (Unix.getpid ())
      (Atomic.fetch_and_add publish_seq 1)
  in
  let oc = open_out_bin tmp in
  ( try
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () -> output_string oc data)
    with e ->
      remove_quietly tmp;
      raise e );
  try Sys.rename tmp path
  with Sys_error _ as e ->
    remove_quietly tmp;
    raise e

(* ----- traces ----- *)

let find_trace t ~profile ~length =
  Span.with_span "cache-lookup"
    ~meta:[ ("kind", "trace"); ("name", profile.Profile.name) ]
    (fun () ->
      let path = trace_path t ~profile ~length in
      match read_file path with
      | None ->
        Atomic.incr t.m_traces;
        obs_count "hc_cache_misses_total" ~kind:"trace" ();
        None
      | Some data -> (
        obs_bytes "hc_cache_read_bytes_total" (String.length data);
        match Codec.decode ~profile data with
        | tr ->
          Atomic.incr t.h_traces;
          obs_count "hc_cache_hits_total" ~kind:"trace" ();
          Some tr
        | exception (Codec.Corrupt _ | Failure _ | Invalid_argument _) ->
          (* self-heal: drop the bad entry so the caller's regeneration
             republishes a good one *)
          remove_quietly path;
          Atomic.incr t.m_traces;
          Atomic.incr t.heal_traces;
          obs_count "hc_cache_misses_total" ~kind:"trace" ();
          obs_count "hc_cache_self_heals_total" ~kind:"trace" ();
          None))

let store_trace t ~profile ~length tr =
  let data = Codec.encode tr in
  obs_count "hc_cache_stores_total" ~kind:"trace" ();
  obs_bytes "hc_cache_written_bytes_total" (String.length data);
  write_atomic ~path:(trace_path t ~profile ~length) data

let generate profile ~length =
  Span.with_span "generate"
    ~meta:[ ("benchmark", profile.Profile.name) ]
    (fun () -> Generator.generate_sliced ~length profile)

let trace_or_generate cache ~profile ~length =
  match cache with
  | None -> generate profile ~length
  | Some t -> (
    match find_trace t ~profile ~length with
    | Some tr -> tr
    | None ->
      let tr = generate profile ~length in
      store_trace t ~profile ~length tr;
      tr)

(* ----- run metrics ----- *)

(* Rebuild a Metrics.t from its schema-4 JSON. Every stored field is an
   int (the floats in the file — cycles, ipc — are derived), so the
   reconstruction is exact; the caller double-checks by re-serializing. *)

let stall_of_json j =
  let module Acc = Hc_sim.Accounting in
  let lane_obj name =
    match Json.member name j with
    | Some (Json.Object _ as o) -> o
    | Some _ | None -> failwith ("metrics JSON: bad stall lane " ^ name)
  in
  let int_in o name =
    match Json.member name o with
    | Some (Json.Number raw) -> int_of_string raw
    | Some _ | None -> failwith ("metrics JSON: bad stall field " ^ name)
  in
  let t =
    Acc.zero_totals ~issue_width:(int_in j "issue_width")
      ~commit_width:(int_in j "commit_width")
  in
  List.iter
    (fun lane ->
      let o = lane_obj (Acc.lane_name lane) in
      t.Acc.rounds.(lane) <- int_in o "rounds";
      List.iter
        (fun c ->
          t.Acc.slots.(lane).(Acc.cat_index c) <- int_in o (Acc.cat_name c))
        Acc.categories)
    [ Acc.lane_wide; Acc.lane_narrow; Acc.lane_commit ];
  t

let metrics_of_json j =
  let int name =
    match Json.member name j with
    | Some (Json.Number raw) -> int_of_string raw
    | Some _ | None -> failwith ("metrics JSON: missing int field " ^ name)
  in
  let str name =
    match Option.bind (Json.member name j) Json.string_value with
    | Some s -> s
    | None -> failwith ("metrics JSON: missing string field " ^ name)
  in
  if int "schema" <> metrics_schema then failwith "metrics JSON: wrong schema";
  let counters = Counter.create () in
  ( match Json.member "counters" j with
  | Some (Json.Object members) ->
    List.iter
      (fun (name, v) ->
        match v with
        | Json.Number raw -> Counter.add counters (Json.unescape name) (int_of_string raw)
        | _ -> failwith "metrics JSON: non-numeric counter")
      members
  | Some _ | None -> failwith "metrics JSON: missing counters" );
  {
    Metrics.name = str "name";
    scheme_name = str "scheme";
    committed = int "committed";
    ticks = int "ticks";
    copies = int "copies";
    steered_narrow = int "steered_narrow";
    split_uops = int "split_uops";
    steered_888 = int "steered_888";
    steered_br = int "steered_br";
    steered_cr = int "steered_cr";
    steered_ir = int "steered_ir";
    steered_other = int "steered_other";
    wide_default = int "wide_default";
    wide_demoted = int "wide_demoted";
    wpred_correct = int "wpred_correct";
    wpred_fatal = int "wpred_fatal";
    wpred_nonfatal = int "wpred_nonfatal";
    prefetch_copies = int "prefetch_copies";
    prefetch_useful = int "prefetch_useful";
    nready_w2n = int "nready_w2n";
    nready_n2w = int "nready_n2w";
    issued_total = int "issued_total";
    static_narrow_bound =
      (match Json.member "static_narrow_bound" j with
      | Some (Json.Number raw) -> Some (int_of_string raw)
      | Some _ -> failwith "metrics JSON: bad static_narrow_bound"
      | None -> None);
    static_bidir_bound =
      (match Json.member "static_bidir_bound" j with
      | Some (Json.Number raw) -> Some (int_of_string raw)
      | Some _ -> failwith "metrics JSON: bad static_bidir_bound"
      | None -> None);
    stall =
      (match Json.member "stall" j with
      | Some (Json.Object _ as o) -> Some (stall_of_json o)
      | Some _ -> failwith "metrics JSON: bad stall"
      | None -> None);
    counters;
  }

let decode_metrics data =
  let j = Json.parse_exn data in
  let m = metrics_of_json j in
  (* bit-identical warm reads: the decoded record must re-serialize to
     exactly the stored bytes, or the entry is treated as corrupt *)
  if Metrics.to_json m <> data then failwith "metrics JSON: lossy round-trip";
  m

let find_metrics t ~scheme ~profile ~length =
  Span.with_span "cache-lookup"
    ~meta:
      [ ("kind", "run"); ("name", profile.Profile.name); ("scheme", scheme) ]
    (fun () ->
      let path = run_path t ~scheme ~profile ~length in
      match read_file path with
      | None ->
        Atomic.incr t.m_runs;
        obs_count "hc_cache_misses_total" ~kind:"run" ();
        None
      | Some data -> (
        obs_bytes "hc_cache_read_bytes_total" (String.length data);
        match decode_metrics data with
        | m ->
          Atomic.incr t.h_runs;
          obs_count "hc_cache_hits_total" ~kind:"run" ();
          Some m
        | exception Failure _ ->
          remove_quietly path;
          Atomic.incr t.m_runs;
          Atomic.incr t.heal_runs;
          obs_count "hc_cache_misses_total" ~kind:"run" ();
          obs_count "hc_cache_self_heals_total" ~kind:"run" ();
          None))

let store_metrics t ~scheme ~profile ~length m =
  let data = Metrics.to_json m in
  obs_count "hc_cache_stores_total" ~kind:"run" ();
  obs_bytes "hc_cache_written_bytes_total" (String.length data);
  write_atomic ~path:(run_path t ~scheme ~profile ~length) data

(* ----- inspection, verification, eviction ----- *)

type counts = {
  trace_hits : int;
  trace_misses : int;
  run_hits : int;
  run_misses : int;
  trace_heals : int;
  run_heals : int;
}

let counts t =
  {
    trace_hits = Atomic.get t.h_traces;
    trace_misses = Atomic.get t.m_traces;
    run_hits = Atomic.get t.h_runs;
    run_misses = Atomic.get t.m_runs;
    trace_heals = Atomic.get t.heal_traces;
    run_heals = Atomic.get t.heal_runs;
  }

type entry = { e_path : string; e_trace : bool; e_bytes : int; e_mtime : float }

let scan_dir ~trace dir =
  match Sys.readdir dir with
  | names ->
    Array.to_list names
    |> List.filter_map (fun name ->
           let want_ext = if trace then ".hct" else ".json" in
           if Filename.check_suffix name want_ext then
             let path = Filename.concat dir name in
             match Unix.stat path with
             | { Unix.st_size; st_mtime; st_kind = Unix.S_REG; _ } ->
               Some
                 { e_path = path; e_trace = trace; e_bytes = st_size;
                   e_mtime = st_mtime }
             | _ | (exception Unix.Unix_error _) -> None
           else None)
  | exception Sys_error _ -> []

let entries t =
  scan_dir ~trace:true (traces_dir t) @ scan_dir ~trace:false (runs_dir t)

type disk = {
  trace_entries : int;
  trace_bytes : int;
  run_entries : int;
  run_bytes : int;
}

let disk t =
  List.fold_left
    (fun acc e ->
      if e.e_trace then
        { acc with
          trace_entries = acc.trace_entries + 1;
          trace_bytes = acc.trace_bytes + e.e_bytes }
      else
        { acc with
          run_entries = acc.run_entries + 1;
          run_bytes = acc.run_bytes + e.e_bytes })
    { trace_entries = 0; trace_bytes = 0; run_entries = 0; run_bytes = 0 }
    (entries t)

type bad = { path : string; reason : string }

let verify ?(fix = false) t =
  let check e =
    match read_file e.e_path with
    | None -> Some { path = e.e_path; reason = "unreadable" }
    | Some data -> (
      if e.e_trace then
        match Codec.decode data with
        | (_ : Trace.t) -> None
        | exception Codec.Corrupt msg -> Some { path = e.e_path; reason = msg }
        | exception (Failure msg | Invalid_argument msg) ->
          Some { path = e.e_path; reason = msg }
      else
        match decode_metrics data with
        | (_ : Metrics.t) -> None
        | exception Failure msg -> Some { path = e.e_path; reason = msg })
  in
  let bad = List.filter_map check (entries t) in
  if fix then List.iter (fun b -> remove_quietly b.path) bad;
  bad

let gc t ~max_bytes =
  let es =
    List.sort (fun a b -> compare a.e_mtime b.e_mtime) (entries t)
  in
  let total = List.fold_left (fun acc e -> acc + e.e_bytes) 0 es in
  let excess = ref (total - max_bytes) in
  let freed =
    List.filter_map
      (fun e ->
        if !excess > 0 then begin
          excess := !excess - e.e_bytes;
          remove_quietly e.e_path;
          Some e
        end
        else None)
      es
  in
  (* gc churn lands in the same scrape as hits/misses: freed entries and
     bytes, by entry kind *)
  List.iter
    (fun e ->
      let kind = if e.e_trace then "trace" else "run" in
      obs_count "hc_cache_gc_freed_entries_total" ~kind ();
      Registry.with_ambient (fun r ->
          Registry.add
            (Registry.counter r
               ~labels:[ ("kind", kind) ]
               ~help:"Artifact-cache bytes freed by gc eviction"
               "hc_cache_gc_freed_bytes_total")
            e.e_bytes))
    freed;
  List.map (fun e -> e.e_path) freed
