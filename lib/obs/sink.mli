(** A telemetry sink: where the pipeline's instrumentation points send
    their data when observability is on.

    The pipeline holds a [Sink.t option]; with [None] every
    instrumentation point is a single match on an immutable field and the
    hot path allocates nothing. With a sink attached, {!emit} pushes
    lifecycle events into a bounded {!Ring} (when [tracing]) and
    {!sample} appends interval deltas to the metrics time series (when
    [interval > 0]). One sink belongs to one pipeline run; it is not
    thread-safe and never shared across domains. *)

type t

val create : ?ring_capacity:int -> ?interval:int -> tracing:bool -> unit -> t
(** [tracing] allocates the event ring ([ring_capacity] events, default
    65536). [interval] (ticks, default 0 = off) arms the interval
    sampler; the pipeline drives the actual sampling cadence. *)

val tracing : t -> bool
val interval : t -> int

val emit : t -> Event.t -> unit
(** No-op when the sink was created without [tracing]. *)

val events : t -> Event.t list
(** Retained events, oldest first. *)

val events_dropped : t -> int
(** Events overwritten by ring wrap-around. *)

val events_pushed : t -> int

val sample : t -> tick:int -> iq_wide:int -> iq_narrow:int -> rob:int -> Sample.totals -> unit
(** Close the open interval at [tick] with the cumulative [totals]; the
    sink stores the delta against the previous snapshot. Ignored when
    [tick] has not advanced past the previous snapshot. *)

val samples : t -> Sample.t list
(** Chronological interval series. *)

val sample_count : t -> int

val summary : t -> string
(** One-line sink summary: events pushed/dropped and sample count. *)

val dropped_warning : t -> string option
(** A human-readable warning when ring wrap-around dropped events
    ([None] when the trace window is complete). *)
