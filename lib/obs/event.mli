(** Per-uop pipeline lifecycle events.

    One flat record per event, pushed into a {!Ring} by the pipeline's
    instrumentation points. The record is int-heavy on purpose: building
    one allocates a single small block, and only when a tracing sink is
    attached — the hot path with tracing off never constructs events. *)

type kind =
  | Dispatch  (** renamed and inserted into an issue queue *)
  | Issue  (** won an issue slot *)
  | Writeback  (** execution completed; carries the span timestamps *)
  | Commit  (** retired from the ROB head *)
  | Squash  (** squashed-and-resteered by a fatal width misprediction *)
  | Flush  (** a width-mispredict flush fired (the offender's event) *)
  | Replay  (** ICS'05-style single-uop replay *)

type t = {
  tick : int;  (** fast-tick timestamp *)
  kind : kind;
  id : int;  (** pipeline node id (dispatch order) *)
  trace_idx : int;  (** trace position; [-1] for copy uops *)
  cluster : int;  (** 0 = wide, 1 = narrow, [-1] = none *)
  name : string;  (** opcode name, ["copy"], or ["slice"] *)
  a : int;  (** kind-specific: [Writeback] stores the dispatch tick *)
  b : int;  (** kind-specific: [Writeback] stores the issue tick *)
}

val dummy : t
(** Ring padding; never yielded by ring iteration. *)

val kind_name : kind -> string
val cluster_name : int -> string
val pp : Format.formatter -> t -> unit
