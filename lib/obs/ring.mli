(** Bounded ring buffer for telemetry events.

    A fixed-capacity overwrite-oldest buffer: pushing never allocates and
    never grows, so a tracing run has a hard memory ceiling regardless of
    trace length. The exporter reads the retained suffix oldest-first and
    reports how many events were overwritten. *)

type 'a t

val create : capacity:int -> dummy:'a -> 'a t
(** [dummy] pads unwritten slots; it is never yielded by iteration.
    @raise Invalid_argument when [capacity <= 0]. *)

val capacity : 'a t -> int

val push : 'a t -> 'a -> unit
(** O(1); overwrites the oldest element once the ring is full. *)

val length : 'a t -> int
(** Elements currently retained ([<= capacity]). *)

val pushed : 'a t -> int
(** Total elements ever pushed. *)

val dropped : 'a t -> int
(** Elements overwritten: [pushed - capacity] when positive, else 0. *)

val iter : ('a -> unit) -> 'a t -> unit
(** Oldest retained element first. *)

val to_list : 'a t -> 'a list
(** Retained elements, oldest first. *)

val fold : ('b -> 'a -> 'b) -> 'b -> 'a t -> 'b
