type totals = {
  committed : int;
  steered_narrow : int;
  copies : int;
  split_uops : int;
  steered_888 : int;
  steered_br : int;
  steered_cr : int;
  steered_ir : int;
  steered_other : int;
  wide_default : int;
  wide_demoted : int;
  wpred_correct : int;
  wpred_fatal : int;
  wpred_nonfatal : int;
  prefetch_copies : int;
  prefetch_useful : int;
  nready_w2n : int;
  nready_n2w : int;
  issued_total : int;
}

let zero_totals =
  {
    committed = 0; steered_narrow = 0; copies = 0; split_uops = 0;
    steered_888 = 0; steered_br = 0; steered_cr = 0; steered_ir = 0;
    steered_other = 0; wide_default = 0; wide_demoted = 0;
    wpred_correct = 0; wpred_fatal = 0; wpred_nonfatal = 0;
    prefetch_copies = 0; prefetch_useful = 0;
    nready_w2n = 0; nready_n2w = 0; issued_total = 0;
  }

let sub_totals a b =
  {
    committed = a.committed - b.committed;
    steered_narrow = a.steered_narrow - b.steered_narrow;
    copies = a.copies - b.copies;
    split_uops = a.split_uops - b.split_uops;
    steered_888 = a.steered_888 - b.steered_888;
    steered_br = a.steered_br - b.steered_br;
    steered_cr = a.steered_cr - b.steered_cr;
    steered_ir = a.steered_ir - b.steered_ir;
    steered_other = a.steered_other - b.steered_other;
    wide_default = a.wide_default - b.wide_default;
    wide_demoted = a.wide_demoted - b.wide_demoted;
    wpred_correct = a.wpred_correct - b.wpred_correct;
    wpred_fatal = a.wpred_fatal - b.wpred_fatal;
    wpred_nonfatal = a.wpred_nonfatal - b.wpred_nonfatal;
    prefetch_copies = a.prefetch_copies - b.prefetch_copies;
    prefetch_useful = a.prefetch_useful - b.prefetch_useful;
    nready_w2n = a.nready_w2n - b.nready_w2n;
    nready_n2w = a.nready_n2w - b.nready_n2w;
    issued_total = a.issued_total - b.issued_total;
  }

let add_totals a b =
  {
    committed = a.committed + b.committed;
    steered_narrow = a.steered_narrow + b.steered_narrow;
    copies = a.copies + b.copies;
    split_uops = a.split_uops + b.split_uops;
    steered_888 = a.steered_888 + b.steered_888;
    steered_br = a.steered_br + b.steered_br;
    steered_cr = a.steered_cr + b.steered_cr;
    steered_ir = a.steered_ir + b.steered_ir;
    steered_other = a.steered_other + b.steered_other;
    wide_default = a.wide_default + b.wide_default;
    wide_demoted = a.wide_demoted + b.wide_demoted;
    wpred_correct = a.wpred_correct + b.wpred_correct;
    wpred_fatal = a.wpred_fatal + b.wpred_fatal;
    wpred_nonfatal = a.wpred_nonfatal + b.wpred_nonfatal;
    prefetch_copies = a.prefetch_copies + b.prefetch_copies;
    prefetch_useful = a.prefetch_useful + b.prefetch_useful;
    nready_w2n = a.nready_w2n + b.nready_w2n;
    nready_n2w = a.nready_n2w + b.nready_n2w;
    issued_total = a.issued_total + b.issued_total;
  }

let attrib_consistent d =
  d.steered_888 + d.steered_br + d.steered_cr + d.steered_ir + d.steered_other
  = d.steered_narrow
  && d.steered_ir = d.split_uops
  && d.wide_default + d.wide_demoted = d.committed - d.steered_narrow

type t = {
  t_start : int;
  t_end : int;
  d : totals;
  iq_wide : int;
  iq_narrow : int;
  rob : int;
  wpred_accuracy : float;
}

let make ~t_start ~t_end ~iq_wide ~iq_narrow ~rob d =
  let wtotal = d.wpred_correct + d.wpred_fatal + d.wpred_nonfatal in
  let wpred_accuracy =
    if wtotal = 0 then 0.
    else 100. *. float_of_int d.wpred_correct /. float_of_int wtotal
  in
  { t_start; t_end; d; iq_wide; iq_narrow; rob; wpred_accuracy }

(* wide-cluster cycles are half the fast ticks *)
let ipc s =
  let ticks = s.t_end - s.t_start in
  if ticks = 0 then 0.
  else float_of_int s.d.committed /. (float_of_int ticks /. 2.)

let aggregate samples =
  List.fold_left (fun acc s -> add_totals acc s.d) zero_totals samples

(* new columns are appended so existing consumers keep their offsets *)
let csv_header =
  String.concat ","
    [ "t_start"; "t_end"; "ipc"; "committed"; "steered_narrow"; "copies";
      "split_uops"; "wpred_correct"; "wpred_fatal"; "wpred_nonfatal";
      "wpred_accuracy_pct"; "prefetch_copies"; "prefetch_useful";
      "nready_w2n"; "nready_n2w"; "issued_total"; "iq_wide"; "iq_narrow";
      "rob"; "steered_888"; "steered_br"; "steered_cr"; "steered_ir";
      "steered_other"; "wide_default"; "wide_demoted" ]

let to_csv_row s =
  let d = s.d in
  String.concat ","
    [ string_of_int s.t_start; string_of_int s.t_end;
      Printf.sprintf "%.4f" (ipc s); string_of_int d.committed;
      string_of_int d.steered_narrow; string_of_int d.copies;
      string_of_int d.split_uops; string_of_int d.wpred_correct;
      string_of_int d.wpred_fatal; string_of_int d.wpred_nonfatal;
      Printf.sprintf "%.2f" s.wpred_accuracy;
      string_of_int d.prefetch_copies; string_of_int d.prefetch_useful;
      string_of_int d.nready_w2n; string_of_int d.nready_n2w;
      string_of_int d.issued_total; string_of_int s.iq_wide;
      string_of_int s.iq_narrow; string_of_int s.rob;
      string_of_int d.steered_888; string_of_int d.steered_br;
      string_of_int d.steered_cr; string_of_int d.steered_ir;
      string_of_int d.steered_other; string_of_int d.wide_default;
      string_of_int d.wide_demoted ]

let to_json s =
  let d = s.d in
  Printf.sprintf
    "{\"t_start\":%d,\"t_end\":%d,\"ipc\":%.4f,\"committed\":%d,\
     \"steered_narrow\":%d,\"copies\":%d,\"split_uops\":%d,\
     \"wpred_correct\":%d,\"wpred_fatal\":%d,\"wpred_nonfatal\":%d,\
     \"wpred_accuracy_pct\":%.2f,\"prefetch_copies\":%d,\
     \"prefetch_useful\":%d,\"nready_w2n\":%d,\"nready_n2w\":%d,\
     \"issued_total\":%d,\"iq_wide\":%d,\"iq_narrow\":%d,\"rob\":%d,\
     \"steered_888\":%d,\"steered_br\":%d,\"steered_cr\":%d,\
     \"steered_ir\":%d,\"steered_other\":%d,\"wide_default\":%d,\
     \"wide_demoted\":%d}"
    s.t_start s.t_end (ipc s) d.committed d.steered_narrow d.copies
    d.split_uops d.wpred_correct d.wpred_fatal d.wpred_nonfatal
    s.wpred_accuracy d.prefetch_copies d.prefetch_useful d.nready_w2n
    d.nready_n2w d.issued_total s.iq_wide s.iq_narrow s.rob d.steered_888
    d.steered_br d.steered_cr d.steered_ir d.steered_other d.wide_default
    d.wide_demoted
