(** Chrome trace-event JSON export (Perfetto / chrome://tracing loadable).

    The timeline uses one track per cluster (execution spans, issue tick
    to writeback tick), one per issue queue (queue-residency spans,
    dispatch tick to issue tick), and a retire/recovery track for commit,
    width-flush and replay instants. Interval samples become counter
    tracks (IQ occupancy, IPC, ROB occupancy, NREADY imbalance per
    interval). Timestamps are fast ticks
    reported in the trace's microsecond field — absolute time is
    meaningless for a cycle-level simulation, only relative spans
    matter.

    Host-side stage spans ({!Span.span}: generate / simulate /
    cache-lookup / encode / ...) render on additional tracks, one per
    recording thread, with their GC deltas and metadata in [args] —
    machine activity on top, the pipeline-feeding host stages below. *)

val to_buffer :
  ?ring:int * int ->
  ?stage_spans:Span.span list ->
  Buffer.t ->
  events:Event.t list ->
  samples:Sample.t list ->
  unit
(** [ring] is [(events_pushed, events_dropped)] from the recording
    {!Ring}; when given it is embedded as a top-level ["otherData"]
    block so readers (hc_report) can tell a complete trace from one
    whose oldest events were overwritten. *)

val to_string :
  ?ring:int * int ->
  ?stage_spans:Span.span list ->
  events:Event.t list ->
  samples:Sample.t list ->
  unit ->
  string

val write :
  ?ring:int * int ->
  ?stage_spans:Span.span list ->
  path:string ->
  events:Event.t list ->
  samples:Sample.t list ->
  unit ->
  string
(** Writes the JSON to [path] and returns [path]. *)
