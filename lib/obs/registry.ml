(* Process-wide metrics registry.

   Hot-path updates are a single [Atomic.fetch_and_add] on a per-shard
   slot indexed by the calling domain's id, so concurrent Domain_pool
   workers never contend on the same cell (beyond hardware-level false
   sharing, which boxed atomics mostly avoid). The scrape merges shards
   by summation, which is order-independent: the merged totals are
   deterministic for a given set of recorded events no matter how the
   workers interleaved. Registration (cold path) takes a mutex. *)

(* power of two so the domain-id fold is a mask, sized comfortably above
   any Domain_pool this repo spawns (host pools are core-count sized) *)
let shards = 64

let shard_index () = (Domain.self () :> int) land (shards - 1)

type kind = Counter | Gauge | Histogram

(* log2 buckets: bucket 0 holds v <= 0, bucket b >= 1 holds
   2^(b-1) <= v < 2^b, i.e. values whose binary magnitude needs exactly
   b bits. With 63 buckets every OCaml int lands somewhere. *)
let num_buckets = 63

let bucket_of v =
  if v <= 0 then 0
  else begin
    let b = ref 0 in
    let v = ref v in
    while !v > 0 do
      incr b;
      v := !v lsr 1
    done;
    !b
  end

(* inclusive upper bound of bucket [b] (the Prometheus "le" edge) *)
let bucket_le b = if b >= num_buckets then max_int else (1 lsl b) - 1

type metric = {
  m_name : string;
  m_help : string;
  m_labels : (string * string) list;  (* sorted by key *)
  m_kind : kind;
  (* counters: [shards] slots; gauges: 1 slot; histograms:
     [shards * (num_buckets + 2)] slots — per shard the bucket counts
     followed by a count cell and a sum cell *)
  m_cells : int Atomic.t array;
}

type t = {
  mutable metrics : metric list;  (* registration order; scrape re-sorts *)
  index : (string * (string * string) list, metric) Hashtbl.t;
  reg_m : Mutex.t;
}

type counter = metric
type gauge = metric
type histogram = metric

let create () =
  { metrics = []; index = Hashtbl.create 64; reg_m = Mutex.create () }

let valid_name name =
  name <> ""
  && String.for_all
       (fun c ->
         match c with
         | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> true
         | _ -> false)
       name
  && not (match name.[0] with '0' .. '9' -> true | _ -> false)

let register t ~kind ~help ~labels name =
  if not (valid_name name) then
    invalid_arg ("Registry: invalid metric name " ^ name);
  let labels =
    List.sort (fun (a, _) (b, _) -> String.compare a b) labels
  in
  Mutex.lock t.reg_m;
  let m =
    match Hashtbl.find_opt t.index (name, labels) with
    | Some m ->
      if m.m_kind <> kind then begin
        Mutex.unlock t.reg_m;
        invalid_arg ("Registry: " ^ name ^ " re-registered with another kind")
      end;
      m
    | None ->
      let cells =
        match kind with
        | Counter -> shards
        | Gauge -> 1
        | Histogram -> shards * (num_buckets + 2)
      in
      let m =
        {
          m_name = name;
          m_help = help;
          m_labels = labels;
          m_kind = kind;
          m_cells = Array.init cells (fun _ -> Atomic.make 0);
        }
      in
      Hashtbl.add t.index (name, labels) m;
      t.metrics <- m :: t.metrics;
      m
  in
  Mutex.unlock t.reg_m;
  m

let counter t ?(help = "") ?(labels = []) name =
  register t ~kind:Counter ~help ~labels name

let gauge t ?(help = "") ?(labels = []) name =
  register t ~kind:Gauge ~help ~labels name

let histogram t ?(help = "") ?(labels = []) name =
  register t ~kind:Histogram ~help ~labels name

(* ----- hot-path updates ----- *)

let add (c : counter) n =
  ignore (Atomic.fetch_and_add c.m_cells.(shard_index ()) n)

let inc c = add c 1

let gauge_set (g : gauge) v = Atomic.set g.m_cells.(0) v

let gauge_add (g : gauge) n = ignore (Atomic.fetch_and_add g.m_cells.(0) n)

(* racy-read max is fine: the only writers of a gauge used this way are
   monotone, and a lost race just retries *)
let rec gauge_max (g : gauge) v =
  let cur = Atomic.get g.m_cells.(0) in
  if v > cur && not (Atomic.compare_and_set g.m_cells.(0) cur v) then
    gauge_max g v

let gauge_get (g : gauge) = Atomic.get g.m_cells.(0)

let observe (h : histogram) v =
  let base = shard_index () * (num_buckets + 2) in
  ignore (Atomic.fetch_and_add h.m_cells.(base + bucket_of v) 1);
  ignore (Atomic.fetch_and_add h.m_cells.(base + num_buckets) 1);
  ignore (Atomic.fetch_and_add h.m_cells.(base + num_buckets + 1) v)

(* ----- deterministic scrape ----- *)

type hvalue = {
  buckets : int array;  (* raw per-bucket counts, length num_buckets *)
  h_count : int;
  h_sum : int;
}

type value = Counter_v of int | Gauge_v of int | Histogram_v of hvalue

type sample = {
  s_name : string;
  s_help : string;
  s_labels : (string * string) list;
  s_value : value;
}

let merge m =
  match m.m_kind with
  | Counter ->
    Counter_v (Array.fold_left (fun acc a -> acc + Atomic.get a) 0 m.m_cells)
  | Gauge -> Gauge_v (Atomic.get m.m_cells.(0))
  | Histogram ->
    let buckets = Array.make num_buckets 0 in
    let count = ref 0 and sum = ref 0 in
    for s = 0 to shards - 1 do
      let base = s * (num_buckets + 2) in
      for b = 0 to num_buckets - 1 do
        buckets.(b) <- buckets.(b) + Atomic.get m.m_cells.(base + b)
      done;
      count := !count + Atomic.get m.m_cells.(base + num_buckets);
      sum := !sum + Atomic.get m.m_cells.(base + num_buckets + 1)
    done;
    Histogram_v { buckets; h_count = !count; h_sum = !sum }

let compare_labels a b =
  compare (List.map (fun (k, v) -> (k, v)) a) (List.map (fun (k, v) -> (k, v)) b)

let scrape t =
  Mutex.lock t.reg_m;
  let metrics = t.metrics in
  Mutex.unlock t.reg_m;
  List.map
    (fun m ->
      { s_name = m.m_name; s_help = m.m_help; s_labels = m.m_labels;
        s_value = merge m })
    (List.sort
       (fun a b ->
         match String.compare a.m_name b.m_name with
         | 0 -> compare_labels a.m_labels b.m_labels
         | c -> c)
       metrics)

let find_value samples name labels =
  let labels = List.sort (fun (a, _) (b, _) -> String.compare a b) labels in
  List.find_map
    (fun s ->
      if s.s_name = name && s.s_labels = labels then Some s.s_value else None)
    samples

let counter_value samples ?(labels = []) name =
  match find_value samples name labels with
  | Some (Counter_v n) -> n
  | Some (Gauge_v n) -> n
  | Some (Histogram_v _) | None -> 0

(* smallest bucket upper edge covering fraction [p] of the samples *)
let hist_percentile hv p =
  if p < 0. || p > 1. then invalid_arg "Registry.hist_percentile";
  if hv.h_count = 0 then 0
  else begin
    let need =
      int_of_float (ceil (p *. float_of_int hv.h_count))
      |> max 1
    in
    let acc = ref 0 and result = ref (bucket_le (num_buckets - 1)) in
    ( try
        for b = 0 to num_buckets - 1 do
          acc := !acc + hv.buckets.(b);
          if !acc >= need then begin
            result := bucket_le b;
            raise Exit
          end
        done
      with Exit -> () );
    !result
  end

let reset t =
  Mutex.lock t.reg_m;
  List.iter
    (fun m -> Array.iter (fun a -> Atomic.set a 0) m.m_cells)
    t.metrics;
  Mutex.unlock t.reg_m

(* ----- the ambient process registry ----- *)

(* Same discipline as the pipeline's [Sink.t option]: disabled means
   every instrumentation point is one atomic load and a match on [None].
   Observability never changes behavior, only records it. *)

let ambient_reg : t option Atomic.t = Atomic.make None

let ambient () = Atomic.get ambient_reg

let is_enabled () = Atomic.get ambient_reg <> None

let enable () =
  match Atomic.get ambient_reg with
  | Some t -> t
  | None ->
    let t = create () in
    if Atomic.compare_and_set ambient_reg None (Some t) then t
    else (match Atomic.get ambient_reg with Some t -> t | None -> t)

let disable () = Atomic.set ambient_reg None

let with_ambient f = match Atomic.get ambient_reg with None -> () | Some t -> f t
