(** Structured JSONL event log.

    One self-describing, minified JSON object per line — each line
    parses on its own with [Hc_report.Json]'s strict parser, so the log
    streams, tails, greps and survives truncation at any line boundary.
    Span records carry [{"schema":1,"kind":"span",...}] with the wall
    interval, GC deltas and metadata. *)

val schema : int

val span_to_json : Span.span -> string
(** One minified JSON object, no trailing newline. *)

val event_to_json : name:string -> fields:(string * string) list -> string
(** Generic event record; [fields] values must already be valid JSON
    lexemes (numbers, quoted strings, ...). *)

type t

val create : path:string -> t
val log_span : t -> Span.span -> unit
val log_event : t -> name:string -> fields:(string * string) list -> unit
(** Writers are serialized by an internal mutex — safe from pool
    workers. *)

val lines : t -> int
val close : t -> unit

val write_spans : path:string -> Span.span list -> string
(** Write a whole span list as one JSONL file; returns [path]. *)
