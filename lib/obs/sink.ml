type t = {
  ring : Event.t Ring.t option;
  interval : int;
  mutable prev_tick : int;
  mutable prev : Sample.totals;
  mutable samples_rev : Sample.t list;
  mutable sample_count : int;
}

let create ?(ring_capacity = 65_536) ?(interval = 0) ~tracing () =
  {
    ring = (if tracing then Some (Ring.create ~capacity:ring_capacity ~dummy:Event.dummy) else None);
    interval = max 0 interval;
    prev_tick = 0;
    prev = Sample.zero_totals;
    samples_rev = [];
    sample_count = 0;
  }

let tracing t = t.ring <> None

let interval t = t.interval

let emit t e = match t.ring with Some r -> Ring.push r e | None -> ()

let events t = match t.ring with Some r -> Ring.to_list r | None -> []

let events_dropped t = match t.ring with Some r -> Ring.dropped r | None -> 0

let events_pushed t = match t.ring with Some r -> Ring.pushed r | None -> 0

let sample t ~tick ~iq_wide ~iq_narrow ~rob totals =
  if tick > t.prev_tick then begin
    let d = Sample.sub_totals totals t.prev in
    t.samples_rev <-
      Sample.make ~t_start:t.prev_tick ~t_end:tick ~iq_wide ~iq_narrow ~rob d
      :: t.samples_rev;
    t.sample_count <- t.sample_count + 1;
    t.prev_tick <- tick;
    t.prev <- totals
  end

let samples t = List.rev t.samples_rev

let sample_count t = t.sample_count

let summary t =
  Printf.sprintf "events: %d pushed, %d dropped (ring wrap); samples: %d"
    (events_pushed t) (events_dropped t) t.sample_count

let dropped_warning t =
  let dropped = events_dropped t in
  if dropped = 0 then None
  else
    Some
      (Printf.sprintf
         "warning: event ring wrapped — %d of %d events dropped (oldest \
          first); raise --trace-buffer to keep the full run"
         dropped (events_pushed t))
