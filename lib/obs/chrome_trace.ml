let pid = 1

let tid_cluster c = c (* 0 wide, 1 narrow *)
let tid_iq c = 2 + c
let tid_retire = 4

let escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

type emitter = { buf : Buffer.t; mutable first : bool }

let event em fmt =
  if em.first then em.first <- false else Buffer.add_string em.buf ",\n    ";
  Printf.ksprintf (Buffer.add_string em.buf) fmt

let meta_thread em ~tid ~name ~sort =
  event em
    "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":%d,\
     \"args\":{\"name\":\"%s\"}}"
    pid tid (escape name);
  event em
    "{\"name\":\"thread_sort_index\",\"ph\":\"M\",\"pid\":%d,\"tid\":%d,\
     \"args\":{\"sort_index\":%d}}"
    pid tid sort

let complete em ~tid ~ts ~dur ~name ~id ~trace_idx ~kind =
  event em
    "{\"name\":\"%s\",\"ph\":\"X\",\"ts\":%d,\"dur\":%d,\"pid\":%d,\
     \"tid\":%d,\"args\":{\"uop\":%d,\"trace_idx\":%d,\"kind\":\"%s\"}}"
    (escape name) ts dur pid tid id trace_idx kind

let instant em ~tid ~ts ~name ~id =
  event em
    "{\"name\":\"%s\",\"ph\":\"i\",\"ts\":%d,\"pid\":%d,\"tid\":%d,\
     \"s\":\"t\",\"args\":{\"uop\":%d}}"
    (escape name) ts pid tid id

let counter em ~ts ~name ~pairs =
  let args =
    String.concat ","
      (List.map (fun (k, v) -> Printf.sprintf "\"%s\":%s" k v) pairs)
  in
  event em
    "{\"name\":\"%s\",\"ph\":\"C\",\"ts\":%d,\"pid\":%d,\"tid\":0,\
     \"args\":{%s}}"
    name ts pid args

let put_event em (e : Event.t) =
  let c = if e.Event.cluster < 0 then 0 else e.Event.cluster in
  match e.Event.kind with
  | Event.Writeback ->
    (* execution span on the cluster track: issue tick -> writeback tick *)
    let issue_ts = e.Event.b in
    let dur = max 0 (e.Event.tick - issue_ts) in
    complete em ~tid:(tid_cluster c) ~ts:issue_ts ~dur ~name:e.Event.name
      ~id:e.Event.id ~trace_idx:e.Event.trace_idx ~kind:"exec";
    (* queue-residency span on the issue-queue track: dispatch -> issue *)
    let disp_ts = e.Event.a in
    if issue_ts > disp_ts then
      complete em ~tid:(tid_iq c) ~ts:disp_ts ~dur:(issue_ts - disp_ts)
        ~name:e.Event.name ~id:e.Event.id ~trace_idx:e.Event.trace_idx
        ~kind:"queued"
  | Event.Commit ->
    instant em ~tid:tid_retire ~ts:e.Event.tick
      ~name:("commit " ^ e.Event.name) ~id:e.Event.id
  | Event.Flush ->
    instant em ~tid:tid_retire ~ts:e.Event.tick
      ~name:("width-flush " ^ e.Event.name) ~id:e.Event.id
  | Event.Replay ->
    instant em ~tid:tid_retire ~ts:e.Event.tick
      ~name:("replay " ^ e.Event.name) ~id:e.Event.id
  | Event.Squash ->
    instant em ~tid:(tid_cluster c) ~ts:e.Event.tick
      ~name:("squash " ^ e.Event.name) ~id:e.Event.id
  | Event.Dispatch | Event.Issue ->
    (* subsumed by the Writeback span; keep instants only for uops whose
       writeback never happened (still useful when the ring wrapped) *)
    ()

(* Stage spans (Span.t) render as complete events on their own tracks,
   one tid per distinct span track ("main", "worker3", ...), appended
   after the pipeline tids so Perfetto shows machine activity on top and
   host-side stages below. Span timestamps are wall-clock ns from the
   collector epoch; Chrome traces want integer microseconds. *)
let span_tid_base = 16

let put_spans em spans =
  let tracks = Hashtbl.create 8 in
  let next = ref span_tid_base in
  let tid_of track =
    match Hashtbl.find_opt tracks track with
    | Some tid -> tid
    | None ->
      let tid = !next in
      incr next;
      Hashtbl.add tracks track tid;
      meta_thread em ~tid ~name:("stage: " ^ track) ~sort:tid;
      tid
  in
  List.iter
    (fun (sp : Span.span) ->
      let tid = tid_of sp.Span.sp_track in
      let args =
        String.concat ","
          (Printf.sprintf "\"gc_minor_words\":%.1f" sp.Span.sp_minor_words
          :: Printf.sprintf "\"gc_major_words\":%.1f" sp.Span.sp_major_words
          :: Printf.sprintf "\"gc_minor_collections\":%d"
               sp.Span.sp_minor_collections
          :: Printf.sprintf "\"gc_major_collections\":%d"
               sp.Span.sp_major_collections
          :: List.map
               (fun (k, v) ->
                 Printf.sprintf "\"%s\":\"%s\"" (escape k) (escape v))
               sp.Span.sp_meta)
      in
      event em
        "{\"name\":\"%s\",\"ph\":\"X\",\"ts\":%d,\"dur\":%d,\"pid\":%d,\
         \"tid\":%d,\"args\":{%s}}"
        (escape sp.Span.sp_name)
        (sp.Span.sp_start_ns / 1000)
        (max 1 (sp.Span.sp_dur_ns / 1000))
        pid tid args)
    spans

let to_buffer ?ring ?(stage_spans = []) buf ~events ~samples =
  let em = { buf; first = true } in
  Buffer.add_string buf "{\n  \"displayTimeUnit\": \"ms\",\n";
  (* ring statistics let a reader tell a complete trace from a window
     that lost its oldest events to buffer wrap (hc_report warns) *)
  ( match ring with
  | Some (pushed, dropped) ->
    Buffer.add_string buf
      (Printf.sprintf
         "  \"otherData\": {\"events_pushed\": %d, \"events_dropped\": %d},\n"
         pushed dropped)
  | None -> () );
  Buffer.add_string buf "  \"traceEvents\": [\n    ";
  event em
    "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,\
     \"args\":{\"name\":\"helper-cluster pipeline\"}}"
    pid;
  meta_thread em ~tid:(tid_cluster 0) ~name:"wide cluster" ~sort:0;
  meta_thread em ~tid:(tid_cluster 1) ~name:"narrow cluster (helper)" ~sort:1;
  meta_thread em ~tid:(tid_iq 0) ~name:"wide issue queue" ~sort:2;
  meta_thread em ~tid:(tid_iq 1) ~name:"narrow issue queue" ~sort:3;
  meta_thread em ~tid:tid_retire ~name:"retire / recovery" ~sort:4;
  List.iter (put_event em) events;
  put_spans em stage_spans;
  List.iter
    (fun (s : Sample.t) ->
      counter em ~ts:s.Sample.t_end ~name:"iq_occupancy"
        ~pairs:
          [ ("wide", string_of_int s.Sample.iq_wide);
            ("narrow", string_of_int s.Sample.iq_narrow) ];
      counter em ~ts:s.Sample.t_end ~name:"ipc"
        ~pairs:[ ("ipc", Printf.sprintf "%.4f" (Sample.ipc s)) ];
      counter em ~ts:s.Sample.t_end ~name:"rob_occupancy"
        ~pairs:[ ("rob", string_of_int s.Sample.rob) ];
      (* NREADY imbalance (§3.7) per interval, next to the occupancy
         tracks it explains *)
      counter em ~ts:s.Sample.t_end ~name:"nready"
        ~pairs:
          [ ("w2n", string_of_int s.Sample.d.Sample.nready_w2n);
            ("n2w", string_of_int s.Sample.d.Sample.nready_n2w) ])
    samples;
  Buffer.add_string buf "\n  ]\n}\n"

let to_string ?ring ?stage_spans ~events ~samples () =
  let buf = Buffer.create 65536 in
  to_buffer ?ring ?stage_spans buf ~events ~samples;
  Buffer.contents buf

let write ?ring ?stage_spans ~path ~events ~samples () =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      let buf = Buffer.create 65536 in
      to_buffer ?ring ?stage_spans buf ~events ~samples;
      Buffer.output_buffer oc buf);
  path
