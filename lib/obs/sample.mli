(** Interval metrics samples.

    Every N ticks the pipeline snapshots its cumulative result counters;
    the sink turns consecutive snapshots into per-interval deltas, so a
    run becomes a time series (program phases, predictor warm-up, copy
    bursts) whose column sums reproduce the end-of-run
    [Hc_sim.Metrics.t] exactly. *)

type totals = {
  committed : int;
  steered_narrow : int;
  copies : int;
  split_uops : int;
  steered_888 : int;  (** steering attribution, per reason (see Metrics) *)
  steered_br : int;
  steered_cr : int;
  steered_ir : int;
  steered_other : int;
  wide_default : int;
  wide_demoted : int;
  wpred_correct : int;
  wpred_fatal : int;
  wpred_nonfatal : int;
  prefetch_copies : int;
  prefetch_useful : int;
  nready_w2n : int;
  nready_n2w : int;
  issued_total : int;
}
(** Cumulative counter snapshot, field-for-field the dynamic counts of
    [Hc_sim.Metrics.t]. *)

val zero_totals : totals
val sub_totals : totals -> totals -> totals
val add_totals : totals -> totals -> totals

val attrib_consistent : totals -> bool
(** The attribution columns sum exactly to the steering totals: narrow
    attribution adds up to [steered_narrow], [steered_ir = split_uops],
    wide columns add up to [committed - steered_narrow]. Holds per
    interval and (by linearity) for any {!aggregate}. *)

type t = {
  t_start : int;  (** first tick of the interval (exclusive start) *)
  t_end : int;  (** tick the snapshot was taken *)
  d : totals;  (** deltas over the interval *)
  iq_wide : int;  (** wide issue-queue occupancy at [t_end] *)
  iq_narrow : int;
  rob : int;  (** ROB occupancy at [t_end] *)
  wpred_accuracy : float;  (** correct / all predictions resolved, % *)
}

val make :
  t_start:int -> t_end:int -> iq_wide:int -> iq_narrow:int -> rob:int ->
  totals -> t

val ipc : t -> float
(** Committed uops per wide (slow) cycle over the interval. *)

val aggregate : t list -> totals
(** Column sums of the deltas — equals the final run totals when the
    series covers the whole run. *)

val csv_header : string
val to_csv_row : t -> string
val to_json : t -> string
