(** Stage span tracing.

    A span is one named wall-clock interval — a pipeline stage
    ([generate], [simulate], [static-analysis], [cache-lookup],
    [encode], [decode]) or a Domain_pool task — carrying the GC
    [quick_stat] deltas observed across it and free-form metadata
    (benchmark, scheme, ...). Spans land in a process-wide collector
    guarded by the same opt-in discipline as the metrics {!Registry}:
    with the collector off, {!with_span} is one atomic load and a
    direct call. *)

type span = {
  sp_name : string;
  sp_track : string;  (** recording thread: "main", "worker3", ... *)
  sp_start_ns : int;  (** relative to the collector's creation *)
  sp_dur_ns : int;
  sp_minor_words : float;
  sp_major_words : float;
  sp_minor_collections : int;
  sp_major_collections : int;
  sp_meta : (string * string) list;
}

type t

val create : unit -> t
val record : t -> span -> unit
val spans : t -> span list
(** Chronological (recording order). *)

val count : t -> int

val set_track : string -> unit
(** Name the calling domain's track (domain-local; Domain_pool workers
    call this once at startup). *)

val track : unit -> string

val ambient : unit -> t option
val is_enabled : unit -> bool
val enable : unit -> t
val disable : unit -> unit

val with_span : ?meta:(string * string) list -> string -> (unit -> 'a) -> 'a
(** [with_span name f] runs [f] and records one span around it in the
    ambient collector; when collection is off it is just [f ()].
    Exceptions propagate unchanged (the span is dropped). *)

type stage_stats = {
  st_name : string;
  st_count : int;
  st_total_ns : int;
  st_max_ns : int;
  st_minor_words : float;
  st_major_words : float;
}

val by_stage : span list -> stage_stats list
(** Aggregate by span name, sorted by name. *)
