(* Structured JSONL event log: one self-describing JSON object per line,
   minified, parseable line-by-line with lib/report's strict RFC 8259
   parser (and greppable with nothing at all). This is the span/event
   export format the smoke gate validates and hc_report summarizes. *)

let schema = 1

let escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let meta_json meta =
  "{"
  ^ String.concat ","
      (List.map
         (fun (k, v) -> Printf.sprintf "\"%s\":\"%s\"" (escape k) (escape v))
         meta)
  ^ "}"

(* %.1f keeps GC word counts finite-notation (they are word counts, but
   Gc reports them as floats that can exceed int precision) *)
let span_to_json (sp : Span.span) =
  Printf.sprintf
    "{\"schema\":%d,\"kind\":\"span\",\"name\":\"%s\",\"track\":\"%s\",\
     \"start_ns\":%d,\"dur_ns\":%d,\"gc_minor_words\":%.1f,\
     \"gc_major_words\":%.1f,\"gc_minor_collections\":%d,\
     \"gc_major_collections\":%d,\"meta\":%s}"
    schema (escape sp.Span.sp_name) (escape sp.Span.sp_track)
    sp.Span.sp_start_ns sp.Span.sp_dur_ns sp.Span.sp_minor_words
    sp.Span.sp_major_words sp.Span.sp_minor_collections
    sp.Span.sp_major_collections
    (meta_json sp.Span.sp_meta)

let event_to_json ~name ~fields =
  Printf.sprintf "{\"schema\":%d,\"kind\":\"event\",\"name\":\"%s\",%s}" schema
    (escape name)
    (String.concat ","
       (List.map (fun (k, v) -> Printf.sprintf "\"%s\":%s" (escape k) v) fields))

(* ----- streaming writer ----- *)

type t = { oc : out_channel; wm : Mutex.t; mutable lines : int }

let create ~path =
  let oc = open_out path in
  { oc; wm = Mutex.create (); lines = 0 }

let write_line t line =
  Mutex.lock t.wm;
  output_string t.oc line;
  output_char t.oc '\n';
  t.lines <- t.lines + 1;
  Mutex.unlock t.wm

let log_span t sp = write_line t (span_to_json sp)

let log_event t ~name ~fields = write_line t (event_to_json ~name ~fields)

let lines t = t.lines

let close t =
  Mutex.lock t.wm;
  close_out t.oc;
  Mutex.unlock t.wm

let write_spans ~path spans =
  let t = create ~path in
  List.iter (log_span t) spans;
  close t;
  path
