type kind =
  | Dispatch
  | Issue
  | Writeback
  | Commit
  | Squash
  | Flush
  | Replay

type t = {
  tick : int;
  kind : kind;
  id : int;
  trace_idx : int;
  cluster : int;
  name : string;
  a : int;
  b : int;
}

let dummy =
  { tick = 0; kind = Dispatch; id = -1; trace_idx = -1; cluster = -1;
    name = ""; a = 0; b = 0 }

let kind_name = function
  | Dispatch -> "dispatch"
  | Issue -> "issue"
  | Writeback -> "writeback"
  | Commit -> "commit"
  | Squash -> "squash"
  | Flush -> "flush"
  | Replay -> "replay"

let cluster_name = function
  | 0 -> "wide"
  | 1 -> "narrow"
  | _ -> "-"

let pp ppf e =
  Format.fprintf ppf "@[%d %s #%d idx=%d %s %s@]" e.tick (kind_name e.kind)
    e.id e.trace_idx (cluster_name e.cluster) e.name
