(* Prometheus text exposition (version 0.0.4) for Registry scrapes, plus
   the parser hc_metrics uses to diff two dumps. Histograms expose the
   standard cumulative _bucket/_sum/_count triple with power-of-two "le"
   edges (the registry's log2 buckets). *)

let escape_label_value s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '"' -> Buffer.add_string b "\\\""
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let escape_help s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let label_string labels =
  match labels with
  | [] -> ""
  | labels ->
    "{"
    ^ String.concat ","
        (List.map
           (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (escape_label_value v))
           labels)
    ^ "}"

let kind_name = function
  | Registry.Counter_v _ -> "counter"
  | Registry.Gauge_v _ -> "gauge"
  | Registry.Histogram_v _ -> "histogram"

let to_buffer buf (samples : Registry.sample list) =
  let p fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  (* HELP/TYPE headers are emitted once per metric name, on its first
     (sorted) appearance — scrapes are sorted, so label families group *)
  let last_header = ref "" in
  List.iter
    (fun (s : Registry.sample) ->
      if s.Registry.s_name <> !last_header then begin
        last_header := s.Registry.s_name;
        if s.Registry.s_help <> "" then
          p "# HELP %s %s\n" s.Registry.s_name (escape_help s.Registry.s_help);
        p "# TYPE %s %s\n" s.Registry.s_name (kind_name s.Registry.s_value)
      end;
      let labels = s.Registry.s_labels in
      match s.Registry.s_value with
      | Registry.Counter_v v | Registry.Gauge_v v ->
        p "%s%s %d\n" s.Registry.s_name (label_string labels) v
      | Registry.Histogram_v hv ->
        let cum = ref 0 in
        Array.iteri
          (fun b n ->
            (* keep the exposition compact: only edges up to the last
               populated bucket, then the mandatory +Inf *)
            cum := !cum + n;
            if n > 0 || b = 0 then
              p "%s_bucket%s %d\n" s.Registry.s_name
                (label_string (labels @ [ ("le", string_of_int (Registry.bucket_le b)) ]))
                !cum)
          hv.Registry.buckets;
        p "%s_bucket%s %d\n" s.Registry.s_name
          (label_string (labels @ [ ("le", "+Inf") ]))
          hv.Registry.h_count;
        p "%s_sum%s %d\n" s.Registry.s_name (label_string labels)
          hv.Registry.h_sum;
        p "%s_count%s %d\n" s.Registry.s_name (label_string labels)
          hv.Registry.h_count)
    samples

let to_string samples =
  let buf = Buffer.create 4096 in
  to_buffer buf samples;
  Buffer.contents buf

let write ~path samples =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string samples));
  path

(* ----- parser (for hc_metrics show/diff and the smoke checker) ----- *)

type entry = {
  e_name : string;
  e_labels : (string * string) list;
  e_value : float;
}

exception Parse_error of int * string
(* line number (1-based) and message *)

let is_name_char c =
  match c with
  | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> true
  | _ -> false

let parse_sample_line ~lineno line =
  let n = String.length line in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (lineno, msg)) in
  let name_start = !pos in
  while !pos < n && is_name_char line.[!pos] do incr pos done;
  if !pos = name_start then fail "expected metric name";
  (match line.[name_start] with '0' .. '9' -> fail "metric name starts with a digit" | _ -> ());
  let name = String.sub line name_start (!pos - name_start) in
  let labels = ref [] in
  if !pos < n && line.[!pos] = '{' then begin
    incr pos;
    let parse_label () =
      let ls = !pos in
      while !pos < n && is_name_char line.[!pos] do incr pos done;
      if !pos = ls then fail "expected label name";
      let lname = String.sub line ls (!pos - ls) in
      if !pos >= n || line.[!pos] <> '=' then fail "expected '=' after label name";
      incr pos;
      if !pos >= n || line.[!pos] <> '"' then fail "expected '\"' opening label value";
      incr pos;
      let b = Buffer.create 16 in
      let rec value () =
        if !pos >= n then fail "unterminated label value"
        else
          match line.[!pos] with
          | '"' -> incr pos
          | '\\' ->
            incr pos;
            if !pos >= n then fail "dangling escape";
            ( match line.[!pos] with
            | '\\' -> Buffer.add_char b '\\'
            | '"' -> Buffer.add_char b '"'
            | 'n' -> Buffer.add_char b '\n'
            | _ -> fail "bad escape in label value" );
            incr pos;
            value ()
          | c ->
            Buffer.add_char b c;
            incr pos;
            value ()
      in
      value ();
      labels := (lname, Buffer.contents b) :: !labels
    in
    let rec labels_loop () =
      if !pos >= n then fail "unterminated label set"
      else if line.[!pos] = '}' then incr pos
      else begin
        parse_label ();
        if !pos < n && line.[!pos] = ',' then begin
          incr pos;
          labels_loop ()
        end
        else if !pos < n && line.[!pos] = '}' then incr pos
        else fail "expected ',' or '}' in label set"
      end
    in
    labels_loop ()
  end;
  if !pos >= n || line.[!pos] <> ' ' then fail "expected ' ' before value";
  while !pos < n && line.[!pos] = ' ' do incr pos done;
  let vstart = !pos in
  while !pos < n && line.[!pos] <> ' ' do incr pos done;
  let vstr = String.sub line vstart (!pos - vstart) in
  let value =
    match vstr with
    | "+Inf" -> infinity
    | "-Inf" -> neg_infinity
    | "NaN" -> nan
    | s -> (
      match float_of_string_opt s with
      | Some f -> f
      | None -> fail ("bad sample value " ^ s))
  in
  (* an optional timestamp may follow; accept and ignore it *)
  while !pos < n && line.[!pos] = ' ' do incr pos done;
  if !pos < n then begin
    let ts = String.sub line !pos (n - !pos) in
    if float_of_string_opt ts = None then fail "trailing garbage after value"
  end;
  { e_name = name; e_labels = List.rev !labels; e_value = value }

let known_types = [ "counter"; "gauge"; "histogram"; "summary"; "untyped" ]

let validate_comment ~lineno line =
  (* "# HELP name text", "# TYPE name kind", or a plain comment *)
  match String.split_on_char ' ' line with
  | "#" :: "TYPE" :: name :: kind :: [] ->
    if name = "" || not (String.for_all is_name_char name) then
      raise (Parse_error (lineno, "bad TYPE metric name"));
    if not (List.mem kind known_types) then
      raise (Parse_error (lineno, "unknown TYPE " ^ kind))
  | "#" :: "TYPE" :: _ -> raise (Parse_error (lineno, "malformed TYPE line"))
  | "#" :: "HELP" :: name :: _ ->
    if name = "" || not (String.for_all is_name_char name) then
      raise (Parse_error (lineno, "bad HELP metric name"))
  | _ -> ()  (* free-form comment *)

let parse text =
  let lines = String.split_on_char '\n' text in
  try
    let entries = ref [] in
    List.iteri
      (fun i line ->
        let lineno = i + 1 in
        if line = "" then ()
        else if line.[0] = '#' then validate_comment ~lineno line
        else entries := parse_sample_line ~lineno line :: !entries)
      lines;
    Ok (List.rev !entries)
  with Parse_error (lineno, msg) ->
    Error (Printf.sprintf "line %d: %s" lineno msg)

let of_file path =
  match open_in_bin path with
  | exception Sys_error msg -> Error msg
  | ic ->
    let text =
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    (match parse text with
    | Ok entries -> Ok entries
    | Error msg -> Error (path ^ ": " ^ msg))
