(** Prometheus text exposition (format 0.0.4) for {!Registry} scrapes.

    Counters and gauges expose one sample line; histograms expose the
    standard cumulative [_bucket]/[_sum]/[_count] triple whose ["le"]
    edges are the registry's power-of-two bucket bounds (plus the
    mandatory [+Inf]). [# HELP]/[# TYPE] headers are emitted once per
    metric family. The output is deterministic because scrapes are. *)

val to_string : Registry.sample list -> string
val write : path:string -> Registry.sample list -> string
(** Returns [path]. *)

(** {2 Parsing} (for [hc_metrics show]/[diff] and validation) *)

type entry = {
  e_name : string;  (** includes histogram suffixes like [_bucket] *)
  e_labels : (string * string) list;  (** source order, values unescaped *)
  e_value : float;
}

val parse : string -> (entry list, string) result
(** Strict line-oriented parse of an exposition dump: every non-comment,
    non-blank line must be a well-formed sample ([name{labels} value
    [timestamp]]); [# HELP]/[# TYPE] lines are validated structurally.
    The error message names the offending 1-based line. *)

val of_file : string -> (entry list, string) result
