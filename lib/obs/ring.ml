type 'a t = {
  buf : 'a array;
  capacity : int;
  mutable head : int;  (* next write position *)
  mutable pushed : int;  (* total pushes over the ring's lifetime *)
}

let create ~capacity ~dummy =
  if capacity <= 0 then invalid_arg "Ring.create: capacity must be positive";
  { buf = Array.make capacity dummy; capacity; head = 0; pushed = 0 }

let capacity t = t.capacity

let push t x =
  t.buf.(t.head) <- x;
  t.head <- (t.head + 1) mod t.capacity;
  t.pushed <- t.pushed + 1

let length t = min t.pushed t.capacity

let pushed t = t.pushed

let dropped t = max 0 (t.pushed - t.capacity)

let iter f t =
  let n = length t in
  (* oldest retained element: head when full, 0 while filling *)
  let start = if t.pushed >= t.capacity then t.head else 0 in
  for k = 0 to n - 1 do
    f t.buf.((start + k) mod t.capacity)
  done

let to_list t =
  let acc = ref [] in
  iter (fun x -> acc := x :: !acc) t;
  List.rev !acc

let fold f init t =
  let acc = ref init in
  iter (fun x -> acc := f !acc x) t;
  !acc
