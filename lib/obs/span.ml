(* Stage spans: named wall-clock intervals (generate / simulate /
   static-analysis / cache-lookup / encode / decode / task ...) with the
   GC's [quick_stat] deltas attached, recorded into a process-wide
   collector when observability is on.

   Spans are coarse (one per pipeline stage or pool task, not per uop),
   so the collector is a mutex-guarded list — contention is negligible
   next to the work each span brackets. The disabled path is one atomic
   load and a direct call of the wrapped function. *)

type span = {
  sp_name : string;
  sp_track : string;
  sp_start_ns : int;  (* since the collector's epoch *)
  sp_dur_ns : int;
  sp_minor_words : float;
  sp_major_words : float;
  sp_minor_collections : int;
  sp_major_collections : int;
  sp_meta : (string * string) list;
}

type t = {
  epoch : float;  (* Unix time of collector creation *)
  m : Mutex.t;
  mutable spans_rev : span list;
  mutable count : int;
}

let create () =
  { epoch = Unix.gettimeofday (); m = Mutex.create (); spans_rev = [];
    count = 0 }

let record t sp =
  Mutex.lock t.m;
  t.spans_rev <- sp :: t.spans_rev;
  t.count <- t.count + 1;
  Mutex.unlock t.m

let spans t =
  Mutex.lock t.m;
  let s = t.spans_rev in
  Mutex.unlock t.m;
  List.rev s

let count t =
  Mutex.lock t.m;
  let c = t.count in
  Mutex.unlock t.m;
  c

(* ----- per-domain track names ----- *)

(* Domain_pool workers label their spans "worker<i>"; anything else
   defaults to a stable per-domain name. *)
let track_key =
  Domain.DLS.new_key (fun () ->
      let id = (Domain.self () :> int) in
      if id = 0 then "main" else Printf.sprintf "d%d" id)

let set_track name = Domain.DLS.set track_key name

let track () = Domain.DLS.get track_key

(* ----- the ambient collector ----- *)

let ambient_col : t option Atomic.t = Atomic.make None

let ambient () = Atomic.get ambient_col

let is_enabled () = Atomic.get ambient_col <> None

let enable () =
  match Atomic.get ambient_col with
  | Some t -> t
  | None ->
    let t = create () in
    if Atomic.compare_and_set ambient_col None (Some t) then t
    else (match Atomic.get ambient_col with Some t -> t | None -> t)

let disable () = Atomic.set ambient_col None

let ns_of t now = int_of_float ((now -. t.epoch) *. 1e9)

(* The timed section runs inside [Fun.protect] so a raising stage still
   leaves no half-open span behind; exceptions propagate unchanged and
   the span is simply not recorded (observability must not reinterpret
   failures as data). *)
let with_span ?(meta = []) name f =
  match Atomic.get ambient_col with
  | None -> f ()
  | Some t ->
    let g0 = Gc.quick_stat () in
    let t0 = Unix.gettimeofday () in
    let result = f () in
    let t1 = Unix.gettimeofday () in
    let g1 = Gc.quick_stat () in
    record t
      {
        sp_name = name;
        sp_track = track ();
        sp_start_ns = ns_of t t0;
        sp_dur_ns = max 0 (int_of_float ((t1 -. t0) *. 1e9));
        sp_minor_words = g1.Gc.minor_words -. g0.Gc.minor_words;
        sp_major_words = g1.Gc.major_words -. g0.Gc.major_words;
        sp_minor_collections = g1.Gc.minor_collections - g0.Gc.minor_collections;
        sp_major_collections = g1.Gc.major_collections - g0.Gc.major_collections;
        sp_meta = meta;
      };
    result

(* ----- summaries ----- *)

type stage_stats = {
  st_name : string;
  st_count : int;
  st_total_ns : int;
  st_max_ns : int;
  st_minor_words : float;
  st_major_words : float;
}

let by_stage spans =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun sp ->
      let cur =
        match Hashtbl.find_opt tbl sp.sp_name with
        | Some s -> s
        | None ->
          { st_name = sp.sp_name; st_count = 0; st_total_ns = 0; st_max_ns = 0;
            st_minor_words = 0.; st_major_words = 0. }
      in
      Hashtbl.replace tbl sp.sp_name
        {
          cur with
          st_count = cur.st_count + 1;
          st_total_ns = cur.st_total_ns + sp.sp_dur_ns;
          st_max_ns = max cur.st_max_ns sp.sp_dur_ns;
          st_minor_words = cur.st_minor_words +. sp.sp_minor_words;
          st_major_words = cur.st_major_words +. sp.sp_major_words;
        })
    spans;
  List.sort
    (fun a b -> String.compare a.st_name b.st_name)
    (Hashtbl.fold (fun _ s acc -> s :: acc) tbl [])
