(** Process-wide metrics registry: counters, gauges and log2-bucketed
    histograms.

    Hot-path updates are lock-free — one [Atomic.fetch_and_add] on a
    per-shard slot picked by the calling domain's id — so Domain_pool
    workers instrument without contending. {!scrape} merges the shards
    by summation, which is order-independent: for a given set of
    recorded events the merged totals are identical no matter how the
    recording domains interleaved (proven by [test/test_registry.ml]).

    A process-wide {e ambient} registry follows the [Sink.t option]
    discipline: {!ambient} is [None] until a front-end opts in with
    {!enable}, and every instrumentation point in the tree guards itself
    with one atomic load — disabled observability costs nothing and
    changes nothing. *)

type t

type counter
type gauge
type histogram

type kind = Counter | Gauge | Histogram

val create : unit -> t

val counter : t -> ?help:string -> ?labels:(string * string) list -> string -> counter
(** Register (or retrieve — same name and labels return the same cell)
    a monotonically increasing counter. Metric names must match
    [[a-zA-Z_:][a-zA-Z0-9_:]*].
    @raise Invalid_argument on a bad name or a kind clash. *)

val gauge : t -> ?help:string -> ?labels:(string * string) list -> string -> gauge
val histogram : t -> ?help:string -> ?labels:(string * string) list -> string -> histogram

val inc : counter -> unit
val add : counter -> int -> unit

val gauge_set : gauge -> int -> unit
val gauge_add : gauge -> int -> unit
val gauge_max : gauge -> int -> unit
(** Raise the gauge to [v] if it is currently lower (CAS loop). *)

val gauge_get : gauge -> int

val observe : histogram -> int -> unit
(** Record one sample. Bucketing is by binary magnitude: bucket 0 holds
    [v <= 0] and bucket [b >= 1] holds [2^(b-1) <= v < 2^b]. *)

val num_buckets : int
val bucket_of : int -> int
val bucket_le : int -> int
(** Inclusive upper edge of a bucket ([2^b - 1]; [max_int] past the
    last bucket). *)

type hvalue = {
  buckets : int array;  (** raw (non-cumulative) counts, length {!num_buckets} *)
  h_count : int;
  h_sum : int;
}

type value = Counter_v of int | Gauge_v of int | Histogram_v of hvalue

type sample = {
  s_name : string;
  s_help : string;
  s_labels : (string * string) list;  (** sorted by key *)
  s_value : value;
}

val scrape : t -> sample list
(** Deterministic snapshot: shards merged by summation, samples sorted
    by name then labels. Safe to call while writers are active — each
    cell is read atomically (totals may straddle an in-flight update,
    but a quiesced registry always scrapes its exact event counts). *)

val find_value : sample list -> string -> (string * string) list -> value option

val counter_value : sample list -> ?labels:(string * string) list -> string -> int
(** Convenience: the merged value of a counter (or gauge); 0 when the
    metric is absent. *)

val hist_percentile : hvalue -> float -> int
(** [hist_percentile hv p] with [p] in [0,1]: the smallest bucket upper
    edge covering at least [p] of the samples; 0 on an empty histogram.
    @raise Invalid_argument when [p] is outside [0,1]. *)

val reset : t -> unit
(** Zero every cell (registrations survive). For benches and tests. *)

(** {2 The ambient process registry} *)

val ambient : unit -> t option
val is_enabled : unit -> bool
val enable : unit -> t
(** Idempotent: creates the ambient registry on first call. *)

val disable : unit -> unit
val with_ambient : (t -> unit) -> unit
(** Run [f] on the ambient registry when observability is on; a single
    atomic load and no allocation when it is off. *)
