(** Materialized uop traces.

    A trace is the unit fed to the simulator: a named, finite sequence of
    dynamic uops with concrete values (the ground truth produced by
    {!Generator}).

    Storage is a packed structure-of-arrays ({!Hc_isa.Uop_soa.t}) — the
    hot paths (simulator, codec, static analyses) walk its columns
    without allocating. A boxed {!Hc_isa.Uop.t} record view is
    materialized lazily on first use of {!get}/{!iter}/{!fold}/{!uops}
    and memoized, so record-based consumers pay the conversion once per
    trace, not per run. *)

type t = private {
  name : string;
  profile : Profile.t;  (** the profile the trace was generated from *)
  soa : Hc_isa.Uop_soa.t;
  mutable memo : Hc_isa.Uop.t array option;  (** use {!uops}, not this *)
}

val make : name:string -> profile:Profile.t -> Hc_isa.Uop.t array -> t
(** Build from a record array (packs it; the array is also retained as
    the memoized record view, so it must not be mutated afterwards). *)

val of_soa : name:string -> profile:Profile.t -> Hc_isa.Uop_soa.t -> t
(** Build from packed columns without materializing any records — the
    codec's zero-copy decode path. *)

val soa : t -> Hc_isa.Uop_soa.t

val uops : t -> Hc_isa.Uop.t array
(** The record view; forced and memoized on first call. Do not mutate. *)

val length : t -> int

val get : t -> int -> Hc_isa.Uop.t
(** [get t i] is the [i]-th dynamic uop. @raise Invalid_argument when out
    of bounds. *)

val iter : (Hc_isa.Uop.t -> unit) -> t -> unit

val fold : ('a -> Hc_isa.Uop.t -> 'a) -> 'a -> t -> 'a

val sub : t -> pos:int -> len:int -> t
(** Contiguous sub-trace (uop ids are preserved, not renumbered). *)

val narrow_result_fraction : t -> float
(** Fraction of destination-producing uops whose ground-truth result is
    narrow — the headline statistic behind Fig 1. *)

val pp_summary : Format.formatter -> t -> unit
(** One-line description: name, length, mix digest. *)
