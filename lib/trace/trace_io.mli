(** Trace serialization.

    A plain-text, line-oriented format so traces can be saved, diffed,
    versioned, and — most importantly — {e brought from outside}: anyone
    with real IA-32 uop traces can convert them to this format and run the
    full evaluation on them instead of the synthetic workloads.

    Format: a header line [helper-cluster-trace v1 <name> <count>]
    followed by one uop per line:

    {v
    <id> <pc> <op> dst=<reg|-> srcs=<operand:value,...> res=<value>
         addr=<value> taken=<0|1> misp=<0|1> dl0=<0|1> ul1=<0|1>
    v}

    where an operand is [r:<regname>] or [i] (immediate — its value is in
    the value slot). All values are hexadecimal.

    There is also a compact binary format ({!Codec}) for the artifact
    cache and bulk storage; {!load} transparently reads both, dispatching
    on the first bytes of the file. *)

val save : Trace.t -> string -> unit
(** [save t path] writes the trace in the text format.
    @raise Sys_error on I/O failure. *)

val save_binary : Trace.t -> string -> unit
(** [save_binary t path] writes the {!Codec} binary format (≥5× smaller,
    ≥20× faster to reload); {!load} reads it back transparently. *)

val load : ?profile:Profile.t -> string -> Trace.t
(** [load path] parses a trace saved by {!save} or {!save_binary} (or
    produced by an external converter), dispatching on the magic bytes.
    The attached profile defaults to the first SPEC personality and only
    matters for regeneration metadata.
    @raise Failure with a line number on malformed text input.
    @raise Codec.Corrupt on truncated/CRC-bad binary input. *)

val roundtrip_equal : Trace.t -> Trace.t -> bool
(** Structural equality of the uop streams (names may differ). *)
