(** Workload profiles — the statistical personality of one application.

    The paper evaluates on proprietary IA-32 traces (12 SPEC Int 2000
    slices for the detailed studies, 412 application traces for the final
    sweep). Those traces are not available, so each application becomes a
    {e profile}: instruction mix, value-width behaviour, dependence
    structure, carry locality, memory behaviour and control behaviour. The
    {!Generator} expands a profile into a concrete uop trace with real
    32-bit values; every simulator statistic is then {e measured}, never
    copied from the profile. *)

type category =
  | Spec_int
  | Spec_fp
  | Encoder
  | Kernels
  | Multimedia
  | Office
  | Productivity
  | Workstation

val category_to_string : category -> string
val category_of_string : string -> category option
val all_categories : category list
val pp_category : Format.formatter -> category -> unit

type width_character =
  | Stable_narrow  (** this static uop's result is narrow on every instance *)
  | Stable_wide
  | Mixed of float
      (** alternates; the float is the per-instance probability of flipping
          away from the last width — what defeats a last-width predictor *)

type t = {
  name : string;
  category : category;
  seed : int64;  (** root seed; the whole trace derives from it *)
  static_size : int;  (** static program footprint in uops *)
  (* instruction mix (fractions of the dynamic stream; remainder = ALU) *)
  f_load : float;
  f_store : float;
  f_cond_branch : float;
  f_uncond_branch : float;
  f_mul : float;
  f_div : float;
  f_fp : float;
  f_shift : float;
  (* value-width behaviour *)
  p_narrow_load : float;  (** prob. a static load has [Stable_narrow] character *)
  p_narrow_imm : float;  (** prob. an immediate operand is narrow *)
  p_narrow_chain : float;
      (** prob. an ALU static belongs to a narrow computation chain (loop
          counters, byte crunching) rather than a wide one (pointer and
          large-magnitude arithmetic) - real code keeps such chains
          width-coherent, which is what a last-width predictor learns *)
  p_extra_operand : float;
      (** prob. an ALU uop carries an implicit extra source operand (an
          IA-32 internal-state register: segment base, flags merge). The
          paper's explanation for why only 15% of instructions satisfy the
          all-narrow 8-8-8 condition despite 65% narrow dependence: "all
          the input operands (which can be more than 2 in the IA-32
          internal machine state) ... must be narrow". Implicit operands
          are mostly wide. *)
  p_mixed_width : float;  (** fraction of value-producing statics that are [Mixed] *)
  mixed_flip : float;  (** flip rate of [Mixed] statics *)
  (* dependence structure *)
  dep_distance_mean : float;
      (** mean producer–consumer distance in dynamic uops (Fig 13) *)
  p_second_src_imm : float;  (** ALU second operand is an immediate *)
  p_narrow_index : float;
      (** prob. a load/store address uses a recently produced (narrow)
          index register — the narrow→wide pressure that generates copies *)
  (* carry locality (§3.5) *)
  p_carry_local_load : float;
      (** prob. a base+offset address add stays within the low byte *)
  p_carry_local_arith : float;
  (* memory system *)
  p_dl0_miss : float;
  p_ul1_miss : float;
  (* control *)
  p_taken : float;
  p_mispredict : float;
  loop_back_mean : float;  (** mean backward-jump distance in static uops *)
}

val validate : t -> (unit, string) result
(** Checks every fraction lies in [0,1], the mix sums below 1, and sizes
    are positive. *)

val spec_int : t list
(** The 12 SPEC Int 2000 personalities (bzip2, crafty, eon, gap, gcc, gzip,
    mcf, parser, perlbmk, twolf, vortex, vpr), calibrated so the published
    first-order statistics (Fig 1, Fig 11, Fig 13, §1 operand-width mix)
    hold on the generated traces. *)

val spec_int_names : string list

val find_spec_int : string -> t
(** @raise Not_found for an unknown name. *)

val archetype : category -> t
(** The category-level archetype used by {!Workloads} to derive the 412-app
    suite. The [Spec_int] and [Spec_fp] archetypes are averages of their
    member personalities. *)

val with_seed : t -> int64 -> t

val fingerprint : t -> string
(** Hex digest over {e every} field of the profile (name, category, RNG
    seed, sizes, all rates). Two profiles generate the same trace
    universe iff their fingerprints match, which is what makes it the
    profile component of the on-disk artifact-cache key. *)

val pp : Format.formatter -> t -> unit
