module Uop = Hc_isa.Uop
module Uop_soa = Hc_isa.Uop_soa
module Width = Hc_isa.Width

type t = {
  name : string;
  profile : Profile.t;
  soa : Uop_soa.t;
  mutable memo : Uop.t array option;
      (* lazily-forced record view of [soa]; both views are immutable once
         built, and a racing double-force computes identical arrays, so the
         benign write-write race is safe *)
}

let make ~name ~profile uops =
  { name; profile; soa = Uop_soa.of_uops uops; memo = Some uops }

let of_soa ~name ~profile soa = { name; profile; soa; memo = None }

let soa t = t.soa

let uops t =
  match t.memo with
  | Some a -> a
  | None ->
      let a = Uop_soa.to_uops t.soa in
      t.memo <- Some a;
      a

let length t = Uop_soa.length t.soa

let get t i =
  if i < 0 || i >= length t then invalid_arg "Trace.get: out of bounds";
  (uops t).(i)

let iter f t = Array.iter f (uops t)

let fold f init t = Array.fold_left f init (uops t)

let sub t ~pos ~len =
  {
    t with
    soa = Uop_soa.sub t.soa ~pos ~len;
    memo = (match t.memo with Some a -> Some (Array.sub a pos len) | None -> None);
  }

let narrow_result_fraction t =
  let soa = t.soa in
  let producing = ref 0 and narrow = ref 0 in
  for i = 0 to Uop_soa.length soa - 1 do
    if Uop_soa.has_dest soa i then begin
      incr producing;
      if Width.is_narrow (Uop_soa.result soa i) then incr narrow
    end
  done;
  if !producing = 0 then 0. else float_of_int !narrow /. float_of_int !producing

let pp_summary ppf t =
  Format.fprintf ppf "%s: %d uops, %.1f%% narrow results" t.name (length t)
    (100. *. narrow_result_fraction t)
