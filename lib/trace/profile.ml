module Summary = Hc_stats.Summary

type category =
  | Spec_int
  | Spec_fp
  | Encoder
  | Kernels
  | Multimedia
  | Office
  | Productivity
  | Workstation

let category_to_string = function
  | Spec_int -> "specint"
  | Spec_fp -> "sfp"
  | Encoder -> "enc"
  | Kernels -> "kernels"
  | Multimedia -> "mm"
  | Office -> "office"
  | Productivity -> "prod"
  | Workstation -> "ws"

let category_of_string = function
  | "specint" -> Some Spec_int
  | "sfp" -> Some Spec_fp
  | "enc" -> Some Encoder
  | "kernels" -> Some Kernels
  | "mm" -> Some Multimedia
  | "office" -> Some Office
  | "prod" -> Some Productivity
  | "ws" -> Some Workstation
  | _ -> None

let all_categories =
  [ Spec_int; Spec_fp; Encoder; Kernels; Multimedia; Office; Productivity; Workstation ]

let pp_category ppf c = Format.pp_print_string ppf (category_to_string c)

type width_character =
  | Stable_narrow
  | Stable_wide
  | Mixed of float

type t = {
  name : string;
  category : category;
  seed : int64;
  static_size : int;
  f_load : float;
  f_store : float;
  f_cond_branch : float;
  f_uncond_branch : float;
  f_mul : float;
  f_div : float;
  f_fp : float;
  f_shift : float;
  p_narrow_load : float;
  p_narrow_imm : float;
  p_narrow_chain : float;
  p_extra_operand : float;
  p_mixed_width : float;
  mixed_flip : float;
  dep_distance_mean : float;
  p_second_src_imm : float;
  p_narrow_index : float;
  p_carry_local_load : float;
  p_carry_local_arith : float;
  p_dl0_miss : float;
  p_ul1_miss : float;
  p_taken : float;
  p_mispredict : float;
  loop_back_mean : float;
}

let fraction_fields p =
  [ ("f_load", p.f_load); ("f_store", p.f_store); ("f_cond_branch", p.f_cond_branch);
    ("f_uncond_branch", p.f_uncond_branch); ("f_mul", p.f_mul); ("f_div", p.f_div);
    ("f_fp", p.f_fp); ("f_shift", p.f_shift); ("p_narrow_load", p.p_narrow_load);
    ("p_narrow_imm", p.p_narrow_imm); ("p_narrow_chain", p.p_narrow_chain);
    ("p_extra_operand", p.p_extra_operand); ("p_mixed_width", p.p_mixed_width);
    ("mixed_flip", p.mixed_flip); ("p_second_src_imm", p.p_second_src_imm);
    ("p_narrow_index", p.p_narrow_index); ("p_carry_local_load", p.p_carry_local_load);
    ("p_carry_local_arith", p.p_carry_local_arith); ("p_dl0_miss", p.p_dl0_miss);
    ("p_ul1_miss", p.p_ul1_miss); ("p_taken", p.p_taken);
    ("p_mispredict", p.p_mispredict) ]

let validate p =
  let bad =
    List.find_opt (fun (_, v) -> v < 0. || v > 1.) (fraction_fields p)
  in
  match bad with
  | Some (name, v) -> Error (Printf.sprintf "%s: %s=%g out of [0,1]" p.name name v)
  | None ->
    let mix =
      p.f_load +. p.f_store +. p.f_cond_branch +. p.f_uncond_branch +. p.f_mul
      +. p.f_div +. p.f_fp +. p.f_shift
    in
    if mix >= 1. then Error (Printf.sprintf "%s: instruction mix sums to %g >= 1" p.name mix)
    else if p.static_size <= 0 then Error (Printf.sprintf "%s: static_size <= 0" p.name)
    else if p.dep_distance_mean < 1. then
      Error (Printf.sprintf "%s: dep_distance_mean < 1" p.name)
    else if p.loop_back_mean < 1. then
      Error (Printf.sprintf "%s: loop_back_mean < 1" p.name)
    else Ok ()

(* Baseline SPEC-Int-2000-like personality; each benchmark overrides the
   knobs that give it its published character. *)
let spec_int_base =
  {
    name = "specint-base";
    category = Spec_int;
    seed = 0x5EED_0001L;
    static_size = 2400;
    f_load = 0.24;
    f_store = 0.10;
    f_cond_branch = 0.07;
    f_uncond_branch = 0.03;
    f_mul = 0.010;
    f_div = 0.002;
    f_fp = 0.0;
    f_shift = 0.05;
    p_narrow_load = 0.72;
    p_narrow_imm = 0.90;
    p_narrow_chain = 0.60;
    p_extra_operand = 0.30;
    p_mixed_width = 0.05;
    mixed_flip = 0.20;
    dep_distance_mean = 5.25;
    p_second_src_imm = 0.40;
    p_narrow_index = 0.45;
    p_carry_local_load = 0.70;
    p_carry_local_arith = 0.50;
    p_dl0_miss = 0.04;
    p_ul1_miss = 0.10;
    p_taken = 0.62;
    p_mispredict = 0.06;
    loop_back_mean = 30.;
  }

let spec_int =
  [
    { spec_int_base with
      name = "bzip2"; p_narrow_chain = 0.62; seed = 0x5EED_0B21L;
      p_narrow_load = 0.78; p_narrow_index = 0.85; dep_distance_mean = 3.90;
      p_carry_local_load = 0.62; p_carry_local_arith = 0.42;
      p_dl0_miss = 0.05; p_mispredict = 0.07 };
    { spec_int_base with
      name = "crafty"; p_narrow_chain = 0.55; seed = 0x5EED_0C4AL;
      p_narrow_load = 0.68; f_shift = 0.10; p_narrow_index = 0.55;
      dep_distance_mean = 4.80; p_carry_local_load = 0.66;
      p_carry_local_arith = 0.46; p_mispredict = 0.05 };
    { spec_int_base with
      name = "eon"; p_narrow_chain = 0.40; seed = 0x5EED_0E07L;
      p_narrow_load = 0.66; f_fp = 0.06; f_mul = 0.02; p_narrow_index = 0.50;
      dep_distance_mean = 6.00; p_carry_local_load = 0.58;
      p_carry_local_arith = 0.40; p_mispredict = 0.04 };
    { spec_int_base with
      name = "gap"; p_narrow_chain = 0.68; seed = 0x5EED_0A90L;
      p_narrow_load = 0.76; p_narrow_index = 0.40; dep_distance_mean = 5.10;
      p_carry_local_load = 0.72; p_carry_local_arith = 0.52 };
    { spec_int_base with
      name = "gcc"; p_narrow_chain = 0.78; seed = 0x5EED_06CCL; static_size = 6000;
      p_narrow_load = 0.86; p_narrow_index = 0.20; dep_distance_mean = 6.60;
      p_carry_local_load = 0.78; p_carry_local_arith = 0.58;
      p_dl0_miss = 0.06; p_mispredict = 0.07 };
    { spec_int_base with
      name = "gzip"; p_narrow_chain = 0.72; seed = 0x5EED_0619L;
      p_narrow_load = 0.90; p_narrow_index = 0.60; dep_distance_mean = 4.20;
      p_carry_local_load = 0.80; p_carry_local_arith = 0.60;
      p_mispredict = 0.06 };
    { spec_int_base with
      name = "mcf"; p_narrow_chain = 0.85; seed = 0x5EED_03CFL;
      p_narrow_load = 0.90; p_narrow_index = 0.30; dep_distance_mean = 7.50;
      p_carry_local_load = 0.64; p_carry_local_arith = 0.50;
      p_dl0_miss = 0.18; p_ul1_miss = 0.45; p_mispredict = 0.08 };
    { spec_int_base with
      name = "parser"; p_narrow_chain = 0.72; seed = 0x5EED_0AA5L;
      p_narrow_load = 0.80; p_narrow_index = 0.42; dep_distance_mean = 5.40;
      p_carry_local_load = 0.74; p_carry_local_arith = 0.54;
      p_mispredict = 0.07 };
    { spec_int_base with
      name = "perlbmk"; p_narrow_chain = 0.58; seed = 0x5EED_0BECL; static_size = 4500;
      p_narrow_load = 0.80; p_narrow_index = 0.38; dep_distance_mean = 5.70;
      p_carry_local_load = 0.68; p_carry_local_arith = 0.48 };
    { spec_int_base with
      name = "twolf"; p_narrow_chain = 0.58; seed = 0x5EED_0207FL;
      p_narrow_load = 0.70; f_fp = 0.03; p_narrow_index = 0.48;
      dep_distance_mean = 5.85; p_carry_local_load = 0.60;
      p_carry_local_arith = 0.44; p_dl0_miss = 0.08 };
    { spec_int_base with
      name = "vortex"; p_narrow_chain = 0.62; seed = 0x5EED_00E8L; static_size = 5000;
      p_narrow_load = 0.80; p_narrow_index = 0.35; dep_distance_mean = 5.55;
      p_carry_local_load = 0.70; p_carry_local_arith = 0.50;
      p_dl0_miss = 0.06 };
    { spec_int_base with
      name = "vpr"; p_narrow_chain = 0.65; seed = 0x5EED_0B26L;
      p_narrow_load = 0.66; f_fp = 0.04; p_narrow_index = 0.47;
      dep_distance_mean = 5.25; p_carry_local_load = 0.63;
      p_carry_local_arith = 0.45; p_mispredict = 0.08 };
  ]

let spec_int_names = List.map (fun p -> p.name) spec_int

let find_spec_int name =
  match List.find_opt (fun p -> p.name = name) spec_int with
  | Some p -> p
  | None -> raise Not_found

let mean_of field = Summary.arithmetic_mean (List.map field spec_int)

(* Category archetypes for the Table-2 suite. Multimedia/kernels/encoders
   are narrow-friendly with regular control; office/productivity are
   branchy, wide and irregular (paper §3.8: they benefit least). *)
let archetype = function
  | Spec_int ->
    { spec_int_base with
      name = "specint-arch";
      p_narrow_load = mean_of (fun p -> p.p_narrow_load);
      p_narrow_chain = mean_of (fun p -> p.p_narrow_chain);
      p_narrow_index = mean_of (fun p -> p.p_narrow_index);
      dep_distance_mean = mean_of (fun p -> p.dep_distance_mean);
      p_carry_local_load = mean_of (fun p -> p.p_carry_local_load);
      p_carry_local_arith = mean_of (fun p -> p.p_carry_local_arith) }
  | Spec_fp ->
    { spec_int_base with
      name = "sfp-arch"; category = Spec_fp; p_narrow_chain = 0.45;
      f_load = 0.28; f_store = 0.09; f_cond_branch = 0.035; f_uncond_branch = 0.01;
      f_fp = 0.30; f_mul = 0.02; f_shift = 0.02;
      p_narrow_load = 0.55; p_narrow_index = 0.30; dep_distance_mean = 6.75;
      p_carry_local_load = 0.80; p_carry_local_arith = 0.62;
      p_taken = 0.80; p_mispredict = 0.02; p_dl0_miss = 0.07; p_ul1_miss = 0.20 }
  | Encoder ->
    { spec_int_base with
      name = "enc-arch"; category = Encoder; p_narrow_chain = 0.75;
      f_load = 0.26; f_store = 0.12; f_cond_branch = 0.05; f_shift = 0.10;
      f_mul = 0.03;
      p_narrow_load = 0.78; p_narrow_index = 0.45; dep_distance_mean = 4.20;
      p_carry_local_load = 0.82; p_carry_local_arith = 0.64;
      p_taken = 0.72; p_mispredict = 0.035 }
  | Kernels ->
    { spec_int_base with
      name = "kernels-arch"; category = Kernels; p_narrow_chain = 0.72;
      f_load = 0.30; f_store = 0.14; f_cond_branch = 0.04; f_uncond_branch = 0.01;
      f_fp = 0.12; f_shift = 0.06;
      p_narrow_load = 0.74; p_narrow_index = 0.40; dep_distance_mean = 3.60;
      p_carry_local_load = 0.86; p_carry_local_arith = 0.70;
      p_taken = 0.85; p_mispredict = 0.015; static_size = 800 }
  | Multimedia ->
    { spec_int_base with
      name = "mm-arch"; category = Multimedia; p_narrow_chain = 0.78;
      f_load = 0.27; f_store = 0.12; f_cond_branch = 0.045; f_shift = 0.09;
      f_mul = 0.025; f_fp = 0.05;
      p_narrow_load = 0.80; p_narrow_index = 0.42; dep_distance_mean = 3.90;
      p_carry_local_load = 0.84; p_carry_local_arith = 0.66;
      p_taken = 0.75; p_mispredict = 0.03 }
  | Office ->
    { spec_int_base with
      name = "office-arch"; category = Office; static_size = 7000; p_narrow_chain = 0.50;
      f_load = 0.25; f_store = 0.11; f_cond_branch = 0.09; f_uncond_branch = 0.05;
      p_narrow_load = 0.55; p_narrow_index = 0.40; dep_distance_mean = 6.30;
      p_carry_local_load = 0.60; p_carry_local_arith = 0.42;
      p_dl0_miss = 0.07; p_ul1_miss = 0.15; p_mispredict = 0.075 }
  | Productivity ->
    { spec_int_base with
      name = "prod-arch"; category = Productivity; static_size = 6000; p_narrow_chain = 0.48;
      f_load = 0.24; f_store = 0.10; f_cond_branch = 0.10; f_uncond_branch = 0.05;
      p_narrow_load = 0.52; p_narrow_index = 0.45; dep_distance_mean = 6.00;
      p_carry_local_load = 0.58; p_carry_local_arith = 0.40;
      p_dl0_miss = 0.08; p_ul1_miss = 0.18; p_mispredict = 0.08 }
  | Workstation ->
    { spec_int_base with
      name = "ws-arch"; category = Workstation; p_narrow_chain = 0.70;
      f_load = 0.28; f_store = 0.12; f_cond_branch = 0.045; f_fp = 0.10;
      p_narrow_load = 0.70; p_narrow_index = 0.40; dep_distance_mean = 4.20;
      p_carry_local_load = 0.80; p_carry_local_arith = 0.62;
      p_taken = 0.80; p_mispredict = 0.02; static_size = 1500 }

let with_seed p seed = { p with seed }

(* Canonical dump of every generation-relevant field. fraction_fields
   covers the [0,1] rates; the remaining knobs are appended explicitly so
   a new field that skips both lists shows up as a compile error here
   rather than as a silently-stale cache key. *)
let canonical p =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf "name=%s|cat=%s|seed=0x%Lx|static=%d" p.name
       (category_to_string p.category) p.seed p.static_size);
  List.iter
    (fun (k, v) -> Buffer.add_string b (Printf.sprintf "|%s=%.17g" k v))
    (fraction_fields p
    @ [ ("dep_distance_mean", p.dep_distance_mean);
        ("loop_back_mean", p.loop_back_mean) ]);
  Buffer.contents b

let fingerprint p = Digest.to_hex (Digest.string ("hc-profile-v1|" ^ canonical p))

let pp ppf p =
  Format.fprintf ppf
    "@[<v>%s (%a)@ mix: ld=%.2f st=%.2f jcc=%.2f jmp=%.2f mul=%.3f div=%.3f \
     fp=%.2f sh=%.2f@ width: narrow_load=%.2f narrow_imm=%.2f mixed=%.2f \
     flip=%.2f@ dep: dist=%.1f imm2=%.2f narrow_index=%.2f@ carry: ld=%.2f \
     ar=%.2f@ mem: dl0=%.3f ul1=%.3f@ ctrl: taken=%.2f misp=%.3f@]"
    p.name pp_category p.category p.f_load p.f_store p.f_cond_branch
    p.f_uncond_branch p.f_mul p.f_div p.f_fp p.f_shift p.p_narrow_load
    p.p_narrow_imm p.p_mixed_width p.mixed_flip p.dep_distance_mean
    p.p_second_src_imm p.p_narrow_index p.p_carry_local_load
    p.p_carry_local_arith p.p_dl0_miss p.p_ul1_miss p.p_taken p.p_mispredict
