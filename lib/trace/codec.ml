module Uop = Hc_isa.Uop
module Uop_soa = Hc_isa.Uop_soa
module Reg = Hc_isa.Reg
module Opcode = Hc_isa.Opcode

exception Corrupt of string

let corrupt fmt = Printf.ksprintf (fun s -> raise (Corrupt s)) fmt

let schema_version = 1

let magic = "HCTB"

let is_binary s =
  String.length s >= String.length magic
  && String.sub s 0 (String.length magic) = magic

(* ----- name tables ----- *)

let reg_names =
  lazy
    (let h = Hashtbl.create (2 * Reg.count) in
     for i = 0 to Reg.count - 1 do
       let r = Reg.of_index i in
       Hashtbl.replace h (Reg.to_string r) r
     done;
     h)

let reg_of_name n = Hashtbl.find_opt (Lazy.force reg_names) n

let op_names =
  lazy
    (let h = Hashtbl.create 64 in
     List.iter (fun op -> Hashtbl.replace h (Opcode.to_string op) op) Opcode.all;
     h)

let op_of_name n = Hashtbl.find_opt (Lazy.force op_names) n

(* ----- CRC-32 (IEEE 802.3, reflected, 0xEDB88320) ----- *)

(* Slicing-by-4: tables.(k*256+i) advances the register by 4 bytes per
   step instead of 1, which matters because the CRC pass touches every
   byte of every cache reload. *)
let crc_tables =
  lazy
    (let t = Array.make (4 * 256) 0 in
     for n = 0 to 255 do
       let c = ref n in
       for _ = 0 to 7 do
         c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
       done;
       t.(n) <- !c
     done;
     for k = 1 to 3 do
       for n = 0 to 255 do
         let prev = t.(((k - 1) * 256) + n) in
         t.((k * 256) + n) <- t.(prev land 0xFF) lxor (prev lsr 8)
       done
     done;
     t)

let crc32 s ~pos ~len =
  let tbl = Lazy.force crc_tables in
  let c = ref 0xFFFF_FFFF in
  let i = ref pos in
  let stop = pos + len in
  while !i + 4 <= stop do
    let w =
      (Int32.to_int (String.get_int32_le s !i) land 0xFFFF_FFFF) lxor !c
    in
    c :=
      Array.unsafe_get tbl (768 + (w land 0xFF))
      lxor Array.unsafe_get tbl (512 + ((w lsr 8) land 0xFF))
      lxor Array.unsafe_get tbl (256 + ((w lsr 16) land 0xFF))
      lxor Array.unsafe_get tbl ((w lsr 24) land 0xFF);
    i := !i + 4
  done;
  while !i < stop do
    c :=
      Array.unsafe_get tbl ((!c lxor Char.code (String.unsafe_get s !i)) land 0xFF)
      lxor (!c lsr 8);
    incr i
  done;
  !c lxor 0xFFFF_FFFF

(* ----- varints ----- *)

(* LEB128 on non-negative ints; signed deltas go through zigzag so small
   magnitudes of either sign stay one byte. *)

let rec add_varint b n =
  if n land lnot 0x7F = 0 then Buffer.add_char b (Char.unsafe_chr n)
  else begin
    Buffer.add_char b (Char.unsafe_chr (0x80 lor (n land 0x7F)));
    add_varint b (n lsr 7)
  end

let zigzag n = (n lsl 1) lxor (n asr 62)

let unzigzag n = (n lsr 1) lxor (- (n land 1))

let add_svarint b n = add_varint b (zigzag n)

let add_string b s =
  add_varint b (String.length s);
  Buffer.add_string b s

(* ----- encode ----- *)

let obs_bytes name n =
  Hc_obs.Registry.with_ambient (fun r ->
      Hc_obs.Registry.add
        (Hc_obs.Registry.counter r ~help:"Binary trace codec bytes moved" name)
        n)

let encode (t : Trace.t) =
  Hc_obs.Span.with_span "encode" ~meta:[ ("benchmark", t.Trace.name) ]
  @@ fun () ->
  let b = Buffer.create (64 + (16 * Trace.length t)) in
  Buffer.add_string b magic;
  Buffer.add_char b (Char.chr schema_version);
  add_string b t.Trace.name;
  add_varint b (Trace.length t);
  (* name tables: full enum vocabularies, indexed by position *)
  add_varint b (List.length Opcode.all);
  List.iter (fun op -> add_string b (Opcode.to_string op)) Opcode.all;
  add_varint b Reg.count;
  for i = 0 to Reg.count - 1 do
    add_string b (Reg.to_string (Reg.of_index i))
  done;
  (* walk the packed columns directly: the column contents are already
     the wire indices (opcode/register tables are written in enum order),
     and the packed flag byte is the wire flag byte, so encoding never
     forces the trace's record view *)
  let soa = Trace.soa t in
  let prev_id = ref (-1) and prev_pc = ref 0 in
  for i = 0 to Uop_soa.length soa - 1 do
    let id = Uop_soa.id soa i and pc = Uop_soa.pc soa i in
    add_svarint b (id - !prev_id - 1);
    prev_id := id;
    add_svarint b (pc - !prev_pc);
    prev_pc := pc;
    add_varint b (Uop_soa.op_index soa i);
    add_varint b (Uop_soa.dst_index soa i + 1);
    Buffer.add_char b (Char.chr (Char.code (Bytes.get soa.Uop_soa.flags i) land 0xF));
    let lo = Uop_soa.src_base soa i and n = Uop_soa.nsrcs soa i in
    add_varint b n;
    for j = lo to lo + n - 1 do
      ( match Uop_soa.src_reg soa j with
      | -1 -> Buffer.add_char b '\000'
      | reg ->
        Buffer.add_char b '\001';
        add_varint b reg );
      add_varint b (Uop_soa.src_val soa j)
    done;
    add_varint b (Uop_soa.result soa i);
    (* mem_addr is base + offset of the first two source values for
       every well-formed memory uop (lint E107), so it delta-codes
       against that sum to one byte; 0 (non-memory) keeps its own code
       so it never pays for the full-magnitude delta. *)
    ( match Uop_soa.mem_addr soa i with
    | 0 -> add_varint b 0
    | addr ->
      let base =
        if n >= 2 then Uop_soa.src_val soa lo + Uop_soa.src_val soa (lo + 1)
        else 0
      in
      add_varint b (1 + zigzag (addr - base)) )
  done;
  let payload = Buffer.contents b in
  let hdr = String.length magic + 1 in
  let crc = crc32 payload ~pos:hdr ~len:(String.length payload - hdr) in
  let out = Buffer.create (String.length payload + 4) in
  Buffer.add_string out payload;
  for i = 0 to 3 do
    Buffer.add_char out (Char.chr ((crc lsr (8 * i)) land 0xFF))
  done;
  let bytes = Buffer.contents out in
  obs_bytes "hc_codec_encoded_bytes_total" (String.length bytes);
  bytes

(* ----- decode ----- *)

type reader = { s : string; mutable pos : int; limit : int }

let read_byte r =
  if r.pos >= r.limit then corrupt "truncated at byte %d" r.pos;
  let c = Char.code (String.unsafe_get r.s r.pos) in
  r.pos <- r.pos + 1;
  c

let rec read_varint_at r acc shift =
  if shift > 62 then corrupt "varint overflow at byte %d" r.pos;
  let byte = read_byte r in
  let acc = acc lor ((byte land 0x7F) lsl shift) in
  if byte land 0x80 = 0 then acc else read_varint_at r acc (shift + 7)

let read_varint r = read_varint_at r 0 0

let read_svarint r = unzigzag (read_varint r)

let read_string r =
  let len = read_varint r in
  if len < 0 || r.pos + len > r.limit then
    corrupt "truncated string at byte %d" r.pos;
  let s = String.sub r.s r.pos len in
  r.pos <- r.pos + len;
  s

let decode ?profile s =
  Hc_obs.Span.with_span "decode"
  @@ fun () ->
  obs_bytes "hc_codec_decoded_bytes_total" (String.length s);
  let profile =
    match profile with Some p -> p | None -> List.hd Profile.spec_int
  in
  let total = String.length s in
  let hdr = String.length magic + 1 in
  if total < hdr + 4 then corrupt "short file (%d bytes)" total;
  if not (is_binary s) then corrupt "bad magic (not a binary trace)";
  let schema = Char.code s.[String.length magic] in
  if schema <> schema_version then
    corrupt "unsupported schema %d (this build reads %d)" schema schema_version;
  let stored =
    Char.code s.[total - 4]
    lor (Char.code s.[total - 3] lsl 8)
    lor (Char.code s.[total - 2] lsl 16)
    lor (Char.code s.[total - 1] lsl 24)
  in
  let actual = crc32 s ~pos:hdr ~len:(total - hdr - 4) in
  if stored <> actual then
    corrupt "crc mismatch (stored 0x%08X, computed 0x%08X): truncated or \
             bit-flipped file"
      stored actual;
  let r = { s; pos = hdr; limit = total - 4 } in
  let name = read_string r in
  let count = read_varint r in
  (* the header tables map wire indices to this build's dense enum
     indices — the columns store enum indices directly, so the rest of
     decode never touches an [Opcode.t] or [Reg.t] value *)
  let nops = read_varint r in
  let ops =
    Array.init nops (fun _ ->
        let n = read_string r in
        match op_of_name n with
        | Some op -> Opcode.to_index op
        | None -> corrupt "unknown opcode %S in header table" n)
  in
  let nregs = read_varint r in
  let regs =
    Array.init nregs (fun _ ->
        let n = read_string r in
        match reg_of_name n with
        | Some reg -> Reg.to_index reg
        | None -> corrupt "unknown register %S in header table" n)
  in
  let op_at i =
    if i < 0 || i >= nops then corrupt "opcode index %d out of table" i;
    Array.unsafe_get ops i
  in
  let reg_at i =
    if i < 0 || i >= nregs then corrupt "register index %d out of table" i;
    Array.unsafe_get regs i
  in
  (* zero-copy materialization: varints land straight in the packed
     columns through a sequential builder — no [Uop.t] record, operand
     list or option is ever constructed on this path *)
  let b = Uop_soa.builder count in
  let prev_id = ref (-1) and prev_pc = ref 0 in
  for _ = 1 to count do
    let id = !prev_id + 1 + read_svarint r in
    prev_id := id;
    let pc = !prev_pc + read_svarint r in
    prev_pc := pc;
    let op = op_at (read_varint r) in
    let dst = match read_varint r with 0 -> -1 | d -> reg_at (d - 1) in
    let flags = read_byte r land 0xF in
    let nsrcs = read_varint r in
    if nsrcs < 0 || nsrcs > 16 then
      corrupt "implausible operand count %d at uop %d" nsrcs id;
    for _ = 1 to nsrcs do
      match read_byte r with
      | 0 -> Uop_soa.push_src b ~reg:(-1) ~v:(read_varint r)
      | 1 ->
        let reg = reg_at (read_varint r) in
        Uop_soa.push_src b ~reg ~v:(read_varint r)
      | t -> corrupt "bad operand tag %d at uop %d" t id
    done;
    let result = read_varint r in
    let mem_addr =
      match read_varint r with
      | 0 -> 0
      | m ->
        (* E107 invariant: reconstruct against base + offset (the first
           two already-pushed source values) exactly as encoded *)
        let base =
          if Uop_soa.pending_nsrcs b >= 2 then
            Uop_soa.pending_src_val b 0 + Uop_soa.pending_src_val b 1
          else 0
        in
        base + unzigzag (m - 1)
    in
    Uop_soa.close_uop b ~id ~pc ~op ~dst ~result ~mem_addr ~flags
  done;
  if r.pos <> r.limit then
    corrupt "%d trailing bytes after uop %d" (r.limit - r.pos) !prev_id;
  Trace.of_soa ~name ~profile (Uop_soa.build b)

let save (t : Trace.t) path =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (encode t))

let load ?profile path =
  let ic = open_in_bin path in
  let s =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  decode ?profile s
