(** Compact binary trace format.

    The interchange text format ({!Trace_io}) is human-greppable but
    costs a string parse per field; reloading a 30k-uop trace through it
    is slower than simulating it. This codec is the fast path the
    artifact cache stores: a little-endian varint stream that decodes
    with nothing but byte reads and table lookups.

    Layout (schema 1):

    - magic ["HCTB"] + 1 schema byte;
    - header: trace name, uop count, then the opcode and register {e name
      tables} — decoders map table indices back through the names, so a
      reordering of the [Opcode.t]/[Reg.t] enums cannot silently corrupt
      old files;
    - per uop: zigzag-varint delta-coded id and pc (dense ids and looping
      pcs encode in one byte each), opcode/register table indices, one
      packed flag byte (taken/mispredict/dl0/ul1), varint operand values
      and result, and the memory address delta-coded against base+offset
      of the first two source values (one byte for every well-formed
      memory uop, see lint E107);
    - trailer: CRC-32 of header+body, little-endian.

    Every structural defect — short file, flipped bit, unknown table
    name, bad magic — raises {!Corrupt} with a description; nothing is
    ever silently mis-decoded past the CRC. *)

exception Corrupt of string
(** Raised by {!decode}/{!load} on any malformed input. *)

val schema_version : int
(** Bumped on any layout change; part of the artifact-cache key, so stale
    cache entries from older schemas are never even looked at. *)

val magic : string
(** The 4-byte file prefix, ["HCTB"]. *)

val is_binary : string -> bool
(** [is_binary s] says whether the buffer (or its prefix) starts with
    {!magic} — the dispatch test {!Trace_io.load} uses. *)

val encode : Trace.t -> string
(** Serialize; the profile is {e not} stored (same contract as the text
    format — supply it again at {!decode} time). *)

val decode : ?profile:Profile.t -> string -> Trace.t
(** Decode a full encoded buffer. [profile] defaults like
    {!Trace_io.load}. @raise Corrupt on malformed input. *)

val save : Trace.t -> string -> unit
(** Write [encode] output to a file (binary mode). *)

val load : ?profile:Profile.t -> string -> Trace.t
(** Read and {!decode} a file. @raise Corrupt on malformed content. *)

val crc32 : string -> pos:int -> len:int -> int
(** The trailer checksum (IEEE 802.3 polynomial), exposed for tests. *)

(** {2 Name tables}

    One [Hashtbl] per namespace, built once — shared by the binary
    header decoder and the text parser, which previously paid an [O(n)]
    [List.assoc] per token. *)

val reg_of_name : string -> Hc_isa.Reg.t option
val op_of_name : string -> Hc_isa.Opcode.t option
