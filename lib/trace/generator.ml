module Opcode = Hc_isa.Opcode
module Reg = Hc_isa.Reg
module Uop = Hc_isa.Uop
module Value = Hc_isa.Value
module Width = Hc_isa.Width

(* A static program whose instructions name fixed registers, as real code
   does: the dependence structure and the width stability seen by the
   simulator's last-width predictor both emerge from the program text, not
   from per-instance sampling. The dynamic walk dwells in regions (program
   phases) and loops inside them, which is what gives the 256-entry tagless
   predictor of section 3.2 its locality. *)

type kind =
  | K_load of { base : Reg.t; index : Reg.t option }
  | K_store of { base : Reg.t; data : Reg.t }
  | K_alu of {
      op : Opcode.t;
      a : Reg.t;
      b : Reg.t option;  (* None = immediate *)
      narrow_chain : bool;  (* which width chain this static belongs to *)
      extra : Reg.t option;
          (* implicit IA-32 internal-state operand (segment base, flags
             merge input): usually wide, and what keeps the all-narrow
             8-8-8 condition rare (paper section 3.2) *)
    }
  | K_shift of { op : Opcode.t; a : Reg.t; amount : int }
  | K_mov_imm
  | K_cond_branch of { back : int; cmp_src : Reg.t; backward : bool }
      (* [backward]: a loop back-edge; otherwise a forward if-branch whose
         taken direction skips a few statics *)
  | K_uncond_branch of int
  | K_mul of { a : Reg.t; b : Reg.t }
  | K_div of { a : Reg.t; b : Reg.t }
  | K_fp of { op : Opcode.t; a : Reg.t; b : Reg.t }
  | K_ptr_update of { r : Reg.t; inc : int }

type static = {
  s_index : int;
  s_kind : kind;
  s_dst : Reg.t option;
  s_tag : bool;  (* which width chain this static's result feeds *)
  s_width : Profile.width_character;  (* result width character (loads, movs) *)
  s_imm : Value.t;  (* fixed immediate operand where the kind uses one *)
  s_carry_local : bool;
      (* whether this site's base+offset arithmetic habitually stays within
         the low byte - a per-site property (array walk vs wide stride),
         which is what makes the CR last-value bit learnable *)
  mutable s_last_narrow : bool;  (* running state of a Mixed character *)
}

type state = {
  profile : Profile.t;
  rng : Rng.t;
  statics : static array;
  reg_vals : Value.t array;
  mutable sp : int;
  mutable region_start : int;
  mutable region_len : int;
  mutable loop_floor : int;
      (* exited loops are never re-entered: a taken branch may not jump
         back past the fall-through point of the last exited loop, which
         keeps loop nests sequential instead of trapping the walk in the
         first nest of every region *)
  mutable next_id : int;
  mutable pending_branch : static option;
      (* a conditional branch whose flag-producing cmp was just emitted *)
}

let data_regs = [| Reg.Eax; Reg.Ecx; Reg.Edx; Reg.Ebx;
                   Reg.Tmp 0; Reg.Tmp 1; Reg.Tmp 2; Reg.Tmp 3;
                   Reg.Tmp 4; Reg.Tmp 5; Reg.Tmp 6; Reg.Tmp 7 |]

(* Register allocation keeps width chains apart, as compilers in practice
   do with induction variables vs pointer temporaries: narrow chains live
   in one half of the register name space, wide chains in the other. This
   is what stops one wide value from contaminating every narrow chain in
   the region (and what makes last-width prediction learnable at all). *)
let narrow_pool = [| Reg.Eax; Reg.Ecx; Reg.Tmp 0; Reg.Tmp 1; Reg.Tmp 2; Reg.Tmp 3 |]

let wide_pool = [| Reg.Edx; Reg.Ebx; Reg.Tmp 4; Reg.Tmp 5; Reg.Tmp 6; Reg.Tmp 7 |]

let pointer_regs = [| Reg.Esp; Reg.Ebp; Reg.Esi; Reg.Edi |]

let pick_width_character rng ~p_mixed ~flip ~p_narrow =
  if Rng.bool rng p_mixed then Profile.Mixed flip
  else if Rng.bool rng p_narrow then Profile.Stable_narrow
  else Profile.Stable_wide

(* ----- static program construction ----- *)

(* Construction context: the destination registers of the most recent
   statics, so sources wire to nearby producers with the profile's
   dependence distance; plus the registers most recently given narrow
   values, for register-indexed addressing. *)
type build = {
  b_rng : Rng.t;
  mutable b_recent_narrow : Reg.t list;  (* newest first, bounded *)
  mutable b_recent_wide : Reg.t list;
}

let push_bounded x l =
  x :: (if List.length l >= 24 then List.filteri (fun i _ -> i < 23) l else l)

(* Real programs keep computation chains width-coherent: a byte-crunching
   loop reads byte values, pointer arithmetic reads pointers. Sources are
   therefore wired within the chain of the requested width, falling back
   across when that chain has no recent producer. *)
let source_reg (p : Profile.t) b ~narrow =
  let primary, fallback =
    if narrow then (b.b_recent_narrow, b.b_recent_wide)
    else (b.b_recent_wide, b.b_recent_narrow)
  in
  let pool = if primary = [] then fallback else primary in
  match pool with
  | [] -> Rng.choice b.b_rng data_regs
  | recent ->
    let d = Rng.geometric b.b_rng p.dep_distance_mean in
    let n = List.length recent in
    List.nth recent (min (d - 1) (n - 1))

let narrow_source_reg b =
  match b.b_recent_narrow with
  | [] -> None
  | r :: _ -> Some r

let record_write b (s : static) =
  match s.s_dst with
  | None -> ()
  | Some r ->
    if s.s_tag then b.b_recent_narrow <- push_bounded r b.b_recent_narrow
    else b.b_recent_wide <- push_bounded r b.b_recent_wide

let make_static (p : Profile.t) b i =
  let rng = b.b_rng in
  let alu_ops = [| Opcode.Add; Opcode.Add; Opcode.Sub; Opcode.And; Opcode.Or; Opcode.Xor |] in
  let shift_ops = [| Opcode.Shl; Opcode.Shr |] in
  let fp_ops = [| Opcode.Fp_add; Opcode.Fp_add; Opcode.Fp_mul; Opcode.Fp_div |] in
  let rest =
    1. -. (p.f_load +. p.f_store +. p.f_cond_branch +. p.f_uncond_branch
           +. p.f_mul +. p.f_div +. p.f_fp +. p.f_shift)
  in
  let f_mov_imm = rest *. 0.12 and f_ptr = rest *. 0.05 in
  let f_alu = rest -. f_mov_imm -. f_ptr in
  let kind_tag =
    Rng.weighted rng
      [ (p.f_load, `Load); (p.f_store, `Store); (p.f_cond_branch, `Cond);
        (p.f_uncond_branch, `Uncond); (p.f_mul, `Mul); (p.f_div, `Div);
        (p.f_fp, `Fp); (p.f_shift, `Shift); (f_mov_imm, `Mov_imm);
        (f_ptr, `Ptr); (f_alu, `Alu) ]
  in
  let dst ~tag () =
    Some (Rng.choice rng (if tag then narrow_pool else wide_pool))
  in
  let width ~p_narrow =
    pick_width_character rng ~p_mixed:p.p_mixed_width ~flip:p.mixed_flip ~p_narrow
  in
  let tag_of_character = function
    | Profile.Stable_narrow -> true
    | Profile.Stable_wide -> false
    | Profile.Mixed _ -> Rng.bool rng 0.5
  in
  let narrow_imm () = Rng.int rng 0x40 in
  let wide_imm () = Value.mask32 (0x0001_0000 lor (Rng.int rng 0xFFFF lsl 8)) in
  let base =
    { s_index = i; s_kind = K_mov_imm; s_dst = None; s_tag = false;
      s_width = Profile.Stable_narrow; s_imm = 0; s_carry_local = false;
      s_last_narrow = true }
  in
  let s =
    match kind_tag with
    | `Load ->
      let index =
        if Rng.bool rng p.p_narrow_index then narrow_source_reg b else None
      in
      let w = width ~p_narrow:p.p_narrow_load in
      let tag = tag_of_character w in
      { base with
        s_kind = K_load { base = Rng.choice rng pointer_regs; index };
        s_dst = dst ~tag ();
        s_width = w;
        s_tag = tag;
        s_carry_local = Rng.bool rng p.p_carry_local_load }
    | `Store ->
      { base with
        s_kind = K_store { base = Rng.choice rng pointer_regs;
                           data = source_reg p b ~narrow:(Rng.bool rng p.p_narrow_chain) };
        s_carry_local = Rng.bool rng p.p_carry_local_load }
    | `Cond ->
      (* loop-exit compares read induction variables: narrow chains *)
      { base with
        s_kind = K_cond_branch { back = Rng.geometric rng p.loop_back_mean;
                                 cmp_src = source_reg p b ~narrow:(Rng.bool rng 0.85);
                                 backward = Rng.bool rng 0.5 };
        s_imm = (if Rng.bool rng 0.85 then narrow_imm () else wide_imm ()) }
    | `Uncond -> { base with s_kind = K_uncond_branch (1 + Rng.int rng 8) }
    | `Mul ->
      { base with
        s_kind = K_mul { a = source_reg p b ~narrow:false;
                         b = source_reg p b ~narrow:true };
        s_dst = dst ~tag:false () }
    | `Div ->
      { base with
        s_kind = K_div { a = source_reg p b ~narrow:false;
                         b = source_reg p b ~narrow:true };
        s_dst = dst ~tag:false () }
    | `Fp ->
      { base with
        s_kind = K_fp { op = Rng.choice rng fp_ops;
                        a = source_reg p b ~narrow:false;
                        b = source_reg p b ~narrow:false };
        s_dst = dst ~tag:false () }
    | `Shift ->
      let tag = Rng.bool rng p.p_narrow_chain in
      { base with
        s_kind = K_shift { op = Rng.choice rng shift_ops;
                           a = source_reg p b ~narrow:tag;
                           amount = 1 + Rng.int rng 4 };
        s_dst = dst ~tag ();
        s_tag = tag }
    | `Mov_imm ->
      let w = width ~p_narrow:p.p_narrow_imm in
      let tag = tag_of_character w in
      { base with s_kind = K_mov_imm; s_dst = dst ~tag (); s_width = w;
        s_tag = tag }
    | `Ptr ->
      let r = Rng.choice rng pointer_regs in
      { base with s_kind = K_ptr_update { r; inc = 4 * (1 + Rng.int rng 0x40) };
        s_dst = Some r }
    | `Alu ->
      let extra =
        if Rng.bool rng p.p_extra_operand then Some (Rng.choice rng pointer_regs)
        else None
      in
      (* uops carrying implicit machine-state operands are address-class
         work: they belong to wide chains *)
      let narrow_chain = extra = None && Rng.bool rng p.p_narrow_chain in
      let second =
        if Rng.bool rng p.p_second_src_imm then None
        else begin
          (* chains are width-coherent but not hermetic: a quarter of
             register pairs mix widths (address+offset, mask+word), which
             is where the paper's "one narrow operand" class comes from *)
          let cross = Rng.bool rng 0.25 in
          Some (source_reg p b ~narrow:(if cross then not narrow_chain else narrow_chain))
        end
      in
      { base with
        s_kind = K_alu { op = Rng.choice rng alu_ops;
                         a = source_reg p b ~narrow:narrow_chain;
                         b = second; narrow_chain; extra };
        s_dst = dst ~tag:narrow_chain ();
        s_tag = narrow_chain;
        s_imm =
          (if narrow_chain || Rng.bool rng p.p_narrow_imm then narrow_imm ()
           else wide_imm ());
        s_carry_local = Rng.bool rng p.p_carry_local_arith }
  in
  record_write b s;
  s

let create (p : Profile.t) =
  ( match Profile.validate p with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Generator.create: " ^ msg) );
  let rng = Rng.create p.seed in
  let b = { b_rng = rng; b_recent_narrow = []; b_recent_wide = [] } in
  let statics = Array.init p.static_size (fun i -> make_static p b i) in
  let reg_vals = Array.make Reg.count 0 in
  Array.iteri
    (fun i r ->
      reg_vals.(Reg.to_index r) <-
        Value.mask32 (0x0800_0000 + (i * 0x0100_0000) + Rng.int rng 0xFFFF))
    pointer_regs;
  Array.iter (fun r -> reg_vals.(Reg.to_index r) <- Rng.int rng 0x40) data_regs;
  { profile = p; rng; statics; reg_vals; sp = 0; region_start = 0;
    region_len = min 128 p.static_size; loop_floor = 0; next_id = 0;
    pending_branch = None }

(* ----- dynamic value machinery ----- *)

(* Narrow values in real programs are loop counters, small offsets, flags
   and characters: heavily skewed towards tiny magnitudes. Keeping them
   small keeps narrow+narrow arithmetic narrow most of the time, with an
   occasional genuine overflow into 9 bits - the paper's fatal
   width-misprediction source. *)
let draw_narrow rng =
  if Rng.bool rng 0.15 then Value.mask32 (0xFFFF_FFF0 lor Rng.int rng 0x10)
  else if Rng.bool rng 0.55 then Rng.int rng 0x20
  else if Rng.bool rng 0.6 then Rng.int rng 0x80
  else Rng.int rng 0x100

let draw_wide rng =
  let v = Value.mask32 ((Rng.int rng 0x7FFF_FFFF lsl 8) lor Rng.int rng 0x100) in
  if Width.is_narrow v then v lor 0x0001_0000 else v

let draw_by_character st (s : static) =
  match s.s_width with
  | Profile.Stable_narrow -> draw_narrow st.rng
  | Profile.Stable_wide -> draw_wide st.rng
  | Profile.Mixed flip ->
    if Rng.bool st.rng flip then s.s_last_narrow <- not s.s_last_narrow;
    if s.s_last_narrow then draw_narrow st.rng else draw_wide st.rng

let reg_val st r = st.reg_vals.(Reg.to_index r)

let writeback st (u : Uop.t) =
  ( match u.Uop.dst with
  | Some d -> st.reg_vals.(Reg.to_index d) <- u.Uop.result
  | None -> () );
  if Uop.writes_flags u then st.reg_vals.(Reg.to_index Reg.Eflags) <- u.Uop.result

let pc_of_static (s : static) = Value.mask32 (0x0040_0000 + (4 * s.s_index))

(* Offset immediate for a wide + imm addition: drawn so the low-byte
   addition carries exactly when the given carry-locality probability says
   it should. Synthetic traces let us enforce the profile's carry locality
   constructively here; register-indexed addresses take whatever the index
   register holds. *)
let adherence = 0.995
(* how faithfully a site follows its habitual carry behaviour *)

let local_offset st ~site_local partial_sum =
  let low = partial_sum land 0xFF in
  let local_now = if site_local then Rng.bool st.rng adherence
                  else Rng.bool st.rng (1. -. adherence) in
  if local_now then Rng.int st.rng (max 1 (0x100 - low))
  else begin
    let need = 0x100 - low in
    if need <= 0xFF then need + Rng.int st.rng (0x100 - need)
    else 0x100 + Rng.int st.rng 0x100
  end

(* ----- the dynamic walk ----- *)

let new_region st =
  let n = Array.length st.statics in
  st.region_start <- Rng.int st.rng n;
  st.region_len <- min n (48 + Rng.int st.rng 160);
  st.sp <- st.region_start;
  st.loop_floor <- st.region_start

let region_end st =
  min (Array.length st.statics) (st.region_start + st.region_len)

(* Sequential flow within the current region; at the region's end either
   run it again (an outer loop) or move to a fresh region (a call or a new
   program phase). *)
let advance st =
  let next = st.sp + 1 in
  if next >= region_end st then begin
    if Rng.bool st.rng 0.85 then begin
      st.sp <- st.region_start;
      st.loop_floor <- st.region_start
    end
    else new_region st
  end
  else st.sp <- next

let fresh_id st =
  let id = st.next_id in
  st.next_id <- id + 1;
  id

let gen_cmp st (s : static) =
  let id = fresh_id st in
  match s.s_kind with
  | K_cond_branch { cmp_src; _ } ->
    let rv = reg_val st cmp_src in
    Uop.make ~id ~pc:(Value.add (pc_of_static s) 2) ~op:Opcode.Cmp
      ~srcs:[ Uop.Reg cmp_src; Uop.Imm s.s_imm ] ~dst:None
      ~src_vals:[ rv; s.s_imm ] ()
  | K_load _ | K_store _ | K_alu _ | K_shift _ | K_mov_imm
  | K_uncond_branch _ | K_mul _ | K_div _ | K_fp _ | K_ptr_update _ ->
    assert false

let gen_uop st (s : static) =
  let p = st.profile in
  let pc = pc_of_static s in
  match s.s_kind with
  | K_load { base; index } ->
    let id = fresh_id st in
    let base_val = reg_val st base in
    let offset_src, offset_val =
      match index with
      | Some idx -> (Uop.Reg idx, reg_val st idx)
      | None ->
        let off = local_offset st ~site_local:s.s_carry_local base_val in
        (Uop.Imm off, off)
    in
    let addr = Value.add base_val offset_val in
    let result = draw_by_character st s in
    let dl0_miss = Rng.bool st.rng p.p_dl0_miss in
    let ul1_miss = dl0_miss && Rng.bool st.rng p.p_ul1_miss in
    (* miss monotonicity is a construction-time invariant (hc_lint E105):
       a UL1 miss can only happen on the DL0 miss path *)
    assert ((not ul1_miss) || dl0_miss);
    advance st;
    Uop.make ~id ~pc ~op:Opcode.Load ~srcs:[ Uop.Reg base; offset_src ]
      ~dst:s.s_dst ~src_vals:[ base_val; offset_val ] ~result ~mem_addr:addr
      ~dl0_miss ~ul1_miss ()
  | K_store { base; data } ->
    let id = fresh_id st in
    let base_val = reg_val st base in
    let off = local_offset st ~site_local:s.s_carry_local base_val in
    let data_val = reg_val st data in
    advance st;
    Uop.make ~id ~pc ~op:Opcode.Store
      ~srcs:[ Uop.Reg base; Uop.Imm off; Uop.Reg data ]
      ~dst:None ~src_vals:[ base_val; off; data_val ] ~result:data_val
      ~mem_addr:(Value.add base_val off) ()
  | K_alu { op; a; b; narrow_chain = _; extra } ->
    let id = fresh_id st in
    let av = reg_val st a in
    let srcs, vals =
      match b with
      | Some reg -> ([ Uop.Reg a; Uop.Reg reg ], [ av; reg_val st reg ])
      | None ->
        let imm =
          if op = Opcode.Add && not (Width.is_narrow av) then
            local_offset st ~site_local:s.s_carry_local av
          else if op = Opcode.Sub && not (Width.is_narrow av) then begin
            (* borrow-free when the site is habitually local *)
            let low = av land 0xFF in
            let local_now = if s.s_carry_local then Rng.bool st.rng adherence
                            else Rng.bool st.rng (1. -. adherence) in
            if local_now then Rng.int st.rng (low + 1)
            else if low < 0xFF then low + 1 + Rng.int st.rng (0xFF - low)
            else 0x100 + Rng.int st.rng 0x1000
          end
          else s.s_imm
        in
        ([ Uop.Reg a; Uop.Imm imm ], [ av; imm ])
    in
    let srcs, vals =
      match extra with
      | Some r -> (srcs @ [ Uop.Reg r ], vals @ [ reg_val st r ])
      | None -> (srcs, vals)
    in
    let result =
      (* the implicit operand is machine state, not an arithmetic input *)
      match Hc_isa.Semantics.eval op [ List.nth vals 0; List.nth vals 1 ] with
      | Some r -> r
      | None -> 0
    in
    advance st;
    Uop.make ~id ~pc ~op ~srcs ~dst:s.s_dst ~src_vals:vals ~result ()
  | K_shift { op; a; amount } ->
    let id = fresh_id st in
    advance st;
    Uop.make ~id ~pc ~op ~srcs:[ Uop.Reg a; Uop.Imm amount ] ~dst:s.s_dst
      ~src_vals:[ reg_val st a; amount ] ()
  | K_mov_imm ->
    let id = fresh_id st in
    let v = draw_by_character st s in
    advance st;
    Uop.make ~id ~pc ~op:Opcode.Mov ~srcs:[ Uop.Imm v ] ~dst:s.s_dst
      ~src_vals:[ v ] ()
  | K_cond_branch { back; backward; _ } ->
    let id = fresh_id st in
    let flags = reg_val st Reg.Eflags in
    (* loops iterate many times, so back-edges are strongly taken; forward
       if-branches compensate so the overall taken rate tracks the profile *)
    let p_taken =
      if backward then Float.min 0.95 (p.p_taken +. 0.26)
      else Float.max 0.05 (p.p_taken -. 0.26)
    in
    let taken = Rng.bool st.rng p_taken in
    let mispred = Rng.bool st.rng p.p_mispredict in
    ( if backward then begin
        let body_start = max st.loop_floor (st.sp - back) in
        if taken && st.sp - body_start >= 4 then st.sp <- body_start
        else begin
          (* the loop exits - or its body would be degenerate (a one-uop
             loop would make branch pairs dominate the stream): never jump
             back into it again *)
          st.loop_floor <- st.sp;
          advance st
        end
      end
      else begin
        (* forward if-branch: taken skips a short then-block *)
        if taken then begin
          let target = st.sp + 1 + (back mod 8) in
          if target >= region_end st then advance st else st.sp <- target
        end
        else advance st
      end );
    Uop.make ~id ~pc ~op:Opcode.Branch_cond ~srcs:[ Uop.Reg Reg.Eflags ]
      ~dst:None ~src_vals:[ flags ] ~result:flags ~taken
      ~branch_mispredicted:mispred ()
  | K_uncond_branch fwd ->
    let id = fresh_id st in
    if Rng.bool st.rng 0.03 then new_region st
    else begin
      let target = st.sp + fwd in
      if target >= region_end st then begin
        if Rng.bool st.rng 0.85 then begin
          st.sp <- st.region_start;
          st.loop_floor <- st.region_start
        end
        else new_region st
      end
      else st.sp <- target
    end;
    Uop.make ~id ~pc ~op:Opcode.Branch_uncond ~srcs:[] ~dst:None ~src_vals:[]
      ~taken:true ()
  | K_mul { a; b } ->
    let id = fresh_id st in
    advance st;
    Uop.make ~id ~pc ~op:Opcode.Mul ~srcs:[ Uop.Reg a; Uop.Reg b ]
      ~dst:s.s_dst ~src_vals:[ reg_val st a; reg_val st b ] ()
  | K_div { a; b } ->
    let id = fresh_id st in
    advance st;
    Uop.make ~id ~pc ~op:Opcode.Div ~srcs:[ Uop.Reg a; Uop.Reg b ]
      ~dst:s.s_dst ~src_vals:[ reg_val st a; reg_val st b ] ()
  | K_fp { op; a; b } ->
    let id = fresh_id st in
    let result = draw_wide st.rng in
    advance st;
    Uop.make ~id ~pc ~op ~srcs:[ Uop.Reg a; Uop.Reg b ] ~dst:s.s_dst
      ~src_vals:[ reg_val st a; reg_val st b ] ~result ()
  | K_ptr_update { r; inc } ->
    let id = fresh_id st in
    let rv = reg_val st r in
    advance st;
    Uop.make ~id ~pc ~op:Opcode.Add ~srcs:[ Uop.Reg r; Uop.Imm inc ]
      ~dst:(Some r) ~src_vals:[ rv; inc ] ()

let next st =
  let u =
    match st.pending_branch with
    | Some branch_static ->
      st.pending_branch <- None;
      gen_uop st branch_static
    | None ->
      let s = st.statics.(st.sp) in
      ( match s.s_kind with
      | K_cond_branch _ ->
        (* the flag-producing cmp goes first; the branch follows *)
        st.pending_branch <- Some s;
        gen_cmp st s
      | K_load _ | K_store _ | K_alu _ | K_shift _ | K_mov_imm
      | K_uncond_branch _ | K_mul _ | K_div _ | K_fp _ | K_ptr_update _ ->
        gen_uop st s )
  in
  writeback st u;
  u

let generate ?(length = 50_000) p =
  let st = create p in
  let uops = Array.init length (fun _ -> next st) in
  Trace.make ~name:p.Profile.name ~profile:p uops

let generate_sliced ?(length = 50_000) p =
  let st = create p in
  let skip = 3 * length / 7 in
  for _ = 1 to skip do
    ignore (next st)
  done;
  let uops = Array.init length (fun _ -> next st) in
  Trace.make ~name:p.Profile.name ~profile:p uops
