module Uop = Hc_isa.Uop
module Reg = Hc_isa.Reg
module Opcode = Hc_isa.Opcode

(* Name lookups go through the Hashtbls Codec builds once — the old
   List.assoc pair cost O(registers) per operand token. *)

let reg_of_string name =
  match Codec.reg_of_name name with
  | Some r -> r
  | None -> failwith (Printf.sprintf "unknown register %S" name)

let op_of_string name =
  match Codec.op_of_name name with
  | Some op -> op
  | None -> failwith (Printf.sprintf "unknown opcode %S" name)

let operand_to_string = function
  | Uop.Reg r -> "r:" ^ Reg.to_string r
  | Uop.Imm _ -> "i"

let bool_field b = if b then "1" else "0"

let uop_to_line (u : Uop.t) =
  let srcs =
    String.concat ","
      (List.map2
         (fun src v -> Printf.sprintf "%s:%x" (operand_to_string src) v)
         u.Uop.srcs u.Uop.src_vals)
  in
  Printf.sprintf
    "%d %x %s dst=%s srcs=%s res=%x addr=%x taken=%s misp=%s dl0=%s ul1=%s"
    u.Uop.id u.Uop.pc (Opcode.to_string u.Uop.op)
    (match u.Uop.dst with Some r -> Reg.to_string r | None -> "-")
    srcs u.Uop.result u.Uop.mem_addr (bool_field u.Uop.taken)
    (bool_field u.Uop.branch_mispredicted)
    (bool_field u.Uop.dl0_miss) (bool_field u.Uop.ul1_miss)

let save (t : Trace.t) path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      Printf.fprintf oc "helper-cluster-trace v1 %s %d\n" t.Trace.name
        (Trace.length t);
      Trace.iter (fun u -> output_string oc (uop_to_line u ^ "\n")) t)

let save_binary = Codec.save

let split_kv field =
  match String.index_opt field '=' with
  | Some i ->
    ( String.sub field 0 i,
      String.sub field (i + 1) (String.length field - i - 1) )
  | None -> failwith (Printf.sprintf "expected key=value, got %S" field)

let parse_bool = function
  | "0" -> false
  | "1" -> true
  | s -> failwith (Printf.sprintf "expected 0/1, got %S" s)

let parse_operand part =
  (* "r:<reg>:<hexvalue>" or "i:<hexvalue>" *)
  match String.split_on_char ':' part with
  | [ "r"; reg; v ] ->
    let value = int_of_string ("0x" ^ v) in
    (Uop.Reg (reg_of_string reg), value)
  | [ "i"; v ] ->
    let value = int_of_string ("0x" ^ v) in
    (Uop.Imm value, value)
  | _ -> failwith (Printf.sprintf "malformed operand %S" part)

let uop_of_line line =
  match String.split_on_char ' ' line with
  | [ id; pc; op; dst; srcs; res; addr; taken; misp; dl0; ul1 ] ->
    let field expect s =
      let k, v = split_kv s in
      if k <> expect then failwith (Printf.sprintf "expected %s=, got %s=" expect k);
      v
    in
    let dst = field "dst" dst in
    let srcs = field "srcs" srcs in
    let operands =
      if srcs = "" then []
      else List.map parse_operand (String.split_on_char ',' srcs)
    in
    Uop.make ~id:(int_of_string id)
      ~pc:(int_of_string ("0x" ^ pc))
      ~op:(op_of_string op)
      ~srcs:(List.map fst operands)
      ~dst:(if dst = "-" then None else Some (reg_of_string dst))
      ~src_vals:(List.map snd operands)
      ~result:(int_of_string ("0x" ^ field "res" res))
      ~mem_addr:(int_of_string ("0x" ^ field "addr" addr))
      ~taken:(parse_bool (field "taken" taken))
      ~branch_mispredicted:(parse_bool (field "misp" misp))
      ~dl0_miss:(parse_bool (field "dl0" dl0))
      ~ul1_miss:(parse_bool (field "ul1" ul1))
      ()
  | _ -> failwith "wrong field count"

let load_text ~profile content =
  (* trailing newline yields one final "" entry; lines past the declared
     count are ignored, exactly as the old line-reader did *)
  let lines = Array.of_list (String.split_on_char '\n' content) in
  if Array.length lines = 0 then failwith "bad header (empty file)";
  let header = lines.(0) in
  let name, count =
    match String.split_on_char ' ' header with
    | [ "helper-cluster-trace"; "v1"; name; count ] -> (
      match int_of_string_opt count with
      | Some n when n >= 0 -> (name, n)
      | Some _ | None -> failwith "bad header count")
    | _ -> failwith "bad header (expected helper-cluster-trace v1 ...)"
  in
  let uops =
    Array.init count (fun i ->
        if i + 1 >= Array.length lines || lines.(i + 1) = "" then
          failwith (Printf.sprintf "truncated at uop %d" i);
        try uop_of_line lines.(i + 1)
        with Failure msg ->
          failwith (Printf.sprintf "line %d: %s" (i + 2) msg))
  in
  Trace.make ~name ~profile uops

let load ?profile path =
  let profile =
    match profile with Some p -> p | None -> List.hd Profile.spec_int
  in
  let ic = open_in_bin path in
  let content =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  if Codec.is_binary content then Codec.decode ~profile content
  else load_text ~profile content

let roundtrip_equal (a : Trace.t) (b : Trace.t) =
  Trace.length a = Trace.length b
  &&
  let equal = ref true in
  for i = 0 to Trace.length a - 1 do
    if Trace.get a i <> Trace.get b i then equal := false
  done;
  !equal
