type entry = {
  mutable last_narrow : bool;
  conf : Confidence.t;
}

type t = {
  table : entry array;
  mask_modulo : int;
}

type prediction = {
  narrow : bool;
  confident : bool;
}

let create ?(entries = 256) ?(conf_bits = 2) () =
  if entries <= 0 then invalid_arg "Width_predictor.create: entries <= 0";
  {
    table =
      Array.init entries (fun _ ->
          { last_narrow = false; conf = Confidence.create ~bits:conf_bits () });
    mask_modulo = entries;
  }

let entries t = t.mask_modulo

(* PCs step by 4; drop the low bits before indexing so neighbouring statics
   do not all collide into a quarter of the table. *)
let index t pc = (pc lsr 2) mod t.mask_modulo

let predict t pc =
  let e = t.table.(index t pc) in
  { narrow = e.last_narrow; confident = Confidence.is_high e.conf }

(* Scalar reads of the same entry, for hot paths that must not allocate
   the prediction record. *)
let predict_narrow t pc = (t.table.(index t pc)).last_narrow

let predict_confident t pc = Confidence.is_high (t.table.(index t pc)).conf

let update t pc ~narrow =
  let e = t.table.(index t pc) in
  if e.last_narrow = narrow then Confidence.strengthen e.conf
  else begin
    Confidence.weaken e.conf;
    e.last_narrow <- narrow
  end

let accuracy_probe t pc ~narrow = (predict t pc).narrow = narrow
