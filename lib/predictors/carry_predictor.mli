(** The carry-width extension of §3.5 (CR scheme).

    One extra bit per width-predictor entry records whether the last
    occurrence of this (8-32-32 shaped) instruction operated entirely
    within the low 8 bits — no carry/borrow out of bit 7. A 2-bit
    confidence estimator gates steering, as in the base predictor.
    Multiply/divide are never trained or predicted here
    ({!Hc_isa.Opcode.carry_eligible} filters them upstream). *)

type t

type prediction = {
  carry_local : bool;  (** last occurrence did not propagate a carry *)
  confident : bool;
}

val create : ?entries:int -> ?conf_bits:int -> unit -> t
(** Default 256 entries / 2-bit confidence, mirroring the base table. *)

val predict : t -> Hc_isa.Value.t -> prediction

val predict_carry_local : t -> Hc_isa.Value.t -> bool
(** [(predict t pc).carry_local] without allocating the record. *)

val predict_confident : t -> Hc_isa.Value.t -> bool
(** [(predict t pc).confident] without allocating the record. *)

val update : t -> Hc_isa.Value.t -> carry_local:bool -> unit
(** Writeback training with the observed carry behaviour. *)
