type entry = {
  mutable carry_local : bool;
  conf : Confidence.t;
}

type t = {
  table : entry array;
  modulo : int;
}

type prediction = {
  carry_local : bool;
  confident : bool;
}

let create ?(entries = 256) ?(conf_bits = 2) () =
  if entries <= 0 then invalid_arg "Carry_predictor.create: entries <= 0";
  {
    table =
      Array.init entries (fun _ ->
          { carry_local = false; conf = Confidence.create ~bits:conf_bits () });
    modulo = entries;
  }

let index t pc = (pc lsr 2) mod t.modulo

let predict t pc =
  let e = t.table.(index t pc) in
  { carry_local = e.carry_local; confident = Confidence.is_high e.conf }

(* Scalar reads of the same entry, for allocation-free hot paths. *)
let predict_carry_local t pc = (t.table.(index t pc)).carry_local

let predict_confident t pc = Confidence.is_high (t.table.(index t pc)).conf

let update t pc ~carry_local =
  let e = t.table.(index t pc) in
  if e.carry_local = carry_local then Confidence.strengthen e.conf
  else begin
    Confidence.weaken e.conf;
    e.carry_local <- carry_local
  end
