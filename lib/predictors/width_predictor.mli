(** The data-width predictor of §3.2 (Fig 4).

    A tagless, PC-indexed table (256 entries in the paper's final design).
    Each entry stores the last observed result width (1 bit) and a 2-bit
    confidence estimator; steering to the helper cluster only happens on a
    high-confidence narrow prediction. Being tagless, distinct static
    instructions alias the same entry — exactly as in hardware — which is
    one genuine source of mispredictions. *)

type t

type prediction = {
  narrow : bool;  (** last observed width for this entry *)
  confident : bool;  (** the 2-bit estimator is saturated *)
}

val create : ?entries:int -> ?conf_bits:int -> unit -> t
(** Default 256 entries, 2-bit confidence (the paper's design point).
    @raise Invalid_argument if [entries <= 0]. *)

val entries : t -> int

val predict : t -> Hc_isa.Value.t -> prediction
(** [predict t pc] — combinational read, no state change. *)

val predict_narrow : t -> Hc_isa.Value.t -> bool
(** [(predict t pc).narrow] without allocating the record — the
    simulator's dispatch loop reads predictions through these. *)

val predict_confident : t -> Hc_isa.Value.t -> bool
(** [(predict t pc).confident] without allocating the record. *)

val update : t -> Hc_isa.Value.t -> narrow:bool -> unit
(** Writeback training: record the actual result width. Confidence
    strengthens when the width matches the stored last width and clears
    when it flips. *)

val accuracy_probe : t -> Hc_isa.Value.t -> narrow:bool -> bool
(** [accuracy_probe t pc ~narrow] is [true] when the current prediction
    for [pc] matches [narrow] — a convenience for instrumentation; does
    not train. *)
