(** Cross-run regression comparison.

    Both sides are flattened to numeric leaves ({!Loader.numeric_leaves})
    and compared key by key under per-metric relative tolerances. The
    simulator is deterministic, so the default tolerance is exactly 0 —
    a committed baseline acts as a bit-exact gate and any drift is a
    finding, not noise. Wall-clock and host-identity fields are ignored
    by a built-in rule table; bench kernel times only regress when they
    get {e slower}. *)

type direction =
  | Two_sided  (** any relative change beyond tolerance regresses *)
  | Higher_better  (** only a drop beyond tolerance regresses *)
  | Lower_better  (** only a rise beyond tolerance regresses *)
  | Ignored  (** machine/time identity: never compared *)

type status = Pass | Regress | Missing | New

type entry = {
  key : string;
  dir : direction;
  base : float option;
  cand : float option;
  rel : float;  (** (cand - base) / |base|; 0 when both sides are 0 *)
  tol : float;
  status : status;
}

type report = {
  entries : entry list;  (** source order of the baseline, new keys last *)
  compared : int;  (** entries actually held to a tolerance *)
  regressions : int;
  missing : int;
}

val classify : string -> direction
(** The built-in rule table, keyed on the dotted path. *)

val run :
  ?tols:(string * float) list ->
  ?default_tol:float ->
  base:Json.t ->
  cand:Json.t ->
  unit ->
  report
(** [tols] maps a key or key prefix to a relative tolerance (longest
    match wins); [default_tol] (default [0.]) covers the rest. *)

val exit_code : report -> int
(** 0 pass, 1 any regression, 2 no regression but baseline keys missing
    from the candidate. Regressions take priority over missing keys. *)

val pp_status : status -> string
