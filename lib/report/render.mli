(** Terminal rendering for [hc_report].

    All functions return the finished string; the CLI decides where it
    goes. Tables reuse [Hc_stats.Table] so the report output matches the
    bench harness visually. *)

val run_label : Json.t -> string
(** ["name [scheme]"] when the metrics file carries both, else a stub. *)

val summary_table : (string * Json.t) list -> string
(** Cross-scheme comparison: one column per loaded metrics file, one row
    per headline metric (IPC, steered/copies %, width-prediction
    outcome, issue totals). *)

val attrib_table : (string * Json.t) list -> string
(** Steering-attribution breakdown per run: committed helper-cluster
    uops by steering reason (888/BR/CR/IR-split/other) and the wide
    commits split into by-default vs demoted-by-recovery, each as count
    and % of committed. Schema 3 files also get a "provable (static)"
    row — the forward static width-inference steering bound attached by
    [Hc_core.Runs] — and schema 5 files a "provable (bidir)" row, the
    tightened bidirectional bound ("-" for older files). *)

val over_static_bound : Json.t -> bool
(** [true] when the file's predicted 8-8-8 steering ([steered_888])
    exceeds its tightest static provable bound ([static_bidir_bound]
    when present, else [static_narrow_bound]) — the predictors are
    speculating past what is provably safe to execute narrow, so some of
    that steering is exposed to width-violation recoveries. [false] when
    the keys are absent (pre-schema-3 files). *)

val attrib_consistent : Json.t -> bool
(** The attribution identity on a loaded metrics file: narrow reasons
    sum to [steered_narrow], [steered_ir = split_uops], wide columns sum
    to [committed - steered_narrow]. Files predating schema 2 (no
    attribution fields) report [true] vacuously. *)

val topdown_consistent : Json.t -> bool
(** The partition invariant on a schema-4 metrics file: for each lane of
    the ["stall"] object (wide / narrow / commit), the nine category
    counts sum to exactly [lane_width x rounds] — no tolerance. Files
    without a stall object (accounting off, or pre-schema-4) report
    [true] vacuously. *)

val topdown_table : Json.t -> string
(** Per-lane top-down slot attribution from one metrics file: one row
    per stall category, slot count and share per lane, plus the exact
    expected totals row. *)

val topdown_delta_table :
  base:string * Json.t -> cand:string * Json.t -> string
(** Policy-vs-policy view: each category's share of lane slots under the
    base and candidate runs side by side with the delta in percentage
    points — where did the cycles the faster policy recovered come
    from. *)

val stall_timeline_columns : string list
(** The phase-visible subset of the stall-interval CSV columns, for
    {!timeline} [~columns]. *)

val timeline : ?width:int -> ?columns:string list -> Loader.csv -> string
(** Sparkline per column of an interval CSV (default: the phase-visible
    ones — ipc, steered_narrow, copies, wpred_accuracy_pct, rob). *)

val diff_table : ?all:bool -> Diff.report -> string
(** The comparison verdict: by default only non-passing entries plus a
    summary line; [all] lists every compared key. *)
