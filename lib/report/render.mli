(** Terminal rendering for [hc_report].

    All functions return the finished string; the CLI decides where it
    goes. Tables reuse [Hc_stats.Table] so the report output matches the
    bench harness visually. *)

val run_label : Json.t -> string
(** ["name [scheme]"] when the metrics file carries both, else a stub. *)

val summary_table : (string * Json.t) list -> string
(** Cross-scheme comparison: one column per loaded metrics file, one row
    per headline metric (IPC, steered/copies %, width-prediction
    outcome, issue totals). *)

val attrib_table : (string * Json.t) list -> string
(** Steering-attribution breakdown per run: committed helper-cluster
    uops by steering reason (888/BR/CR/IR-split/other) and the wide
    commits split into by-default vs demoted-by-recovery, each as count
    and % of committed. *)

val attrib_consistent : Json.t -> bool
(** The attribution identity on a loaded metrics file: narrow reasons
    sum to [steered_narrow], [steered_ir = split_uops], wide columns sum
    to [committed - steered_narrow]. Files predating schema 2 (no
    attribution fields) report [true] vacuously. *)

val timeline : ?width:int -> ?columns:string list -> Loader.csv -> string
(** Sparkline per column of an interval CSV (default: the phase-visible
    ones — ipc, steered_narrow, copies, wpred_accuracy_pct, rob). *)

val diff_table : ?all:bool -> Diff.report -> string
(** The comparison verdict: by default only non-passing entries plus a
    summary line; [all] lists every compared key. *)
