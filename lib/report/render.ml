module Table = Hc_stats.Table

let field j name = Option.bind (Json.member name j) Json.number

let string_field j name = Option.bind (Json.member name j) Json.string_value

let run_label j =
  match (string_field j "name", string_field j "scheme") with
  | Some n, Some s -> Printf.sprintf "%s [%s]" n s
  | Some n, None -> n
  | None, _ -> "(unnamed)"

let fmt_opt fmt = function None -> "-" | Some v -> Printf.sprintf fmt v

let count j name = fmt_opt "%.0f" (field j name)

let pct_of j name ~of_ =
  match (field j name, field j of_) with
  | Some v, Some total when total > 0. ->
    Printf.sprintf "%.1f%%" (100. *. v /. total)
  | Some _, Some _ -> "0.0%"
  | _ -> "-"

let summary_table runs =
  let t = Table.create ("metric" :: List.map (fun (_, j) -> run_label j) runs) in
  let row name cell = Table.add_row t (name :: List.map cell runs) in
  row "committed" (fun (_, j) -> count j "committed");
  row "cycles" (fun (_, j) -> fmt_opt "%.0f" (field j "cycles"));
  row "ipc" (fun (_, j) -> fmt_opt "%.3f" (field j "ipc"));
  row "steered narrow" (fun (_, j) ->
      pct_of j "steered_narrow" ~of_:"committed");
  row "copies" (fun (_, j) -> pct_of j "copies" ~of_:"committed");
  row "split uops" (fun (_, j) -> count j "split_uops");
  Table.add_separator t;
  row "wpred correct" (fun (_, j) ->
      match
        ( field j "wpred_correct", field j "wpred_fatal",
          field j "wpred_nonfatal" )
      with
      | Some c, Some f, Some nf when c +. f +. nf > 0. ->
        Printf.sprintf "%.1f%%" (100. *. c /. (c +. f +. nf))
      | _ -> "-");
  row "wpred fatal" (fun (_, j) -> count j "wpred_fatal");
  row "prefetch useful" (fun (_, j) ->
      pct_of j "prefetch_useful" ~of_:"prefetch_copies");
  row "issued total" (fun (_, j) -> count j "issued_total");
  Table.render t

let attrib_rows =
  [ ("888 all-narrow", "steered_888"); ("BR flag-branch", "steered_br");
    ("CR carry", "steered_cr"); ("IR split-slice", "steered_ir");
    ("other narrow", "steered_other") ]

let wide_rows =
  [ ("wide by default", "wide_default"); ("wide demoted", "wide_demoted") ]

let attrib_cell j key =
  match (field j key, field j "committed") with
  | Some v, Some total when total > 0. ->
    Printf.sprintf "%.0f (%.1f%%)" v (100. *. v /. total)
  | Some v, _ -> Printf.sprintf "%.0f" v
  | None, _ -> "-"

let attrib_table runs =
  let t =
    Table.create ("steered by" :: List.map (fun (_, j) -> run_label j) runs)
  in
  List.iter
    (fun (label, key) ->
      Table.add_row t
        (label :: List.map (fun (_, j) -> attrib_cell j key) runs))
    attrib_rows;
  Table.add_separator t;
  Table.add_row t
    ("narrow total"
    :: List.map (fun (_, j) -> attrib_cell j "steered_narrow") runs);
  Table.add_row t
    ("provable (static)"
    :: List.map (fun (_, j) -> attrib_cell j "static_narrow_bound") runs);
  Table.add_row t
    ("provable (bidir)"
    :: List.map (fun (_, j) -> attrib_cell j "static_bidir_bound") runs);
  Table.add_separator t;
  List.iter
    (fun (label, key) ->
      Table.add_row t
        (label :: List.map (fun (_, j) -> attrib_cell j key) runs))
    wide_rows;
  Table.render t

(* Compare against the tightest bound the file carries: the bidirectional
   one when present (schema 5), the forward one otherwise. *)
let over_static_bound j =
  let bound =
    match field j "static_bidir_bound" with
    | Some _ as b -> b
    | None -> field j "static_narrow_bound"
  in
  match (field j "steered_888", bound) with
  | Some predicted, Some bound -> predicted > bound
  | _ -> false

let attrib_consistent j =
  match
    ( field j "steered_888", field j "steered_br", field j "steered_cr",
      field j "steered_ir", field j "steered_other" )
  with
  | Some a, Some b, Some c, Some d, Some e -> (
    match
      ( field j "steered_narrow", field j "split_uops", field j "committed",
        field j "wide_default", field j "wide_demoted" )
    with
    | Some narrow, Some splits, Some committed, Some wd, Some wdem ->
      a +. b +. c +. d +. e = narrow
      && d = splits
      && wd +. wdem = committed -. narrow
    | _ -> false )
  | _ -> true (* schema 1 file: nothing to check *)

(* ----- top-down stall attribution (schema-4 "stall" object) ----- *)

(* Category and lane names mirror Hc_sim.Accounting; this library is
   dependency-free so the JSON schema is the contract, not the module. *)
let stall_categories =
  [ "issued"; "frontend"; "dispatch"; "wait_operands"; "wait_copy"; "memory";
    "width_recovery"; "drained"; "idle" ]

let stall_lanes = [ "wide"; "narrow"; "commit" ]

let stall_obj j = Json.member "stall" j

let stall_lane_slots stall lane =
  (* exact expected slot count: lane width x accounted rounds *)
  let width =
    field stall (if lane = "commit" then "commit_width" else "issue_width")
  in
  match (Json.member lane stall, width) with
  | Some l, Some w -> (
    match field l "rounds" with Some r -> Some (w *. r) | None -> None )
  | _ -> None

let stall_cell stall lane cat =
  Option.bind (Json.member lane stall) (fun l -> field l cat)

let topdown_consistent j =
  match stall_obj j with
  | None -> true (* pre-schema-4 file or accounting off: nothing to check *)
  | Some stall ->
    List.for_all
      (fun lane ->
        match stall_lane_slots stall lane with
        | None -> false
        | Some expected ->
          let sum =
            List.fold_left
              (fun acc cat ->
                match stall_cell stall lane cat with
                | Some v -> acc +. v
                | None -> Float.nan)
              0. stall_categories
          in
          sum = expected (* exact; nan (missing category) fails *))
      stall_lanes

let topdown_table j =
  match stall_obj j with
  | None -> "(no stall object — run hc_sim with --topdown)"
  | Some stall ->
    let t =
      Table.create
        ("category"
        :: List.map (fun l -> l ^ " slots (share)") stall_lanes)
    in
    List.iter
      (fun cat ->
        Table.add_row t
          (cat
          :: List.map
               (fun lane ->
                 match
                   (stall_cell stall lane cat, stall_lane_slots stall lane)
                 with
                 | Some v, Some total when total > 0. ->
                   Printf.sprintf "%.0f (%.1f%%)" v (100. *. v /. total)
                 | Some v, _ -> Printf.sprintf "%.0f" v
                 | None, _ -> "-")
               stall_lanes))
      stall_categories;
    Table.add_separator t;
    Table.add_row t
      ("total slots"
      :: List.map
           (fun lane -> fmt_opt "%.0f" (stall_lane_slots stall lane))
           stall_lanes);
    Table.render t

(* policy-vs-policy delta view: per lane, each category's share under the
   base and candidate runs plus the delta in percentage points *)
let topdown_delta_table ~base:(bn, bj) ~cand:(cn, cj) =
  match (stall_obj bj, stall_obj cj) with
  | Some bs, Some cs ->
    let share stall lane cat =
      match (stall_cell stall lane cat, stall_lane_slots stall lane) with
      | Some v, Some total when total > 0. -> Some (100. *. v /. total)
      | _ -> None
    in
    let t =
      Table.create
        ("category"
        :: List.map
             (fun l -> Printf.sprintf "%s: %s -> %s" l bn cn)
             stall_lanes)
    in
    List.iter
      (fun cat ->
        Table.add_row t
          (cat
          :: List.map
               (fun lane ->
                 match (share bs lane cat, share cs lane cat) with
                 | Some a, Some b ->
                   Printf.sprintf "%5.1f%% -> %5.1f%% (%+.1fpp)" a b (b -. a)
                 | _ -> "-")
               stall_lanes))
      stall_categories;
    Table.render t
  | _ -> "(both runs need a stall object for the delta view)"

(* the phase-visible subset of the 30 stall-CSV columns *)
let stall_timeline_columns =
  [ "wide_issued"; "wide_dispatch"; "wide_memory"; "narrow_issued";
    "narrow_dispatch"; "narrow_wait_copy"; "commit_issued"; "commit_memory" ]

let default_timeline_columns =
  [ "ipc"; "steered_narrow"; "copies"; "wpred_accuracy_pct"; "rob" ]

let timeline ?(width = 60) ?columns csv =
  let wanted =
    match columns with Some cs -> cs | None -> default_timeline_columns
  in
  let lines =
    List.filter_map
      (fun name ->
        match Loader.column csv name with
        | Some xs -> Some (Sparkline.render_labelled ~width ~label:name xs)
        | None -> None)
      wanted
  in
  String.concat "\n"
    (Printf.sprintf "%s: %d intervals" csv.Loader.csv_path (Loader.rows csv)
    :: lines)

let diff_table ?(all = false) (r : Diff.report) =
  let interesting (e : Diff.entry) =
    match e.Diff.status with
    | Diff.Pass -> all && e.Diff.dir <> Diff.Ignored
    | Diff.New -> all
    | Diff.Regress | Diff.Missing -> true
  in
  let shown = List.filter interesting r.Diff.entries in
  let t = Table.create [ "metric"; "base"; "new"; "delta"; "tol"; "status" ] in
  List.iter
    (fun (e : Diff.entry) ->
      let num = fmt_opt "%.6g" in
      let delta =
        match (e.Diff.base, e.Diff.cand) with
        | Some _, Some _ ->
          if Float.is_finite e.Diff.rel then
            Printf.sprintf "%+.2f%%" (100. *. e.Diff.rel)
          else "inf"
        | _ -> "-"
      in
      Table.add_row t
        [ e.Diff.key; num e.Diff.base; num e.Diff.cand; delta;
          Printf.sprintf "%.2f%%" (100. *. e.Diff.tol);
          Diff.pp_status e.Diff.status ])
    shown;
  let summary =
    Printf.sprintf "compared %d metrics: %d regression%s, %d missing"
      r.Diff.compared r.Diff.regressions
      (if r.Diff.regressions = 1 then "" else "s")
      r.Diff.missing
  in
  if shown = [] then summary else Table.render t ^ "\n" ^ summary
