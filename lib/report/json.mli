(** Dependency-free RFC 8259 JSON reader for run artifacts.

    This is the promotion of the smoke-test well-formedness checker
    ([scripts/check_json.ml]) into a real parser: same strict grammar
    (one value, nothing after it), but it now builds a tree instead of
    discarding what it scans.

    Lexemes are kept raw: a {!Number} holds the exact source spelling
    ("1.150", "0", "-3e2") and a {!String} holds the bytes between the
    quotes with escapes intact. Because every artifact writer in this
    repo emits minified single-line JSON ([Hc_sim.Metrics.to_json],
    [meta.json]), [to_string (parse_exn s) = s] bit-for-bit for those
    files — which is what lets [hc_report] prove it read a file without
    losing information. *)

type t =
  | Null
  | Bool of bool
  | Number of string  (** raw lexeme, e.g. ["1.150"] *)
  | String of string  (** raw bytes between the quotes, escapes intact *)
  | Array of t list
  | Object of (string * t) list
      (** members in source order; keys raw like {!String} *)

val parse : string -> (t, int) result
(** Strict parse of exactly one JSON value (leading/trailing whitespace
    allowed, nothing else). [Error at] is the byte offset of the first
    offence, matching the smoke checker's report. *)

val parse_exn : string -> t
(** @raise Failure with the byte offset on malformed input. *)

val of_file : string -> (t, string) result
(** Read and parse a file; the error string names the file and offset
    (or the I/O failure). *)

val to_string : t -> string
(** Minified serializer: no whitespace, raw lexemes emitted verbatim.
    Inverse of {!parse} up to insignificant whitespace; exact inverse on
    the minified artifacts this repo writes. *)

val member : string -> t -> t option
(** First object member with that (raw) key. [None] on non-objects. *)

val find_path : string list -> t -> t option
(** [find_path ["a"; "b"] j] = [member "b" (member "a" j)]. *)

val number : t -> float option
(** The numeric value of a {!Number} (via [float_of_string] on the raw
    lexeme); [None] for every other constructor. *)

val unescape : string -> string
(** Decode the escapes of a raw {!String} payload for display. Unicode
    escapes are emitted as UTF-8. *)

val string_value : t -> string option
(** Unescaped text of a {!String}. *)
