type direction = Two_sided | Higher_better | Lower_better | Ignored

type status = Pass | Regress | Missing | New

type entry = {
  key : string;
  dir : direction;
  base : float option;
  cand : float option;
  rel : float;
  tol : float;
  status : status;
}

type report = {
  entries : entry list;
  compared : int;
  regressions : int;
  missing : int;
}

let has_prefix ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let last_segment key =
  match String.rindex_opt key '.' with
  | None -> key
  | Some i -> String.sub key (i + 1) (String.length key - i - 1)

(* Host identity and wall clock vary run to run by construction; the
   schema version is what the diff itself interprets, not a metric. *)
let ignored_segments =
  [ "schema"; "host_cores"; "jobs"; "unix_time_s"; "parallel_jobs" ]

let ignored_prefixes = [ "pool."; "regenerate." ]

let lower_better_segments =
  [ "ticks"; "cycles"; "wpred_fatal"; "wpred_nonfatal" ]

let classify key =
  if List.exists (fun p -> has_prefix ~prefix:p key) ignored_prefixes then
    Ignored
  else if has_prefix ~prefix:"kernels_ns_per_run." key then Lower_better
  else
    let seg = last_segment key in
    if List.mem seg ignored_segments then Ignored
    else if List.mem seg lower_better_segments then Lower_better
    else if seg = "ipc" then Higher_better
    else Two_sided

let tolerance_for ?(tols = []) ~default_tol key =
  (* exact key or prefix, longest pattern wins; "default" is a spelled-out
     alias for the catch-all so CLI users can write --tol default=0.01 *)
  let best =
    List.fold_left
      (fun acc (pat, tol) ->
        let matches =
          pat = key || pat = "default" || has_prefix ~prefix:pat key
        in
        let len = if pat = "default" then 0 else String.length pat in
        match acc with
        | _ when not matches -> acc
        | Some (blen, _) when blen >= len -> acc
        | _ -> Some (len, tol))
      None tols
  in
  match best with Some (_, tol) -> tol | None -> default_tol

let rel_delta ~base ~cand =
  if base = cand then 0.
  else if base = 0. then infinity *. (if cand > 0. then 1. else -1.)
  else (cand -. base) /. Float.abs base

let judge dir ~rel ~tol =
  match dir with
  | Ignored -> Pass
  | Two_sided -> if Float.abs rel <= tol then Pass else Regress
  | Higher_better -> if rel >= -.tol then Pass else Regress
  | Lower_better -> if rel <= tol then Pass else Regress

let run ?(tols = []) ?(default_tol = 0.) ~base ~cand () =
  let base_leaves = Loader.numeric_leaves base in
  let cand_leaves = Loader.numeric_leaves cand in
  let cand_tbl = Hashtbl.create 64 in
  List.iter (fun (k, v) -> Hashtbl.replace cand_tbl k v) cand_leaves;
  let base_keys = Hashtbl.create 64 in
  List.iter (fun (k, _) -> Hashtbl.replace base_keys k ()) base_leaves;
  let entries =
    List.map
      (fun (key, bv) ->
        let dir = classify key in
        let tol = tolerance_for ~tols ~default_tol key in
        match Hashtbl.find_opt cand_tbl key with
        | None ->
          let status = if dir = Ignored then Pass else Missing in
          { key; dir; base = Some bv; cand = None; rel = 0.; tol; status }
        | Some cv ->
          let rel = rel_delta ~base:bv ~cand:cv in
          {
            key; dir; base = Some bv; cand = Some cv; rel; tol;
            status = judge dir ~rel ~tol;
          })
      base_leaves
  in
  (* keys only the candidate has: informational, never a failure — the
     metrics schema grows column by column across PRs *)
  let fresh =
    List.filter_map
      (fun (key, cv) ->
        if Hashtbl.mem base_keys key then None
        else
          Some
            {
              key; dir = classify key; base = None; cand = Some cv;
              rel = 0.; tol = 0.; status = New;
            })
      cand_leaves
  in
  let entries = entries @ fresh in
  let count st = List.length (List.filter (fun e -> e.status = st) entries) in
  {
    entries;
    compared =
      List.length
        (List.filter
           (fun e -> e.dir <> Ignored && e.status <> New && e.status <> Missing)
           entries);
    regressions = count Regress;
    missing = count Missing;
  }

let exit_code r = if r.regressions > 0 then 1 else if r.missing > 0 then 2 else 0

let pp_status = function
  | Pass -> "ok"
  | Regress -> "REGRESS"
  | Missing -> "MISSING"
  | New -> "new"
