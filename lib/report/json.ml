type t =
  | Null
  | Bool of bool
  | Number of string
  | String of string
  | Array of t list
  | Object of (string * t) list

exception Bad of int

(* Same grammar as scripts/check_json.ml, but every production returns
   the value it scanned. Raw lexemes are sliced straight out of the
   input so nothing is normalised away. *)
let parse (s : string) : (t, int) result =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let fail () = raise (Bad !pos) in
  let expect c = if peek () = Some c then advance () else fail () in
  (* returns the raw bytes between the quotes *)
  let parse_string () =
    expect '"';
    let start = !pos in
    let rec loop () =
      match peek () with
      | None -> fail ()
      | Some '"' ->
        let raw = String.sub s start (!pos - start) in
        advance ();
        raw
      | Some '\\' ->
        advance ();
        ( match peek () with
        | Some ('"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't') -> advance ()
        | Some 'u' ->
          advance ();
          for _ = 1 to 4 do
            match peek () with
            | Some ('0' .. '9' | 'a' .. 'f' | 'A' .. 'F') -> advance ()
            | _ -> fail ()
          done
        | _ -> fail () );
        loop ()
      | Some c when Char.code c < 0x20 -> fail ()
      | Some _ ->
        advance ();
        loop ()
    in
    loop ()
  in
  let parse_number () =
    let start = !pos in
    if peek () = Some '-' then advance ();
    let digits () =
      let saw = ref false in
      let rec d () =
        match peek () with
        | Some '0' .. '9' ->
          saw := true;
          advance ();
          d ()
        | _ -> ()
      in
      d ();
      if not !saw then fail ()
    in
    (* RFC 8259 int: "0" or a nonzero digit followed by digits — one
       place this reader is stricter than the old smoke scanner *)
    ( match peek () with
    | Some '0' -> advance ()
    | Some '1' .. '9' -> digits ()
    | _ -> fail () );
    if peek () = Some '.' then begin
      advance ();
      digits ()
    end;
    ( match peek () with
    | Some ('e' | 'E') ->
      advance ();
      (match peek () with Some ('+' | '-') -> advance () | _ -> ());
      digits ()
    | _ -> () );
    String.sub s start (!pos - start)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Object []
      end
      else begin
        let rec members acc =
          skip_ws ();
          let key = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          let acc = (key, v) :: acc in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            members acc
          | Some '}' ->
            advance ();
            Object (List.rev acc)
          | _ -> fail ()
        in
        members []
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        Array []
      end
      else begin
        let rec elements acc =
          let v = parse_value () in
          let acc = v :: acc in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            elements acc
          | Some ']' ->
            advance ();
            Array (List.rev acc)
          | _ -> fail ()
        in
        elements []
      end
    | Some '"' -> String (parse_string ())
    | Some 't' ->
      String.iter expect "true";
      Bool true
    | Some 'f' ->
      String.iter expect "false";
      Bool false
    | Some 'n' ->
      String.iter expect "null";
      Null
    | Some ('-' | '0' .. '9') -> Number (parse_number ())
    | _ -> fail ()
  in
  try
    let v = parse_value () in
    skip_ws ();
    if !pos = n then Ok v else Error !pos
  with Bad at -> Error at

let parse_exn s =
  match parse s with
  | Ok v -> v
  | Error at -> failwith (Printf.sprintf "invalid JSON at byte %d" at)

let of_file path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error e -> Error e
  | contents -> (
    match parse contents with
    | Ok v -> Ok v
    | Error at -> Error (Printf.sprintf "%s: invalid JSON at byte %d" path at) )

let rec to_buffer b = function
  | Null -> Buffer.add_string b "null"
  | Bool true -> Buffer.add_string b "true"
  | Bool false -> Buffer.add_string b "false"
  | Number raw -> Buffer.add_string b raw
  | String raw ->
    Buffer.add_char b '"';
    Buffer.add_string b raw;
    Buffer.add_char b '"'
  | Array vs ->
    Buffer.add_char b '[';
    List.iteri
      (fun i v ->
        if i > 0 then Buffer.add_char b ',';
        to_buffer b v)
      vs;
    Buffer.add_char b ']'
  | Object ms ->
    Buffer.add_char b '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char b ',';
        Buffer.add_char b '"';
        Buffer.add_string b k;
        Buffer.add_string b "\":";
        to_buffer b v)
      ms;
    Buffer.add_char b '}'

let to_string v =
  let b = Buffer.create 1024 in
  to_buffer b v;
  Buffer.contents b

let member key = function
  | Object ms -> List.assoc_opt key ms
  | _ -> None

let find_path path j =
  List.fold_left
    (fun acc key -> Option.bind acc (member key))
    (Some j) path

let number = function
  | Number raw -> float_of_string_opt raw
  | _ -> None

let unescape raw =
  let n = String.length raw in
  let b = Buffer.create n in
  let add_utf8 cp =
    (* good enough for the BMP; artifacts never write surrogate pairs *)
    if cp < 0x80 then Buffer.add_char b (Char.chr cp)
    else if cp < 0x800 then begin
      Buffer.add_char b (Char.chr (0xC0 lor (cp lsr 6)));
      Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else begin
      Buffer.add_char b (Char.chr (0xE0 lor (cp lsr 12)));
      Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
    end
  in
  let rec loop i =
    if i < n then
      match raw.[i] with
      | '\\' when i + 1 < n -> (
        match raw.[i + 1] with
        | '"' -> Buffer.add_char b '"'; loop (i + 2)
        | '\\' -> Buffer.add_char b '\\'; loop (i + 2)
        | '/' -> Buffer.add_char b '/'; loop (i + 2)
        | 'b' -> Buffer.add_char b '\b'; loop (i + 2)
        | 'f' -> Buffer.add_char b '\012'; loop (i + 2)
        | 'n' -> Buffer.add_char b '\n'; loop (i + 2)
        | 'r' -> Buffer.add_char b '\r'; loop (i + 2)
        | 't' -> Buffer.add_char b '\t'; loop (i + 2)
        | 'u' when i + 5 < n ->
          add_utf8 (int_of_string ("0x" ^ String.sub raw (i + 2) 4));
          loop (i + 6)
        | c -> Buffer.add_char b c; loop (i + 2)
      )
      | c ->
        Buffer.add_char b c;
        loop (i + 1)
  in
  loop 0;
  Buffer.contents b

let string_value = function
  | String raw -> Some (unescape raw)
  | _ -> None
