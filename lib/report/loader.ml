let read_file path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | contents -> Ok contents
  | exception Sys_error e -> Error e

let load_json = Json.of_file

let schema j =
  match Json.member "schema" j with
  | Some (Json.Number raw) -> int_of_string_opt raw
  | _ -> None

let numeric_leaves j =
  let acc = ref [] in
  let join prefix seg = if prefix = "" then seg else prefix ^ "." ^ seg in
  let rec walk prefix = function
    | Json.Number raw -> (
      match float_of_string_opt raw with
      | Some f -> acc := (prefix, f) :: !acc
      | None -> () )
    | Json.Object ms -> List.iter (fun (k, v) -> walk (join prefix k) v) ms
    | Json.Array vs ->
      List.iteri (fun i v -> walk (join prefix (string_of_int i)) v) vs
    | Json.Null | Json.Bool _ | Json.String _ -> ()
  in
  walk "" j;
  List.rev !acc

let ring_info j =
  match
    ( Json.find_path [ "otherData"; "events_pushed" ] j,
      Json.find_path [ "otherData"; "events_dropped" ] j )
  with
  | Some p, Some d -> (
    match (Json.number p, Json.number d) with
    | Some p, Some d -> Some (int_of_float p, int_of_float d)
    | _ -> None )
  | _ -> None

type csv = {
  csv_path : string;
  header : string list;
  columns : float array list;
}

let split_line = String.split_on_char ','

let load_csv path =
  match read_file path with
  | Error e -> Error e
  | Ok contents -> (
    let lines =
      String.split_on_char '\n' contents
      |> List.map (fun l ->
             (* tolerate CRLF artifacts copied through Windows tooling *)
             if String.length l > 0 && l.[String.length l - 1] = '\r' then
               String.sub l 0 (String.length l - 1)
             else l)
      |> List.filter (fun l -> l <> "")
    in
    match lines with
    | [] -> Error (path ^ ": empty CSV")
    | header_line :: data ->
      let header = split_line header_line in
      let ncols = List.length header in
      let nrows = List.length data in
      let columns = List.map (fun _ -> Array.make nrows 0.) header in
      let err = ref None in
      List.iteri
        (fun row line ->
          if !err = None then
            let fields = split_line line in
            if List.length fields <> ncols then
              err :=
                Some
                  (Printf.sprintf "%s: line %d has %d fields, expected %d"
                     path (row + 2) (List.length fields) ncols)
            else
              List.iter2
                (fun col field ->
                  match float_of_string_opt field with
                  | Some f -> col.(row) <- f
                  | None ->
                    if !err = None then
                      err :=
                        Some
                          (Printf.sprintf "%s: line %d: %S is not numeric"
                             path (row + 2) field))
                columns fields)
        data;
      ( match !err with
      | Some e -> Error e
      | None -> Ok { csv_path = path; header; columns } ) )

let column csv name =
  let rec find hs cs =
    match (hs, cs) with
    | h :: _, c :: _ when h = name -> Some c
    | _ :: hs, _ :: cs -> find hs cs
    | _ -> None
  in
  find csv.header csv.columns

let rows csv =
  match csv.columns with [] -> 0 | c :: _ -> Array.length c
