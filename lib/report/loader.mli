(** Readers for the artifacts the toolchain writes to disk.

    Everything here is read-only and dependency-free: metrics JSON
    ([hc_sim --metrics-out], [hc_experiments] dirs), [meta.json],
    interval CSVs, [BENCH_*.json] snapshots, and Chrome trace files
    (metadata only). The loaders normalise all of them into the same
    flat [(dotted_path, float)] view so the diff engine and the tables
    need a single code path. *)

val read_file : string -> (string, string) result
(** Whole file as a string; [Error] carries the [Sys_error] message. *)

val load_json : string -> (Json.t, string) result
(** {!Json.of_file} — re-exported so callers only need [Loader]. *)

val schema : Json.t -> int option
(** Top-level ["schema"] field, when present and integral. *)

val numeric_leaves : Json.t -> (string * float) list
(** Every numeric leaf of the document, depth-first in source order,
    keyed by dotted path ("regenerate.speedup",
    "kernels_ns_per_run.helper_cluster fig6:sim-8_8_8"). Array elements
    get 0-based numeric segments ("pool.workers.0.tasks"). Booleans,
    strings and nulls are skipped. *)

val ring_info : Json.t -> (int * int) option
(** [(pushed, dropped)] from a Chrome trace's ["otherData"] block, when
    the writer recorded ring statistics. [hc_report] uses this to warn
    that a trace is a truncated window rather than the whole run. *)

(** Interval CSVs ([Export.write_intervals_csv]), parsed column-major. *)
type csv = {
  csv_path : string;
  header : string list;
  columns : float array list;  (** one array per header entry, row order *)
}

val load_csv : string -> (csv, string) result
(** Parses header + numeric rows. Ragged or non-numeric rows are
    an [Error] naming the line. *)

val column : csv -> string -> float array option

val rows : csv -> int
