(** ASCII sparklines for the interval time series.

    One character per bucket, ten brightness levels, plain ASCII so the
    timelines survive CI logs and diffs. A run's phase structure (warm-up,
    copy bursts, steering shifts) is visible at a glance without leaving
    the terminal. *)

val render : ?width:int -> float array -> string
(** Downsamples (bucket means) to at most [width] characters (default
    60) and maps min..max onto the ASCII ramp [_.:-=+*#%@]. A flat
    series renders as all ['-']. Empty input renders as [""]. *)

val render_labelled : ?width:int -> label:string -> float array -> string
(** ["label  lo [spark] hi"] with the range bounds printed, so the
    sparkline's vertical scale is explicit. *)
