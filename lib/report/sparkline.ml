let ramp = "_.:-=+*#%@"

let bucketise ~width xs =
  let n = Array.length xs in
  if n <= width then Array.copy xs
  else
    Array.init width (fun i ->
        (* bucket [lo, hi) with rounding that covers every source index *)
        let lo = i * n / width and hi = (i + 1) * n / width in
        let hi = max hi (lo + 1) in
        let sum = ref 0. in
        for j = lo to hi - 1 do
          sum := !sum +. xs.(j)
        done;
        !sum /. float_of_int (hi - lo))

let render ?(width = 60) xs =
  if Array.length xs = 0 then ""
  else begin
    let xs = bucketise ~width xs in
    let lo = Array.fold_left min xs.(0) xs in
    let hi = Array.fold_left max xs.(0) xs in
    let levels = String.length ramp in
    if hi = lo then String.make (Array.length xs) '-'
    else
      String.init (Array.length xs) (fun i ->
          let t = (xs.(i) -. lo) /. (hi -. lo) in
          let k = int_of_float (t *. float_of_int (levels - 1) +. 0.5) in
          ramp.[max 0 (min (levels - 1) k)])
  end

let bound v =
  (* compact numbers for the scale annotations *)
  if Float.is_integer v && Float.abs v < 1e9 then
    Printf.sprintf "%d" (int_of_float v)
  else Printf.sprintf "%.3g" v

let render_labelled ?(width = 60) ~label xs =
  if Array.length xs = 0 then Printf.sprintf "%-20s (no samples)" label
  else
    let lo = Array.fold_left min xs.(0) xs in
    let hi = Array.fold_left max xs.(0) xs in
    Printf.sprintf "%-20s %8s [%s] %s" label (bound lo) (render ~width xs)
      (bound hi)
