(* Packed structure-of-arrays trace storage.

   One [t] holds a whole trace's uops as parallel columns of immediate
   ints, so the simulator's fetch/steer/issue/wakeup loops, the static
   analyses' def-use walks and the HCTB codec all touch contiguous
   unboxed memory instead of chasing one boxed [Uop.t] record (plus two
   operand lists and an option) per dynamic uop. Operands are flattened
   into shared columns addressed through a prefix-offset column; the four
   trace ground-truth booleans pack into one flag byte per uop (the same
   packing the HCTB wire format uses).

   [of_uops]/[to_uops] are exact inverses: [to_uops (of_uops a)] is
   structurally equal to [a] (proven by QCheck round-trip in
   test_uop_soa.ml), so a consumer may switch between views freely
   without changing any observable result. *)

type t = {
  len : int;
  ids : int array;
  pcs : int array;
  ops : int array;  (* Opcode.to_index *)
  dsts : int array;  (* Reg.to_index, or -1 for no destination *)
  results : int array;
  mem_addrs : int array;
  flags : Bytes.t;  (* bit 0 taken, 1 mispredicted, 2 dl0_miss, 3 ul1_miss *)
  src_off : int array;  (* len + 1 prefix offsets into the operand columns *)
  src_regs : int array;  (* flattened; Reg.to_index, or -1 for an immediate *)
  src_vals : int array;  (* flattened concrete source values *)
}

let flag_taken = 1
let flag_mispredicted = 2
let flag_dl0 = 4
let flag_ul1 = 8

let length t = t.len

(* ----- per-uop accessors (all O(1), none allocates) ----- *)

let id t i = Array.unsafe_get t.ids i
let pc t i = Array.unsafe_get t.pcs i
let op_index t i = Array.unsafe_get t.ops i
let op t i = Opcode.of_index (Array.unsafe_get t.ops i)
let dst_index t i = Array.unsafe_get t.dsts i
let has_dest t i = Array.unsafe_get t.dsts i >= 0
let result t i = Array.unsafe_get t.results i
let mem_addr t i = Array.unsafe_get t.mem_addrs i

let flag t i bit = Char.code (Bytes.unsafe_get t.flags i) land bit <> 0
let taken t i = flag t i flag_taken
let branch_mispredicted t i = flag t i flag_mispredicted
let dl0_miss t i = flag t i flag_dl0
let ul1_miss t i = flag t i flag_ul1

let src_base t i = Array.unsafe_get t.src_off i
let nsrcs t i = Array.unsafe_get t.src_off (i + 1) - Array.unsafe_get t.src_off i

(* flattened-column reads: [j] is an absolute operand index obtained from
   [src_base]/[nsrcs] *)
let src_reg t j = Array.unsafe_get t.src_regs j
let src_val t j = Array.unsafe_get t.src_vals j

let writes_flags t i = Opcode.writes_flags (op t i)
let reads_flags t i = Opcode.reads_flags (op t i)

(* ----- ground-truth width shapes, column-driven -----

   Exact mirrors of the [Uop] record versions (see uop.ml); the pipeline's
   recovery check and the predictors' training walk these instead of the
   record's operand lists. *)

let all_srcs_narrow_bits ~bits t i =
  let lo = src_base t i and n = nsrcs t i in
  let ok = ref true in
  for j = lo to lo + n - 1 do
    if not (Detector.narrow ~bits (Array.unsafe_get t.src_vals j)) then
      ok := false
  done;
  !ok

let is_888_bits ~bits t i =
  all_srcs_narrow_bits ~bits t i
  && ((not (has_dest t i) && not (writes_flags t i))
     || Detector.narrow ~bits (result t i))

(* for memory uops the 8-32-32 "result" is the AGU output (Fig 10) *)
let shape_result t i =
  if Opcode.is_memory (op t i) then mem_addr t i else result t i

let is_8_32_32_bits ~bits t i =
  nsrcs t i = 2
  &&
  let lo = src_base t i in
  let na = Detector.narrow ~bits (src_val t lo)
  and nb = Detector.narrow ~bits (src_val t (lo + 1)) in
  na <> nb && not (Detector.narrow ~bits (shape_result t i))

let carry_not_propagated_bits ~bits t i =
  Opcode.carry_eligible (op t i)
  && is_8_32_32_bits ~bits t i
  &&
  let lo = src_base t i in
  let a = src_val t lo and b = src_val t (lo + 1) in
  let wide = if Detector.narrow ~bits a then b else a in
  shape_result t i lsr bits = wide lsr bits

(* ----- converters ----- *)

let of_uops (uops : Uop.t array) =
  let len = Array.length uops in
  let total_srcs = ref 0 in
  Array.iter (fun (u : Uop.t) -> total_srcs := !total_srcs + List.length u.Uop.srcs) uops;
  let ids = Array.make len 0 in
  let pcs = Array.make len 0 in
  let ops = Array.make len 0 in
  let dsts = Array.make len (-1) in
  let results = Array.make len 0 in
  let mem_addrs = Array.make len 0 in
  let flags = Bytes.make len '\000' in
  let src_off = Array.make (len + 1) 0 in
  let src_regs = Array.make !total_srcs (-1) in
  let src_vals = Array.make !total_srcs 0 in
  let k = ref 0 in
  for i = 0 to len - 1 do
    let u = uops.(i) in
    ids.(i) <- u.Uop.id;
    pcs.(i) <- u.Uop.pc;
    ops.(i) <- Opcode.to_index u.Uop.op;
    dsts.(i) <- (match u.Uop.dst with None -> -1 | Some r -> Reg.to_index r);
    results.(i) <- u.Uop.result;
    mem_addrs.(i) <- u.Uop.mem_addr;
    Bytes.set flags i
      (Char.chr
         ((if u.Uop.taken then flag_taken else 0)
         lor (if u.Uop.branch_mispredicted then flag_mispredicted else 0)
         lor (if u.Uop.dl0_miss then flag_dl0 else 0)
         lor if u.Uop.ul1_miss then flag_ul1 else 0));
    List.iter2
      (fun src v ->
        src_regs.(!k) <- (match src with Uop.Imm _ -> -1 | Uop.Reg r -> Reg.to_index r);
        src_vals.(!k) <- v;
        incr k)
      u.Uop.srcs u.Uop.src_vals;
    src_off.(i + 1) <- !k
  done;
  { len; ids; pcs; ops; dsts; results; mem_addrs; flags; src_off; src_regs;
    src_vals }

let to_uops t =
  Array.init t.len (fun i ->
      let lo = t.src_off.(i) and hi = t.src_off.(i + 1) in
      let srcs = ref [] and src_vals = ref [] in
      for j = hi - 1 downto lo do
        let v = t.src_vals.(j) in
        ( match t.src_regs.(j) with
        | -1 -> srcs := Uop.Imm v :: !srcs
        | r -> srcs := Uop.Reg (Reg.of_index r) :: !srcs );
        src_vals := v :: !src_vals
      done;
      {
        Uop.id = t.ids.(i);
        pc = t.pcs.(i);
        op = Opcode.of_index t.ops.(i);
        srcs = !srcs;
        dst = (match t.dsts.(i) with -1 -> None | d -> Some (Reg.of_index d));
        src_vals = !src_vals;
        result = t.results.(i);
        mem_addr = t.mem_addrs.(i);
        taken = flag t i flag_taken;
        branch_mispredicted = flag t i flag_mispredicted;
        dl0_miss = flag t i flag_dl0;
        ul1_miss = flag t i flag_ul1;
      })

(* Contiguous slice: uop columns narrow to the window and the operand
   offsets rebase to the sliced operand columns; ids are preserved, not
   renumbered (matching Trace.sub's contract for offset traces). *)
let sub t ~pos ~len =
  if pos < 0 || len < 0 || pos + len > t.len then invalid_arg "Uop_soa.sub";
  let lo = t.src_off.(pos) and hi = t.src_off.(pos + len) in
  let src_off = Array.init (len + 1) (fun i -> t.src_off.(pos + i) - lo) in
  {
    len;
    ids = Array.sub t.ids pos len;
    pcs = Array.sub t.pcs pos len;
    ops = Array.sub t.ops pos len;
    dsts = Array.sub t.dsts pos len;
    results = Array.sub t.results pos len;
    mem_addrs = Array.sub t.mem_addrs pos len;
    flags = Bytes.sub t.flags pos len;
    src_off;
    src_regs = Array.sub t.src_regs lo (hi - lo);
    src_vals = Array.sub t.src_vals lo (hi - lo);
  }

(* ----- sequential builder (the codec's zero-copy decode target) ----- *)

type builder = {
  b_len : int;
  b_ids : int array;
  b_pcs : int array;
  b_ops : int array;
  b_dsts : int array;
  b_results : int array;
  b_mem_addrs : int array;
  b_flags : Bytes.t;
  b_src_off : int array;
  mutable b_src_regs : int array;
  mutable b_src_vals : int array;
  mutable b_nsrcs : int;  (* operands pushed so far *)
  mutable b_next : int;  (* next uop index to close *)
}

let builder len =
  if len < 0 then invalid_arg "Uop_soa.builder";
  {
    b_len = len;
    b_ids = Array.make len 0;
    b_pcs = Array.make len 0;
    b_ops = Array.make len 0;
    b_dsts = Array.make len (-1);
    b_results = Array.make len 0;
    b_mem_addrs = Array.make len 0;
    b_flags = Bytes.make len '\000';
    b_src_off = Array.make (len + 1) 0;
    b_src_regs = Array.make (max 16 (2 * len)) (-1);
    b_src_vals = Array.make (max 16 (2 * len)) 0;
    b_nsrcs = 0;
    b_next = 0;
  }

let push_src b ~reg ~v =
  let cap = Array.length b.b_src_regs in
  if b.b_nsrcs = cap then begin
    let regs = Array.make (2 * cap) (-1) and vals = Array.make (2 * cap) 0 in
    Array.blit b.b_src_regs 0 regs 0 cap;
    Array.blit b.b_src_vals 0 vals 0 cap;
    b.b_src_regs <- regs;
    b.b_src_vals <- vals
  end;
  b.b_src_regs.(b.b_nsrcs) <- reg;
  b.b_src_vals.(b.b_nsrcs) <- v;
  b.b_nsrcs <- b.b_nsrcs + 1

(* value of operand [k] of the uop currently being built (operands already
   pushed); the codec's mem_addr delta-decode reads base+offset this way *)
let pending_src_val b k = b.b_src_vals.(b.b_src_off.(b.b_next) + k)

let pending_nsrcs b = b.b_nsrcs - b.b_src_off.(b.b_next)

(* Close uop [b_next]: record its scalar columns; the operands pushed
   since the previous close become its operand window. *)
let close_uop b ~id ~pc ~op ~dst ~result ~mem_addr ~flags =
  let i = b.b_next in
  if i >= b.b_len then invalid_arg "Uop_soa.close_uop: too many uops";
  b.b_ids.(i) <- id;
  b.b_pcs.(i) <- pc;
  b.b_ops.(i) <- op;
  b.b_dsts.(i) <- dst;
  b.b_results.(i) <- result;
  b.b_mem_addrs.(i) <- mem_addr;
  Bytes.set b.b_flags i (Char.unsafe_chr (flags land 0xFF));
  b.b_src_off.(i + 1) <- b.b_nsrcs;
  b.b_next <- i + 1

let build b =
  if b.b_next <> b.b_len then
    invalid_arg "Uop_soa.build: builder not fully populated";
  let shrink a = if Array.length a = b.b_nsrcs then a else Array.sub a 0 b.b_nsrcs in
  {
    len = b.b_len;
    ids = b.b_ids;
    pcs = b.b_pcs;
    ops = b.b_ops;
    dsts = b.b_dsts;
    results = b.b_results;
    mem_addrs = b.b_mem_addrs;
    flags = b.b_flags;
    src_off = b.b_src_off;
    src_regs = shrink b.b_src_regs;
    src_vals = shrink b.b_src_vals;
  }
