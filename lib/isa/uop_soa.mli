(** Packed structure-of-arrays trace storage.

    A [t] stores a whole uop sequence as parallel columns of immediate
    ints ([int array]/[Bytes]): ids, pcs, dense opcode indices, dense
    destination-register indices, results, memory addresses and a packed
    flag byte per uop, with operands flattened into shared
    register-index/value columns addressed through a prefix-offset
    column. The simulator, the static analyses and the HCTB codec walk
    these columns without allocating or constructing [Uop.t] records.

    {!of_uops} and {!to_uops} are exact inverses, so the SoA view and
    the record view of a trace are interchangeable. *)

type t = private {
  len : int;
  ids : int array;
  pcs : int array;
  ops : int array;  (** {!Opcode.to_index} *)
  dsts : int array;  (** {!Reg.to_index}, or [-1] for no destination *)
  results : int array;
  mem_addrs : int array;
  flags : Bytes.t;
      (** bit 0 taken, 1 mispredicted, 2 dl0_miss, 3 ul1_miss *)
  src_off : int array;  (** [len + 1] prefix offsets into operand columns *)
  src_regs : int array;  (** flattened; {!Reg.to_index}, or [-1] = immediate *)
  src_vals : int array;  (** flattened concrete source values *)
}

val flag_taken : int
val flag_mispredicted : int
val flag_dl0 : int
val flag_ul1 : int

val length : t -> int

(** {1 Per-uop accessors} — all O(1) and allocation-free. *)

val id : t -> int -> int
val pc : t -> int -> int
val op_index : t -> int -> int
val op : t -> int -> Opcode.t
val dst_index : t -> int -> int
(** [-1] when the uop has no destination register. *)

val has_dest : t -> int -> bool
val result : t -> int -> int
val mem_addr : t -> int -> int
val taken : t -> int -> bool
val branch_mispredicted : t -> int -> bool
val dl0_miss : t -> int -> bool
val ul1_miss : t -> int -> bool
val writes_flags : t -> int -> bool
val reads_flags : t -> int -> bool

val src_base : t -> int -> int
(** Absolute index of uop [i]'s first operand in the flattened columns. *)

val nsrcs : t -> int -> int

val src_reg : t -> int -> int
(** Register index of flattened operand [j] ([-1] for an immediate);
    [j] ranges over [src_base t i .. src_base t i + nsrcs t i - 1]. *)

val src_val : t -> int -> int
(** Concrete value of flattened operand [j]. *)

(** {1 Ground-truth width shapes}

    Column-driven mirrors of the [Uop.t] helpers used by the simulator's
    width-misprediction check and predictor training. *)

val all_srcs_narrow_bits : bits:int -> t -> int -> bool
val is_888_bits : bits:int -> t -> int -> bool
val is_8_32_32_bits : bits:int -> t -> int -> bool
val carry_not_propagated_bits : bits:int -> t -> int -> bool

val shape_result : t -> int -> int
(** The value whose width classifies the uop: AGU output for memory uops,
    [result] otherwise. *)

(** {1 Converters} *)

val of_uops : Uop.t array -> t
val to_uops : t -> Uop.t array

val sub : t -> pos:int -> len:int -> t
(** Contiguous slice with operand offsets rebased; ids are preserved.
    @raise Invalid_argument on out-of-range windows. *)

(** {1 Sequential builder}

    Fill target for decoders that know the uop count up front: push a
    uop's operands with {!push_src}, then {!close_uop} it; repeat in
    order, and {!build} once all [len] uops are closed. *)

type builder

val builder : int -> builder

val push_src : builder -> reg:int -> v:int -> unit
(** [reg] is a {!Reg.to_index} or [-1] for an immediate. *)

val pending_src_val : builder -> int -> int
(** Value of operand [k] (already pushed) of the uop currently open. *)

val pending_nsrcs : builder -> int

val close_uop :
  builder ->
  id:int ->
  pc:int ->
  op:int ->
  dst:int ->
  result:int ->
  mem_addr:int ->
  flags:int ->
  unit

val build : builder -> t
(** @raise Invalid_argument unless exactly [len] uops were closed. *)
