type t =
  | Add | Sub | And | Or | Xor | Shl | Shr | Cmp | Mov | Lea
  | Mul | Div
  | Load | Store
  | Branch_cond
  | Branch_uncond
  | Fp_add | Fp_mul | Fp_div
  | Copy
  | Nop

type exec_class = Int_alu | Int_mul | Mem | Ctrl | Fp

let exec_class = function
  | Add | Sub | And | Or | Xor | Shl | Shr | Cmp | Mov | Lea | Copy | Nop -> Int_alu
  | Mul | Div -> Int_mul
  | Load | Store -> Mem
  | Branch_cond | Branch_uncond -> Ctrl
  | Fp_add | Fp_mul | Fp_div -> Fp

let latency = function
  | Add | Sub | And | Or | Xor | Shl | Shr | Cmp | Mov | Lea -> 1
  | Mul -> 4
  | Div -> 20
  | Load -> 1 (* AGU only; cache time added by the memory model *)
  | Store -> 1
  | Branch_cond | Branch_uncond -> 1
  | Fp_add -> 4
  | Fp_mul -> 6
  | Fp_div -> 20
  | Copy -> 1
  | Nop -> 1

let writes_flags = function
  | Add | Sub | And | Or | Xor | Shl | Shr | Cmp -> true
  | Mov | Lea | Mul | Div | Load | Store | Branch_cond | Branch_uncond
  | Fp_add | Fp_mul | Fp_div | Copy | Nop -> false

let reads_flags = function
  | Branch_cond -> true
  | Add | Sub | And | Or | Xor | Shl | Shr | Cmp | Mov | Lea | Mul | Div
  | Load | Store | Branch_uncond | Fp_add | Fp_mul | Fp_div | Copy | Nop -> false

let is_memory = function
  | Load | Store -> true
  | Add | Sub | And | Or | Xor | Shl | Shr | Cmp | Mov | Lea | Mul | Div
  | Branch_cond | Branch_uncond | Fp_add | Fp_mul | Fp_div | Copy | Nop -> false

let is_branch = function
  | Branch_cond | Branch_uncond -> true
  | Add | Sub | And | Or | Xor | Shl | Shr | Cmp | Mov | Lea | Mul | Div
  | Load | Store | Fp_add | Fp_mul | Fp_div | Copy | Nop -> false

let is_fp = function
  | Fp_add | Fp_mul | Fp_div -> true
  | Add | Sub | And | Or | Xor | Shl | Shr | Cmp | Mov | Lea | Mul | Div
  | Load | Store | Branch_cond | Branch_uncond | Copy | Nop -> false

let carry_eligible = function
  | Add | Sub | Lea | Load | Store | Cmp -> true
  | And | Or | Xor | Shl | Shr | Mov | Mul | Div | Branch_cond | Branch_uncond
  | Fp_add | Fp_mul | Fp_div | Copy | Nop -> false

let splittable = function
  | Add | Sub | And | Or | Xor | Mov -> true
  | Shl | Shr | Cmp | Lea | Mul | Div | Load | Store | Branch_cond
  | Branch_uncond | Fp_add | Fp_mul | Fp_div | Copy | Nop -> false

let equal (a : t) (b : t) = a = b

let to_string = function
  | Add -> "add"
  | Sub -> "sub"
  | And -> "and"
  | Or -> "or"
  | Xor -> "xor"
  | Shl -> "shl"
  | Shr -> "shr"
  | Cmp -> "cmp"
  | Mov -> "mov"
  | Lea -> "lea"
  | Mul -> "mul"
  | Div -> "div"
  | Load -> "load"
  | Store -> "store"
  | Branch_cond -> "jcc"
  | Branch_uncond -> "jmp"
  | Fp_add -> "fadd"
  | Fp_mul -> "fmul"
  | Fp_div -> "fdiv"
  | Copy -> "copy"
  | Nop -> "nop"

let pp ppf op = Format.pp_print_string ppf (to_string op)

let all =
  [ Add; Sub; And; Or; Xor; Shl; Shr; Cmp; Mov; Lea; Mul; Div; Load; Store;
    Branch_cond; Branch_uncond; Fp_add; Fp_mul; Fp_div; Copy; Nop ]

(* Dense indices for packed (structure-of-arrays) storage: the position in
   [all], stable because the HCTB header table is also written in [all]
   order. *)
let count = List.length all

let to_index = function
  | Add -> 0 | Sub -> 1 | And -> 2 | Or -> 3 | Xor -> 4 | Shl -> 5 | Shr -> 6
  | Cmp -> 7 | Mov -> 8 | Lea -> 9 | Mul -> 10 | Div -> 11 | Load -> 12
  | Store -> 13 | Branch_cond -> 14 | Branch_uncond -> 15 | Fp_add -> 16
  | Fp_mul -> 17 | Fp_div -> 18 | Copy -> 19 | Nop -> 20

let index_table = Array.of_list all

let of_index i =
  if i < 0 || i >= count then invalid_arg (Printf.sprintf "Opcode.of_index: %d" i);
  index_table.(i)
