(* The loops mirror the dynamic-logic pull-down chains of Fig 3: each bit
   above the anchor can discharge the precharged node, so the output is the
   AND of per-bit conditions. *)

(* The recursion is top-level with explicit arguments: a local [let rec]
   would close over [v] and allocate on every call, and these two run on
   the simulator's per-uop completion path. *)
let rec zeros_from i v = i > 31 || ((v lsr i) land 1 = 0 && zeros_from (i + 1) v)

let rec ones_from i v = i > 31 || ((v lsr i) land 1 = 1 && ones_from (i + 1) v)

let zeros_above k v =
  assert (k >= 0 && k <= 32);
  zeros_from k v

let ones_above k v =
  assert (k >= 0 && k <= 32);
  ones_from k v

let narrow8 v = zeros_above 8 v || ones_above 8 v

let narrow ~bits v =
  if bits < 1 || bits > 32 then invalid_arg "Detector.narrow: bits out of [1,32]";
  if bits = 32 then true else zeros_above bits v || ones_above bits v

let narrow8_unsigned v = zeros_above 8 v
