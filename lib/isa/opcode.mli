(** Uop opcodes of the IA-32-like internal machine.

    IA-32 instructions are cracked by the frontend into uops; this is the
    vocabulary the simulator schedules. Each opcode carries static
    properties the steering policies consult: execution class (which
    functional unit it needs), latency, whether it writes or reads the
    flags register, whether the CR carry-prediction scheme may consider it
    (§3.5 excludes multiply and divide), and whether the IR splitter can
    decompose it into four byte lanes (§3.7). *)

type t =
  | Add | Sub | And | Or | Xor | Shl | Shr | Cmp | Mov | Lea
  | Mul | Div
  | Load | Store
  | Branch_cond  (** conditional branch, reads [Eflags] *)
  | Branch_uncond
  | Fp_add | Fp_mul | Fp_div
  | Copy  (** inter-cluster register copy (Canal et al. PACT-99) *)
  | Nop

type exec_class =
  | Int_alu   (** single-cycle integer ALU *)
  | Int_mul   (** long-latency integer (mul/div) *)
  | Mem       (** load/store: AGU + memory pipeline *)
  | Ctrl      (** branches *)
  | Fp        (** floating point, wide cluster only *)

val exec_class : t -> exec_class

val latency : t -> int
(** Execution latency in wide-cluster (slow) cycles, excluding memory
    hierarchy time for loads. *)

val writes_flags : t -> bool
(** Arithmetic/logic uops that update [Eflags]. *)

val reads_flags : t -> bool
(** [true] exactly for [Branch_cond]. *)

val is_memory : t -> bool
val is_branch : t -> bool
val is_fp : t -> bool

val carry_eligible : t -> bool
(** Opcodes the CR (carry width prediction) scheme may steer: additive
    address/arithmetic uops whose fatal mispredictions are caught by the
    carry-out signal. Multiply, divide and shifts are excluded. *)

val splittable : t -> bool
(** Opcodes the IR scheme can split into four chained 8-bit uops:
    byte-wise decomposable ALU operations. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string

val all : t list
(** Every opcode, for exhaustive table-driven tests. *)

val count : int
(** Number of opcodes ([List.length all]). *)

val to_index : t -> int
(** Dense index of the opcode — its position in {!all}. Used by the
    packed structure-of-arrays trace columns and the HCTB name table. *)

val of_index : int -> t
(** Inverse of {!to_index}. @raise Invalid_argument if out of range. *)
