(** Top-down cycle accounting.

    Every round of each issue stage and of the commit stage attributes
    its slots to a disjoint taxonomy, so per lane

    {v sum over categories = stage width x rounds accounted v}

    holds exactly — the same no-tolerance partition discipline as the
    steering-attribution counters. The classification of blocked slots
    lives in {!Pipeline} (it needs the node internals); this module owns
    the counters, the interval snapshots, the invariant check and the
    serialized forms. *)

(** One slot, one owner. *)
type category =
  | Issued  (** the slot did useful work (issued / committed a uop) *)
  | Frontend  (** starved: fetch stalled (branch penalty, TC miss) *)
  | Dispatch  (** dispatch blocked on a full ROB / issue queue / regfile *)
  | Wait_operands
      (** occupants wait on in-flight producers (or the ROB head is
          still executing a non-memory uop) *)
  | Wait_copy  (** occupants wait on inter-cluster communication *)
  | Memory  (** blocked behind an in-flight load, or a full MOB *)
  | Width_recovery  (** wide side draining a width-violation flush *)
  | Drained  (** narrow side emptied by a width-violation flush *)
  | Idle  (** nothing ready, no stall source to blame *)

val ncat : int
val cat_index : category -> int
val cat_name : category -> string
val categories : category list  (** in {!cat_index} order *)

val lane_wide : int
val lane_narrow : int
val lane_commit : int
val nlanes : int
val lane_name : int -> string

type totals = {
  issue_width : int;
  commit_width : int;
  slots : int array array;  (** [nlanes][ncat] category slot counts *)
  rounds : int array;  (** [nlanes] stage rounds accounted *)
}

val zero_totals : issue_width:int -> commit_width:int -> totals
val copy_totals : totals -> totals
val add_totals : totals -> totals -> totals
val sub_totals : totals -> totals -> totals
val lane_width : totals -> int -> int
val lane_sum : totals -> int -> int
val get : totals -> lane:int -> category -> int
val share_pct : totals -> lane:int -> category -> float
(** Category share of the lane's total slots, in percent. *)

val consistent : totals -> bool
(** The partition invariant, exact per lane (holds for interval deltas
    too, by linearity). *)

(** Live accumulator, owned by one pipeline run. *)
type t

val create : issue_width:int -> commit_width:int -> unit -> t

val add : t -> lane:int -> category -> int -> unit
val round : t -> lane:int -> unit
(** Close one stage round: bumps the lane's round count. The pipeline
    calls {!add} for exactly [width] slots per round. *)

val totals : t -> totals

type interval = { iv_start : int; iv_end : int; iv_d : totals }

val snapshot : t -> tick:int -> unit
(** Close the open interval at [tick] (no-op unless the tick advanced),
    storing the delta against the previous snapshot — driven by the same
    cadence as [Sink.sample] so stall intervals align with the metrics
    time series. *)

val intervals : t -> interval list  (** chronological *)

val csv_header : string
val interval_csv_row : interval -> string

val json_fragment : totals -> string
(** The ["stall"] object embedded in [Metrics.to_json] (schema 4):
    widths, then per lane the round count and every category count. *)
