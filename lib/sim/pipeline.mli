(** The cycle-level clustered-processor simulator.

    Trace-driven, out-of-order, with a shared frontend and two backends:
    the wide 32-bit cluster and the 8-bit helper cluster clocked twice as
    fast (§2). The global clock counts helper-cluster fast ticks; wide
    structures (frontend, wide issue/commit) act on even ticks.

    Modeled mechanisms, each with its cost:
    - steering at rename via a policy callback that sees only
      architectural/predicted information ({!Steer.ctx});
    - demand copy uops (Canal et al.): occupy an issue-queue slot and an
      issue slot in the {e producer's} cluster and take an inter-cluster
      hop before the value is usable in the consumer's register file;
    - copy prefetching (CP): predictor-triggered copies injected at the
      producer's dispatch;
    - load replication (LR): loads whose predicted value width is narrow
      write both register files, suppressed at fill time by the width
      detectors when the value turns out wide;
    - fatal width mispredictions: a narrow-steered uop whose execution
      actually needed the wide datapath squashes itself and {e all} younger
      in-flight uops (the paper's flushing scheme), rolls the rename table
      back, stalls the frontend and refetches — the offender forced wide;
    - IR splitting: four chained one-tick slices in the helper plus four
      prefetch copies of the result back to the wide cluster;
    - branch mispredictions (trace ground truth) as frontend refill
      bubbles; memory hierarchy latencies from per-uop miss ground truth.

    The simulator never reads ground-truth widths to make decisions — only
    to detect mispredictions at execute/writeback, as the hardware's
    detectors would. *)

type decide = Steer.decide
(** A steering policy (see {!Hc_steering.Policy} for the paper's stack). *)

val run :
  ?max_ticks:int ->
  ?sink:Hc_obs.Sink.t ->
  ?accounting:Accounting.t ->
  cfg:Config.t ->
  decide:decide ->
  scheme_name:string ->
  Hc_trace.Trace.t ->
  Metrics.t
(** Simulate a whole trace to completion and return its metrics.
    [max_ticks] (default 200 million) guards against livelock bugs — the
    simulator raises [Failure] if it is exceeded.

    [sink] attaches telemetry: per-uop lifecycle events
    (dispatch/issue/writeback/commit/squash, copies and slices, width
    flushes) into the sink's bounded ring when it traces, and an interval
    metrics time series when its sampling interval is positive. The tail
    interval is flushed at the end of the run, so
    [Hc_obs.Sample.aggregate (Sink.samples sink)] equals the returned
    metrics' dynamic counts. Observation never changes simulated
    behavior: the returned {!Metrics.t} is bit-identical with or without
    a sink.

    [accounting] attaches the top-down cycle-accounting engine: every
    issue round of each cluster and every commit round attributes its
    slots to the disjoint {!Accounting.category} taxonomy, so
    [Accounting.consistent] holds exactly on the totals and on every
    interval delta (snapshots follow the [sink] sampling cadence). The
    returned metrics carry the totals in [Metrics.stall]; aside from
    that field the metrics are bit-identical with or without accounting.
    @raise Invalid_argument on an invalid [cfg]. *)
