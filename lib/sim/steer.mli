(** The interface between the rename stage and a steering policy.

    At rename time the policy sees only what the hardware would see: the
    prediction tables, the rename width table (actual widths for already
    written-back producers, predictions otherwise), where each source value
    currently lives, where the last flags writer went, and the issue-queue
    occupancies. Ground-truth uop fields must not be consulted — the
    pipeline discovers mispredictions at execute, not the policy.

    The context is built once per simulation and every query returns an
    immediate value (packed int or bool), so a steering decision allocates
    nothing on the simulator's hot path. *)

type src_info = private int
(** Rename-time knowledge about one source operand, packed into an
    immediate int. Construct with {!src_info}, read through the
    [si_]accessors. *)

val src_info :
  narrow:bool -> known:bool -> cluster:Config.cluster option -> src_info
(** [narrow] — believed width of the operand: actual for immediates and
    written-back producers (§3.2: "the actual width is read if the
    producer instruction has already written back"), predicted otherwise.
    [known] — [true] when [narrow] is the actual width. [cluster] — the
    cluster whose register file will hold the value, when renamed. *)

val src_info_bits : narrow:bool -> known:bool -> cluster_code:int -> src_info
(** Allocation-free constructor taking the cluster as a code
    ({!cluster_code_none} / {!cluster_code_wide} / {!cluster_code_narrow})
    instead of an option — the pipeline's rename stage uses this. *)

val cluster_code_none : int
val cluster_code_wide : int
val cluster_code_narrow : int

val si_narrow : src_info -> bool
val si_known : src_info -> bool
val si_cluster : src_info -> Config.cluster option

type ctx = {
  cfg : Config.t;
  preds : Hc_predictors.Bundle.t;
  source_info : Hc_isa.Uop.operand -> src_info;
  flags_in_narrow : unit -> bool;
      (** did the most recent flags-writing uop steer to the helper
          cluster (the BR condition of §3.3) *)
  occupancy_lt : Config.cluster -> float -> bool;
      (** is the IQ occupancy fraction (len / iq_size, in [0,1]) strictly
          below the bound — a threshold test rather than a float return,
          so the query never boxes *)
  ready_backlog : Config.cluster -> int;
      (** NREADY signal from the most recent issue round of that cluster:
          how many ready uops could not issue for lack of slots *)
  backlog_ewma_gt : Config.cluster -> float -> bool;
      (** is the exponentially smoothed ready backlog (which
          distinguishes sustained congestion from a single-cycle blip)
          strictly above the bound *)
  rob_occupancy_lt : float -> bool;
      (** is the reorder-buffer fill fraction strictly below the bound;
          near 1.0 the machine is commit-blocked (typically on memory)
          and issue-bandwidth tricks like IR splitting cannot help *)
}

type reason =
  | R888  (** steered by the all-narrow rule *)
  | Rbr  (** flag-dependent branch *)
  | Rcr  (** carry width prediction *)
  | Rir  (** split for imbalance reduction *)
  | Rlive
      (** steered on a static dead-width proof (the [static_bidir]
          oracle): sources/result may be genuinely wide, but every bit
          above the narrow cut is proven dead, so narrow execution is
          exact on all observable values. Proof-carried — the pipeline
          must not ground-truth-check it the way it checks [R888]. *)

type decision =
  | Steer of Config.cluster
  | Steer_narrow of reason
  | Split  (** IR: crack into four chained 8-bit slices in the helper *)

val steer_wide : decision
(** Preallocated [Steer Config.Wide]; policies return these shared
    values so a verdict never allocates. *)

val steer_narrow_cluster : decision  (** [Steer Config.Narrow] *)

val steer_888 : decision  (** [Steer_narrow R888] *)

val steer_br : decision  (** [Steer_narrow Rbr] *)

val steer_cr : decision  (** [Steer_narrow Rcr] *)

val steer_ir : decision  (** [Steer_narrow Rir] *)

val steer_live : decision  (** [Steer_narrow Rlive] *)

val steer_narrow_of : reason -> decision
(** The shared [Steer_narrow] value for a reason. *)

type decide = ctx -> Hc_isa.Uop.t -> decision
(** A steering policy as the rename stage calls it. [Pipeline.run] takes
    any [decide]; the paper's stack lives in [Hc_steering.Policy], and
    oracle policies (e.g. the static-width bound) are just other values
    of this type. *)

val reason_to_string : reason -> string
(** Short lowercase tag ("888", "br", "cr", "ir", "live") used by the
    attribution tables and telemetry artifacts. *)

val pp_decision : Format.formatter -> decision -> unit
