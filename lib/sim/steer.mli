(** The interface between the rename stage and a steering policy.

    At rename time the policy sees only what the hardware would see: the
    prediction tables, the rename width table (actual widths for already
    written-back producers, predictions otherwise), where each source value
    currently lives, where the last flags writer went, and the issue-queue
    occupancies. Ground-truth uop fields must not be consulted — the
    pipeline discovers mispredictions at execute, not the policy. *)

type src_info = {
  si_narrow : bool;
      (** believed width of the operand: actual for immediates and
          written-back producers (§3.2: "the actual width is read if the
          producer instruction has already written back"), predicted
          otherwise *)
  si_known : bool;  (** [true] when [si_narrow] is the actual width *)
  si_cluster : Config.cluster option;
      (** cluster whose register file will hold the value, when renamed *)
}

type ctx = {
  cfg : Config.t;
  preds : Hc_predictors.Bundle.t;
  source_info : Hc_isa.Uop.operand -> src_info;
  flags_in_narrow : unit -> bool;
      (** did the most recent flags-writing uop steer to the helper
          cluster (the BR condition of §3.3) *)
  occupancy : Config.cluster -> float;  (** IQ occupancy fraction in [0,1] *)
  ready_backlog : Config.cluster -> int;
      (** NREADY signal from the most recent issue round of that cluster:
          how many ready uops could not issue for lack of slots *)
  backlog_ewma : Config.cluster -> float;
      (** exponentially smoothed ready backlog: distinguishes sustained
          congestion from a single-cycle blip *)
  rob_occupancy : unit -> float;
      (** reorder-buffer fill fraction: near 1.0 the machine is
          commit-blocked (typically on memory) and issue-bandwidth tricks
          like IR splitting cannot help *)
}

type reason =
  | R888  (** steered by the all-narrow rule *)
  | Rbr  (** flag-dependent branch *)
  | Rcr  (** carry width prediction *)
  | Rir  (** split for imbalance reduction *)
  | Rlive
      (** steered on a static dead-width proof (the [static_bidir]
          oracle): sources/result may be genuinely wide, but every bit
          above the narrow cut is proven dead, so narrow execution is
          exact on all observable values. Proof-carried — the pipeline
          must not ground-truth-check it the way it checks [R888]. *)

type decision =
  | Steer of Config.cluster
  | Steer_narrow of reason
  | Split  (** IR: crack into four chained 8-bit slices in the helper *)

type decide = ctx -> Hc_isa.Uop.t -> decision
(** A steering policy as the rename stage calls it. [Pipeline.run] takes
    any [decide]; the paper's stack lives in [Hc_steering.Policy], and
    oracle policies (e.g. the static-width bound) are just other values
    of this type. *)

val reason_to_string : reason -> string
(** Short lowercase tag ("888", "br", "cr", "ir", "live") used by the
    attribution tables and telemetry artifacts. *)

val pp_decision : Format.formatter -> decision -> unit
