(* Top-down cycle accounting: every issue round and every commit round,
   each slot of the stage is attributed to exactly one category of a
   disjoint taxonomy, so per lane

     sum over categories = stage width * rounds accounted

   holds exactly (no tolerance) — the same partition discipline as the
   steering-attribution counters. The classification itself lives in
   [Pipeline] (it needs the node internals); this module owns the
   counters, the interval snapshots and the invariant. *)

type category =
  | Issued  (* the slot did useful work (issued a uop / committed one) *)
  | Frontend  (* starved: fetch stalled (branch penalty, TC miss) *)
  | Dispatch  (* dispatch blocked on a full ROB / issue queue / regfile *)
  | Wait_operands  (* occupants wait on in-flight producers (or the ROB
                      head is still executing a non-memory uop) *)
  | Wait_copy  (* occupants wait on inter-cluster communication *)
  | Memory  (* blocked behind an in-flight load, or a full MOB *)
  | Width_recovery  (* wide side draining a width-violation flush *)
  | Drained  (* narrow side emptied by a width-violation flush *)
  | Idle  (* nothing ready, no stall source to blame (true idleness) *)

let ncat = 9

let cat_index = function
  | Issued -> 0
  | Frontend -> 1
  | Dispatch -> 2
  | Wait_operands -> 3
  | Wait_copy -> 4
  | Memory -> 5
  | Width_recovery -> 6
  | Drained -> 7
  | Idle -> 8

let cat_name = function
  | Issued -> "issued"
  | Frontend -> "frontend"
  | Dispatch -> "dispatch"
  | Wait_operands -> "wait_operands"
  | Wait_copy -> "wait_copy"
  | Memory -> "memory"
  | Width_recovery -> "width_recovery"
  | Drained -> "drained"
  | Idle -> "idle"

let categories =
  [ Issued; Frontend; Dispatch; Wait_operands; Wait_copy; Memory;
    Width_recovery; Drained; Idle ]

(* Lanes: the two issue stages plus the commit stage. *)
let lane_wide = 0
let lane_narrow = 1
let lane_commit = 2
let nlanes = 3

let lane_name = function
  | 0 -> "wide"
  | 1 -> "narrow"
  | 2 -> "commit"
  | _ -> invalid_arg "Accounting.lane_name"

type totals = {
  issue_width : int;
  commit_width : int;
  slots : int array array;  (* [nlanes][ncat], category slot counts *)
  rounds : int array;  (* [nlanes], stage rounds accounted *)
}

let lane_width t lane = if lane = lane_commit then t.commit_width else t.issue_width

let zero_totals ~issue_width ~commit_width =
  {
    issue_width;
    commit_width;
    slots = Array.init nlanes (fun _ -> Array.make ncat 0);
    rounds = Array.make nlanes 0;
  }

let copy_totals t =
  {
    t with
    slots = Array.map Array.copy t.slots;
    rounds = Array.copy t.rounds;
  }

let add_totals a b =
  {
    issue_width = a.issue_width;
    commit_width = a.commit_width;
    slots =
      Array.init nlanes (fun l ->
          Array.init ncat (fun c -> a.slots.(l).(c) + b.slots.(l).(c)));
    rounds = Array.init nlanes (fun l -> a.rounds.(l) + b.rounds.(l));
  }

let sub_totals a b =
  {
    issue_width = a.issue_width;
    commit_width = a.commit_width;
    slots =
      Array.init nlanes (fun l ->
          Array.init ncat (fun c -> a.slots.(l).(c) - b.slots.(l).(c)));
    rounds = Array.init nlanes (fun l -> a.rounds.(l) - b.rounds.(l));
  }

let lane_sum t lane = Array.fold_left ( + ) 0 t.slots.(lane)

(* The partition invariant, exact per lane. *)
let consistent t =
  lane_sum t lane_wide = t.issue_width * t.rounds.(lane_wide)
  && lane_sum t lane_narrow = t.issue_width * t.rounds.(lane_narrow)
  && lane_sum t lane_commit = t.commit_width * t.rounds.(lane_commit)

let get t ~lane cat = t.slots.(lane).(cat_index cat)

let share_pct t ~lane cat =
  let total = lane_width t lane * t.rounds.(lane) in
  if total = 0 then 0.
  else 100. *. float_of_int (get t ~lane cat) /. float_of_int total

(* ----- live accumulator ----- *)

type interval = { iv_start : int; iv_end : int; iv_d : totals }

type t = {
  cur : totals;
  mutable ivals : interval list;  (* newest first *)
  mutable last_tick : int;
  mutable last : totals;  (* snapshot at the previous interval boundary *)
}

let create ~issue_width ~commit_width () =
  let z = zero_totals ~issue_width ~commit_width in
  { cur = z; ivals = []; last_tick = 0; last = copy_totals z }

let add t ~lane cat n = t.cur.slots.(lane).(cat_index cat) <- t.cur.slots.(lane).(cat_index cat) + n

let round t ~lane = t.cur.rounds.(lane) <- t.cur.rounds.(lane) + 1

let totals t = copy_totals t.cur

let snapshot t ~tick =
  if tick > t.last_tick then begin
    let d = sub_totals t.cur t.last in
    t.ivals <- { iv_start = t.last_tick; iv_end = tick; iv_d = d } :: t.ivals;
    t.last_tick <- tick;
    t.last <- copy_totals t.cur
  end

let intervals t = List.rev t.ivals

(* ----- interval CSV (stall time series for hc_report topdown) ----- *)

let csv_header =
  let cols =
    List.concat_map
      (fun lane ->
        List.map
          (fun c -> Printf.sprintf "%s_%s" (lane_name lane) (cat_name c))
          categories
        @ [ Printf.sprintf "%s_rounds" (lane_name lane) ])
      [ lane_wide; lane_narrow; lane_commit ]
  in
  String.concat "," ("t_start" :: "t_end" :: cols)

let interval_csv_row iv =
  let b = Buffer.create 128 in
  Buffer.add_string b (string_of_int iv.iv_start);
  Buffer.add_char b ',';
  Buffer.add_string b (string_of_int iv.iv_end);
  List.iter
    (fun lane ->
      List.iter
        (fun c ->
          Buffer.add_char b ',';
          Buffer.add_string b (string_of_int (get iv.iv_d ~lane c)))
        categories;
      Buffer.add_char b ',';
      Buffer.add_string b (string_of_int iv.iv_d.rounds.(lane)))
    [ lane_wide; lane_narrow; lane_commit ];
  Buffer.contents b

(* ----- JSON fragment (embedded in Metrics.to_json, schema 4) ----- *)

let json_fragment t =
  let b = Buffer.create 256 in
  let p fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  p "{\"issue_width\":%d,\"commit_width\":%d" t.issue_width t.commit_width;
  List.iter
    (fun lane ->
      p ",\"%s\":{\"rounds\":%d" (lane_name lane) t.rounds.(lane);
      List.iter (fun c -> p ",\"%s\":%d" (cat_name c) (get t ~lane c)) categories;
      p "}")
    [ lane_wide; lane_narrow; lane_commit ];
  p "}";
  Buffer.contents b
