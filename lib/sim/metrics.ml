type t = {
  name : string;
  scheme_name : string;
  committed : int;
  ticks : int;
  copies : int;
  steered_narrow : int;
  split_uops : int;
  steered_888 : int;
  steered_br : int;
  steered_cr : int;
  steered_ir : int;
  steered_other : int;
  wide_default : int;
  wide_demoted : int;
  wpred_correct : int;
  wpred_fatal : int;
  wpred_nonfatal : int;
  prefetch_copies : int;
  prefetch_useful : int;
  nready_w2n : int;
  nready_n2w : int;
  issued_total : int;
  static_narrow_bound : int option;
  static_bidir_bound : int option;
  stall : Accounting.totals option;
  counters : Hc_stats.Counter.t;
}

let cycles t = float_of_int t.ticks /. 2.

let ipc t = if t.ticks = 0 then 0. else float_of_int t.committed /. cycles t

let pct_of_committed t n =
  if t.committed = 0 then 0. else 100. *. float_of_int n /. float_of_int t.committed

let copy_pct t = pct_of_committed t t.copies

let steered_pct t = pct_of_committed t t.steered_narrow

let wpred_total t = t.wpred_correct + t.wpred_fatal + t.wpred_nonfatal

let wpred_pct t n =
  let total = wpred_total t in
  if total = 0 then 0. else 100. *. float_of_int n /. float_of_int total

let wpred_accuracy_pct t = wpred_pct t t.wpred_correct

let wpred_fatal_pct t = wpred_pct t t.wpred_fatal

let wpred_nonfatal_pct t = wpred_pct t t.wpred_nonfatal

let cp_accuracy_pct t =
  if t.prefetch_copies = 0 then 0.
  else 100. *. float_of_int t.prefetch_useful /. float_of_int t.prefetch_copies

let imbalance_pct t n =
  if t.issued_total = 0 then 0.
  else 100. *. float_of_int n /. float_of_int t.issued_total

let imbalance_w2n_pct t = imbalance_pct t t.nready_w2n

let imbalance_n2w_pct t = imbalance_pct t t.nready_n2w

let speedup_pct ~baseline t = 100. *. ((ipc t /. ipc baseline) -. 1.)

let steered_888_pct t = pct_of_committed t t.steered_888
let steered_br_pct t = pct_of_committed t t.steered_br
let steered_cr_pct t = pct_of_committed t t.steered_cr
let steered_ir_pct t = pct_of_committed t t.steered_ir
let wide_demoted_pct t = pct_of_committed t t.wide_demoted

let attrib_narrow_sum t =
  t.steered_888 + t.steered_br + t.steered_cr + t.steered_ir + t.steered_other

let attrib_consistent t =
  attrib_narrow_sum t = t.steered_narrow
  && t.steered_ir = t.split_uops
  && t.wide_default + t.wide_demoted = t.committed - t.steered_narrow

let stall_consistent t =
  match t.stall with None -> true | Some s -> Accounting.consistent s

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_json t =
  let b = Buffer.create 1024 in
  let p fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  p "{";
  p "\"schema\":5,";
  p "\"name\":\"%s\"," (json_escape t.name);
  p "\"scheme\":\"%s\"," (json_escape t.scheme_name);
  p "\"committed\":%d," t.committed;
  p "\"ticks\":%d," t.ticks;
  p "\"cycles\":%.1f," (cycles t);
  p "\"ipc\":%.4f," (ipc t);
  p "\"copies\":%d," t.copies;
  p "\"steered_narrow\":%d," t.steered_narrow;
  p "\"split_uops\":%d," t.split_uops;
  p "\"steered_888\":%d," t.steered_888;
  p "\"steered_br\":%d," t.steered_br;
  p "\"steered_cr\":%d," t.steered_cr;
  p "\"steered_ir\":%d," t.steered_ir;
  p "\"steered_other\":%d," t.steered_other;
  p "\"wide_default\":%d," t.wide_default;
  p "\"wide_demoted\":%d," t.wide_demoted;
  p "\"wpred_correct\":%d," t.wpred_correct;
  p "\"wpred_fatal\":%d," t.wpred_fatal;
  p "\"wpred_nonfatal\":%d," t.wpred_nonfatal;
  p "\"prefetch_copies\":%d," t.prefetch_copies;
  p "\"prefetch_useful\":%d," t.prefetch_useful;
  p "\"nready_w2n\":%d," t.nready_w2n;
  p "\"nready_n2w\":%d," t.nready_n2w;
  p "\"issued_total\":%d," t.issued_total;
  ( match t.static_narrow_bound with
  | Some b -> p "\"static_narrow_bound\":%d," b
  | None -> () );
  ( match t.static_bidir_bound with
  | Some b -> p "\"static_bidir_bound\":%d," b
  | None -> () );
  ( match t.stall with
  | Some s -> p "\"stall\":%s," (Accounting.json_fragment s)
  | None -> () );
  p "\"counters\":{";
  let names = Hc_stats.Counter.names t.counters in
  List.iteri
    (fun i name ->
      p "%s\"%s\":%d"
        (if i = 0 then "" else ",")
        (json_escape name)
        (Hc_stats.Counter.get t.counters name))
    names;
  p "}}";
  Buffer.contents b

let pp ppf t =
  Format.fprintf ppf
    "@[<v>%s [%s]@ committed=%d cycles=%.0f ipc=%.3f@ steered=%.1f%% \
     copies=%.1f%% splits=%d@ attrib: 888=%d br=%d cr=%d ir=%d other=%d | \
     wide: default=%d demoted=%d@ wpred: ok=%.1f%% fatal=%.2f%% \
     nonfatal=%.2f%%@ cp: %d prefetches, %.1f%% useful@ nready: w2n=%.1f%% \
     n2w=%.1f%%@]"
    t.name t.scheme_name t.committed (cycles t) (ipc t) (steered_pct t)
    (copy_pct t) t.split_uops t.steered_888 t.steered_br t.steered_cr
    t.steered_ir t.steered_other t.wide_default t.wide_demoted
    (wpred_accuracy_pct t) (wpred_fatal_pct t) (wpred_nonfatal_pct t)
    t.prefetch_copies (cp_accuracy_pct t) (imbalance_w2n_pct t)
    (imbalance_n2w_pct t)
