(** Per-run simulation results.

    One {!t} is produced per (trace, configuration) simulation and carries
    every number the paper's figures are built from: IPC, steering and copy
    percentages, width-prediction outcome breakdown (Fig 5), NREADY
    imbalance (§3.7), copy-prefetch accuracy (§3.6), and the raw activity
    counters consumed by the power model. *)

type t = {
  name : string;  (** trace name *)
  scheme_name : string;
  committed : int;  (** trace uops committed *)
  ticks : int;  (** fast ticks elapsed (2 per wide cycle) *)
  copies : int;  (** inter-cluster copy uops generated (demand + prefetch) *)
  steered_narrow : int;  (** committed uops executed in the helper cluster *)
  split_uops : int;  (** committed uops that were IR-split *)
  steered_888 : int;
      (** attribution: committed helper-cluster uops earned by the
          all-narrow 8_8_8 rule (§3.2) *)
  steered_br : int;  (** attribution: flag-dependent branches (BR, §3.3) *)
  steered_cr : int;  (** attribution: carry-local one-wide-source uops (CR, §3.5) *)
  steered_ir : int;
      (** attribution: IR-split uops (§3.7); always equals [split_uops] *)
  steered_other : int;
      (** attribution: helper-cluster uops steered narrow without a
          recorded policy reason (only custom [decide] functions) *)
  wide_default : int;
      (** committed wide-cluster uops that were steered wide at rename *)
  wide_demoted : int;
      (** committed wide-cluster uops originally steered narrow and moved
          wide by width-violation recovery (flush or replay) — the commit
          cost of fatal width mispredictions *)
  wpred_correct : int;  (** width predictions matching the actual width *)
  wpred_fatal : int;  (** mispredictions that forced a squash-and-resteer *)
  wpred_nonfatal : int;  (** missed opportunities: mispredicted but safe *)
  prefetch_copies : int;  (** CP-injected copies *)
  prefetch_useful : int;  (** CP copies that a consumer actually used *)
  nready_w2n : int;  (** NREADY samples: ready in wide, idle slots in narrow *)
  nready_n2w : int;
  issued_total : int;  (** issue slots actually used, both clusters *)
  static_narrow_bound : int option;
      (** provably-narrow oracle steering bound of the trace this run
          simulated ([Hc_analysis.Static.steerable_count]): the
          helper-cluster commits a zero-recovery policy can reach. The
          pipeline itself reports [None]; [Hc_core.Runs] attaches the
          bound so exported metrics carry the headroom column. *)
  static_bidir_bound : int option;
      (** the tightened bidirectional oracle bound
          ([Hc_analysis.Static.bidir_steerable_count]): forward
          known-bits joined with backward live-bits. Always [>=]
          [static_narrow_bound] when both are present; attached by
          [Hc_core.Runs] like the forward bound. *)
  stall : Accounting.totals option;
      (** top-down cycle-accounting totals, present only when the run was
          simulated with [Pipeline.run ~accounting]; the partition
          invariant ({!Accounting.consistent}) holds exactly. *)
  counters : Hc_stats.Counter.t;  (** raw activity counters for the power model *)
}

val cycles : t -> float
(** Elapsed wide-cluster (slow) cycles: [ticks / 2]. *)

val ipc : t -> float
(** Committed trace uops per slow cycle. *)

val copy_pct : t -> float
(** Copies as a percentage of committed uops (Figs 7–9). *)

val steered_pct : t -> float
(** Helper-cluster instructions as a percentage of committed uops. *)

val wpred_accuracy_pct : t -> float
(** Fig 5: correct predictions over all predictions. *)

val wpred_fatal_pct : t -> float
val wpred_nonfatal_pct : t -> float

val cp_accuracy_pct : t -> float
(** §3.6: useful prefetches over issued prefetches; 0 when none issued. *)

val imbalance_w2n_pct : t -> float
(** NREADY wide→narrow imbalance normalized by used issue slots (§3.7). *)

val imbalance_n2w_pct : t -> float

val speedup_pct : baseline:t -> t -> float
(** Performance increase over the baseline run, in percent (Figs 6/12/14). *)

val steered_888_pct : t -> float
(** Attribution shares as percentages of committed uops. *)

val steered_br_pct : t -> float
val steered_cr_pct : t -> float
val steered_ir_pct : t -> float
val wide_demoted_pct : t -> float

val attrib_narrow_sum : t -> int
(** [steered_888 + steered_br + steered_cr + steered_ir + steered_other];
    equals [steered_narrow] on every run. *)

val attrib_consistent : t -> bool
(** The attribution invariants: narrow attribution columns sum to
    [steered_narrow], [steered_ir = split_uops], and the wide columns sum
    to [committed - steered_narrow]. *)

val stall_consistent : t -> bool
(** The cycle-accounting partition invariant on [stall]
    ({!Accounting.consistent}); [true] vacuously when accounting was
    off. *)

val to_json : t -> string
(** The whole record as one JSON object — every dynamic count, the
    derived IPC/cycles, and the raw activity counters keyed by name.
    Shared by the CSV/JSON export layer and the telemetry writers so a
    run's numbers serialize identically everywhere. Carries
    ["schema"]:5 (schema 2 added the steering-attribution columns;
    schema 3 the optional ["static_narrow_bound"] key, present only
    when the bound is attached; schema 4 the optional ["stall"]
    cycle-accounting object, present only when accounting was on;
    schema 5 the optional ["static_bidir_bound"] key, the tightened
    bidirectional oracle bound). *)

val pp : Format.formatter -> t -> unit
