module Opcode = Hc_isa.Opcode
module Reg = Hc_isa.Reg
module Uop = Hc_isa.Uop
module Value = Hc_isa.Value
module Width = Hc_isa.Width
module Trace = Hc_trace.Trace
module Counter = Hc_stats.Counter
module Bundle = Hc_predictors.Bundle
module Width_predictor = Hc_predictors.Width_predictor
module Carry_predictor = Hc_predictors.Carry_predictor
module Copy_predictor = Hc_predictors.Copy_predictor
module Sink = Hc_obs.Sink
module Event = Hc_obs.Event
module Sample = Hc_obs.Sample

type decide = Steer.decide

let never = max_int

let cluster_index = function Config.Wide -> 0 | Config.Narrow -> 1

let other_cluster = function Config.Wide -> Config.Narrow | Config.Narrow -> Config.Wide

(* ----- renamed values ----- *)

type vstate = {
  v_pc : Value.t;  (* producer's pc, for predictor training *)
  v_narrow : bool;  (* ground truth width of the value *)
  v_pred_narrow : bool;  (* what the width predictor said at rename *)
  mutable v_epoch : int;  (* bumped on squash so stale references die *)
  mutable v_done : bool;
  v_avail : int array;  (* per cluster-index, tick the value is usable *)
  v_copy_inflight : bool array;  (* a copy toward cluster i is scheduled *)
  mutable v_demand_copied : bool;  (* a demand copy was needed: CP training *)
  v_prefetched : bool array;
  v_prefetch_used : bool array;
  mutable v_lr : bool;  (* produced by a load that LR will replicate *)
  mutable v_cluster : Config.cluster;  (* producer's cluster *)
  mutable v_from_load : bool;  (* produced by a load: memory-bound stalls *)
}

let make_vstate ~pc ~narrow ~pred_narrow ~cluster =
  {
    v_pc = pc; v_narrow = narrow; v_pred_narrow = pred_narrow; v_epoch = 0;
    v_done = false; v_avail = [| never; never |];
    v_copy_inflight = [| false; false |]; v_demand_copied = false;
    v_prefetched = [| false; false |]; v_prefetch_used = [| false; false |];
    v_lr = false; v_cluster = cluster; v_from_load = false;
  }

let reset_vstate v =
  v.v_epoch <- v.v_epoch + 1;
  v.v_done <- false;
  v.v_avail.(0) <- never;
  v.v_avail.(1) <- never;
  v.v_copy_inflight.(0) <- false;
  v.v_copy_inflight.(1) <- false;
  v.v_prefetched.(0) <- false;
  v.v_prefetched.(1) <- false;
  v.v_prefetch_used.(0) <- false;
  v.v_prefetch_used.(1) <- false;
  v.v_lr <- false

(* ----- pipeline nodes ----- *)

type kind =
  | Normal
  | Copy of {
      cv : vstate;
      target : Config.cluster;
      epoch : int;
      prefetch : bool;
      publishes : bool;
          (* IR splits send a burst of four byte copies; only the last one
             publishes the value in the target register file *)
    }
  | Slice of { final : bool }
      (* one 8-bit lane of an IR-split uop; [final] completes the value *)

type node = {
  n_id : int;  (* dispatch order, unique *)
  n_trace_idx : int;  (* position in the trace; -1 for copies *)
  n_uop : Uop.t option;
  mutable n_kind : kind;
  mutable n_cluster : Config.cluster;
  mutable n_squashed : bool;
  mutable n_done : bool;
  mutable n_issued : bool;
  mutable n_gen : int;
      (* incremented when the node is squashed-and-resteered so completion
         events scheduled for its previous incarnation are ignored *)
  mutable n_deps : (vstate * int) array;  (* value, epoch at dispatch *)
  n_dest : vstate option;
  mutable n_reason : Steer.reason option;
  n_is_mem : bool;
  n_lr_replicate : bool;  (* LR: replicate the loaded value on completion *)
  n_br_mispredicted : bool;
      (* resolved direction-prediction outcome for this dynamic branch:
         the trace's ground truth under Br_trace_flags, the gshare verdict
         under Br_gshare (computed in order at dispatch) *)
  mutable n_alloc : Config.cluster option;
      (* physical register allocated for the destination, to return at
         commit *)
  mutable n_remote_reads : bool;
      (* CR (Â§3.5): the 8-bit AGU consumes only source low bytes; the wide
         source's upper 24 bits stay behind the rename tag in the wide
         register file, so sources need no inter-cluster copy and are
         readable as soon as they exist anywhere *)
  mutable n_complete : int;
  mutable n_disp_tick : int;  (* telemetry: tick of issue-queue insertion *)
  mutable n_issue_tick : int;  (* telemetry: tick the uop won an issue slot *)
  mutable n_prev : node;  (* intrusive issue-queue links; self = detached *)
  mutable n_next : node;
  mutable n_mark : bool;  (* transient, used by flush_from's queue purge *)
}

(* ----- intrusive issue queues -----

   A circular doubly-linked list threaded through the nodes themselves
   (oldest at the head, newest at the tail), so the per-cycle issue scan
   unlinks an issued or dead node in O(1) with zero allocation. The seed
   kept [node list ref]s and rebuilt the whole list (two [List.rev]s, a
   filter and a [List.length]) every issue round. *)

type iq = { iq_sent : node; mutable iq_len : int }

let make_detached_node () =
  let rec s =
    {
      n_id = min_int; n_trace_idx = -1; n_uop = None; n_kind = Normal;
      n_cluster = Config.Wide; n_squashed = true; n_done = true;
      n_issued = false; n_gen = 0; n_deps = [||]; n_dest = None;
      n_reason = None; n_is_mem = false; n_lr_replicate = false;
      n_br_mispredicted = false; n_alloc = None; n_remote_reads = false;
      n_complete = never; n_disp_tick = 0; n_issue_tick = 0;
      n_prev = s; n_next = s; n_mark = false;
    }
  in
  s

let make_iq () = { iq_sent = make_detached_node (); iq_len = 0 }

let iq_append q n =
  let s = q.iq_sent in
  let last = s.n_prev in
  n.n_prev <- last;
  n.n_next <- s;
  last.n_next <- n;
  s.n_prev <- n;
  q.iq_len <- q.iq_len + 1

let iq_unlink q n =
  n.n_prev.n_next <- n.n_next;
  n.n_next.n_prev <- n.n_prev;
  n.n_prev <- n;
  n.n_next <- n;
  q.iq_len <- q.iq_len - 1

(* Oldest-to-newest fold; [f] must not unlink nodes (use iq_filter_inplace
   or an explicit walk for that). *)
let iq_fold f init q =
  let s = q.iq_sent in
  let acc = ref init in
  let cur = ref s.n_next in
  while !cur != s do
    acc := f !acc !cur;
    cur := (!cur).n_next
  done;
  !acc

(* Walk oldest-to-newest, unlinking every node [keep] rejects. *)
let iq_filter_inplace q keep =
  let s = q.iq_sent in
  let cur = ref s.n_next in
  while !cur != s do
    let node = !cur in
    let next = node.n_next in
    if not (keep node) then iq_unlink q node;
    cur := next
  done

(* ----- event wheel slots -----

   Growable per-slot arrays of (node, generation-at-schedule), reused
   across wheel wraps so steady-state scheduling allocates nothing. The
   seed kept cons lists and re-partitioned/sorted them every tick. *)

type evslot = {
  mutable ev_nodes : node array;
  mutable ev_gens : int array;
  mutable ev_len : int;
}

(* ----- whole-machine state ----- *)

type undo = { un_node : int; un_reg : int; un_prev : vstate option }

(* Why the most recent frontend round stopped dispatching — consumed by
   the cycle accounting to split an empty stage between dispatch-stalled
   and genuinely idle. A single int write per stall, so it stays on even
   with accounting off. *)
type stall_src = Sr_none | Sr_rob | Sr_iq | Sr_regfile | Sr_mob

type state = {
  cfg : Config.t;
  trace : Trace.t;
  decide : decide;
  preds : Bundle.t;
  counters : Counter.t;
  sink : Sink.t option;
      (* telemetry; [None] keeps every instrumentation point a single
         field test and the hot path allocation-free *)
  acct : Accounting.t option;
      (* cycle accounting; [None] keeps the attribution walk behind one
         field test per issue round, same discipline as [sink] *)
  mutable stall_src : stall_src;  (* last frontend round's stop reason *)
  mutable wflush_until : int;  (* draining a width flush before this tick *)
  (* frontend *)
  mutable fetch_idx : int;  (* next trace index to dispatch *)
  mutable fetch_resume : int;  (* tick before which dispatch is stalled *)
  force_wide : (int, unit) Hashtbl.t;  (* trace idx -> must steer wide *)
  rename : vstate option array;  (* arch reg -> live value *)
  undo_log : undo Stack.t;
  (* backends *)
  iq : iq array;  (* per cluster-index, intrusive, oldest first *)
  rob : node Queue.t;
  mutable rob_count : int;
  mutable mob_count : int;
  backlog : int array;  (* per cluster: ready-not-issued in the last round *)
  backlog_ewma : float array;  (* smoothed, for the IR trigger *)
  (* structural substrates (active per the config's model selectors) *)
  memory : Cache.Hierarchy.t;
  gshare : Branch_predictor.t;
  tcache : Trace_cache.t;
  regfile : Regfile.t;
  (* events *)
  events : evslot array;  (* indexed by tick mod size *)
  null_node : node;  (* padding for the growable event arrays *)
  mutable due_nodes : node array;  (* reusable completion scratch *)
  mutable due_gens : int array;
  mutable due_len : int;
  (* cached cells of the per-tick counters, so the hot loop skips the
     string-keyed hashtable *)
  c_tick : int ref;
  c_cycle_wide : int ref;
  c_cycle_narrow : int ref;
  c_issue : int ref array;  (* per cluster-index *)
  c_regread : int ref array;
  c_committed : int ref;
  mutable next_node_id : int;
  mutable now : int;
  (* results *)
  mutable committed : int;
  mutable copies : int;
  mutable steered_narrow : int;
  mutable split_uops : int;
  (* steering attribution: who earned each committed uop (see Metrics) *)
  mutable steered_888 : int;
  mutable steered_br : int;
  mutable steered_cr : int;
  mutable steered_ir : int;
  mutable steered_other : int;
  mutable wide_default : int;
  mutable wide_demoted : int;
  mutable wpred_correct : int;
  mutable wpred_fatal : int;
  mutable wpred_nonfatal : int;
  mutable prefetch_copies : int;
  mutable prefetch_useful : int;
  mutable nready_w2n : int;
  mutable nready_n2w : int;
  mutable issued_total : int;
}

let wheel_size = 4096

let create ?sink ?accounting cfg decide trace =
  ( match Config.validate cfg with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Pipeline: " ^ msg) );
  let counters = Counter.create () in
  let null_node = make_detached_node () in
  {
    cfg; trace; decide; sink;
    acct = accounting;
    stall_src = Sr_none;
    wflush_until = 0;
    preds = Bundle.create ~entries:cfg.Config.wpred_entries ~conf_bits:cfg.Config.conf_bits ();
    counters;
    fetch_idx = 0; fetch_resume = 0;
    (* sized for the worst realistic forced-wide set of a 30k-uop window
       so population never rehashes; lookups are also length-guarded in
       the frontend *)
    force_wide = Hashtbl.create 256;
    rename = Array.make Reg.count None;
    undo_log = Stack.create ();
    iq = [| make_iq (); make_iq () |];
    rob = Queue.create ();
    rob_count = 0;
    mob_count = 0;
    backlog = [| 0; 0 |];
    backlog_ewma = [| 0.; 0. |];
    memory = Cache.Hierarchy.create ();
    gshare = Branch_predictor.create ();
    tcache = Trace_cache.create ();
    regfile =
      Regfile.create ~wide_regs:cfg.Config.wide_regs
        ~narrow_regs:cfg.Config.narrow_regs ();
    events =
      Array.init wheel_size (fun _ ->
          { ev_nodes = Array.make 4 null_node; ev_gens = Array.make 4 0;
            ev_len = 0 });
    null_node;
    due_nodes = Array.make 16 null_node;
    due_gens = Array.make 16 0;
    due_len = 0;
    c_tick = Counter.cell counters "tick";
    c_cycle_wide = Counter.cell counters "cycle_wide";
    c_cycle_narrow = Counter.cell counters "cycle_narrow";
    c_issue =
      [| Counter.cell counters "issue_wide"; Counter.cell counters "issue_narrow" |];
    c_regread =
      [| Counter.cell counters "regread_wide";
         Counter.cell counters "regread_narrow" |];
    c_committed = Counter.cell counters "committed";
    next_node_id = 0;
    now = 0;
    committed = 0; copies = 0; steered_narrow = 0; split_uops = 0;
    steered_888 = 0; steered_br = 0; steered_cr = 0; steered_ir = 0;
    steered_other = 0; wide_default = 0; wide_demoted = 0;
    wpred_correct = 0; wpred_fatal = 0; wpred_nonfatal = 0;
    prefetch_copies = 0; prefetch_useful = 0;
    nready_w2n = 0; nready_n2w = 0; issued_total = 0;
  }

let fresh_node_id st =
  let id = st.next_node_id in
  st.next_node_id <- id + 1;
  id

let schedule st node tick =
  node.n_complete <- tick;
  let slot = st.events.(tick land (wheel_size - 1)) in
  let cap = Array.length slot.ev_nodes in
  if slot.ev_len = cap then begin
    let nodes = Array.make (2 * cap) st.null_node in
    let gens = Array.make (2 * cap) 0 in
    Array.blit slot.ev_nodes 0 nodes 0 cap;
    Array.blit slot.ev_gens 0 gens 0 cap;
    slot.ev_nodes <- nodes;
    slot.ev_gens <- gens
  end;
  slot.ev_nodes.(slot.ev_len) <- node;
  slot.ev_gens.(slot.ev_len) <- node.n_gen;
  slot.ev_len <- slot.ev_len + 1

(* ----- telemetry instrumentation points -----

   Every site is guarded by the sink option: with tracing off nothing is
   allocated and nothing beyond the [match] executes, so enabling the
   sink can never change simulated behavior - only record it. *)

let node_event_name (node : node) =
  match node.n_kind with
  | Copy _ -> "copy"
  | Slice _ -> "slice"
  | Normal -> (
    match node.n_uop with Some u -> Opcode.to_string u.Uop.op | None -> "?")

let emit st kind (node : node) ~a ~b =
  match st.sink with
  | None -> ()
  | Some sink ->
    if Sink.tracing sink then
      Sink.emit sink
        { Event.tick = st.now; kind; id = node.n_id;
          trace_idx = node.n_trace_idx;
          cluster = cluster_index node.n_cluster;
          name = node_event_name node; a; b }

let current_totals st =
  {
    Sample.committed = st.committed;
    steered_narrow = st.steered_narrow;
    copies = st.copies;
    split_uops = st.split_uops;
    steered_888 = st.steered_888;
    steered_br = st.steered_br;
    steered_cr = st.steered_cr;
    steered_ir = st.steered_ir;
    steered_other = st.steered_other;
    wide_default = st.wide_default;
    wide_demoted = st.wide_demoted;
    wpred_correct = st.wpred_correct;
    wpred_fatal = st.wpred_fatal;
    wpred_nonfatal = st.wpred_nonfatal;
    prefetch_copies = st.prefetch_copies;
    prefetch_useful = st.prefetch_useful;
    nready_w2n = st.nready_w2n;
    nready_n2w = st.nready_n2w;
    issued_total = st.issued_total;
  }

let take_sample st sink =
  Sink.sample sink ~tick:st.now ~iq_wide:st.iq.(0).iq_len
    ~iq_narrow:st.iq.(1).iq_len ~rob:st.rob_count (current_totals st)

(* ----- latency model ----- *)

let mem_time st (u : Uop.t) =
  let cfg = st.cfg in
  match cfg.Config.memory_model with
  | Config.Mem_trace_flags ->
    if u.Uop.dl0_miss then
      if u.Uop.ul1_miss then cfg.Config.mem_latency else cfg.Config.ul1_latency
    else cfg.Config.dl0_latency
  | Config.Mem_cache_sim ->
    Cache.Hierarchy.latency st.memory
      ~latencies:(cfg.Config.dl0_latency, cfg.Config.ul1_latency, cfg.Config.mem_latency)
      u.Uop.mem_addr

let exec_ticks st cluster (node : node) =
  let cfg = st.cfg in
  match node.n_kind with
  | Copy _ -> 2 * cfg.Config.copy_latency
  | Slice _ -> 1
  | Normal ->
    let u = match node.n_uop with Some u -> u | None -> assert false in
    let base = Opcode.latency u.Uop.op in
    ( match cluster with
    | Config.Wide ->
      if u.Uop.op = Opcode.Load then (2 * base) + (2 * mem_time st u)
      else 2 * base
    | Config.Narrow ->
      (* the 8-bit backend is clocked 2x: one slow-cycle op takes one tick;
         memory hierarchy time is absolute and unchanged *)
      let alu = if cfg.Config.helper_fast_clock then base else 2 * base in
      if u.Uop.op = Opcode.Load then alu + (2 * mem_time st u) else alu )

(* ----- rename-time width knowledge ----- *)

let source_info st (operand : Uop.operand) =
  match operand with
  | Uop.Imm v ->
    { Steer.si_narrow = Width.is_narrow_bits ~bits:st.cfg.Config.narrow_bits v;
      si_known = true; si_cluster = None }
  | Uop.Reg r -> (
    match st.rename.(Reg.to_index r) with
    | None ->
      (* architectural value from before the trace window: a long-ready,
         conservatively wide register *)
      { Steer.si_narrow = false; si_known = true; si_cluster = None }
    | Some v ->
      if v.v_done then
        { Steer.si_narrow = v.v_narrow; si_known = true; si_cluster = Some v.v_cluster }
      else
        { Steer.si_narrow = v.v_pred_narrow; si_known = false;
          si_cluster = Some v.v_cluster } )

let flags_in_narrow st () =
  match st.rename.(Reg.to_index Reg.Eflags) with
  | Some v -> v.v_cluster = Config.Narrow
  | None -> false

let occupancy st cluster =
  float_of_int st.iq.(cluster_index cluster).iq_len
  /. float_of_int st.cfg.Config.iq_size

let steer_ctx st =
  {
    Steer.cfg = st.cfg;
    preds = st.preds;
    source_info = source_info st;
    flags_in_narrow = flags_in_narrow st;
    occupancy = occupancy st;
    ready_backlog = (fun c -> st.backlog.(cluster_index c));
    backlog_ewma = (fun c -> st.backlog_ewma.(cluster_index c));
    rob_occupancy =
      (fun () -> float_of_int st.rob_count /. float_of_int st.cfg.Config.rob_size);
  }

(* ----- dispatch helpers ----- *)

let reg_deps st (u : Uop.t) =
  List.filter_map
    (fun operand ->
      match operand with
      | Uop.Reg r -> (
        match st.rename.(Reg.to_index r) with
        | Some v -> Some (v, v.v_epoch)
        | None -> None)
      | Uop.Imm _ -> None)
    u.Uop.srcs

(* Dependences that need a copy before they are usable in [cluster]. A
   value produced in the other cluster needs no copy when one is already
   in flight, already delivered, or when LR will replicate it. *)
let copies_needed cluster deps =
  let i = cluster_index cluster in
  List.filter
    (fun ((v : vstate), _) ->
      v.v_cluster <> cluster
      && v.v_avail.(i) = never
      && (not v.v_copy_inflight.(i))
      && not v.v_lr)
    deps

let enqueue_iq st cluster node =
  node.n_disp_tick <- st.now;
  iq_append st.iq.(cluster_index cluster) node;
  emit st Event.Dispatch node ~a:0 ~b:0

let iq_free st cluster =
  st.cfg.Config.iq_size - st.iq.(cluster_index cluster).iq_len

(* (wide, narrow) issue-queue slots the pending copies will occupy: copies
   dispatch into the producing value's cluster. *)
let copy_slot_demand needed =
  List.fold_left
    (fun (w, n) ((v : vstate), _) ->
      match v.v_cluster with Config.Wide -> (w + 1, n) | Config.Narrow -> (w, n + 1))
    (0, 0) needed

let make_copy st ~(cv : vstate) ~target ~prefetch ~publishes =
  let source_cluster = cv.v_cluster in
  let rec node =
    {
      n_id = fresh_node_id st;
      n_trace_idx = -1;
      n_uop = None;
      n_kind = Copy { cv; target; epoch = cv.v_epoch; prefetch; publishes };
      n_cluster = source_cluster;
      n_squashed = false; n_done = false; n_issued = false; n_gen = 0;
      n_deps = [| (cv, cv.v_epoch) |];
      n_dest = None;
      n_reason = None;
      n_is_mem = false;
      n_lr_replicate = false;
      n_br_mispredicted = false;
      n_alloc = None;
      n_remote_reads = false;
      n_complete = never;
      n_disp_tick = 0; n_issue_tick = 0;
      n_prev = node; n_next = node; n_mark = false;
    }
  in
  cv.v_copy_inflight.(cluster_index target) <- true;
  if prefetch then begin
    cv.v_prefetched.(cluster_index target) <- true;
    st.prefetch_copies <- st.prefetch_copies + 1
  end
  else cv.v_demand_copied <- true;
  st.copies <- st.copies + 1;
  Counter.incr st.counters "copy_dispatched";
  enqueue_iq st source_cluster node

(* Record a rename-table overwrite for rollback, and train the CP predictor
   with the dying value's copy history. *)
let rename_write st node_id reg (v : vstate) =
  let i = Reg.to_index reg in
  let prev = st.rename.(i) in
  ( match prev with
  | Some dead when st.cfg.Config.scheme.Config.cp ->
    Copy_predictor.update st.preds.Bundle.copy dead.v_pc ~copied:dead.v_demand_copied
  | Some _ | None -> () );
  Stack.push { un_node = node_id; un_reg = i; un_prev = prev } st.undo_log;
  st.rename.(i) <- Some v

(* Credit a consumed prefetch, once per (value, cluster). *)
let credit_prefetch st cluster deps =
  let i = cluster_index cluster in
  List.iter
    (fun ((v : vstate), _) ->
      if v.v_prefetched.(i) && (not v.v_prefetch_used.(i)) && v.v_cluster <> cluster
      then begin
        v.v_prefetch_used.(i) <- true;
        st.prefetch_useful <- st.prefetch_useful + 1
      end)
    deps

exception Dispatch_stall

(* ----- dispatch ----- *)

let dispatch_split st (u : Uop.t) ~trace_idx ~prediction deps =
  let cfg = st.cfg in
  let slices = 4 in
  let produces_value = Uop.has_dest u || Uop.writes_flags u in
  let result_copies = if Uop.has_dest u then slices else 0 in
  (* the byte lanes read their sources as 8-bit slices through the same
     cross-cluster byte paths the CR tag scheme uses, so no source copies
     are charged - only queue slots, issue slots and the chained latency *)
  if st.rob_count + slices > cfg.Config.rob_size then begin
    st.stall_src <- Sr_rob;
    raise Dispatch_stall
  end;
  if iq_free st Config.Narrow < slices + result_copies then begin
    st.stall_src <- Sr_iq;
    raise Dispatch_stall
  end;
  if produces_value && Regfile.free_count st.regfile Config.Narrow < slices then begin
    st.stall_src <- Sr_regfile;
    raise Dispatch_stall
  end;
  credit_prefetch st Config.Narrow deps;
  let dest =
    if produces_value then
      Some
        (make_vstate ~pc:u.Uop.pc
           ~narrow:(Width.is_narrow_bits ~bits:cfg.Config.narrow_bits u.Uop.result)
           ~pred_narrow:prediction.Width_predictor.narrow ~cluster:Config.Narrow)
    else None
  in
  (* carry-rippling ops chain lane k+1 on lane k's carry-out; bitwise,
     move and store lanes are independent byte operations *)
  let ripples =
    match u.Uop.op with
    | Opcode.Add | Opcode.Sub | Opcode.Cmp -> true
    | Opcode.And | Opcode.Or | Opcode.Xor | Opcode.Mov | Opcode.Store
    | Opcode.Shl | Opcode.Shr | Opcode.Lea | Opcode.Mul | Opcode.Div
    | Opcode.Load | Opcode.Branch_cond | Opcode.Branch_uncond
    | Opcode.Fp_add | Opcode.Fp_mul | Opcode.Fp_div | Opcode.Copy
    | Opcode.Nop -> false
  in
  let prev_slice = ref None in
  for k = 0 to slices - 1 do
    let final = k = slices - 1 in
    let chain_deps =
      match !prev_slice with
      | Some v when ripples -> Array.of_list ((v, v.v_epoch) :: deps)
      | Some _ | None -> Array.of_list deps
    in
    let slice_dest =
      if final then dest
      else
        Some
          (make_vstate ~pc:u.Uop.pc ~narrow:true ~pred_narrow:true
             ~cluster:Config.Narrow)
    in
    let rec node =
      {
        n_id = fresh_node_id st;
        n_trace_idx = trace_idx;
        n_uop = Some u;
        n_kind = Slice { final };
        n_cluster = Config.Narrow;
        n_squashed = false; n_done = false; n_issued = false; n_gen = 0;
        n_deps = chain_deps;
        n_dest = slice_dest;
        n_reason = Some Steer.Rir;
        n_is_mem = false;
        n_lr_replicate = false;
        n_br_mispredicted = false;
        n_alloc = None;
        n_remote_reads = true;
        n_complete = never;
        n_disp_tick = 0; n_issue_tick = 0;
        n_prev = node; n_next = node; n_mark = false;
      }
    in
    if not final then prev_slice := slice_dest;
    ( match slice_dest with
    | Some _ ->
      if Regfile.allocate st.regfile Config.Narrow then
        node.n_alloc <- Some Config.Narrow
    | None -> () );
    enqueue_iq st Config.Narrow node;
    Queue.add node st.rob;
    st.rob_count <- st.rob_count + 1
  done;
  ( match dest with
  | Some v ->
    ( match u.Uop.dst with
    | Some reg -> rename_write st (st.next_node_id - 1) reg v
    | None -> () );
    if Uop.writes_flags u then rename_write st (st.next_node_id - 1) Reg.Eflags v;
    (* publish the result to the wide cluster as a burst of byte copies;
       only the last one makes the value visible there (§3.7). A
       replicated register file publishes through its write ports
       instead. *)
    if Uop.has_dest u && not cfg.Config.replicated_regfile then
      for k = 0 to slices - 1 do
        make_copy st ~cv:v ~target:Config.Wide ~prefetch:false
          ~publishes:(k = slices - 1)
      done
  | None -> () );
  Counter.incr st.counters "split_dispatched"

let dispatch_steered st (u : Uop.t) ~trace_idx ~prediction ~cluster ~reason deps =
  let cfg = st.cfg in
  let scheme = cfg.Config.scheme in
  let produces_value = Uop.has_dest u || Uop.writes_flags u in
  let remote_reads = reason = Some Steer.Rcr in
  let needed =
    if remote_reads || cfg.Config.replicated_regfile then []
    else copies_needed cluster deps
  in
  let demand_w, demand_n = copy_slot_demand needed in
  let own_w, own_n =
    match cluster with Config.Wide -> (1, 0) | Config.Narrow -> (0, 1)
  in
  if st.rob_count >= cfg.Config.rob_size then begin
    st.stall_src <- Sr_rob;
    raise Dispatch_stall
  end;
  if iq_free st Config.Wide < demand_w + own_w then begin
    st.stall_src <- Sr_iq;
    raise Dispatch_stall
  end;
  if iq_free st Config.Narrow < demand_n + own_n then begin
    st.stall_src <- Sr_iq;
    raise Dispatch_stall
  end;
  if produces_value && Regfile.free_count st.regfile cluster = 0 then begin
    st.stall_src <- Sr_regfile;
    raise Dispatch_stall
  end;
  let is_mem = u.Uop.op = Opcode.Load || u.Uop.op = Opcode.Store in
  if is_mem then begin
    if st.mob_count >= cfg.Config.mob_size then begin
      st.stall_src <- Sr_mob;
      raise Dispatch_stall
    end;
    st.mob_count <- st.mob_count + 1
  end;
  List.iter
    (fun ((v : vstate), _) ->
      make_copy st ~cv:v ~target:cluster ~prefetch:false ~publishes:true)
    needed;
  credit_prefetch st cluster deps;
  let dest =
    if produces_value then
      Some
        (make_vstate ~pc:u.Uop.pc
           ~narrow:(Width.is_narrow_bits ~bits:cfg.Config.narrow_bits u.Uop.result)
           ~pred_narrow:prediction.Width_predictor.narrow ~cluster)
    else None
  in
  let lr_replicate =
    scheme.Config.lr && u.Uop.op = Opcode.Load
    && prediction.Width_predictor.narrow
    && ((not cfg.Config.confidence_gate) || prediction.Width_predictor.confident)
  in
  (* resolve the direction prediction in program order, here at rename *)
  let br_mispredicted =
    if u.Uop.op <> Opcode.Branch_cond then false
    else
      match cfg.Config.branch_model with
      | Config.Br_trace_flags -> u.Uop.branch_mispredicted
      | Config.Br_gshare ->
        Branch_predictor.update st.gshare u.Uop.pc ~taken:u.Uop.taken
  in
  ( match dest with
  | Some v ->
    v.v_lr <- lr_replicate;
    v.v_from_load <- u.Uop.op = Opcode.Load
  | None -> () );
  let rec node =
    {
      n_id = fresh_node_id st;
      n_trace_idx = trace_idx;
      n_uop = Some u;
      n_kind = Normal;
      n_cluster = cluster;
      n_squashed = false; n_done = false; n_issued = false; n_gen = 0;
      n_deps = Array.of_list deps;
      n_dest = dest;
      n_reason = reason;
      n_is_mem = is_mem;
      n_lr_replicate = lr_replicate;
      n_br_mispredicted = br_mispredicted;
      n_alloc = None;
      n_remote_reads = remote_reads;
      n_complete = never;
      n_disp_tick = 0; n_issue_tick = 0;
      n_prev = node; n_next = node; n_mark = false;
    }
  in
  ( match dest with
  | Some v ->
    if Regfile.allocate st.regfile cluster then node.n_alloc <- Some cluster;
    ( match u.Uop.dst with
    | Some reg -> rename_write st node.n_id reg v
    | None -> () );
    if Uop.writes_flags u then rename_write st node.n_id Reg.Eflags v
  | None -> () );
  enqueue_iq st cluster node;
  Queue.add node st.rob;
  st.rob_count <- st.rob_count + 1;
  (* CP: producer-side copy prefetching (§3.6). Narrow producers prefetch
     predicted copies to the wide cluster; wide producers of predicted
     narrow values prefetch toward the helper. *)
  ( match dest with
  | Some v when scheme.Config.cp && Uop.has_dest u ->
    let cp_hit = Copy_predictor.predict st.preds.Bundle.copy u.Uop.pc in
    if cluster = Config.Narrow && cp_hit && iq_free st Config.Narrow > 0 then
      make_copy st ~cv:v ~target:Config.Wide ~prefetch:true ~publishes:true
    else if
      cluster = Config.Wide && cp_hit && prediction.Width_predictor.narrow
      && prediction.Width_predictor.confident
      && iq_free st Config.Wide > 0
    then make_copy st ~cv:v ~target:Config.Narrow ~prefetch:true ~publishes:true
  | Some _ | None -> () );
  Counter.incr st.counters
    (match cluster with
    | Config.Wide -> "dispatch_wide"
    | Config.Narrow -> "dispatch_narrow")

let dispatch_uop st ~forced_wide (u : Uop.t) ~trace_idx =
  let scheme = st.cfg.Config.scheme in
  let prediction = Width_predictor.predict st.preds.Bundle.width u.Uop.pc in
  Counter.incr st.counters "wpred_lookup";
  let decision =
    if forced_wide || not scheme.Config.helper then Steer.Steer Config.Wide
    else st.decide (steer_ctx st) u
  in
  let deps = reg_deps st u in
  match decision with
  | Steer.Split -> dispatch_split st u ~trace_idx ~prediction deps
  | Steer.Steer cluster ->
    dispatch_steered st u ~trace_idx ~prediction ~cluster ~reason:None deps
  | Steer.Steer_narrow reason ->
    dispatch_steered st u ~trace_idx ~prediction ~cluster:Config.Narrow
      ~reason:(Some reason) deps

exception Fetch_miss

let frontend st =
  if st.now >= st.fetch_resume then begin
    let budget = ref st.cfg.Config.decode_width in
    try
      while !budget > 0 && st.fetch_idx < Trace.length st.trace do
        let u = Trace.get st.trace st.fetch_idx in
        ( match st.cfg.Config.frontend_model with
        | Config.Fe_ideal -> ()
        | Config.Fe_trace_cache ->
          if not (Trace_cache.lookup st.tcache u.Uop.pc) then begin
            (* build the trace line from the UL1 instruction stream *)
            st.fetch_resume <- st.now + (2 * st.cfg.Config.ul1_latency);
            Counter.incr st.counters "tc_miss";
            raise Fetch_miss
          end );
        let forced_wide =
          Hashtbl.length st.force_wide > 0
          && Hashtbl.mem st.force_wide st.fetch_idx
        in
        dispatch_uop st ~forced_wide u ~trace_idx:st.fetch_idx;
        st.fetch_idx <- st.fetch_idx + 1;
        decr budget
      done
    with Dispatch_stall | Fetch_miss -> ()
  end

(* ----- issue ----- *)

(* Readiness is availability alone. A squashed-and-resteered producer
   resets its value (epoch bump kills in-flight copies, avail returns to
   never), and every consumer - resteered or not - then waits for the
   re-execution to publish the value again. *)
let deps_ready st cluster (node : node) =
  if node.n_remote_reads then
    Array.for_all
      (fun ((v : vstate), _) ->
        v.v_avail.(0) <= st.now || v.v_avail.(1) <= st.now)
      node.n_deps
  else begin
    let i =
      match node.n_kind with
      | Copy { cv; _ } -> cluster_index cv.v_cluster
      | Normal | Slice _ -> cluster_index cluster
    in
    Array.for_all
      (fun ((v : vstate), _) -> v.v_avail.(i) <= st.now)
      node.n_deps
  end

let dead_copy (node : node) =
  match node.n_kind with
  | Copy { cv; epoch; _ } -> cv.v_epoch <> epoch
  | Normal | Slice _ -> false

let issue_cluster st cluster =
  let i = cluster_index cluster in
  let q = st.iq.(i) in
  let width = st.cfg.Config.issue_width in
  let issued = ref 0 in
  let ready_not_issued = ref 0 in
  let c_regread = st.c_regread.(i) in
  let c_issue = st.c_issue.(i) in
  let s = q.iq_sent in
  let cur = ref s.n_next in
  while !cur != s do
    let node = !cur in
    let next = node.n_next in
    if node.n_squashed || dead_copy node then iq_unlink q node
    else if deps_ready st cluster node then begin
      if !issued < width then begin
        node.n_issued <- true;
        node.n_issue_tick <- st.now;
        emit st Event.Issue node ~a:node.n_disp_tick ~b:0;
        incr issued;
        st.issued_total <- st.issued_total + 1;
        c_regread := !c_regread + Array.length node.n_deps;
        incr c_issue;
        iq_unlink q node;
        schedule st node (st.now + exec_ticks st cluster node)
      end
      else incr ready_not_issued
    end;
    cur := next
  done;
  st.backlog.(i) <- !ready_not_issued;
  st.backlog_ewma.(i) <-
    (0.9 *. st.backlog_ewma.(i)) +. (0.1 *. float_of_int !ready_not_issued);
  (!issued, !ready_not_issued)

(* Ready-but-stalled wide uops the helper's integer-only 8-bit units could
   in principle have hosted — the NREADY eligibility filter. *)
let count_ready_narrow_capable st =
  iq_fold
    (fun acc (node : node) ->
      let capable =
        match node.n_uop with
        | None -> true
        | Some u -> (
          match Opcode.exec_class u.Uop.op with
          | Opcode.Int_alu | Opcode.Mem | Opcode.Ctrl -> true
          | Opcode.Int_mul | Opcode.Fp -> false)
      in
      if (not node.n_squashed) && (not node.n_issued) && capable
         && deps_ready st Config.Wide node
      then acc + 1
      else acc)
    0
    st.iq.(cluster_index Config.Wide)

(* ----- cycle accounting (top-down slot attribution) ----- *)

(* Why a blocked occupant cannot issue: scan its unavailable deps with
   the same availability rule as [deps_ready]. Memory wins over copy
   wins over plain operands, so one blocked node maps to exactly one
   category. *)
let blocked_reason st cluster (node : node) =
  match node.n_kind with
  | Copy _ -> Accounting.Wait_copy
  | Normal | Slice _ ->
    let i = cluster_index cluster in
    let mem = ref false and cop = ref false in
    Array.iter
      (fun ((v : vstate), _) ->
        let avail =
          if node.n_remote_reads then
            v.v_avail.(0) <= st.now || v.v_avail.(1) <= st.now
          else v.v_avail.(i) <= st.now
        in
        if not avail then begin
          if v.v_from_load && not v.v_done then mem := true
          else if v.v_done || v.v_copy_inflight.(i) then cop := true
        end)
      node.n_deps;
    if !mem then Accounting.Memory
    else if !cop then Accounting.Wait_copy
    else Accounting.Wait_operands

(* Attribution of a slot no queue occupant can explain: the machine is
   draining a width flush, starved by the frontend, dispatch-blocked on
   a full structure, or genuinely idle. *)
let empty_reason st ~narrow =
  if st.now < st.wflush_until then
    if narrow then Accounting.Drained else Accounting.Width_recovery
  else if st.now < st.fetch_resume then Accounting.Frontend
  else
    match st.stall_src with
    | Sr_none -> Accounting.Idle
    | Sr_mob -> Accounting.Memory
    | Sr_rob | Sr_iq | Sr_regfile -> Accounting.Dispatch

(* One issue round of [cluster]: [issued] slots did work; the idle rest
   is claimed first by blocked queue occupants (memory, then copy, then
   operands), and any slots beyond the occupant count by the
   empty-stage reason. Adds exactly [issue_width] slots and one round,
   so the partition invariant holds by construction. *)
let account_issue_round st a cluster ~issued =
  let lane = cluster_index cluster in
  let width = st.cfg.Config.issue_width in
  if issued > 0 then Accounting.add a ~lane Accounting.Issued issued;
  let idle = width - issued in
  if idle > 0 then begin
    (* after the issue walk the queue holds only blocked occupants:
       issued, squashed and dead-copy nodes were unlinked, and idle > 0
       means no ready node was left waiting for a slot *)
    let mem = ref 0 and cop = ref 0 and opr = ref 0 in
    let q = st.iq.(lane) in
    let s = q.iq_sent in
    let cur = ref s.n_next in
    while !cur != s do
      let node = !cur in
      ( match blocked_reason st cluster node with
      | Accounting.Memory -> incr mem
      | Accounting.Wait_copy -> incr cop
      | _ -> incr opr );
      cur := node.n_next
    done;
    let left = ref idle in
    let take counter cat =
      let n = min !left counter in
      if n > 0 then begin
        Accounting.add a ~lane cat n;
        left := !left - n
      end
    in
    take !mem Accounting.Memory;
    take !cop Accounting.Wait_copy;
    take !opr Accounting.Wait_operands;
    if !left > 0 then
      Accounting.add a ~lane
        (empty_reason st ~narrow:(cluster = Config.Narrow))
        !left
  end;
  Accounting.round a ~lane

(* One commit round: [committed] slots retired; idle slots are all
   blamed on the ROB head (it blocks everything younger), or on the
   empty-stage reason when the ROB is empty. *)
let account_commit_round st a ~committed =
  let lane = Accounting.lane_commit in
  if committed > 0 then Accounting.add a ~lane Accounting.Issued committed;
  let idle = st.cfg.Config.commit_width - committed in
  if idle > 0 then begin
    let cat =
      if Queue.is_empty st.rob then empty_reason st ~narrow:false
      else begin
        let head = Queue.peek st.rob in
        if not head.n_issued then blocked_reason st head.n_cluster head
        else if head.n_is_mem then Accounting.Memory
        else Accounting.Wait_operands
      end
    in
    Accounting.add a ~lane cat idle
  end;
  Accounting.round a ~lane

(* ----- width misprediction recovery ----- *)

(* Fatal width misprediction recovery (Â§3.2): squash the offender and
   every younger uop in the NARROW backend and resteer them into the wide
   backend. Older work, and younger wide-backend work, is untouched â the
   resteered uops keep their ROB slots, so no rename rollback or refetch is
   needed. Their destination values are re-produced in the wide cluster:
   wide consumers then read them directly, and in-flight copies of the dead
   incarnations are killed by the value-epoch bump. No narrow-backend
   consumer of a resteered value can survive the squash, because it would
   itself be younger and in the narrow backend. *)
let flush_from st (offender : node) =
  let cfg = st.cfg in
  let resteered = ref [] in
  Queue.iter
    (fun (node : node) ->
      if node.n_id >= offender.n_id && node.n_cluster = Config.Narrow then begin
        match node.n_kind with
        | Copy _ -> ()
        | Normal | Slice _ -> resteered := node :: !resteered
      end)
    st.rob;
  let resteered = List.rev !resteered in
  (* purge the narrow issue queue of the squashed incarnations, and of
     copies whose value is about to die *)
  let reset_node (node : node) =
    emit st Event.Squash node ~a:0 ~b:0;
    node.n_gen <- node.n_gen + 1;
    node.n_issued <- false;
    (* a completed memory uop re-enters the memory order buffer *)
    if node.n_is_mem && node.n_done then st.mob_count <- st.mob_count + 1;
    (* the destination register moves to the wide file; tolerate a full
       pool (resteer cannot stall) by keeping the old entry *)
    ( match node.n_alloc with
    | Some Config.Narrow when Regfile.allocate st.regfile Config.Wide ->
      Regfile.release st.regfile Config.Narrow;
      node.n_alloc <- Some Config.Wide
    | Some _ | None -> () );
    node.n_done <- false;
    node.n_cluster <- Config.Wide;
    node.n_remote_reads <- false;
    ( match node.n_dest with
    | Some v ->
      reset_vstate v;
      v.v_cluster <- Config.Wide
    | None -> () )
  in
  List.iter reset_node resteered;
  List.iter (fun (node : node) -> node.n_mark <- true) resteered;
  Array.iter
    (fun q ->
      iq_filter_inplace q (fun (node : node) ->
          (not node.n_mark) && not (dead_copy node)))
    st.iq;
  List.iter (fun (node : node) -> node.n_mark <- false) resteered;
  (* collapse resteered IR slice groups: the final slice becomes the whole
     wide uop again, its three byte-lane companions become no-ops *)
  List.iter
    (fun (node : node) ->
      match node.n_kind with
      | Slice { final } ->
        if final then begin
          node.n_kind <- Normal;
          (* n_reason keeps Rir: the reason only matters for the fatal
             check of NARROW-cluster uops (Rir is never fatal there), and
             commit uses it to attribute this uop as demoted-to-wide *)
          (* drop the intra-group chain dependences: re-derive register
             dependences from the rename state captured at dispatch is not
             possible, so keep only deps on values that still exist *)
          node.n_deps <-
            Array.of_list
              (List.filter
                 (fun ((v : vstate), epoch) -> v.v_epoch = epoch)
                 (Array.to_list node.n_deps))
        end
        else begin
          node.n_kind <- Slice { final = false };
          node.n_done <- true
        end
      | Normal | Copy _ -> ())
    resteered;
  (* re-dispatch into the wide backend (a transient resteer-buffer overflow
     of the issue queue is allowed), creating the copies the new cluster
     placement needs *)
  let wide = cluster_index Config.Wide in
  List.iter
    (fun (node : node) ->
      if not node.n_done then begin
        if not st.cfg.Config.replicated_regfile then
          Array.iter
            (fun ((v : vstate), epoch) ->
              if
                v.v_epoch = epoch && v.v_cluster = Config.Narrow
                && v.v_avail.(wide) = never
                && not v.v_copy_inflight.(wide)
              then make_copy st ~cv:v ~target:Config.Wide ~prefetch:false
                  ~publishes:true)
            node.n_deps;
        node.n_disp_tick <- st.now;
        iq_append st.iq.(wide) node
      end)
    resteered;
  st.fetch_resume <- max st.fetch_resume (st.now + (2 * cfg.Config.width_flush_penalty));
  st.wflush_until <- max st.wflush_until (st.now + (2 * cfg.Config.width_flush_penalty));
  emit st Event.Flush offender ~a:(List.length resteered) ~b:0;
  Counter.incr st.counters "width_flush"

(* ICS'05-style replay: only the offending uop re-executes, in the wide
   cluster; consumers simply wait for the value to be re-produced. Much
   cheaper than the flushing scheme - the trade-off section 4 discusses. *)
let replay st (node : node) =
  emit st Event.Replay node ~a:0 ~b:0;
  node.n_gen <- node.n_gen + 1;
  node.n_issued <- false;
  if node.n_is_mem then st.mob_count <- st.mob_count + 1;
  node.n_done <- false;
  node.n_cluster <- Config.Wide;
  node.n_remote_reads <- false;
  ( match node.n_dest with
  | Some v ->
    reset_vstate v;
    v.v_cluster <- Config.Wide
  | None -> () );
  ( match node.n_alloc with
  | Some Config.Narrow when Regfile.allocate st.regfile Config.Wide ->
    Regfile.release st.regfile Config.Narrow;
    node.n_alloc <- Some Config.Wide
  | Some _ | None -> () );
  let wide = cluster_index Config.Wide in
  (* re-executing in the wide cluster needs the sources there; without a
     replicated file some may live only in the narrow one *)
  if not st.cfg.Config.replicated_regfile then
    Array.iter
      (fun ((v : vstate), epoch) ->
        if
          v.v_epoch = epoch && v.v_cluster = Config.Narrow
          && v.v_avail.(wide) = never
          && not v.v_copy_inflight.(wide)
        then
          make_copy st ~cv:v ~target:Config.Wide ~prefetch:false ~publishes:true)
      node.n_deps;
  node.n_disp_tick <- st.now;
  iq_append st.iq.(wide) node;
  (* without a replicated register file the re-produced value lands in the
     wide file only, but narrow consumers dispatched before the replay were
     wired copy-free (the value used to live beside them) - send it back *)
  ( match node.n_dest with
  | Some v when not st.cfg.Config.replicated_regfile ->
    make_copy st ~cv:v ~target:Config.Narrow ~prefetch:false ~publishes:true
  | Some _ | None -> () );
  Counter.incr st.counters "replay"

(* Did this narrow-steered uop actually need the wide datapath? *)
let narrow_execution_wrong st (node : node) =
  let bits = st.cfg.Config.narrow_bits in
  match node.n_uop, node.n_reason with
  | Some u, Some Steer.R888 -> not (Uop.is_888_bits ~bits u)
  | Some u, Some Steer.Rcr ->
    if u.Uop.op = Opcode.Load then
      (not (Uop.carry_not_propagated_bits ~bits u))
      || not (Width.is_narrow_bits ~bits u.Uop.result)
    else not (Uop.carry_not_propagated_bits ~bits u)
  (* Rlive is proof-carried: the static bidirectional pass proved every
     bit above the narrow cut dead, so narrow execution is exact on all
     observable values even when the ground-truth values are wide — there
     is nothing for the dynamic check to verify. *)
  | Some _, (Some Steer.Rbr | Some Steer.Rir | Some Steer.Rlive | None)
  | None, _ ->
    false

(* ----- writeback / completion ----- *)

let train_predictors st (u : Uop.t) =
  let bits = st.cfg.Config.narrow_bits in
  if Uop.has_dest u || Uop.writes_flags u then begin
    Width_predictor.update st.preds.Bundle.width u.Uop.pc
      ~narrow:(Width.is_narrow_bits ~bits u.Uop.result);
    Counter.incr st.counters "wpred_update"
  end;
  if st.cfg.Config.scheme.Config.cr && Opcode.carry_eligible u.Uop.op
     && List.length u.Uop.src_vals = 2
  then
    Carry_predictor.update st.preds.Bundle.carry u.Uop.pc
      ~carry_local:(Uop.carry_not_propagated_bits ~bits u)

let classify_prediction st (node : node) (u : Uop.t) ~fatal =
  if Uop.has_dest u || Uop.writes_flags u then begin
    let narrow = Width.is_narrow_bits ~bits:st.cfg.Config.narrow_bits u.Uop.result in
    let predicted =
      match node.n_dest with Some v -> v.v_pred_narrow | None -> narrow
    in
    if fatal then st.wpred_fatal <- st.wpred_fatal + 1
    else if predicted = narrow then st.wpred_correct <- st.wpred_correct + 1
    else st.wpred_nonfatal <- st.wpred_nonfatal + 1
  end

let regwrite_counter cluster =
  match cluster with
  | Config.Wide -> "regwrite_wide"
  | Config.Narrow -> "regwrite_narrow"

let complete_copy st (node : node) ~cv ~target ~epoch ~publishes =
  if cv.v_epoch = epoch then begin
    let i = cluster_index target in
    if publishes then cv.v_avail.(i) <- min cv.v_avail.(i) st.now;
    Counter.incr st.counters "copy_completed";
    Counter.incr st.counters (regwrite_counter target)
  end;
  ignore node

let complete_slice st (node : node) ~final =
  ( match node.n_dest with
  | Some v ->
    v.v_done <- true;
    v.v_avail.(cluster_index Config.Narrow) <- st.now;
    if final && st.cfg.Config.replicated_regfile then begin
      let wide = cluster_index Config.Wide in
      v.v_avail.(wide) <- min v.v_avail.(wide) (st.now + 2);
      Counter.incr st.counters (regwrite_counter Config.Wide)
    end
  | None -> () );
  if final then begin
    match node.n_uop with
    | Some u ->
      classify_prediction st node u ~fatal:false;
      train_predictors st u
    | None -> ()
  end;
  Counter.incr st.counters "alu_narrow";
  Counter.incr st.counters (regwrite_counter Config.Narrow)

let complete_normal st (node : node) =
  let u = match node.n_uop with Some u -> u | None -> assert false in
  if node.n_is_mem then begin
    st.mob_count <- st.mob_count - 1;
    Counter.incr st.counters
      (if u.Uop.dl0_miss then if u.Uop.ul1_miss then "mem_main" else "mem_ul1"
       else "mem_dl0")
  end;
  let fatal = node.n_cluster = Config.Narrow && narrow_execution_wrong st node in
  classify_prediction st node u ~fatal;
  train_predictors st u;
  if fatal then begin
    if st.cfg.Config.replay_recovery then replay st node
    else
      (* the offender is squashed together with everything younger *)
      flush_from st node
  end
  else begin
    ( match node.n_dest with
    | Some v ->
      v.v_done <- true;
      let own = cluster_index node.n_cluster in
      v.v_avail.(own) <- st.now;
      (* ICS'05 register replication: the result is also written to the
         other cluster's file, one cycle later, with no copy uop *)
      if st.cfg.Config.replicated_regfile then begin
        let oth = cluster_index (other_cluster node.n_cluster) in
        v.v_avail.(oth) <- min v.v_avail.(oth) (st.now + 2);
        Counter.incr st.counters (regwrite_counter (other_cluster node.n_cluster))
      end;
      (* LR (§3.4): the shared MOB fills both register files. The replica of
         an actually-wide value carries a truncated pattern; a narrow
         consumer that reads it discovers the width violation at its own
         execution and recovers through the ordinary flush path. *)
      if node.n_lr_replicate then begin
        let oth = cluster_index (other_cluster node.n_cluster) in
        v.v_avail.(oth) <- st.now + 2;
        if v.v_narrow then Counter.incr st.counters "lr_replicated";
        Counter.incr st.counters (regwrite_counter (other_cluster node.n_cluster))
      end
    | None -> () );
    Counter.incr st.counters (regwrite_counter node.n_cluster);
    ( match Opcode.exec_class u.Uop.op with
    | Opcode.Int_alu | Opcode.Ctrl ->
      Counter.incr st.counters
        (match node.n_cluster with
        | Config.Wide -> "alu_wide"
        | Config.Narrow -> "alu_narrow")
    | Opcode.Int_mul -> Counter.incr st.counters "mul_wide"
    | Opcode.Mem ->
      Counter.incr st.counters
        (match node.n_cluster with
        | Config.Wide -> "agu_wide"
        | Config.Narrow -> "agu_narrow")
    | Opcode.Fp -> Counter.incr st.counters "fpu_wide" );
    if node.n_br_mispredicted then
      st.fetch_resume <-
        max st.fetch_resume (st.now + (2 * st.cfg.Config.branch_penalty))
  end

let complete_node st (node : node) =
  if not node.n_squashed then begin
    node.n_done <- true;
    emit st Event.Writeback node ~a:node.n_disp_tick ~b:node.n_issue_tick;
    match node.n_kind with
    | Copy { cv; target; epoch; prefetch = _; publishes } ->
      complete_copy st node ~cv ~target ~epoch ~publishes
    | Slice { final } -> complete_slice st node ~final
    | Normal -> complete_normal st node
  end

let push_due st node gen =
  let cap = Array.length st.due_nodes in
  if st.due_len = cap then begin
    let nodes = Array.make (2 * cap) st.null_node in
    let gens = Array.make (2 * cap) 0 in
    Array.blit st.due_nodes 0 nodes 0 cap;
    Array.blit st.due_gens 0 gens 0 cap;
    st.due_nodes <- nodes;
    st.due_gens <- gens
  end;
  st.due_nodes.(st.due_len) <- node;
  st.due_gens.(st.due_len) <- gen;
  st.due_len <- st.due_len + 1

let process_completions st =
  let slot = st.events.(st.now land (wheel_size - 1)) in
  st.due_len <- 0;
  let kept = ref 0 in
  for k = 0 to slot.ev_len - 1 do
    let node = slot.ev_nodes.(k) in
    let gen = slot.ev_gens.(k) in
    if node.n_gen = gen then begin
      if node.n_complete = st.now then push_due st node gen
      else begin
        (* a future wrap of the wheel; keep, compacted in place *)
        slot.ev_nodes.(!kept) <- node;
        slot.ev_gens.(!kept) <- gen;
        incr kept
      end
    end
  done;
  for k = !kept to slot.ev_len - 1 do
    slot.ev_nodes.(k) <- st.null_node
  done;
  slot.ev_len <- !kept;
  (* oldest first: a fatal flush must squash younger completions sharing
     this tick. Insertion sort on the (tiny) due batch; ids are unique so
     the order is total and deterministic. *)
  for k = 1 to st.due_len - 1 do
    let node = st.due_nodes.(k) in
    let gen = st.due_gens.(k) in
    let j = ref (k - 1) in
    while !j >= 0 && st.due_nodes.(!j).n_id > node.n_id do
      st.due_nodes.(!j + 1) <- st.due_nodes.(!j);
      st.due_gens.(!j + 1) <- st.due_gens.(!j);
      decr j
    done;
    st.due_nodes.(!j + 1) <- node;
    st.due_gens.(!j + 1) <- gen
  done;
  for k = 0 to st.due_len - 1 do
    let node = st.due_nodes.(k) in
    (* re-check the generation: a flush triggered by an older completion
       this same tick may have squashed-and-resteered this one *)
    if node.n_gen = st.due_gens.(k) then complete_node st node
  done

(* ----- commit ----- *)

(* Returns the number of commit slots used this round (for accounting). *)
let commit st =
  let budget = ref st.cfg.Config.commit_width in
  let stop = ref false in
  while (not !stop) && !budget > 0 && not (Queue.is_empty st.rob) do
    let head = Queue.peek st.rob in
    if head.n_done && not head.n_squashed then begin
      ignore (Queue.pop st.rob);
      st.rob_count <- st.rob_count - 1;
      decr budget;
      ( match head.n_alloc with
      | Some c -> Regfile.release st.regfile c
      | None -> () );
      ( match head.n_kind with
      | Normal ->
        st.committed <- st.committed + 1;
        if head.n_cluster = Config.Narrow then begin
          st.steered_narrow <- st.steered_narrow + 1;
          ( match head.n_reason with
          | Some Steer.R888 | Some Steer.Rlive ->
            (* Rlive is the static oracle's dead-width variant of the 888
               rule; it shares the 888 attribution bucket so the sample
               schema stays fixed across schemes. *)
            st.steered_888 <- st.steered_888 + 1
          | Some Steer.Rbr -> st.steered_br <- st.steered_br + 1
          | Some Steer.Rcr -> st.steered_cr <- st.steered_cr + 1
          | Some Steer.Rir -> st.steered_ir <- st.steered_ir + 1
          | None -> st.steered_other <- st.steered_other + 1 )
        end
        else
          (* a retained reason on a wide-cluster uop means recovery
             demoted it there after a narrow steering decision *)
          ( match head.n_reason with
          | Some _ -> st.wide_demoted <- st.wide_demoted + 1
          | None -> st.wide_default <- st.wide_default + 1 )
      | Slice { final } ->
        if final then begin
          st.committed <- st.committed + 1;
          st.steered_narrow <- st.steered_narrow + 1;
          st.split_uops <- st.split_uops + 1;
          st.steered_ir <- st.steered_ir + 1
        end
      | Copy _ -> assert false );
      incr st.c_committed;
      emit st Event.Commit head ~a:0 ~b:0
    end
    else stop := true
  done;
  st.cfg.Config.commit_width - !budget

(* ----- main loop ----- *)

let finished st =
  st.fetch_idx >= Trace.length st.trace && Queue.is_empty st.rob

let run ?(max_ticks = 200_000_000) ?sink ?accounting ~cfg ~decide ~scheme_name
    trace =
  let st = create ?sink ?accounting cfg decide trace in
  let helper = cfg.Config.scheme.Config.helper in
  let sample_every =
    match sink with Some s -> Sink.interval s | None -> 0
  in
  while not (finished st) do
    if st.now > max_ticks then
      failwith
        (Printf.sprintf "Pipeline.run: exceeded %d ticks at trace index %d"
           max_ticks st.fetch_idx);
    process_completions st;
    let even = st.now mod 2 = 0 in
    if even then begin
      let commit_used = commit st in
      ( match st.acct with
      | Some a -> account_commit_round st a ~committed:commit_used
      | None -> () );
      st.stall_src <- Sr_none;
      frontend st;
      let issued_w, leftover_w = issue_cluster st Config.Wide in
      ( match st.acct with
      | Some a -> account_issue_round st a Config.Wide ~issued:issued_w
      | None -> () );
      if helper then begin
        let issued_n, leftover_n = issue_cluster st Config.Narrow in
        ( match st.acct with
        | Some a -> account_issue_round st a Config.Narrow ~issued:issued_n
        | None -> () );
        (* NREADY (§3.7): ready uops stalled here while the other backend
           had idle slots this cycle *)
        let spare_n = cfg.Config.issue_width - issued_n in
        let spare_w = cfg.Config.issue_width - issued_w in
        if spare_n > 0 && leftover_w > 0 then begin
          let capable = count_ready_narrow_capable st in
          st.nready_w2n <- st.nready_w2n + min capable spare_n
        end;
        if spare_w > 0 && leftover_n > 0 then
          st.nready_n2w <- st.nready_n2w + min leftover_n spare_w
      end
    end
    else if helper && cfg.Config.helper_fast_clock then begin
      let issued_n, _ = issue_cluster st Config.Narrow in
      match st.acct with
      | Some a -> account_issue_round st a Config.Narrow ~issued:issued_n
      | None -> ()
    end;
    incr st.c_tick;
    if even then incr st.c_cycle_wide;
    if helper && (even || cfg.Config.helper_fast_clock) then
      incr st.c_cycle_narrow;
    if sample_every > 0 && st.now > 0 && st.now mod sample_every = 0 then begin
      ( match st.sink with
      | Some sink -> take_sample st sink
      | None -> () );
      match st.acct with
      | Some a -> Accounting.snapshot a ~tick:st.now
      | None -> ()
    end;
    st.now <- st.now + 1
  done;
  (* flush the tail interval so the series' column sums equal the final
     metrics even when the run length is not a multiple of the interval *)
  if sample_every > 0 then
    ( match st.sink with
    | Some sink -> take_sample st sink
    | None -> () );
  (* accounting flushes its tail even without a sampling sink, so a run
     with accounting but no interval series still gets one whole-run
     interval (stall-out CSV is never empty) *)
  ( match st.acct with
  | Some a -> Accounting.snapshot a ~tick:st.now
  | None -> () );
  {
    Metrics.name = trace.Trace.name;
    scheme_name;
    committed = st.committed;
    ticks = st.now;
    copies = st.copies;
    steered_narrow = st.steered_narrow;
    split_uops = st.split_uops;
    steered_888 = st.steered_888;
    steered_br = st.steered_br;
    steered_cr = st.steered_cr;
    steered_ir = st.steered_ir;
    steered_other = st.steered_other;
    wide_default = st.wide_default;
    wide_demoted = st.wide_demoted;
    wpred_correct = st.wpred_correct;
    wpred_fatal = st.wpred_fatal;
    wpred_nonfatal = st.wpred_nonfatal;
    prefetch_copies = st.prefetch_copies;
    prefetch_useful = st.prefetch_useful;
    nready_w2n = st.nready_w2n;
    nready_n2w = st.nready_n2w;
    issued_total = st.issued_total;
    static_narrow_bound = None;
    static_bidir_bound = None;
    stall =
      ( match st.acct with
      | Some a -> Some (Accounting.totals a)
      | None -> None );
    counters = st.counters;
  }
