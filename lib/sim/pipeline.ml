(* The cycle-level two-cluster pipeline model, organised for an
   allocation-free per-uop hot path: uop fields stream out of the trace's
   packed SoA columns, in-flight state lives in per-domain scratch arenas
   (value/node pools, intrusive issue queues, a ring-buffer ROB, an event
   wheel) reused across runs, and options/tuples/closures are replaced by
   sentinels and int codes. Accounting and event-sink paths may allocate;
   they are guarded off the untraced run. The bench's --alloc-gate checks
   the marginal minor-words-per-uop of a warm untraced run stays zero. *)
module Opcode = Hc_isa.Opcode
module Reg = Hc_isa.Reg
module Uop = Hc_isa.Uop
module Uop_soa = Hc_isa.Uop_soa
module Value = Hc_isa.Value
module Width = Hc_isa.Width
module Trace = Hc_trace.Trace
module Counter = Hc_stats.Counter
module Bundle = Hc_predictors.Bundle
module Width_predictor = Hc_predictors.Width_predictor
module Carry_predictor = Hc_predictors.Carry_predictor
module Copy_predictor = Hc_predictors.Copy_predictor
module Sink = Hc_obs.Sink
module Event = Hc_obs.Event
module Sample = Hc_obs.Sample

type decide = Steer.decide

let never = max_int

let cluster_index = function Config.Wide -> 0 | Config.Narrow -> 1

(* ----- renamed values -----

   Flattened: the seed kept four 2-element sub-arrays per value (avail,
   copy_inflight, prefetched, prefetch_used); those are scalar mutable
   fields now, and the values themselves come from a per-domain pool, so
   producing a value on the hot path allocates nothing. *)

type vstate = {
  mutable v_pc : Value.t;  (* producer's pc, for predictor training *)
  mutable v_narrow : bool;  (* ground truth width of the value *)
  mutable v_pred_narrow : bool;  (* what the width predictor said at rename *)
  mutable v_epoch : int;  (* bumped on squash so stale references die *)
  mutable v_done : bool;
  mutable v_avail0 : int;  (* tick the value is usable, per cluster-index *)
  mutable v_avail1 : int;
  mutable v_copy_inflight0 : bool;  (* a copy toward cluster i is scheduled *)
  mutable v_copy_inflight1 : bool;
  mutable v_demand_copied : bool;  (* a demand copy was needed: CP training *)
  mutable v_prefetched0 : bool;
  mutable v_prefetched1 : bool;
  mutable v_prefetch_used0 : bool;
  mutable v_prefetch_used1 : bool;
  mutable v_lr : bool;  (* produced by a load that LR will replicate *)
  mutable v_cluster : Config.cluster;  (* producer's cluster *)
  mutable v_from_load : bool;  (* produced by a load: memory-bound stalls *)
}

let new_vstate () =
  {
    v_pc = 0; v_narrow = false; v_pred_narrow = false; v_epoch = 0;
    v_done = false; v_avail0 = never; v_avail1 = never;
    v_copy_inflight0 = false; v_copy_inflight1 = false;
    v_demand_copied = false; v_prefetched0 = false; v_prefetched1 = false;
    v_prefetch_used0 = false; v_prefetch_used1 = false; v_lr = false;
    v_cluster = Config.Wide; v_from_load = false;
  }

(* The one value no node or rename slot points at "nothing" without: a
   shared sentinel replacing [vstate option]. Never written. *)
let null_vstate = new_vstate ()

let v_avail v i = if i = 0 then v.v_avail0 else v.v_avail1

let set_v_avail v i t = if i = 0 then v.v_avail0 <- t else v.v_avail1 <- t

let v_copy_inflight v i = if i = 0 then v.v_copy_inflight0 else v.v_copy_inflight1

let set_v_copy_inflight v i b =
  if i = 0 then v.v_copy_inflight0 <- b else v.v_copy_inflight1 <- b

let v_prefetched v i = if i = 0 then v.v_prefetched0 else v.v_prefetched1

let set_v_prefetched v i b =
  if i = 0 then v.v_prefetched0 <- b else v.v_prefetched1 <- b

let v_prefetch_used v i = if i = 0 then v.v_prefetch_used0 else v.v_prefetch_used1

let set_v_prefetch_used v i b =
  if i = 0 then v.v_prefetch_used0 <- b else v.v_prefetch_used1 <- b

let reset_vstate v =
  v.v_epoch <- v.v_epoch + 1;
  v.v_done <- false;
  v.v_avail0 <- never;
  v.v_avail1 <- never;
  v.v_copy_inflight0 <- false;
  v.v_copy_inflight1 <- false;
  v.v_prefetched0 <- false;
  v.v_prefetched1 <- false;
  v.v_prefetch_used0 <- false;
  v.v_prefetch_used1 <- false;
  v.v_lr <- false

(* ----- pipeline nodes -----

   The seed's [kind] variant (Normal | Copy of {..} | Slice of {..}) and
   its option-typed fields each cost a block per dispatched node. The
   kind is an int code with the payload flattened into dedicated fields,
   options are sentinel-tested fields, and the nodes themselves are
   pooled per domain, so dispatch allocates nothing. *)

let k_normal = 0

let k_copy = 1

let k_slice = 2

(* steering-reason codes; 0 = none, mirroring [Steer.reason option] *)
let r_none = 0

let r_888 = 1

let r_br = 2

let r_cr = 3

let r_ir = 4

let r_live = 5

let reason_code = function
  | Steer.R888 -> r_888
  | Steer.Rbr -> r_br
  | Steer.Rcr -> r_cr
  | Steer.Rir -> r_ir
  | Steer.Rlive -> r_live

let null_uop =
  Uop.make ~id:(-1) ~pc:0 ~op:Opcode.Nop ~srcs:[] ~dst:None ~src_vals:[] ()

type node = {
  mutable n_id : int;  (* dispatch order, unique *)
  mutable n_trace_idx : int;  (* position in the trace; -1 for copies *)
  mutable n_uop : Uop.t;  (* [null_uop] for copies *)
  mutable n_kind : int;  (* k_normal / k_copy / k_slice *)
  (* copy payload (valid when n_kind = k_copy) *)
  mutable n_cv : vstate;  (* the value being copied *)
  mutable n_copy_target : int;  (* destination cluster-index *)
  mutable n_copy_epoch : int;  (* cv's epoch when the copy was made *)
  mutable n_copy_publishes : bool;
      (* IR splits send a burst of four byte copies; only the last one
         publishes the value in the target register file *)
  (* slice payload (valid when n_kind = k_slice) *)
  mutable n_slice_final : bool;
      (* one 8-bit lane of an IR-split uop; final completes the value *)
  mutable n_cluster : Config.cluster;
  mutable n_squashed : bool;
  mutable n_done : bool;
  mutable n_issued : bool;
  mutable n_gen : int;
      (* incremented when the node is squashed-and-resteered so completion
         events scheduled for its previous incarnation are ignored *)
  (* dependences: parallel (value, epoch-at-dispatch) arrays with an
     explicit length, so re-dispatching reuses the same storage *)
  mutable n_dep_v : vstate array;
  mutable n_dep_e : int array;
  mutable n_ndeps : int;
  mutable n_dest : vstate;  (* null_vstate = no destination *)
  mutable n_reason : int;  (* r_none / r_888 / ... *)
  mutable n_is_mem : bool;
  mutable n_lr_replicate : bool;  (* LR: replicate the load on completion *)
  mutable n_br_mispredicted : bool;
      (* resolved direction-prediction outcome for this dynamic branch:
         the trace's ground truth under Br_trace_flags, the gshare verdict
         under Br_gshare (computed in order at dispatch) *)
  mutable n_alloc : int;
      (* cluster-index of the physical register allocated for the
         destination, to return at commit; -1 = none *)
  mutable n_remote_reads : bool;
      (* CR (§3.5): the 8-bit AGU consumes only source low bytes; the wide
         source's upper 24 bits stay behind the rename tag in the wide
         register file, so sources need no inter-cluster copy and are
         readable as soon as they exist anywhere *)
  mutable n_complete : int;
  mutable n_disp_tick : int;  (* telemetry: tick of issue-queue insertion *)
  mutable n_issue_tick : int;  (* telemetry: tick the uop won an issue slot *)
  mutable n_prev : node;  (* intrusive issue-queue links; self = detached *)
  mutable n_next : node;
  mutable n_mark : bool;  (* transient, used by flush_from's queue purge *)
}

let new_node () =
  let rec n =
    {
      n_id = min_int; n_trace_idx = -1; n_uop = null_uop; n_kind = k_normal;
      n_cv = null_vstate; n_copy_target = 0; n_copy_epoch = 0;
      n_copy_publishes = false; n_slice_final = false;
      n_cluster = Config.Wide; n_squashed = true; n_done = true;
      n_issued = false; n_gen = 0;
      n_dep_v = Array.make 4 null_vstate; n_dep_e = Array.make 4 0;
      n_ndeps = 0; n_dest = null_vstate; n_reason = r_none;
      n_is_mem = false; n_lr_replicate = false; n_br_mispredicted = false;
      n_alloc = -1; n_remote_reads = false; n_complete = never;
      n_disp_tick = 0; n_issue_tick = 0; n_prev = n; n_next = n;
      n_mark = false;
    }
  in
  n

(* Array padding / "no node" sentinel. Never linked, never written. *)
let null_node = new_node ()

let ensure_node_dep_cap (node : node) cap =
  if Array.length node.n_dep_v < cap then begin
    let ncap = max cap (2 * Array.length node.n_dep_v) in
    let nv = Array.make ncap null_vstate in
    let ne = Array.make ncap 0 in
    Array.blit node.n_dep_v 0 nv 0 node.n_ndeps;
    Array.blit node.n_dep_e 0 ne 0 node.n_ndeps;
    node.n_dep_v <- nv;
    node.n_dep_e <- ne
  end

(* ----- intrusive issue queues -----

   A circular doubly-linked list threaded through the nodes themselves
   (oldest at the head, newest at the tail), so the per-cycle issue scan
   unlinks an issued or dead node in O(1) with zero allocation. *)

type iq = { iq_sent : node; mutable iq_len : int }

let iq_append q n =
  let s = q.iq_sent in
  let last = s.n_prev in
  n.n_prev <- last;
  n.n_next <- s;
  last.n_next <- n;
  s.n_prev <- n;
  q.iq_len <- q.iq_len + 1

let iq_unlink q n =
  n.n_prev.n_next <- n.n_next;
  n.n_next.n_prev <- n.n_prev;
  n.n_prev <- n;
  n.n_next <- n;
  q.iq_len <- q.iq_len - 1

(* Walk oldest-to-newest, unlinking every node [keep] rejects. [keep] is
   always a closed top-level function (static closure), so the walk
   allocates nothing. *)
let rec iq_filter_from q keep (node : node) s =
  if node != s then begin
    let next = node.n_next in
    if not (keep node) then iq_unlink q node;
    iq_filter_from q keep next s
  end

let iq_filter_inplace q keep = iq_filter_from q keep q.iq_sent.n_next q.iq_sent

(* ----- event wheel slots -----

   Growable per-slot arrays of (node, generation-at-schedule), reused
   across wheel wraps so steady-state scheduling allocates nothing. *)

type evslot = {
  mutable ev_nodes : node array;
  mutable ev_gens : int array;
  mutable ev_len : int;
}

let wheel_size = 4096

(* ----- per-domain scratch arenas -----

   Everything whose lifetime is one [run] but whose storage can outlive
   it: value and node pools (bump cursors, no within-run reuse, reset per
   run), the event wheel, the completion batch, the ROB ring storage, the
   flush resteer buffer, the dispatch dependence scratch, the rename
   table, and the two issue-queue sentinels. Kept in domain-local
   storage: [run] is synchronous and each Domain_pool worker runs tasks
   sequentially, so one arena per domain is race-free, and warm reruns
   allocate nothing per uop. *)

type scratch = {
  mutable p_vstates : vstate array;  (* value pool *)
  mutable p_vcur : int;
  mutable p_nodes : node array;  (* node pool *)
  mutable p_ncur : int;
  events : evslot array;  (* indexed by tick mod wheel_size *)
  mutable due_nodes : node array;  (* completion scratch *)
  mutable due_gens : int array;
  mutable due_len : int;
  mutable rob_buf : node array;  (* ROB ring storage, >= cfg.rob_size *)
  mutable resteer : node array;  (* flush_from's squash set, ROB order *)
  mutable dp_v : vstate array;  (* dispatch dependence scratch *)
  mutable dp_e : int array;
  mutable dp_need : bool array;  (* needs a cross-cluster copy *)
  mutable dp_n : int;
  rename : vstate array;  (* arch reg -> live value; null_vstate = none *)
  sent0 : node;  (* wide issue-queue sentinel *)
  sent1 : node;  (* narrow issue-queue sentinel *)
}

let fresh_scratch () =
  {
    p_vstates = Array.init 4096 (fun _ -> new_vstate ());
    p_vcur = 0;
    p_nodes = Array.init 4096 (fun _ -> new_node ());
    p_ncur = 0;
    events =
      Array.init wheel_size (fun _ ->
          { ev_nodes = Array.make 4 null_node; ev_gens = Array.make 4 0;
            ev_len = 0 });
    due_nodes = Array.make 64 null_node;
    due_gens = Array.make 64 0;
    due_len = 0;
    rob_buf = [||];
    resteer = Array.make 64 null_node;
    dp_v = Array.make 8 null_vstate;
    dp_e = Array.make 8 0;
    dp_need = Array.make 8 false;
    dp_n = 0;
    rename = Array.make Reg.count null_vstate;
    sent0 = new_node ();
    sent1 = new_node ();
  }

let scratch_key = Domain.DLS.new_key fresh_scratch

let grow_vpool sc =
  let old = sc.p_vstates in
  let n = Array.length old in
  sc.p_vstates <- Array.init (2 * n) (fun i -> if i < n then old.(i) else new_vstate ())

let grow_npool sc =
  let old = sc.p_nodes in
  let n = Array.length old in
  sc.p_nodes <- Array.init (2 * n) (fun i -> if i < n then old.(i) else new_node ())

let ensure_dp_cap sc cap =
  if Array.length sc.dp_v < cap then begin
    let ncap = max cap (2 * Array.length sc.dp_v) in
    let nv = Array.make ncap null_vstate in
    let ne = Array.make ncap 0 in
    let nn = Array.make ncap false in
    Array.blit sc.dp_v 0 nv 0 sc.dp_n;
    Array.blit sc.dp_e 0 ne 0 sc.dp_n;
    Array.blit sc.dp_need 0 nn 0 sc.dp_n;
    sc.dp_v <- nv;
    sc.dp_e <- ne;
    sc.dp_need <- nn
  end

let ensure_resteer_cap sc cap =
  if Array.length sc.resteer < cap then begin
    let old = sc.resteer in
    let ncap = max cap (2 * Array.length old) in
    let arr = Array.make ncap null_node in
    Array.blit old 0 arr 0 (Array.length old);
    sc.resteer <- arr
  end

(* Drop every reference the previous run left behind (so its trace and
   per-run structures become collectable), relink the sentinels, and make
   sure the ROB ring fits this run's configuration. *)
let reset_scratch sc ~rob_size =
  for k = 0 to wheel_size - 1 do
    let slot = sc.events.(k) in
    if slot.ev_len > 0 then begin
      Array.fill slot.ev_nodes 0 slot.ev_len null_node;
      slot.ev_len <- 0
    end
  done;
  sc.due_len <- 0;
  for k = 0 to sc.p_ncur - 1 do
    let n = sc.p_nodes.(k) in
    n.n_uop <- null_uop;
    n.n_prev <- n;
    n.n_next <- n
  done;
  sc.p_ncur <- 0;
  sc.p_vcur <- 0;
  sc.dp_n <- 0;
  Array.fill sc.rename 0 (Array.length sc.rename) null_vstate;
  if Array.length sc.rob_buf < rob_size then sc.rob_buf <- Array.make rob_size null_node
  else Array.fill sc.rob_buf 0 (Array.length sc.rob_buf) null_node;
  sc.sent0.n_prev <- sc.sent0;
  sc.sent0.n_next <- sc.sent0;
  sc.sent1.n_prev <- sc.sent1;
  sc.sent1.n_next <- sc.sent1

(* ----- whole-machine state ----- *)

(* Why the most recent frontend round stopped dispatching — consumed by
   the cycle accounting to split an empty stage between dispatch-stalled
   and genuinely idle. A single int write per stall, so it stays on even
   with accounting off. *)
type stall_src = Sr_none | Sr_rob | Sr_iq | Sr_regfile | Sr_mob

type state = {
  cfg : Config.t;
  trace : Trace.t;
  soa : Uop_soa.t;  (* the trace's packed columns: def-use and width
                       checks read these instead of uop records *)
  uarr : Uop.t array;  (* record view, forced once per trace *)
  trace_len : int;
  decide : decide;
  preds : Bundle.t;
  counters : Counter.t;
  sink : Sink.t option;
      (* telemetry; [None] keeps every instrumentation point a single
         field test and the hot path allocation-free *)
  acct : Accounting.t option;
      (* cycle accounting; [None] keeps the attribution walk behind one
         field test per issue round, same discipline as [sink] *)
  sc : scratch;
  mutable steer_ctx : Steer.ctx option;  (* built once, after [create] *)
  lat3 : int * int * int;  (* (dl0, ul1, mem) for the cache hierarchy *)
  mutable stall_src : stall_src;  (* last frontend round's stop reason *)
  mutable wflush_until : int;  (* draining a width flush before this tick *)
  (* frontend *)
  mutable fetch_idx : int;  (* next trace index to dispatch *)
  mutable fetch_resume : int;  (* tick before which dispatch is stalled *)
  force_wide : (int, unit) Hashtbl.t;  (* trace idx -> must steer wide *)
  rename : vstate array;  (* = sc.rename *)
  (* backends *)
  iq : iq array;  (* per cluster-index, intrusive, oldest first *)
  rob_buf : node array;  (* ring, oldest at rob_head *)
  rob_cap : int;
  mutable rob_head : int;
  mutable rob_count : int;
  mutable mob_count : int;
  backlog : int array;  (* per cluster: ready-not-issued in the last round *)
  backlog_ewma : float array;  (* smoothed, for the IR trigger *)
  (* structural substrates (active per the config's model selectors) *)
  memory : Cache.Hierarchy.t;
  gshare : Branch_predictor.t;
  tcache : Trace_cache.t;
  regfile : Regfile.t;
  (* cached cells of the per-tick counters, so the hot loop skips the
     string-keyed hashtable *)
  c_tick : int ref;
  c_cycle_wide : int ref;
  c_cycle_narrow : int ref;
  c_issue : int ref array;  (* per cluster-index *)
  c_regread : int ref array;
  c_committed : int ref;
  (* lazy cells for the event-driven counters: the key appears in the
     metrics JSON on the first increment, exactly like the string-keyed
     Counter.incr calls they replace, so counter sets stay identical *)
  c_copy_dispatched : Counter.lcell;
  c_split_dispatched : Counter.lcell;
  c_dispatch : Counter.lcell array;  (* per cluster-index *)
  c_wpred_lookup : Counter.lcell;
  c_wpred_update : Counter.lcell;
  c_tc_miss : Counter.lcell;
  c_copy_completed : Counter.lcell;
  c_regwrite : Counter.lcell array;
  c_alu : Counter.lcell array;
  c_mul_wide : Counter.lcell;
  c_agu : Counter.lcell array;
  c_fpu_wide : Counter.lcell;
  c_mem_dl0 : Counter.lcell;
  c_mem_ul1 : Counter.lcell;
  c_mem_main : Counter.lcell;
  c_lr_replicated : Counter.lcell;
  c_width_flush : Counter.lcell;
  c_replay : Counter.lcell;
  mutable next_node_id : int;
  mutable now : int;
  (* per-round scratch results: stage walks report through these fields
     instead of returning tuples or threading refs *)
  mutable iss_issued : int;
  mutable iss_ready : int;
  mutable dis_demand_w : int;  (* copy slot demand of the current dispatch *)
  mutable dis_demand_n : int;
  mutable rsteer_n : int;  (* live prefix of sc.resteer *)
  mutable split_prev : vstate;  (* previous lane while cracking a split *)
  (* results *)
  mutable committed : int;
  mutable copies : int;
  mutable steered_narrow : int;
  mutable split_uops : int;
  (* steering attribution: who earned each committed uop (see Metrics) *)
  mutable steered_888 : int;
  mutable steered_br : int;
  mutable steered_cr : int;
  mutable steered_ir : int;
  mutable steered_other : int;
  mutable wide_default : int;
  mutable wide_demoted : int;
  mutable wpred_correct : int;
  mutable wpred_fatal : int;
  mutable wpred_nonfatal : int;
  mutable prefetch_copies : int;
  mutable prefetch_useful : int;
  mutable nready_w2n : int;
  mutable nready_n2w : int;
  mutable issued_total : int;
}

let fresh_node_id st =
  let id = st.next_node_id in
  st.next_node_id <- id + 1;
  id

(* ----- pool allocation ----- *)

let alloc_vstate st ~pc ~narrow ~pred_narrow ~cluster =
  let sc = st.sc in
  if sc.p_vcur >= Array.length sc.p_vstates then grow_vpool sc;
  let v = sc.p_vstates.(sc.p_vcur) in
  sc.p_vcur <- sc.p_vcur + 1;
  v.v_pc <- pc;
  v.v_narrow <- narrow;
  v.v_pred_narrow <- pred_narrow;
  v.v_epoch <- 0;
  v.v_done <- false;
  v.v_avail0 <- never;
  v.v_avail1 <- never;
  v.v_copy_inflight0 <- false;
  v.v_copy_inflight1 <- false;
  v.v_demand_copied <- false;
  v.v_prefetched0 <- false;
  v.v_prefetched1 <- false;
  v.v_prefetch_used0 <- false;
  v.v_prefetch_used1 <- false;
  v.v_lr <- false;
  v.v_cluster <- cluster;
  v.v_from_load <- false;
  v

let alloc_node st =
  let sc = st.sc in
  if sc.p_ncur >= Array.length sc.p_nodes then grow_npool sc;
  let n = sc.p_nodes.(sc.p_ncur) in
  sc.p_ncur <- sc.p_ncur + 1;
  n.n_id <- min_int;
  n.n_trace_idx <- -1;
  n.n_uop <- null_uop;
  n.n_kind <- k_normal;
  n.n_cv <- null_vstate;
  n.n_copy_target <- 0;
  n.n_copy_epoch <- 0;
  n.n_copy_publishes <- false;
  n.n_slice_final <- false;
  n.n_cluster <- Config.Wide;
  n.n_squashed <- false;
  n.n_done <- false;
  n.n_issued <- false;
  n.n_gen <- 0;
  n.n_ndeps <- 0;
  n.n_dest <- null_vstate;
  n.n_reason <- r_none;
  n.n_is_mem <- false;
  n.n_lr_replicate <- false;
  n.n_br_mispredicted <- false;
  n.n_alloc <- -1;
  n.n_remote_reads <- false;
  n.n_complete <- never;
  n.n_disp_tick <- 0;
  n.n_issue_tick <- 0;
  n.n_prev <- n;
  n.n_next <- n;
  n.n_mark <- false;
  n

(* ----- ROB ring ----- *)

let rob_add st node =
  let pos = st.rob_head + st.rob_count in
  let pos = if pos >= st.rob_cap then pos - st.rob_cap else pos in
  st.rob_buf.(pos) <- node;
  st.rob_count <- st.rob_count + 1

let rob_peek st = st.rob_buf.(st.rob_head)

let rob_pop st =
  st.rob_buf.(st.rob_head) <- null_node;
  let h = st.rob_head + 1 in
  st.rob_head <- (if h >= st.rob_cap then 0 else h);
  st.rob_count <- st.rob_count - 1

(* k-th oldest occupant, 0 <= k < rob_count *)
let rob_get st k =
  let pos = st.rob_head + k in
  st.rob_buf.(if pos >= st.rob_cap then pos - st.rob_cap else pos)

(* ----- event wheel ----- *)

let schedule st node tick =
  node.n_complete <- tick;
  let slot = st.sc.events.(tick land (wheel_size - 1)) in
  let cap = Array.length slot.ev_nodes in
  if slot.ev_len = cap then begin
    let nodes = Array.make (2 * cap) null_node in
    let gens = Array.make (2 * cap) 0 in
    Array.blit slot.ev_nodes 0 nodes 0 cap;
    Array.blit slot.ev_gens 0 gens 0 cap;
    slot.ev_nodes <- nodes;
    slot.ev_gens <- gens
  end;
  slot.ev_nodes.(slot.ev_len) <- node;
  slot.ev_gens.(slot.ev_len) <- node.n_gen;
  slot.ev_len <- slot.ev_len + 1

(* ----- telemetry instrumentation points -----

   Every site is guarded by the sink option: with tracing off nothing is
   allocated and nothing beyond the [match] executes, so enabling the
   sink can never change simulated behavior - only record it. *)

let node_event_name (node : node) =
  if node.n_kind = k_copy then "copy"
  else if node.n_kind = k_slice then "slice"
  else if node.n_trace_idx >= 0 then Opcode.to_string node.n_uop.Uop.op
  else "?"

let emit st kind (node : node) ~a ~b =
  match st.sink with
  | None -> ()
  | Some sink ->
    if Sink.tracing sink then
      Sink.emit sink
        { Event.tick = st.now; kind; id = node.n_id;
          trace_idx = node.n_trace_idx;
          cluster = cluster_index node.n_cluster;
          name = node_event_name node; a; b }

let current_totals st =
  {
    Sample.committed = st.committed;
    steered_narrow = st.steered_narrow;
    copies = st.copies;
    split_uops = st.split_uops;
    steered_888 = st.steered_888;
    steered_br = st.steered_br;
    steered_cr = st.steered_cr;
    steered_ir = st.steered_ir;
    steered_other = st.steered_other;
    wide_default = st.wide_default;
    wide_demoted = st.wide_demoted;
    wpred_correct = st.wpred_correct;
    wpred_fatal = st.wpred_fatal;
    wpred_nonfatal = st.wpred_nonfatal;
    prefetch_copies = st.prefetch_copies;
    prefetch_useful = st.prefetch_useful;
    nready_w2n = st.nready_w2n;
    nready_n2w = st.nready_n2w;
    issued_total = st.issued_total;
  }

let take_sample st sink =
  Sink.sample sink ~tick:st.now ~iq_wide:st.iq.(0).iq_len
    ~iq_narrow:st.iq.(1).iq_len ~rob:st.rob_count (current_totals st)

(* ----- latency model ----- *)

let mem_time st (u : Uop.t) =
  let cfg = st.cfg in
  match cfg.Config.memory_model with
  | Config.Mem_trace_flags ->
    if u.Uop.dl0_miss then
      if u.Uop.ul1_miss then cfg.Config.mem_latency else cfg.Config.ul1_latency
    else cfg.Config.dl0_latency
  | Config.Mem_cache_sim ->
    (* the latency triple lives in [st.lat3] so a cache-model access does
       not build a tuple per uop *)
    Cache.Hierarchy.latency st.memory ~latencies:st.lat3 u.Uop.mem_addr

let exec_ticks st cluster (node : node) =
  let cfg = st.cfg in
  if node.n_kind = k_copy then 2 * cfg.Config.copy_latency
  else if node.n_kind = k_slice then 1
  else begin
    let u = node.n_uop in
    let base = Opcode.latency u.Uop.op in
    match cluster with
    | Config.Wide ->
      if u.Uop.op = Opcode.Load then (2 * base) + (2 * mem_time st u)
      else 2 * base
    | Config.Narrow ->
      (* the 8-bit backend is clocked 2x: one slow-cycle op takes one tick;
         memory hierarchy time is absolute and unchanged *)
      let alu = if cfg.Config.helper_fast_clock then base else 2 * base in
      if u.Uop.op = Opcode.Load then alu + (2 * mem_time st u) else alu
  end

(* ----- rename-time width knowledge ----- *)

let source_info st (operand : Uop.operand) =
  match operand with
  | Uop.Imm v ->
    Steer.src_info_bits
      ~narrow:(Width.is_narrow_bits ~bits:st.cfg.Config.narrow_bits v)
      ~known:true ~cluster_code:Steer.cluster_code_none
  | Uop.Reg r ->
    let v = st.rename.(Reg.to_index r) in
    if v == null_vstate then
      (* architectural value from before the trace window: a long-ready,
         conservatively wide register *)
      Steer.src_info_bits ~narrow:false ~known:true
        ~cluster_code:Steer.cluster_code_none
    else begin
      let cluster_code =
        match v.v_cluster with
        | Config.Wide -> Steer.cluster_code_wide
        | Config.Narrow -> Steer.cluster_code_narrow
      in
      if v.v_done then
        Steer.src_info_bits ~narrow:v.v_narrow ~known:true ~cluster_code
      else
        Steer.src_info_bits ~narrow:v.v_pred_narrow ~known:false ~cluster_code
    end

let eflags_index = Reg.to_index Reg.Eflags

let flags_in_narrow st () =
  let v = st.rename.(eflags_index) in
  v != null_vstate && v.v_cluster = Config.Narrow

let occupancy_lt st c limit =
  float_of_int st.iq.(cluster_index c).iq_len
  /. float_of_int st.cfg.Config.iq_size
  < limit

let ready_backlog st c = st.backlog.(cluster_index c)

let backlog_ewma_gt st c limit = st.backlog_ewma.(cluster_index c) > limit

let rob_occupancy_lt st limit =
  float_of_int st.rob_count /. float_of_int st.cfg.Config.rob_size < limit

let get_ctx st =
  match st.steer_ctx with Some ctx -> ctx | None -> assert false

(* ----- creation ----- *)

let create ?sink ?accounting cfg decide trace =
  ( match Config.validate cfg with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Pipeline: " ^ msg) );
  let counters = Counter.create () in
  let sc = Domain.DLS.get scratch_key in
  reset_scratch sc ~rob_size:cfg.Config.rob_size;
  let uarr = Trace.uops trace in
  let st =
    {
      cfg; trace; decide; sink;
      soa = Trace.soa trace;
      uarr;
      trace_len = Array.length uarr;
      acct = accounting;
      sc;
      steer_ctx = None;
      lat3 = (cfg.Config.dl0_latency, cfg.Config.ul1_latency, cfg.Config.mem_latency);
      stall_src = Sr_none;
      wflush_until = 0;
      preds = Bundle.create ~entries:cfg.Config.wpred_entries ~conf_bits:cfg.Config.conf_bits ();
      counters;
      fetch_idx = 0; fetch_resume = 0;
      (* sized for the worst realistic forced-wide set of a 30k-uop window
         so population never rehashes; lookups are also length-guarded in
         the frontend *)
      force_wide = Hashtbl.create 256;
      rename = sc.rename;
      iq =
        [| { iq_sent = sc.sent0; iq_len = 0 };
           { iq_sent = sc.sent1; iq_len = 0 } |];
      rob_buf = sc.rob_buf;
      rob_cap = Array.length sc.rob_buf;
      rob_head = 0;
      rob_count = 0;
      mob_count = 0;
      backlog = [| 0; 0 |];
      backlog_ewma = [| 0.; 0. |];
      memory = Cache.Hierarchy.create ();
      gshare = Branch_predictor.create ();
      tcache = Trace_cache.create ();
      regfile =
        Regfile.create ~wide_regs:cfg.Config.wide_regs
          ~narrow_regs:cfg.Config.narrow_regs ();
      c_tick = Counter.cell counters "tick";
      c_cycle_wide = Counter.cell counters "cycle_wide";
      c_cycle_narrow = Counter.cell counters "cycle_narrow";
      c_issue =
        [| Counter.cell counters "issue_wide"; Counter.cell counters "issue_narrow" |];
      c_regread =
        [| Counter.cell counters "regread_wide";
           Counter.cell counters "regread_narrow" |];
      c_committed = Counter.cell counters "committed";
      c_copy_dispatched = Counter.lcell counters "copy_dispatched";
      c_split_dispatched = Counter.lcell counters "split_dispatched";
      c_dispatch =
        [| Counter.lcell counters "dispatch_wide";
           Counter.lcell counters "dispatch_narrow" |];
      c_wpred_lookup = Counter.lcell counters "wpred_lookup";
      c_wpred_update = Counter.lcell counters "wpred_update";
      c_tc_miss = Counter.lcell counters "tc_miss";
      c_copy_completed = Counter.lcell counters "copy_completed";
      c_regwrite =
        [| Counter.lcell counters "regwrite_wide";
           Counter.lcell counters "regwrite_narrow" |];
      c_alu =
        [| Counter.lcell counters "alu_wide"; Counter.lcell counters "alu_narrow" |];
      c_mul_wide = Counter.lcell counters "mul_wide";
      c_agu =
        [| Counter.lcell counters "agu_wide"; Counter.lcell counters "agu_narrow" |];
      c_fpu_wide = Counter.lcell counters "fpu_wide";
      c_mem_dl0 = Counter.lcell counters "mem_dl0";
      c_mem_ul1 = Counter.lcell counters "mem_ul1";
      c_mem_main = Counter.lcell counters "mem_main";
      c_lr_replicated = Counter.lcell counters "lr_replicated";
      c_width_flush = Counter.lcell counters "width_flush";
      c_replay = Counter.lcell counters "replay";
      next_node_id = 0;
      now = 0;
      iss_issued = 0; iss_ready = 0;
      dis_demand_w = 0; dis_demand_n = 0;
      rsteer_n = 0;
      split_prev = null_vstate;
      committed = 0; copies = 0; steered_narrow = 0; split_uops = 0;
      steered_888 = 0; steered_br = 0; steered_cr = 0; steered_ir = 0;
      steered_other = 0; wide_default = 0; wide_demoted = 0;
      wpred_correct = 0; wpred_fatal = 0; wpred_nonfatal = 0;
      prefetch_copies = 0; prefetch_useful = 0;
      nready_w2n = 0; nready_n2w = 0; issued_total = 0;
    }
  in
  (* the steering context is one record of closures over [st], built once
     per run; every per-uop query through it returns an immediate *)
  st.steer_ctx <-
    Some
      {
        Steer.cfg = st.cfg;
        preds = st.preds;
        source_info = source_info st;
        flags_in_narrow = flags_in_narrow st;
        occupancy_lt = occupancy_lt st;
        ready_backlog = ready_backlog st;
        backlog_ewma_gt = backlog_ewma_gt st;
        rob_occupancy_lt = rob_occupancy_lt st;
      };
  st

(* ----- dispatch helpers ----- *)

(* Register dependences of the uop at [trace_idx], read straight off the
   SoA source columns into the dispatch scratch (value, epoch) arrays —
   the seed built a [(vstate * int) list] per uop here. *)
let collect_reg_deps st trace_idx =
  let sc = st.sc in
  let soa = st.soa in
  let lo = Uop_soa.src_base soa trace_idx in
  let ns = Uop_soa.nsrcs soa trace_idx in
  sc.dp_n <- 0;
  ensure_dp_cap sc ns;
  for j = lo to lo + ns - 1 do
    let r = Uop_soa.src_reg soa j in
    if r >= 0 then begin
      let v = st.rename.(r) in
      if v != null_vstate then begin
        sc.dp_v.(sc.dp_n) <- v;
        sc.dp_e.(sc.dp_n) <- v.v_epoch;
        sc.dp_n <- sc.dp_n + 1
      end
    end
  done

let enqueue_iq st cluster node =
  node.n_disp_tick <- st.now;
  iq_append st.iq.(cluster_index cluster) node;
  emit st Event.Dispatch node ~a:0 ~b:0

let iq_free st cluster =
  st.cfg.Config.iq_size - st.iq.(cluster_index cluster).iq_len

(* Mark the scratch dependences that need a copy before they are usable
   in [cluster] (a value produced in the other cluster needs no copy when
   one is already in flight, already delivered, or when LR will replicate
   it), and tally the (wide, narrow) issue-queue slots those copies will
   occupy into [dis_demand_w/n] — copies dispatch into the producing
   value's cluster. *)
let mark_copies_needed st ~cluster ~no_copies =
  let sc = st.sc in
  let ci = cluster_index cluster in
  st.dis_demand_w <- 0;
  st.dis_demand_n <- 0;
  for k = 0 to sc.dp_n - 1 do
    let v = sc.dp_v.(k) in
    let need =
      (not no_copies)
      && v.v_cluster <> cluster
      && v_avail v ci = never
      && (not (v_copy_inflight v ci))
      && not v.v_lr
    in
    sc.dp_need.(k) <- need;
    if need then
      match v.v_cluster with
      | Config.Wide -> st.dis_demand_w <- st.dis_demand_w + 1
      | Config.Narrow -> st.dis_demand_n <- st.dis_demand_n + 1
  done

let make_copy st ~(cv : vstate) ~target ~prefetch ~publishes =
  let source_cluster = cv.v_cluster in
  let ti = cluster_index target in
  let node = alloc_node st in
  node.n_id <- fresh_node_id st;
  node.n_kind <- k_copy;
  node.n_cv <- cv;
  node.n_copy_target <- ti;
  node.n_copy_epoch <- cv.v_epoch;
  node.n_copy_publishes <- publishes;
  node.n_cluster <- source_cluster;
  ensure_node_dep_cap node 1;
  node.n_dep_v.(0) <- cv;
  node.n_dep_e.(0) <- cv.v_epoch;
  node.n_ndeps <- 1;
  set_v_copy_inflight cv ti true;
  if prefetch then begin
    set_v_prefetched cv ti true;
    st.prefetch_copies <- st.prefetch_copies + 1
  end
  else cv.v_demand_copied <- true;
  st.copies <- st.copies + 1;
  Counter.lincr st.c_copy_dispatched;
  enqueue_iq st source_cluster node

(* Train the CP predictor with the dying value's copy history on a
   rename-table overwrite. (The seed also kept an undo log here; nothing
   ever consumed it, so it is gone.) *)
let rename_write st reg (v : vstate) =
  let i = Reg.to_index reg in
  let prev = st.rename.(i) in
  if prev != null_vstate && st.cfg.Config.scheme.Config.cp then
    Copy_predictor.update st.preds.Bundle.copy prev.v_pc
      ~copied:prev.v_demand_copied;
  st.rename.(i) <- v

(* Credit a consumed prefetch, once per (value, cluster), over the
   scratch dependences. *)
let credit_prefetch_deps st cluster =
  let i = cluster_index cluster in
  let sc = st.sc in
  for k = 0 to sc.dp_n - 1 do
    let v = sc.dp_v.(k) in
    if v_prefetched v i && (not (v_prefetch_used v i)) && v.v_cluster <> cluster
    then begin
      set_v_prefetch_used v i true;
      st.prefetch_useful <- st.prefetch_useful + 1
    end
  done

exception Dispatch_stall

(* ----- dispatch ----- *)

let dispatch_split st (u : Uop.t) ~trace_idx ~pred_narrow =
  let cfg = st.cfg in
  let sc = st.sc in
  let slices = 4 in
  let produces_value = Uop.has_dest u || Uop.writes_flags u in
  let result_copies = if Uop.has_dest u then slices else 0 in
  (* the byte lanes read their sources as 8-bit slices through the same
     cross-cluster byte paths the CR tag scheme uses, so no source copies
     are charged - only queue slots, issue slots and the chained latency *)
  if st.rob_count + slices > cfg.Config.rob_size then begin
    st.stall_src <- Sr_rob;
    raise Dispatch_stall
  end;
  if iq_free st Config.Narrow < slices + result_copies then begin
    st.stall_src <- Sr_iq;
    raise Dispatch_stall
  end;
  if produces_value && Regfile.free_count st.regfile Config.Narrow < slices then begin
    st.stall_src <- Sr_regfile;
    raise Dispatch_stall
  end;
  credit_prefetch_deps st Config.Narrow;
  let dest =
    if produces_value then
      alloc_vstate st ~pc:u.Uop.pc
        ~narrow:(Width.is_narrow_bits ~bits:cfg.Config.narrow_bits u.Uop.result)
        ~pred_narrow ~cluster:Config.Narrow
    else null_vstate
  in
  (* carry-rippling ops chain lane k+1 on lane k's carry-out; bitwise,
     move and store lanes are independent byte operations *)
  let ripples =
    match u.Uop.op with
    | Opcode.Add | Opcode.Sub | Opcode.Cmp -> true
    | Opcode.And | Opcode.Or | Opcode.Xor | Opcode.Mov | Opcode.Store
    | Opcode.Shl | Opcode.Shr | Opcode.Lea | Opcode.Mul | Opcode.Div
    | Opcode.Load | Opcode.Branch_cond | Opcode.Branch_uncond
    | Opcode.Fp_add | Opcode.Fp_mul | Opcode.Fp_div | Opcode.Copy
    | Opcode.Nop -> false
  in
  st.split_prev <- null_vstate;
  for k = 0 to slices - 1 do
    let final = k = slices - 1 in
    let node = alloc_node st in
    node.n_id <- fresh_node_id st;
    node.n_trace_idx <- trace_idx;
    node.n_uop <- u;
    node.n_kind <- k_slice;
    node.n_slice_final <- final;
    node.n_cluster <- Config.Narrow;
    let chain = if ripples then st.split_prev else null_vstate in
    let extra = if chain != null_vstate then 1 else 0 in
    ensure_node_dep_cap node (sc.dp_n + extra);
    if extra = 1 then begin
      node.n_dep_v.(0) <- chain;
      node.n_dep_e.(0) <- chain.v_epoch
    end;
    for j = 0 to sc.dp_n - 1 do
      node.n_dep_v.(extra + j) <- sc.dp_v.(j);
      node.n_dep_e.(extra + j) <- sc.dp_e.(j)
    done;
    node.n_ndeps <- sc.dp_n + extra;
    let slice_dest =
      if final then dest
      else
        alloc_vstate st ~pc:u.Uop.pc ~narrow:true ~pred_narrow:true
          ~cluster:Config.Narrow
    in
    node.n_dest <- slice_dest;
    node.n_reason <- r_ir;
    node.n_remote_reads <- true;
    if not final then st.split_prev <- slice_dest;
    if slice_dest != null_vstate then
      if Regfile.allocate st.regfile Config.Narrow then node.n_alloc <- 1;
    enqueue_iq st Config.Narrow node;
    rob_add st node
  done;
  st.split_prev <- null_vstate;
  if dest != null_vstate then begin
    ( match u.Uop.dst with
    | Some reg -> rename_write st reg dest
    | None -> () );
    if Uop.writes_flags u then rename_write st Reg.Eflags dest;
    (* publish the result to the wide cluster as a burst of byte copies;
       only the last one makes the value visible there (§3.7). A
       replicated register file publishes through its write ports
       instead. *)
    if Uop.has_dest u && not cfg.Config.replicated_regfile then
      for k = 0 to slices - 1 do
        make_copy st ~cv:dest ~target:Config.Wide ~prefetch:false
          ~publishes:(k = slices - 1)
      done
  end;
  Counter.lincr st.c_split_dispatched

let dispatch_steered st (u : Uop.t) ~trace_idx ~pred_narrow ~pred_confident
    ~cluster ~reason =
  let cfg = st.cfg in
  let scheme = cfg.Config.scheme in
  let sc = st.sc in
  let produces_value = Uop.has_dest u || Uop.writes_flags u in
  let remote_reads = reason = r_cr in
  mark_copies_needed st ~cluster
    ~no_copies:(remote_reads || cfg.Config.replicated_regfile);
  let ci = cluster_index cluster in
  let own_w = 1 - ci and own_n = ci in
  if st.rob_count >= cfg.Config.rob_size then begin
    st.stall_src <- Sr_rob;
    raise Dispatch_stall
  end;
  if iq_free st Config.Wide < st.dis_demand_w + own_w then begin
    st.stall_src <- Sr_iq;
    raise Dispatch_stall
  end;
  if iq_free st Config.Narrow < st.dis_demand_n + own_n then begin
    st.stall_src <- Sr_iq;
    raise Dispatch_stall
  end;
  if produces_value && Regfile.free_count st.regfile cluster = 0 then begin
    st.stall_src <- Sr_regfile;
    raise Dispatch_stall
  end;
  let is_mem = u.Uop.op = Opcode.Load || u.Uop.op = Opcode.Store in
  if is_mem then begin
    if st.mob_count >= cfg.Config.mob_size then begin
      st.stall_src <- Sr_mob;
      raise Dispatch_stall
    end;
    st.mob_count <- st.mob_count + 1
  end;
  for k = 0 to sc.dp_n - 1 do
    if sc.dp_need.(k) then
      make_copy st ~cv:sc.dp_v.(k) ~target:cluster ~prefetch:false
        ~publishes:true
  done;
  credit_prefetch_deps st cluster;
  let dest =
    if produces_value then
      alloc_vstate st ~pc:u.Uop.pc
        ~narrow:(Width.is_narrow_bits ~bits:cfg.Config.narrow_bits u.Uop.result)
        ~pred_narrow ~cluster
    else null_vstate
  in
  let lr_replicate =
    scheme.Config.lr && u.Uop.op = Opcode.Load && pred_narrow
    && ((not cfg.Config.confidence_gate) || pred_confident)
  in
  (* resolve the direction prediction in program order, here at rename *)
  let br_mispredicted =
    if u.Uop.op <> Opcode.Branch_cond then false
    else
      match cfg.Config.branch_model with
      | Config.Br_trace_flags -> u.Uop.branch_mispredicted
      | Config.Br_gshare ->
        Branch_predictor.update st.gshare u.Uop.pc ~taken:u.Uop.taken
  in
  if dest != null_vstate then begin
    dest.v_lr <- lr_replicate;
    dest.v_from_load <- u.Uop.op = Opcode.Load
  end;
  let node = alloc_node st in
  node.n_id <- fresh_node_id st;
  node.n_trace_idx <- trace_idx;
  node.n_uop <- u;
  node.n_cluster <- cluster;
  ensure_node_dep_cap node sc.dp_n;
  for j = 0 to sc.dp_n - 1 do
    node.n_dep_v.(j) <- sc.dp_v.(j);
    node.n_dep_e.(j) <- sc.dp_e.(j)
  done;
  node.n_ndeps <- sc.dp_n;
  node.n_dest <- dest;
  node.n_reason <- reason;
  node.n_is_mem <- is_mem;
  node.n_lr_replicate <- lr_replicate;
  node.n_br_mispredicted <- br_mispredicted;
  node.n_remote_reads <- remote_reads;
  if dest != null_vstate then begin
    if Regfile.allocate st.regfile cluster then node.n_alloc <- ci;
    ( match u.Uop.dst with
    | Some reg -> rename_write st reg dest
    | None -> () );
    if Uop.writes_flags u then rename_write st Reg.Eflags dest
  end;
  enqueue_iq st cluster node;
  rob_add st node;
  (* CP: producer-side copy prefetching (§3.6). Narrow producers prefetch
     predicted copies to the wide cluster; wide producers of predicted
     narrow values prefetch toward the helper. *)
  if dest != null_vstate && scheme.Config.cp && Uop.has_dest u then begin
    let cp_hit = Copy_predictor.predict st.preds.Bundle.copy u.Uop.pc in
    if cluster = Config.Narrow && cp_hit && iq_free st Config.Narrow > 0 then
      make_copy st ~cv:dest ~target:Config.Wide ~prefetch:true ~publishes:true
    else if
      cluster = Config.Wide && cp_hit && pred_narrow && pred_confident
      && iq_free st Config.Wide > 0
    then make_copy st ~cv:dest ~target:Config.Narrow ~prefetch:true ~publishes:true
  end;
  Counter.lincr st.c_dispatch.(ci)

let dispatch_uop st ~forced_wide (u : Uop.t) ~trace_idx =
  let scheme = st.cfg.Config.scheme in
  let pred_narrow = Width_predictor.predict_narrow st.preds.Bundle.width u.Uop.pc in
  let pred_confident =
    Width_predictor.predict_confident st.preds.Bundle.width u.Uop.pc
  in
  Counter.lincr st.c_wpred_lookup;
  let decision =
    if forced_wide || not scheme.Config.helper then Steer.steer_wide
    else st.decide (get_ctx st) u
  in
  collect_reg_deps st trace_idx;
  match decision with
  | Steer.Split -> dispatch_split st u ~trace_idx ~pred_narrow
  | Steer.Steer cluster ->
    dispatch_steered st u ~trace_idx ~pred_narrow ~pred_confident ~cluster
      ~reason:r_none
  | Steer.Steer_narrow reason ->
    dispatch_steered st u ~trace_idx ~pred_narrow ~pred_confident
      ~cluster:Config.Narrow ~reason:(reason_code reason)

exception Fetch_miss

let rec frontend_loop st budget =
  if budget > 0 && st.fetch_idx < st.trace_len then begin
    let u = st.uarr.(st.fetch_idx) in
    ( match st.cfg.Config.frontend_model with
    | Config.Fe_ideal -> ()
    | Config.Fe_trace_cache ->
      if not (Trace_cache.lookup st.tcache u.Uop.pc) then begin
        (* build the trace line from the UL1 instruction stream *)
        st.fetch_resume <- st.now + (2 * st.cfg.Config.ul1_latency);
        Counter.lincr st.c_tc_miss;
        raise Fetch_miss
      end );
    let forced_wide =
      Hashtbl.length st.force_wide > 0 && Hashtbl.mem st.force_wide st.fetch_idx
    in
    dispatch_uop st ~forced_wide u ~trace_idx:st.fetch_idx;
    st.fetch_idx <- st.fetch_idx + 1;
    frontend_loop st (budget - 1)
  end

let frontend st =
  if st.now >= st.fetch_resume then begin
    try frontend_loop st st.cfg.Config.decode_width
    with Dispatch_stall | Fetch_miss -> ()
  end

(* ----- issue ----- *)

(* Readiness is availability alone. A squashed-and-resteered producer
   resets its value (epoch bump kills in-flight copies, avail returns to
   never), and every consumer - resteered or not - then waits for the
   re-execution to publish the value again. *)
let rec deps_avail_from st i (node : node) k =
  k >= node.n_ndeps
  || (v_avail node.n_dep_v.(k) i <= st.now && deps_avail_from st i node (k + 1))

let rec deps_avail_remote_from st (node : node) k =
  k >= node.n_ndeps
  || ((let v = node.n_dep_v.(k) in v.v_avail0 <= st.now || v.v_avail1 <= st.now)
     && deps_avail_remote_from st node (k + 1))

let deps_ready st cluster (node : node) =
  if node.n_remote_reads then deps_avail_remote_from st node 0
  else begin
    let i =
      if node.n_kind = k_copy then cluster_index node.n_cv.v_cluster
      else cluster_index cluster
    in
    deps_avail_from st i node 0
  end

let dead_copy (node : node) =
  node.n_kind = k_copy && node.n_cv.v_epoch <> node.n_copy_epoch

let rec issue_walk st cluster q width c_regread c_issue s (node : node) issued
    ready =
  if node == s then begin
    st.iss_issued <- issued;
    st.iss_ready <- ready
  end
  else begin
    let next = node.n_next in
    if node.n_squashed || dead_copy node then begin
      iq_unlink q node;
      issue_walk st cluster q width c_regread c_issue s next issued ready
    end
    else if deps_ready st cluster node then begin
      if issued < width then begin
        node.n_issued <- true;
        node.n_issue_tick <- st.now;
        emit st Event.Issue node ~a:node.n_disp_tick ~b:0;
        st.issued_total <- st.issued_total + 1;
        c_regread := !c_regread + node.n_ndeps;
        incr c_issue;
        iq_unlink q node;
        schedule st node (st.now + exec_ticks st cluster node);
        issue_walk st cluster q width c_regread c_issue s next (issued + 1) ready
      end
      else
        issue_walk st cluster q width c_regread c_issue s next issued (ready + 1)
    end
    else issue_walk st cluster q width c_regread c_issue s next issued ready
  end

(* One issue round; results land in [iss_issued] (slots that did work)
   and [iss_ready] (the NREADY leftover). *)
let issue_cluster st cluster =
  let i = cluster_index cluster in
  let q = st.iq.(i) in
  issue_walk st cluster q st.cfg.Config.issue_width st.c_regread.(i)
    st.c_issue.(i) q.iq_sent q.iq_sent.n_next 0 0;
  st.backlog.(i) <- st.iss_ready;
  st.backlog_ewma.(i) <-
    (0.9 *. st.backlog_ewma.(i)) +. (0.1 *. float_of_int st.iss_ready)

(* Ready-but-stalled wide uops the helper's integer-only 8-bit units could
   in principle have hosted — the NREADY eligibility filter. *)
let rec nready_walk st s (node : node) acc =
  if node == s then acc
  else begin
    let capable =
      node.n_trace_idx < 0
      ||
      match Opcode.exec_class node.n_uop.Uop.op with
      | Opcode.Int_alu | Opcode.Mem | Opcode.Ctrl -> true
      | Opcode.Int_mul | Opcode.Fp -> false
    in
    let acc =
      if
        (not node.n_squashed) && (not node.n_issued) && capable
        && deps_ready st Config.Wide node
      then acc + 1
      else acc
    in
    nready_walk st s node.n_next acc
  end

let count_ready_narrow_capable st =
  let s = st.iq.(0).iq_sent in
  nready_walk st s s.n_next 0

(* ----- cycle accounting (top-down slot attribution) ----- *)

(* Why a blocked occupant cannot issue: scan its unavailable deps with
   the same availability rule as [deps_ready]. Memory wins over copy
   wins over plain operands, so one blocked node maps to exactly one
   category. *)
let rec blocked_scan st i remote (node : node) k mem cop =
  if k >= node.n_ndeps then
    if mem then Accounting.Memory
    else if cop then Accounting.Wait_copy
    else Accounting.Wait_operands
  else begin
    let v = node.n_dep_v.(k) in
    let avail =
      if remote then v.v_avail0 <= st.now || v.v_avail1 <= st.now
      else v_avail v i <= st.now
    in
    if avail then blocked_scan st i remote node (k + 1) mem cop
    else begin
      let mem_dep = v.v_from_load && not v.v_done in
      blocked_scan st i remote node (k + 1) (mem || mem_dep)
        (cop || ((not mem_dep) && (v.v_done || v_copy_inflight v i)))
    end
  end

let blocked_reason st cluster (node : node) =
  if node.n_kind = k_copy then Accounting.Wait_copy
  else
    blocked_scan st (cluster_index cluster) node.n_remote_reads node 0 false
      false

(* Attribution of a slot no queue occupant can explain: the machine is
   draining a width flush, starved by the frontend, dispatch-blocked on
   a full structure, or genuinely idle. *)
let empty_reason st ~narrow =
  if st.now < st.wflush_until then
    if narrow then Accounting.Drained else Accounting.Width_recovery
  else if st.now < st.fetch_resume then Accounting.Frontend
  else
    match st.stall_src with
    | Sr_none -> Accounting.Idle
    | Sr_mob -> Accounting.Memory
    | Sr_rob | Sr_iq | Sr_regfile -> Accounting.Dispatch

(* One issue round of [cluster]: [issued] slots did work; the idle rest
   is claimed first by blocked queue occupants (memory, then copy, then
   operands), and any slots beyond the occupant count by the
   empty-stage reason. Adds exactly [issue_width] slots and one round,
   so the partition invariant holds by construction. *)
let account_issue_round st a cluster ~issued =
  let lane = cluster_index cluster in
  let width = st.cfg.Config.issue_width in
  if issued > 0 then Accounting.add a ~lane Accounting.Issued issued;
  let idle = width - issued in
  if idle > 0 then begin
    (* after the issue walk the queue holds only blocked occupants:
       issued, squashed and dead-copy nodes were unlinked, and idle > 0
       means no ready node was left waiting for a slot *)
    let mem = ref 0 and cop = ref 0 and opr = ref 0 in
    let q = st.iq.(lane) in
    let s = q.iq_sent in
    let cur = ref s.n_next in
    while !cur != s do
      let node = !cur in
      ( match blocked_reason st cluster node with
      | Accounting.Memory -> incr mem
      | Accounting.Wait_copy -> incr cop
      | _ -> incr opr );
      cur := node.n_next
    done;
    let left = ref idle in
    let take counter cat =
      let n = min !left counter in
      if n > 0 then begin
        Accounting.add a ~lane cat n;
        left := !left - n
      end
    in
    take !mem Accounting.Memory;
    take !cop Accounting.Wait_copy;
    take !opr Accounting.Wait_operands;
    if !left > 0 then
      Accounting.add a ~lane
        (empty_reason st ~narrow:(cluster = Config.Narrow))
        !left
  end;
  Accounting.round a ~lane

(* One commit round: [committed] slots retired; idle slots are all
   blamed on the ROB head (it blocks everything younger), or on the
   empty-stage reason when the ROB is empty. *)
let account_commit_round st a ~committed =
  let lane = Accounting.lane_commit in
  if committed > 0 then Accounting.add a ~lane Accounting.Issued committed;
  let idle = st.cfg.Config.commit_width - committed in
  if idle > 0 then begin
    let cat =
      if st.rob_count = 0 then empty_reason st ~narrow:false
      else begin
        let head = rob_peek st in
        if not head.n_issued then blocked_reason st head.n_cluster head
        else if head.n_is_mem then Accounting.Memory
        else Accounting.Wait_operands
      end
    in
    Accounting.add a ~lane cat idle
  end;
  Accounting.round a ~lane

(* ----- width misprediction recovery ----- *)

let flush_keep (node : node) = (not node.n_mark) && not (dead_copy node)

(* drop dependences on values that no longer exist, in place *)
let rec compact_live_deps (node : node) k w =
  if k >= node.n_ndeps then node.n_ndeps <- w
  else begin
    let v = node.n_dep_v.(k) in
    let e = node.n_dep_e.(k) in
    if v.v_epoch = e then begin
      node.n_dep_v.(w) <- v;
      node.n_dep_e.(w) <- e;
      compact_live_deps node (k + 1) (w + 1)
    end
    else compact_live_deps node (k + 1) w
  end

(* Fatal width misprediction recovery (§3.2): squash the offender and
   every younger uop in the NARROW backend and resteer them into the wide
   backend. Older work, and younger wide-backend work, is untouched — the
   resteered uops keep their ROB slots, so no rename rollback or refetch is
   needed. Their destination values are re-produced in the wide cluster:
   wide consumers then read them directly, and in-flight copies of the dead
   incarnations are killed by the value-epoch bump. No narrow-backend
   consumer of a resteered value can survive the squash, because it would
   itself be younger and in the narrow backend. *)
let flush_from st (offender : node) =
  let cfg = st.cfg in
  let sc = st.sc in
  st.rsteer_n <- 0;
  for k = 0 to st.rob_count - 1 do
    let node = rob_get st k in
    if
      node.n_id >= offender.n_id
      && node.n_cluster = Config.Narrow
      && node.n_kind <> k_copy
    then begin
      ensure_resteer_cap sc (st.rsteer_n + 1);
      sc.resteer.(st.rsteer_n) <- node;
      st.rsteer_n <- st.rsteer_n + 1
    end
  done;
  let n_rest = st.rsteer_n in
  (* purge the narrow issue queue of the squashed incarnations, and of
     copies whose value is about to die *)
  for k = 0 to n_rest - 1 do
    let node = sc.resteer.(k) in
    emit st Event.Squash node ~a:0 ~b:0;
    node.n_gen <- node.n_gen + 1;
    node.n_issued <- false;
    (* a completed memory uop re-enters the memory order buffer *)
    if node.n_is_mem && node.n_done then st.mob_count <- st.mob_count + 1;
    (* the destination register moves to the wide file; tolerate a full
       pool (resteer cannot stall) by keeping the old entry *)
    if node.n_alloc = 1 then
      if Regfile.allocate st.regfile Config.Wide then begin
        Regfile.release st.regfile Config.Narrow;
        node.n_alloc <- 0
      end;
    node.n_done <- false;
    node.n_cluster <- Config.Wide;
    node.n_remote_reads <- false;
    let dest = node.n_dest in
    if dest != null_vstate then begin
      reset_vstate dest;
      dest.v_cluster <- Config.Wide
    end
  done;
  for k = 0 to n_rest - 1 do
    sc.resteer.(k).n_mark <- true
  done;
  iq_filter_inplace st.iq.(0) flush_keep;
  iq_filter_inplace st.iq.(1) flush_keep;
  for k = 0 to n_rest - 1 do
    sc.resteer.(k).n_mark <- false
  done;
  (* collapse resteered IR slice groups: the final slice becomes the whole
     wide uop again, its three byte-lane companions become no-ops *)
  for k = 0 to n_rest - 1 do
    let node = sc.resteer.(k) in
    if node.n_kind = k_slice then begin
      if node.n_slice_final then begin
        node.n_kind <- k_normal;
        (* n_reason keeps Rir: the reason only matters for the fatal
           check of NARROW-cluster uops (Rir is never fatal there), and
           commit uses it to attribute this uop as demoted-to-wide *)
        (* drop the intra-group chain dependences: re-deriving register
           dependences from the rename state captured at dispatch is not
           possible, so keep only deps on values that still exist *)
        compact_live_deps node 0 0
      end
      else begin
        node.n_slice_final <- false;
        node.n_done <- true
      end
    end
  done;
  (* re-dispatch into the wide backend (a transient resteer-buffer overflow
     of the issue queue is allowed), creating the copies the new cluster
     placement needs *)
  for k = 0 to n_rest - 1 do
    let node = sc.resteer.(k) in
    if not node.n_done then begin
      if not cfg.Config.replicated_regfile then
        for j = 0 to node.n_ndeps - 1 do
          let v = node.n_dep_v.(j) in
          if
            v.v_epoch = node.n_dep_e.(j)
            && v.v_cluster = Config.Narrow
            && v.v_avail0 = never
            && not v.v_copy_inflight0
          then
            make_copy st ~cv:v ~target:Config.Wide ~prefetch:false
              ~publishes:true
        done;
      node.n_disp_tick <- st.now;
      iq_append st.iq.(0) node
    end
  done;
  st.fetch_resume <- max st.fetch_resume (st.now + (2 * cfg.Config.width_flush_penalty));
  st.wflush_until <- max st.wflush_until (st.now + (2 * cfg.Config.width_flush_penalty));
  emit st Event.Flush offender ~a:n_rest ~b:0;
  Counter.lincr st.c_width_flush

(* ICS'05-style replay: only the offending uop re-executes, in the wide
   cluster; consumers simply wait for the value to be re-produced. Much
   cheaper than the flushing scheme - the trade-off section 4 discusses. *)
let replay st (node : node) =
  emit st Event.Replay node ~a:0 ~b:0;
  node.n_gen <- node.n_gen + 1;
  node.n_issued <- false;
  if node.n_is_mem then st.mob_count <- st.mob_count + 1;
  node.n_done <- false;
  node.n_cluster <- Config.Wide;
  node.n_remote_reads <- false;
  let dest = node.n_dest in
  if dest != null_vstate then begin
    reset_vstate dest;
    dest.v_cluster <- Config.Wide
  end;
  if node.n_alloc = 1 then
    if Regfile.allocate st.regfile Config.Wide then begin
      Regfile.release st.regfile Config.Narrow;
      node.n_alloc <- 0
    end;
  (* re-executing in the wide cluster needs the sources there; without a
     replicated file some may live only in the narrow one *)
  if not st.cfg.Config.replicated_regfile then
    for j = 0 to node.n_ndeps - 1 do
      let v = node.n_dep_v.(j) in
      if
        v.v_epoch = node.n_dep_e.(j)
        && v.v_cluster = Config.Narrow
        && v.v_avail0 = never
        && not v.v_copy_inflight0
      then make_copy st ~cv:v ~target:Config.Wide ~prefetch:false ~publishes:true
    done;
  node.n_disp_tick <- st.now;
  iq_append st.iq.(0) node;
  (* without a replicated register file the re-produced value lands in the
     wide file only, but narrow consumers dispatched before the replay were
     wired copy-free (the value used to live beside them) - send it back *)
  if dest != null_vstate && not st.cfg.Config.replicated_regfile then
    make_copy st ~cv:dest ~target:Config.Narrow ~prefetch:false ~publishes:true;
  Counter.lincr st.c_replay

(* Did this narrow-steered uop actually need the wide datapath? The
   ground-truth width checks read the SoA shape columns directly. *)
let narrow_execution_wrong st (node : node) =
  let bits = st.cfg.Config.narrow_bits in
  let idx = node.n_trace_idx in
  if idx < 0 then false
  else if node.n_reason = r_888 then
    not (Uop_soa.is_888_bits ~bits st.soa idx)
  else if node.n_reason = r_cr then begin
    if node.n_uop.Uop.op = Opcode.Load then
      (not (Uop_soa.carry_not_propagated_bits ~bits st.soa idx))
      || not (Width.is_narrow_bits ~bits node.n_uop.Uop.result)
    else not (Uop_soa.carry_not_propagated_bits ~bits st.soa idx)
  end
  else
    (* Rlive is proof-carried: the static bidirectional pass proved every
       bit above the narrow cut dead, so narrow execution is exact on all
       observable values even when the ground-truth values are wide — there
       is nothing for the dynamic check to verify. *)
    false

(* ----- writeback / completion ----- *)

let train_predictors st (u : Uop.t) idx =
  let bits = st.cfg.Config.narrow_bits in
  if Uop.has_dest u || Uop.writes_flags u then begin
    Width_predictor.update st.preds.Bundle.width u.Uop.pc
      ~narrow:(Width.is_narrow_bits ~bits u.Uop.result);
    Counter.lincr st.c_wpred_update
  end;
  if
    st.cfg.Config.scheme.Config.cr
    && Opcode.carry_eligible u.Uop.op
    && Uop_soa.nsrcs st.soa idx = 2
  then
    Carry_predictor.update st.preds.Bundle.carry u.Uop.pc
      ~carry_local:(Uop_soa.carry_not_propagated_bits ~bits st.soa idx)

let classify_prediction st (node : node) (u : Uop.t) ~fatal =
  if Uop.has_dest u || Uop.writes_flags u then begin
    let narrow = Width.is_narrow_bits ~bits:st.cfg.Config.narrow_bits u.Uop.result in
    let predicted =
      if node.n_dest != null_vstate then node.n_dest.v_pred_narrow else narrow
    in
    if fatal then st.wpred_fatal <- st.wpred_fatal + 1
    else if predicted = narrow then st.wpred_correct <- st.wpred_correct + 1
    else st.wpred_nonfatal <- st.wpred_nonfatal + 1
  end

let complete_copy st (node : node) =
  let cv = node.n_cv in
  if cv.v_epoch = node.n_copy_epoch then begin
    let i = node.n_copy_target in
    if node.n_copy_publishes then set_v_avail cv i (min (v_avail cv i) st.now);
    Counter.lincr st.c_copy_completed;
    Counter.lincr st.c_regwrite.(i)
  end

let complete_slice st (node : node) =
  let v = node.n_dest in
  if v != null_vstate then begin
    v.v_done <- true;
    v.v_avail1 <- st.now;
    if node.n_slice_final && st.cfg.Config.replicated_regfile then begin
      v.v_avail0 <- min v.v_avail0 (st.now + 2);
      Counter.lincr st.c_regwrite.(0)
    end
  end;
  if node.n_slice_final then begin
    classify_prediction st node node.n_uop ~fatal:false;
    train_predictors st node.n_uop node.n_trace_idx
  end;
  Counter.lincr st.c_alu.(1);
  Counter.lincr st.c_regwrite.(1)

let complete_normal st (node : node) =
  let u = node.n_uop in
  if node.n_is_mem then begin
    st.mob_count <- st.mob_count - 1;
    Counter.lincr
      ( if u.Uop.dl0_miss then
          if u.Uop.ul1_miss then st.c_mem_main else st.c_mem_ul1
        else st.c_mem_dl0 )
  end;
  let fatal = node.n_cluster = Config.Narrow && narrow_execution_wrong st node in
  classify_prediction st node u ~fatal;
  train_predictors st u node.n_trace_idx;
  if fatal then begin
    if st.cfg.Config.replay_recovery then replay st node
    else
      (* the offender is squashed together with everything younger *)
      flush_from st node
  end
  else begin
    let v = node.n_dest in
    let own = cluster_index node.n_cluster in
    if v != null_vstate then begin
      v.v_done <- true;
      set_v_avail v own st.now;
      (* ICS'05 register replication: the result is also written to the
         other cluster's file, one cycle later, with no copy uop *)
      if st.cfg.Config.replicated_regfile then begin
        let oth = 1 - own in
        set_v_avail v oth (min (v_avail v oth) (st.now + 2));
        Counter.lincr st.c_regwrite.(oth)
      end;
      (* LR (§3.4): the shared MOB fills both register files. The replica of
         an actually-wide value carries a truncated pattern; a narrow
         consumer that reads it discovers the width violation at its own
         execution and recovers through the ordinary flush path. *)
      if node.n_lr_replicate then begin
        let oth = 1 - own in
        set_v_avail v oth (st.now + 2);
        if v.v_narrow then Counter.lincr st.c_lr_replicated;
        Counter.lincr st.c_regwrite.(oth)
      end
    end;
    Counter.lincr st.c_regwrite.(own);
    ( match Opcode.exec_class u.Uop.op with
    | Opcode.Int_alu | Opcode.Ctrl -> Counter.lincr st.c_alu.(own)
    | Opcode.Int_mul -> Counter.lincr st.c_mul_wide
    | Opcode.Mem -> Counter.lincr st.c_agu.(own)
    | Opcode.Fp -> Counter.lincr st.c_fpu_wide );
    if node.n_br_mispredicted then
      st.fetch_resume <-
        max st.fetch_resume (st.now + (2 * st.cfg.Config.branch_penalty))
  end

let complete_node st (node : node) =
  if not node.n_squashed then begin
    node.n_done <- true;
    emit st Event.Writeback node ~a:node.n_disp_tick ~b:node.n_issue_tick;
    if node.n_kind = k_copy then complete_copy st node
    else if node.n_kind = k_slice then complete_slice st node
    else complete_normal st node
  end

let push_due sc node gen =
  let cap = Array.length sc.due_nodes in
  if sc.due_len = cap then begin
    let nodes = Array.make (2 * cap) null_node in
    let gens = Array.make (2 * cap) 0 in
    Array.blit sc.due_nodes 0 nodes 0 cap;
    Array.blit sc.due_gens 0 gens 0 cap;
    sc.due_nodes <- nodes;
    sc.due_gens <- gens
  end;
  sc.due_nodes.(sc.due_len) <- node;
  sc.due_gens.(sc.due_len) <- gen;
  sc.due_len <- sc.due_len + 1

(* Split this wheel slot into due-now (into the due batch) and kept
   future-wrap entries (compacted in place); returns the kept count. *)
let rec compact_slot sc slot now k kept =
  if k >= slot.ev_len then kept
  else begin
    let node = slot.ev_nodes.(k) in
    let gen = slot.ev_gens.(k) in
    let kept =
      if node.n_gen = gen then begin
        if node.n_complete = now then begin
          push_due sc node gen;
          kept
        end
        else begin
          slot.ev_nodes.(kept) <- node;
          slot.ev_gens.(kept) <- gen;
          kept + 1
        end
      end
      else kept
    in
    compact_slot sc slot now (k + 1) kept
  end

let rec sift_due sc j (node : node) gen =
  if j >= 0 && sc.due_nodes.(j).n_id > node.n_id then begin
    sc.due_nodes.(j + 1) <- sc.due_nodes.(j);
    sc.due_gens.(j + 1) <- sc.due_gens.(j);
    sift_due sc (j - 1) node gen
  end
  else begin
    sc.due_nodes.(j + 1) <- node;
    sc.due_gens.(j + 1) <- gen
  end

let process_completions st =
  let sc = st.sc in
  let slot = sc.events.(st.now land (wheel_size - 1)) in
  sc.due_len <- 0;
  let kept = compact_slot sc slot st.now 0 0 in
  for k = kept to slot.ev_len - 1 do
    slot.ev_nodes.(k) <- null_node
  done;
  slot.ev_len <- kept;
  (* oldest first: a fatal flush must squash younger completions sharing
     this tick. Insertion sort on the (tiny) due batch; ids are unique so
     the order is total and deterministic. *)
  for k = 1 to sc.due_len - 1 do
    sift_due sc (k - 1) sc.due_nodes.(k) sc.due_gens.(k)
  done;
  for k = 0 to sc.due_len - 1 do
    let node = sc.due_nodes.(k) in
    (* re-check the generation: a flush triggered by an older completion
       this same tick may have squashed-and-resteered this one *)
    if node.n_gen = sc.due_gens.(k) then complete_node st node
  done

(* ----- commit ----- *)

let rec commit_loop st budget =
  if budget <= 0 || st.rob_count = 0 then budget
  else begin
    let head = rob_peek st in
    if head.n_done && not head.n_squashed then begin
      rob_pop st;
      ( if head.n_alloc >= 0 then
          Regfile.release st.regfile
            (if head.n_alloc = 0 then Config.Wide else Config.Narrow) );
      ( if head.n_kind = k_normal then begin
          st.committed <- st.committed + 1;
          if head.n_cluster = Config.Narrow then begin
            st.steered_narrow <- st.steered_narrow + 1;
            let r = head.n_reason in
            (* r_live is the static oracle's dead-width variant of the 888
               rule; it shares the 888 attribution bucket so the sample
               schema stays fixed across schemes *)
            if r = r_888 || r = r_live then st.steered_888 <- st.steered_888 + 1
            else if r = r_br then st.steered_br <- st.steered_br + 1
            else if r = r_cr then st.steered_cr <- st.steered_cr + 1
            else if r = r_ir then st.steered_ir <- st.steered_ir + 1
            else st.steered_other <- st.steered_other + 1
          end
          else if
            (* a retained reason on a wide-cluster uop means recovery
               demoted it there after a narrow steering decision *)
            head.n_reason <> r_none
          then st.wide_demoted <- st.wide_demoted + 1
          else st.wide_default <- st.wide_default + 1
        end
        else if head.n_kind = k_slice then begin
          if head.n_slice_final then begin
            st.committed <- st.committed + 1;
            st.steered_narrow <- st.steered_narrow + 1;
            st.split_uops <- st.split_uops + 1;
            st.steered_ir <- st.steered_ir + 1
          end
        end
        else assert false (* copies never enter the ROB *) );
      incr st.c_committed;
      emit st Event.Commit head ~a:0 ~b:0;
      commit_loop st (budget - 1)
    end
    else budget
  end

(* Returns the number of commit slots used this round (for accounting). *)
let commit st =
  let width = st.cfg.Config.commit_width in
  width - commit_loop st width

(* ----- main loop ----- *)

let finished st = st.fetch_idx >= st.trace_len && st.rob_count = 0

let run ?(max_ticks = 200_000_000) ?sink ?accounting ~cfg ~decide ~scheme_name
    trace =
  let st = create ?sink ?accounting cfg decide trace in
  let helper = cfg.Config.scheme.Config.helper in
  let sample_every =
    match sink with Some s -> Sink.interval s | None -> 0
  in
  while not (finished st) do
    if st.now > max_ticks then
      failwith
        (Printf.sprintf "Pipeline.run: exceeded %d ticks at trace index %d"
           max_ticks st.fetch_idx);
    process_completions st;
    let even = st.now mod 2 = 0 in
    if even then begin
      let commit_used = commit st in
      ( match st.acct with
      | Some a -> account_commit_round st a ~committed:commit_used
      | None -> () );
      st.stall_src <- Sr_none;
      frontend st;
      issue_cluster st Config.Wide;
      let issued_w = st.iss_issued and leftover_w = st.iss_ready in
      ( match st.acct with
      | Some a -> account_issue_round st a Config.Wide ~issued:issued_w
      | None -> () );
      if helper then begin
        issue_cluster st Config.Narrow;
        let issued_n = st.iss_issued and leftover_n = st.iss_ready in
        ( match st.acct with
        | Some a -> account_issue_round st a Config.Narrow ~issued:issued_n
        | None -> () );
        (* NREADY (§3.7): ready uops stalled here while the other backend
           had idle slots this cycle *)
        let spare_n = cfg.Config.issue_width - issued_n in
        let spare_w = cfg.Config.issue_width - issued_w in
        if spare_n > 0 && leftover_w > 0 then begin
          let capable = count_ready_narrow_capable st in
          st.nready_w2n <- st.nready_w2n + min capable spare_n
        end;
        if spare_w > 0 && leftover_n > 0 then
          st.nready_n2w <- st.nready_n2w + min leftover_n spare_w
      end
    end
    else if helper && cfg.Config.helper_fast_clock then begin
      issue_cluster st Config.Narrow;
      match st.acct with
      | Some a -> account_issue_round st a Config.Narrow ~issued:st.iss_issued
      | None -> ()
    end;
    incr st.c_tick;
    if even then incr st.c_cycle_wide;
    if helper && (even || cfg.Config.helper_fast_clock) then
      incr st.c_cycle_narrow;
    if sample_every > 0 && st.now > 0 && st.now mod sample_every = 0 then begin
      ( match st.sink with
      | Some sink -> take_sample st sink
      | None -> () );
      match st.acct with
      | Some a -> Accounting.snapshot a ~tick:st.now
      | None -> ()
    end;
    st.now <- st.now + 1
  done;
  (* flush the tail interval so the series' column sums equal the final
     metrics even when the run length is not a multiple of the interval *)
  if sample_every > 0 then
    ( match st.sink with
    | Some sink -> take_sample st sink
    | None -> () );
  (* accounting flushes its tail even without a sampling sink, so a run
     with accounting but no interval series still gets one whole-run
     interval (stall-out CSV is never empty) *)
  ( match st.acct with
  | Some a -> Accounting.snapshot a ~tick:st.now
  | None -> () );
  {
    Metrics.name = trace.Trace.name;
    scheme_name;
    committed = st.committed;
    ticks = st.now;
    copies = st.copies;
    steered_narrow = st.steered_narrow;
    split_uops = st.split_uops;
    steered_888 = st.steered_888;
    steered_br = st.steered_br;
    steered_cr = st.steered_cr;
    steered_ir = st.steered_ir;
    steered_other = st.steered_other;
    wide_default = st.wide_default;
    wide_demoted = st.wide_demoted;
    wpred_correct = st.wpred_correct;
    wpred_fatal = st.wpred_fatal;
    wpred_nonfatal = st.wpred_nonfatal;
    prefetch_copies = st.prefetch_copies;
    prefetch_useful = st.prefetch_useful;
    nready_w2n = st.nready_w2n;
    nready_n2w = st.nready_n2w;
    issued_total = st.issued_total;
    static_narrow_bound = None;
    static_bidir_bound = None;
    stall =
      ( match st.acct with
      | Some a -> Some (Accounting.totals a)
      | None -> None );
    counters = st.counters;
  }
