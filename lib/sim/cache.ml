type t = {
  line_bits : int;
  tag_shift : int;  (* line_bits + log2 set_count *)
  set_count : int;
  way_count : int;
  tags : int array;  (* set-major: tags.(set * ways + way), -1 = invalid *)
  lru : int array;  (* same layout: larger = more recently used *)
  mutable clock : int;
  mutable hits : int;
  mutable misses : int;
}

let is_pow2 n = n > 0 && n land (n - 1) = 0

let log2 n =
  let rec go acc n = if n <= 1 then acc else go (acc + 1) (n lsr 1) in
  go 0 n

let create ?(line_bytes = 64) ~size_bytes ~ways () =
  if not (is_pow2 line_bytes && is_pow2 size_bytes && is_pow2 ways) then
    invalid_arg "Cache.create: sizes must be powers of two";
  if size_bytes < ways * line_bytes then
    invalid_arg "Cache.create: fewer lines than ways";
  let set_count = size_bytes / (ways * line_bytes) in
  {
    line_bits = log2 line_bytes;
    tag_shift = log2 line_bytes + log2 set_count;
    set_count;
    way_count = ways;
    tags = Array.make (set_count * ways) (-1);
    lru = Array.make (set_count * ways) 0;
    clock = 0;
    hits = 0;
    misses = 0;
  }

let sets t = t.set_count

let ways t = t.way_count

let line_bytes t = 1 lsl t.line_bits

(* The lookup internals avoid tuples, options and refs so a per-uop
   access under Mem_cache_sim / Fe_trace_cache allocates nothing. *)
let set_of t addr = (addr lsr t.line_bits) land (t.set_count - 1)

let tag_of t addr = addr lsr t.tag_shift

(* The hit way, or -1. *)
let find_way t set tag =
  let base = set * t.way_count in
  let rec scan w =
    if w = t.way_count then -1
    else if t.tags.(base + w) = tag then w
    else scan (w + 1)
  in
  scan 0

let touch t set way =
  t.clock <- t.clock + 1;
  t.lru.((set * t.way_count) + way) <- t.clock

let victim_way t set =
  let base = set * t.way_count in
  let rec go w best =
    if w = t.way_count then best
    else go (w + 1) (if t.lru.(base + w) < t.lru.(base + best) then w else best)
  in
  go 1 0

let probe t addr = find_way t (set_of t addr) (tag_of t addr) >= 0

let access t addr =
  let set = set_of t addr and tag = tag_of t addr in
  let way = find_way t set tag in
  if way >= 0 then begin
    t.hits <- t.hits + 1;
    touch t set way;
    true
  end
  else begin
    t.misses <- t.misses + 1;
    let way = victim_way t set in
    t.tags.((set * t.way_count) + way) <- tag;
    touch t set way;
    false
  end

let invalidate_all t =
  Array.fill t.tags 0 (Array.length t.tags) (-1);
  Array.fill t.lru 0 (Array.length t.lru) 0;
  t.clock <- 0

let stats t = (t.hits, t.misses)

let dl0 () = create ~size_bytes:(32 * 1024) ~ways:8 ()

let ul1 () = create ~size_bytes:(4 * 1024 * 1024) ~ways:16 ()

module Hierarchy = struct
  type nonrec t = { dl0 : t; ul1 : t }

  let create () = { dl0 = dl0 (); ul1 = ul1 () }

  let latency h ~latencies:(l0, l1, mem) addr =
    if access h.dl0 addr then l0
    else if access h.ul1 addr then l1
    else mem
end
