(* Rename-time source knowledge, packed into an immediate int so the
   per-uop steering path allocates nothing: bit 0 = believed narrow,
   bit 1 = belief is actual (producer done) rather than predicted,
   bits 2-3 = producing cluster code (0 = architectural / immediate,
   1 = wide, 2 = narrow). *)
type src_info = int

let cluster_code_none = 0
let cluster_code_wide = 1
let cluster_code_narrow = 2

let src_info_bits ~narrow ~known ~cluster_code : src_info =
  (if narrow then 1 else 0) lor (if known then 2 else 0) lor (cluster_code lsl 2)

let src_info ~narrow ~known ~cluster =
  src_info_bits ~narrow ~known
    ~cluster_code:
      (match cluster with
      | None -> cluster_code_none
      | Some Config.Wide -> cluster_code_wide
      | Some Config.Narrow -> cluster_code_narrow)

let si_narrow (si : src_info) = si land 1 <> 0

let si_known (si : src_info) = si land 2 <> 0

let si_cluster (si : src_info) =
  match si lsr 2 with
  | 1 -> Some Config.Wide
  | 2 -> Some Config.Narrow
  | _ -> None

(* Occupancy-style signals are exposed as threshold tests instead of
   float-returning closures: a [float] coming back out of a closure call
   is boxed per call, while a [bool] is immediate. The float literals at
   the policy call sites are static data, so a comparison costs nothing. *)
type ctx = {
  cfg : Config.t;
  preds : Hc_predictors.Bundle.t;
  source_info : Hc_isa.Uop.operand -> src_info;
  flags_in_narrow : unit -> bool;
  occupancy_lt : Config.cluster -> float -> bool;
      (* issue-queue occupancy (len / iq_size) strictly below the bound *)
  ready_backlog : Config.cluster -> int;
  backlog_ewma_gt : Config.cluster -> float -> bool;
      (* smoothed ready-backlog strictly above the bound *)
  rob_occupancy_lt : float -> bool;
}

type reason = R888 | Rbr | Rcr | Rir | Rlive

type decision =
  | Steer of Config.cluster
  | Steer_narrow of reason
  | Split

(* Preallocated decisions: policies return these so a steering verdict
   never allocates. [Split] is a constant constructor and needs no
   sharing. *)
let steer_wide = Steer Config.Wide
let steer_narrow_cluster = Steer Config.Narrow
let steer_888 = Steer_narrow R888
let steer_br = Steer_narrow Rbr
let steer_cr = Steer_narrow Rcr
let steer_ir = Steer_narrow Rir
let steer_live = Steer_narrow Rlive

let steer_narrow_of = function
  | R888 -> steer_888
  | Rbr -> steer_br
  | Rcr -> steer_cr
  | Rir -> steer_ir
  | Rlive -> steer_live

type decide = ctx -> Hc_isa.Uop.t -> decision

let reason_to_string = function
  | R888 -> "888"
  | Rbr -> "br"
  | Rcr -> "cr"
  | Rir -> "ir"
  | Rlive -> "live"

let pp_decision ppf = function
  | Steer c -> Format.fprintf ppf "steer:%s" (Config.cluster_to_string c)
  | Steer_narrow r -> Format.fprintf ppf "steer:narrow(%s)" (reason_to_string r)
  | Split -> Format.pp_print_string ppf "split"
