type src_info = {
  si_narrow : bool;
  si_known : bool;
  si_cluster : Config.cluster option;
}

type ctx = {
  cfg : Config.t;
  preds : Hc_predictors.Bundle.t;
  source_info : Hc_isa.Uop.operand -> src_info;
  flags_in_narrow : unit -> bool;
  occupancy : Config.cluster -> float;
  ready_backlog : Config.cluster -> int;
  backlog_ewma : Config.cluster -> float;
  rob_occupancy : unit -> float;
}

type reason = R888 | Rbr | Rcr | Rir | Rlive

type decision =
  | Steer of Config.cluster
  | Steer_narrow of reason
  | Split

type decide = ctx -> Hc_isa.Uop.t -> decision

let reason_to_string = function
  | R888 -> "888"
  | Rbr -> "br"
  | Rcr -> "cr"
  | Rir -> "ir"
  | Rlive -> "live"

let pp_decision ppf = function
  | Steer c -> Format.fprintf ppf "steer:%s" (Config.cluster_to_string c)
  | Steer_narrow r -> Format.fprintf ppf "steer:narrow(%s)" (reason_to_string r)
  | Split -> Format.pp_print_string ppf "split"
