test/test_pipeline.ml: Alcotest Hc_isa Hc_sim Hc_stats Hc_steering Hc_trace List Printf
