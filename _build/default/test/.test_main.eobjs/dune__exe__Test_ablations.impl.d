test/test_ablations.ml: Alcotest Float Hc_core Hc_isa Hc_sim Hc_steering Hc_trace List Printf String
