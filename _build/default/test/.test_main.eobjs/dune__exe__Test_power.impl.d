test/test_power.ml: Alcotest Float Hc_power Hc_sim Hc_stats Hc_steering Hc_trace Lazy List Printf
