test/test_experiments.ml: Alcotest Float Hc_core Hc_sim Hc_stats Hc_trace Lazy List Printf String
