test/test_opcode.ml: Alcotest Hc_isa List String
