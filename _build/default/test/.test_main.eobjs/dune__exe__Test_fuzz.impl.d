test/test_fuzz.ml: Format Hashtbl Hc_sim Hc_stats Hc_steering Hc_trace List QCheck QCheck_alcotest
