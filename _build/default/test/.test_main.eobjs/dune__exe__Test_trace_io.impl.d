test/test_trace_io.ml: Alcotest Filename Hc_sim Hc_steering Hc_trace List
