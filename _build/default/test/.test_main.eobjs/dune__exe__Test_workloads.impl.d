test/test_workloads.ml: Alcotest Hc_trace List Printf String
