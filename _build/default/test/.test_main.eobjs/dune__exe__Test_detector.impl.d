test/test_detector.ml: Alcotest Hc_isa QCheck QCheck_alcotest
