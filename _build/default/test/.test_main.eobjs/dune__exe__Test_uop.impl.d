test/test_uop.ml: Alcotest Hc_isa List QCheck QCheck_alcotest
