test/test_reg.ml: Alcotest Hc_isa List Printf String
