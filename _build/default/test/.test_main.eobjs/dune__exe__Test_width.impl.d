test/test_width.ml: Alcotest Hc_isa QCheck QCheck_alcotest
