test/test_predictors.ml: Alcotest Gen Hashtbl Hc_predictors List QCheck QCheck_alcotest
