test/test_profile.ml: Alcotest Hc_trace Int64 List
