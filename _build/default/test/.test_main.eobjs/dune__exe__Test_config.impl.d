test/test_config.ml: Alcotest Hc_sim List
