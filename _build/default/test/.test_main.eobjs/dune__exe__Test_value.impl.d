test/test_value.ml: Alcotest Hc_isa QCheck QCheck_alcotest
