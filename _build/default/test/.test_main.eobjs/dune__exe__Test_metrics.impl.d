test/test_metrics.ml: Alcotest Format Hc_sim Hc_stats String
