test/test_stats.ml: Alcotest Float Gen Hc_stats List QCheck QCheck_alcotest String
