test/test_related.ml: Alcotest Hc_sim Hc_stats Hc_steering Hc_trace Lazy Printf
