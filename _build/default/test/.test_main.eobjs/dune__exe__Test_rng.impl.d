test/test_rng.ml: Alcotest Hc_trace Printf
