test/test_semantics.ml: Alcotest Hc_isa List QCheck QCheck_alcotest
