test/test_generator.ml: Alcotest Array Float Hashtbl Hc_isa Hc_trace List Printf
