test/test_export.ml: Alcotest Filename Hc_core List String Sys
