test/test_substrates.ml: Alcotest Hc_sim Hc_stats Hc_steering Hc_trace Lazy Printf
