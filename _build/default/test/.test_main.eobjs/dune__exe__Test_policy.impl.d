test/test_policy.ml: Alcotest Format Hc_isa Hc_predictors Hc_sim Hc_steering List
