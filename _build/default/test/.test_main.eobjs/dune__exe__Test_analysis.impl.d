test/test_analysis.ml: Alcotest Array Hc_isa Hc_stats Hc_trace List Printf
