(* Tests for counters, histograms, summaries and table rendering. *)

module Counter = Hc_stats.Counter
module Histogram = Hc_stats.Histogram
module Summary = Hc_stats.Summary
module Table = Hc_stats.Table

let test_counter_basics () =
  let c = Counter.create () in
  Alcotest.(check int) "untouched is zero" 0 (Counter.get c "x");
  Counter.incr c "x";
  Counter.incr c "x";
  Counter.add c "y" 5;
  Alcotest.(check int) "incr" 2 (Counter.get c "x");
  Alcotest.(check int) "add" 5 (Counter.get c "y");
  Counter.add c "y" (-2);
  Alcotest.(check int) "negative add" 3 (Counter.get c "y");
  Alcotest.(check (list string)) "names sorted" [ "x"; "y" ] (Counter.names c);
  Alcotest.(check (float 1e-9)) "ratio" (2. /. 3.) (Counter.ratio c "x" "y");
  Alcotest.(check (float 1e-9)) "ratio by zero" 0. (Counter.ratio c "x" "zero");
  Counter.reset c;
  Alcotest.(check int) "reset" 0 (Counter.get c "x")

let test_counter_merge () =
  let a = Counter.create () and b = Counter.create () in
  Counter.add a "x" 1;
  Counter.add b "x" 2;
  Counter.add b "y" 3;
  Counter.merge_into ~dst:a b;
  Alcotest.(check int) "merged x" 3 (Counter.get a "x");
  Alcotest.(check int) "merged y" 3 (Counter.get a "y")

let test_histogram () =
  let h = Histogram.create () in
  Alcotest.(check int) "empty" 0 (Histogram.total h);
  Alcotest.(check (float 1e-9)) "empty mean" 0. (Histogram.mean h);
  Histogram.observe h 1;
  Histogram.observe h 1;
  Histogram.observe_n h 4 2;
  Alcotest.(check int) "total" 4 (Histogram.total h);
  Alcotest.(check int) "count at 1" 2 (Histogram.count h 1);
  Alcotest.(check int) "count missing" 0 (Histogram.count h 3);
  Alcotest.(check (float 1e-9)) "mean" 2.5 (Histogram.mean h);
  Alcotest.(check (list int)) "keys" [ 1; 4 ] (Histogram.keys h);
  Alcotest.(check int) "median" 1 (Histogram.percentile h 0.5);
  Alcotest.(check int) "p100" 4 (Histogram.percentile h 1.0);
  Alcotest.(check (float 1e-9)) "fraction <= 1" 0.5 (Histogram.fraction_le h 1);
  Alcotest.(check (float 1e-9)) "fraction <= 4" 1.0 (Histogram.fraction_le h 4)

let test_histogram_errors () =
  let h = Histogram.create () in
  Alcotest.check_raises "empty percentile"
    (Invalid_argument "Histogram.percentile: empty") (fun () ->
      ignore (Histogram.percentile h 0.5));
  Histogram.observe h 1;
  Alcotest.check_raises "bad p" (Invalid_argument "Histogram.percentile: p out of [0,1]")
    (fun () -> ignore (Histogram.percentile h 1.5))

let test_summary_means () =
  Alcotest.(check (float 1e-9)) "empty mean" 0. (Summary.arithmetic_mean []);
  Alcotest.(check (float 1e-9)) "mean" 2. (Summary.arithmetic_mean [ 1.; 2.; 3. ]);
  Alcotest.(check (float 1e-9)) "geometric" 4. (Summary.geometric_mean [ 2.; 8. ]);
  Alcotest.check_raises "geometric empty"
    (Invalid_argument "Summary.geometric_mean: empty") (fun () ->
      ignore (Summary.geometric_mean []));
  Alcotest.check_raises "geometric non-positive"
    (Invalid_argument "Summary.geometric_mean: non-positive element") (fun () ->
      ignore (Summary.geometric_mean [ 1.; 0. ]))

let test_summary_speedup () =
  Alcotest.(check (float 1e-9)) "same" 0. (Summary.speedup ~baseline:2. 2.);
  Alcotest.(check (float 1e-9)) "faster" 0.5 (Summary.speedup ~baseline:2. 3.);
  Alcotest.check_raises "bad baseline"
    (Invalid_argument "Summary.speedup: non-positive baseline") (fun () ->
      ignore (Summary.speedup ~baseline:0. 1.));
  Alcotest.(check (float 1e-9)) "pct" 50. (Summary.pct 0.5)

let prop_welford =
  QCheck.Test.make ~name:"Welford matches direct mean/variance"
    QCheck.(list_of_size (Gen.int_range 2 50) (float_range (-1000.) 1000.))
    (fun xs ->
      let s = Summary.create () in
      List.iter (Summary.add s) xs;
      let n = float_of_int (List.length xs) in
      let mean = List.fold_left ( +. ) 0. xs /. n in
      let var =
        List.fold_left (fun acc x -> acc +. ((x -. mean) ** 2.)) 0. xs /. n
      in
      Float.abs (Summary.mean s -. mean) < 1e-6 *. (1. +. Float.abs mean)
      && Float.abs (Summary.variance s -. var) < 1e-4 *. (1. +. var)
      && Summary.min_value s = List.fold_left Float.min infinity xs
      && Summary.max_value s = List.fold_left Float.max neg_infinity xs)

let test_table_render () =
  let t = Table.create [ "name"; "value" ] in
  Table.add_row t [ "a"; "1" ];
  Table.add_separator t;
  Table.add_row t [ "bbbb"; "22" ];
  let rendered = Table.render t in
  let lines = String.split_on_char '\n' rendered in
  Alcotest.(check int) "header + rule + rows" 5 (List.length lines);
  (* all lines align to the same width *)
  let widths = List.map String.length lines in
  Alcotest.(check bool) "uniform width" true
    (List.for_all (fun w -> w = List.hd widths) widths)

let test_table_errors () =
  Alcotest.check_raises "aligns mismatch"
    (Invalid_argument "Table.create: aligns length mismatch") (fun () ->
      ignore (Table.create ~aligns:[ Table.Left ] [ "a"; "b" ]));
  let t = Table.create [ "a"; "b" ] in
  Alcotest.check_raises "row width" (Invalid_argument "Table.add_row: width mismatch")
    (fun () -> Table.add_row t [ "only one" ])

let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec scan i = i + n <= h && (String.sub haystack i n = needle || scan (i + 1)) in
  scan 0

let test_table_float_row () =
  let t = Table.create [ "name"; "x"; "y" ] in
  Table.add_float_row t "r" [ 1.234; 5.678 ];
  let rendered = Table.render t in
  Alcotest.(check bool) "two decimals" true
    (contains rendered "1.23" && contains rendered "5.68")

let suite =
  ( "stats",
    [
      Alcotest.test_case "counter basics" `Quick test_counter_basics;
      Alcotest.test_case "counter merge" `Quick test_counter_merge;
      Alcotest.test_case "histogram" `Quick test_histogram;
      Alcotest.test_case "histogram errors" `Quick test_histogram_errors;
      Alcotest.test_case "summary means" `Quick test_summary_means;
      Alcotest.test_case "summary speedup" `Quick test_summary_speedup;
      QCheck_alcotest.to_alcotest prop_welford;
      Alcotest.test_case "table render" `Quick test_table_render;
      Alcotest.test_case "table errors" `Quick test_table_errors;
      Alcotest.test_case "table float rows" `Quick test_table_float_row;
    ] )
