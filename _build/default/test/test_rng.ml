(* Tests for the deterministic RNG. *)

module Rng = Hc_trace.Rng

let test_determinism () =
  let a = Rng.create 42L and b = Rng.create 42L in
  for i = 1 to 100 do
    Alcotest.(check int64)
      (Printf.sprintf "draw %d" i)
      (Rng.next_int64 a) (Rng.next_int64 b)
  done

let test_seed_sensitivity () =
  let a = Rng.create 1L and b = Rng.create 2L in
  Alcotest.(check bool) "different seeds diverge" true
    (Rng.next_int64 a <> Rng.next_int64 b)

let test_copy_vs_split () =
  let a = Rng.create 7L in
  let c = Rng.copy a in
  Alcotest.(check int64) "copy preserves stream" (Rng.next_int64 a)
    (Rng.next_int64 c);
  let a = Rng.create 7L in
  let s = Rng.split a in
  Alcotest.(check bool) "split diverges from parent" true
    (Rng.next_int64 s <> Rng.next_int64 a)

let test_bounds () =
  let r = Rng.create 3L in
  for _ = 1 to 1000 do
    let v = Rng.int r 10 in
    Alcotest.(check bool) "int in range" true (v >= 0 && v < 10);
    let v = Rng.int_in r 5 8 in
    Alcotest.(check bool) "int_in in range" true (v >= 5 && v <= 8);
    let f = Rng.float r in
    Alcotest.(check bool) "float in [0,1)" true (f >= 0. && f < 1.)
  done

let test_errors () =
  let r = Rng.create 1L in
  Alcotest.check_raises "int 0" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int r 0));
  Alcotest.check_raises "empty range" (Invalid_argument "Rng.int_in: empty range")
    (fun () -> ignore (Rng.int_in r 3 2));
  Alcotest.check_raises "geometric mean < 1"
    (Invalid_argument "Rng.geometric: mean must be >= 1") (fun () ->
      ignore (Rng.geometric r 0.5));
  Alcotest.check_raises "empty choice" (Invalid_argument "Rng.choice: empty array")
    (fun () -> ignore (Rng.choice r [||]));
  Alcotest.check_raises "weighted zero sum"
    (Invalid_argument "Rng.weighted: non-positive weight sum") (fun () ->
      ignore (Rng.weighted r [ (0., `A) ]))

let test_bool_extremes () =
  let r = Rng.create 9L in
  for _ = 1 to 100 do
    Alcotest.(check bool) "p=0 never" false (Rng.bool r 0.);
    Alcotest.(check bool) "p=1 always" true (Rng.bool r 1.)
  done

let test_geometric () =
  let r = Rng.create 11L in
  let n = 20_000 in
  let sum = ref 0 in
  for _ = 1 to n do
    let v = Rng.geometric r 4.0 in
    Alcotest.(check bool) "at least 1" true (v >= 1);
    sum := !sum + v
  done;
  let mean = float_of_int !sum /. float_of_int n in
  Alcotest.(check bool)
    (Printf.sprintf "mean approx 4 (got %.2f)" mean)
    true
    (mean > 3.5 && mean < 4.5);
  Alcotest.(check int) "mean 1 degenerates" 1 (Rng.geometric r 1.)

let test_weighted () =
  let r = Rng.create 13L in
  (* zero-weight outcomes never drawn *)
  for _ = 1 to 500 do
    match Rng.weighted r [ (0., `Never); (1., `Always) ] with
    | `Never -> Alcotest.fail "drew zero-weight outcome"
    | `Always -> ()
  done;
  (* rough proportionality *)
  let a = ref 0 in
  let n = 20_000 in
  for _ = 1 to n do
    match Rng.weighted r [ (3., `A); (1., `B) ] with
    | `A -> incr a
    | `B -> ()
  done;
  let frac = float_of_int !a /. float_of_int n in
  Alcotest.(check bool)
    (Printf.sprintf "3:1 weighting approx (got %.3f)" frac)
    true
    (frac > 0.72 && frac < 0.78)

let test_float_mean () =
  let r = Rng.create 17L in
  let n = 50_000 in
  let sum = ref 0. in
  for _ = 1 to n do
    sum := !sum +. Rng.float r
  done;
  let mean = !sum /. float_of_int n in
  Alcotest.(check bool)
    (Printf.sprintf "uniform mean approx 0.5 (got %.3f)" mean)
    true
    (mean > 0.49 && mean < 0.51)

let suite =
  ( "rng",
    [
      Alcotest.test_case "determinism" `Quick test_determinism;
      Alcotest.test_case "seed sensitivity" `Quick test_seed_sensitivity;
      Alcotest.test_case "copy vs split" `Quick test_copy_vs_split;
      Alcotest.test_case "bounds" `Quick test_bounds;
      Alcotest.test_case "errors" `Quick test_errors;
      Alcotest.test_case "bool extremes" `Quick test_bool_extremes;
      Alcotest.test_case "geometric distribution" `Quick test_geometric;
      Alcotest.test_case "weighted choice" `Quick test_weighted;
      Alcotest.test_case "uniform float mean" `Quick test_float_mean;
    ] )
