(* Tests for workload profiles. *)

module Profile = Hc_trace.Profile

let test_spec_count () =
  Alcotest.(check int) "twelve benchmarks" 12 (List.length Profile.spec_int);
  Alcotest.(check (list string)) "paper order"
    [ "bzip2"; "crafty"; "eon"; "gap"; "gcc"; "gzip"; "mcf"; "parser";
      "perlbmk"; "twolf"; "vortex"; "vpr" ]
    Profile.spec_int_names

let test_all_valid () =
  List.iter
    (fun p ->
      match Profile.validate p with
      | Ok () -> ()
      | Error msg -> Alcotest.failf "%s: %s" p.Profile.name msg)
    Profile.spec_int

let test_archetypes_valid () =
  List.iter
    (fun cat ->
      let a = Profile.archetype cat in
      match Profile.validate a with
      | Ok () -> ()
      | Error msg -> Alcotest.failf "%s: %s" a.Profile.name msg)
    Profile.all_categories

let test_find () =
  let p = Profile.find_spec_int "gcc" in
  Alcotest.(check string) "found" "gcc" p.Profile.name;
  Alcotest.check_raises "unknown" Not_found (fun () ->
      ignore (Profile.find_spec_int "nonesuch"))

let test_category_strings () =
  List.iter
    (fun cat ->
      let s = Profile.category_to_string cat in
      Alcotest.(check bool)
        (s ^ " roundtrips")
        true
        (Profile.category_of_string s = Some cat))
    Profile.all_categories;
  Alcotest.(check bool) "unknown string" true
    (Profile.category_of_string "xyzzy" = None)

let test_validate_rejects () =
  let base = List.hd Profile.spec_int in
  let expect_error name p =
    match Profile.validate p with
    | Ok () -> Alcotest.failf "%s: expected rejection" name
    | Error _ -> ()
  in
  expect_error "negative fraction" { base with Profile.f_load = -0.1 };
  expect_error "fraction above one" { base with Profile.p_narrow_load = 1.5 };
  expect_error "mix overflow"
    { base with Profile.f_load = 0.6; f_store = 0.5 };
  expect_error "zero statics" { base with Profile.static_size = 0 };
  expect_error "sub-unit distance" { base with Profile.dep_distance_mean = 0.5 };
  expect_error "loop back" { base with Profile.loop_back_mean = 0.0 }

let test_with_seed () =
  let base = List.hd Profile.spec_int in
  let p = Profile.with_seed base 99L in
  Alcotest.(check int64) "seed replaced" 99L p.Profile.seed;
  Alcotest.(check string) "rest untouched" base.Profile.name p.Profile.name

let test_seeds_distinct () =
  let seeds = List.map (fun p -> p.Profile.seed) Profile.spec_int in
  Alcotest.(check int) "unique seeds" 12
    (List.length (List.sort_uniq Int64.compare seeds))

let test_personalities_differ () =
  let gcc = Profile.find_spec_int "gcc" in
  let mcf = Profile.find_spec_int "mcf" in
  Alcotest.(check bool) "mcf misses more than gcc" true
    (mcf.Profile.p_ul1_miss > gcc.Profile.p_ul1_miss);
  let bzip2 = Profile.find_spec_int "bzip2" in
  Alcotest.(check bool) "bzip2 more narrow-index pressure than gcc" true
    (bzip2.Profile.p_narrow_index > gcc.Profile.p_narrow_index)

let suite =
  ( "profile",
    [
      Alcotest.test_case "spec benchmark set" `Quick test_spec_count;
      Alcotest.test_case "all profiles valid" `Quick test_all_valid;
      Alcotest.test_case "archetypes valid" `Quick test_archetypes_valid;
      Alcotest.test_case "find" `Quick test_find;
      Alcotest.test_case "category strings" `Quick test_category_strings;
      Alcotest.test_case "validate rejects" `Quick test_validate_rejects;
      Alcotest.test_case "with_seed" `Quick test_with_seed;
      Alcotest.test_case "seeds distinct" `Quick test_seeds_distinct;
      Alcotest.test_case "personalities differ" `Quick test_personalities_differ;
    ] )
