(* Tests for the synthetic trace generator: determinism, structural
   invariants and value-flow consistency. *)

module Generator = Hc_trace.Generator
module Profile = Hc_trace.Profile
module Trace = Hc_trace.Trace
module Uop = Hc_isa.Uop
module Opcode = Hc_isa.Opcode
module Reg = Hc_isa.Reg
module Semantics = Hc_isa.Semantics

let small_trace ?(length = 5_000) name = Generator.generate ~length (Profile.find_spec_int name)

let test_length () =
  let t = small_trace "gcc" in
  Alcotest.(check int) "requested length" 5_000 (Trace.length t);
  Alcotest.(check string) "named" "gcc" t.Trace.name

let test_determinism () =
  let a = small_trace "gzip" and b = small_trace "gzip" in
  Trace.iter
    (fun u ->
      let v = Trace.get b u.Uop.id in
      Alcotest.(check bool)
        (Printf.sprintf "uop %d identical" u.Uop.id)
        true
        (u = v))
    a

let test_ids_dense () =
  let t = small_trace "vpr" in
  for i = 0 to Trace.length t - 1 do
    Alcotest.(check int) "id matches position" i (Trace.get t i).Uop.id
  done

let test_cmp_precedes_branch () =
  (* every conditional branch is immediately preceded by its flag-producing
     cmp (the generator emits the pair back to back) *)
  let t = small_trace "parser" in
  for i = 0 to Trace.length t - 1 do
    let u = Trace.get t i in
    if u.Uop.op = Opcode.Branch_cond then begin
      Alcotest.(check bool) "branch not first" true (i > 0);
      let prev = Trace.get t (i - 1) in
      Alcotest.(check bool)
        (Printf.sprintf "uop %d: cmp before jcc" i)
        true
        (prev.Uop.op = Opcode.Cmp)
    end
  done

let test_value_flow_consistency () =
  (* replay the architectural register file: every register source operand
     must carry the value its most recent writer produced *)
  let t = small_trace "crafty" in
  let regs = Array.make Reg.count (-1) in
  Trace.iter
    (fun u ->
      List.iter2
        (fun src v ->
          match src with
          | Uop.Reg r ->
            let cur = regs.(Reg.to_index r) in
            if cur >= 0 then
              Alcotest.(check int)
                (Printf.sprintf "uop %d reads %s" u.Uop.id (Reg.to_string r))
                cur v
          | Uop.Imm iv ->
            Alcotest.(check int)
              (Printf.sprintf "uop %d imm" u.Uop.id)
              iv v)
        u.Uop.srcs u.Uop.src_vals;
      ( match u.Uop.dst with
      | Some d -> regs.(Reg.to_index d) <- u.Uop.result
      | None -> () );
      if Uop.writes_flags u then regs.(Reg.to_index Reg.Eflags) <- u.Uop.result)
    t

let test_alu_results_evaluate () =
  (* two-source ALU results follow the concrete semantics *)
  let t = small_trace "gap" in
  Trace.iter
    (fun u ->
      match u.Uop.op, u.Uop.src_vals with
      | (Opcode.Add | Opcode.Sub | Opcode.And | Opcode.Or | Opcode.Xor), [ a; b ]
        -> (
        match Semantics.eval u.Uop.op [ a; b ] with
        | Some expected ->
          Alcotest.(check int)
            (Printf.sprintf "uop %d %s" u.Uop.id (Opcode.to_string u.Uop.op))
            expected u.Uop.result
        | None -> Alcotest.fail "binary ALU must evaluate")
      | _ -> ())
    t

let test_memory_ops_have_addresses () =
  let t = small_trace "mcf" in
  Trace.iter
    (fun u ->
      if Opcode.is_memory u.Uop.op then
        Alcotest.(check bool)
          (Printf.sprintf "uop %d nonzero address" u.Uop.id)
          true (u.Uop.mem_addr > 0))
    t

let test_miss_flags_only_on_loads () =
  let t = small_trace "mcf" in
  Trace.iter
    (fun u ->
      if u.Uop.op <> Opcode.Load then begin
        Alcotest.(check bool) "no dl0 miss" false u.Uop.dl0_miss;
        Alcotest.(check bool) "no ul1 miss" false u.Uop.ul1_miss
      end;
      if u.Uop.ul1_miss then
        Alcotest.(check bool) "ul1 miss implies dl0 miss" true u.Uop.dl0_miss)
    t

let test_mix_tracks_profile () =
  let p = Profile.find_spec_int "gcc" in
  let t = Generator.generate ~length:30_000 p in
  let digest = Hc_trace.Analysis.mix_digest t in
  let get k = List.assoc k digest in
  (* cmp+jcc pairing dilutes every static share by (1 + f_cond_branch) *)
  let expected_load = p.Profile.f_load /. (1. +. p.Profile.f_cond_branch) in
  Alcotest.(check bool)
    (Printf.sprintf "load share near profile (%.3f vs %.3f)" (get "load")
       expected_load)
    true
    (Float.abs ((get "load") -. expected_load) < 0.06);
  Alcotest.(check bool) "some branches" true (get "branch" > 0.05);
  Alcotest.(check bool) "alu dominates" true (get "alu" > 0.3)

let test_sliced_skips_warmup () =
  let p = Profile.find_spec_int "eon" in
  let plain = Generator.generate ~length:2_000 p in
  let sliced = Generator.generate_sliced ~length:2_000 p in
  Alcotest.(check int) "same length" (Trace.length plain) (Trace.length sliced);
  Alcotest.(check bool) "different content" true
    (Trace.get plain 0 <> Trace.get sliced 0)

let test_branch_mispredict_rate () =
  let p = Profile.find_spec_int "vpr" in
  let t = Generator.generate ~length:40_000 p in
  let branches = ref 0 and missed = ref 0 in
  Trace.iter
    (fun u ->
      if u.Uop.op = Opcode.Branch_cond then begin
        incr branches;
        if u.Uop.branch_mispredicted then incr missed
      end)
    t;
  let rate = float_of_int !missed /. float_of_int (max 1 !branches) in
  Alcotest.(check bool)
    (Printf.sprintf "mispredict rate near profile (%.3f vs %.3f)" rate
       p.Profile.p_mispredict)
    true
    (Float.abs (rate -. p.Profile.p_mispredict) < 0.03)



let test_carry_sites_are_habitual () =
  (* carry locality is a per-site property: among imm-offset loads of one
     static pc, the carry behaviour should be nearly constant *)
  let t = small_trace ~length:20_000 "gzip" in
  let per_site = Hashtbl.create 64 in
  Trace.iter
    (fun u ->
      match u.Uop.op, u.Uop.srcs with
      | Opcode.Load, [ Uop.Reg _; Uop.Imm _ ] when Uop.is_8_32_32 u ->
        let local = Uop.carry_not_propagated u in
        let hits, total =
          try Hashtbl.find per_site u.Uop.pc with Not_found -> (0, 0)
        in
        Hashtbl.replace per_site u.Uop.pc
          ((if local then hits + 1 else hits), total + 1)
      | _ -> ())
    t;
  let sites = ref 0 and habitual = ref 0 in
  Hashtbl.iter
    (fun _ (hits, total) ->
      if total >= 10 then begin
        incr sites;
        let frac = float_of_int hits /. float_of_int total in
        if frac <= 0.2 || frac >= 0.8 then incr habitual
      end)
    per_site;
  Alcotest.(check bool)
    (Printf.sprintf "most sites habitual (%d/%d)" !habitual !sites)
    true
    (!sites > 5 && float_of_int !habitual /. float_of_int !sites > 0.8)

let test_width_locality_supports_prediction () =
  (* a last-width oracle per static pc must beat ~85% on our traces, or the
     256-entry predictor of Fig 5 could never reach its levels *)
  let t = small_trace ~length:20_000 "gap" in
  let last = Hashtbl.create 256 in
  let total = ref 0 and correct = ref 0 in
  Trace.iter
    (fun u ->
      if Uop.has_dest u then begin
        let narrow = Hc_isa.Width.is_narrow u.Uop.result in
        ( match Hashtbl.find_opt last u.Uop.pc with
        | Some prev ->
          incr total;
          if prev = narrow then incr correct
        | None -> () );
        Hashtbl.replace last u.Uop.pc narrow
      end)
    t;
  let acc = float_of_int !correct /. float_of_int (max 1 !total) in
  Alcotest.(check bool)
    (Printf.sprintf "per-pc width stability %.1f%%" (100. *. acc))
    true (acc > 0.85)

let suite =
  ( "generator",
    [
      Alcotest.test_case "length and name" `Quick test_length;
      Alcotest.test_case "determinism" `Quick test_determinism;
      Alcotest.test_case "dense ids" `Quick test_ids_dense;
      Alcotest.test_case "cmp precedes branch" `Quick test_cmp_precedes_branch;
      Alcotest.test_case "value flow consistency" `Quick test_value_flow_consistency;
      Alcotest.test_case "ALU results evaluate" `Quick test_alu_results_evaluate;
      Alcotest.test_case "memory addresses" `Quick test_memory_ops_have_addresses;
      Alcotest.test_case "miss flags" `Quick test_miss_flags_only_on_loads;
      Alcotest.test_case "mix tracks profile" `Quick test_mix_tracks_profile;
      Alcotest.test_case "slicing skips warmup" `Quick test_sliced_skips_warmup;
      Alcotest.test_case "branch mispredict rate" `Quick test_branch_mispredict_rate;
      Alcotest.test_case "carry sites habitual" `Quick test_carry_sites_are_habitual;
      Alcotest.test_case "per-pc width stability" `Quick
        test_width_locality_supports_prediction;
    ] )
