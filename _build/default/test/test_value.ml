(* Unit and property tests for Hc_isa.Value: 32-bit value arithmetic and
   the carry-propagation primitives the CR scheme rests on. *)

module Value = Hc_isa.Value

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_mask32 () =
  check "in range untouched" 0x1234_5678 (Value.mask32 0x1234_5678);
  check "truncates" 0x0000_0001 (Value.mask32 0x1_0000_0001);
  check "zero" 0 (Value.mask32 0);
  check "max" 0xFFFF_FFFF (Value.mask32 0xFFFF_FFFF);
  check "negative input wraps" 0xFFFF_FFFF (Value.mask32 (-1))

let test_signed_roundtrip () =
  check "positive" 5 (Value.to_signed (Value.of_signed 5));
  check "negative" (-5) (Value.to_signed (Value.of_signed (-5)));
  check "min32" (-0x8000_0000) (Value.to_signed (Value.of_signed (-0x8000_0000)));
  check "max32" 0x7FFF_FFFF (Value.to_signed (Value.of_signed 0x7FFF_FFFF));
  check "minus one pattern" 0xFFFF_FFFF (Value.of_signed (-1))

let test_bytes () =
  let v = 0xDEAD_BEEF in
  check "byte 0" 0xEF (Value.byte 0 v);
  check "byte 1" 0xBE (Value.byte 1 v);
  check "byte 2" 0xAD (Value.byte 2 v);
  check "byte 3" 0xDE (Value.byte 3 v);
  check "reassemble" v (Value.of_bytes 0xEF 0xBE 0xAD 0xDE)

let test_add_sub () =
  check "add" 3 (Value.add 1 2);
  check "add wraps" 0 (Value.add 0xFFFF_FFFF 1);
  check "sub" 1 (Value.sub 3 2);
  check "sub wraps" 0xFFFF_FFFF (Value.sub 0 1)

let test_carry_out_low8 () =
  check_bool "no carry" false (Value.carry_out_low8 0x10 0x20);
  check_bool "carry" true (Value.carry_out_low8 0xF0 0x20);
  check_bool "boundary no" false (Value.carry_out_low8 0xFF 0x00);
  check_bool "boundary yes" true (Value.carry_out_low8 0xFF 0x01);
  check_bool "only low bytes matter" false (Value.carry_out_low8 0xFF00 0xFF00)

let test_carry_propagates_paper_example () =
  (* Fig 10: R2 = FFFC4A02, R3 = 1C; FFFC4A02 + 1C = FFFC4A1E, the upper
     24 bits of the base are untouched *)
  check_bool "paper example stays local" false
    (Value.carry_propagates 0xFFFC_4A02 0x1C);
  check_bool "forced carry" true (Value.carry_propagates 0xFFFC_40FF 0x01);
  check_bool "upper24 comparison" true
    (Value.upper24_equal 0xFFFC_4A02 0xFFFC_4A1E);
  check_bool "upper24 differ" false (Value.upper24_equal 0xFFFC_4A02 0xFFFD_4A02)

let test_hex () =
  Alcotest.(check string) "hex" "0xFFFC4A1E" (Value.to_hex 0xFFFC_4A1E);
  Alcotest.(check string) "zero" "0x00000000" (Value.to_hex 0)

(* properties *)

let gen32 = QCheck.map Value.mask32 (QCheck.int_range 0 max_int)

let prop_mask_idempotent =
  QCheck.Test.make ~name:"mask32 idempotent" gen32 (fun v ->
      Value.mask32 v = v)

let prop_signed_roundtrip =
  QCheck.Test.make ~name:"signed roundtrip" gen32 (fun v ->
      Value.of_signed (Value.to_signed v) = v)

let prop_bytes_roundtrip =
  QCheck.Test.make ~name:"byte decompose/reassemble" gen32 (fun v ->
      Value.of_bytes (Value.byte 0 v) (Value.byte 1 v) (Value.byte 2 v)
        (Value.byte 3 v)
      = v)

let prop_add_commutative =
  QCheck.Test.make ~name:"add commutative" (QCheck.pair gen32 gen32)
    (fun (a, b) -> Value.add a b = Value.add b a)

let prop_add_sub_inverse =
  QCheck.Test.make ~name:"sub undoes add" (QCheck.pair gen32 gen32)
    (fun (a, b) -> Value.sub (Value.add a b) b = a)

let prop_carry_definition =
  QCheck.Test.make ~name:"carry_propagates matches upper24 change"
    (QCheck.pair gen32 (QCheck.int_range 0 0xFF))
    (fun (base, off) ->
      Value.carry_propagates base off
      = not (Value.upper24_equal (Value.add base off) base))

let prop_carry_iff_low_byte_overflow =
  QCheck.Test.make ~name:"narrow offset carry iff low-byte overflow"
    (QCheck.pair gen32 (QCheck.int_range 0 0xFF))
    (fun (base, off) ->
      Value.carry_propagates base off = Value.carry_out_low8 base off)

let suite =
  ( "value",
    [
      Alcotest.test_case "mask32" `Quick test_mask32;
      Alcotest.test_case "signed roundtrip" `Quick test_signed_roundtrip;
      Alcotest.test_case "bytes" `Quick test_bytes;
      Alcotest.test_case "add/sub wrap" `Quick test_add_sub;
      Alcotest.test_case "carry out of low byte" `Quick test_carry_out_low8;
      Alcotest.test_case "Fig 10 carry example" `Quick
        test_carry_propagates_paper_example;
      Alcotest.test_case "hex printing" `Quick test_hex;
      QCheck_alcotest.to_alcotest prop_mask_idempotent;
      QCheck_alcotest.to_alcotest prop_signed_roundtrip;
      QCheck_alcotest.to_alcotest prop_bytes_roundtrip;
      QCheck_alcotest.to_alcotest prop_add_commutative;
      QCheck_alcotest.to_alcotest prop_add_sub_inverse;
      QCheck_alcotest.to_alcotest prop_carry_definition;
      QCheck_alcotest.to_alcotest prop_carry_iff_low_byte_overflow;
    ] )
