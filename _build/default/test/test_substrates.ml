(* Tests for the structural substrates: set-associative caches, the gshare
   branch predictor, the trace cache, physical register files and the CR
   tag counters — plus their integration into the pipeline. *)

module Cache = Hc_sim.Cache
module Branch_predictor = Hc_sim.Branch_predictor
module Trace_cache = Hc_sim.Trace_cache
module Regfile = Hc_sim.Regfile
module Config = Hc_sim.Config
module Pipeline = Hc_sim.Pipeline
module Metrics = Hc_sim.Metrics

(* ----- caches ----- *)

let test_cache_geometry () =
  let c = Cache.create ~line_bytes:64 ~size_bytes:(32 * 1024) ~ways:8 () in
  Alcotest.(check int) "sets" 64 (Cache.sets c);
  Alcotest.(check int) "ways" 8 (Cache.ways c);
  Alcotest.(check int) "line" 64 (Cache.line_bytes c);
  Alcotest.check_raises "non power of two"
    (Invalid_argument "Cache.create: sizes must be powers of two") (fun () ->
      ignore (Cache.create ~size_bytes:3000 ~ways:8 ()));
  Alcotest.check_raises "too associative"
    (Invalid_argument "Cache.create: fewer lines than ways") (fun () ->
      ignore (Cache.create ~line_bytes:64 ~size_bytes:128 ~ways:8 ()))

let test_cache_hit_miss () =
  let c = Cache.create ~line_bytes:64 ~size_bytes:1024 ~ways:2 () in
  Alcotest.(check bool) "cold miss" false (Cache.access c 0x1000);
  Alcotest.(check bool) "hit after fill" true (Cache.access c 0x1000);
  Alcotest.(check bool) "same line hits" true (Cache.access c 0x103F);
  Alcotest.(check bool) "next line misses" false (Cache.access c 0x1040);
  Alcotest.(check bool) "probe does not allocate" false (Cache.probe c 0x9000);
  Alcotest.(check bool) "still absent" false (Cache.probe c 0x9000);
  let hits, misses = Cache.stats c in
  Alcotest.(check int) "hits counted" 2 hits;
  Alcotest.(check int) "misses counted" 2 misses

let test_cache_lru () =
  (* 2-way: fill both ways of one set, touch the first, add a third line —
     the second must be the victim *)
  let c = Cache.create ~line_bytes:64 ~size_bytes:1024 ~ways:2 () in
  let sets = Cache.sets c in
  let stride = 64 * sets in
  let a = 0x10000 and b = 0x10000 + stride and d = 0x10000 + (2 * stride) in
  ignore (Cache.access c a);
  ignore (Cache.access c b);
  ignore (Cache.access c a);
  ignore (Cache.access c d);
  Alcotest.(check bool) "a survives (recently used)" true (Cache.probe c a);
  Alcotest.(check bool) "b evicted (LRU)" false (Cache.probe c b);
  Cache.invalidate_all c;
  Alcotest.(check bool) "invalidate clears" false (Cache.probe c a)

let test_hierarchy_latencies () =
  let h = Cache.Hierarchy.create () in
  let lat = Cache.Hierarchy.latency h ~latencies:(3, 13, 450) in
  Alcotest.(check int) "cold access pays memory" 450 (lat 0x4_0000);
  Alcotest.(check int) "second access hits DL0" 3 (lat 0x4_0000);
  (* evict from DL0 only: a burst of conflicting lines *)
  let sets = Cache.sets (Cache.dl0 ()) in
  for i = 1 to 16 do
    ignore (lat (0x4_0000 + (i * 64 * sets)))
  done;
  Alcotest.(check int) "DL0 victim still hits UL1" 13 (lat 0x4_0000)

(* ----- gshare ----- *)

let test_gshare_learns_bias () =
  let g = Branch_predictor.create () in
  let wrong = ref 0 in
  for _ = 1 to 200 do
    if Branch_predictor.update g 0x400100 ~taken:true then incr wrong
  done;
  (* warm-up misses: each of the ~12 distinct history values maps to its
     own counter, so convergence takes a few tens of branches *)
  Alcotest.(check bool)
    (Printf.sprintf "always-taken learned (%d wrong)" !wrong)
    true (!wrong <= 20);
  Alcotest.(check bool) "accuracy high" true (Branch_predictor.accuracy g > 0.9)

let test_gshare_learns_pattern () =
  (* a period-2 pattern is captured through the history register *)
  let g = Branch_predictor.create () in
  let wrong = ref 0 in
  for i = 1 to 400 do
    let taken = i mod 2 = 0 in
    if Branch_predictor.update g 0x400200 ~taken && i > 100 then incr wrong
  done;
  Alcotest.(check bool)
    (Printf.sprintf "alternating pattern learned (%d late misses)" !wrong)
    true (!wrong <= 5)

let test_gshare_validation () =
  Alcotest.check_raises "bits"
    (Invalid_argument "Branch_predictor.create: bits out of [1,24]") (fun () ->
      ignore (Branch_predictor.create ~history_bits:0 ()))

(* ----- trace cache ----- *)

let test_trace_cache () =
  let tc = Trace_cache.create ~uop_capacity:256 ~ways:2 ~line_uops:4 () in
  Alcotest.(check bool) "cold miss" false (Trace_cache.lookup tc 0x400000);
  Alcotest.(check bool) "hit after build" true (Trace_cache.lookup tc 0x400000);
  Alcotest.(check bool) "same line" true (Trace_cache.lookup tc 0x400004);
  let hits, misses = Trace_cache.stats tc in
  Alcotest.(check int) "hits" 2 hits;
  Alcotest.(check int) "misses" 1 misses;
  Alcotest.(check bool) "rate" true (Trace_cache.hit_rate tc > 0.6)

(* ----- register files and CR tags ----- *)

let test_regfile () =
  let rf = Regfile.create ~wide_regs:2 ~narrow_regs:1 () in
  Alcotest.(check int) "capacity" 2 (Regfile.capacity rf Config.Wide);
  Alcotest.(check bool) "alloc 1" true (Regfile.allocate rf Config.Wide);
  Alcotest.(check bool) "alloc 2" true (Regfile.allocate rf Config.Wide);
  Alcotest.(check bool) "exhausted" false (Regfile.allocate rf Config.Wide);
  Alcotest.(check int) "in use" 2 (Regfile.in_use rf Config.Wide);
  Regfile.release rf Config.Wide;
  Alcotest.(check bool) "usable again" true (Regfile.allocate rf Config.Wide);
  Alcotest.(check int) "narrow independent" 1 (Regfile.free_count rf Config.Narrow);
  Regfile.release rf Config.Wide;
  Regfile.release rf Config.Wide;
  Alcotest.check_raises "double release"
    (Invalid_argument "Regfile.release: pool already full") (fun () ->
      Regfile.release rf Config.Wide)

let test_cr_tags () =
  let tags = Regfile.Tags.create ~wide_regs:8 () in
  Alcotest.(check bool) "fresh register deallocatable once committed" true
    (Regfile.Tags.can_deallocate tags 3 ~renamer_committed:true);
  Regfile.Tags.link tags 3;
  Regfile.Tags.link tags 3;
  Alcotest.(check int) "two links" 2 (Regfile.Tags.links tags 3);
  Alcotest.(check bool) "linked register pinned" false
    (Regfile.Tags.can_deallocate tags 3 ~renamer_committed:true);
  Regfile.Tags.unlink tags 3;
  Regfile.Tags.unlink tags 3;
  Alcotest.(check bool) "free after unlinks, but only when committed" false
    (Regfile.Tags.can_deallocate tags 3 ~renamer_committed:false);
  Alcotest.(check bool) "free when committed too" true
    (Regfile.Tags.can_deallocate tags 3 ~renamer_committed:true);
  Alcotest.check_raises "underflow"
    (Invalid_argument "Regfile.Tags.unlink: counter already zero") (fun () ->
      Regfile.Tags.unlink tags 3)

(* ----- pipeline integration ----- *)

let trace =
  lazy
    (Hc_trace.Generator.generate_sliced ~length:4_000
       (Hc_trace.Profile.find_spec_int "gcc"))

let run cfg =
  Pipeline.run ~cfg ~decide:Hc_steering.Policy.decide ~scheme_name:"+CR"
    (Lazy.force trace)

let full_cr = Config.with_scheme Config.default (Config.find_scheme "+CR")

let test_modeled_memory_completes () =
  let m = run { full_cr with Config.memory_model = Config.Mem_cache_sim } in
  Alcotest.(check int) "commits all" 4_000 m.Metrics.committed;
  (* our pointer walks are cache-friendly: a modeled hierarchy should not
     be slower than the profile's pessimistic flags *)
  Alcotest.(check bool) "ipc sane" true (Metrics.ipc m > 0.2)

let test_gshare_model_completes () =
  let m = run { full_cr with Config.branch_model = Config.Br_gshare } in
  Alcotest.(check int) "commits all" 4_000 m.Metrics.committed

let test_trace_cache_model_completes () =
  let m = run { full_cr with Config.frontend_model = Config.Fe_trace_cache } in
  Alcotest.(check int) "commits all" 4_000 m.Metrics.committed;
  Alcotest.(check bool) "some tc misses recorded" true
    (Hc_stats.Counter.get m.Metrics.counters "tc_miss" > 0);
  (* a realistic frontend can only slow things down *)
  let ideal = run full_cr in
  Alcotest.(check bool) "not faster than ideal frontend" true
    (m.Metrics.ticks >= ideal.Metrics.ticks)

let test_small_regfile_pressure () =
  let tiny =
    run { full_cr with Config.wide_regs = 12; narrow_regs = 12 }
  in
  let roomy = run full_cr in
  Alcotest.(check int) "still commits all" 4_000 tiny.Metrics.committed;
  Alcotest.(check bool)
    (Printf.sprintf "rename pressure costs cycles (%d vs %d ticks)"
       tiny.Metrics.ticks roomy.Metrics.ticks)
    true
    (tiny.Metrics.ticks > roomy.Metrics.ticks)

let test_all_substrates_together () =
  let m =
    run
      { full_cr with
        Config.memory_model = Config.Mem_cache_sim;
        branch_model = Config.Br_gshare;
        frontend_model = Config.Fe_trace_cache;
        wide_regs = 96; narrow_regs = 96 }
  in
  Alcotest.(check int) "commits all" 4_000 m.Metrics.committed

let suite =
  ( "substrates",
    [
      Alcotest.test_case "cache geometry" `Quick test_cache_geometry;
      Alcotest.test_case "cache hit/miss" `Quick test_cache_hit_miss;
      Alcotest.test_case "cache LRU" `Quick test_cache_lru;
      Alcotest.test_case "hierarchy latencies" `Quick test_hierarchy_latencies;
      Alcotest.test_case "gshare bias" `Quick test_gshare_learns_bias;
      Alcotest.test_case "gshare pattern" `Quick test_gshare_learns_pattern;
      Alcotest.test_case "gshare validation" `Quick test_gshare_validation;
      Alcotest.test_case "trace cache" `Quick test_trace_cache;
      Alcotest.test_case "register files" `Quick test_regfile;
      Alcotest.test_case "CR tag counters" `Quick test_cr_tags;
      Alcotest.test_case "modeled memory end-to-end" `Quick
        test_modeled_memory_completes;
      Alcotest.test_case "gshare end-to-end" `Quick test_gshare_model_completes;
      Alcotest.test_case "trace cache end-to-end" `Quick
        test_trace_cache_model_completes;
      Alcotest.test_case "register pressure" `Quick test_small_regfile_pressure;
      Alcotest.test_case "all substrates together" `Quick
        test_all_substrates_together;
    ] )
