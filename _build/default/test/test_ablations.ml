(* Tests for the width-parameterized narrowness API (the wider-helper
   extension) and the ablation harness. *)

module Detector = Hc_isa.Detector
module Width = Hc_isa.Width
module Uop = Hc_isa.Uop
module Opcode = Hc_isa.Opcode
module Reg = Hc_isa.Reg
module Config = Hc_sim.Config
module Pipeline = Hc_sim.Pipeline
module Metrics = Hc_sim.Metrics
module Ablations = Hc_core.Ablations

let test_detector_bits () =
  Alcotest.(check bool) "0x1234 wide at 8" false (Detector.narrow ~bits:8 0x1234);
  Alcotest.(check bool) "0x1234 narrow at 16" true (Detector.narrow ~bits:16 0x1234);
  Alcotest.(check bool) "negative at 16" true
    (Detector.narrow ~bits:16 0xFFFF_8000);
  Alcotest.(check bool) "0x8000 narrow at 16 (zero run above)" true
    (Detector.narrow ~bits:16 0x8000);
  Alcotest.(check bool) "boundary at 16" false (Detector.narrow ~bits:16 0x1_0000);
  Alcotest.(check bool) "32 bits accepts everything" true
    (Detector.narrow ~bits:32 0xDEAD_BEEF);
  Alcotest.check_raises "bits 0" (Invalid_argument "Detector.narrow: bits out of [1,32]")
    (fun () -> ignore (Detector.narrow ~bits:0 1))

let test_bits_consistency () =
  (* the 8-bit parameterization must agree with the fixed-width API *)
  List.iter
    (fun v ->
      Alcotest.(check bool)
        (Printf.sprintf "0x%X agrees" v)
        (Width.is_narrow v)
        (Width.is_narrow_bits ~bits:8 v))
    [ 0; 1; 0xFF; 0x100; 0xFFFF_FF00; 0xFFFF_FE00; 0x8000_0000 ]

let test_uop_bits () =
  let u =
    Uop.make ~id:0 ~pc:0 ~op:Opcode.Add
      ~srcs:[ Uop.Reg Reg.Eax; Uop.Imm 0x1000 ]
      ~dst:(Some Reg.Eax) ~src_vals:[ 0x200; 0x1000 ] ()
  in
  Alcotest.(check bool) "not 8-8-8 at 8 bits" false (Uop.is_888_bits ~bits:8 u);
  Alcotest.(check bool) "16-16-16 at 16 bits" true (Uop.is_888_bits ~bits:16 u);
  let cr =
    Uop.make ~id:1 ~pc:0 ~op:Opcode.Add
      ~srcs:[ Uop.Reg Reg.Esi; Uop.Imm 0x20 ]
      ~dst:(Some Reg.Eax) ~src_vals:[ 0x0800_0000; 0x20 ] ()
  in
  Alcotest.(check bool) "8-32-32 at 8" true (Uop.is_8_32_32_bits ~bits:8 cr);
  Alcotest.(check bool) "carry local at 8" true
    (Uop.carry_not_propagated_bits ~bits:8 cr);
  Alcotest.(check bool) "carry local at 16" true
    (Uop.carry_not_propagated_bits ~bits:16 cr)

let test_wider_helper_steers_more () =
  let p = Hc_trace.Profile.find_spec_int "gcc" in
  let tr = Hc_trace.Generator.generate_sliced ~length:5_000 p in
  let run bits =
    let cfg =
      { (Config.with_scheme Config.default (Config.find_scheme "+CR")) with
        Config.narrow_bits = bits }
    in
    Pipeline.run ~cfg ~decide:Hc_steering.Policy.decide
      ~scheme_name:(Printf.sprintf "w%d" bits) tr
  in
  let at8 = run 8 and at16 = run 16 in
  Alcotest.(check bool)
    (Printf.sprintf "16-bit helper hosts more work (%.1f%% vs %.1f%%)"
       (Metrics.steered_pct at16) (Metrics.steered_pct at8))
    true
    (Metrics.steered_pct at16 > Metrics.steered_pct at8);
  Alcotest.(check int) "still commits everything" (Hc_trace.Trace.length tr)
    at16.Metrics.committed

let test_slow_helper_still_correct () =
  let p = Hc_trace.Profile.find_spec_int "gzip" in
  let tr = Hc_trace.Generator.generate_sliced ~length:3_000 p in
  let cfg =
    { (Config.with_scheme Config.default (Config.find_scheme "+IR")) with
      Config.helper_fast_clock = false }
  in
  let m =
    Pipeline.run ~cfg ~decide:Hc_steering.Policy.decide ~scheme_name:"1x" tr
  in
  Alcotest.(check int) "commits everything" (Hc_trace.Trace.length tr)
    m.Metrics.committed

let test_registry () =
  Alcotest.(check int) "eight ablations" 8 (List.length Ablations.all);
  Alcotest.(check string) "find width" "width" (Ablations.find "width").Ablations.id;
  Alcotest.check_raises "unknown" Not_found (fun () ->
      ignore (Ablations.find "nonesuch"))

let test_one_ablation_runs () =
  let rows = (Ablations.find "clock").Ablations.run ~length:2_000 in
  Alcotest.(check int) "two variants" 2 (List.length rows);
  List.iter
    (fun (r : Ablations.row) ->
      Alcotest.(check bool) (r.Ablations.variant ^ " finite") true
        (Float.is_finite r.Ablations.speedup_pct))
    rows;
  Alcotest.(check bool) "renders" true
    (String.length (Ablations.render rows) > 0)

let suite =
  ( "ablations",
    [
      Alcotest.test_case "detector bits" `Quick test_detector_bits;
      Alcotest.test_case "8-bit consistency" `Quick test_bits_consistency;
      Alcotest.test_case "uop shape bits" `Quick test_uop_bits;
      Alcotest.test_case "wider helper steers more" `Quick
        test_wider_helper_steers_more;
      Alcotest.test_case "slow helper correct" `Quick test_slow_helper_still_correct;
      Alcotest.test_case "registry" `Quick test_registry;
      Alcotest.test_case "clock ablation runs" `Slow test_one_ablation_runs;
    ] )
