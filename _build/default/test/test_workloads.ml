(* Tests for the Table-2 application suite. *)

module Workloads = Hc_trace.Workloads
module Profile = Hc_trace.Profile

let test_table2 () =
  Alcotest.(check int) "seven categories" 7 (List.length Workloads.table2);
  let count cat =
    (List.find (fun e -> e.Workloads.category = cat) Workloads.table2)
      .Workloads.count
  in
  Alcotest.(check int) "enc" 62 (count Profile.Encoder);
  Alcotest.(check int) "sfp" 41 (count Profile.Spec_fp);
  Alcotest.(check int) "kernels" 52 (count Profile.Kernels);
  Alcotest.(check int) "mm" 85 (count Profile.Multimedia);
  Alcotest.(check int) "office" 75 (count Profile.Office);
  Alcotest.(check int) "prod" 45 (count Profile.Productivity);
  Alcotest.(check int) "ws" 49 (count Profile.Workstation);
  Alcotest.(check int) "total (the table sums to 409)" 409 Workloads.suite_size

let test_suite_complete () =
  let suite = Workloads.suite () in
  Alcotest.(check int) "all apps present" Workloads.suite_size (List.length suite);
  let names = List.map (fun p -> p.Profile.name) suite in
  Alcotest.(check int) "names unique" Workloads.suite_size
    (List.length (List.sort_uniq String.compare names))

let test_all_apps_valid () =
  List.iter
    (fun p ->
      match Profile.validate p with
      | Ok () -> ()
      | Error msg -> Alcotest.failf "%s: %s" p.Profile.name msg)
    (Workloads.suite ())

let test_deterministic () =
  let a = Workloads.suite () and b = Workloads.suite () in
  List.iter2
    (fun (x : Profile.t) (y : Profile.t) ->
      Alcotest.(check bool) (x.Profile.name ^ " reproducible") true (x = y))
    a b

let test_apps_differ_within_category () =
  let apps = Workloads.category_apps Profile.Multimedia in
  match apps with
  | a :: b :: _ ->
    Alcotest.(check bool) "distinct seeds" true (a.Profile.seed <> b.Profile.seed);
    Alcotest.(check bool) "distinct knobs" true
      (a.Profile.p_narrow_load <> b.Profile.p_narrow_load
      || a.Profile.f_load <> b.Profile.f_load)
  | _ -> Alcotest.fail "expected at least two multimedia apps"

let test_jitter_preserves_validity () =
  let rng = Hc_trace.Rng.create 31L in
  let arch = Profile.archetype Profile.Office in
  for i = 1 to 200 do
    let p = Workloads.jitter rng arch in
    match Profile.validate p with
    | Ok () -> ()
    | Error msg -> Alcotest.failf "jitter %d: %s" i msg
  done

let test_categories_keep_character () =
  (* multimedia apps must stay more narrow-friendly than office apps on
     average — the paper's Fig 14 ordering depends on it *)
  let mean f cat =
    let apps = Workloads.category_apps cat in
    List.fold_left (fun acc p -> acc +. f p) 0. apps
    /. float_of_int (List.length apps)
  in
  let mm = mean (fun p -> p.Profile.p_narrow_chain) Profile.Multimedia in
  let office = mean (fun p -> p.Profile.p_narrow_chain) Profile.Office in
  Alcotest.(check bool)
    (Printf.sprintf "mm narrower than office (%.2f vs %.2f)" mm office)
    true (mm > office)

let suite =
  ( "workloads",
    [
      Alcotest.test_case "table 2" `Quick test_table2;
      Alcotest.test_case "suite complete" `Quick test_suite_complete;
      Alcotest.test_case "all apps valid" `Quick test_all_apps_valid;
      Alcotest.test_case "deterministic" `Quick test_deterministic;
      Alcotest.test_case "apps differ within category" `Quick
        test_apps_differ_within_category;
      Alcotest.test_case "jitter preserves validity" `Quick
        test_jitter_preserves_validity;
      Alcotest.test_case "categories keep character" `Quick
        test_categories_keep_character;
    ] )
