(* Tests for dynamic uops: construction, width shapes, carry checks. *)

module Uop = Hc_isa.Uop
module Opcode = Hc_isa.Opcode
module Reg = Hc_isa.Reg

let mk ?(op = Opcode.Add) ?(dst = Some Reg.Eax) ?result ?mem_addr srcs vals =
  Uop.make ~id:0 ~pc:0x400000 ~op ~srcs ~dst ~src_vals:vals ?result ?mem_addr ()

let test_make_mismatch () =
  Alcotest.check_raises "length mismatch"
    (Invalid_argument "Uop.make: srcs and src_vals lengths differ") (fun () ->
      ignore (mk [ Uop.Reg Reg.Eax ] [ 1; 2 ]))

let test_default_result () =
  let u = mk [ Uop.Reg Reg.Eax; Uop.Imm 2 ] [ 40; 2 ] in
  Alcotest.(check int) "add evaluates" 42 u.Uop.result;
  let u = mk ~op:Opcode.Load [ Uop.Reg Reg.Esi; Uop.Imm 4 ] [ 100; 4 ] in
  Alcotest.(check int) "load has no computed result" 0 u.Uop.result

let test_is_888 () =
  let narrow = mk [ Uop.Reg Reg.Eax; Uop.Imm 2 ] [ 3; 2 ] in
  Alcotest.(check bool) "narrow add" true (Uop.is_888 narrow);
  let wide_src = mk [ Uop.Reg Reg.Eax; Uop.Imm 2 ] [ 0x1_0000; 2 ] in
  Alcotest.(check bool) "wide source" false (Uop.is_888 wide_src);
  let overflow = mk [ Uop.Reg Reg.Eax; Uop.Imm 200 ] [ 200; 200 ] in
  Alcotest.(check bool) "narrow sources, 9-bit result" false (Uop.is_888 overflow);
  let store =
    mk ~op:Opcode.Store ~dst:None
      [ Uop.Reg Reg.Esi; Uop.Imm 4; Uop.Reg Reg.Eax ]
      [ 3; 4; 5 ]
  in
  Alcotest.(check bool) "no-output uop with narrow sources" true (Uop.is_888 store);
  (* a flags writer needs a narrow flags-determining result too: 200 minus
     -100 has narrow sources but a 9-bit difference *)
  let cmp_wide =
    mk ~op:Opcode.Cmp ~dst:None
      [ Uop.Reg Reg.Eax; Uop.Imm 0xFFFF_FF9C ]
      [ 200; 0xFFFF_FF9C ]
  in
  Alcotest.(check bool) "cmp producing wide flags value" false (Uop.is_888 cmp_wide);
  let cmp_narrow =
    mk ~op:Opcode.Cmp ~dst:None [ Uop.Reg Reg.Eax; Uop.Imm 1 ] [ 0; 1 ]
  in
  Alcotest.(check bool) "cmp with narrow difference" true (Uop.is_888 cmp_narrow)

let test_is_8_32_32 () =
  let cr = mk [ Uop.Reg Reg.Esi; Uop.Imm 4 ] [ 0x0800_1234; 4 ] in
  Alcotest.(check bool) "wide+narrow wide result" true (Uop.is_8_32_32 cr);
  let both_narrow = mk [ Uop.Reg Reg.Eax; Uop.Imm 4 ] [ 3; 4 ] in
  Alcotest.(check bool) "both narrow" false (Uop.is_8_32_32 both_narrow);
  let both_wide = mk [ Uop.Reg Reg.Eax; Uop.Imm 0x1_0000 ] [ 0x1_0000; 0x1_0000 ] in
  Alcotest.(check bool) "both wide" false (Uop.is_8_32_32 both_wide);
  let three = mk [ Uop.Reg Reg.Eax; Uop.Imm 4; Uop.Reg Reg.Ecx ] [ 0x1_0000; 4; 5 ] in
  Alcotest.(check bool) "three sources excluded" false (Uop.is_8_32_32 three)

let test_load_shape_uses_address () =
  (* loads: the 8-32-32 "result" is the effective address, not the data *)
  let narrow_data_load =
    mk ~op:Opcode.Load ~mem_addr:0x0800_1238 [ Uop.Reg Reg.Esi; Uop.Imm 4 ]
      [ 0x0800_1234; 4 ] ~result:7
  in
  Alcotest.(check bool) "narrow loaded value still 8-32-32" true
    (Uop.is_8_32_32 narrow_data_load);
  Alcotest.(check bool) "carry not propagated" true
    (Uop.carry_not_propagated narrow_data_load)

let test_carry_not_propagated () =
  let local = mk [ Uop.Reg Reg.Esi; Uop.Imm 0x1C ] [ 0xFFFC_4A02; 0x1C ] in
  Alcotest.(check bool) "Fig 10 example local" true (Uop.carry_not_propagated local);
  let crossing = mk [ Uop.Reg Reg.Esi; Uop.Imm 0x40 ] [ 0xFFFC_40F0; 0x40 ] in
  Alcotest.(check bool) "carry crosses" false (Uop.carry_not_propagated crossing);
  let mul = mk ~op:Opcode.Mul [ Uop.Reg Reg.Esi; Uop.Imm 4 ] [ 0x0800_0000; 4 ] in
  Alcotest.(check bool) "mul never considered" false (Uop.carry_not_propagated mul)

let test_width_accessors () =
  let u = mk [ Uop.Reg Reg.Eax; Uop.Imm 0x1_0000 ] [ 3; 0x1_0000 ] in
  Alcotest.(check bool) "has dest" true (Uop.has_dest u);
  Alcotest.(check (list bool)) "src widths"
    [ true; false ]
    (List.map (fun w -> w = Hc_isa.Width.Narrow) (Uop.src_widths u));
  Alcotest.(check bool) "not all narrow" false (Uop.all_srcs_narrow u);
  Alcotest.(check bool) "writes flags (add)" true (Uop.writes_flags u)

(* property: is_888 implies every source fits the helper datapath *)
let prop_888_sources =
  let gen =
    QCheck.map
      (fun (a, b) ->
        mk [ Uop.Reg Reg.Eax; Uop.Imm (b land 0xFFFF_FFFF) ]
          [ a land 0xFFFF_FFFF; b land 0xFFFF_FFFF ])
      QCheck.(pair (int_range 0 max_int) (int_range 0 max_int))
  in
  QCheck.Test.make ~name:"is_888 implies all sources narrow" gen (fun u ->
      (not (Uop.is_888 u)) || Uop.all_srcs_narrow u)

let prop_8_32_32_excludes_888 =
  let gen =
    QCheck.map
      (fun (a, b) ->
        mk [ Uop.Reg Reg.Eax; Uop.Imm (b land 0xFFFF_FFFF) ]
          [ a land 0xFFFF_FFFF; b land 0xFFFF_FFFF ])
      QCheck.(pair (int_range 0 max_int) (int_range 0 max_int))
  in
  QCheck.Test.make ~name:"8-32-32 and 8-8-8 are disjoint" gen (fun u ->
      not (Uop.is_888 u && Uop.is_8_32_32 u))

let suite =
  ( "uop",
    [
      Alcotest.test_case "constructor validation" `Quick test_make_mismatch;
      Alcotest.test_case "default result" `Quick test_default_result;
      Alcotest.test_case "8-8-8 shape" `Quick test_is_888;
      Alcotest.test_case "8-32-32 shape" `Quick test_is_8_32_32;
      Alcotest.test_case "load shape uses address" `Quick test_load_shape_uses_address;
      Alcotest.test_case "carry not propagated" `Quick test_carry_not_propagated;
      Alcotest.test_case "width accessors" `Quick test_width_accessors;
      QCheck_alcotest.to_alcotest prop_888_sources;
      QCheck_alcotest.to_alcotest prop_8_32_32_excludes_888;
    ] )
