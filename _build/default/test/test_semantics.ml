(* Tests for opcode evaluation. *)

module Semantics = Hc_isa.Semantics
module Opcode = Hc_isa.Opcode

let ev op vals = Semantics.eval op vals

let check_some name expected got =
  Alcotest.(check (option int)) name (Some expected) got

let test_arith () =
  check_some "add" 7 (ev Opcode.Add [ 3; 4 ]);
  check_some "add wraps" 0 (ev Opcode.Add [ 0xFFFF_FFFF; 1 ]);
  check_some "sub" 0xFFFF_FFFF (ev Opcode.Sub [ 3; 4 ]);
  check_some "cmp like sub" 1 (ev Opcode.Cmp [ 5; 4 ]);
  check_some "lea like add" 9 (ev Opcode.Lea [ 4; 5 ]);
  check_some "mul" 12 (ev Opcode.Mul [ 3; 4 ]);
  check_some "mul wraps" 0xFFFF_FFFE (ev Opcode.Mul [ 2; 0xFFFF_FFFF ]);
  check_some "div" 3 (ev Opcode.Div [ 13; 4 ]);
  check_some "div by zero" 0 (ev Opcode.Div [ 13; 0 ])

let test_logic () =
  check_some "and" 0x0F (ev Opcode.And [ 0xFF; 0x0F ]);
  check_some "or" 0xFF (ev Opcode.Or [ 0xF0; 0x0F ]);
  check_some "xor" 0xFF (ev Opcode.Xor [ 0xF0; 0x0F ]);
  check_some "shl" 0x100 (ev Opcode.Shl [ 0x80; 1 ]);
  check_some "shl wraps" 0xFFFF_FF00 (ev Opcode.Shl [ 0xFFFF_FFFF; 8 ]);
  check_some "shr" 0x7F (ev Opcode.Shr [ 0xFF; 1 ])

let test_moves () =
  check_some "mov" 42 (ev Opcode.Mov [ 42 ]);
  check_some "copy" 42 (ev Opcode.Copy [ 42 ])

let test_no_result () =
  let none name op vals =
    Alcotest.(check (option int)) name None (ev op vals)
  in
  none "load" Opcode.Load [ 1; 2 ];
  none "store" Opcode.Store [ 1; 2; 3 ];
  none "jcc" Opcode.Branch_cond [ 1 ];
  none "jmp" Opcode.Branch_uncond [];
  none "fadd" Opcode.Fp_add [ 1; 2 ];
  none "nop" Opcode.Nop [];
  none "add missing sources" Opcode.Add [ 1 ];
  none "mov missing source" Opcode.Mov []

let gen32 = QCheck.map (fun v -> v land 0xFFFF_FFFF) (QCheck.int_range 0 max_int)

let prop_results_in_range =
  QCheck.Test.make ~name:"all results fit 32 bits"
    (QCheck.pair gen32 gen32)
    (fun (a, b) ->
      List.for_all
        (fun op ->
          match ev op [ a; b ] with
          | Some r -> r >= 0 && r <= 0xFFFF_FFFF
          | None -> true)
        Opcode.all)

let prop_xor_involution =
  QCheck.Test.make ~name:"xor twice is identity" (QCheck.pair gen32 gen32)
    (fun (a, b) ->
      match ev Opcode.Xor [ a; b ] with
      | Some x -> ev Opcode.Xor [ x; b ] = Some a
      | None -> false)

let suite =
  ( "semantics",
    [
      Alcotest.test_case "arithmetic" `Quick test_arith;
      Alcotest.test_case "logic" `Quick test_logic;
      Alcotest.test_case "moves" `Quick test_moves;
      Alcotest.test_case "no result" `Quick test_no_result;
      QCheck_alcotest.to_alcotest prop_results_in_range;
      QCheck_alcotest.to_alcotest prop_xor_involution;
    ] )
