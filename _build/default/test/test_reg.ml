(* Tests for architectural register encoding. *)

module Reg = Hc_isa.Reg

let test_roundtrip () =
  for i = 0 to Reg.count - 1 do
    Alcotest.(check int)
      (Printf.sprintf "index %d" i)
      i
      (Reg.to_index (Reg.of_index i))
  done

let test_out_of_range () =
  Alcotest.check_raises "negative" (Invalid_argument "Reg.of_index: -1")
    (fun () -> ignore (Reg.of_index (-1)));
  Alcotest.check_raises "too large"
    (Invalid_argument (Printf.sprintf "Reg.of_index: %d" Reg.count))
    (fun () -> ignore (Reg.of_index Reg.count))

let test_gprs () =
  Alcotest.(check int) "eight GPRs" 8 (List.length Reg.gprs);
  List.iteri
    (fun i r -> Alcotest.(check int) (Reg.to_string r) i (Reg.to_index r))
    Reg.gprs

let test_equality () =
  Alcotest.(check bool) "equal" true (Reg.equal Reg.Eax Reg.Eax);
  Alcotest.(check bool) "distinct" false (Reg.equal Reg.Eax Reg.Ecx);
  Alcotest.(check bool) "tmp equal" true (Reg.equal (Reg.Tmp 3) (Reg.Tmp 3));
  Alcotest.(check bool) "tmp distinct" false (Reg.equal (Reg.Tmp 3) (Reg.Tmp 4));
  Alcotest.(check int) "compare reflexive" 0 (Reg.compare Reg.Esi Reg.Esi)

let test_names_unique () =
  let names = List.init Reg.count (fun i -> Reg.to_string (Reg.of_index i)) in
  let sorted = List.sort_uniq String.compare names in
  Alcotest.(check int) "unique names" Reg.count (List.length sorted)

let suite =
  ( "reg",
    [
      Alcotest.test_case "index roundtrip" `Quick test_roundtrip;
      Alcotest.test_case "out of range" `Quick test_out_of_range;
      Alcotest.test_case "gprs" `Quick test_gprs;
      Alcotest.test_case "equality" `Quick test_equality;
      Alcotest.test_case "names unique" `Quick test_names_unique;
    ] )
