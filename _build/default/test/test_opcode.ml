(* Table-driven consistency tests over every opcode. *)

module Opcode = Hc_isa.Opcode

let all = Opcode.all

let test_latency_positive () =
  List.iter
    (fun op ->
      Alcotest.(check bool)
        (Opcode.to_string op ^ " latency > 0")
        true
        (Opcode.latency op > 0))
    all

let test_exec_class_consistency () =
  List.iter
    (fun op ->
      let cls = Opcode.exec_class op in
      Alcotest.(check bool)
        (Opcode.to_string op ^ " memory class iff is_memory")
        (Opcode.is_memory op)
        (cls = Opcode.Mem);
      Alcotest.(check bool)
        (Opcode.to_string op ^ " branch class iff is_branch")
        (Opcode.is_branch op)
        (cls = Opcode.Ctrl);
      Alcotest.(check bool)
        (Opcode.to_string op ^ " fp class iff is_fp")
        (Opcode.is_fp op)
        (cls = Opcode.Fp))
    all

let test_carry_eligibility () =
  (* §3.5: multiply and divide are explicitly excluded *)
  Alcotest.(check bool) "mul excluded" false (Opcode.carry_eligible Opcode.Mul);
  Alcotest.(check bool) "div excluded" false (Opcode.carry_eligible Opcode.Div);
  Alcotest.(check bool) "add eligible" true (Opcode.carry_eligible Opcode.Add);
  Alcotest.(check bool) "load eligible" true (Opcode.carry_eligible Opcode.Load);
  List.iter
    (fun op ->
      if Opcode.carry_eligible op then
        Alcotest.(check bool)
          (Opcode.to_string op ^ " carry-eligible ops are additive classes")
          true
          (Opcode.exec_class op = Opcode.Int_alu || Opcode.is_memory op))
    all

let test_splittable_subset () =
  List.iter
    (fun op ->
      if Opcode.splittable op then
        Alcotest.(check bool)
          (Opcode.to_string op ^ " splittable implies single-cycle int ALU")
          true
          (Opcode.exec_class op = Opcode.Int_alu && Opcode.latency op = 1))
    all

let test_flags () =
  Alcotest.(check bool) "cmp writes flags" true (Opcode.writes_flags Opcode.Cmp);
  Alcotest.(check bool) "mov does not" false (Opcode.writes_flags Opcode.Mov);
  Alcotest.(check bool) "jcc reads flags" true (Opcode.reads_flags Opcode.Branch_cond);
  List.iter
    (fun op ->
      if Opcode.reads_flags op then
        Alcotest.(check bool)
          (Opcode.to_string op ^ " only conditional branches read flags")
          true (op = Opcode.Branch_cond))
    all

let test_names_unique () =
  let names = List.map Opcode.to_string all in
  Alcotest.(check int) "unique" (List.length all)
    (List.length (List.sort_uniq String.compare names))

let test_long_latency () =
  Alcotest.(check bool) "div slowest int" true
    (Opcode.latency Opcode.Div > Opcode.latency Opcode.Mul);
  Alcotest.(check bool) "mul slower than add" true
    (Opcode.latency Opcode.Mul > Opcode.latency Opcode.Add)

let suite =
  ( "opcode",
    [
      Alcotest.test_case "latency positive" `Quick test_latency_positive;
      Alcotest.test_case "exec class consistency" `Quick test_exec_class_consistency;
      Alcotest.test_case "carry eligibility" `Quick test_carry_eligibility;
      Alcotest.test_case "splittable subset" `Quick test_splittable_subset;
      Alcotest.test_case "flags" `Quick test_flags;
      Alcotest.test_case "names unique" `Quick test_names_unique;
      Alcotest.test_case "latency ordering" `Quick test_long_latency;
    ] )
