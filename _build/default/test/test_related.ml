(* Tests for the §4 comparator machinery: register replication and
   replay-based recovery (the ICS'05 asymmetric cluster). *)

module Config = Hc_sim.Config
module Pipeline = Hc_sim.Pipeline
module Metrics = Hc_sim.Metrics
module Counter = Hc_stats.Counter

let trace =
  lazy
    (Hc_trace.Generator.generate_sliced ~length:6_000
       (Hc_trace.Profile.find_spec_int "gcc"))

let run cfg name =
  Pipeline.run ~cfg ~decide:Hc_steering.Policy.decide ~scheme_name:name
    (Lazy.force trace)

let test_ics05_config () =
  ( match Config.validate Config.ics05 with
  | Ok () -> ()
  | Error msg -> Alcotest.fail msg );
  Alcotest.(check int) "20-bit narrow cluster" 20 Config.ics05.Config.narrow_bits;
  Alcotest.(check bool) "same clock" false Config.ics05.Config.helper_fast_clock;
  Alcotest.(check bool) "replicated" true Config.ics05.Config.replicated_regfile;
  Alcotest.(check bool) "replay" true Config.ics05.Config.replay_recovery;
  Alcotest.(check bool) "ungated prediction" false
    Config.ics05.Config.confidence_gate

let test_replication_kills_copies () =
  let m = run Config.ics05 "ics05" in
  Alcotest.(check int) "commits all" 6_000 m.Metrics.committed;
  Alcotest.(check int) "no copy uops ever" 0 m.Metrics.copies;
  Alcotest.(check bool) "still steers" true (m.Metrics.steered_narrow > 0)

let test_replay_instead_of_flush () =
  let m = run Config.ics05 "ics05" in
  Alcotest.(check int) "no flushes" 0
    (Counter.get m.Metrics.counters "width_flush");
  (* ungated 20-bit prediction mispredicts sometimes: replays must occur *)
  Alcotest.(check bool) "some replays" true
    (Counter.get m.Metrics.counters "replay" > 0);
  Alcotest.(check bool) "replays match fatal classifications" true
    (Counter.get m.Metrics.counters "replay" = m.Metrics.wpred_fatal)

let test_replay_cheaper_than_flush () =
  (* same machine and steering, only the recovery scheme differs *)
  let with_flush = { Config.ics05 with Config.replay_recovery = false } in
  let a = run Config.ics05 "replay" in
  let b = run with_flush "flush" in
  Alcotest.(check bool)
    (Printf.sprintf "replay not slower (%d vs %d ticks)" a.Metrics.ticks
       b.Metrics.ticks)
    true
    (a.Metrics.ticks <= b.Metrics.ticks)

let test_replication_on_this_papers_machine () =
  (* replication also composes with the helper-cluster scheme stack *)
  let cfg =
    { (Config.with_scheme Config.default (Config.find_scheme "+CR")) with
      Config.replicated_regfile = true }
  in
  let m = run cfg "+CR/replicated" in
  Alcotest.(check int) "commits all" 6_000 m.Metrics.committed;
  Alcotest.(check int) "no copies" 0 m.Metrics.copies

let suite =
  ( "related",
    [
      Alcotest.test_case "ics05 config" `Quick test_ics05_config;
      Alcotest.test_case "replication kills copies" `Quick
        test_replication_kills_copies;
      Alcotest.test_case "replay instead of flush" `Quick
        test_replay_instead_of_flush;
      Alcotest.test_case "replay cheaper than flush" `Quick
        test_replay_cheaper_than_flush;
      Alcotest.test_case "replication composes" `Quick
        test_replication_on_this_papers_machine;
    ] )
