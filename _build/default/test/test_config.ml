(* Tests for machine configuration and scheme selection. *)

module Config = Hc_sim.Config

let ok name cfg =
  match Config.validate cfg with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "%s: %s" name msg

let err name cfg =
  match Config.validate cfg with
  | Ok () -> Alcotest.failf "%s: expected rejection" name
  | Error _ -> ()

let test_default_valid () =
  ok "default" Config.default;
  ok "baseline" Config.baseline

let test_validate_rejects () =
  err "zero issue" { Config.default with Config.issue_width = 0 };
  err "negative penalty" { Config.default with Config.branch_penalty = -1 };
  err "bad imbalance" { Config.default with Config.imbalance_threshold = 2. };
  err "inverted hierarchy" { Config.default with Config.ul1_latency = 1 };
  err "memory faster than ul1" { Config.default with Config.mem_latency = 5 }

let test_scheme_stack () =
  Alcotest.(check (list string)) "paper order"
    [ "8_8_8"; "+BR"; "+LR"; "+CR"; "+CP"; "+IR"; "+IR(nodest)" ]
    (List.map fst Config.scheme_stack);
  (* each step includes the previous techniques *)
  let implies a b = (not a) || b in
  let rec pairwise = function
    | (na, a) :: ((_, b) :: _ as rest) ->
      Alcotest.(check bool) (na ^ " cumulative s888") true
        (implies a.Config.s888 b.Config.s888);
      Alcotest.(check bool) (na ^ " cumulative br") true
        (implies a.Config.br b.Config.br);
      Alcotest.(check bool) (na ^ " cumulative lr") true
        (implies a.Config.lr b.Config.lr);
      Alcotest.(check bool) (na ^ " cumulative cr") true
        (implies a.Config.cr b.Config.cr);
      pairwise rest
    | [ _ ] | [] -> ()
  in
  pairwise Config.scheme_stack

let test_monolithic () =
  Alcotest.(check bool) "no helper" false Config.monolithic.Config.helper;
  Alcotest.(check bool) "baseline config uses it" false
    Config.baseline.Config.scheme.Config.helper

let test_find_scheme () =
  Alcotest.(check bool) "baseline" true
    (Config.find_scheme "baseline" = Config.monolithic);
  Alcotest.(check bool) "+IR has splitting" true
    ((Config.find_scheme "+IR").Config.ir = Config.Ir_all);
  Alcotest.(check bool) "nodest variant" true
    ((Config.find_scheme "+IR(nodest)").Config.ir = Config.Ir_no_dest);
  Alcotest.check_raises "unknown" Not_found (fun () ->
      ignore (Config.find_scheme "nonesuch"))

let test_with_scheme () =
  let cfg = Config.with_scheme Config.default Config.monolithic in
  Alcotest.(check bool) "scheme replaced" false cfg.Config.scheme.Config.helper;
  Alcotest.(check int) "machine untouched" Config.default.Config.iq_size
    cfg.Config.iq_size

let test_table1_parameters () =
  (* the Table-1 machine *)
  let c = Config.default in
  Alcotest.(check int) "32-entry scheduler" 32 c.Config.iq_size;
  Alcotest.(check int) "3-issue" 3 c.Config.issue_width;
  Alcotest.(check int) "commit 6" 6 c.Config.commit_width;
  Alcotest.(check int) "DL0 3 cycles" 3 c.Config.dl0_latency;
  Alcotest.(check int) "UL1 13 cycles" 13 c.Config.ul1_latency;
  Alcotest.(check int) "memory 450 cycles" 450 c.Config.mem_latency;
  Alcotest.(check int) "256-entry width predictor" 256 c.Config.wpred_entries;
  Alcotest.(check int) "2-bit confidence" 2 c.Config.conf_bits

let suite =
  ( "config",
    [
      Alcotest.test_case "defaults valid" `Quick test_default_valid;
      Alcotest.test_case "validation rejects" `Quick test_validate_rejects;
      Alcotest.test_case "scheme stack" `Quick test_scheme_stack;
      Alcotest.test_case "monolithic" `Quick test_monolithic;
      Alcotest.test_case "find scheme" `Quick test_find_scheme;
      Alcotest.test_case "with_scheme" `Quick test_with_scheme;
      Alcotest.test_case "Table 1 parameters" `Quick test_table1_parameters;
    ] )
