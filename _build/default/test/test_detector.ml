(* Tests for the consecutive zero/one detection circuits (Fig 3). *)

module Detector = Hc_isa.Detector

let check_bool = Alcotest.(check bool)

let test_zeros_above () =
  check_bool "zero value" true (Detector.zeros_above 0 0);
  check_bool "bit below anchor ignored" true (Detector.zeros_above 8 0xFF);
  check_bool "bit at anchor detected" false (Detector.zeros_above 8 0x100);
  check_bool "high bit detected" false (Detector.zeros_above 8 0x8000_0000);
  check_bool "anchor 32 always true" true (Detector.zeros_above 32 0xFFFF_FFFF)

let test_ones_above () =
  check_bool "all ones" true (Detector.ones_above 0 0xFFFF_FFFF);
  check_bool "low bits ignored" true (Detector.ones_above 8 0xFFFF_FF00);
  check_bool "hole detected" false (Detector.ones_above 8 0xFFFF_0000);
  check_bool "anchor 32 always true" true (Detector.ones_above 32 0)

let test_narrow8_boundaries () =
  check_bool "0 narrow" true (Detector.narrow8 0);
  check_bool "0xFF narrow (leading zeros)" true (Detector.narrow8 0xFF);
  check_bool "0x100 wide" false (Detector.narrow8 0x100);
  check_bool "-1 pattern narrow (leading ones)" true (Detector.narrow8 0xFFFF_FFFF);
  check_bool "0xFFFFFF00 narrow" true (Detector.narrow8 0xFFFF_FF00);
  check_bool "0xFFFFFE00 wide" false (Detector.narrow8 0xFFFF_FE00);
  check_bool "0x80000000 wide" false (Detector.narrow8 0x8000_0000)

let test_narrow8_unsigned () =
  check_bool "0xFF narrow" true (Detector.narrow8_unsigned 0xFF);
  check_bool "negative pattern wide" false (Detector.narrow8_unsigned 0xFFFF_FFFF)

let gen32 = QCheck.map (fun v -> v land 0xFFFF_FFFF) (QCheck.int_range 0 max_int)

let prop_narrow8_spec =
  QCheck.Test.make ~name:"narrow8 = upper 24 bits are a sign run" gen32 (fun v ->
      Detector.narrow8 v = (v lsr 8 = 0 || v lsr 8 = 0xFF_FFFF))

let prop_unsigned_spec =
  QCheck.Test.make ~name:"narrow8_unsigned = value < 256" gen32 (fun v ->
      Detector.narrow8_unsigned v = (v < 0x100))

let prop_zeros_monotone =
  QCheck.Test.make ~name:"zeros_above monotone in anchor"
    (QCheck.pair gen32 (QCheck.int_range 0 31))
    (fun (v, k) ->
      (not (Detector.zeros_above k v)) || Detector.zeros_above (k + 1) v)

let suite =
  ( "detector",
    [
      Alcotest.test_case "zeros above" `Quick test_zeros_above;
      Alcotest.test_case "ones above" `Quick test_ones_above;
      Alcotest.test_case "narrow8 boundaries" `Quick test_narrow8_boundaries;
      Alcotest.test_case "narrow8 unsigned" `Quick test_narrow8_unsigned;
      QCheck_alcotest.to_alcotest prop_narrow8_spec;
      QCheck_alcotest.to_alcotest prop_unsigned_spec;
      QCheck_alcotest.to_alcotest prop_zeros_monotone;
    ] )
