(* Tests for width classification. *)

module Width = Hc_isa.Width

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_classify () =
  check_bool "0 narrow" true (Width.is_narrow 0);
  check_bool "255 narrow" true (Width.is_narrow 255);
  check_bool "256 wide" false (Width.is_narrow 256);
  Alcotest.(check string) "to_string" "narrow" (Width.to_string Width.Narrow);
  Alcotest.(check string) "to_string wide" "wide" (Width.to_string Width.Wide);
  check_bool "equal" true (Width.equal Width.Narrow Width.Narrow);
  check_bool "not equal" false (Width.equal Width.Narrow Width.Wide)

let test_significant_bytes () =
  check_int "0" 1 (Width.significant_bytes 0);
  check_int "0x7F one byte signed" 1 (Width.significant_bytes 0x7F);
  check_int "0xFF needs two signed" 2 (Width.significant_bytes 0xFF);
  check_int "all ones one byte signed" 1 (Width.significant_bytes 0xFFFF_FFFF);
  check_int "0x7FFF two" 2 (Width.significant_bytes 0x7FFF);
  check_int "0x8000 three" 3 (Width.significant_bytes 0x8000);
  check_int "0x7FFFFF three" 3 (Width.significant_bytes 0x7F_FFFF);
  check_int "0x800000 four" 4 (Width.significant_bytes 0x80_0000);
  check_int "max four" 4 (Width.significant_bytes 0x7FFF_FFFF)

let test_significant_bytes_unsigned () =
  check_int "0" 1 (Width.significant_bytes_unsigned 0);
  check_int "0xFF one" 1 (Width.significant_bytes_unsigned 0xFF);
  check_int "0x100 two" 2 (Width.significant_bytes_unsigned 0x100);
  check_int "0xFFFF two" 2 (Width.significant_bytes_unsigned 0xFFFF);
  check_int "0x10000 three" 3 (Width.significant_bytes_unsigned 0x1_0000);
  check_int "0x1000000 four" 4 (Width.significant_bytes_unsigned 0x100_0000)

let test_narrow_fraction () =
  Alcotest.(check (float 1e-9)) "empty" 0. (Width.narrow_fraction []);
  Alcotest.(check (float 1e-9)) "half" 0.5 (Width.narrow_fraction [ 1; 0x1234 ]);
  Alcotest.(check (float 1e-9)) "all" 1. (Width.narrow_fraction [ 0; 1; 255 ])

let gen32 = QCheck.map (fun v -> v land 0xFFFF_FFFF) (QCheck.int_range 0 max_int)

let prop_bytes_range =
  QCheck.Test.make ~name:"significant_bytes in 1..4" gen32 (fun v ->
      let n = Width.significant_bytes v in
      n >= 1 && n <= 4)

let prop_narrow_iff_one_signed_byte =
  QCheck.Test.make ~name:"narrow iff one signed byte suffices" gen32 (fun v ->
      Width.is_narrow v = (Width.significant_bytes v = 1))

let prop_unsigned_le_signed_plus_one =
  QCheck.Test.make ~name:"unsigned bytes <= signed bytes + 1" gen32 (fun v ->
      Width.significant_bytes_unsigned v <= Width.significant_bytes v + 1)

let suite =
  ( "width",
    [
      Alcotest.test_case "classify" `Quick test_classify;
      Alcotest.test_case "significant bytes (signed)" `Quick test_significant_bytes;
      Alcotest.test_case "significant bytes (unsigned)" `Quick
        test_significant_bytes_unsigned;
      Alcotest.test_case "narrow fraction" `Quick test_narrow_fraction;
      QCheck_alcotest.to_alcotest prop_bytes_range;
      QCheck_alcotest.to_alcotest prop_narrow_iff_one_signed_byte;
      QCheck_alcotest.to_alcotest prop_unsigned_le_signed_plus_one;
    ] )
