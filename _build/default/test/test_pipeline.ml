(* Integration tests: whole-trace simulations under every scheme, checking
   the structural invariants a correct pipeline must keep. *)

module Config = Hc_sim.Config
module Pipeline = Hc_sim.Pipeline
module Metrics = Hc_sim.Metrics
module Counter = Hc_stats.Counter
module Generator = Hc_trace.Generator
module Profile = Hc_trace.Profile
module Trace = Hc_trace.Trace

let trace_of ?(length = 4_000) name =
  Generator.generate_sliced ~length (Profile.find_spec_int name)

let run ?cfg scheme trace =
  let cfg =
    match cfg with
    | Some c -> c
    | None -> Config.with_scheme Config.default (Config.find_scheme scheme)
  in
  Pipeline.run ~cfg ~decide:Hc_steering.Policy.decide ~scheme_name:scheme trace

let all_schemes = List.map fst Hc_steering.Policy.stack

let test_commits_whole_trace () =
  let t = trace_of "gcc" in
  List.iter
    (fun scheme ->
      let m = run scheme t in
      Alcotest.(check int)
        (scheme ^ " commits every trace uop")
        (Trace.length t) m.Metrics.committed)
    all_schemes

let test_baseline_is_monolithic () =
  let t = trace_of "gzip" in
  let m = run "baseline" t in
  Alcotest.(check int) "no copies" 0 m.Metrics.copies;
  Alcotest.(check int) "nothing steered" 0 m.Metrics.steered_narrow;
  Alcotest.(check int) "no splits" 0 m.Metrics.split_uops;
  Alcotest.(check int) "no fatal mispredictions" 0 m.Metrics.wpred_fatal;
  Alcotest.(check int) "no narrow issues" 0
    (Counter.get m.Metrics.counters "issue_narrow");
  Alcotest.(check int) "no imbalance samples" 0
    (m.Metrics.nready_w2n + m.Metrics.nready_n2w)

let test_helper_schemes_steer () =
  let t = trace_of "gcc" in
  List.iter
    (fun scheme ->
      if scheme <> "baseline" then begin
        let m = run scheme t in
        Alcotest.(check bool) (scheme ^ " steers some uops") true
          (m.Metrics.steered_narrow > 0)
      end)
    all_schemes

let test_determinism () =
  let t = trace_of "vpr" in
  let a = run "+CR" t and b = run "+CR" t in
  Alcotest.(check int) "same ticks" a.Metrics.ticks b.Metrics.ticks;
  Alcotest.(check int) "same copies" a.Metrics.copies b.Metrics.copies;
  Alcotest.(check int) "same fatal count" a.Metrics.wpred_fatal b.Metrics.wpred_fatal

let test_fatal_matches_flushes () =
  let t = trace_of "crafty" in
  List.iter
    (fun scheme ->
      let m = run scheme t in
      Alcotest.(check int)
        (scheme ^ " one flush per fatal misprediction")
        m.Metrics.wpred_fatal
        (Counter.get m.Metrics.counters "width_flush"))
    [ "8_8_8"; "+CR"; "+IR" ]

let test_prefetch_accounting () =
  let t = trace_of "gcc" in
  let m = run "+CP" t in
  Alcotest.(check bool) "some prefetches issued" true (m.Metrics.prefetch_copies > 0);
  Alcotest.(check bool) "useful <= issued" true
    (m.Metrics.prefetch_useful <= m.Metrics.prefetch_copies);
  Alcotest.(check bool) "prefetches are copies" true
    (m.Metrics.prefetch_copies <= m.Metrics.copies);
  let no_cp = run "+CR" t in
  Alcotest.(check int) "CR stack has no prefetches" 0 no_cp.Metrics.prefetch_copies

let test_splits_only_with_ir () =
  let t = trace_of "bzip2" in
  List.iter
    (fun scheme ->
      let m = run scheme t in
      let expect_splits =
        scheme = "+IR" || scheme = "+IR(nodest)"
      in
      if not expect_splits then
        Alcotest.(check int) (scheme ^ " no splits") 0 m.Metrics.split_uops)
    all_schemes

let test_cycles_positive_and_bounded () =
  let t = trace_of "mcf" in
  List.iter
    (fun scheme ->
      let m = run scheme t in
      Alcotest.(check bool) (scheme ^ " progress") true (m.Metrics.ticks > 0);
      Alcotest.(check bool)
        (scheme ^ " ipc sane")
        true
        (Metrics.ipc m > 0.01 && Metrics.ipc m <= 6.))
    all_schemes

let test_steered_le_committed () =
  let t = trace_of "parser" in
  List.iter
    (fun scheme ->
      let m = run scheme t in
      Alcotest.(check bool) (scheme ^ " steered <= committed") true
        (m.Metrics.steered_narrow <= m.Metrics.committed))
    all_schemes

let test_wpred_outcomes_cover_value_producers () =
  let t = trace_of "gap" in
  let m = run "8_8_8" t in
  let outcomes =
    m.Metrics.wpred_correct + m.Metrics.wpred_fatal + m.Metrics.wpred_nonfatal
  in
  (* every committed value-producing uop is classified at least once;
     resteered uops classify twice, so outcomes >= producers *)
  let producers =
    Trace.fold
      (fun acc u ->
        if Hc_isa.Uop.has_dest u || Hc_isa.Uop.writes_flags u then acc + 1 else acc)
      0 t
  in
  Alcotest.(check bool)
    (Printf.sprintf "classifications (%d) cover producers (%d)" outcomes producers)
    true
    (outcomes >= producers)

let test_confidence_gate_reduces_fatal () =
  (* the paper's 2.11% -> 0.83% claim, as a direction *)
  let t = trace_of ~length:8_000 "gcc" in
  let gated = run "+CR" t in
  let cfg =
    { (Config.with_scheme Config.default (Config.find_scheme "+CR")) with
      Config.confidence_gate = false }
  in
  let ungated = run ~cfg "+CR" t in
  Alcotest.(check bool)
    (Printf.sprintf "gated fatal (%.2f%%) < ungated (%.2f%%)"
       (Metrics.wpred_fatal_pct gated)
       (Metrics.wpred_fatal_pct ungated))
    true
    (Metrics.wpred_fatal_pct gated < Metrics.wpred_fatal_pct ungated)

let test_lr_reduces_copies () =
  let t = trace_of ~length:8_000 "gcc" in
  let br = run "+BR" t in
  let lr = run "+LR" t in
  Alcotest.(check bool)
    (Printf.sprintf "LR cuts copies (%.1f%% -> %.1f%%)" (Metrics.copy_pct br)
       (Metrics.copy_pct lr))
    true
    (Metrics.copy_pct lr < Metrics.copy_pct br)

let test_br_reduces_copies_and_steers_more () =
  let t = trace_of ~length:8_000 "gcc" in
  let base = run "8_8_8" t in
  let br = run "+BR" t in
  Alcotest.(check bool) "BR steers more" true
    (Metrics.steered_pct br > Metrics.steered_pct base);
  Alcotest.(check bool) "BR cuts copies" true
    (Metrics.copy_pct br < Metrics.copy_pct base)

let test_cr_steers_more () =
  let t = trace_of ~length:8_000 "gcc" in
  let lr = run "+LR" t in
  let cr = run "+CR" t in
  Alcotest.(check bool) "CR steers more than LR" true
    (Metrics.steered_pct cr > Metrics.steered_pct lr)

let test_custom_machine () =
  (* a helper with no confidence gating still completes correctly *)
  let t = trace_of ~length:2_000 "eon" in
  let cfg =
    { (Config.with_scheme Config.default (Config.find_scheme "+IR")) with
      Config.confidence_gate = false; iq_size = 8; rob_size = 32;
      decode_width = 2; commit_width = 2; mob_size = 8 }
  in
  let m = run ~cfg "+IR" t in
  Alcotest.(check int) "tiny machine still commits all" (Trace.length t)
    m.Metrics.committed

let test_invalid_config_rejected () =
  let t = trace_of ~length:100 "eon" in
  let cfg = { Config.default with Config.issue_width = 0 } in
  Alcotest.check_raises "invalid config"
    (Invalid_argument "Pipeline: issue_width = 0 must be positive") (fun () ->
      ignore (run ~cfg "+IR" t))

let suite =
  ( "pipeline",
    [
      Alcotest.test_case "commits whole trace" `Quick test_commits_whole_trace;
      Alcotest.test_case "baseline is monolithic" `Quick test_baseline_is_monolithic;
      Alcotest.test_case "helper schemes steer" `Quick test_helper_schemes_steer;
      Alcotest.test_case "determinism" `Quick test_determinism;
      Alcotest.test_case "fatal = flush count" `Quick test_fatal_matches_flushes;
      Alcotest.test_case "prefetch accounting" `Quick test_prefetch_accounting;
      Alcotest.test_case "splits only with IR" `Quick test_splits_only_with_ir;
      Alcotest.test_case "cycles sane" `Quick test_cycles_positive_and_bounded;
      Alcotest.test_case "steered <= committed" `Quick test_steered_le_committed;
      Alcotest.test_case "prediction coverage" `Quick
        test_wpred_outcomes_cover_value_producers;
      Alcotest.test_case "confidence gate reduces fatal" `Quick
        test_confidence_gate_reduces_fatal;
      Alcotest.test_case "LR reduces copies" `Quick test_lr_reduces_copies;
      Alcotest.test_case "BR trajectory" `Quick test_br_reduces_copies_and_steers_more;
      Alcotest.test_case "CR steers more" `Quick test_cr_steers_more;
      Alcotest.test_case "tiny custom machine" `Quick test_custom_machine;
      Alcotest.test_case "invalid config rejected" `Quick test_invalid_config_rejected;
    ] )
