(* Tests for the prediction hardware: confidence counters, the width
   predictor, and the CR/CP extension bits. *)

module Confidence = Hc_predictors.Confidence
module Width_predictor = Hc_predictors.Width_predictor
module Carry_predictor = Hc_predictors.Carry_predictor
module Copy_predictor = Hc_predictors.Copy_predictor
module Bundle = Hc_predictors.Bundle

let test_confidence () =
  let c = Confidence.create () in
  Alcotest.(check int) "starts at 0" 0 (Confidence.value c);
  Alcotest.(check int) "2-bit max" 3 (Confidence.max_value c);
  Alcotest.(check bool) "not high initially" false (Confidence.is_high c);
  for _ = 1 to 5 do Confidence.strengthen c done;
  Alcotest.(check int) "saturates" 3 (Confidence.value c);
  Alcotest.(check bool) "high when saturated" true (Confidence.is_high c);
  Alcotest.(check bool) "threshold override" true (Confidence.is_high ~threshold:2 c);
  Confidence.weaken c;
  Alcotest.(check int) "weaken clears" 0 (Confidence.value c);
  Alcotest.check_raises "bits < 1" (Invalid_argument "Confidence.create: bits < 1")
    (fun () -> ignore (Confidence.create ~bits:0 ()))

let test_width_learns () =
  let t = Width_predictor.create () in
  let pc = 0x400100 in
  let p0 = Width_predictor.predict t pc in
  Alcotest.(check bool) "cold entry not confident" false p0.Width_predictor.confident;
  for _ = 1 to 4 do Width_predictor.update t pc ~narrow:true done;
  let p = Width_predictor.predict t pc in
  Alcotest.(check bool) "learned narrow" true p.Width_predictor.narrow;
  Alcotest.(check bool) "confident after stability" true p.Width_predictor.confident;
  Width_predictor.update t pc ~narrow:false;
  let p = Width_predictor.predict t pc in
  Alcotest.(check bool) "flip updates width" false p.Width_predictor.narrow;
  Alcotest.(check bool) "flip clears confidence" false p.Width_predictor.confident;
  Alcotest.(check bool) "probe agrees" true
    (Width_predictor.accuracy_probe t pc ~narrow:false)

let test_width_aliasing () =
  (* tagless table: pcs 1024 bytes apart with 256 entries and 4-byte
     strides share an entry *)
  let t = Width_predictor.create ~entries:256 () in
  let pc_a = 0x400000 and pc_b = 0x400000 + (256 * 4) in
  for _ = 1 to 4 do Width_predictor.update t pc_a ~narrow:true done;
  let p = Width_predictor.predict t pc_b in
  Alcotest.(check bool) "aliased entry visible" true p.Width_predictor.narrow;
  Width_predictor.update t pc_b ~narrow:false;
  let p = Width_predictor.predict t pc_a in
  Alcotest.(check bool) "aliasing destroys the neighbour" false
    p.Width_predictor.narrow

let test_width_sizes () =
  Alcotest.(check int) "default 256" 256 (Width_predictor.entries (Width_predictor.create ()));
  Alcotest.check_raises "bad size"
    (Invalid_argument "Width_predictor.create: entries <= 0") (fun () ->
      ignore (Width_predictor.create ~entries:0 ()))

let test_carry () =
  let t = Carry_predictor.create () in
  let pc = 0x400200 in
  for _ = 1 to 4 do Carry_predictor.update t pc ~carry_local:true done;
  let p = Carry_predictor.predict t pc in
  Alcotest.(check bool) "learned local" true p.Carry_predictor.carry_local;
  Alcotest.(check bool) "confident" true p.Carry_predictor.confident;
  Carry_predictor.update t pc ~carry_local:false;
  let p = Carry_predictor.predict t pc in
  Alcotest.(check bool) "flip" false p.Carry_predictor.carry_local;
  Alcotest.(check bool) "confidence cleared" false p.Carry_predictor.confident

let test_copy () =
  let t = Copy_predictor.create () in
  let pc = 0x400300 in
  Alcotest.(check bool) "cold predicts no copy" false (Copy_predictor.predict t pc);
  Copy_predictor.update t pc ~copied:true;
  Alcotest.(check bool) "last-value set" true (Copy_predictor.predict t pc);
  Copy_predictor.update t pc ~copied:false;
  Alcotest.(check bool) "last-value cleared" false (Copy_predictor.predict t pc)

let test_bundle () =
  let b = Bundle.create ~entries:64 () in
  ignore (Width_predictor.predict b.Bundle.width 0);
  ignore (Carry_predictor.predict b.Bundle.carry 0);
  ignore (Copy_predictor.predict b.Bundle.copy 0);
  Alcotest.(check int) "bundle sizing" 64 (Width_predictor.entries b.Bundle.width)

(* property: on a width-stable instruction stream the predictor converges
   to perfect accuracy after at most one training update per entry *)
let prop_stable_stream_converges =
  QCheck.Test.make ~name:"stable streams are fully predictable"
    QCheck.(list_of_size (Gen.int_range 1 30) (pair (int_range 0 1000) bool))
    (fun statics ->
      let t = Width_predictor.create () in
      (* dedupe by table index to avoid destructive aliasing in this test *)
      let seen = Hashtbl.create 16 in
      let statics =
        List.filter
          (fun (pc, _) ->
            let idx = (pc * 4) lsr 2 mod 256 in
            if Hashtbl.mem seen idx then false
            else begin
              Hashtbl.add seen idx ();
              true
            end)
          statics
      in
      let train () =
        List.iter (fun (pc, narrow) -> Width_predictor.update t (pc * 4) ~narrow) statics
      in
      train ();
      train ();
      List.for_all
        (fun (pc, narrow) -> Width_predictor.accuracy_probe t (pc * 4) ~narrow)
        statics)

let suite =
  ( "predictors",
    [
      Alcotest.test_case "confidence counter" `Quick test_confidence;
      Alcotest.test_case "width predictor learns" `Quick test_width_learns;
      Alcotest.test_case "width predictor aliasing" `Quick test_width_aliasing;
      Alcotest.test_case "width predictor sizes" `Quick test_width_sizes;
      Alcotest.test_case "carry predictor" `Quick test_carry;
      Alcotest.test_case "copy predictor" `Quick test_copy;
      Alcotest.test_case "bundle" `Quick test_bundle;
      QCheck_alcotest.to_alcotest prop_stable_stream_converges;
    ] )
