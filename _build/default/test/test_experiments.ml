(* Integration tests over the experiment layer: every figure/table renders,
   headlines are well-formed, and the paper's qualitative claims hold on
   the reproduction. Short traces keep this suite fast; the bench harness
   runs the full-size versions. *)

module Experiments = Hc_core.Experiments
module Runs = Hc_core.Runs
module Profile = Hc_trace.Profile
module Metrics = Hc_sim.Metrics

let runs = lazy (Runs.create ~length:6_000 ())

let test_runs_cache () =
  let r = Lazy.force runs in
  Alcotest.(check int) "length recorded" 6_000 (Runs.length r);
  let gcc = Profile.find_spec_int "gcc" in
  let a = Runs.metrics r ~scheme:"8_8_8" gcc in
  let b = Runs.metrics r ~scheme:"8_8_8" gcc in
  Alcotest.(check bool) "memoized (same physical result)" true (a == b);
  Alcotest.check_raises "unknown scheme" Not_found (fun () ->
      ignore (Runs.metrics r ~scheme:"nonesuch" gcc))

let test_all_experiments_render () =
  let r = Lazy.force runs in
  List.iter
    (fun (e : Experiments.t) ->
      let text, headlines = e.Experiments.run r in
      Alcotest.(check bool) (e.Experiments.id ^ " renders") true
        (String.length text > 0);
      Alcotest.(check bool) (e.Experiments.id ^ " has headlines") true
        (headlines <> []);
      List.iter
        (fun (h : Experiments.headline) ->
          Alcotest.(check bool)
            (e.Experiments.id ^ ": " ^ h.Experiments.label ^ " finite")
            true
            (Float.is_finite h.Experiments.measured))
        headlines)
    Experiments.all

let test_find () =
  Alcotest.(check string) "find fig6" "fig6" (Experiments.find "fig6").Experiments.id;
  Alcotest.check_raises "unknown" Not_found (fun () ->
      ignore (Experiments.find "fig99"))

let test_fig1_rows_in_range () =
  let rows = Experiments.fig1_rows (Lazy.force runs) in
  Alcotest.(check int) "twelve rows" 12 (List.length rows);
  List.iter
    (fun (name, v) ->
      Alcotest.(check bool) (name ^ " in range") true (v >= 0. && v <= 100.))
    rows

let test_fig5_accuracy_high () =
  let rows = Experiments.fig5_rows (Lazy.force runs) in
  List.iter
    (fun (name, correct, fatal, nonfatal) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s outcome classes sum to 100 (%.1f)" name
           (correct +. fatal +. nonfatal))
        true
        (Float.abs (correct +. fatal +. nonfatal -. 100.) < 0.5);
      Alcotest.(check bool)
        (Printf.sprintf "%s accuracy dominates (%.1f%%)" name correct)
        true (correct > 75.))
    rows

let test_copy_trajectory () =
  (* the paper's central copy story: BR reduces copies below 8_8_8, LR
     reduces them further (Figs 8 and 9) *)
  let r = Lazy.force runs in
  let avg scheme =
    let rows = Experiments.copies_by_scheme r scheme in
    Hc_stats.Summary.arithmetic_mean (List.map snd rows)
  in
  let s888 = avg "8_8_8" and br = avg "+BR" and lr = avg "+LR" in
  Alcotest.(check bool)
    (Printf.sprintf "BR < 8_8_8 (%.1f < %.1f)" br s888)
    true (br < s888);
  Alcotest.(check bool) (Printf.sprintf "LR < BR (%.1f < %.1f)" lr br) true
    (lr < br)

let test_steering_grows_along_stack () =
  let r = Lazy.force runs in
  let avg scheme =
    Hc_stats.Summary.arithmetic_mean
      (List.map
         (fun p -> Metrics.steered_pct (Runs.metrics r ~scheme p))
         Runs.spec_profiles)
  in
  Alcotest.(check bool) "BR steers more than 8_8_8" true (avg "+BR" > avg "8_8_8");
  Alcotest.(check bool) "CR steers more than BR" true (avg "+CR" > avg "+BR")

let test_helper_beats_baseline_on_average () =
  let r = Lazy.force runs in
  let avg scheme =
    Hc_stats.Summary.arithmetic_mean
      (List.map (fun p -> Runs.speedup_pct r ~scheme p) Runs.spec_profiles)
  in
  Alcotest.(check bool) "8_8_8 positive on average" true (avg "8_8_8" > 0.);
  Alcotest.(check bool) "+CR above 8_8_8" true (avg "+CR" > avg "8_8_8")

let test_fig14_subsample () =
  let rows = Experiments.fig14_category_rows ~apps_per_category:2 ~length:2_000 () in
  Alcotest.(check int) "seven categories" 7 (List.length rows);
  List.iter
    (fun (cat, v) ->
      Alcotest.(check bool) (cat ^ " finite") true (Float.is_finite v))
    rows;
  let curve = Experiments.fig14_curve ~apps_per_category:2 ~length:2_000 () in
  Alcotest.(check int) "curve covers apps" 14 (List.length curve);
  let sorted = List.sort Float.compare curve in
  Alcotest.(check bool) "curve ascending" true (curve = sorted)

let suite =
  ( "experiments",
    [
      Alcotest.test_case "runs cache" `Quick test_runs_cache;
      Alcotest.test_case "all experiments render" `Slow test_all_experiments_render;
      Alcotest.test_case "find" `Quick test_find;
      Alcotest.test_case "fig1 ranges" `Quick test_fig1_rows_in_range;
      Alcotest.test_case "fig5 accuracy" `Quick test_fig5_accuracy_high;
      Alcotest.test_case "copy trajectory (Figs 8-9)" `Quick test_copy_trajectory;
      Alcotest.test_case "steering grows along stack" `Quick
        test_steering_grows_along_stack;
      Alcotest.test_case "helper beats baseline" `Quick
        test_helper_beats_baseline_on_average;
      Alcotest.test_case "fig14 subsample" `Slow test_fig14_subsample;
    ] )
