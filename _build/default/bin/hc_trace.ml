(* Trace tooling: generate, save, load, inspect.

     hc_trace generate --benchmark gcc --length 10000 --out gcc.trace
     hc_trace dump --file gcc.trace --head 20
     hc_trace stats --file gcc.trace
     hc_trace run --file gcc.trace --scheme +CR

   The text format (see Hc_trace.Trace_io) is the interchange point for
   running the evaluation on externally captured traces. *)

module Profile = Hc_trace.Profile
module Generator = Hc_trace.Generator
module Trace = Hc_trace.Trace
module Trace_io = Hc_trace.Trace_io
module Analysis = Hc_trace.Analysis
module Config = Hc_sim.Config
module Pipeline = Hc_sim.Pipeline
module Metrics = Hc_sim.Metrics

open Cmdliner

let benchmark_arg =
  Arg.(
    value & opt string "gcc"
    & info [ "b"; "benchmark" ] ~docv:"NAME" ~doc:"SPEC benchmark personality.")

let length_arg =
  Arg.(
    value & opt int 10_000
    & info [ "length" ] ~docv:"UOPS" ~doc:"Trace length in uops.")

let file_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "f"; "file" ] ~docv:"PATH" ~doc:"Trace file.")

let profile_of name =
  try Profile.find_spec_int name
  with Not_found ->
    Printf.eprintf "unknown benchmark %S\n" name;
    exit 1

let generate benchmark length out =
  let trace = Generator.generate_sliced ~length (profile_of benchmark) in
  Trace_io.save trace out;
  Printf.printf "wrote %s (%d uops)\n" out (Trace.length trace)

let dump file head =
  let trace = Trace_io.load file in
  let n = min head (Trace.length trace) in
  for i = 0 to n - 1 do
    Format.printf "%a@." Hc_isa.Uop.pp (Trace.get trace i)
  done

let stats file =
  let trace = Trace_io.load file in
  Format.printf "%a@." Trace.pp_summary trace;
  let mix = Analysis.operand_mix trace in
  Printf.printf "narrow-dependent ALU operands: %.1f%%\n"
    (Analysis.narrow_dependence_pct trace);
  Printf.printf "operand mix: 1-narrow %.1f%%, 2n-wide %.1f%%, 2n-narrow %.1f%%\n"
    mix.Analysis.one_narrow mix.Analysis.two_narrow_wide_result
    mix.Analysis.two_narrow_narrow_result;
  Printf.printf "carry-local: arith %.1f%%, loads %.1f%%\n"
    (Analysis.carry_not_propagated_pct trace ~arith:true)
    (Analysis.carry_not_propagated_pct trace ~arith:false);
  Printf.printf "mean producer-consumer distance: %.2f uops\n"
    (Analysis.mean_distance trace)

let run file scheme =
  let trace = Trace_io.load file in
  let cfg =
    if scheme = "ics05" then Config.ics05
    else
      match Config.find_scheme scheme with
      | s -> Config.with_scheme Config.default s
      | exception Not_found ->
        Printf.eprintf "unknown scheme %S\n" scheme;
        exit 1
  in
  let base =
    Pipeline.run ~cfg:Config.baseline ~decide:Hc_steering.Policy.decide
      ~scheme_name:"baseline" trace
  in
  let m =
    Pipeline.run ~cfg ~decide:Hc_steering.Policy.decide ~scheme_name:scheme trace
  in
  Format.printf "%a@." Metrics.pp m;
  Format.printf "speedup over baseline: %+.2f%%@."
    (Metrics.speedup_pct ~baseline:base m)

let generate_cmd =
  let out =
    Arg.(
      value & opt string "trace.txt"
      & info [ "o"; "out" ] ~docv:"PATH" ~doc:"Output path.")
  in
  Cmd.v
    (Cmd.info "generate" ~doc:"generate a synthetic trace and save it")
    Term.(const generate $ benchmark_arg $ length_arg $ out)

let dump_cmd =
  let head =
    Arg.(
      value & opt int 20
      & info [ "head" ] ~docv:"N" ~doc:"How many uops to print.")
  in
  Cmd.v
    (Cmd.info "dump" ~doc:"print the first uops of a saved trace")
    Term.(const dump $ file_arg $ head)

let stats_cmd =
  Cmd.v
    (Cmd.info "stats" ~doc:"workload-characterization statistics of a trace")
    Term.(const stats $ file_arg)

let run_cmd =
  let scheme =
    Arg.(
      value & opt string "+IR"
      & info [ "s"; "scheme" ] ~docv:"SCHEME" ~doc:"Steering scheme.")
  in
  Cmd.v
    (Cmd.info "run" ~doc:"simulate a saved trace under a scheme")
    Term.(const run $ file_arg $ scheme)

let cmd =
  Cmd.group
    (Cmd.info "hc_trace" ~doc:"trace generation, inspection and interchange")
    [ generate_cmd; dump_cmd; stats_cmd; run_cmd ]

let () = exit (Cmd.eval cmd)
