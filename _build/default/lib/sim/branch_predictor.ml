type t = {
  history_mask : int;
  table_mask : int;
  counters : int array;  (* 2-bit saturating, 0..3; >=2 = predict taken *)
  mutable history : int;
  mutable resolved : int;
  mutable correct : int;
}

let create ?(history_bits = 12) ?(table_bits = 12) () =
  if history_bits < 1 || history_bits > 24 || table_bits < 1 || table_bits > 24
  then invalid_arg "Branch_predictor.create: bits out of [1,24]";
  {
    history_mask = (1 lsl history_bits) - 1;
    table_mask = (1 lsl table_bits) - 1;
    counters = Array.make (1 lsl table_bits) 1 (* weakly not-taken *);
    history = 0;
    resolved = 0;
    correct = 0;
  }

let index t pc = ((pc lsr 2) lxor t.history) land t.table_mask

let predict t pc = t.counters.(index t pc) >= 2

let update t pc ~taken =
  let i = index t pc in
  let predicted = t.counters.(i) >= 2 in
  if taken then (if t.counters.(i) < 3 then t.counters.(i) <- t.counters.(i) + 1)
  else if t.counters.(i) > 0 then t.counters.(i) <- t.counters.(i) - 1;
  t.history <- ((t.history lsl 1) lor (if taken then 1 else 0)) land t.history_mask;
  t.resolved <- t.resolved + 1;
  if predicted = taken then t.correct <- t.correct + 1;
  predicted <> taken

let accuracy t =
  if t.resolved = 0 then 0.
  else float_of_int t.correct /. float_of_int t.resolved
