(** Per-cluster physical register files, plus the CR tag machinery.

    Each backend owns its integer register file (§2.1); renaming a
    destination allocates an entry in the target cluster's file and the
    entry returns to the free pool when its definition leaves the machine.
    With Table-1-sized files (one entry per ROB slot) there is never
    pressure; shrinking them in an ablation makes rename stall visible.

    {!Tags} models §3.5's upper-24-bit reconstruction bookkeeping: the
    rename entry of an 8-32-32 instruction's destination points at the
    wide register holding the upper 24 bits, and that wide register can
    only be deallocated when its renamer has committed {e and} its
    link counter is zero. *)

type t

val create : ?wide_regs:int -> ?narrow_regs:int -> unit -> t
(** Default 128 entries per cluster (one per ROB slot: no pressure).
    @raise Invalid_argument unless both are positive. *)

val capacity : t -> Config.cluster -> int

val free_count : t -> Config.cluster -> int

val allocate : t -> Config.cluster -> bool
(** Take one entry; [false] when the file is exhausted (rename must
    stall). *)

val release : t -> Config.cluster -> unit
(** Return one entry. @raise Invalid_argument when the pool is already
    full — a double release is a simulator bug. *)

val in_use : t -> Config.cluster -> int

module Tags : sig
  type t

  val create : ?wide_regs:int -> unit -> t

  val link : t -> int -> unit
  (** An 8-32-32 condition was detected: the destination's rename entry
      now points at wide register [r]; its counter increments. *)

  val unlink : t -> int -> unit
  (** The 8-32-32 destination's definition was deallocated by the renamer:
      decrement. @raise Invalid_argument below zero. *)

  val links : t -> int -> int

  val can_deallocate : t -> int -> renamer_committed:bool -> bool
  (** §3.5: "the 32-bit register is deallocated only when its renamer
      commits and the counter associated with it is zero." *)
end
