(** Machine configuration (paper Table 1) and steering-scheme selection.

    All latencies are expressed in {e wide-cluster (slow) cycles}; the
    simulator's global clock runs in helper-cluster fast ticks, two per
    slow cycle (§2.2: the 8-bit backend is clocked 2× faster and the two
    clocks stay synchronized). *)

type cluster = Wide | Narrow

val cluster_to_string : cluster -> string
val pp_cluster : Format.formatter -> cluster -> unit

type ir_mode =
  | Ir_off
  | Ir_all  (** §3.7: split any eligible wide uop under w→n imbalance *)
  | Ir_no_dest
      (** §3.7 fine tuning: split only uops without a destination register,
          trading imbalance for far fewer prefetch copies *)

type scheme = {
  helper : bool;  (** narrow cluster present at all *)
  s888 : bool;  (** §3.2 all-narrow steering *)
  br : bool;  (** §3.3 flag-dependent branch steering *)
  lr : bool;  (** §3.4 load replication *)
  cr : bool;  (** §3.5 carry width prediction *)
  cp : bool;  (** §3.6 copy prefetching *)
  ir : ir_mode;  (** §3.7 instruction splitting *)
}

val monolithic : scheme
(** The baseline: no helper cluster. *)

val scheme_stack : (string * scheme) list
(** The paper's incremental evaluation order: ["8_8_8"], ["+BR"], ["+LR"],
    ["+CR"], ["+CP"], ["+IR"], ["+IR(nodest)"] — each including all
    previous techniques, as in §3. *)

val find_scheme : string -> scheme
(** Look up by the names of {!scheme_stack} or ["baseline"].
    @raise Not_found otherwise. *)

type memory_model =
  | Mem_trace_flags
      (** per-uop hit/miss ground truth carried in the trace: identical
          memory behaviour under every configuration (the default) *)
  | Mem_cache_sim
      (** structural DL0/UL1 simulation ({!Cache}) over the trace's
          effective addresses *)

type branch_model =
  | Br_trace_flags  (** per-uop misprediction ground truth (the default) *)
  | Br_gshare  (** a gshare predictor ({!Branch_predictor}) over directions *)

type frontend_model =
  | Fe_ideal  (** uop supply never misses (the default) *)
  | Fe_trace_cache
      (** Table 1's 32K-uop trace cache ({!Trace_cache}); a miss stalls
          decode for the UL1 fill time *)

type t = {
  decode_width : int;  (** frontend rename/steer bandwidth per slow cycle *)
  commit_width : int;  (** Table 1: 6 *)
  rob_size : int;
  iq_size : int;  (** Table 1: 32-entry scheduler per backend *)
  issue_width : int;  (** Table 1: 3 per backend *)
  mob_size : int;
  dl0_latency : int;  (** Table 1: 3 cycles *)
  ul1_latency : int;  (** Table 1: 13 cycles *)
  mem_latency : int;  (** Table 1: 450 cycles *)
  branch_penalty : int;  (** frontend redirect after a mispredicted branch *)
  width_flush_penalty : int;  (** squash-and-resteer after a fatal width miss *)
  copy_latency : int;  (** inter-cluster hop of a copy uop *)
  wpred_entries : int;  (** width predictor size (§3.2: 256) *)
  conf_bits : int;  (** confidence estimator width (§3.2: 2) *)
  confidence_gate : bool;  (** steer only on high-confidence predictions *)
  narrow_bits : int;
      (** helper-cluster datapath width in bits (8 in the paper; the
          conclusion proposes wider variants as future work - 16 makes a
          natural ablation). The width detectors, the 8-8-8/8-32-32 shape
          tests and the carry check all use this threshold. *)
  memory_model : memory_model;
  branch_model : branch_model;
  frontend_model : frontend_model;
  wide_regs : int;  (** wide-cluster physical register file size *)
  narrow_regs : int;  (** helper-cluster physical register file size *)
  helper_fast_clock : bool;
      (** the 2x helper clock of section 2.2; disabling it leaves an 8-bit
          backend at the wide cluster's frequency - the ablation that
          separates the clock-rate benefit from the issue-bandwidth
          benefit *)
  replicated_regfile : bool;
      (** the ICS'05 comparator's register organization: every result is
          written to both clusters' files, so no copy uops are ever
          needed (at the cost of replicated write ports) *)
  replay_recovery : bool;
      (** recover from a fatal width misprediction by replaying just the
          offending uop in the wide cluster (ICS'05) instead of squashing
          the narrow backend (this paper's flushing scheme) *)
  imbalance_threshold : float;
      (** IR trigger: wide-IQ minus narrow-IQ occupancy fraction above
          which wide uops are split *)
  scheme : scheme;
}

val default : t
(** Table-1 machine with the full technique stack up to IR. *)

val baseline : t
(** Same machine, helper cluster disabled — the monolithic reference. *)

val ics05 : t
(** The related-work comparator of §4 (González et al., ICS 2005): a
    20-bit same-clock narrow cluster with a replicated register file,
    ungated history-based width prediction and replay-based recovery.
    Implemented so the two asymmetric-clustering philosophies can be
    benchmarked head to head. *)

val with_scheme : t -> scheme -> t

val validate : t -> (unit, string) result

val pp : Format.formatter -> t -> unit
