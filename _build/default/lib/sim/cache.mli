(** Set-associative cache with LRU replacement.

    Table 1's memory hierarchy — a 32 KB 8-way 3-cycle DL0 and a 4 MB
    16-way 13-cycle UL1 — can be simulated structurally instead of through
    the trace's sampled miss flags: every uop carries a concrete effective
    address, so hit/miss behaviour is emergent from the address stream.
    Select with {!Config.t.memory_model}. *)

type t

val create : ?line_bytes:int -> size_bytes:int -> ways:int -> unit -> t
(** [create ~size_bytes ~ways ()] — [line_bytes] defaults to 64. All three
    quantities must be powers of two with [size_bytes >= ways * line_bytes].
    @raise Invalid_argument otherwise. *)

val sets : t -> int
val ways : t -> int
val line_bytes : t -> int

val access : t -> Hc_isa.Value.t -> bool
(** [access t addr] looks the line up, updates LRU state, allocates on
    miss, and returns [true] on a hit. *)

val probe : t -> Hc_isa.Value.t -> bool
(** Hit check without any state change. *)

val invalidate_all : t -> unit

val stats : t -> int * int
(** [(hits, misses)] since creation. *)

val dl0 : unit -> t
(** A fresh Table-1 DL0: 32 KB, 8-way. *)

val ul1 : unit -> t
(** A fresh Table-1 UL1: 4 MB, 16-way. *)

module Hierarchy : sig
  (** The two-level hierarchy: DL0 backed by UL1 backed by memory. *)

  type nonrec t = { dl0 : t; ul1 : t }

  val create : unit -> t

  val latency : t -> latencies:int * int * int -> Hc_isa.Value.t -> int
  (** [latency h ~latencies:(l0, l1, mem) addr] performs the access and
      returns its latency in slow cycles: [l0] on a DL0 hit, [l1] on a DL0
      miss that hits UL1 (filling DL0), [mem] otherwise (filling both). *)
end
