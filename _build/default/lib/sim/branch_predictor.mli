(** Gshare branch direction predictor.

    An alternative to the trace's sampled misprediction flags: predict
    each conditional branch from a global-history-xor-PC indexed table of
    2-bit counters and discover mispredictions by comparing against the
    trace's actual direction. Select with {!Config.t.branch_model}. *)

type t

val create : ?history_bits:int -> ?table_bits:int -> unit -> t
(** Defaults: 12 bits of global history, a 4096-entry counter table.
    @raise Invalid_argument if either is outside [1, 24]. *)

val predict : t -> Hc_isa.Value.t -> bool
(** Predicted direction for the branch at this pc; no state change. *)

val update : t -> Hc_isa.Value.t -> taken:bool -> bool
(** Resolve the branch: trains the counter, shifts the history, and
    returns [true] when the prediction (as it stood before training) was
    {e wrong} — i.e. this dynamic branch mispredicted. *)

val accuracy : t -> float
(** Fraction of resolved branches predicted correctly; [0.] before any. *)
