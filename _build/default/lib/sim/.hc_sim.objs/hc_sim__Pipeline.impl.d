lib/sim/pipeline.ml: Array Branch_predictor Cache Config Hashtbl Hc_isa Hc_predictors Hc_stats Hc_trace Int List Metrics Printf Queue Regfile Stack Steer Trace_cache
