lib/sim/metrics.ml: Format Hc_stats
