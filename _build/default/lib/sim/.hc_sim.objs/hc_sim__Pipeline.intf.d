lib/sim/pipeline.mli: Config Hc_isa Hc_trace Metrics Steer
