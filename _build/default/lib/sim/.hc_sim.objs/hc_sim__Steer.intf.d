lib/sim/steer.mli: Config Format Hc_isa Hc_predictors
