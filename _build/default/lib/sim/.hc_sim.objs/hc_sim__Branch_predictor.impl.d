lib/sim/branch_predictor.ml: Array
