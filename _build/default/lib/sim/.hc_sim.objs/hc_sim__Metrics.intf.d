lib/sim/metrics.mli: Format Hc_stats
