lib/sim/regfile.ml: Array Config
