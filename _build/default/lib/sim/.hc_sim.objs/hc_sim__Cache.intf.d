lib/sim/cache.mli: Hc_isa
