lib/sim/trace_cache.mli: Hc_isa
