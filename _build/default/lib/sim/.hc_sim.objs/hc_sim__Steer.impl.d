lib/sim/steer.ml: Config Format Hc_isa Hc_predictors
