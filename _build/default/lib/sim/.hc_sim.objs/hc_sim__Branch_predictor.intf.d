lib/sim/branch_predictor.mli: Hc_isa
