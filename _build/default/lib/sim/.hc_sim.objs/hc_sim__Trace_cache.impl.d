lib/sim/trace_cache.ml: Cache
