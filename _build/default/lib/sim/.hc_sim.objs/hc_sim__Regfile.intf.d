lib/sim/regfile.mli: Config
