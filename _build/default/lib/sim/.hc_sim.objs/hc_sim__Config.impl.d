lib/sim/config.ml: Format List Printf
