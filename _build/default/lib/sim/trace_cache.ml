(* Reuses the generic set-associative machinery at trace-line granularity:
   a "line" is [line_uops] consecutive uops (4-byte pcs). *)

type t = {
  cache : Cache.t;
  mutable hits : int;
  mutable misses : int;
}

let create ?(uop_capacity = 32 * 1024) ?(ways = 4) ?(line_uops = 6) () =
  if uop_capacity <= 0 || ways <= 0 || line_uops <= 0 then
    invalid_arg "Trace_cache.create: non-positive geometry";
  (* express the geometry in bytes for the generic cache: one uop = 4
     pc-bytes; round the line up to a power of two *)
  let pow2_at_least n =
    let rec go p = if p >= n then p else go (p * 2) in
    go 1
  in
  let line_bytes = pow2_at_least (line_uops * 4) in
  let size_bytes = pow2_at_least (uop_capacity * 4) in
  { cache = Cache.create ~line_bytes ~size_bytes ~ways (); hits = 0; misses = 0 }

let lookup t pc =
  let hit = Cache.access t.cache pc in
  if hit then t.hits <- t.hits + 1 else t.misses <- t.misses + 1;
  hit

let stats t = (t.hits, t.misses)

let hit_rate t =
  let total = t.hits + t.misses in
  if total = 0 then 0. else float_of_int t.hits /. float_of_int total
