(** The Pentium-4-style trace cache of Table 1 (32 K uops, 4-way).

    Models frontend supply: uops are delivered from trace-cache lines of
    consecutive-pc uops; a lookup miss means the line must be built from
    the UL1 instruction stream, stalling decode for the build penalty.
    Select with {!Config.t.frontend_model}. *)

type t

val create : ?uop_capacity:int -> ?ways:int -> ?line_uops:int -> unit -> t
(** Defaults: Table 1's 32 K uops, 4-way, with 6-uop trace lines.
    @raise Invalid_argument unless all are positive and the geometry is a
    power of two in sets. *)

val lookup : t -> Hc_isa.Value.t -> bool
(** [lookup t pc] — is the trace line containing [pc] present? Allocates
    it on miss. *)

val stats : t -> int * int
(** [(hits, misses)] since creation. *)

val hit_rate : t -> float
