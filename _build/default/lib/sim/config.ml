type cluster = Wide | Narrow

let cluster_to_string = function Wide -> "wide" | Narrow -> "narrow"

let pp_cluster ppf c = Format.pp_print_string ppf (cluster_to_string c)

type ir_mode = Ir_off | Ir_all | Ir_no_dest

type scheme = {
  helper : bool;
  s888 : bool;
  br : bool;
  lr : bool;
  cr : bool;
  cp : bool;
  ir : ir_mode;
}

let monolithic =
  { helper = false; s888 = false; br = false; lr = false; cr = false;
    cp = false; ir = Ir_off }

let s888_only = { monolithic with helper = true; s888 = true }

let scheme_stack =
  [
    ("8_8_8", s888_only);
    ("+BR", { s888_only with br = true });
    ("+LR", { s888_only with br = true; lr = true });
    ("+CR", { s888_only with br = true; lr = true; cr = true });
    ("+CP", { s888_only with br = true; lr = true; cr = true; cp = true });
    ("+IR", { s888_only with br = true; lr = true; cr = true; cp = true; ir = Ir_all });
    ("+IR(nodest)",
     { s888_only with br = true; lr = true; cr = true; cp = true; ir = Ir_no_dest });
  ]

let find_scheme name =
  if name = "baseline" then monolithic
  else
    match List.assoc_opt name scheme_stack with
    | Some s -> s
    | None -> raise Not_found

type memory_model = Mem_trace_flags | Mem_cache_sim

type branch_model = Br_trace_flags | Br_gshare

type frontend_model = Fe_ideal | Fe_trace_cache

type t = {
  decode_width : int;
  commit_width : int;
  rob_size : int;
  iq_size : int;
  issue_width : int;
  mob_size : int;
  dl0_latency : int;
  ul1_latency : int;
  mem_latency : int;
  branch_penalty : int;
  width_flush_penalty : int;
  copy_latency : int;
  wpred_entries : int;
  conf_bits : int;
  confidence_gate : bool;
  narrow_bits : int;
  memory_model : memory_model;
  branch_model : branch_model;
  frontend_model : frontend_model;
  wide_regs : int;
  narrow_regs : int;
  helper_fast_clock : bool;
  replicated_regfile : bool;
  replay_recovery : bool;
  imbalance_threshold : float;
  scheme : scheme;
}

let default =
  {
    decode_width = 6;
    commit_width = 6;
    rob_size = 128;
    iq_size = 32;
    issue_width = 3;
    mob_size = 48;
    dl0_latency = 3;
    ul1_latency = 13;
    mem_latency = 450;
    branch_penalty = 12;
    width_flush_penalty = 4;
    copy_latency = 1;
    wpred_entries = 256;
    conf_bits = 2;
    confidence_gate = true;
    narrow_bits = 8;
    memory_model = Mem_trace_flags;
    branch_model = Br_trace_flags;
    frontend_model = Fe_ideal;
    wide_regs = 128;
    narrow_regs = 128;
    helper_fast_clock = true;
    replicated_regfile = false;
    replay_recovery = false;
    imbalance_threshold = 0.15;
    scheme = List.assoc "+IR" scheme_stack;
  }

let baseline = { default with scheme = monolithic }

(* The comparator of section 4: Gonzalez, Cristal, Pericas, Valero,
   Veidenbaum, "An Asymmetric Clustered Processor based on Value Content"
   (ICS 2005). One cluster of a homogeneous pair is shrunk to 20 bits at
   the same clock; the register file is replicated across clusters (no
   copy uops), width prediction is history-based without a confidence
   gate, and mispredicted-narrow instructions replay instead of flushing. *)
let ics05 =
  {
    default with
    scheme =
      { helper = true; s888 = true; br = true; lr = false; cr = false;
        cp = false; ir = Ir_off };
    narrow_bits = 20;
    helper_fast_clock = false;
    confidence_gate = false;
    replicated_regfile = true;
    replay_recovery = true;
  }

let with_scheme t scheme = { t with scheme }

let validate t =
  let positive =
    [ ("decode_width", t.decode_width); ("commit_width", t.commit_width);
      ("rob_size", t.rob_size); ("iq_size", t.iq_size);
      ("issue_width", t.issue_width); ("mob_size", t.mob_size);
      ("dl0_latency", t.dl0_latency); ("ul1_latency", t.ul1_latency);
      ("mem_latency", t.mem_latency); ("copy_latency", t.copy_latency);
      ("wpred_entries", t.wpred_entries); ("conf_bits", t.conf_bits) ]
  in
  match List.find_opt (fun (_, v) -> v <= 0) positive with
  | Some (name, v) -> Error (Printf.sprintf "%s = %d must be positive" name v)
  | None ->
    if t.branch_penalty < 0 || t.width_flush_penalty < 0 then
      Error "penalties must be non-negative"
    else if t.narrow_bits < 1 || t.narrow_bits > 31 then
      Error "narrow_bits out of [1,31]"
    else if t.wide_regs <= 0 || t.narrow_regs <= 0 then
      Error "register files must be positive"
    else if t.imbalance_threshold < 0. || t.imbalance_threshold > 1. then
      Error "imbalance_threshold out of [0,1]"
    else if t.ul1_latency <= t.dl0_latency || t.mem_latency <= t.ul1_latency then
      Error "memory hierarchy latencies must increase"
    else Ok ()

let pp ppf t =
  Format.fprintf ppf
    "@[<v>decode=%d commit=%d rob=%d iq=%d issue=%d mob=%d@ dl0=%d ul1=%d \
     mem=%d@ br_pen=%d flush_pen=%d copy=%d@ wpred=%d conf=%d gate=%b \
     imb=%.2f@]"
    t.decode_width t.commit_width t.rob_size t.iq_size t.issue_width
    t.mob_size t.dl0_latency t.ul1_latency t.mem_latency t.branch_penalty
    t.width_flush_penalty t.copy_latency t.wpred_entries t.conf_bits
    t.confidence_gate t.imbalance_threshold
