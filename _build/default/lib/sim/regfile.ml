type t = {
  cap : int array;  (* per cluster-index *)
  mutable free : int array;
}

let cluster_index = function Config.Wide -> 0 | Config.Narrow -> 1

let create ?(wide_regs = 128) ?(narrow_regs = 128) () =
  if wide_regs <= 0 || narrow_regs <= 0 then
    invalid_arg "Regfile.create: non-positive capacity";
  { cap = [| wide_regs; narrow_regs |]; free = [| wide_regs; narrow_regs |] }

let capacity t c = t.cap.(cluster_index c)

let free_count t c = t.free.(cluster_index c)

let allocate t c =
  let i = cluster_index c in
  if t.free.(i) = 0 then false
  else begin
    t.free.(i) <- t.free.(i) - 1;
    true
  end

let release t c =
  let i = cluster_index c in
  if t.free.(i) >= t.cap.(i) then invalid_arg "Regfile.release: pool already full";
  t.free.(i) <- t.free.(i) + 1

let in_use t c = t.cap.(cluster_index c) - t.free.(cluster_index c)

module Tags = struct
  type t = int array

  let create ?(wide_regs = 128) () =
    if wide_regs <= 0 then invalid_arg "Regfile.Tags.create: non-positive size";
    Array.make wide_regs 0

  let check t r =
    if r < 0 || r >= Array.length t then invalid_arg "Regfile.Tags: register out of range"

  let link t r =
    check t r;
    t.(r) <- t.(r) + 1

  let unlink t r =
    check t r;
    if t.(r) = 0 then invalid_arg "Regfile.Tags.unlink: counter already zero";
    t.(r) <- t.(r) - 1

  let links t r =
    check t r;
    t.(r)

  let can_deallocate t r ~renamer_committed =
    check t r;
    renamer_committed && t.(r) = 0
end
