type t = {
  table : bool array;
  modulo : int;
}

let create ?(entries = 256) () =
  if entries <= 0 then invalid_arg "Copy_predictor.create: entries <= 0";
  { table = Array.make entries false; modulo = entries }

let index t pc = (pc lsr 2) mod t.modulo

let predict t pc = t.table.(index t pc)

let update t pc ~copied = t.table.(index t pc) <- copied
