(** Saturating-counter confidence estimators.

    The paper gates narrow steering on a 2-bit per-entry confidence
    interval estimator (§3.2): an instruction is only steered to the helper
    cluster when its width prediction is high-confidence, which drops the
    misprediction-requiring-recovery rate from 2.11% to 0.83%. *)

type t
(** One saturating counter. *)

val create : ?bits:int -> unit -> t
(** [create ~bits ()] — a [bits]-wide saturating counter starting at 0.
    Default 2 bits (values 0..3). @raise Invalid_argument if [bits < 1]. *)

val value : t -> int

val max_value : t -> int
(** [2^bits - 1]. *)

val strengthen : t -> unit
(** Saturating increment — the last prediction proved right. *)

val weaken : t -> unit
(** Reset to 0 — the behaviour changed. The paper's estimator must clear
    fast: one width flip costs a squash-and-resteer, so the counter drops
    to zero rather than decaying by one. *)

val is_high : ?threshold:int -> t -> bool
(** [is_high ~threshold t] — [value t >= threshold], default the saturated
    maximum. *)

val reset : t -> unit
