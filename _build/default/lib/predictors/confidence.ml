type t = {
  max_value : int;
  mutable value : int;
}

let create ?(bits = 2) () =
  if bits < 1 then invalid_arg "Confidence.create: bits < 1";
  { max_value = (1 lsl bits) - 1; value = 0 }

let value t = t.value

let max_value t = t.max_value

let strengthen t = if t.value < t.max_value then t.value <- t.value + 1

let weaken t = t.value <- 0

let is_high ?threshold t =
  let threshold = match threshold with Some x -> x | None -> t.max_value in
  t.value >= threshold

let reset t = t.value <- 0
