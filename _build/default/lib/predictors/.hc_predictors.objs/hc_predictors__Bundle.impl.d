lib/predictors/bundle.ml: Carry_predictor Copy_predictor Width_predictor
