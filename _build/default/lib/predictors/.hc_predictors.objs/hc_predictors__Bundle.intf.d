lib/predictors/bundle.mli: Carry_predictor Copy_predictor Width_predictor
