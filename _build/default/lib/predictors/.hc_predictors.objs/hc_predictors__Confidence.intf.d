lib/predictors/confidence.mli:
