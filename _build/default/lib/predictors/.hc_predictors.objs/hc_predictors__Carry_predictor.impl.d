lib/predictors/carry_predictor.ml: Array Confidence
