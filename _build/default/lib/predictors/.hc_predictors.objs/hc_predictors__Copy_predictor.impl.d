lib/predictors/copy_predictor.ml: Array
