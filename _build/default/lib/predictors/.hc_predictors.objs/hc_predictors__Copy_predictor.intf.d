lib/predictors/copy_predictor.mli: Hc_isa
