lib/predictors/width_predictor.ml: Array Confidence
