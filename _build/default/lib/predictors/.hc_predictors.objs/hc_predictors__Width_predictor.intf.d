lib/predictors/width_predictor.mli: Hc_isa
