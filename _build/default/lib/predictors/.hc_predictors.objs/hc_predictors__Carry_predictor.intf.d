lib/predictors/carry_predictor.mli: Hc_isa
