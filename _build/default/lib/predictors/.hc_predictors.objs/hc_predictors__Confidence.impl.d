lib/predictors/confidence.ml:
