(** The full prediction hardware of the helper-cluster frontend: base width
    predictor plus the CR and CP extension bits, created together so every
    steering scheme sees one coherent set of tables. *)

type t = {
  width : Width_predictor.t;
  carry : Carry_predictor.t;
  copy : Copy_predictor.t;
}

val create : ?entries:int -> ?conf_bits:int -> unit -> t
(** All three tables sized identically (default 256 entries), matching the
    paper's "additional bit in the width predictor" framing. *)
