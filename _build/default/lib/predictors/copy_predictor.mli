(** The copy-prefetch predictor of §3.6 (CP scheme).

    Last-value based: when a producer instruction's value ends up needing
    an inter-cluster copy, the producer's entry is set at writeback; the
    next dynamic instance of that producer then prefetches the copy
    immediately, hiding the inter-cluster hop from the consumer. The paper
    measures ~90% accuracy for this single-bit scheme and uses it for
    narrow→wide copies only (wide→narrow prefetches reuse the base width
    predictor). *)

type t

val create : ?entries:int -> unit -> t

val predict : t -> Hc_isa.Value.t -> bool
(** Will this producer's value be copied to the other cluster? *)

val update : t -> Hc_isa.Value.t -> copied:bool -> unit
(** Writeback training: did this dynamic instance incur a copy? *)
