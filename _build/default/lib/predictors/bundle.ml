type t = {
  width : Width_predictor.t;
  carry : Carry_predictor.t;
  copy : Copy_predictor.t;
}

let create ?(entries = 256) ?(conf_bits = 2) () =
  {
    width = Width_predictor.create ~entries ~conf_bits ();
    carry = Carry_predictor.create ~entries ~conf_bits ();
    copy = Copy_predictor.create ~entries ();
  }
