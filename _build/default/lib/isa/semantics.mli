(** Concrete evaluation of uop opcodes over 32-bit values. *)

val eval : Opcode.t -> Value.t list -> Value.t option
(** [eval op srcs] computes the result value of [op] applied to the source
    values [srcs], or [None] when the result does not follow from register
    sources alone (loads, stores, branches, floating point, nop). [Cmp]
    evaluates like [Sub]: its "result" is the value whose narrowness
    determines the flags producer's width, which is what the BR policy
    cares about. Missing sources also yield [None]. *)
