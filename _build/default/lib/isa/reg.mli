(** Architectural registers of the IA-32-like uop machine.

    The trace generator emits uops over the eight IA-32 general-purpose
    registers, the flags register (written by arithmetic uops, read by
    conditional branches — the dependence the BR policy exploits), the
    instruction pointer, and a pool of internal temporaries used by cracked
    uops and by the IR splitter's byte lanes. *)

type t =
  | Eax | Ecx | Edx | Ebx | Esp | Ebp | Esi | Edi
  | Eflags
  | Eip
  | Tmp of int  (** internal temporary; index in [0, tmp_count-1] *)

val tmp_count : int
(** Number of internal temporaries ([Tmp] indices range below this). *)

val count : int
(** Total number of architectural registers, i.e. the rename-table size. *)

val to_index : t -> int
(** Dense index in [0, count-1], suitable for array-backed rename tables. *)

val of_index : int -> t
(** Inverse of {!to_index}. @raise Invalid_argument if out of range. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string

val gprs : t list
(** The eight general-purpose registers, in encoding order. *)
