(** Data-width classification of machine values.

    The paper's policies only distinguish {e narrow} (representable in the
    8-bit helper datapath) from {e wide}; the IR splitting machinery
    additionally works at byte granularity. Both views live here, built on
    the {!Detector} circuits. *)

type t = Narrow | Wide
(** The two-point width lattice the steering policies reason about. A value
    is [Narrow] when the upper 24 bits are a sign run (all zero or all
    one). *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string

val classify : Value.t -> t
(** [classify v] applies the 8-bit leading zero/one detectors to [v]. *)

val is_narrow : Value.t -> bool
(** [is_narrow v] = [classify v = Narrow]. *)

val is_narrow_bits : bits:int -> Value.t -> bool
(** Narrowness against an arbitrary helper datapath width; [~bits:8] is
    {!is_narrow}. Supports the paper's wider-helper extension. *)

val significant_bytes : Value.t -> int
(** [significant_bytes v] is the smallest [n] in [1..4] such that the value
    is faithfully represented by its low [n] bytes plus sign extension.
    E.g. [significant_bytes 0xFF = 2] (0xFF as signed needs two bytes,
    unsigned one — we take the two's-complement view: 0x000000FF has
    bit 7 set and bits 8.. zero, so sign-extending its low byte would give
    0xFFFFFFFF ≠ v, hence 2). *)

val significant_bytes_unsigned : Value.t -> int
(** Zero-extension variant: smallest [n] such that the low [n] bytes
    zero-extended reproduce [v]. [significant_bytes_unsigned 0xFF = 1]. *)

val narrow_fraction : Value.t list -> float
(** Fraction of the values classified [Narrow]; [0.] on the empty list. *)
