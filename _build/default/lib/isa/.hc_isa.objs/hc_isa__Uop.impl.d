lib/isa/uop.ml: Format List Opcode Option Reg Semantics Value Width
