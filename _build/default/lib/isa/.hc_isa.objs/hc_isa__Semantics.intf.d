lib/isa/semantics.mli: Opcode Value
