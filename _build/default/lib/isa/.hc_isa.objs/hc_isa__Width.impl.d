lib/isa/width.ml: Detector Format List Value
