lib/isa/detector.ml:
