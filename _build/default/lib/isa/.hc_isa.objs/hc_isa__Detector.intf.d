lib/isa/detector.mli: Value
