lib/isa/value.ml: Format Printf
