lib/isa/width.mli: Format Value
