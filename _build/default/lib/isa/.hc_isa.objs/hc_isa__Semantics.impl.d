lib/isa/semantics.ml: List Opcode Value
