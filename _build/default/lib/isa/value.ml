type t = int

let mask32 x = x land 0xFFFF_FFFF

let of_signed x = mask32 x

let to_signed v = if v land 0x8000_0000 <> 0 then v - 0x1_0000_0000 else v

let byte i v =
  assert (i >= 0 && i <= 3);
  (v lsr (8 * i)) land 0xFF

let of_bytes b0 b1 b2 b3 =
  (b0 land 0xFF)
  lor ((b1 land 0xFF) lsl 8)
  lor ((b2 land 0xFF) lsl 16)
  lor ((b3 land 0xFF) lsl 24)

let add a b = mask32 (a + b)

let sub a b = mask32 (a - b)

let carry_out_low8 a b = (a land 0xFF) + (b land 0xFF) > 0xFF

let upper24_equal a b = a lsr 8 = b lsr 8

let carry_propagates base offset = not (upper24_equal (add base offset) base)

let to_hex v = Printf.sprintf "0x%08X" v

let pp ppf v = Format.pp_print_string ppf (to_hex v)
