(* The loops mirror the dynamic-logic pull-down chains of Fig 3: each bit
   above the anchor can discharge the precharged node, so the output is the
   AND of per-bit conditions. *)

let zeros_above k v =
  assert (k >= 0 && k <= 32);
  let rec check i = i > 31 || ((v lsr i) land 1 = 0 && check (i + 1)) in
  check k

let ones_above k v =
  assert (k >= 0 && k <= 32);
  let rec check i = i > 31 || ((v lsr i) land 1 = 1 && check (i + 1)) in
  check k

let narrow8 v = zeros_above 8 v || ones_above 8 v

let narrow ~bits v =
  if bits < 1 || bits > 32 then invalid_arg "Detector.narrow: bits out of [1,32]";
  if bits = 32 then true else zeros_above bits v || ones_above bits v

let narrow8_unsigned v = zeros_above 8 v
