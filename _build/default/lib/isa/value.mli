(** 32-bit machine values.

    The simulator operates on concrete 32-bit values carried by the trace.
    Values are represented as OCaml [int]s in the range [0, 2{^32}-1] (the
    unsigned bit pattern); helpers convert to and from the signed view.
    Keeping concrete values around is what lets the width predictors, the
    carry-propagation test of the CR policy and the instruction-splitting
    machinery of the IR policy operate on ground truth, exactly as the
    leading zero/one detectors of the hardware would. *)

type t = int
(** A 32-bit value stored as its unsigned bit pattern. Invariant:
    [0 <= v <= 0xFFFF_FFFF]. *)

val mask32 : int -> t
(** [mask32 x] truncates [x] to its low 32 bits. *)

val of_signed : int -> t
(** [of_signed x] is the two's-complement 32-bit pattern of [x]. *)

val to_signed : t -> int
(** [to_signed v] interprets [v] as a signed 32-bit integer. *)

val byte : int -> t -> int
(** [byte i v] extracts byte [i] (0 = least significant, [0 <= i <= 3]). *)

val of_bytes : int -> int -> int -> int -> t
(** [of_bytes b0 b1 b2 b3] assembles a value from four bytes, [b0] least
    significant. Each byte is masked to 8 bits. *)

val add : t -> t -> t
(** 32-bit wrapping addition. *)

val sub : t -> t -> t
(** 32-bit wrapping subtraction. *)

val carry_out_low8 : t -> t -> bool
(** [carry_out_low8 a b] is [true] when adding the low bytes of [a] and [b]
    produces a carry out of bit 7 — the signal the CR scheme taps to detect
    (at writeback) that an 8-bit helper-cluster addition would have been
    wrong. *)

val carry_propagates : t -> t -> bool
(** [carry_propagates base offset] is [true] when the addition
    [base + offset] changes bits above the low byte relative to [base],
    i.e. the operation is {e not} an effectively-8-bit operation in the
    sense of §3.5 of the paper (Fig 10). [false] means the upper 24 bits of
    the result equal the upper 24 bits of [base] and the add could run on
    the 8-bit AGU of the helper cluster. *)

val upper24_equal : t -> t -> bool
(** [upper24_equal a b] compares bits 8..31 of the two values. *)

val pp : Format.formatter -> t -> unit
(** Hexadecimal printer, e.g. [0xFFFC4A1E]. *)

val to_hex : t -> string
(** [to_hex v] is the 8-digit hexadecimal rendering of [v]. *)
