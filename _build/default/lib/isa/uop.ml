type operand =
  | Reg of Reg.t
  | Imm of Value.t

type t = {
  id : int;
  pc : Value.t;
  op : Opcode.t;
  srcs : operand list;
  dst : Reg.t option;
  src_vals : Value.t list;
  result : Value.t;
  mem_addr : Value.t;
  taken : bool;
  branch_mispredicted : bool;
  dl0_miss : bool;
  ul1_miss : bool;
}

let make ~id ~pc ~op ~srcs ~dst ~src_vals ?result ?(mem_addr = 0) ?(taken = false)
    ?(branch_mispredicted = false) ?(dl0_miss = false) ?(ul1_miss = false) () =
  if List.length srcs <> List.length src_vals then
    invalid_arg "Uop.make: srcs and src_vals lengths differ";
  let result =
    match result with
    | Some r -> r
    | None -> ( match Semantics.eval op src_vals with Some r -> r | None -> 0)
  in
  { id; pc; op; srcs; dst; src_vals; result; mem_addr; taken;
    branch_mispredicted; dl0_miss; ul1_miss }

let has_dest u = Option.is_some u.dst

let writes_flags u = Opcode.writes_flags u.op

let reads_flags u = Opcode.reads_flags u.op

let result_width u = Width.classify u.result

let src_widths u = List.map Width.classify u.src_vals

let all_srcs_narrow u = List.for_all Width.is_narrow u.src_vals

(* Every source narrow, and - when the uop produces anything observable
   (a destination register or the flags) - a narrow result too. *)
let is_888_bits ~bits u =
  List.for_all (Width.is_narrow_bits ~bits) u.src_vals
  && ((not (has_dest u) && not (writes_flags u))
     || Width.is_narrow_bits ~bits u.result)

let is_888 u = is_888_bits ~bits:8 u

(* For memory uops the "result" of the 8-32-32 shape is the AGU output —
   the effective address (Fig 10) — not the loaded value. *)
let shape_result u = if Opcode.is_memory u.op then u.mem_addr else u.result

let is_8_32_32_bits ~bits u =
  match u.src_vals with
  | [ a; b ] ->
    let na = Width.is_narrow_bits ~bits a and nb = Width.is_narrow_bits ~bits b in
    (na <> nb) && not (Width.is_narrow_bits ~bits (shape_result u))
  | [] | [ _ ] | _ :: _ :: _ -> false

let is_8_32_32 u = is_8_32_32_bits ~bits:8 u

let upper_bits_equal ~bits a b = a lsr bits = b lsr bits

let carry_not_propagated_bits ~bits u =
  if not (Opcode.carry_eligible u.op) then false
  else
    match u.src_vals with
    | [ a; b ] when is_8_32_32_bits ~bits u ->
      let wide = if Width.is_narrow_bits ~bits a then b else a in
      upper_bits_equal ~bits (shape_result u) wide
    | [] | [ _ ] | _ :: _ -> false

let carry_not_propagated u = carry_not_propagated_bits ~bits:8 u

let pp_operand ppf = function
  | Reg r -> Reg.pp ppf r
  | Imm v -> Value.pp ppf v

let pp ppf u =
  Format.fprintf ppf "@[<h>#%d pc=%a %a" u.id Value.pp u.pc Opcode.pp u.op;
  ( match u.dst with
  | Some d -> Format.fprintf ppf " %a <-" Reg.pp d
  | None -> () );
  List.iter (fun s -> Format.fprintf ppf " %a" pp_operand s) u.srcs;
  Format.fprintf ppf " = %a@]" Value.pp u.result
