(** Bit-level model of the consecutive zero / one detection circuits.

    Figure 3 of the paper shows dynamic-logic detectors that flag a value as
    narrow when its upper bits are a run of consecutive zeros (small
    positive value) or consecutive ones (small negative value in two's
    complement). This module reproduces the circuits' function at bit
    granularity: [zeros_above] and [ones_above] are the wired-NOR /
    wired-AND planes, and {!Width} builds its byte-granular classification
    on top of them. *)

val zeros_above : int -> Value.t -> bool
(** [zeros_above k v] is [true] iff all bits of [v] at positions [k]
    and above (up to bit 31) are zero — the consecutive-zero detector
    anchored at bit [k]. [k] must be within [0, 32]; [zeros_above 32 v] is
    always [true]. *)

val ones_above : int -> Value.t -> bool
(** [ones_above k v] is the dual consecutive-one detector: [true] iff all
    bits of [v] at positions [k] and above are one. *)

val narrow8 : Value.t -> bool
(** [narrow8 v] is the 8-bit narrowness signal used throughout the paper:
    the upper 24 bits are all zero or all one, so the value is faithfully
    represented by its low byte plus sign. *)

val narrow8_unsigned : Value.t -> bool
(** [narrow8_unsigned v] only fires the zero detector (values in
    [0, 255]). Used where sign extension is not available, e.g. address
    low-byte reasoning. *)

val narrow : bits:int -> Value.t -> bool
(** [narrow ~bits v] generalizes {!narrow8} to an arbitrary datapath
    width: all bits at positions [bits-1] and above are a sign run. The
    paper's proposed extension of a wider-than-8-bit helper cluster
    (section 2.1 discussion) uses this with [bits = 16].
    @raise Invalid_argument unless [1 <= bits <= 32]. *)
